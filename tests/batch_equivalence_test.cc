// Tests of the batch-kernel analysis stack: JitCodeAuditor::AuditBatch
// (safety) and BatchEquivalenceValidator (semantics) over the bytes
// EmitForestBatchCode produces, plus the BatchDifferentialCheck dynamic
// fallback. The adversarial core is the byte-flip battery: every single-bit
// and whole-byte corruption of the emitted code (pad bytes excluded — they
// are never read) must be rejected by the audit or the validator.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/batch_equivalence_validator.h"
#include "analysis/jit_auditor.h"
#include "analysis/report.h"
#include "common/random.h"
#include "gbt/forest.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

int BuildRandomSubtree(Tree* tree, Rng* rng, int num_features, int depth) {
  const int index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  if (depth <= 0 || rng->Bernoulli(0.3)) {
    tree->nodes[index].is_leaf = true;
    tree->nodes[index].value = rng->UniformDouble(-10, 10);
    return index;
  }
  const int feature = static_cast<int>(rng->UniformInt(0, num_features - 1));
  const double threshold = 0.25 * rng->UniformInt(-8, 8);
  const bool default_left = rng->Bernoulli(0.5);
  const int left = BuildRandomSubtree(tree, rng, num_features, depth - 1);
  const int right = BuildRandomSubtree(tree, rng, num_features, depth - 1);
  TreeNode& node = tree->nodes[index];
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  node.default_left = default_left;
  return index;
}

Forest MakeRandomForest(Rng* rng, int num_features, int num_trees,
                        int max_depth) {
  Forest forest;
  forest.num_features = num_features;
  forest.base_score = rng->UniformDouble(-5, 5);
  for (int t = 0; t < num_trees; ++t) {
    Tree tree;
    BuildRandomSubtree(&tree, rng, num_features, max_depth);
    forest.trees.push_back(std::move(tree));
  }
  return forest;
}

// Audit + validate one artifact against its forest; returns the merged
// report so callers can assert clean or corrupted as appropriate.
AnalysisReport AnalyzeBatch(const Forest& forest,
                            const BatchJitArtifact& artifact) {
  AnalysisReport report = JitCodeAuditor().AuditBatch(
      artifact.code.data(), artifact.code.size(), artifact.entries,
      artifact.pool_begin, forest.num_features);
  report.Merge(BatchEquivalenceValidator().Validate(
      forest, artifact.code.data(), artifact.code.size(), artifact.entries,
      artifact.pool_begin));
  return report;
}

TEST(BatchEquivalenceTest, CleanOnRandomForests) {
  if (!BatchJitSupported()) {
    GTEST_SKIP() << "batch JIT not supported in this build";
  }
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const int num_features = 1 + static_cast<int>(rng.UniformInt(0, 7));
    const int num_trees = 1 + static_cast<int>(rng.UniformInt(0, 6));
    const int max_depth = 1 + static_cast<int>(rng.UniformInt(0, 5));
    const Forest forest =
        MakeRandomForest(&rng, num_features, num_trees, max_depth);
    ASSERT_TRUE(forest.Validate().ok());
    Result<BatchJitArtifact> artifact = EmitForestBatchCode(forest);
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
    const AnalysisReport report = AnalyzeBatch(forest, artifact.value());
    EXPECT_FALSE(report.HasErrors())
        << "trial " << trial << ":\n"
        << report.ToString();
  }
}

TEST(BatchEquivalenceTest, CleanOnFixtureModels) {
  if (!BatchJitSupported()) {
    GTEST_SKIP() << "batch JIT not supported in this build";
  }
  const char* fixtures[] = {
      "/data/model_ablation_per_pipeline.txt",
      "/data/model_ablation_per_query.txt",
      "/data/model_autowlm_per_query.txt",
      "/data/model_loo_airline.txt",
  };
  for (const char* fixture : fixtures) {
    const std::string path = std::string(T3_SOURCE_DIR) + fixture;
    Result<Forest> forest = Forest::LoadFromFile(path);
    ASSERT_TRUE(forest.ok()) << path << ": " << forest.status().ToString();
    Result<BatchJitArtifact> artifact = EmitForestBatchCode(forest.value());
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
    const AnalysisReport report = AnalyzeBatch(forest.value(), artifact.value());
    EXPECT_FALSE(report.HasErrors()) << fixture << ":\n" << report.ToString();
  }
}

// Every injected corruption of the emitted bytes must be detected. Two
// mutations per offset: a single-bit flip (offset-dependent bit, so every
// bit position is exercised across the buffer) and a whole-byte flip. The
// alignment pad between the last ret and the 8-byte-aligned constant pool
// is excluded: those bytes are neither decoded nor dereferenced, so
// corrupting them is unobservable by construction.
TEST(BatchEquivalenceTest, ByteFlipBatteryDetectsEveryCorruption) {
  if (!BatchJitSupported()) {
    GTEST_SKIP() << "batch JIT not supported in this build";
  }
  Rng rng(4097);
  for (int trial = 0; trial < 3; ++trial) {
    const Forest forest = MakeRandomForest(&rng, 4, 2, 3);
    ASSERT_TRUE(forest.Validate().ok());
    Result<BatchJitArtifact> artifact = EmitForestBatchCode(forest);
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
    const BatchJitArtifact& clean = artifact.value();
    ASSERT_FALSE(AnalyzeBatch(forest, clean).HasErrors());

    const size_t pad_end = (clean.pool_begin + 7) & ~size_t{7};
    for (size_t offset = 0; offset < clean.code.size(); ++offset) {
      if (offset >= clean.pool_begin && offset < pad_end) continue;
      for (const uint8_t mask :
           {static_cast<uint8_t>(1u << (offset % 8)), uint8_t{0xFF}}) {
        BatchJitArtifact corrupt = clean;
        corrupt.code[offset] ^= mask;
        const AnalysisReport report = AnalyzeBatch(forest, corrupt);
        ASSERT_TRUE(report.HasErrors())
            << "trial " << trial << ": flip of byte " << offset << " (mask 0x"
            << std::hex << static_cast<int>(mask)
            << ") slipped past the audit and the validator";
      }
    }
  }
}

TEST(BatchEquivalenceTest, ValidatorRejectsWrongForest) {
  if (!BatchJitSupported()) {
    GTEST_SKIP() << "batch JIT not supported in this build";
  }
  Rng rng(55);
  const Forest forest = MakeRandomForest(&rng, 4, 3, 4);
  Result<BatchJitArtifact> artifact = EmitForestBatchCode(forest);
  ASSERT_TRUE(artifact.ok());

  // Same shape, different thresholds / values: structure or semantics fail.
  Forest other = forest;
  for (Tree& tree : other.trees) {
    for (TreeNode& node : tree.nodes) {
      if (node.is_leaf) {
        node.value += 1.0;
      } else {
        node.threshold += 0.125;
      }
    }
  }
  EXPECT_TRUE(BatchEquivalenceValidator()
                  .Validate(other, artifact->code.data(), artifact->code.size(),
                            artifact->entries, artifact->pool_begin)
                  .HasErrors());

  // Different tree count: rejected before any lifting.
  Forest fewer = forest;
  fewer.trees.pop_back();
  const AnalysisReport report = BatchEquivalenceValidator().Validate(
      fewer, artifact->code.data(), artifact->code.size(), artifact->entries,
      artifact->pool_begin);
  ASSERT_TRUE(report.HasErrors());
  EXPECT_EQ(report.diagnostics()[0].check, "tree-count-mismatch");
}

// The two emitters' vocabularies are disjoint: batch code inside a scalar
// audit and scalar code inside a batch audit are both layout errors, so a
// linker or cache mix-up of the two buffers cannot pass either audit.
TEST(BatchEquivalenceTest, VocabularySeparationBetweenScalarAndBatch) {
  if (!BatchJitSupported()) {
    GTEST_SKIP() << "batch JIT not supported in this build";
  }
  Rng rng(7);
  const Forest forest = MakeRandomForest(&rng, 3, 2, 3);
  Result<JitArtifact> scalar = EmitForestCode(forest);
  Result<BatchJitArtifact> batch = EmitForestBatchCode(forest);
  ASSERT_TRUE(scalar.ok());
  ASSERT_TRUE(batch.ok());

  const JitCodeAuditor auditor;
  // Scalar bytes audited as batch kernels.
  EXPECT_TRUE(auditor
                  .AuditBatch(scalar->code.data(), scalar->code.size(),
                              scalar->entries, scalar->code.size(),
                              forest.num_features)
                  .HasErrors());
  // Batch bytes audited as scalar tree code.
  EXPECT_TRUE(auditor
                  .Audit(batch->code.data(), batch->pool_begin, batch->entries,
                         forest.num_features)
                  .HasErrors());
}

TEST(BatchEquivalenceTest, AuditBatchRejectsBadPoolBounds) {
  if (!BatchJitSupported()) {
    GTEST_SKIP() << "batch JIT not supported in this build";
  }
  Rng rng(11);
  const Forest forest = MakeRandomForest(&rng, 3, 1, 3);
  Result<BatchJitArtifact> artifact = EmitForestBatchCode(forest);
  ASSERT_TRUE(artifact.ok());
  const AnalysisReport report = JitCodeAuditor().AuditBatch(
      artifact->code.data(), artifact->code.size(), artifact->entries,
      /*pool_begin=*/artifact->code.size() + 8, forest.num_features);
  ASSERT_TRUE(report.HasErrors());
  EXPECT_EQ(report.diagnostics()[0].check, "bad-pool-ref");
}

// BatchDifferentialCheck is host-independent: it exercises whatever batched
// entry point it is handed, here the portable evaluators.
TEST(BatchEquivalenceTest, DifferentialCheckAcceptsFaithfulPredictor) {
  Rng rng(21);
  const Forest forest = MakeRandomForest(&rng, 5, 4, 4);
  ASSERT_TRUE(forest.Validate().ok());
  const AnalysisReport report = BatchDifferentialCheck(
      forest, [&forest](const double* rows, size_t num_rows,
                        size_t num_features, double* out) {
        for (size_t i = 0; i < num_rows; ++i) {
          out[i] = forest.Predict(rows + i * num_features);
        }
      });
  EXPECT_FALSE(report.HasErrors()) << report.ToString();
}

TEST(BatchEquivalenceTest, DifferentialCheckDetectsMismatch) {
  Rng rng(22);
  const Forest forest = MakeRandomForest(&rng, 5, 4, 4);
  ASSERT_TRUE(forest.Validate().ok());
  Forest skewed = forest;
  skewed.base_score += 0.5;
  const AnalysisReport report = BatchDifferentialCheck(
      forest, [&skewed](const double* rows, size_t num_rows,
                        size_t num_features, double* out) {
        for (size_t i = 0; i < num_rows; ++i) {
          out[i] = skewed.Predict(rows + i * num_features);
        }
      });
  ASSERT_TRUE(report.HasErrors());
  EXPECT_EQ(report.diagnostics()[0].check, "batch-differential-mismatch");
}

// End to end: Compile with the whole batch analysis stack forced on (the
// release defaults leave it off) accepts every random forest, and the
// compiled batch path matches the reference on a mixed batch.
TEST(BatchEquivalenceTest, CompileWithFullValidationSucceeds) {
  if (!BatchJitSupported()) {
    GTEST_SKIP() << "batch JIT not supported in this build";
  }
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const int num_features = 1 + static_cast<int>(rng.UniformInt(0, 5));
    const Forest forest = MakeRandomForest(
        &rng, num_features, 1 + static_cast<int>(rng.UniformInt(0, 4)),
        1 + static_cast<int>(rng.UniformInt(0, 4)));
    JitCompileOptions options;
    options.audit = true;
    options.validate_translation = true;
    options.enable_batch = true;
    options.validate_batch = true;
    Result<std::unique_ptr<CompiledForest>> compiled =
        CompiledForest::Compile(forest, options);
    ASSERT_TRUE(compiled.ok())
        << "trial " << trial << ": " << compiled.status().ToString();
    EXPECT_TRUE((*compiled)->has_batch_kernels());
    EXPECT_GT((*compiled)->batch_code_size(), 0u);
  }
}

}  // namespace
}  // namespace t3
