#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/thread_pool.h"
#include "harness/corpus.h"
#include "harness/runner.h"
#include "harness/training.h"
#include "querygen/querygen.h"

namespace t3 {
namespace {

const Database& TestDatabase() {
  static const Database* db = []() {
    Result<Database> generated =
        GenerateDatabase("tpch_sf0", /*seed=*/42, /*scale_override=*/0.05,
                         /*pool=*/nullptr);
    T3_CHECK_OK(generated);
    return new Database(*std::move(generated));
  }();
  return *db;
}

TEST(RunnerTest, InstanceSplitBookkeeping) {
  EXPECT_EQ(InstanceScaleIndex("tpch_sf0"), 0);
  EXPECT_EQ(InstanceScaleIndex("tpch_sf2"), 2);
  EXPECT_EQ(InstanceScaleIndex("airline_small"), 1);  // _large sorts first.
  EXPECT_FALSE(InstanceIsTest("tpch_sf1"));
  EXPECT_TRUE(InstanceIsTest("tpcds_sf1"));
  EXPECT_FALSE(InstanceIsTest("imdb_sf1"));
}

TEST(RunnerTest, BenchmarkQueryFillsTheWholeRecord) {
  QueryGenerator generator(&TestDatabase().catalog(), 42);
  Result<GeneratedQuery> query = generator.Generate(QueryGroup::kSeJA, 0);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  Result<QueryRecord> record = BenchmarkQuery(TestDatabase(), *query, 3);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->instance, "tpch_sf0");
  EXPECT_FALSE(record->is_test);
  EXPECT_EQ(record->structure_group,
            static_cast<int>(QueryGroup::kSeJA));
  EXPECT_EQ(record->runs, 3);
  EXPECT_EQ(record->total_run_seconds.size(), 3u);
  EXPECT_GT(record->median_seconds, 0.0);
  EXPECT_FALSE(record->plan_nodes.empty());
  // A SeJA query has a join and an aggregate: at least 3 pipelines.
  EXPECT_GE(record->pipeline_times.size(), 3u);
  ASSERT_EQ(record->feat_true.size(), record->pipeline_times.size());
  ASSERT_EQ(record->feat_est.size(), record->pipeline_times.size());
  for (const PipelineFeatures& features : record->feat_true) {
    EXPECT_EQ(features.values.size(), 48u);
    EXPECT_GT(features.input_cardinality, 0.0);
  }
  // Measured (FT) and estimated (FE) features share the layout but differ
  // in content wherever the estimator is imperfect.
  for (size_t p = 0; p < record->feat_true.size(); ++p) {
    EXPECT_EQ(record->feat_est[p].values.size(),
              record->feat_true[p].values.size());
  }
}

// The PR's acceptance bar: a corpus row produced by the live pipeline
// (querygen -> engine -> featurizer) round-trips bit-exactly through the
// harness corpus loader.
TEST(RunnerTest, LiveCorpusRoundTripsBitExactly) {
  LiveCorpusOptions options;
  options.instances = {"tpch_sf0"};
  options.groups = {QueryGroup::kSe, QueryGroup::kSeJA};
  options.queries_per_group = 2;
  options.fixed_suites = true;
  options.runs = 2;
  options.scale_override = 0.05;
  Result<Corpus> corpus = BuildLiveCorpus(options);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  // 2 groups x 2 queries + the 6 fixed TPC-H-like queries.
  EXPECT_EQ(corpus->records.size(), 10u);

  const std::string text = CorpusToText(*corpus);
  Result<Corpus> reparsed = ParseCorpus(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->records.size(), corpus->records.size());
  EXPECT_EQ(CorpusToText(*reparsed), text);

  // Spot-check semantic equality, not just textual.
  const QueryRecord& a = corpus->records[0];
  const QueryRecord& b = reparsed->records[0];
  EXPECT_EQ(b.instance, a.instance);
  EXPECT_EQ(b.median_seconds, a.median_seconds);
  EXPECT_EQ(b.plan_nodes.size(), a.plan_nodes.size());
  ASSERT_FALSE(b.feat_true.empty());
  EXPECT_EQ(b.feat_true[0].values, a.feat_true[0].values);
  EXPECT_EQ(b.feat_est[0].values, a.feat_est[0].values);
}

// The harness-side half of this contract (byte-identical cache_model files
// from Workbench::GetModel) lives in harness_test; this pins the layer it
// rests on: the training matrix itself is bit-identical however many
// threads fill it.
TEST(RunnerTest, TrainingMatrixIsBitIdenticalAcrossPoolSizes) {
  Result<Corpus> corpus = LoadCorpusFromFile(std::string(T3_SOURCE_DIR) +
                                             "/data/corpus_mini.txt");
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();

  const T3Config config;
  Result<TrainingMatrix> reference = BuildTrainingMatrix(
      *corpus, nullptr, CardinalityMode::kTrue, config, 0, nullptr);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_EQ(reference->num_features, 48u);
  EXPECT_EQ(reference->rows.size(),
            reference->targets.size() * reference->num_features);

  for (const size_t threads : {1u, 3u, 7u}) {
    ThreadPool pool(threads);
    Result<TrainingMatrix> parallel = BuildTrainingMatrix(
        *corpus, nullptr, CardinalityMode::kTrue, config, 0, &pool);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    // std::vector<double> equality is element-wise bitwise equality here:
    // every value must match the sequential fill exactly.
    EXPECT_EQ(parallel->rows, reference->rows) << threads << " threads";
    EXPECT_EQ(parallel->targets, reference->targets) << threads << " threads";
    EXPECT_EQ(parallel->num_features, reference->num_features);
  }
}

TEST(RunnerTest, BenchmarkQueryRejectsZeroRuns) {
  QueryGenerator generator(&TestDatabase().catalog(), 42);
  Result<GeneratedQuery> query = generator.Generate(QueryGroup::kSe, 0);
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(BenchmarkQuery(TestDatabase(), *query, 0).ok());
}

}  // namespace
}  // namespace t3
