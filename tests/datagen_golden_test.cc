// Golden-stats regression test: every one of the 21 instances is generated
// at one small scale and its stats document (row counts, column types, null
// counts, NDV, min/max, content checksums) must match the checked-in
// data/instance_stats_golden.json byte for byte. Any change to the seeding
// scheme, the distributions, a schema, or the stats code shows up as a
// visible fixture diff; regenerate intentionally with `t3_datagen golden`.
//
// Labeled "slow" in tests/CMakeLists.txt: it generates all 21 instances.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "datagen/spec.h"
#include "datagen/stats_json.h"
#include "gtest/gtest.h"

namespace t3 {
namespace {

std::string GoldenPath() {
  return std::string(T3_SOURCE_DIR) + "/data/instance_stats_golden.json";
}

TEST(DatagenGoldenTest, All21InstancesMatchCheckedInStats) {
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good()) << "missing fixture " << GoldenPath()
                         << " (regenerate: t3_datagen golden > "
                            "data/instance_stats_golden.json)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();

  const std::string actual = GoldenStatsJson(kGoldenSeed, kGoldenScale, nullptr);
  if (actual == expected) return;

  // Point at the first diverging line instead of dumping two ~60KB blobs.
  const std::vector<std::string> expected_lines = Split(expected, '\n');
  const std::vector<std::string> actual_lines = Split(actual, '\n');
  size_t line = 0;
  while (line < expected_lines.size() && line < actual_lines.size() &&
         expected_lines[line] == actual_lines[line]) {
    ++line;
  }
  FAIL() << "generated stats diverge from " << GoldenPath() << " at line "
         << line + 1 << ":\n  fixture:   "
         << (line < expected_lines.size() ? expected_lines[line] : "<eof>")
         << "\n  generated: "
         << (line < actual_lines.size() ? actual_lines[line] : "<eof>")
         << "\nIf the generator change is intentional, regenerate with "
            "`t3_datagen golden > data/instance_stats_golden.json`.";
}

TEST(DatagenGoldenTest, FixtureCoversEveryInstance) {
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string fixture = buffer.str();
  EXPECT_EQ(AllInstances().size(), 21u);
  for (const InstanceSpec& spec : AllInstances()) {
    EXPECT_NE(fixture.find("\"" + spec.name + "\":"), std::string::npos)
        << spec.name << " missing from golden fixture";
  }
}

}  // namespace
}  // namespace t3
