#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/forest_diff.h"
#include "common/check.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "gbt/trainer.h"
#include "harness/corpus.h"
#include "harness/evaluate.h"
#include "harness/report.h"
#include "harness/workbench.h"
#include "model/t3_model.h"

namespace t3 {
namespace {

// The tracked mini corpus: a checked-in t3_corpusgen run over tpch_sf0 +
// tpcds_sf0 (groups Se and SeJA plus the fixed suites; see EXPERIMENTS.md
// for the exact invocation). Small enough for git, real enough to pin the
// format end to end.
const Corpus& TestCorpus() {
  static const Corpus* corpus = []() {
    Result<Corpus> loaded = LoadCorpusFromFile(std::string(T3_SOURCE_DIR) +
                                               "/data/corpus_mini.txt");
    T3_CHECK_OK(loaded);
    return new Corpus(*std::move(loaded));
  }();
  return *corpus;
}

#define T3_REQUIRE_CORPUS() const Corpus& corpus = TestCorpus()

TEST(CorpusTest, LoadsCheckedInCorpusFixture) {
  T3_REQUIRE_CORPUS();
  EXPECT_EQ(corpus.records.size(), 24u);

  // Every record is internally consistent.
  size_t test_records = 0;
  for (const QueryRecord& record : corpus.records) {
    ASSERT_FALSE(record.instance.empty());
    ASSERT_EQ(record.total_run_seconds.size(),
              static_cast<size_t>(record.runs));
    ASSERT_EQ(record.feat_true.size(), record.pipeline_times.size());
    ASSERT_EQ(record.feat_est.size(), record.pipeline_times.size());
    ASSERT_GT(record.median_seconds, 0.0);
    for (const PipelineFeatures& features : record.feat_true) {
      ASSERT_EQ(features.values.size(), 48u);
    }
    if (record.is_test) ++test_records;
  }
  // The held-out TPC-DS-like instance contributes half the records.
  EXPECT_EQ(test_records, 12u);
  EXPECT_EQ(corpus.NumPipelines(), 61u);
}

TEST(CorpusTest, SaveLoadRoundTripsExactly) {
  // Round-trip the whole fixture through the writer and parser.
  T3_REQUIRE_CORPUS();
  Corpus slice;
  slice.records = corpus.records;

  const std::string text = CorpusToText(slice);
  Result<Corpus> reparsed = ParseCorpus(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->records.size(), slice.records.size());
  // Bit-exact: re-serializing gives the identical text.
  EXPECT_EQ(CorpusToText(*reparsed), text);

  const QueryRecord& a = slice.records[0];
  const QueryRecord& b = reparsed->records[0];
  EXPECT_EQ(b.instance, a.instance);
  EXPECT_EQ(b.median_seconds, a.median_seconds);
  EXPECT_EQ(b.plan_nodes.size(), a.plan_nodes.size());
  EXPECT_EQ(b.feat_true[0].values, a.feat_true[0].values);
}

TEST(CorpusTest, MissingFileIsAnError) {
  Result<Corpus> corpus = LoadCorpusFromFile("/nonexistent/corpus.txt");
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kNotFound);
}

TEST(CorpusTest, RejectsMalformedHeader) {
  EXPECT_FALSE(ParseCorpus("bogus v1\nrecords 0\n").ok());
}

// A minimal valid one-record corpus used as the starting point for the
// corruption tests below.
std::string TinyCorpusText() {
  return "t3corpus v1\nrecords 1\n"
         "R tpch_sf0 0 0 3 0 1 2 1 0.5\n"
         "N 4 -1 -1 100 0 8 0\n"
         "T 0.5 0.6\n"
         "P 0 0.25 0.2 0.3\n"
         "FT 0 100 4 2 0:1.5 2:7\n"
         "FE 0 90 4 1 1:2.5\n";
}

TEST(CorpusTest, TinyCorpusRoundTrips) {
  Result<Corpus> corpus = ParseCorpus(TinyCorpusText());
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  ASSERT_EQ(corpus->records.size(), 1u);
  EXPECT_EQ(corpus->records[0].feat_true[0].values[2], 7.0);
  EXPECT_TRUE(ParseCorpus(CorpusToText(*corpus)).ok());
}

TEST(CorpusTest, TruncatedCorpusIsAnErrorNotACrash) {
  const std::string full = TinyCorpusText();
  // Every prefix cut before the final token must fail with a Status (a cut
  // *inside* the final number is indistinguishable from a shorter value,
  // so the detectable range ends at the last token's first byte).
  const size_t last_token = full.find_last_of(' ') + 1;
  for (size_t cut = 0; cut <= last_token; cut += 3) {
    Result<Corpus> corpus = ParseCorpus(full.substr(0, cut));
    EXPECT_FALSE(corpus.ok()) << "prefix of " << cut << " bytes parsed";
    EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CorpusTest, RejectsTrailingGarbage) {
  Result<Corpus> corpus = ParseCorpus(TinyCorpusText() + "R leftover\n");
  ASSERT_FALSE(corpus.ok());
  EXPECT_NE(corpus.status().message().find("trailing"), std::string::npos);
}

TEST(CorpusTest, RejectsNonNumericFields) {
  // Non-numeric run time on the T line.
  std::string bad = TinyCorpusText();
  const size_t t_pos = bad.find("T 0.5 0.6");
  ASSERT_NE(t_pos, std::string::npos);
  bad.replace(t_pos, 9, "T 0.5 abc");
  Result<Corpus> corpus = ParseCorpus(bad);
  ASSERT_FALSE(corpus.ok());
  EXPECT_NE(corpus.status().message().find("T line"), std::string::npos);
}

TEST(CorpusTest, RejectsSparseFeatureIndexBeyondDimension) {
  // "2:7" claims index 2 of a dim-4 vector; "9:7" is out of range.
  std::string bad = TinyCorpusText();
  const size_t pos = bad.find("2:7");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 3, "9:7");
  Result<Corpus> corpus = ParseCorpus(bad);
  ASSERT_FALSE(corpus.ok());
  EXPECT_NE(corpus.status().message().find("sparse"), std::string::npos);
}

TEST(CorpusTest, RejectsNonFiniteDoublesWithLineDiagnostic) {
  // TinyCorpusText's T line is line 5 of the file; a non-finite run value
  // there must be rejected and named by line. NaN/inf in a corpus would
  // otherwise flow silently into every downstream statistic.
  for (const char* bad_value : {"nan", "inf", "-inf", "1e999"}) {
    std::string bad = TinyCorpusText();
    const size_t pos = bad.find("T 0.5 0.6");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 9, std::string("T 0.5 ") + bad_value);
    Result<Corpus> corpus = ParseCorpus(bad);
    ASSERT_FALSE(corpus.ok()) << bad_value << " parsed";
    EXPECT_NE(corpus.status().message().find("T line"), std::string::npos)
        << corpus.status().ToString();
    EXPECT_NE(corpus.status().message().find("line 5"), std::string::npos)
        << corpus.status().ToString();
  }
}

TEST(CorpusTest, RejectsNonFiniteMedianOnRLine) {
  std::string bad = TinyCorpusText();
  const size_t pos = bad.find("0.5\nN");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 3, "nan");
  Result<Corpus> corpus = ParseCorpus(bad);
  ASSERT_FALSE(corpus.ok());
  EXPECT_NE(corpus.status().message().find("R line"), std::string::npos);
  EXPECT_NE(corpus.status().message().find("line 3"), std::string::npos)
      << corpus.status().ToString();
}

TEST(CorpusTest, RejectsNonFiniteFeatureValue) {
  std::string bad = TinyCorpusText();
  const size_t pos = bad.find("0:1.5");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 5, "0:inf");
  Result<Corpus> corpus = ParseCorpus(bad);
  ASSERT_FALSE(corpus.ok());
  EXPECT_NE(corpus.status().message().find("sparse"), std::string::npos);
}

TEST(CorpusTest, RejectsNegativeCountsInRecordHeader) {
  // Pipeline count -1 in the R line.
  std::string bad = TinyCorpusText();
  const size_t pos = bad.find("0 1 2 1 0.5");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 11, "0 -1 2 1 0.5");
  EXPECT_FALSE(ParseCorpus(bad).ok());
}

TEST(EvaluateTest, QErrorIsSymmetricRatio) {
  EXPECT_DOUBLE_EQ(QError(2.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(1.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(3.0, 3.0), 1.0);
  // Degenerate actuals are floored, not infinite.
  EXPECT_TRUE(std::isfinite(QError(1.0, 0.0)));
}

TEST(EvaluateTest, SummarizeReducesQErrors) {
  const QErrorSummary summary = Summarize({1, 1, 1, 1, 1, 1, 1, 1, 1, 10});
  EXPECT_DOUBLE_EQ(summary.p50, 1.0);
  EXPECT_NEAR(summary.avg, 1.9, 1e-12);
  EXPECT_GE(summary.p90, 1.0);
}

TEST(EvaluateTest, SelectRecordsFiltersTrainAndTest) {
  T3_REQUIRE_CORPUS();
  const auto train = SelectRecords(
      corpus, [](const QueryRecord& r) { return !r.is_test; });
  const auto test = SelectRecords(
      corpus, [](const QueryRecord& r) { return r.is_test; });
  EXPECT_EQ(train.size() + test.size(), corpus.records.size());
  EXPECT_EQ(test.size(), 12u);
}

TEST(EvaluateTest, TrainedModelBeatsTrivialBaselineOnTrainSet) {
  // Train a small per-tuple model on the fixture and check its q-error is
  // better than predicting the global median for everything.
  T3_REQUIRE_CORPUS();
  std::vector<const QueryRecord*> records;
  for (const QueryRecord& record : corpus.records) records.push_back(&record);

  std::vector<double> rows;
  std::vector<double> targets;
  for (const QueryRecord* record : records) {
    for (size_t p = 0; p < record->feat_true.size(); ++p) {
      const PipelineFeatures& features = record->feat_true[p];
      rows.insert(rows.end(), features.values.begin(), features.values.end());
      const double tuples = std::max(features.input_cardinality, 1.0);
      targets.push_back(TransformTarget(
          record->pipeline_times[p].median_seconds / tuples));
    }
  }
  TrainParams params;
  params.num_trees = 60;
  params.objective = Objective::kMape;
  params.min_data_in_leaf = 2;       // 61 training pipelines in the fixture.
  params.validation_fraction = 0.0;  // Too small to split.
  Result<Forest> forest = TrainForest(rows, targets, 48, params);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  const T3Model model(*std::move(forest), PredictionTarget::kPerTuple);

  const QErrorSummary summary = Summarize(QErrors(model, records));
  EXPECT_LT(summary.p50, 2.0);

  std::vector<double> medians;
  for (const QueryRecord* r : records) medians.push_back(r->median_seconds);
  const double global = Median(medians);
  std::vector<double> baseline_errors;
  for (const QueryRecord* r : records) {
    baseline_errors.push_back(QError(global, r->median_seconds));
  }
  const QErrorSummary baseline = Summarize(baseline_errors);
  EXPECT_LT(summary.p50, baseline.p50)
      << "model p50 " << summary.p50 << " vs baseline p50 " << baseline.p50;
}

// --- Workbench: per-config training, caching, and determinism. ---

std::string MiniCorpusPath() {
  return std::string(T3_SOURCE_DIR) + "/data/corpus_mini.txt";
}

const char* ModeSuffix(CardinalityMode mode) {
  return mode == CardinalityMode::kTrue ? "true" : "est";
}

std::string CacheModelPath(const std::string& data_dir,
                           const std::string& name, CardinalityMode mode) {
  return data_dir + "/cache_model_" + name + "_" + ModeSuffix(mode) + ".txt";
}

/// A fresh (per test-case) scratch data_dir with no stale model caches, so
/// every GetModel call below provably trains rather than reloads.
std::string MakeScratchDataDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/t3_harness_" + name;
  ::mkdir(dir.c_str(), 0755);
  for (const NamedModelConfig& named : NamedModelConfigs()) {
    std::remove(CacheModelPath(dir, named.name, named.mode).c_str());
  }
  std::remove(CacheModelPath(dir, "golden", CardinalityMode::kTrue).c_str());
  return dir;
}

WorkbenchOptions MiniCorpusOptions(size_t num_threads = 4) {
  // Hermetic: a capped tree count from the CI bench-smoke environment would
  // change what these tests train and break the byte-level assertions.
  ::unsetenv("T3_QUICK_TREES");
  WorkbenchOptions options;
  options.corpus_path = MiniCorpusPath();
  options.num_threads = num_threads;
  return options;
}

TEST(WorkbenchTest, GetModelCachesEveryNamedConfigBitExactly) {
  const std::string dir = MakeScratchDataDir("named_configs");
  Workbench workbench(dir, MiniCorpusOptions());

  for (NamedModelConfig named : NamedModelConfigs()) {
    // Small forests keep 7 training runs fast; everything else (target,
    // mode, filters, dropped features, runs limit) is the registry entry.
    named.config.train.num_trees = 12;
    const T3Model& model = workbench.GetModel(named);
    EXPECT_EQ(model.target(), named.config.target) << named.name;

    // The cache file exists and reloads into a forest that ForestDiff
    // proves pointwise identical over the entire input space.
    const std::string cache_path =
        CacheModelPath(dir, named.name, named.mode);
    Result<T3Model> reloaded = T3Model::LoadFromFile(cache_path);
    ASSERT_TRUE(reloaded.ok())
        << named.name << ": " << reloaded.status().ToString();
    EXPECT_EQ(reloaded->target(), model.target()) << named.name;
    Result<ForestDiffBounds> drift =
        ForestDiff(model.forest(), reloaded->forest());
    ASSERT_TRUE(drift.ok()) << drift.status().ToString();
    EXPECT_EQ(drift->MaxAbs(), 0.0) << named.name;

    // A second request is served from memory: same instance, no retrain.
    EXPECT_EQ(&workbench.GetModel(named), &model) << named.name;
  }
}

TEST(WorkbenchTest, SecondWorkbenchServesTheCacheFileUnchanged) {
  const std::string dir = MakeScratchDataDir("cache_reuse");
  T3Config config;
  config.train.num_trees = 10;

  Workbench first(dir, MiniCorpusOptions());
  const T3Model& trained =
      first.GetModel("main", CardinalityMode::kTrue, nullptr, config);
  const std::string cache_path =
      CacheModelPath(dir, "main", CardinalityMode::kTrue);
  Result<std::string> bytes = ReadFileToString(cache_path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  // A fresh process (modeled by a fresh Workbench) loads the cache instead
  // of retraining: the file is byte-identical afterwards and the served
  // model matches the trained one everywhere.
  Workbench second(dir, MiniCorpusOptions());
  const T3Model& served =
      second.GetModel("main", CardinalityMode::kTrue, nullptr, config);
  Result<std::string> bytes_after = ReadFileToString(cache_path);
  ASSERT_TRUE(bytes_after.ok());
  EXPECT_EQ(*bytes_after, *bytes);
  Result<ForestDiffBounds> drift =
      ForestDiff(trained.forest(), served.forest());
  ASSERT_TRUE(drift.ok());
  EXPECT_EQ(drift->MaxAbs(), 0.0);
}

TEST(WorkbenchTest, TrainingIsByteDeterministicAcrossThreadCounts) {
  // The tentpole determinism contract: the same corpus and config produce
  // byte-identical cache files no matter how many threads assemble the
  // training matrix.
  T3Config config;
  config.train.num_trees = 24;

  std::string reference_bytes;
  size_t thread_counts[] = {1, 5};
  for (size_t i = 0; i < 2; ++i) {
    const std::string dir = MakeScratchDataDir(
        StrFormat("determinism_%zu", thread_counts[i]));
    Workbench workbench(dir, MiniCorpusOptions(thread_counts[i]));
    workbench.GetModel("main", CardinalityMode::kTrue, nullptr, config);
    Result<std::string> bytes = ReadFileToString(
        CacheModelPath(dir, "main", CardinalityMode::kTrue));
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    ASSERT_FALSE(bytes->empty());
    if (i == 0) {
      reference_bytes = *std::move(bytes);
    } else {
      EXPECT_EQ(*bytes, reference_bytes)
          << "training with " << thread_counts[i]
          << " threads diverged from the single-threaded run";
    }
  }
}

TEST(WorkbenchTest, GetModelIsThreadSafeUnderConcurrentCallers) {
  // Regression: the model-cache map had no locking, so two threads
  // requesting models concurrently raced on `models_` (a crash or a
  // double-train under TSan/ASan). The prediction server trains its
  // serving model while a SIGHUP swap can request another, so GetModel
  // must serialize internally. Hammer it from several threads asking for
  // the same and for different configurations; every same-name call must
  // return the same instance (trained exactly once).
  const std::string dir = MakeScratchDataDir("concurrent_getmodel");
  Workbench workbench(dir, MiniCorpusOptions());

  T3Config small;
  small.train.num_trees = 8;
  T3Config per_pipeline = small;
  per_pipeline.target = PredictionTarget::kPerPipeline;

  constexpr int kThreads = 8;
  const T3Model* mains[kThreads] = {};
  const T3Model* others[kThreads] = {};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      mains[i] = &workbench.GetModel("main", CardinalityMode::kTrue,
                                     nullptr, small);
      others[i] = &workbench.GetModel(
          i % 2 == 0 ? "conc_a" : "conc_b", CardinalityMode::kTrue, nullptr,
          i % 2 == 0 ? small : per_pipeline);
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(mains[i], nullptr);
    EXPECT_EQ(mains[i], mains[0]) << "thread " << i;
    ASSERT_NE(others[i], nullptr);
    EXPECT_EQ(others[i], others[i % 2]) << "thread " << i;
  }
  EXPECT_EQ(others[0]->target(), PredictionTarget::kPerTuple);
  EXPECT_EQ(others[1]->target(), PredictionTarget::kPerPipeline);

  // The scratch-dir hygiene of MakeScratchDataDir only clears registry
  // names; clear this test's extra cache files for the next run.
  std::remove(CacheModelPath(dir, "conc_a", CardinalityMode::kTrue).c_str());
  std::remove(CacheModelPath(dir, "conc_b", CardinalityMode::kTrue).c_str());
  std::remove(CacheModelPath(dir, "main", CardinalityMode::kTrue).c_str());
}

TEST(WorkbenchTest, CorruptCacheIsRejectedAndRetrained) {
  // tests/data/model_corrupt.txt parses but fails validation: a split node
  // reads feature 99 of a 48-feature model. The loader must reject it (as
  // an error, not a missing file) and GetModel must retrain and overwrite
  // it rather than serve the bad model.
  const std::string fixture =
      std::string(T3_SOURCE_DIR) + "/tests/data/model_corrupt.txt";
  Result<std::string> corrupt = ReadFileToString(fixture);
  ASSERT_TRUE(corrupt.ok()) << corrupt.status().ToString();

  Result<T3Model> direct = T3Model::LoadFromFile(fixture);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().code(), StatusCode::kNotFound);
  EXPECT_NE(direct.status().message().find("out of range"),
            std::string::npos)
      << direct.status().ToString();

  const std::string dir = MakeScratchDataDir("corrupt_cache");
  const std::string cache_path =
      CacheModelPath(dir, "main", CardinalityMode::kTrue);
  ASSERT_TRUE(WriteStringToFile(cache_path, *corrupt).ok());

  T3Config config;
  config.train.num_trees = 10;
  Workbench workbench(dir, MiniCorpusOptions());
  const T3Model& model =
      workbench.GetModel("main", CardinalityMode::kTrue, nullptr, config);
  // The served model is a real retrained forest, not the planted stub...
  EXPECT_GT(model.forest().trees.size(), 1u);
  // ...and the cache now holds it, proven by reload + ForestDiff.
  Result<T3Model> reloaded = T3Model::LoadFromFile(cache_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  Result<ForestDiffBounds> drift =
      ForestDiff(model.forest(), reloaded->forest());
  ASSERT_TRUE(drift.ok());
  EXPECT_EQ(drift->MaxAbs(), 0.0);
}

TEST(EvaluateTest, EvaluateModelMatchesGoldenFixture) {
  // Digit-level golden for the whole EvaluateModel path: a deterministic
  // 32-tree model trained on the mini corpus train split, evaluated on the
  // 12 held-out records. Regenerate intentionally after a trainer or
  // featurizer change with:
  //   T3_UPDATE_GOLDEN=1 ./build/tests/harness_test
  //     --gtest_filter='*EvaluateModelMatchesGoldenFixture*'
  const std::string dir = MakeScratchDataDir("eval_golden");
  Workbench workbench(dir, MiniCorpusOptions());
  T3Config config;
  config.train.num_trees = 32;
  const T3Model& model =
      workbench.GetModel("golden", CardinalityMode::kTrue, nullptr, config);

  const auto test_records = SelectRecords(
      workbench.corpus(), [](const QueryRecord& r) { return r.is_test; });
  ASSERT_EQ(test_records.size(), 12u);
  const std::vector<RecordEvaluation> evals =
      EvaluateModel(model, test_records);
  ASSERT_EQ(evals.size(), test_records.size());

  std::string text;
  for (const RecordEvaluation& eval : evals) {
    EXPECT_DOUBLE_EQ(
        eval.q_error, QError(eval.predicted_seconds, eval.actual_seconds));
    text += StrFormat("%s g%d predicted=%.17g actual=%.17g q=%.17g\n",
                      eval.record->instance.c_str(),
                      eval.record->structure_group, eval.predicted_seconds,
                      eval.actual_seconds, eval.q_error);
  }
  text += "summary " + Summarize(evals).ToString() + "\n";

  const std::string golden_path =
      std::string(T3_SOURCE_DIR) + "/tests/data/eval_golden.txt";
  if (std::getenv("T3_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(WriteStringToFile(golden_path, text).ok());
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  Result<std::string> golden = ReadFileToString(golden_path);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  EXPECT_EQ(text, *golden)
      << "EvaluateModel output drifted from tests/data/eval_golden.txt; "
         "if the trainer/featurizer change is intentional, regenerate with "
         "T3_UPDATE_GOLDEN=1.";
}

TEST(EvaluateTest, QErrorsOfEvaluationsMatchesDirectQErrors) {
  T3_REQUIRE_CORPUS();
  std::vector<const QueryRecord*> records;
  for (const QueryRecord& record : corpus.records) records.push_back(&record);

  TrainParams params;
  params.num_trees = 20;
  params.objective = Objective::kMape;
  params.min_data_in_leaf = 2;
  params.validation_fraction = 0.0;
  std::vector<double> rows;
  std::vector<double> targets;
  for (const QueryRecord* record : records) {
    for (size_t p = 0; p < record->feat_true.size(); ++p) {
      const PipelineFeatures& features = record->feat_true[p];
      rows.insert(rows.end(), features.values.begin(), features.values.end());
      const double tuples = std::max(features.input_cardinality, 1.0);
      targets.push_back(TransformTarget(
          record->pipeline_times[p].median_seconds / tuples));
    }
  }
  Result<Forest> forest = TrainForest(rows, targets, 48, params);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  const T3Model model(*std::move(forest), PredictionTarget::kPerTuple);

  // EvaluateModel is the structured view of the QErrors scalar path: same
  // records, same numbers, bit for bit.
  const std::vector<RecordEvaluation> evals = EvaluateModel(model, records);
  const std::vector<double> direct = QErrors(model, records);
  ASSERT_EQ(evals.size(), direct.size());
  for (size_t i = 0; i < evals.size(); ++i) {
    EXPECT_EQ(evals[i].q_error, direct[i]);
    EXPECT_EQ(evals[i].record, records[i]);
    EXPECT_EQ(evals[i].actual_seconds, records[i]->median_seconds);
  }
  const QErrorSummary from_evals = Summarize(evals);
  const QErrorSummary from_errors = Summarize(QErrors(evals));
  EXPECT_EQ(from_evals.ToString(), from_errors.ToString());
}

TEST(ReportTest, TableFormatsAlignedColumns) {
  ReportTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "20000"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("20000"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

}  // namespace
}  // namespace t3
