#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/forest_diff.h"
#include "analysis/interval_domain.h"
#include "analysis/translation_validator.h"
#include "analysis/tree_lifter.h"
#include "analysis/x86_decoder.h"
#include "common/random.h"
#include "gbt/forest.h"
#include "gbt/trainer.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TreeNode Inner(int feature, double threshold, int left, int right,
               bool default_left = false) {
  TreeNode node;
  node.is_leaf = false;
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  node.default_left = default_left;
  return node;
}

TreeNode Leaf(double value) {
  TreeNode node;
  node.is_leaf = true;
  node.value = value;
  return node;
}

Forest OneTreeForest(std::vector<TreeNode> nodes, int num_features = 4) {
  Forest forest;
  forest.num_features = num_features;
  forest.trees.push_back(Tree{std::move(nodes)});
  return forest;
}

/// A randomized, structurally valid forest with distinct leaf values (so a
/// rerouted path always changes the computed function), thresholds
/// including denormals and exact grid values, and random NaN routing.
Forest RandomForest(Rng* rng) {
  Forest forest;
  forest.num_features = static_cast<int>(rng->UniformInt(1, 48));
  forest.base_score = rng->UniformDouble(-10, 10);
  const int num_trees = static_cast<int>(rng->UniformInt(1, 6));
  double next_leaf = rng->UniformDouble(0, 1);
  for (int t = 0; t < num_trees; ++t) {
    Tree tree;
    tree.nodes.push_back(TreeNode{});
    std::vector<int> leaves = {0};
    const int splits = static_cast<int>(rng->UniformInt(0, 30));
    for (int s = 0; s < splits; ++s) {
      const size_t pick = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(leaves.size()) - 1));
      const int index = leaves[pick];
      leaves.erase(leaves.begin() + static_cast<ptrdiff_t>(pick));
      const int left = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{});
      const int right = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{});
      double threshold = 0.25 * static_cast<double>(rng->UniformInt(-8, 8));
      if (rng->Bernoulli(0.1)) {
        threshold = std::numeric_limits<double>::denorm_min() *
                    static_cast<double>(rng->UniformInt(1, 5));
      }
      tree.nodes[static_cast<size_t>(index)] = Inner(
          static_cast<int>(rng->UniformInt(0, forest.num_features - 1)),
          threshold, left, right, rng->Bernoulli(0.3));
      leaves.push_back(left);
      leaves.push_back(right);
    }
    for (const int leaf : leaves) {
      tree.nodes[static_cast<size_t>(leaf)] = Leaf(next_leaf);
      next_leaf += 1.0;  // Distinct by construction.
    }
    forest.trees.push_back(std::move(tree));
  }
  return forest;
}

AnalysisReport Validate(const Forest& forest, const JitArtifact& artifact) {
  return TranslationValidator().Validate(forest, artifact.code.data(),
                                         artifact.code.size(),
                                         artifact.entries);
}

bool HasError(const AnalysisReport& report, const std::string& check) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.check == check && d.severity == Severity::kError) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Ordered-key interval domain: the exactness of the cell proof rests on the
// key mapping being a strict order isomorphism (zeros collapsed).

TEST(IntervalDomainTest, OrderedKeyIsMonotoneAndCollapsesZeros) {
  const double denorm = std::numeric_limits<double>::denorm_min();
  const std::vector<double> ladder = {
      -std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::max(), -1.5, -denorm, 0.0, denorm,
      std::numeric_limits<double>::min(), 1.5,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity()};
  for (size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(OrderedKey(ladder[i - 1]), OrderedKey(ladder[i]))
        << ladder[i - 1] << " vs " << ladder[i];
  }
  EXPECT_EQ(OrderedKey(-0.0), OrderedKey(0.0));
  // The raw -0.0 slot is a phantom: stepping across it skips it, so the
  // interval {x : x < 0} ends at -denorm_min, not at "-0.0".
  EXPECT_EQ(DoubleFromKey(PredKey(OrderedKey(0.0))), -denorm);
  EXPECT_EQ(DoubleFromKey(SuccKey(OrderedKey(-denorm))), 0.0);
}

TEST(IntervalDomainTest, LeafCellsPartitionTheDomain) {
  // Cells of a 2-split tree: evaluating the tree on each cell's witness
  // must reach exactly the cell's leaf.
  const Forest forest = OneTreeForest(
      {Inner(0, 0.5, 1, 2, /*default_left=*/true),
       Inner(1, -0.25, 3, 4), Leaf(7.0), Leaf(8.0), Leaf(9.0)},
      /*num_features=*/2);
  int cells = 0;
  ForEachLeafCell(forest.trees[0], FeatureBox::Full(2),
                  [&](int leaf, const FeatureBox& box) {
                    ++cells;
                    const std::vector<double> row = box.Witness();
                    EXPECT_EQ(PredictTree(forest.trees[0], row.data()),
                              forest.trees[0]
                                  .nodes[static_cast<size_t>(leaf)]
                                  .value);
                  });
  EXPECT_EQ(cells, 3);
}

// ---------------------------------------------------------------------------
// TranslationValidator: clean code proves equivalent.

class TranslationValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!JitSupported()) GTEST_SKIP() << "no x86-64 emitter on this host";
  }
};

TEST_F(TranslationValidatorTest, ProvesEveryCheckedInFixture) {
  for (const char* name :
       {"model_ablation_per_pipeline.txt", "model_ablation_per_query.txt",
        "model_autowlm_per_query.txt", "model_loo_airline.txt",
        "cache_model_main.txt"}) {
    const std::string path =
        std::string(T3_SOURCE_DIR) + "/data/" + name;
    Result<Forest> forest = Forest::LoadFromFile(path);
    // cache_* files are generated by the workbench, not checked in; they
    // are validated when present (local runs) but a fresh checkout lacks
    // them.
    if (!forest.ok() && std::string(name).rfind("cache_", 0) == 0) continue;
    ASSERT_TRUE(forest.ok()) << name << ": " << forest.status().ToString();
    Result<JitArtifact> artifact = EmitForestCode(*forest);
    ASSERT_TRUE(artifact.ok()) << name;
    const AnalysisReport report = Validate(*forest, *artifact);
    EXPECT_FALSE(report.HasErrors()) << name << ":\n" << report.ToString();
  }
}

TEST_F(TranslationValidatorTest, ProvesHundredRandomizedForests) {
  Rng rng(414243);
  for (int i = 0; i < 100; ++i) {
    const Forest forest = RandomForest(&rng);
    ASSERT_TRUE(forest.Validate().ok()) << "sweep " << i;
    Result<JitArtifact> artifact = EmitForestCode(forest);
    ASSERT_TRUE(artifact.ok()) << "sweep " << i;
    const AnalysisReport report = Validate(forest, *artifact);
    EXPECT_FALSE(report.HasErrors())
        << "sweep " << i << ":\n" << report.ToString();
  }
}

TEST_F(TranslationValidatorTest, ProvesFiftyFreshlyTrainedForests) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const int num_features = 2 + static_cast<int>(rng.UniformInt(0, 4));
    const size_t num_rows = 120;
    std::vector<double> rows(num_rows * static_cast<size_t>(num_features));
    for (double& v : rows) v = rng.UniformDouble(-3, 3);
    std::vector<double> targets(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      targets[r] = rows[r * static_cast<size_t>(num_features)] +
                   0.5 * rows[r * static_cast<size_t>(num_features) + 1] +
                   rng.Gaussian(0, 0.05);
    }
    TrainParams params;
    params.num_trees = 8;
    params.max_leaves = 8;
    Result<Forest> forest =
        TrainForest(rows, targets, num_features, params);
    ASSERT_TRUE(forest.ok()) << "trained forest " << i;
    Result<JitArtifact> artifact = EmitForestCode(*forest);
    ASSERT_TRUE(artifact.ok()) << "trained forest " << i;
    const AnalysisReport report = Validate(*forest, *artifact);
    EXPECT_FALSE(report.HasErrors())
        << "trained forest " << i << ":\n" << report.ToString();
  }
}

// ---------------------------------------------------------------------------
// Mutation coverage: the acceptance bar is that a single byte-flip in any
// threshold/leaf immediate, or one swapped branch polarity, is always
// caught as an equivalence error.

class MutationTest : public TranslationValidatorTest {
 protected:
  void SetUp() override {
    TranslationValidatorTest::SetUp();
    if (IsSkipped()) return;
    // Mixed NaN routing, denormal threshold, disp32 feature, two trees,
    // distinct leaf values everywhere.
    forest_ = Forest();
    forest_.num_features = 24;
    forest_.trees.push_back(
        Tree{{Inner(20, 0.5, 1, 2, /*default_left=*/false), Leaf(1.0),
              Inner(2, std::numeric_limits<double>::denorm_min(), 3, 4,
                    /*default_left=*/true),
              Leaf(2.0), Leaf(3.0)}});
    forest_.trees.push_back(
        Tree{{Inner(0, -0.75, 1, 2, /*default_left=*/true), Leaf(4.0),
              Leaf(5.0)}});
    ASSERT_TRUE(forest_.Validate().ok());
    Result<JitArtifact> artifact = EmitForestCode(forest_);
    ASSERT_TRUE(artifact.ok());
    artifact_ = *std::move(artifact);
  }

  /// Offsets of every instruction of kind `op` across the buffer.
  std::vector<size_t> AllOps(JitOp op) const {
    std::vector<size_t> offsets;
    const DecodedCode decoded =
        DecodeLinear(artifact_.code.data(), artifact_.code.size());
    EXPECT_TRUE(decoded.ok);
    for (const auto& [at, instruction] : decoded.instructions) {
      if (instruction.op == op) offsets.push_back(at);
    }
    return offsets;
  }

  Forest forest_;
  JitArtifact artifact_;
};

TEST_F(MutationTest, EveryImmediateByteFlipIsAnEquivalenceError) {
  // Every mov rax, imm64 carries either a threshold or a leaf value; every
  // single-byte flip of every immediate must be detected.
  const std::vector<size_t> immediates = AllOps(JitOp::kMovRaxImm64);
  ASSERT_EQ(immediates.size(), forest_.NumNodes());
  int mutations = 0;
  for (const size_t at : immediates) {
    for (size_t byte = 0; byte < 8; ++byte) {
      JitArtifact mutated = artifact_;
      mutated.code[at + 2 + byte] ^= 0x20;
      const AnalysisReport report = Validate(forest_, mutated);
      EXPECT_TRUE(report.HasErrors())
          << "immediate flip at offset " << at << " byte " << byte
          << " not detected";
      EXPECT_TRUE(HasError(report, "threshold-mismatch") ||
                  HasError(report, "leaf-value-mismatch"))
          << report.ToString();
      ++mutations;
    }
  }
  EXPECT_EQ(mutations, static_cast<int>(8 * forest_.NumNodes()));
}

TEST_F(MutationTest, EverySwappedBranchPolarityIsAnEquivalenceError) {
  // ja <-> jb is a one-byte flip (0x87 <-> 0x82) that keeps the buffer
  // decodable but inverts the comparison the node performs.
  std::vector<size_t> branches = AllOps(JitOp::kJa);
  const std::vector<size_t> jbs = AllOps(JitOp::kJb);
  branches.insert(branches.end(), jbs.begin(), jbs.end());
  ASSERT_EQ(branches.size(),
            forest_.NumNodes() - forest_.NumLeaves());
  for (const size_t at : branches) {
    JitArtifact mutated = artifact_;
    mutated.code[at + 1] = mutated.code[at + 1] == 0x87 ? 0x82 : 0x87;
    const AnalysisReport report = Validate(forest_, mutated);
    EXPECT_TRUE(report.HasErrors())
        << "polarity swap at offset " << at << " not detected";
    EXPECT_TRUE(HasError(report, "branch-polarity-mismatch"))
        << report.ToString();
    EXPECT_TRUE(HasError(report, "semantic-mismatch")) << report.ToString();
  }
}

TEST_F(MutationTest, RetargetedBranchIsDetected) {
  // Point the first tree's root branch at the *other* leaf-shaped node
  // boundary... simplest robust variant: swap the branch target to the
  // node that follows the fallthrough node, rerouting the left subtree.
  const std::vector<size_t> branches = AllOps(JitOp::kJa);
  ASSERT_FALSE(branches.empty());
  const size_t at = branches.front();
  // Retarget to the region's own entry: lifts to a cycle.
  const int64_t rel = -(static_cast<int64_t>(at) + 6);
  JitArtifact mutated = artifact_;
  for (int i = 0; i < 4; ++i) {
    mutated.code[at + 2 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(static_cast<uint64_t>(rel) >> (8 * i));
  }
  const AnalysisReport report = Validate(forest_, mutated);
  EXPECT_TRUE(HasError(report, "lifted-cycle")) << report.ToString();
}

TEST_F(MutationTest, FlippedFeatureLoadIsDetected) {
  const std::vector<size_t> loads = AllOps(JitOp::kLoadFeature8);
  ASSERT_FALSE(loads.empty());
  JitArtifact mutated = artifact_;
  mutated.code[loads.front() + 4] ^= 8;  // Feature k -> k ^ 1.
  const AnalysisReport report = Validate(forest_, mutated);
  EXPECT_TRUE(HasError(report, "feature-mismatch")) << report.ToString();
  EXPECT_TRUE(HasError(report, "semantic-mismatch")) << report.ToString();
}

TEST_F(MutationTest, TreeCountMismatchIsDetected) {
  Forest shorter = forest_;
  shorter.trees.pop_back();
  const AnalysisReport report = Validate(shorter, artifact_);
  EXPECT_TRUE(HasError(report, "tree-count-mismatch"));
}

TEST_F(MutationTest, UnknownOpcodeFailsTheLift) {
  JitArtifact mutated = artifact_;
  mutated.code[0] = 0x90;  // nop is not in the whitelist.
  const AnalysisReport report = Validate(forest_, mutated);
  EXPECT_TRUE(HasError(report, "undecodable-code"));
}

// The lifter models all four ucomisd/jcc combinations; a swapped polarity
// on a NaN-routing-left node yields kGt semantics that differ from the IR
// at x == threshold and on NaN — exactly what the semantic witness shows.
TEST_F(TranslationValidatorTest, LiftedSemanticsMatchExecutionOnMutants) {
  // Build a one-node tree, swap its branch byte, and check the *lifted*
  // semantics agree with what the mutated code actually computes.
  const Forest forest = OneTreeForest(
      {Inner(0, 1.5, 1, 2, /*default_left=*/false), Leaf(-1.0), Leaf(1.0)},
      /*num_features=*/1);
  Result<JitArtifact> artifact = EmitForestCode(forest);
  ASSERT_TRUE(artifact.ok());
  JitArtifact mutated = *artifact;
  bool swapped = false;
  for (size_t i = 0; i + 1 < mutated.code.size(); ++i) {
    if (mutated.code[i] == 0x0F && mutated.code[i + 1] == 0x87) {
      mutated.code[i + 1] = 0x82;  // ja -> jb.
      swapped = true;
      break;
    }
  }
  ASSERT_TRUE(swapped);
  AnalysisReport report;
  std::vector<LiftedTree> lifted;
  TreeLifter().LiftForest(mutated.code.data(), mutated.code.size(),
                          mutated.entries, &lifted, &report);
  ASSERT_FALSE(report.HasErrors()) << report.ToString();
  ASSERT_EQ(lifted.size(), 1u);
  const LiftedNode& root = lifted[0].nodes[0];
  // ucomisd xmm1, xmm0 ; jb — taken iff threshold < x or unordered.
  EXPECT_EQ(root.cmp, LiftedNode::Cmp::kGt);
  EXPECT_TRUE(root.nan_jumps);
  // And the validator flags it.
  EXPECT_TRUE(Validate(forest, mutated).HasErrors());
}

// ---------------------------------------------------------------------------
// ForestDiff.

TEST(ForestDiffTest, IdenticalForestsProveZeroDivergence) {
  Rng rng(5150);
  for (int i = 0; i < 10; ++i) {
    const Forest forest = RandomForest(&rng);
    Result<ForestDiffBounds> bounds = ForestDiff(forest, forest);
    ASSERT_TRUE(bounds.ok());
    EXPECT_EQ(bounds->min, 0.0) << "sweep " << i;
    EXPECT_EQ(bounds->max, 0.0) << "sweep " << i;
    EXPECT_EQ(bounds->MaxAbs(), 0.0);
  }
}

TEST(ForestDiffTest, SingleLeafPerturbationIsBoundedExactly) {
  const Forest a = OneTreeForest(
      {Inner(0, 0.5, 1, 2), Leaf(1.0), Leaf(2.0)});
  Forest b = a;
  b.trees[0].nodes[1].value = 1.25;  // Left leaf moved by -0.25 (a - b).
  Result<ForestDiffBounds> bounds = ForestDiff(a, b);
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->min, -0.25);
  EXPECT_EQ(bounds->max, 0.0);
  EXPECT_EQ(bounds->MaxAbs(), 0.25);
}

TEST(ForestDiffTest, BaseScoreAndExtraTreesContribute) {
  Forest a = OneTreeForest({Leaf(1.0)});
  a.base_score = 2.0;
  Forest b = a;
  b.base_score = 1.5;
  b.trees.push_back(Tree{{Inner(0, 0.0, 1, 2), Leaf(-1.0), Leaf(3.0)}});
  // a - b = 0.5 - extra_tree, extra in [-1, 3] -> diff in [-2.5, 1.5].
  Result<ForestDiffBounds> bounds = ForestDiff(a, b);
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->min, -2.5);
  EXPECT_EQ(bounds->max, 1.5);
}

TEST(ForestDiffTest, BoundIsSoundOnSampledRows) {
  Rng rng(90210);
  for (int i = 0; i < 20; ++i) {
    Forest a = RandomForest(&rng);
    // b: same shape with every leaf independently nudged — a realistic
    // retraining drift shape.
    Forest b = a;
    for (Tree& tree : b.trees) {
      for (TreeNode& node : tree.nodes) {
        if (node.is_leaf && rng.Bernoulli(0.5)) {
          node.value += rng.UniformDouble(-0.5, 0.5);
        }
      }
    }
    Result<ForestDiffBounds> bounds = ForestDiff(a, b);
    ASSERT_TRUE(bounds.ok());
    std::vector<double> row(static_cast<size_t>(a.num_features));
    for (int r = 0; r < 100; ++r) {
      for (double& v : row) {
        v = rng.Bernoulli(0.15) ? kNan
                                : 0.25 * static_cast<double>(
                                             rng.UniformInt(-8, 8));
      }
      const double d = a.Predict(row.data()) - b.Predict(row.data());
      EXPECT_GE(d, bounds->min - 1e-12) << "sweep " << i;
      EXPECT_LE(d, bounds->max + 1e-12) << "sweep " << i;
    }
  }
}

TEST(ForestDiffTest, RejectsMismatchedFeatureSpacesAndInvalidInput) {
  const Forest a = OneTreeForest({Leaf(1.0)}, /*num_features=*/4);
  const Forest b = OneTreeForest({Leaf(1.0)}, /*num_features=*/5);
  EXPECT_FALSE(ForestDiff(a, b).ok());
  Forest invalid = a;
  invalid.base_score = kNan;
  EXPECT_FALSE(ForestDiff(invalid, a).ok());
}

}  // namespace
}  // namespace t3
