// Round-trip and edge-case coverage for the columnar storage layer: empty
// tables, all-null columns, single-row tables, strings with embedded
// separators, stats idempotence, catalog lookups, checksum sensitivity.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/catalog.h"
#include "storage/checksum.h"
#include "storage/column.h"
#include "storage/column_stats.h"
#include "storage/table.h"
#include "storage/types.h"

namespace t3 {
namespace {

TEST(TypesTest, DateCivilRoundTrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(FormatDate(0), "1970-01-01");
  EXPECT_EQ(FormatDate(DaysFromCivil(2000, 2, 29)), "2000-02-29");
  // Round-trip across a wide range, including leap-century boundaries.
  for (int64_t days = -200000; days <= 200000; days += 373) {
    int y = 0, m = 0, d = 0;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

TEST(ColumnTest, AppendAndReadBack) {
  Column col("c", ColumnType::kInt64);
  col.AppendInt64(7);
  col.AppendNull();
  col.AppendInt64(-3);
  ASSERT_EQ(col.size(), 3u);
  Int64ColumnRef ref = col.Int64Ref();
  EXPECT_EQ(ref[0], 7);
  EXPECT_TRUE(ref.IsNull(1));
  EXPECT_FALSE(ref.IsNull(0));
  EXPECT_EQ(ref[2], -3);
}

TEST(ColumnTest, ResizeSetMatchesAppend) {
  Column appended("c", ColumnType::kFloat64);
  appended.AppendFloat64(1.5);
  appended.AppendNull();
  appended.AppendFloat64(-2.25);

  Column set("c", ColumnType::kFloat64);
  set.Resize(3);
  set.SetFloat64(0, 1.5);
  set.SetNull(1);
  set.SetFloat64(2, -2.25);

  EXPECT_EQ(ColumnChecksum(appended), ColumnChecksum(set));
}

TEST(ColumnTest, StringsWithEmbeddedSeparators) {
  const std::vector<std::string> values = {
      "plain",  "comma,inside",      "pipe|inside", "tab\tinside",
      "newline\ninside", "quote\"inside", " leading and trailing ", ""};
  Column col("s", ColumnType::kString);
  for (const std::string& v : values) col.AppendString(v);
  StringColumnRef ref = col.StringRef();
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(ref[i], values[i]);

  // Separator bytes must flow into the checksum; "a,b" split differently from
  // {"a," "b"} must not collide thanks to length prefixing.
  Column a("s", ColumnType::kString);
  a.AppendString("a,");
  a.AppendString("b");
  Column b("s", ColumnType::kString);
  b.AppendString("a");
  b.AppendString(",b");
  EXPECT_NE(ColumnChecksum(a), ColumnChecksum(b));

  const ColumnStats stats = ComputeColumnStats(col);
  EXPECT_EQ(stats.ndv, values.size());
  EXPECT_TRUE(stats.ndv_exact);
  EXPECT_EQ(stats.min_str, "");  // Empty string sorts first.
}

TEST(ColumnStatsTest, EmptyColumn) {
  Column col("c", ColumnType::kInt64);
  const ColumnStats stats = ComputeColumnStats(col);
  EXPECT_EQ(stats.row_count, 0u);
  EXPECT_EQ(stats.null_count, 0u);
  EXPECT_FALSE(stats.has_range);
  EXPECT_EQ(stats.ndv, 0u);
  EXPECT_TRUE(stats.histogram_bounds.empty());
}

TEST(ColumnStatsTest, AllNullColumn) {
  Column col("c", ColumnType::kFloat64);
  for (int i = 0; i < 100; ++i) col.AppendNull();
  const ColumnStats stats = ComputeColumnStats(col);
  EXPECT_EQ(stats.row_count, 100u);
  EXPECT_EQ(stats.null_count, 100u);
  EXPECT_DOUBLE_EQ(stats.null_fraction(), 1.0);
  EXPECT_FALSE(stats.has_range);
  EXPECT_EQ(stats.ndv, 0u);
  EXPECT_TRUE(stats.histogram_bounds.empty());
}

TEST(ColumnStatsTest, SingleRow) {
  Column col("c", ColumnType::kInt64);
  col.AppendInt64(42);
  const ColumnStats stats = ComputeColumnStats(col);
  EXPECT_TRUE(stats.has_range);
  EXPECT_EQ(stats.min_i64, 42);
  EXPECT_EQ(stats.max_i64, 42);
  EXPECT_EQ(stats.ndv, 1u);
  ASSERT_EQ(stats.histogram_bounds.size(), kNumHistogramBuckets + 1);
  EXPECT_DOUBLE_EQ(stats.histogram_bounds.front(), 42.0);
  EXPECT_DOUBLE_EQ(stats.histogram_bounds.back(), 42.0);
}

TEST(ColumnStatsTest, RecomputationIsIdempotent) {
  Column col("c", ColumnType::kInt64);
  for (int i = 0; i < 5000; ++i) {
    if (i % 7 == 0) {
      col.AppendNull();
    } else {
      col.AppendInt64(i % 123);
    }
  }
  const ColumnStats first = ComputeColumnStats(col);
  const ColumnStats second = ComputeColumnStats(col);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.ndv, 123u);  // Every residue survives the null thinning.
}

TEST(ColumnStatsTest, ExactNdvSmallAndEstimateLarge) {
  Column small("c", ColumnType::kInt64);
  for (int i = 0; i < 200; ++i) small.AppendInt64(i % 50);
  const ColumnStats small_stats = ComputeColumnStats(small);
  EXPECT_TRUE(small_stats.ndv_exact);
  EXPECT_EQ(small_stats.ndv, 50u);

  Column large("c", ColumnType::kInt64);
  for (int i = 0; i < 50000; ++i) large.AppendInt64(i);
  const ColumnStats large_stats = ComputeColumnStats(large);
  EXPECT_FALSE(large_stats.ndv_exact);
  // KMV with k=256 should land within ~20% on 50k distinct values.
  EXPECT_GT(large_stats.ndv, 40000u);
  EXPECT_LT(large_stats.ndv, 60000u);
}

TEST(ColumnStatsTest, EquiDepthHistogramBoundsAreQuantiles) {
  Column col("c", ColumnType::kFloat64);
  for (int i = 0; i <= 1600; ++i) col.AppendFloat64(i);
  const ColumnStats stats = ComputeColumnStats(col);
  ASSERT_EQ(stats.histogram_bounds.size(), kNumHistogramBuckets + 1);
  EXPECT_DOUBLE_EQ(stats.histogram_bounds.front(), 0.0);
  EXPECT_DOUBLE_EQ(stats.histogram_bounds.back(), 1600.0);
  EXPECT_DOUBLE_EQ(stats.histogram_bounds[8], 800.0);  // Median.
}

TEST(TableTest, EmptyTable) {
  Table table("empty");
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.num_columns(), 0u);
  table.ComputeStats();
  EXPECT_TRUE(table.stats().empty());
  EXPECT_NE(TableChecksum(table), 0u);
}

TEST(TableTest, FindColumnAndStats) {
  Table table("t");
  Column& a = table.AddColumn("a", ColumnType::kInt64);
  a.AppendInt64(1);
  a.AppendInt64(2);
  Column& b = table.AddColumn("b", ColumnType::kString);
  b.AppendString("x");
  b.AppendNull();
  EXPECT_EQ(table.num_rows(), 2u);

  Result<const Column*> found = table.FindColumn("b");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->name(), "b");
  EXPECT_EQ(table.FindColumn("zzz").status().code(), StatusCode::kNotFound);

  table.ComputeStats();
  ASSERT_EQ(table.stats().size(), 2u);
  EXPECT_EQ(table.stats()[1].null_count, 1u);
}

TEST(CatalogTest, AddFindAndNames) {
  Catalog catalog;
  catalog.AddTable("t1");
  catalog.AddTable("t2");
  EXPECT_EQ(catalog.num_tables(), 2u);
  EXPECT_TRUE(catalog.FindTable("t1").ok());
  EXPECT_EQ(catalog.FindTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"t1", "t2"}));
}

TEST(ChecksumTest, SensitiveToValueNullsAndOrder) {
  Column base("c", ColumnType::kInt64);
  base.AppendInt64(1);
  base.AppendInt64(2);

  Column value_changed("c", ColumnType::kInt64);
  value_changed.AppendInt64(1);
  value_changed.AppendInt64(3);
  EXPECT_NE(ColumnChecksum(base), ColumnChecksum(value_changed));

  Column null_changed("c", ColumnType::kInt64);
  null_changed.AppendInt64(1);
  null_changed.AppendInt64(2);
  null_changed.SetNull(1);  // Same buffer values, one extra null bit.
  EXPECT_NE(ColumnChecksum(base), ColumnChecksum(null_changed));

  Column reordered("c", ColumnType::kInt64);
  reordered.AppendInt64(2);
  reordered.AppendInt64(1);
  EXPECT_NE(ColumnChecksum(base), ColumnChecksum(reordered));

  // A NULL row (placeholder 0) must differ from an actual 0.
  Column null_row("c", ColumnType::kInt64);
  null_row.AppendNull();
  Column zero_row("c", ColumnType::kInt64);
  zero_row.AppendInt64(0);
  EXPECT_NE(ColumnChecksum(null_row), ColumnChecksum(zero_row));
}

}  // namespace
}  // namespace t3
