#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/forest_verifier.h"
#include "analysis/jit_auditor.h"
#include "common/random.h"
#include "gbt/forest.h"
#include "gbt/trainer.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TreeNode Inner(int feature, double threshold, int left, int right,
               bool default_left = false) {
  TreeNode node;
  node.is_leaf = false;
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  node.default_left = default_left;
  return node;
}

TreeNode Leaf(double value) {
  TreeNode node;
  node.is_leaf = true;
  node.value = value;
  return node;
}

Forest OneTreeForest(std::vector<TreeNode> nodes, int num_features = 4) {
  Forest forest;
  forest.num_features = num_features;
  forest.trees.push_back(Tree{std::move(nodes)});
  return forest;
}

bool HasCheck(const AnalysisReport& report, const std::string& check,
              Severity severity) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.check == check && d.severity == severity) return true;
  }
  return false;
}

bool HasError(const AnalysisReport& report, const std::string& check) {
  return HasCheck(report, check, Severity::kError);
}

bool HasWarning(const AnalysisReport& report, const std::string& check) {
  return HasCheck(report, check, Severity::kWarning);
}

// ---------------------------------------------------------------------------
// ForestVerifier

TEST(ForestVerifierTest, CleanForestHasNoDiagnostics) {
  const Forest forest = OneTreeForest(
      {Inner(0, 0.5, 1, 2), Leaf(1.0), Inner(1, 0.25, 3, 4), Leaf(2.0),
       Leaf(3.0)});
  const AnalysisReport report = ForestVerifier().Verify(forest);
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(ForestVerifierTest, RejectsBadFeatureIndex) {
  const Forest forest =
      OneTreeForest({Inner(7, 0.5, 1, 2), Leaf(1.0), Leaf(2.0)},
                    /*num_features=*/4);
  const AnalysisReport report = ForestVerifier().Verify(forest);
  EXPECT_TRUE(HasError(report, "bad-feature-index")) << report.ToString();
  const Forest negative =
      OneTreeForest({Inner(-1, 0.5, 1, 2), Leaf(1.0), Leaf(2.0)});
  EXPECT_TRUE(
      HasError(ForestVerifier().Verify(negative), "bad-feature-index"));
}

TEST(ForestVerifierTest, RejectsNonFiniteThreshold) {
  for (const double bad : {kNan, kInf, -kInf}) {
    const Forest forest =
        OneTreeForest({Inner(0, bad, 1, 2), Leaf(1.0), Leaf(2.0)});
    const AnalysisReport report = ForestVerifier().Verify(forest);
    EXPECT_TRUE(HasError(report, "nonfinite-threshold")) << report.ToString();
  }
}

TEST(ForestVerifierTest, RejectsOrphanNode) {
  // Node 3 is not reachable from the root.
  const Forest forest = OneTreeForest(
      {Inner(0, 0.5, 1, 2), Leaf(1.0), Leaf(2.0), Leaf(99.0)});
  const AnalysisReport report = ForestVerifier().Verify(forest);
  EXPECT_TRUE(HasError(report, "orphan-node")) << report.ToString();
}

TEST(ForestVerifierTest, RejectsLeafCountMismatch) {
  // Two leaves for zero inner nodes.
  const Forest forest = OneTreeForest({Leaf(1.0), Leaf(2.0)});
  const AnalysisReport report = ForestVerifier().Verify(forest);
  EXPECT_TRUE(HasError(report, "leaf-count-mismatch")) << report.ToString();
}

TEST(ForestVerifierTest, RejectsSharedNodeAndCycle) {
  // Diamond: both children of the root are node 1.
  const Forest diamond =
      OneTreeForest({Inner(0, 0.5, 1, 1), Leaf(1.0), Leaf(2.0)});
  EXPECT_TRUE(HasError(ForestVerifier().Verify(diamond), "node-shared"));
  // Cycle: node 2 points back to the root.
  const Forest cycle = OneTreeForest(
      {Inner(0, 0.5, 1, 2), Leaf(1.0), Inner(1, 0.5, 0, 3), Leaf(2.0)});
  EXPECT_TRUE(HasError(ForestVerifier().Verify(cycle), "node-shared"));
}

TEST(ForestVerifierTest, RejectsMissingChildAndEmptyTree) {
  const Forest missing =
      OneTreeForest({Inner(0, 0.5, -1, 1), Leaf(1.0)});
  EXPECT_TRUE(HasError(ForestVerifier().Verify(missing), "missing-child"));
  Forest empty;
  empty.num_features = 4;
  empty.trees.push_back(Tree{});
  EXPECT_TRUE(HasError(ForestVerifier().Verify(empty), "empty-tree"));
}

TEST(ForestVerifierTest, RejectsNonFiniteLeafValueAndBaseScore) {
  const Forest forest =
      OneTreeForest({Inner(0, 0.5, 1, 2), Leaf(kNan), Leaf(2.0)});
  EXPECT_TRUE(
      HasError(ForestVerifier().Verify(forest), "nonfinite-leaf-value"));
  Forest bad_base = OneTreeForest({Leaf(1.0)});
  bad_base.base_score = kInf;
  EXPECT_TRUE(
      HasError(ForestVerifier().Verify(bad_base), "nonfinite-base-score"));
}

TEST(ForestVerifierTest, ReportsEveryFindingNotJustTheFirst) {
  // Two independent corruptions in two trees: both must be reported.
  Forest forest = OneTreeForest({Inner(9, 0.5, 1, 2), Leaf(1.0), Leaf(2.0)});
  forest.trees.push_back(
      Tree{{Inner(0, kNan, 1, 2), Leaf(1.0), Leaf(2.0)}});
  const AnalysisReport report = ForestVerifier().Verify(forest);
  EXPECT_TRUE(HasError(report, "bad-feature-index"));
  EXPECT_TRUE(HasError(report, "nonfinite-threshold"));
  EXPECT_GE(report.NumErrors(), 2u);
}

TEST(ForestVerifierTest, WarnsOnDeadBranch) {
  // Root: x0 < 0.5 goes left. Left child splits x0 < 0.8 — its right child
  // (x0 >= 0.8) is unreachable because x0 < 0.5 here.
  const Forest forest = OneTreeForest(
      {Inner(0, 0.5, 1, 2), Inner(0, 0.8, 3, 4), Leaf(1.0), Leaf(2.0),
       Leaf(3.0)});
  const AnalysisReport report = ForestVerifier().Verify(forest);
  EXPECT_TRUE(HasWarning(report, "dead-branch")) << report.ToString();
  EXPECT_FALSE(report.HasErrors());
}

TEST(ForestVerifierTest, NanRoutingKeepsNumericallyDeadBranchAlive) {
  // As above (right child of node 1 numerically unreachable), but NaN is
  // routed right at the root's left... no: NaN routing is per split. Make
  // both splits route NaN right (default_left=false): NaN reaches node 1
  // only if the root sent it left, which it does not — so the branch stays
  // dead. With the root routing NaN left (default_left=true) and node 1
  // routing NaN right, NaN *does* reach node 1's right child: not dead.
  const Forest dead = OneTreeForest(
      {Inner(0, 0.5, 1, 2, /*default_left=*/false),
       Inner(0, 0.8, 3, 4, /*default_left=*/false), Leaf(1.0), Leaf(2.0),
       Leaf(3.0)});
  EXPECT_TRUE(HasWarning(ForestVerifier().Verify(dead), "dead-branch"));

  const Forest alive = OneTreeForest(
      {Inner(0, 0.5, 1, 2, /*default_left=*/true),
       Inner(0, 0.8, 3, 4, /*default_left=*/false), Leaf(1.0), Leaf(2.0),
       Leaf(3.0)});
  const AnalysisReport report = ForestVerifier().Verify(alive);
  EXPECT_FALSE(HasWarning(report, "dead-branch")) << report.ToString();
  // Mixed default_left on feature 0 trips the consistency lint instead.
  EXPECT_TRUE(HasWarning(report, "inconsistent-nan-routing"));
}

TEST(ForestVerifierTest, WarnsOnDuplicateThreshold) {
  // Node 2 repeats the root's exact split (feature 0, 0.5): its left child
  // (x0 < 0.5) is unreachable on the root's right path (x0 >= 0.5).
  const Forest forest = OneTreeForest(
      {Inner(0, 0.5, 1, 2), Leaf(1.0), Inner(0, 0.5, 3, 4), Leaf(2.0),
       Leaf(3.0)});
  const AnalysisReport report = ForestVerifier().Verify(forest);
  EXPECT_TRUE(HasWarning(report, "duplicate-threshold")) << report.ToString();
  EXPECT_TRUE(HasWarning(report, "dead-branch"));
}

TEST(ForestVerifierTest, WarningPassesCanBeDisabled) {
  const Forest forest = OneTreeForest(
      {Inner(0, 0.5, 1, 2), Inner(0, 0.8, 3, 4), Leaf(1.0), Leaf(2.0),
       Leaf(3.0)});
  VerifyOptions options;
  options.warn_dead_branches = false;
  options.warn_duplicate_thresholds = false;
  options.warn_inconsistent_nan_routing = false;
  EXPECT_TRUE(ForestVerifier(options).Verify(forest).empty());
}

TEST(ForestVerifierTest, AcceptsTrainedForestAndFixture) {
  Rng rng(7);
  std::vector<double> rows(300 * 3);
  for (double& v : rows) v = rng.UniformDouble(0, 1);
  std::vector<double> targets(300);
  for (size_t i = 0; i < targets.size(); ++i) {
    targets[i] = rows[i * 3] * 2.0 + rows[i * 3 + 1];
  }
  TrainParams params;
  params.num_trees = 25;
  Result<Forest> trained = TrainForest(rows, targets, 3, params);
  ASSERT_TRUE(trained.ok());
  const AnalysisReport trained_report = ForestVerifier().Verify(*trained);
  EXPECT_FALSE(trained_report.HasErrors()) << trained_report.ToString();

  const std::string path =
      std::string(T3_SOURCE_DIR) + "/data/model_autowlm_per_query.txt";
  Result<Forest> fixture = Forest::LoadFromFile(path);
  ASSERT_TRUE(fixture.ok());
  const AnalysisReport fixture_report = ForestVerifier().Verify(*fixture);
  EXPECT_TRUE(fixture_report.empty()) << fixture_report.ToString();
}

// Forest::Validate (the loader's reject gate) must agree with the
// verifier's Error-severity verdict on every corruption class above —
// a model the verifier flags as Error never loads.
TEST(ForestVerifierTest, LoaderRejectsEveryErrorClass) {
  std::vector<Forest> corrupt;
  corrupt.push_back(
      OneTreeForest({Inner(7, 0.5, 1, 2), Leaf(1.0), Leaf(2.0)}));  // feature
  corrupt.push_back(
      OneTreeForest({Inner(0, kNan, 1, 2), Leaf(1.0), Leaf(2.0)}));
  corrupt.push_back(OneTreeForest(
      {Inner(0, 0.5, 1, 2), Leaf(1.0), Leaf(2.0), Leaf(99.0)}));  // orphan
  corrupt.push_back(OneTreeForest({Leaf(1.0), Leaf(2.0)}));  // leaf count
  corrupt.push_back(
      OneTreeForest({Inner(0, 0.5, 1, 1), Leaf(1.0), Leaf(2.0)}));  // shared
  corrupt.push_back(
      OneTreeForest({Inner(0, 0.5, -1, 1), Leaf(1.0)}));  // missing child
  corrupt.push_back(
      OneTreeForest({Inner(0, 0.5, 1, 2), Leaf(kNan), Leaf(2.0)}));
  for (size_t i = 0; i < corrupt.size(); ++i) {
    const AnalysisReport report = ForestVerifier().Verify(corrupt[i]);
    EXPECT_TRUE(report.HasErrors()) << "corrupt forest " << i;
    EXPECT_FALSE(corrupt[i].Validate().ok()) << "corrupt forest " << i;
    // Round-tripping through the text format must not launder the
    // corruption past the loader.
    Result<Forest> loaded = Forest::FromText(corrupt[i].ToText());
    EXPECT_FALSE(loaded.ok()) << "corrupt forest " << i;
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Model-loader error paths (text level: corruption the parser catches
// before a Forest even exists).

TEST(LoaderErrorPathTest, TruncatedFile) {
  const std::string full =
      OneTreeForest({Inner(0, 0.5, 1, 2), Leaf(1.0), Leaf(2.0)}).ToText();
  // Every prefix cut before the final token must fail cleanly, never
  // crash (a cut inside the final number is indistinguishable from a
  // shorter value, so the detectable range ends at its first byte).
  const size_t last_token = full.find_last_of(' ') + 1;
  for (size_t cut = 0; cut <= last_token; ++cut) {
    Result<Forest> loaded = Forest::FromText(full.substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
  }
}

TEST(LoaderErrorPathTest, TrailingGarbageRejected) {
  const std::string full =
      OneTreeForest({Inner(0, 0.5, 1, 2), Leaf(1.0), Leaf(2.0)}).ToText();
  Result<Forest> loaded = Forest::FromText(full + "0 1 0.5 1 2 0\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing"), std::string::npos);
}

TEST(LoaderErrorPathTest, NonNumericThreshold) {
  const std::string text =
      "t3gbt v1\nnum_features 2\nbase_score 0\nnum_trees 1\n"
      "tree 3\n0 0 bogus 1 2 0\n1 -1 0 -1 -1 1\n1 -1 0 -1 -1 2\n";
  Result<Forest> loaded = Forest::FromText(text);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("malformed"), std::string::npos);
}

TEST(LoaderErrorPathTest, FeatureIndexBeyondFeatureCount) {
  const std::string text =
      "t3gbt v1\nnum_features 2\nbase_score 0\nnum_trees 1\n"
      "tree 3\n0 2 0.5 1 2 0\n1 -1 0 -1 -1 1\n1 -1 0 -1 -1 2\n";
  Result<Forest> loaded = Forest::FromText(text);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("feature"), std::string::npos);
  // The parse-only entry point accepts it, so linters can report on it.
  EXPECT_TRUE(Forest::ParseTextUnvalidated(text).ok());
}

TEST(LoaderErrorPathTest, MismatchedLeafCount) {
  // Node count says 2, both leaves: 2 leaves, 0 inner nodes.
  const std::string text =
      "t3gbt v1\nnum_features 2\nbase_score 0\nnum_trees 1\n"
      "tree 2\n1 -1 0 -1 -1 1\n1 -1 0 -1 -1 2\n";
  Result<Forest> loaded = Forest::FromText(text);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("leaves"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AnalysisReport

TEST(AnalysisReportTest, SeveritiesCountsAndStatus) {
  AnalysisReport report;
  EXPECT_TRUE(report.ToStatus().ok());
  report.Add(Severity::kWarning, "dead-branch", 0, 3, "left unreachable");
  EXPECT_TRUE(report.ToStatus().ok());
  report.Add(Severity::kError, "bad-feature-index", 1, 2, "feature 52");
  report.Add(Severity::kError, "nonfinite-threshold", 1, 4, "NaN");
  EXPECT_EQ(report.NumErrors(), 2u);
  EXPECT_EQ(report.NumWarnings(), 1u);
  const Status status = report.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bad-feature-index"), std::string::npos);
  EXPECT_NE(status.message().find("+1 more"), std::string::npos);
  // Errors print before warnings.
  const std::string text = report.ToString();
  EXPECT_LT(text.find("error[bad-feature-index] tree 1 node 2"),
            text.find("warning[dead-branch]"));

  AnalysisReport other;
  other.Add(Severity::kWarning, "unreachable-code", 0, 40, "dead");
  report.Merge(other);
  EXPECT_EQ(report.diagnostics().size(), 4u);
}

// ---------------------------------------------------------------------------
// JitCodeAuditor. Emission needs x86-64; the audits themselves are pure
// byte inspection.

/// A randomized, structurally valid forest: every tree is built root-down
/// with contiguous child indices, features spanning both the disp8
/// (feature < 16) and disp32 encodings, and random NaN routing.
Forest RandomValidForest(Rng* rng) {
  Forest forest;
  forest.num_features = static_cast<int>(rng->UniformInt(1, 64));
  forest.base_score = rng->UniformDouble(-10, 10);
  const int num_trees = static_cast<int>(rng->UniformInt(1, 8));
  for (int t = 0; t < num_trees; ++t) {
    Tree tree;
    tree.nodes.push_back(TreeNode{});
    // Grow by splitting random leaves, keeping the node array an
    // already-valid tree after every step.
    std::vector<int> leaves = {0};
    const int splits = static_cast<int>(rng->UniformInt(0, 40));
    for (int s = 0; s < splits; ++s) {
      const size_t pick =
          static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(leaves.size()) - 1));
      const int index = leaves[pick];
      leaves.erase(leaves.begin() + static_cast<ptrdiff_t>(pick));
      const int left = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{});
      const int right = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{});
      tree.nodes[static_cast<size_t>(index)] =
          Inner(static_cast<int>(rng->UniformInt(0, forest.num_features - 1)),
                rng->UniformDouble(-100, 100), left, right, rng->Bernoulli(0.3));
      leaves.push_back(left);
      leaves.push_back(right);
    }
    for (const int leaf : leaves) {
      tree.nodes[static_cast<size_t>(leaf)] = Leaf(rng->UniformDouble(-5, 5));
    }
    forest.trees.push_back(std::move(tree));
  }
  return forest;
}

TEST(JitCodeAuditorTest, PassesOnHundredRandomForests) {
  if (!JitSupported()) GTEST_SKIP() << "no x86-64 emitter on this host";
  Rng rng(2025);
  for (int i = 0; i < 100; ++i) {
    const Forest forest = RandomValidForest(&rng);
    ASSERT_TRUE(forest.Validate().ok()) << "sweep " << i;
    Result<JitArtifact> artifact = EmitForestCode(forest);
    ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
    const AnalysisReport report =
        JitCodeAuditor().Audit(artifact->code.data(), artifact->code.size(),
                               artifact->entries, artifact->num_features);
    EXPECT_FALSE(report.HasErrors())
        << "sweep " << i << ":\n" << report.ToString();
  }
}

TEST(JitCodeAuditorTest, DecodesEveryEmittedOpcode) {
  if (!JitSupported()) GTEST_SKIP() << "no x86-64 emitter on this host";
  // Feature 20 forces the disp32 load; feature 2 the disp8 load; mixed
  // default_left covers both ucomisd/jcc orientations.
  Forest forest = OneTreeForest(
      {Inner(20, 0.5, 1, 2, /*default_left=*/false), Leaf(1.0),
       Inner(2, 0.25, 3, 4, /*default_left=*/true), Leaf(2.0), Leaf(3.0)},
      /*num_features=*/32);
  Result<JitArtifact> artifact = EmitForestCode(forest);
  ASSERT_TRUE(artifact.ok());
  bool saw[10] = {};
  size_t offset = 0;
  while (offset < artifact->code.size()) {
    JitInstruction instruction;
    ASSERT_TRUE(DecodeInstruction(artifact->code.data(),
                                  artifact->code.size(), offset,
                                  &instruction))
        << "undecodable at offset " << offset;
    saw[static_cast<int>(instruction.op)] = true;
    offset += instruction.length;
  }
  EXPECT_EQ(offset, artifact->code.size());
  for (const JitOp op :
       {JitOp::kMovRaxImm64, JitOp::kMovqXmm0Rax, JitOp::kMovqXmm1Rax,
        JitOp::kLoadFeature8, JitOp::kLoadFeature32, JitOp::kUcomisdXmm1Xmm0,
        JitOp::kUcomisdXmm0Xmm1, JitOp::kJa, JitOp::kJb, JitOp::kRet}) {
    EXPECT_TRUE(saw[static_cast<int>(op)])
        << "emitted code never used op " << static_cast<int>(op);
  }
}

class JitCodeAuditorCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!JitSupported()) GTEST_SKIP() << "no x86-64 emitter on this host";
    Forest forest = OneTreeForest(
        {Inner(20, 0.5, 1, 2), Leaf(1.0), Inner(2, 0.25, 3, 4), Leaf(2.0),
         Leaf(3.0)},
        /*num_features=*/32);
    forest.trees.push_back(forest.trees[0]);  // Two regions.
    Result<JitArtifact> artifact = EmitForestCode(forest);
    ASSERT_TRUE(artifact.ok());
    artifact_ = *std::move(artifact);
  }

  AnalysisReport Audit() const {
    return JitCodeAuditor().Audit(artifact_.code.data(),
                                  artifact_.code.size(), artifact_.entries,
                                  artifact_.num_features);
  }

  /// Offset of the first instruction of kind `op`, or npos.
  size_t FindOp(JitOp op) const {
    size_t offset = 0;
    JitInstruction instruction;
    while (offset < artifact_.code.size() &&
           DecodeInstruction(artifact_.code.data(), artifact_.code.size(),
                             offset, &instruction)) {
      if (instruction.op == op) return offset;
      offset += instruction.length;
    }
    return std::string::npos;
  }

  JitArtifact artifact_;
};

TEST_F(JitCodeAuditorCorruptionTest, CleanBufferPasses) {
  EXPECT_FALSE(Audit().HasErrors()) << Audit().ToString();
}

TEST_F(JitCodeAuditorCorruptionTest, ByteFlipInOpcodeIsRejected) {
  // 0xC3 ret -> 0xC2 ret imm16 is not in the whitelist.
  const size_t ret = FindOp(JitOp::kRet);
  ASSERT_NE(ret, std::string::npos);
  artifact_.code[ret] = 0xC2;
  EXPECT_TRUE(Audit().HasErrors());
}

TEST_F(JitCodeAuditorCorruptionTest, BranchRetargetedMidInstructionIsRejected) {
  const size_t branch = FindOp(JitOp::kJa);
  ASSERT_NE(branch, std::string::npos);
  // rel32 currently lands on a boundary; nudge it one byte forward.
  artifact_.code[branch + 2] = static_cast<uint8_t>(artifact_.code[branch + 2] + 1);
  const AnalysisReport report = Audit();
  EXPECT_TRUE(report.HasErrors());
  bool found = false;
  for (const Diagnostic& d : report.diagnostics()) {
    found = found || d.check == "bad-branch-target";
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST_F(JitCodeAuditorCorruptionTest, BranchOutOfRegionIsRejected) {
  // Retarget the first tree's first branch to the second tree's entry —
  // a valid instruction boundary, but outside the branch's own region.
  const size_t branch = FindOp(JitOp::kJa);
  ASSERT_NE(branch, std::string::npos);
  ASSERT_EQ(artifact_.entries.size(), 2u);
  const int64_t rel = static_cast<int64_t>(artifact_.entries[1]) -
                      (static_cast<int64_t>(branch) + 6);
  for (int i = 0; i < 4; ++i) {
    artifact_.code[branch + 2 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(static_cast<uint64_t>(rel) >> (8 * i));
  }
  const AnalysisReport report = Audit();
  bool found = false;
  for (const Diagnostic& d : report.diagnostics()) {
    found = found || d.check == "bad-branch-target";
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST_F(JitCodeAuditorCorruptionTest, OutOfBoundsFeatureLoadIsRejected) {
  // Patch the disp32 load (feature 20 of 32) to read feature 64.
  const size_t load = FindOp(JitOp::kLoadFeature32);
  ASSERT_NE(load, std::string::npos);
  const uint32_t disp = 64 * 8;
  for (int i = 0; i < 4; ++i) {
    artifact_.code[load + 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(disp >> (8 * i));
  }
  const AnalysisReport report = Audit();
  bool found = false;
  for (const Diagnostic& d : report.diagnostics()) {
    found = found || d.check == "oob-feature-load";
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST_F(JitCodeAuditorCorruptionTest, MisalignedFeatureLoadIsRejected) {
  const size_t load = FindOp(JitOp::kLoadFeature8);
  ASSERT_NE(load, std::string::npos);
  artifact_.code[load + 4] = 13;  // Not a multiple of 8.
  const AnalysisReport report = Audit();
  EXPECT_TRUE(report.HasErrors()) << report.ToString();
}

TEST_F(JitCodeAuditorCorruptionTest, BadEntriesAreRejected) {
  // Entry past the buffer.
  std::vector<size_t> entries = artifact_.entries;
  entries.push_back(artifact_.code.size() + 100);
  EXPECT_TRUE(JitCodeAuditor()
                  .Audit(artifact_.code.data(), artifact_.code.size(),
                         entries, artifact_.num_features)
                  .HasErrors());
  // Entry mid-instruction (offset 1 is inside the first mov imm64).
  EXPECT_TRUE(JitCodeAuditor()
                  .Audit(artifact_.code.data(), artifact_.code.size(),
                         {0, 1}, artifact_.num_features)
                  .HasErrors());
  // Empty entries.
  EXPECT_TRUE(JitCodeAuditor()
                  .Audit(artifact_.code.data(), artifact_.code.size(), {},
                         artifact_.num_features)
                  .HasErrors());
}

TEST_F(JitCodeAuditorCorruptionTest, TruncatedBufferIsRejected) {
  // Chop the final ret: the last path now falls off the end.
  const AnalysisReport report = JitCodeAuditor().Audit(
      artifact_.code.data(), artifact_.code.size() - 1, artifact_.entries,
      artifact_.num_features);
  EXPECT_TRUE(report.HasErrors());
}

// Compile(audit=on) is the production wiring of the auditor: it must stay
// invisible for healthy forests (bit-identical predictions, no failures).
TEST(JitAuditWiringTest, AuditedCompileMatchesInterpreter) {
  if (!JitSupported()) GTEST_SKIP() << "no x86-64 emitter on this host";
  Rng rng(99);
  const Forest forest = RandomValidForest(&rng);
  JitCompileOptions options;
  options.audit = true;
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::vector<double> row(static_cast<size_t>(forest.num_features));
  for (int i = 0; i < 200; ++i) {
    for (double& v : row) v = rng.UniformDouble(-150, 150);
    ASSERT_EQ((*compiled)->Predict(row.data()), forest.Predict(row.data()));
  }
}

}  // namespace
}  // namespace t3
