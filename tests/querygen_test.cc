#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/thread_pool.h"
#include "datagen/generator.h"
#include "datagen/spec.h"
#include "plan/pipeline.h"
#include "plan/plan.h"
#include "querygen/querygen.h"
#include "querygen/suites.h"

namespace t3 {
namespace {

Catalog Generate(const std::string& instance, ThreadPool* pool = nullptr) {
  Result<const InstanceSpec*> spec = FindInstance(instance);
  T3_CHECK_OK(spec);
  DatagenOptions options;
  options.scale_override = 0.05;
  options.pool = pool;
  Result<Catalog> catalog = GenerateInstance(**spec, options);
  T3_CHECK_OK(catalog);
  return *std::move(catalog);
}

const Catalog& TpchCatalog() {
  static const Catalog* catalog = new Catalog(Generate("tpch_sf0"));
  return *catalog;
}

TEST(QueryGroupTest, CodesNamesAndRoundTrip) {
  ASSERT_EQ(AllQueryGroups().size(), 16u);
  std::set<std::string> names;
  for (QueryGroup group : AllQueryGroups()) {
    Result<QueryGroup> back = QueryGroupFromCode(static_cast<int>(group));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, group);
    names.insert(QueryGroupName(group));
  }
  EXPECT_EQ(names.size(), 16u);  // All names distinct.
  EXPECT_STREQ(QueryGroupName(QueryGroup::kSe), "Se");
  EXPECT_STREQ(QueryGroupName(QueryGroup::kCSeJSiL), "CSeJSiL");
  EXPECT_FALSE(QueryGroupFromCode(16).ok());
  EXPECT_FALSE(QueryGroupFromCode(-1).ok());
}

TEST(QueryGenTest, DiscoversForeignKeyEdges) {
  const std::vector<JoinEdge> edges = DiscoverJoinEdges(TpchCatalog());
  ASSERT_FALSE(edges.empty());
  // Every edge must point at a plausible PK: dense sequential int column.
  for (const JoinEdge& edge : edges) {
    const Table& pk = TpchCatalog().table(edge.pk_table);
    const ColumnStats& stats = pk.stats()[edge.pk_column];
    EXPECT_EQ(stats.min_i64, 0);
    EXPECT_EQ(stats.max_i64, static_cast<int64_t>(pk.num_rows()) - 1);
    EXPECT_NE(edge.fk_table, edge.pk_table);
  }
  // lineitem -> orders is the canonical edge and must be found.
  bool found = false;
  for (const JoinEdge& edge : edges) {
    if (TpchCatalog().table(edge.fk_table).name() == "lineitem" &&
        TpchCatalog().table(edge.pk_table).name() == "orders") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QueryGenTest, EveryGroupGeneratesValidPlans) {
  QueryGenerator generator(&TpchCatalog(), 42);
  for (QueryGroup group : AllQueryGroups()) {
    for (int index = 0; index < 3; ++index) {
      Result<GeneratedQuery> query = generator.Generate(group, index);
      ASSERT_TRUE(query.ok())
          << QueryGroupName(group) << "_" << index << ": "
          << query.status().ToString();
      EXPECT_EQ(query->structure_group, static_cast<int>(group));
      EXPECT_FALSE(query->fixed_suite);
      const Status valid = ValidatePlan(query->plan);
      EXPECT_TRUE(valid.ok())
          << query->name << ": " << valid.ToString() << "\n"
          << PlanToString(query->plan);
    }
  }
}

// Structural contracts per group: the ops a group's letters promise.
TEST(QueryGenTest, GroupsContainTheirPrimitives) {
  QueryGenerator generator(&TpchCatalog(), 42);
  struct Expectation {
    QueryGroup group;
    PlanOp op;
    int min_count;
  };
  const std::vector<Expectation> expectations = {
      {QueryGroup::kSe, PlanOp::kFilter, 1},
      {QueryGroup::kSeP, PlanOp::kProject, 1},
      {QueryGroup::kA, PlanOp::kHashAggregate, 1},
      {QueryGroup::kSi, PlanOp::kSort, 1},
      {QueryGroup::kSiL, PlanOp::kLimit, 1},
      {QueryGroup::kJ, PlanOp::kHashJoin, 1},
      {QueryGroup::kSeJA, PlanOp::kHashJoin, 1},
      {QueryGroup::kSeJA, PlanOp::kHashAggregate, 1},
      {QueryGroup::kCSe, PlanOp::kHashJoin, 2},
      {QueryGroup::kCSeJSiL, PlanOp::kHashJoin, 2},
  };
  for (const Expectation& expectation : expectations) {
    for (int index = 0; index < 4; ++index) {
      Result<GeneratedQuery> query =
          generator.Generate(expectation.group, index);
      ASSERT_TRUE(query.ok());
      int count = 0;
      for (const PlanNode& node : query->plan.nodes) {
        if (node.op == expectation.op) ++count;
      }
      EXPECT_GE(count, expectation.min_count)
          << query->name << " lacks ops:\n" << PlanToString(query->plan);
    }
  }
}

TEST(QueryGenTest, SameSeedIsBitIdentical) {
  QueryGenerator a(&TpchCatalog(), 7);
  QueryGenerator b(&TpchCatalog(), 7);
  for (QueryGroup group : AllQueryGroups()) {
    for (int index = 0; index < 2; ++index) {
      Result<GeneratedQuery> qa = a.Generate(group, index);
      Result<GeneratedQuery> qb = b.Generate(group, index);
      ASSERT_EQ(qa.ok(), qb.ok());
      if (!qa.ok()) continue;
      EXPECT_EQ(PlanToString(qa->plan), PlanToString(qb->plan));
      EXPECT_EQ(qa->name, qb->name);
      EXPECT_EQ(qa->seed, qb->seed);
    }
  }
}

TEST(QueryGenTest, DifferentSeedsOrIndicesDiffer) {
  QueryGenerator a(&TpchCatalog(), 7);
  QueryGenerator b(&TpchCatalog(), 8);
  int differing = 0;
  for (int index = 0; index < 4; ++index) {
    Result<GeneratedQuery> qa = a.Generate(QueryGroup::kSe, index);
    Result<GeneratedQuery> qb = b.Generate(QueryGroup::kSe, index);
    ASSERT_TRUE(qa.ok());
    ASSERT_TRUE(qb.ok());
    if (PlanToString(qa->plan) != PlanToString(qb->plan)) ++differing;
  }
  EXPECT_GT(differing, 0);

  Result<GeneratedQuery> q0 = a.Generate(QueryGroup::kSeJ, 0);
  Result<GeneratedQuery> q1 = a.Generate(QueryGroup::kSeJ, 1);
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q1.ok());
  EXPECT_NE(q0->name, q1->name);
}

TEST(QueryGenTest, ThreadCountInvariant) {
  // Queries are a pure function of (catalog stats, seed): a catalog
  // generated with a worker pool must yield bit-identical plans, matching
  // datagen's own thread-count invariance.
  ThreadPool pool(7);
  const Catalog pooled = Generate("tpch_sf0", &pool);
  QueryGenerator a(&TpchCatalog(), 123);
  QueryGenerator b(&pooled, 123);
  for (QueryGroup group : AllQueryGroups()) {
    Result<GeneratedQuery> qa = a.Generate(group, 0);
    Result<GeneratedQuery> qb = b.Generate(group, 0);
    ASSERT_EQ(qa.ok(), qb.ok());
    if (!qa.ok()) continue;
    EXPECT_EQ(PlanToString(qa->plan), PlanToString(qb->plan))
        << QueryGroupName(group);
  }
}

TEST(QueryGenTest, GenerateAllCoversEveryExpressibleGroup) {
  QueryGenerator generator(&TpchCatalog(), 42);
  const std::vector<GeneratedQuery> queries = generator.GenerateAll(2);
  // TPC-H-like catalogs have join edges, so all 16 groups are expressible.
  EXPECT_EQ(queries.size(), 32u);
  std::set<int> groups;
  for (const GeneratedQuery& query : queries) {
    groups.insert(query.structure_group);
  }
  EXPECT_EQ(groups.size(), 16u);
}

// Golden stage-tag assignments per structure group (seed 42, index 0, the
// TPC-H-like catalog): the pipeline id DecomposePipelines assigns to every
// node, rendered "op:pipeline". This pins the decomposition the same way the
// 48-index golden test pins the feature registry — a breaker-rule change
// that silently re-tags pipelines (and thereby shuffles every per-pipeline
// feature vector) must show up as a diff here, not as corrupted corpora.
TEST(QueryGenTest, GoldenStageTagsPerGroup) {
  const std::vector<std::pair<QueryGroup, std::string>> golden = {
      {QueryGroup::kSe, "scan:0 filter:0 output:0"},
      {QueryGroup::kSeP, "scan:0 filter:0 project:0 output:0"},
      {QueryGroup::kA, "scan:0 hash_aggregate:0 output:1"},
      {QueryGroup::kSeA, "scan:0 filter:0 hash_aggregate:0 output:1"},
      {QueryGroup::kSi, "scan:0 sort:0 output:1"},
      {QueryGroup::kSiL, "scan:0 sort:0 limit:1 output:1"},
      {QueryGroup::kSiA, "scan:0 hash_aggregate:0 sort:1 output:2"},
      {QueryGroup::kJ, "scan:1 scan:0 hash_join:1 output:1"},
      {QueryGroup::kSeJ, "scan:1 filter:1 scan:0 hash_join:1 output:1"},
      {QueryGroup::kJA,
       "scan:1 scan:0 hash_join:1 hash_aggregate:1 output:2"},
      {QueryGroup::kSeJA,
       "scan:1 filter:1 scan:0 hash_join:1 hash_aggregate:1 output:2"},
      {QueryGroup::kSeJSi,
       "scan:1 filter:1 scan:0 hash_join:1 sort:1 output:2"},
      {QueryGroup::kSeJSiA,
       "scan:1 filter:1 scan:0 hash_join:1 hash_aggregate:1 sort:2 "
       "output:3"},
      {QueryGroup::kCSe,
       "scan:2 filter:2 scan:1 hash_join:2 scan:0 hash_join:2 output:2"},
      {QueryGroup::kCSeJA,
       "scan:2 filter:2 scan:1 hash_join:2 scan:0 hash_join:2 "
       "hash_aggregate:2 output:3"},
      {QueryGroup::kCSeJSiL,
       "scan:3 filter:3 scan:2 hash_join:3 scan:1 hash_join:3 scan:0 "
       "hash_join:3 sort:3 limit:4 output:4"},
  };
  ASSERT_EQ(golden.size(), AllQueryGroups().size());
  QueryGenerator generator(&TpchCatalog(), 42);
  for (const auto& [group, expected] : golden) {
    Result<GeneratedQuery> query = generator.Generate(group, 0);
    ASSERT_TRUE(query.ok()) << QueryGroupName(group);
    Result<PipelineDecomposition> decomposition =
        DecomposePipelines(query->plan);
    ASSERT_TRUE(decomposition.ok()) << QueryGroupName(group);
    std::string actual;
    for (size_t i = 0; i < query->plan.nodes.size(); ++i) {
      if (!actual.empty()) actual += ' ';
      actual += PlanOpName(query->plan.nodes[i].op);
      actual += ':';
      actual += std::to_string(decomposition->node_pipeline[i]);
    }
    EXPECT_EQ(actual, expected) << QueryGroupName(group);
  }
}

TEST(SuitesTest, FixedSuitesProduceValidNamedPlans) {
  Result<std::vector<GeneratedQuery>> tpch = TpchLikeSuite(TpchCatalog());
  ASSERT_TRUE(tpch.ok()) << tpch.status().ToString();
  EXPECT_EQ(tpch->size(), 6u);
  for (const GeneratedQuery& query : *tpch) {
    EXPECT_TRUE(query.fixed_suite);
    EXPECT_FALSE(query.name.empty());
    const Status valid = ValidatePlan(query.plan);
    EXPECT_TRUE(valid.ok()) << query.name << ": " << valid.ToString();
  }

  const Catalog tpcds = Generate("tpcds_sf0");
  Result<std::vector<GeneratedQuery>> ds_suite = TpcdsLikeSuite(tpcds);
  ASSERT_TRUE(ds_suite.ok()) << ds_suite.status().ToString();
  EXPECT_EQ(ds_suite->size(), 6u);

  const Catalog imdb = Generate("imdb_sf1");
  Result<std::vector<GeneratedQuery>> job = JobLikeSuite(imdb);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->size(), 6u);
  for (const GeneratedQuery& query : *job) {
    EXPECT_TRUE(ValidatePlan(query.plan).ok()) << query.name;
  }
}

TEST(SuitesTest, FixedSuiteForFamilyDispatches) {
  Result<std::vector<GeneratedQuery>> tpch =
      FixedSuiteForFamily(TpchCatalog(), "tpch");
  ASSERT_TRUE(tpch.ok());
  EXPECT_EQ(tpch->size(), 6u);
  // Families without a fixed suite get an empty vector, not an error.
  Result<std::vector<GeneratedQuery>> none =
      FixedSuiteForFamily(TpchCatalog(), "sensor");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

}  // namespace
}  // namespace t3
