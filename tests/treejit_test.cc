#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "gbt/forest.h"
#include "treejit/evaluator.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

// Builds a random tree into `tree` and returns the new subtree's root index.
// Thresholds are drawn from a small grid so that rows drawn from the same
// grid regularly hit exact threshold values (the x == threshold boundary).
int BuildRandomSubtree(Tree* tree, Rng* rng, int num_features, int depth) {
  const int index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  const bool leaf = depth <= 0 || rng->Bernoulli(0.3);
  if (leaf) {
    TreeNode& node = tree->nodes[index];
    node.is_leaf = true;
    node.value = rng->UniformDouble(-10, 10);
    return index;
  }
  const int feature = static_cast<int>(rng->UniformInt(0, num_features - 1));
  const double threshold = 0.25 * rng->UniformInt(-8, 8);
  const bool default_left = rng->Bernoulli(0.5);
  const int left = BuildRandomSubtree(tree, rng, num_features, depth - 1);
  const int right = BuildRandomSubtree(tree, rng, num_features, depth - 1);
  TreeNode& node = tree->nodes[index];
  node.is_leaf = false;
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  node.default_left = default_left;
  return index;
}

Forest MakeRandomForest(Rng* rng, int num_features, int num_trees,
                        int max_depth) {
  Forest forest;
  forest.num_features = num_features;
  forest.base_score = rng->UniformDouble(-5, 5);
  for (int t = 0; t < num_trees; ++t) {
    Tree tree;
    BuildRandomSubtree(&tree, rng, num_features, max_depth);
    forest.trees.push_back(std::move(tree));
  }
  return forest;
}

// One random row; roughly 10% NaN entries and the rest drawn from the same
// grid as the thresholds, so boundary hits (x == threshold) are common.
std::vector<double> MakeRandomRow(Rng* rng, int num_features) {
  std::vector<double> row(num_features);
  for (double& v : row) {
    if (rng->Bernoulli(0.1)) {
      v = std::numeric_limits<double>::quiet_NaN();
    } else {
      v = 0.25 * rng->UniformInt(-8, 8);
    }
  }
  return row;
}

// The tentpole invariant: all three evaluators are bit-identical on 100+
// random forests x random rows, including NaN and threshold-boundary inputs.
TEST(EvaluatorAgreementTest, AllEvaluatorsBitExactOnRandomForests) {
  Rng rng(2024);
  int jit_compiled = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const int num_features = 1 + static_cast<int>(rng.UniformInt(0, 7));
    const int num_trees = 1 + static_cast<int>(rng.UniformInt(0, 9));
    const int max_depth = 1 + static_cast<int>(rng.UniformInt(0, 5));
    const Forest forest =
        MakeRandomForest(&rng, num_features, num_trees, max_depth);
    ASSERT_TRUE(forest.Validate().ok()) << "trial " << trial;

    const InterpretedEvaluator interpreted(forest);
    const FlatEvaluator flat(forest);
    Result<std::unique_ptr<CompiledForest>> compiled =
        CompiledForest::Compile(forest);
    if (JitSupported()) {
      ASSERT_TRUE(compiled.ok())
          << "trial " << trial << ": " << compiled.status().ToString();
      ++jit_compiled;
    }

    for (int r = 0; r < 25; ++r) {
      const std::vector<double> row = MakeRandomRow(&rng, num_features);
      const double reference = interpreted.Predict(row.data());
      ASSERT_EQ(flat.Predict(row.data()), reference)
          << "flat disagrees, trial " << trial << " row " << r;
      if (compiled.ok()) {
        ASSERT_EQ((*compiled)->Predict(row.data()), reference)
            << "JIT disagrees, trial " << trial << " row " << r;
      }
    }
  }
  if (JitSupported()) {
    EXPECT_EQ(jit_compiled, 120);
  }
}

// NaN-heavy trifecta: node interpreter vs flat interpreter vs JIT stay
// bit-identical as the NaN density of the input sweeps from none to every
// feature, with ±inf inputs mixed in and denormal thresholds in the trees —
// the corners where ucomisd's unordered results and strict-< routing are
// easiest to get subtly wrong.
TEST(EvaluatorAgreementTest, NanHeavyTrifectaAcrossNanFractions) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kDenorm = std::numeric_limits<double>::denorm_min();
  Rng rng(777);
  for (const double nan_fraction : {0.0, 0.25, 0.75, 1.0}) {
    for (int trial = 0; trial < 15; ++trial) {
      const int num_features = 1 + static_cast<int>(rng.UniformInt(0, 5));
      Forest forest = MakeRandomForest(
          &rng, num_features, 1 + static_cast<int>(rng.UniformInt(0, 4)),
          1 + static_cast<int>(rng.UniformInt(0, 4)));
      // Sprinkle denormal thresholds over the grid ones.
      for (Tree& tree : forest.trees) {
        for (TreeNode& node : tree.nodes) {
          if (!node.is_leaf && rng.Bernoulli(0.3)) {
            node.threshold = kDenorm *
                             static_cast<double>(rng.UniformInt(1, 4)) *
                             (rng.Bernoulli(0.5) ? -1.0 : 1.0);
          }
        }
      }
      ASSERT_TRUE(forest.Validate().ok());

      const InterpretedEvaluator interpreted(forest);
      const FlatEvaluator flat(forest);
      Result<std::unique_ptr<CompiledForest>> compiled =
          CompiledForest::Compile(forest);
      if (JitSupported()) {
        ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      }

      std::vector<double> row(static_cast<size_t>(num_features));
      for (int r = 0; r < 40; ++r) {
        for (double& v : row) {
          if (rng.Bernoulli(nan_fraction)) {
            v = std::numeric_limits<double>::quiet_NaN();
          } else if (rng.Bernoulli(0.2)) {
            v = rng.Bernoulli(0.5) ? kInf : -kInf;
          } else if (rng.Bernoulli(0.2)) {
            v = kDenorm * static_cast<double>(rng.UniformInt(-4, 4));
          } else {
            v = 0.25 * static_cast<double>(rng.UniformInt(-8, 8));
          }
        }
        const double reference = interpreted.Predict(row.data());
        ASSERT_EQ(flat.Predict(row.data()), reference)
            << "flat disagrees, nan_fraction " << nan_fraction << " trial "
            << trial << " row " << r;
        if (compiled.ok()) {
          ASSERT_EQ((*compiled)->Predict(row.data()), reference)
              << "JIT disagrees, nan_fraction " << nan_fraction << " trial "
              << trial << " row " << r;
        }
      }
    }
  }
}

TEST(EvaluatorAgreementTest, ThresholdBoundaryGoesRight) {
  // x == threshold must take the right branch (predicate is strict <) in
  // every evaluator.
  Forest forest;
  forest.num_features = 1;
  forest.base_score = 0.0;
  Tree tree;
  tree.nodes.resize(3);
  tree.nodes[0].feature = 0;
  tree.nodes[0].threshold = 1.5;
  tree.nodes[0].left = 1;
  tree.nodes[0].right = 2;
  tree.nodes[1].is_leaf = true;
  tree.nodes[1].value = -1.0;
  tree.nodes[2].is_leaf = true;
  tree.nodes[2].value = +1.0;
  forest.trees.push_back(tree);
  ASSERT_TRUE(forest.Validate().ok());

  const InterpretedEvaluator interpreted(forest);
  const FlatEvaluator flat(forest);
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);

  const double boundary = 1.5;
  const double below = std::nextafter(1.5, 0.0);
  EXPECT_EQ(interpreted.Predict(&boundary), 1.0);
  EXPECT_EQ(interpreted.Predict(&below), -1.0);
  EXPECT_EQ(flat.Predict(&boundary), 1.0);
  EXPECT_EQ(flat.Predict(&below), -1.0);
  if (compiled.ok()) {
    EXPECT_EQ((*compiled)->Predict(&boundary), 1.0);
    EXPECT_EQ((*compiled)->Predict(&below), -1.0);
  }
}

TEST(EvaluatorAgreementTest, NanHonorsDefaultLeft) {
  for (bool default_left : {false, true}) {
    Forest forest;
    forest.num_features = 1;
    Tree tree;
    tree.nodes.resize(3);
    tree.nodes[0].feature = 0;
    tree.nodes[0].threshold = 0.0;
    tree.nodes[0].left = 1;
    tree.nodes[0].right = 2;
    tree.nodes[0].default_left = default_left;
    tree.nodes[1].is_leaf = true;
    tree.nodes[1].value = -1.0;
    tree.nodes[2].is_leaf = true;
    tree.nodes[2].value = +1.0;
    forest.trees.push_back(tree);

    const double expected = default_left ? -1.0 : 1.0;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(forest.Predict(&nan), expected);
    EXPECT_EQ(FlatEvaluator(forest).Predict(&nan), expected);
    Result<std::unique_ptr<CompiledForest>> compiled =
        CompiledForest::Compile(forest);
    if (compiled.ok()) {
      EXPECT_EQ((*compiled)->Predict(&nan), expected)
          << "default_left=" << default_left;
    }
  }
}

TEST(EvaluatorAgreementTest, InfinityFollowsStrictLess) {
  Forest forest;
  forest.num_features = 1;
  Tree tree;
  tree.nodes.resize(3);
  tree.nodes[0].feature = 0;
  tree.nodes[0].threshold = 0.0;
  tree.nodes[0].left = 1;
  tree.nodes[0].right = 2;
  tree.nodes[1].is_leaf = true;
  tree.nodes[1].value = -1.0;
  tree.nodes[2].is_leaf = true;
  tree.nodes[2].value = +1.0;
  forest.trees.push_back(tree);

  const double pos_inf = std::numeric_limits<double>::infinity();
  const double neg_inf = -pos_inf;
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);
  for (const auto& [x, expected] :
       {std::pair{pos_inf, 1.0}, std::pair{neg_inf, -1.0}}) {
    EXPECT_EQ(forest.Predict(&x), expected);
    EXPECT_EQ(FlatEvaluator(forest).Predict(&x), expected);
    if (compiled.ok()) {
      EXPECT_EQ((*compiled)->Predict(&x), expected);
    }
  }
}

TEST(JitTest, WideFeatureOffsetsNeedDisp32) {
  // Features beyond index 15 have byte offsets > 127 and exercise the
  // disp32 addressing path of the emitter.
  if (!JitSupported()) GTEST_SKIP() << "JIT unsupported on this host";
  Rng rng(5);
  const int num_features = 200;
  const Forest forest = MakeRandomForest(&rng, num_features, 8, 6);
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  for (int r = 0; r < 50; ++r) {
    const std::vector<double> row = MakeRandomRow(&rng, num_features);
    ASSERT_EQ((*compiled)->Predict(row.data()), forest.Predict(row.data()));
  }
}

TEST(JitTest, RejectsInvalidForest) {
  if (!JitSupported()) GTEST_SKIP() << "JIT unsupported on this host";
  Forest forest;
  forest.num_features = 1;
  Tree tree;
  tree.nodes.resize(1);
  tree.nodes[0].feature = 0;
  tree.nodes[0].threshold = 0.0;
  tree.nodes[0].left = 5;  // Out of range.
  tree.nodes[0].right = 6;
  forest.trees.push_back(tree);
  EXPECT_FALSE(CompiledForest::Compile(forest).ok());
}

TEST(JitTest, UnsupportedHostsReportUnavailable) {
  if (JitSupported()) {
    GTEST_SKIP() << "host supports the JIT; fallback path not reachable";
  }
  Rng rng(1);
  const Forest forest = MakeRandomForest(&rng, 4, 2, 3);
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kUnavailable);
}

TEST(BatchTest, PredictBatchMatchesLoop) {
  Rng rng(77);
  const int num_features = 6;
  const Forest forest = MakeRandomForest(&rng, num_features, 5, 5);
  const FlatEvaluator flat(forest);
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);

  const size_t num_rows = 64;
  std::vector<double> rows;
  for (size_t i = 0; i < num_rows; ++i) {
    const std::vector<double> row = MakeRandomRow(&rng, num_features);
    rows.insert(rows.end(), row.begin(), row.end());
  }

  std::vector<double> out(num_rows);
  flat.PredictBatch(rows.data(), num_rows, num_features, out.data());
  for (size_t i = 0; i < num_rows; ++i) {
    EXPECT_EQ(out[i], flat.Predict(&rows[i * num_features])) << "row " << i;
  }
  if (compiled.ok()) {
    (*compiled)->PredictBatch(rows.data(), num_rows, num_features, out.data());
    for (size_t i = 0; i < num_rows; ++i) {
      EXPECT_EQ(out[i], forest.Predict(&rows[i * num_features])) << "row " << i;
    }
  }
}

TEST(BatchTest, PredictSumParallelMatchesSerialSum) {
  Rng rng(99);
  const int num_features = 5;
  const Forest forest = MakeRandomForest(&rng, num_features, 4, 5);
  const FlatEvaluator flat(forest);

  const size_t num_rows = 500;
  std::vector<double> rows(num_rows * num_features);
  for (double& v : rows) v = rng.UniformDouble(-2, 2);

  double serial = 0.0;
  for (size_t i = 0; i < num_rows; ++i) {
    serial += flat.Predict(&rows[i * num_features]);
  }

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    const double parallel =
        PredictSumParallel(flat, &pool, rows.data(), num_rows, num_features);
    // Grouping of partial sums differs, so allow relative rounding slack.
    EXPECT_NEAR(parallel, serial, 1e-9 * std::abs(serial) + 1e-9)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace t3
