#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "gbt/forest.h"
#include "gbt/trainer.h"
#include "treejit/evaluator.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

// Builds a random tree into `tree` and returns the new subtree's root index.
// Thresholds are drawn from a small grid so that rows drawn from the same
// grid regularly hit exact threshold values (the x == threshold boundary).
int BuildRandomSubtree(Tree* tree, Rng* rng, int num_features, int depth) {
  const int index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  const bool leaf = depth <= 0 || rng->Bernoulli(0.3);
  if (leaf) {
    TreeNode& node = tree->nodes[index];
    node.is_leaf = true;
    node.value = rng->UniformDouble(-10, 10);
    return index;
  }
  const int feature = static_cast<int>(rng->UniformInt(0, num_features - 1));
  const double threshold = 0.25 * rng->UniformInt(-8, 8);
  const bool default_left = rng->Bernoulli(0.5);
  const int left = BuildRandomSubtree(tree, rng, num_features, depth - 1);
  const int right = BuildRandomSubtree(tree, rng, num_features, depth - 1);
  TreeNode& node = tree->nodes[index];
  node.is_leaf = false;
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  node.default_left = default_left;
  return index;
}

Forest MakeRandomForest(Rng* rng, int num_features, int num_trees,
                        int max_depth) {
  Forest forest;
  forest.num_features = num_features;
  forest.base_score = rng->UniformDouble(-5, 5);
  for (int t = 0; t < num_trees; ++t) {
    Tree tree;
    BuildRandomSubtree(&tree, rng, num_features, max_depth);
    forest.trees.push_back(std::move(tree));
  }
  return forest;
}

// One random row; roughly 10% NaN entries and the rest drawn from the same
// grid as the thresholds, so boundary hits (x == threshold) are common.
std::vector<double> MakeRandomRow(Rng* rng, int num_features) {
  std::vector<double> row(num_features);
  for (double& v : row) {
    if (rng->Bernoulli(0.1)) {
      v = std::numeric_limits<double>::quiet_NaN();
    } else {
      v = 0.25 * rng->UniformInt(-8, 8);
    }
  }
  return row;
}

// The tentpole invariant: all three evaluators are bit-identical on 100+
// random forests x random rows, including NaN and threshold-boundary inputs.
TEST(EvaluatorAgreementTest, AllEvaluatorsBitExactOnRandomForests) {
  Rng rng(2024);
  int jit_compiled = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const int num_features = 1 + static_cast<int>(rng.UniformInt(0, 7));
    const int num_trees = 1 + static_cast<int>(rng.UniformInt(0, 9));
    const int max_depth = 1 + static_cast<int>(rng.UniformInt(0, 5));
    const Forest forest =
        MakeRandomForest(&rng, num_features, num_trees, max_depth);
    ASSERT_TRUE(forest.Validate().ok()) << "trial " << trial;

    const InterpretedEvaluator interpreted(forest);
    const FlatEvaluator flat(forest);
    Result<std::unique_ptr<CompiledForest>> compiled =
        CompiledForest::Compile(forest);
    if (JitSupported()) {
      ASSERT_TRUE(compiled.ok())
          << "trial " << trial << ": " << compiled.status().ToString();
      ++jit_compiled;
    }

    for (int r = 0; r < 25; ++r) {
      const std::vector<double> row = MakeRandomRow(&rng, num_features);
      const double reference = interpreted.Predict(row.data());
      ASSERT_EQ(flat.Predict(row.data()), reference)
          << "flat disagrees, trial " << trial << " row " << r;
      if (compiled.ok()) {
        ASSERT_EQ((*compiled)->Predict(row.data()), reference)
            << "JIT disagrees, trial " << trial << " row " << r;
      }
    }
  }
  if (JitSupported()) {
    EXPECT_EQ(jit_compiled, 120);
  }
}

// NaN-heavy trifecta: node interpreter vs flat interpreter vs JIT stay
// bit-identical as the NaN density of the input sweeps from none to every
// feature, with ±inf inputs mixed in and denormal thresholds in the trees —
// the corners where ucomisd's unordered results and strict-< routing are
// easiest to get subtly wrong.
TEST(EvaluatorAgreementTest, NanHeavyTrifectaAcrossNanFractions) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kDenorm = std::numeric_limits<double>::denorm_min();
  Rng rng(777);
  for (const double nan_fraction : {0.0, 0.25, 0.75, 1.0}) {
    for (int trial = 0; trial < 15; ++trial) {
      const int num_features = 1 + static_cast<int>(rng.UniformInt(0, 5));
      Forest forest = MakeRandomForest(
          &rng, num_features, 1 + static_cast<int>(rng.UniformInt(0, 4)),
          1 + static_cast<int>(rng.UniformInt(0, 4)));
      // Sprinkle denormal thresholds over the grid ones.
      for (Tree& tree : forest.trees) {
        for (TreeNode& node : tree.nodes) {
          if (!node.is_leaf && rng.Bernoulli(0.3)) {
            node.threshold = kDenorm *
                             static_cast<double>(rng.UniformInt(1, 4)) *
                             (rng.Bernoulli(0.5) ? -1.0 : 1.0);
          }
        }
      }
      ASSERT_TRUE(forest.Validate().ok());

      const InterpretedEvaluator interpreted(forest);
      const FlatEvaluator flat(forest);
      Result<std::unique_ptr<CompiledForest>> compiled =
          CompiledForest::Compile(forest);
      if (JitSupported()) {
        ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      }

      std::vector<double> row(static_cast<size_t>(num_features));
      for (int r = 0; r < 40; ++r) {
        for (double& v : row) {
          if (rng.Bernoulli(nan_fraction)) {
            v = std::numeric_limits<double>::quiet_NaN();
          } else if (rng.Bernoulli(0.2)) {
            v = rng.Bernoulli(0.5) ? kInf : -kInf;
          } else if (rng.Bernoulli(0.2)) {
            v = kDenorm * static_cast<double>(rng.UniformInt(-4, 4));
          } else {
            v = 0.25 * static_cast<double>(rng.UniformInt(-8, 8));
          }
        }
        const double reference = interpreted.Predict(row.data());
        ASSERT_EQ(flat.Predict(row.data()), reference)
            << "flat disagrees, nan_fraction " << nan_fraction << " trial "
            << trial << " row " << r;
        if (compiled.ok()) {
          ASSERT_EQ((*compiled)->Predict(row.data()), reference)
              << "JIT disagrees, nan_fraction " << nan_fraction << " trial "
              << trial << " row " << r;
        }
      }
    }
  }
}

TEST(EvaluatorAgreementTest, ThresholdBoundaryGoesRight) {
  // x == threshold must take the right branch (predicate is strict <) in
  // every evaluator.
  Forest forest;
  forest.num_features = 1;
  forest.base_score = 0.0;
  Tree tree;
  tree.nodes.resize(3);
  tree.nodes[0].feature = 0;
  tree.nodes[0].threshold = 1.5;
  tree.nodes[0].left = 1;
  tree.nodes[0].right = 2;
  tree.nodes[1].is_leaf = true;
  tree.nodes[1].value = -1.0;
  tree.nodes[2].is_leaf = true;
  tree.nodes[2].value = +1.0;
  forest.trees.push_back(tree);
  ASSERT_TRUE(forest.Validate().ok());

  const InterpretedEvaluator interpreted(forest);
  const FlatEvaluator flat(forest);
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);

  const double boundary = 1.5;
  const double below = std::nextafter(1.5, 0.0);
  EXPECT_EQ(interpreted.Predict(&boundary), 1.0);
  EXPECT_EQ(interpreted.Predict(&below), -1.0);
  EXPECT_EQ(flat.Predict(&boundary), 1.0);
  EXPECT_EQ(flat.Predict(&below), -1.0);
  if (compiled.ok()) {
    EXPECT_EQ((*compiled)->Predict(&boundary), 1.0);
    EXPECT_EQ((*compiled)->Predict(&below), -1.0);
  }
}

TEST(EvaluatorAgreementTest, NanHonorsDefaultLeft) {
  for (bool default_left : {false, true}) {
    Forest forest;
    forest.num_features = 1;
    Tree tree;
    tree.nodes.resize(3);
    tree.nodes[0].feature = 0;
    tree.nodes[0].threshold = 0.0;
    tree.nodes[0].left = 1;
    tree.nodes[0].right = 2;
    tree.nodes[0].default_left = default_left;
    tree.nodes[1].is_leaf = true;
    tree.nodes[1].value = -1.0;
    tree.nodes[2].is_leaf = true;
    tree.nodes[2].value = +1.0;
    forest.trees.push_back(tree);

    const double expected = default_left ? -1.0 : 1.0;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(forest.Predict(&nan), expected);
    EXPECT_EQ(FlatEvaluator(forest).Predict(&nan), expected);
    Result<std::unique_ptr<CompiledForest>> compiled =
        CompiledForest::Compile(forest);
    if (compiled.ok()) {
      EXPECT_EQ((*compiled)->Predict(&nan), expected)
          << "default_left=" << default_left;
    }
  }
}

TEST(EvaluatorAgreementTest, InfinityFollowsStrictLess) {
  Forest forest;
  forest.num_features = 1;
  Tree tree;
  tree.nodes.resize(3);
  tree.nodes[0].feature = 0;
  tree.nodes[0].threshold = 0.0;
  tree.nodes[0].left = 1;
  tree.nodes[0].right = 2;
  tree.nodes[1].is_leaf = true;
  tree.nodes[1].value = -1.0;
  tree.nodes[2].is_leaf = true;
  tree.nodes[2].value = +1.0;
  forest.trees.push_back(tree);

  const double pos_inf = std::numeric_limits<double>::infinity();
  const double neg_inf = -pos_inf;
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);
  for (const auto& [x, expected] :
       {std::pair{pos_inf, 1.0}, std::pair{neg_inf, -1.0}}) {
    EXPECT_EQ(forest.Predict(&x), expected);
    EXPECT_EQ(FlatEvaluator(forest).Predict(&x), expected);
    if (compiled.ok()) {
      EXPECT_EQ((*compiled)->Predict(&x), expected);
    }
  }
}

TEST(JitTest, WideFeatureOffsetsNeedDisp32) {
  // Features beyond index 15 have byte offsets > 127 and exercise the
  // disp32 addressing path of the emitter.
  if (!JitSupported()) GTEST_SKIP() << "JIT unsupported on this host";
  Rng rng(5);
  const int num_features = 200;
  const Forest forest = MakeRandomForest(&rng, num_features, 8, 6);
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  for (int r = 0; r < 50; ++r) {
    const std::vector<double> row = MakeRandomRow(&rng, num_features);
    ASSERT_EQ((*compiled)->Predict(row.data()), forest.Predict(row.data()));
  }
}

TEST(JitTest, RejectsInvalidForest) {
  if (!JitSupported()) GTEST_SKIP() << "JIT unsupported on this host";
  Forest forest;
  forest.num_features = 1;
  Tree tree;
  tree.nodes.resize(1);
  tree.nodes[0].feature = 0;
  tree.nodes[0].threshold = 0.0;
  tree.nodes[0].left = 5;  // Out of range.
  tree.nodes[0].right = 6;
  forest.trees.push_back(tree);
  EXPECT_FALSE(CompiledForest::Compile(forest).ok());
}

TEST(JitTest, UnsupportedHostsReportUnavailable) {
  if (JitSupported()) {
    GTEST_SKIP() << "host supports the JIT; fallback path not reachable";
  }
  Rng rng(1);
  const Forest forest = MakeRandomForest(&rng, 4, 2, 3);
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kUnavailable);
}

TEST(BatchTest, PredictBatchMatchesLoop) {
  Rng rng(77);
  const int num_features = 6;
  const Forest forest = MakeRandomForest(&rng, num_features, 5, 5);
  const FlatEvaluator flat(forest);
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(forest);

  const size_t num_rows = 64;
  std::vector<double> rows;
  for (size_t i = 0; i < num_rows; ++i) {
    const std::vector<double> row = MakeRandomRow(&rng, num_features);
    rows.insert(rows.end(), row.begin(), row.end());
  }

  std::vector<double> out(num_rows);
  flat.PredictBatch(rows.data(), num_rows, num_features, out.data());
  for (size_t i = 0; i < num_rows; ++i) {
    EXPECT_EQ(out[i], flat.Predict(&rows[i * num_features])) << "row " << i;
  }
  if (compiled.ok()) {
    (*compiled)->PredictBatch(rows.data(), num_rows, num_features, out.data());
    for (size_t i = 0; i < num_rows; ++i) {
      EXPECT_EQ(out[i], forest.Predict(&rows[i * num_features])) << "row " << i;
    }
  }
}

// One row densely seeded with the batch kernels' hard inputs: NaN (masked
// compares must still route by default_left), +/-inf, denormals, and -0.0
// (which must compare equal to +0.0 thresholds).
std::vector<double> MakeAdversarialRow(Rng* rng, int num_features) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kDenorm = std::numeric_limits<double>::denorm_min();
  std::vector<double> row(static_cast<size_t>(num_features));
  for (double& v : row) {
    switch (rng->UniformInt(0, 6)) {
      case 0: v = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: v = rng->Bernoulli(0.5) ? kInf : -kInf; break;
      case 2: v = kDenorm * static_cast<double>(rng->UniformInt(-4, 4)); break;
      case 3: v = -0.0; break;
      default: v = 0.25 * static_cast<double>(rng->UniformInt(-8, 8)); break;
    }
  }
  return row;
}

// Checks PredictBatch and PredictBatchSoA against per-row Predict on one
// evaluator, bitwise, across the battery's batch sizes (straddling the
// 8-row kernel width on both sides plus a large batch with a ragged tail).
void CheckBatchAgainstPerRow(const ForestEvaluator& evaluator,
                             const std::vector<double>& rows, size_t max_rows,
                             int num_features, const char* label) {
  const size_t dim = static_cast<size_t>(num_features);
  std::vector<double> out(max_rows);
  std::vector<double> soa(max_rows * dim);
  for (const size_t n : {size_t{1}, size_t{7}, size_t{8}, size_t{9},
                         size_t{1024}}) {
    if (n > max_rows) continue;
    evaluator.PredictBatch(rows.data(), n, dim, out.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], evaluator.Predict(&rows[i * dim]))
          << label << " PredictBatch, batch " << n << " row " << i;
    }
    for (size_t f = 0; f < dim; ++f) {
      for (size_t i = 0; i < n; ++i) soa[f * n + i] = rows[i * dim + f];
    }
    evaluator.PredictBatchSoA(soa.data(), n, dim, out.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], evaluator.Predict(&rows[i * dim]))
          << label << " PredictBatchSoA, batch " << n << " row " << i;
    }
  }
}

// The batch tentpole's randomized battery: 100 random forests, batch sizes
// {1, 7, 8, 9, 1024}, adversarial inputs, every evaluator and both layouts
// bit-identical to per-row Predict (which the scalar battery above already
// ties to the interpreted reference).
TEST(BatchTest, RandomizedBatteryBitIdenticalAcrossEvaluators) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    const int num_features = 1 + static_cast<int>(rng.UniformInt(0, 7));
    const int num_trees = 1 + static_cast<int>(rng.UniformInt(0, 7));
    const int max_depth = 1 + static_cast<int>(rng.UniformInt(0, 5));
    const Forest forest =
        MakeRandomForest(&rng, num_features, num_trees, max_depth);
    ASSERT_TRUE(forest.Validate().ok()) << "trial " << trial;

    // Big batches only every 10th trial to keep the battery fast.
    const size_t max_rows = trial % 10 == 0 ? 1024 : 9;
    std::vector<double> rows;
    rows.reserve(max_rows * static_cast<size_t>(num_features));
    for (size_t i = 0; i < max_rows; ++i) {
      const std::vector<double> row = i % 2 == 0
                                          ? MakeAdversarialRow(&rng, num_features)
                                          : MakeRandomRow(&rng, num_features);
      rows.insert(rows.end(), row.begin(), row.end());
    }

    const InterpretedEvaluator interpreted(forest);
    const FlatEvaluator flat(forest);
    CheckBatchAgainstPerRow(interpreted, rows, max_rows, num_features,
                            "interpreted");
    CheckBatchAgainstPerRow(flat, rows, max_rows, num_features, "flat");
    Result<std::unique_ptr<CompiledForest>> compiled =
        CompiledForest::Compile(forest);
    if (JitSupported()) {
      ASSERT_TRUE(compiled.ok())
          << "trial " << trial << ": " << compiled.status().ToString();
      CheckBatchAgainstPerRow(**compiled, rows, max_rows, num_features,
                              "compiled");
    }
  }
}

// Same battery over 20 trained forests: the trainer's monotone thresholds
// and shrunken leaf values are a different distribution than the random
// builder's grid, and trained trees are where the batch path runs in
// production.
TEST(BatchTest, TrainedForestsBatchBitIdentical) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t num_features = 2 + rng.UniformInt(0, 3);
    const size_t num_rows = 240;
    std::vector<double> train_rows(num_rows * num_features);
    std::vector<double> targets(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      double y = 1.0;
      for (size_t f = 0; f < num_features; ++f) {
        const double v = rng.UniformDouble(-4, 4);
        train_rows[i * num_features + f] = v;
        y += (f % 2 == 0 ? v : -0.5 * v);
      }
      targets[i] = y + rng.UniformDouble(-0.1, 0.1);
    }
    TrainParams params;
    params.num_trees = 12;
    params.max_leaves = 8;
    params.min_data_in_leaf = 5;
    params.seed = 1000 + static_cast<uint64_t>(trial);
    Result<Forest> trained =
        TrainForest(train_rows, targets, num_features, params);
    ASSERT_TRUE(trained.ok()) << trained.status().ToString();
    const Forest& forest = trained.value();

    const size_t max_rows = 64;
    std::vector<double> rows;
    for (size_t i = 0; i < max_rows; ++i) {
      const std::vector<double> row =
          i % 4 == 0 ? MakeAdversarialRow(&rng, static_cast<int>(num_features))
                     : MakeRandomRow(&rng, static_cast<int>(num_features));
      rows.insert(rows.end(), row.begin(), row.end());
    }
    CheckBatchAgainstPerRow(FlatEvaluator(forest), rows, max_rows,
                            static_cast<int>(num_features), "flat");
    Result<std::unique_ptr<CompiledForest>> compiled =
        CompiledForest::Compile(forest);
    if (JitSupported()) {
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      CheckBatchAgainstPerRow(**compiled, rows, max_rows,
                              static_cast<int>(num_features), "compiled");
    }
  }
}

// Satellite: the dispatched batch path (whatever the host offers — SIMD
// kernels or the fallback) agrees bitwise with the pinned scalar path on
// every checked-in model fixture. Under T3_FORCE_SCALAR=1 (CI runs the
// suite that way too) both sides take the per-row path and the test proves
// the override leaves results unchanged.
TEST(BatchTest, FixtureModelsScalarAndDispatchedPathsAgree) {
  const char* fixtures[] = {
      "/data/model_ablation_per_pipeline.txt",
      "/data/model_ablation_per_query.txt",
      "/data/model_autowlm_per_query.txt",
      "/data/model_loo_airline.txt",
  };
  if (!JitSupported()) GTEST_SKIP() << "JIT unsupported on this host";
  Rng rng(90210);
  for (const char* fixture : fixtures) {
    const std::string path = std::string(T3_SOURCE_DIR) + fixture;
    Result<Forest> loaded = Forest::LoadFromFile(path);
    ASSERT_TRUE(loaded.ok()) << path << ": " << loaded.status().ToString();
    const Forest& forest = loaded.value();

    JitCompileOptions dispatched_options;
    Result<std::unique_ptr<CompiledForest>> dispatched =
        CompiledForest::Compile(forest, dispatched_options);
    ASSERT_TRUE(dispatched.ok()) << dispatched.status().ToString();
    JitCompileOptions scalar_options;
    scalar_options.enable_batch = false;  // Pins the per-row path.
    Result<std::unique_ptr<CompiledForest>> scalar =
        CompiledForest::Compile(forest, scalar_options);
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    EXPECT_FALSE((*scalar)->has_batch_kernels());

    const size_t num_rows = 33;  // Kernel blocks plus a scalar tail.
    const size_t dim = static_cast<size_t>(forest.num_features);
    std::vector<double> rows;
    for (size_t i = 0; i < num_rows; ++i) {
      const std::vector<double> row =
          MakeRandomRow(&rng, forest.num_features);
      rows.insert(rows.end(), row.begin(), row.end());
    }
    std::vector<double> out_dispatched(num_rows);
    std::vector<double> out_scalar(num_rows);
    (*dispatched)->PredictBatch(rows.data(), num_rows, dim,
                                out_dispatched.data());
    (*scalar)->PredictBatch(rows.data(), num_rows, dim, out_scalar.data());
    for (size_t i = 0; i < num_rows; ++i) {
      ASSERT_EQ(out_dispatched[i], out_scalar[i]) << fixture << " row " << i;
      ASSERT_EQ(out_dispatched[i], forest.Predict(&rows[i * dim]))
          << fixture << " row " << i;
    }
  }
}

TEST(CpuFeaturesTest, DetectHonorsForceScalarEnv) {
  // DetectCpuFeatures re-reads the environment on every call (the cached
  // GetCpuFeatures does not, by contract).
  ASSERT_EQ(setenv("T3_FORCE_SCALAR", "1", /*overwrite=*/1), 0);
  EXPECT_TRUE(DetectCpuFeatures().force_scalar);
  ASSERT_EQ(setenv("T3_FORCE_SCALAR", "0", /*overwrite=*/1), 0);
  EXPECT_FALSE(DetectCpuFeatures().force_scalar);
  ASSERT_EQ(unsetenv("T3_FORCE_SCALAR"), 0);
  EXPECT_FALSE(DetectCpuFeatures().force_scalar);
  // The cached probe and the dispatch gate are consistent with each other.
  const CpuFeatures& cached = GetCpuFeatures();
  EXPECT_EQ(BatchKernelsEnabled(),
            cached.avx && cached.avx2 && !cached.force_scalar);
}

TEST(BatchTest, SoADefaultMatchesRowMajor) {
  // The base-class SoA entry point (gather + Predict) agrees with the
  // row-major one on an evaluator that overrides neither.
  Rng rng(8);
  const int num_features = 5;
  const Forest forest = MakeRandomForest(&rng, num_features, 3, 4);
  const InterpretedEvaluator interpreted(forest);
  const size_t num_rows = 17;
  std::vector<double> rows;
  for (size_t i = 0; i < num_rows; ++i) {
    const std::vector<double> row = MakeRandomRow(&rng, num_features);
    rows.insert(rows.end(), row.begin(), row.end());
  }
  std::vector<double> soa(num_rows * num_features);
  for (size_t f = 0; f < static_cast<size_t>(num_features); ++f) {
    for (size_t i = 0; i < num_rows; ++i) {
      soa[f * num_rows + i] = rows[i * num_features + f];
    }
  }
  std::vector<double> a(num_rows);
  std::vector<double> b(num_rows);
  interpreted.PredictBatch(rows.data(), num_rows, num_features, a.data());
  interpreted.PredictBatchSoA(soa.data(), num_rows, num_features, b.data());
  EXPECT_EQ(a, b);
}

TEST(BatchTest, PredictSumParallelMatchesSerialSum) {
  Rng rng(99);
  const int num_features = 5;
  const Forest forest = MakeRandomForest(&rng, num_features, 4, 5);
  const FlatEvaluator flat(forest);

  const size_t num_rows = 500;
  std::vector<double> rows(num_rows * num_features);
  for (double& v : rows) v = rng.UniformDouble(-2, 2);

  double serial = 0.0;
  for (size_t i = 0; i < num_rows; ++i) {
    serial += flat.Predict(&rows[i * num_features]);
  }

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    const double parallel =
        PredictSumParallel(flat, &pool, rows.data(), num_rows, num_features);
    // Grouping of partial sums differs, so allow relative rounding slack.
    EXPECT_NEAR(parallel, serial, 1e-9 * std::abs(serial) + 1e-9)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace t3
