#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "datagen/generator.h"
#include "datagen/spec.h"
#include "features/feature_registry.h"
#include "features/featurizer.h"
#include "features/stage_catalog.h"
#include "plan/pipeline.h"
#include "plan/plan.h"

namespace t3 {
namespace {

// The corpus stores feature vectors by index only, so the index <-> name
// assignment is part of the persistent format: any change silently
// reinterprets every stored corpus and trained model. This golden list pins
// all 48 assignments; changing the registry means regenerating corpora and
// models, and this test must be updated deliberately in the same commit.
TEST(FeatureRegistryTest, GoldenIndexNameAssignments) {
  const char* const kExpected[] = {
      // clang-format off
      "TableScan_Scan_count",            // 0
      "TableScan_Scan_in_card",          // 1
      "TableScan_Scan_in_size",          // 2
      "Filter_PassThrough_count",        // 3
      "Filter_PassThrough_in_percentage",   // 4
      "Filter_PassThrough_out_percentage",  // 5
      "Project_PassThrough_count",       // 6
      "Project_PassThrough_in_percentage",  // 7
      "HashJoin_Probe_count",            // 8
      "HashJoin_Probe_in_percentage",    // 9
      "HashJoin_Probe_right_percentage", // 10
      "HashJoin_Probe_out_percentage",   // 11
      "HashJoin_Probe_out_card",         // 12
      "HashJoin_Probe_out_size",         // 13
      "HashJoin_Build_count",            // 14
      "HashJoin_Build_in_percentage",    // 15
      "HashJoin_Build_in_card",          // 16
      "HashJoin_Build_in_size",          // 17
      "GroupBy_Build_count",             // 18
      "GroupBy_Build_in_percentage",     // 19
      "GroupBy_Build_out_percentage",    // 20
      "GroupBy_Build_out_card",          // 21
      "GroupBy_Scan_count",              // 22
      "GroupBy_Scan_in_card",            // 23
      "GroupBy_Scan_in_size",            // 24
      "Sort_Build_count",                // 25
      "Sort_Build_in_percentage",        // 26
      "Sort_Build_in_card",              // 27
      "Sort_Build_in_size",              // 28
      "Sort_Scan_count",                 // 29
      "Sort_Scan_in_card",               // 30
      "Sort_Scan_in_size",               // 31
      "Limit_PassThrough_count",         // 32
      "Limit_PassThrough_out_percentage",   // 33
      "Limit_PassThrough_out_card",      // 34
      "Output_Sink_count",               // 35
      "Output_Sink_in_percentage",       // 36
      "Output_Sink_out_card",            // 37
      "Output_Sink_out_size",            // 38
      "Pred_eq_int_percentage",          // 39
      "Pred_eq_float_percentage",        // 40
      "Pred_eq_date_percentage",         // 41
      "Pred_neq_int_percentage",         // 42
      "Pred_neq_float_percentage",       // 43
      "Pred_neq_date_percentage",        // 44
      "Pred_range_int_percentage",       // 45
      "Pred_range_float_percentage",     // 46
      "Pred_range_date_percentage",      // 47
      // clang-format on
  };
  const FeatureRegistry& registry = FeatureRegistry::Get();
  ASSERT_EQ(registry.num_features(), kFeatureDim);
  ASSERT_EQ(static_cast<int>(std::size(kExpected)), kFeatureDim);
  for (int i = 0; i < kFeatureDim; ++i) {
    EXPECT_EQ(registry.def(i).name, kExpected[i]) << "index " << i;
    EXPECT_EQ(registry.FindByName(kExpected[i]), i) << kExpected[i];
  }
}

TEST(FeatureRegistryTest, StageAndPredLookupsAgreeWithDefs) {
  const FeatureRegistry& registry = FeatureRegistry::Get();
  for (int i = 0; i < registry.num_features(); ++i) {
    const FeatureDef& def = registry.def(i);
    if (def.kind == FeatureKind::kPredicatePercentage) {
      EXPECT_EQ(registry.PredFeature(def.pred_slot), i);
    } else {
      EXPECT_EQ(registry.StageFeature(def.stage, def.kind), i);
    }
  }
  // Absent (stage, kind) pairs report -1, e.g. a scan has no out_card.
  const int scan = StageIndexOf(PlanOp::kScan, OpStage::kScan);
  ASSERT_GE(scan, 0);
  EXPECT_EQ(registry.StageFeature(scan, FeatureKind::kOutCard), -1);
}

TEST(StageCatalogTest, PredicateClassSlots) {
  // 3 classes x 3 column types; strings carry no predicate feature.
  EXPECT_EQ(PredClassSlot(CompareOp::kEq, ColumnType::kInt64), 0);
  EXPECT_EQ(PredClassSlot(CompareOp::kNe, ColumnType::kFloat64), 4);
  EXPECT_EQ(PredClassSlot(CompareOp::kLt, ColumnType::kDate), 8);
  EXPECT_EQ(PredClassSlot(CompareOp::kGe, ColumnType::kInt64), 6);
  EXPECT_EQ(PredClassSlot(CompareOp::kEq, ColumnType::kString), -1);
}

// A small generated instance backing the featurizer tests below.
const Catalog& TestCatalog() {
  static const Catalog* catalog = []() {
    Result<const InstanceSpec*> spec = FindInstance("tpch_sf0");
    T3_CHECK_OK(spec);
    DatagenOptions options;
    options.scale_override = 0.05;
    Result<Catalog> generated = GenerateInstance(**spec, options);
    T3_CHECK_OK(generated);
    return new Catalog(*std::move(generated));
  }();
  return *catalog;
}

std::vector<PipelineFeatureVector> Featurize(const PhysicalPlan& plan) {
  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  T3_CHECK_OK(decomposition);
  Result<std::vector<PipelineFeatureVector>> features = ComputePipelineFeatures(
      TestCatalog(), plan, *decomposition, NodeOutputRowsFromPlan(plan));
  T3_CHECK_OK(features);
  return *features;
}

int Index(const char* name) {
  const int index = FeatureRegistry::Get().FindByName(name);
  T3_CHECK(index >= 0);
  return index;
}

int ColIndex(const Table& table, const std::string& name) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).name() == name) return static_cast<int>(c);
  }
  T3_CHECK(false);
  return -1;
}

TEST(FeaturizerTest, ScanFilterOutputPipeline) {
  const Catalog& catalog = TestCatalog();
  PlanBuilder b(&catalog);
  Result<int> scan = b.Scan("lineitem");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  Result<const Table*> lineitem = catalog.FindTable("lineitem");
  ASSERT_TRUE(lineitem.ok());
  const int qty = ColIndex(**lineitem, "l_qty");
  Result<int> filter = b.Filter(*scan, {{qty, CompareOp::kLt, 10.0}});
  ASSERT_TRUE(filter.ok());
  Result<PhysicalPlan> plan = b.Output(*filter);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const auto features = Featurize(*plan);
  ASSERT_EQ(features.size(), 1u);
  const PipelineFeatureVector& f = features[0];
  const double rows = static_cast<double>((*lineitem)->num_rows());
  EXPECT_EQ(f.input_cardinality, rows);
  ASSERT_EQ(f.values.size(), static_cast<size_t>(kFeatureDim));
  EXPECT_EQ(f.values[Index("TableScan_Scan_count")], 1.0);
  EXPECT_EQ(f.values[Index("TableScan_Scan_in_card")], rows);
  EXPECT_EQ(f.values[Index("Filter_PassThrough_count")], 1.0);
  EXPECT_EQ(f.values[Index("Filter_PassThrough_in_percentage")], 1.0);
  // The builder's default filter estimate: 1/3 per conjunct.
  EXPECT_NEAR(f.values[Index("Filter_PassThrough_out_percentage")], 1.0 / 3,
              1e-2);
  // l_qty is an integer column under a range comparison.
  EXPECT_GT(f.values[Index("Pred_range_int_percentage")], 0.0);
  EXPECT_EQ(f.values[Index("Pred_eq_int_percentage")], 0.0);
  EXPECT_EQ(f.values[Index("Output_Sink_count")], 1.0);
}

TEST(FeaturizerTest, DuplicateStagesAddTheirContributions) {
  const Catalog& catalog = TestCatalog();
  PlanBuilder b(&catalog);
  Result<int> scan = b.Scan("lineitem");
  ASSERT_TRUE(scan.ok());
  Result<const Table*> lineitem = catalog.FindTable("lineitem");
  ASSERT_TRUE(lineitem.ok());
  const int qty = ColIndex(**lineitem, "l_qty");
  Result<int> f1 = b.Filter(*scan, {{qty, CompareOp::kLt, 30.0}});
  ASSERT_TRUE(f1.ok());
  Result<int> f2 = b.Filter(*f1, {{qty, CompareOp::kGt, 5.0}});
  ASSERT_TRUE(f2.ok());
  Result<PhysicalPlan> plan = b.Output(*f2);
  ASSERT_TRUE(plan.ok());

  const auto features = Featurize(*plan);
  ASSERT_EQ(features.size(), 1u);
  const PipelineFeatureVector& f = features[0];
  // Two filter occurrences in one pipeline: counts and percentages add
  // (Listing 1's += on repeated stages).
  EXPECT_EQ(f.values[Index("Filter_PassThrough_count")], 2.0);
  // in% of the first filter is 1.0, of the second ~1/3.
  EXPECT_NEAR(f.values[Index("Filter_PassThrough_in_percentage")], 4.0 / 3,
              1e-2);
  EXPECT_EQ(f.values[Index("Pred_eq_int_percentage")], 0.0);
  EXPECT_GT(f.values[Index("Pred_range_int_percentage")], 1.0);
}

TEST(FeaturizerTest, JoinAndAggregatePipelinesCarryStageFeatures) {
  const Catalog& catalog = TestCatalog();
  PlanBuilder b(&catalog);
  Result<int> lineitem = b.Scan("lineitem");
  ASSERT_TRUE(lineitem.ok());
  Result<int> orders = b.Scan("orders");
  ASSERT_TRUE(orders.ok());
  Result<const Table*> li = catalog.FindTable("lineitem");
  Result<const Table*> ord = catalog.FindTable("orders");
  ASSERT_TRUE(li.ok());
  ASSERT_TRUE(ord.ok());
  const int l_order = ColIndex(**li, "l_order");
  const int o_id = ColIndex(**ord, "o_id");
  Result<int> join = b.HashJoin(*lineitem, *orders, {l_order}, {o_id});
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  Result<int> agg = b.HashAggregate(*join, {l_order},
                                    {{AggFunc::kCountStar, -1}});
  ASSERT_TRUE(agg.ok());
  Result<PhysicalPlan> plan = b.Output(*agg);
  ASSERT_TRUE(plan.ok());

  const auto features = Featurize(*plan);
  // Build-side pipeline, probe+agg-build pipeline, agg-scan+output pipeline.
  ASSERT_EQ(features.size(), 3u);
  double build_count = 0, probe_count = 0, groupby_scan = 0;
  for (const PipelineFeatureVector& f : features) {
    build_count += f.values[Index("HashJoin_Build_count")];
    probe_count += f.values[Index("HashJoin_Probe_count")];
    groupby_scan += f.values[Index("GroupBy_Scan_count")];
  }
  EXPECT_EQ(build_count, 1.0);
  EXPECT_EQ(probe_count, 1.0);
  EXPECT_EQ(groupby_scan, 1.0);
  // The probe pipeline's right_percentage is build rows / driving rows.
  bool found_probe = false;
  for (const PipelineFeatureVector& f : features) {
    if (f.values[Index("HashJoin_Probe_count")] == 0.0) continue;
    found_probe = true;
    const double right = f.values[Index("HashJoin_Probe_right_percentage")];
    EXPECT_NEAR(right,
                static_cast<double>((*ord)->num_rows()) /
                    static_cast<double>((*li)->num_rows()),
                1e-9);
  }
  EXPECT_TRUE(found_probe);
}

TEST(FeaturizerTest, RejectsMismatchedCardinalityVector) {
  const Catalog& catalog = TestCatalog();
  PlanBuilder b(&catalog);
  Result<int> scan = b.Scan("lineitem");
  ASSERT_TRUE(scan.ok());
  Result<PhysicalPlan> plan = b.Output(*scan);
  ASSERT_TRUE(plan.ok());
  Result<PipelineDecomposition> decomposition = DecomposePipelines(*plan);
  ASSERT_TRUE(decomposition.ok());
  Result<std::vector<PipelineFeatureVector>> features =
      ComputePipelineFeatures(catalog, *plan, *decomposition, {1.0});
  EXPECT_FALSE(features.ok());
}

}  // namespace
}  // namespace t3
