// Statistical properties of the value generators, checked on a purpose-built
// instance spec: zipfian skew is recoverable from generated frequencies,
// correlated pairs correlate while independent pairs don't, and realized
// null fractions match the spec. Generation is deterministic, so these are
// exact regression tests despite the statistical flavor.

#include <cmath>
#include <cstdint>
#include <vector>

#include "datagen/generator.h"
#include "datagen/spec.h"
#include "gtest/gtest.h"
#include "storage/column_stats.h"

namespace t3 {
namespace {

constexpr uint64_t kRows = 60000;
constexpr int64_t kZipfDomain = 1000;
constexpr double kZipfSkew = 1.2;
constexpr double kNullFraction = 0.1;

ColumnSpec Col(const char* name, ColumnType type, DistKind dist) {
  ColumnSpec c;
  c.name = name;
  c.type = type;
  c.dist = dist;
  return c;
}

/// One table exercising every property under test.
InstanceSpec PropertySpec() {
  InstanceSpec spec;
  spec.name = "property_probe";
  spec.family = "property";
  spec.scale = 1.0;

  TableSpec table;
  table.name = "t";
  table.base_rows = kRows;

  ColumnSpec zipf = Col("zipf", ColumnType::kInt64, DistKind::kZipf);
  zipf.domain = kZipfDomain;
  zipf.zipf_skew = kZipfSkew;

  ColumnSpec base = Col("base", ColumnType::kFloat64, DistKind::kUniformDouble);
  base.dlo = 0.0;
  base.dhi = 100.0;

  ColumnSpec corr = Col("corr", ColumnType::kFloat64, DistKind::kNormal);
  corr.corr_base = 1;  // "base"
  corr.corr_slope = 2.0;
  corr.corr_noise = 10.0;

  ColumnSpec indep = Col("indep", ColumnType::kFloat64, DistKind::kNormal);
  indep.mean = 0.0;
  indep.stddev = 1.0;

  ColumnSpec nullable = Col("nullable", ColumnType::kDate, DistKind::kDate);
  nullable.lo = DaysFromCivil(2000, 1, 1);
  nullable.hi = DaysFromCivil(2010, 12, 31);
  nullable.null_fraction = kNullFraction;

  table.columns = {zipf, base, corr, indep, nullable};
  spec.tables = {table};
  return spec;
}

class DatagenPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatagenOptions options;
    options.seed = 2024;
    Result<Catalog> catalog = GenerateInstance(PropertySpec(), options);
    T3_CHECK_OK(catalog);
    catalog_ = new Catalog(*std::move(catalog));
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }

  static const Column& column(const char* name) {
    Result<const Column*> col = catalog_->table(0).FindColumn(name);
    T3_CHECK_OK(col);
    return **col;
  }

  /// Pearson correlation over rows where both columns are non-null.
  static double Pearson(const Column& x, const Column& y) {
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    double n = 0;
    for (size_t i = 0; i < x.size(); ++i) {
      if (x.IsNull(i) || y.IsNull(i)) continue;
      const double a = x.Float64At(i);
      const double b = y.Float64At(i);
      sx += a;
      sy += b;
      sxx += a * a;
      syy += b * b;
      sxy += a * b;
      n += 1;
    }
    const double cov = sxy - sx * sy / n;
    const double vx = sxx - sx * sx / n;
    const double vy = syy - sy * sy / n;
    return cov / std::sqrt(vx * vy);
  }

  static Catalog* catalog_;
};

Catalog* DatagenPropertyTest::catalog_ = nullptr;

TEST_F(DatagenPropertyTest, ZipfSkewRecoveredFromFrequencies) {
  const Column& zipf = column("zipf");
  std::vector<uint64_t> counts(static_cast<size_t>(kZipfDomain) + 1, 0);
  for (size_t i = 0; i < zipf.size(); ++i) {
    const int64_t rank = zipf.Int64At(i);
    ASSERT_GE(rank, 1);
    ASSERT_LE(rank, kZipfDomain);
    ++counts[static_cast<size_t>(rank)];
  }
  // Least-squares fit of log(count) vs log(rank) over the head ranks, where
  // counts are large enough that sampling noise is small. The slope estimates
  // -skew.
  constexpr size_t kHead = 30;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t r = 1; r <= kHead; ++r) {
    ASSERT_GT(counts[r], 0u) << "head rank " << r << " never drawn";
    const double lx = std::log(static_cast<double>(r));
    const double ly = std::log(static_cast<double>(counts[r]));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double n = kHead;
  const double slope = (sxy - sx * sy / n) / (sxx - sx * sx / n);
  EXPECT_NEAR(-slope, kZipfSkew, 0.15);

  // Monotone head: rank 1 strictly dominates rank 10 dominates rank 100.
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST_F(DatagenPropertyTest, ZipfNdvCoversMostOfTheDomain) {
  const ColumnStats stats = ComputeColumnStats(column("zipf"));
  // 60k draws over 1000 ranks at skew 1.2: nearly all ranks appear, but the
  // deep tail may miss; well below the domain is a generator bug either way.
  EXPECT_GT(stats.ndv, 500u);
  EXPECT_LE(stats.ndv, static_cast<uint64_t>(kZipfDomain) + 50);
}

TEST_F(DatagenPropertyTest, CorrelatedPairCorrelatesIndependentPairDoesNot) {
  const double corr_r = Pearson(column("base"), column("corr"));
  const double indep_r = Pearson(column("base"), column("indep"));
  // slope 2 on U[0,100] (sd ~57.7) against noise sd 10 => r ~ 0.996.
  EXPECT_GT(std::fabs(corr_r), 0.9);
  EXPECT_LT(std::fabs(indep_r), 0.15);
}

TEST_F(DatagenPropertyTest, NullFractionMatchesSpecWithinHalfAPercent) {
  const ColumnStats stats = ComputeColumnStats(column("nullable"));
  EXPECT_EQ(stats.row_count, kRows);
  EXPECT_NEAR(stats.null_fraction(), kNullFraction, 0.005);
  // Non-null values stay inside the configured date range.
  EXPECT_GE(stats.min_i64, DaysFromCivil(2000, 1, 1));
  EXPECT_LE(stats.max_i64, DaysFromCivil(2010, 12, 31));
}

TEST_F(DatagenPropertyTest, ZeroNullFractionMeansNoNulls) {
  const ColumnStats stats = ComputeColumnStats(column("base"));
  EXPECT_EQ(stats.null_count, 0u);
}

TEST(DatagenSpecValidationTest, RejectsMalformedSpecs) {
  InstanceSpec spec = PropertySpec();
  spec.tables[0].columns[0].domain = 0;  // Zipf needs a positive domain.
  DatagenOptions options;
  EXPECT_EQ(GenerateInstance(spec, options).status().code(),
            StatusCode::kInvalidArgument);

  InstanceSpec fk_spec = PropertySpec();
  ColumnSpec bad_fk = Col("fk", ColumnType::kInt64, DistKind::kForeignKey);
  bad_fk.fk_table = "missing";
  fk_spec.tables[0].columns.push_back(bad_fk);
  EXPECT_EQ(GenerateInstance(fk_spec, options).status().code(),
            StatusCode::kInvalidArgument);

  InstanceSpec corr_spec = PropertySpec();
  corr_spec.tables[0].columns[2].corr_base = 2;  // Self/forward reference.
  EXPECT_EQ(GenerateInstance(corr_spec, options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace t3
