// Tests for the plan -> features -> corpus data-path verification stack:
// PlanVerifier, FeatureAuditor, CorpusAuditor, and the "t3plan v1" file
// format. Fixture-based tests load the tracked golden plans and the mini
// corpus; mutation tests prove the passes catch seeded corruption.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/corpus_auditor.h"
#include "analysis/feature_auditor.h"
#include "analysis/plan_verifier.h"
#include "common/check.h"
#include "common/stats.h"
#include "datagen/generator.h"
#include "datagen/spec.h"
#include "features/feature_registry.h"
#include "gbt/forest.h"
#include "harness/corpus.h"
#include "plan/plan.h"
#include "plan/plan_file.h"
#include "querygen/querygen.h"

namespace t3 {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

bool HasCheck(const AnalysisReport& report, const std::string& check,
              Severity severity) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.check == check && d.severity == severity) return true;
  }
  return false;
}

bool HasError(const AnalysisReport& report, const std::string& check) {
  return HasCheck(report, check, Severity::kError);
}

std::vector<PlanNodeRecord> LoadPlanFixture(const std::string& name) {
  Result<std::string> content =
      ReadFileToString(std::string(T3_SOURCE_DIR) + "/" + name);
  T3_CHECK_OK(content);
  Result<std::vector<PlanNodeRecord>> records = ParsePlanText(*content);
  T3_CHECK_OK(records);
  return *std::move(records);
}

Corpus LoadMiniCorpus() {
  Result<Corpus> corpus =
      LoadCorpusFromFile(std::string(T3_SOURCE_DIR) + "/data/corpus_mini.txt");
  T3_CHECK_OK(corpus);
  return *std::move(corpus);
}

// --- Plan file format. ---

TEST(PlanFileTest, GoldenFixturesRoundTrip) {
  for (const char* name :
       {"data/plan_agg_golden.txt", "data/plan_join_golden.txt"}) {
    const std::vector<PlanNodeRecord> records = LoadPlanFixture(name);
    const std::string text = PlanRecordsToText(records);
    Result<std::vector<PlanNodeRecord>> reparsed = ParsePlanText(text);
    ASSERT_TRUE(reparsed.ok()) << name;
    EXPECT_EQ(PlanRecordsToText(*reparsed), text) << name;
  }
}

TEST(PlanFileTest, RejectsMalformedText) {
  EXPECT_FALSE(ParsePlanText("").ok());
  EXPECT_FALSE(ParsePlanText("t3model v1\n").ok());
  EXPECT_FALSE(ParsePlanText("t3plan v1\nnodes -1\n").ok());
  EXPECT_FALSE(ParsePlanText("t3plan v1\nnodes 1\nN 0 -1\n").ok());
  EXPECT_FALSE(
      ParsePlanText("t3plan v1\nnodes 1\nN 8 -1 -1 1 0 8 0\ntrailing\n")
          .ok());
}

// --- PlanVerifier. ---

TEST(PlanVerifierTest, GoldenFixturesVerifyClean) {
  for (const char* name :
       {"data/plan_agg_golden.txt", "data/plan_join_golden.txt"}) {
    const AnalysisReport report =
        PlanVerifier().VerifyRecords(LoadPlanFixture(name));
    EXPECT_TRUE(report.empty()) << name << ":\n" << report.ToString();
  }
}

TEST(PlanVerifierTest, CatchesCycle) {
  // tests/data/plan_bad.txt: node 1's child references node 2 — a forward
  // edge, i.e. a cycle under children-before-parents order.
  Result<std::string> content = ReadFileToString(
      std::string(T3_SOURCE_DIR) + "/tests/data/plan_bad.txt");
  ASSERT_TRUE(content.ok());
  Result<std::vector<PlanNodeRecord>> records = ParsePlanText(*content);
  ASSERT_TRUE(records.ok());
  const AnalysisReport report = PlanVerifier().VerifyRecords(*records);
  EXPECT_TRUE(HasError(report, "plan-topology")) << report.ToString();
}

TEST(PlanVerifierTest, CatchesZeroedStageTags) {
  // Zeroing every stage tag of a multi-pipeline plan is the signature of
  // dropped breaker annotations; the recomputed decomposition disagrees.
  std::vector<PlanNodeRecord> records =
      LoadPlanFixture("data/plan_join_golden.txt");
  for (PlanNodeRecord& record : records) record.stage = 0;
  const AnalysisReport report = PlanVerifier().VerifyRecords(records);
  EXPECT_TRUE(HasError(report, "plan-stage")) << report.ToString();
}

TEST(PlanVerifierTest, CatchesMissingBreaker) {
  // Downgrading the hash aggregate to a streaming project removes the
  // breaker: the plan collapses to one pipeline and every downstream stage
  // tag diverges from the recomputed decomposition.
  std::vector<PlanNodeRecord> records =
      LoadPlanFixture("data/plan_agg_golden.txt");
  ASSERT_EQ(records[2].op, static_cast<int>(PlanOp::kHashAggregate));
  records[2].op = static_cast<int>(PlanOp::kProject);
  const AnalysisReport report = PlanVerifier().VerifyRecords(records);
  EXPECT_TRUE(HasError(report, "plan-stage")) << report.ToString();
}

TEST(PlanVerifierTest, CatchesNonFiniteAnnotations) {
  std::vector<PlanNodeRecord> records =
      LoadPlanFixture("data/plan_agg_golden.txt");
  records[0].cardinality = -5.0;
  records[1].width = kNan;
  const AnalysisReport report = PlanVerifier().VerifyRecords(records);
  EXPECT_TRUE(HasError(report, "plan-annotation")) << report.ToString();
}

TEST(PlanVerifierTest, CatchesTypeMismatchedJoinKey) {
  // Build a live FK join, then retarget the probe key at a float column:
  // ResolvePlanSchemas (the executor's type checks) must reject it.
  Result<const InstanceSpec*> spec = FindInstance("tpch_sf0");
  T3_CHECK_OK(spec);
  DatagenOptions options;
  options.scale_override = 0.05;
  Result<Catalog> catalog = GenerateInstance(**spec, options);
  T3_CHECK_OK(catalog);

  const std::vector<JoinEdge> edges = DiscoverJoinEdges(*catalog);
  ASSERT_FALSE(edges.empty());
  const JoinEdge* edge = nullptr;
  int float_column = -1;
  for (const JoinEdge& candidate : edges) {
    const Table& fact = catalog->table(candidate.fk_table);
    for (size_t c = 0; c < fact.num_columns(); ++c) {
      if (fact.column(c).type() == ColumnType::kFloat64) {
        edge = &candidate;
        float_column = static_cast<int>(c);
        break;
      }
    }
    if (edge != nullptr) break;
  }
  ASSERT_NE(edge, nullptr) << "no FK edge with a float column in the fact";

  PlanBuilder builder(&*catalog);
  Result<int> fact = builder.Scan(catalog->table(edge->fk_table).name());
  T3_CHECK_OK(fact);
  Result<int> dim = builder.Scan(catalog->table(edge->pk_table).name());
  T3_CHECK_OK(dim);
  Result<int> join = builder.HashJoin(*fact, *dim,
                                      {static_cast<int>(edge->fk_column)},
                                      {static_cast<int>(edge->pk_column)});
  T3_CHECK_OK(join);
  Result<PhysicalPlan> plan = builder.Output(*join);
  T3_CHECK_OK(plan);
  EXPECT_TRUE(PlanVerifier().Verify(*plan, &*catalog).empty());

  plan->nodes[static_cast<size_t>(*join)].left_keys[0] = float_column;
  const AnalysisReport report = PlanVerifier().Verify(*plan, &*catalog);
  EXPECT_TRUE(HasError(report, "plan-schema")) << report.ToString();
}

// --- FeatureAuditor. ---

TEST(FeatureAuditorTest, RegistryIsClean) {
  const AnalysisReport report = FeatureAuditor().AuditRegistry();
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(FeatureAuditorTest, VectorChecks) {
  const FeatureRegistry& registry = FeatureRegistry::Get();
  const FeatureAuditor auditor;
  std::vector<double> values(static_cast<size_t>(kFeatureDim), 0.0);
  EXPECT_TRUE(auditor.AuditVector(values, "clean").empty());

  std::vector<double> wrong_dim(10, 0.0);
  EXPECT_TRUE(HasError(auditor.AuditVector(wrong_dim, "dim"), "feature-dim"));

  // Filter pass-through: index 3 = count, 4 = in_percentage.
  const int count_index = registry.StageFeature(1, FeatureKind::kCount);
  const int pct_index = registry.StageFeature(1, FeatureKind::kInPercentage);
  ASSERT_GE(count_index, 0);
  ASSERT_GE(pct_index, 0);

  values[static_cast<size_t>(pct_index)] = 150.0;
  EXPECT_TRUE(
      HasError(auditor.AuditVector(values, "pct"), "feature-range"));
  values[static_cast<size_t>(pct_index)] = 0.5;
  EXPECT_TRUE(auditor.AuditVector(values, "pct").empty());

  values[static_cast<size_t>(count_index)] = 1.5;
  EXPECT_TRUE(
      HasError(auditor.AuditVector(values, "count"), "feature-count"));
  values[static_cast<size_t>(count_index)] = 2.0;

  values[0] = kNan;
  EXPECT_TRUE(
      HasError(auditor.AuditVector(values, "nan"), "feature-finite"));
}

TEST(FeatureAuditorTest, PairComparesCountFeaturesOnly) {
  const FeatureRegistry& registry = FeatureRegistry::Get();
  const FeatureAuditor auditor;
  std::vector<double> feat_true(static_cast<size_t>(kFeatureDim), 0.0);
  std::vector<double> feat_est = feat_true;

  // Percentages may differ between cardinality modes.
  const int pct_index = registry.StageFeature(1, FeatureKind::kInPercentage);
  feat_est[static_cast<size_t>(pct_index)] = 0.25;
  EXPECT_TRUE(auditor.AuditVectorPair(feat_true, feat_est, "pct").empty());

  // Counts are structural and must be bit-equal.
  const int count_index = registry.StageFeature(1, FeatureKind::kCount);
  feat_est[static_cast<size_t>(count_index)] = 1.0;
  EXPECT_TRUE(HasError(auditor.AuditVectorPair(feat_true, feat_est, "count"),
                       "feature-mode"));

  std::vector<double> truncated(10, 0.0);
  EXPECT_TRUE(HasError(auditor.AuditVectorPair(feat_true, truncated, "dim"),
                       "feature-dim"));
}

TEST(FeatureAuditorTest, DeadFeatureReport) {
  Forest forest;
  forest.num_features = kFeatureDim;
  TreeNode split;
  split.is_leaf = false;
  split.feature = 0;
  split.threshold = 10.0;
  split.left = 1;
  split.right = 2;
  TreeNode leaf;
  leaf.is_leaf = true;
  leaf.value = 1.0;
  forest.trees.push_back(Tree{{split, leaf, leaf}});

  const std::vector<std::string> dead = FeatureAuditor().DeadFeatures(forest);
  EXPECT_EQ(dead.size(), static_cast<size_t>(kFeatureDim - 1));
  const std::string used = FeatureRegistry::Get().def(0).name;
  for (const std::string& name : dead) EXPECT_NE(name, used);

  // Foreign feature spaces get no report (the names would be wrong).
  forest.num_features = 7;
  EXPECT_TRUE(FeatureAuditor().DeadFeatures(forest).empty());
}

// --- CorpusAuditor. ---

TEST(CorpusAuditorTest, MiniCorpusIsClean) {
  const Corpus corpus = LoadMiniCorpus();
  const AnalysisReport report =
      CorpusAuditor().Audit(corpus, "data/corpus_mini.txt");
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(CorpusAuditorTest, CatchesTamperedMedian) {
  Corpus corpus = LoadMiniCorpus();
  corpus.records[0].median_seconds *= 2.0;
  const AnalysisReport report = CorpusAuditor().Audit(corpus, "");
  EXPECT_TRUE(HasError(report, "corpus-median")) << report.ToString();
}

TEST(CorpusAuditorTest, CatchesNegativeLabel) {
  Corpus corpus = LoadMiniCorpus();
  corpus.records[1].median_seconds = -0.5;
  EXPECT_TRUE(
      HasError(CorpusAuditor().Audit(corpus, ""), "corpus-label"));
}

TEST(CorpusAuditorTest, CatchesTruncatedFeatureVector) {
  Corpus corpus = LoadMiniCorpus();
  corpus.records[0].feat_est[0].values.resize(40);
  EXPECT_TRUE(HasError(CorpusAuditor().Audit(corpus, ""), "feature-dim"));
}

TEST(CorpusAuditorTest, CatchesTamperedStageCount) {
  Corpus corpus = LoadMiniCorpus();
  const FeatureRegistry& registry = FeatureRegistry::Get();
  const int count_index = registry.StageFeature(0, FeatureKind::kCount);
  corpus.records[0].feat_true[0].values[static_cast<size_t>(count_index)] +=
      1.0;
  const AnalysisReport report = CorpusAuditor().Audit(corpus, "");
  // The extra scan shows up both against the recomputed decomposition and
  // against the untouched estimated-mode vector.
  EXPECT_TRUE(HasError(report, "corpus-count")) << report.ToString();
  EXPECT_TRUE(HasError(report, "feature-mode")) << report.ToString();
}

TEST(CorpusAuditorTest, FlagsDuplicateRecords) {
  Corpus corpus = LoadMiniCorpus();
  QueryRecord copy = corpus.records[3];
  // Fresh timings: a duplicate is about (instance, plan, features), not
  // about identical measurements.
  for (double& v : copy.total_run_seconds) v *= 1.5;
  copy.median_seconds = Median(copy.total_run_seconds);
  corpus.records.push_back(copy);
  const AnalysisReport report = CorpusAuditor().Audit(corpus, "");
  EXPECT_TRUE(HasCheck(report, "corpus-duplicate", Severity::kWarning))
      << report.ToString();
  EXPECT_FALSE(report.HasErrors()) << report.ToString();
}

TEST(CorpusAuditorTest, DiagnosticsCarryPathAndLine) {
  Corpus corpus = LoadMiniCorpus();
  corpus.records[0].median_seconds = -1.0;
  const AnalysisReport report =
      CorpusAuditor().Audit(corpus, "data/corpus_mini.txt");
  ASSERT_FALSE(report.empty());
  const std::string& message = report.diagnostics()[0].message;
  EXPECT_NE(message.find("data/corpus_mini.txt line "), std::string::npos)
      << message;
}

}  // namespace
}  // namespace t3
