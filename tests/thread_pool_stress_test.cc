// Stress tests for common::ThreadPool, written to be run under TSan (the
// CI "tsan" job): many submitters, submits racing Wait, task-chains that
// keep enqueueing while the destructor is draining the queue. Assertions
// are about completion counts; the sanitizer checks the synchronization.

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace t3 {
namespace {

TEST(ThreadPoolStressTest, ConcurrentSubmitters) {
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 500;
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &ran] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  pool.Wait();
  EXPECT_EQ(ran.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStressTest, WaitRacesSubmit) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::atomic<bool> stop{false};
  // One thread hammers Wait while another streams tasks in; Wait must
  // neither deadlock nor miss the all-done signal.
  std::thread submitter([&pool, &ran, &stop] {
    for (int i = 0; i < 2000; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    stop.store(true);
  });
  while (!stop.load()) pool.Wait();
  submitter.join();
  pool.Wait();
  EXPECT_EQ(ran.load(), 2000);
}

TEST(ThreadPoolStressTest, TasksEnqueueDuringShutdown) {
  // Tasks resubmit follow-ups while the destructor runs. The pool's
  // shutdown contract is drain-then-exit: workers only leave when the
  // queue is empty, so every link of every chain must execute even though
  // shutdown_ is set long before the chains finish.
  constexpr int kChains = 16;
  constexpr int kChainLength = 50;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    // The recursive lambda must outlive each hop; keep it on the heap and
    // capture by value.
    struct Chain {
      static void Hop(ThreadPool* pool, std::atomic<int>* ran, int left) {
        ran->fetch_add(1, std::memory_order_relaxed);
        if (left > 1) {
          pool->Submit([pool, ran, left] { Hop(pool, ran, left - 1); });
        }
      }
    };
    for (int c = 0; c < kChains; ++c) {
      pool.Submit([&pool, &ran] { Chain::Hop(&pool, &ran, kChainLength); });
    }
    // Destructor fires immediately: most hops happen during shutdown.
  }
  EXPECT_EQ(ran.load(), kChains * kChainLength);
}

TEST(ThreadPoolStressTest, DestructorDrainsPendingQueue) {
  // More queued tasks than workers, destroyed without Wait: all must run.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPoolStressTest, AsyncFuturesFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kPerCaller = 200;
  std::atomic<long long> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &total, c] {
      long long sum = 0;
      std::vector<std::future<int>> futures;
      futures.reserve(kPerCaller);
      for (int i = 0; i < kPerCaller; ++i) {
        futures.push_back(pool.Async([c, i] { return c * kPerCaller + i; }));
      }
      for (std::future<int>& f : futures) sum += f.get();
      total.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : callers) thread.join();
  const long long n = static_cast<long long>(kCallers) * kPerCaller;
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace t3
