// Coverage for the physical plan IR: builder construction + validation
// errors, the corpus N-line record round-trip, and pipeline-decomposition
// golden cases (breaker placement, stage tags, driving cardinalities).

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "plan/pipeline.h"
#include "plan/plan.h"
#include "storage/catalog.h"

namespace t3 {
namespace {

/// orders(o_id int64, o_cust int64, o_total float64) x 20 rows,
/// customers(c_id int64, c_name string) x 5 rows.
Catalog MakeCatalog() {
  // Each column is filled before the next AddColumn call: AddColumn returns
  // a reference that a later AddColumn may invalidate.
  Catalog catalog;
  Table& orders = catalog.AddTable("orders");
  Column& o_id = orders.AddColumn("o_id", ColumnType::kInt64);
  for (int64_t i = 0; i < 20; ++i) o_id.AppendInt64(i);
  Column& o_cust = orders.AddColumn("o_cust", ColumnType::kInt64);
  for (int64_t i = 0; i < 20; ++i) o_cust.AppendInt64(i % 5);
  Column& o_total = orders.AddColumn("o_total", ColumnType::kFloat64);
  for (int64_t i = 0; i < 20; ++i) {
    o_total.AppendFloat64(static_cast<double>(i) * 1.5);
  }
  Table& customers = catalog.AddTable("customers");
  Column& c_id = customers.AddColumn("c_id", ColumnType::kInt64);
  for (int64_t i = 0; i < 5; ++i) c_id.AppendInt64(i);
  Column& c_name = customers.AddColumn("c_name", ColumnType::kString);
  for (int64_t i = 0; i < 5; ++i) {
    c_name.AppendString("customer" + std::to_string(i));
  }
  return catalog;
}

TEST(PlanBuilderTest, BuildsAnnotatedValidatedPlan) {
  const Catalog catalog = MakeCatalog();
  PlanBuilder builder(&catalog);
  const int scan = *builder.Scan("orders");
  const int filter =
      *builder.Filter(scan, {{2, CompareOp::kLt, 10.0}});
  const int agg = *builder.HashAggregate(
      filter, {1}, {{AggFunc::kCountStar, -1}, {AggFunc::kSum, 2}});
  Result<PhysicalPlan> plan = builder.Output(agg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->num_nodes(), 4u);
  EXPECT_TRUE(ValidatePlan(*plan).ok());

  // Annotation defaults: scan = table rows, filter = input / 3 per
  // conjunct, widths from the output schema (8 bytes per numeric column).
  EXPECT_DOUBLE_EQ(plan->nodes[0].cardinality, 20.0);
  EXPECT_DOUBLE_EQ(plan->nodes[0].width, 24.0);
  EXPECT_NEAR(plan->nodes[1].cardinality, 20.0 / 3.0, 1e-12);
  // Aggregate schema: group int64 + count int64 + sum float64.
  EXPECT_DOUBLE_EQ(plan->nodes[2].width, 24.0);

  const std::string rendered = PlanToString(*plan);
  EXPECT_NE(rendered.find("hash_aggregate"), std::string::npos);
  EXPECT_NE(rendered.find("scan orders"), std::string::npos);
}

TEST(PlanBuilderTest, RejectsTypeAndRangeErrors) {
  const Catalog catalog = MakeCatalog();
  PlanBuilder builder(&catalog);
  EXPECT_FALSE(builder.Scan("nonexistent").ok());
  EXPECT_FALSE(builder.Scan("orders", {0, 7}).ok());  // Column out of range.

  const int orders = *builder.Scan("orders");
  const int customers = *builder.Scan("customers");
  // Predicate on a string column.
  EXPECT_FALSE(builder.Filter(customers, {{1, CompareOp::kEq, 1.0}}).ok());
  // Join keyed on a string column (must be integer-backed).
  EXPECT_FALSE(builder.HashJoin(orders, customers, {1}, {1}).ok());
  // Join keyed on a float64 column.
  EXPECT_FALSE(builder.HashJoin(orders, customers, {2}, {0}).ok());
  // Sum over a string column.
  EXPECT_FALSE(
      builder.HashAggregate(customers, {}, {{AggFunc::kSum, 1}}).ok());
  // Group by a float64 column.
  EXPECT_FALSE(
      builder.HashAggregate(orders, {2}, {{AggFunc::kCountStar, -1}}).ok());
  // Negative limit.
  EXPECT_FALSE(builder.Limit(orders, -1).ok());
}

TEST(ValidatePlanTest, RejectsStructuralErrors) {
  EXPECT_FALSE(ValidatePlan(PhysicalPlan{}).ok());

  const Catalog catalog = MakeCatalog();
  PlanBuilder builder(&catalog);
  const int scan = *builder.Scan("orders");
  const int limit = *builder.Limit(scan, 5);
  PhysicalPlan plan = *builder.Output(limit);

  // Root must be the output node.
  PhysicalPlan no_output = plan;
  no_output.nodes.pop_back();
  EXPECT_FALSE(ValidatePlan(no_output).ok());

  // Non-finite annotation.
  PhysicalPlan bad_card = plan;
  bad_card.nodes[1].cardinality = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidatePlan(bad_card).ok());

  // A node consumed twice (plans are trees).
  PhysicalPlan diamond = plan;
  diamond.nodes[2].left = 0;
  EXPECT_FALSE(ValidatePlan(diamond).ok());

  // Filter with no predicates.
  PhysicalPlan empty_filter = plan;
  empty_filter.nodes[1].op = PlanOp::kFilter;
  empty_filter.nodes[1].predicates.clear();
  EXPECT_FALSE(ValidatePlan(empty_filter).ok());

  // Child after parent.
  PhysicalPlan forward_ref = plan;
  forward_ref.nodes[1].left = 2;
  EXPECT_FALSE(ValidatePlan(forward_ref).ok());
}

TEST(PlanRecordsTest, RoundTripsThroughNLineRecords) {
  const Catalog catalog = MakeCatalog();
  PlanBuilder builder(&catalog);
  const int orders = *builder.Scan("orders");
  const int filter = *builder.Filter(orders, {{2, CompareOp::kGe, 3.0}});
  const int customers = *builder.Scan("customers", {0});
  const int join = *builder.HashJoin(filter, customers, {1}, {0});
  const int agg = *builder.HashAggregate(
      join, {1}, {{AggFunc::kCountStar, -1}});
  const int sort = *builder.Sort(agg, {{0, true}});
  const int limit = *builder.Limit(sort, 3);
  PhysicalPlan plan = *builder.Output(limit);

  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  ASSERT_TRUE(decomposition.ok());
  AnnotatePipelineStages(&plan, *decomposition);

  const std::vector<PlanNodeRecord> records = PlanToRecords(plan);
  ASSERT_EQ(records.size(), plan.num_nodes());
  // Op-specific extras: scan/project = column count, filter = predicate
  // count, join = key pairs, aggregate = group count, sort = key count,
  // limit = n.
  EXPECT_DOUBLE_EQ(records[static_cast<size_t>(orders)].extra, 3.0);
  EXPECT_DOUBLE_EQ(records[static_cast<size_t>(filter)].extra, 1.0);
  EXPECT_DOUBLE_EQ(records[static_cast<size_t>(customers)].extra, 1.0);
  EXPECT_DOUBLE_EQ(records[static_cast<size_t>(join)].extra, 1.0);
  EXPECT_DOUBLE_EQ(records[static_cast<size_t>(agg)].extra, 1.0);
  EXPECT_DOUBLE_EQ(records[static_cast<size_t>(sort)].extra, 1.0);
  EXPECT_DOUBLE_EQ(records[static_cast<size_t>(limit)].extra, 3.0);

  // records -> skeleton plan -> records is the identity.
  Result<PhysicalPlan> skeleton = PlanFromRecords(records);
  ASSERT_TRUE(skeleton.ok()) << skeleton.status().ToString();
  const std::vector<PlanNodeRecord> again = PlanToRecords(*skeleton);
  ASSERT_EQ(again.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(again[i].op, records[i].op) << i;
    EXPECT_EQ(again[i].left, records[i].left) << i;
    EXPECT_EQ(again[i].right, records[i].right) << i;
    EXPECT_DOUBLE_EQ(again[i].cardinality, records[i].cardinality) << i;
    EXPECT_DOUBLE_EQ(again[i].extra, records[i].extra) << i;
    EXPECT_DOUBLE_EQ(again[i].width, records[i].width) << i;
    EXPECT_EQ(again[i].stage, records[i].stage) << i;
  }
}

TEST(PlanRecordsTest, RejectsUnknownOpCode) {
  PlanNodeRecord record;
  record.op = 7;  // Reserved (window operator, pending reconstruction).
  Result<PhysicalPlan> plan = PlanFromRecords({record});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, StreamingChainIsOnePipeline) {
  const Catalog catalog = MakeCatalog();
  PlanBuilder builder(&catalog);
  const int scan = *builder.Scan("orders");
  const int filter = *builder.Filter(scan, {{2, CompareOp::kLt, 10.0}});
  const PhysicalPlan plan = *builder.Output(filter);

  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  ASSERT_TRUE(decomposition.ok());
  ASSERT_EQ(decomposition->pipelines.size(), 1u);
  const Pipeline& pipeline = decomposition->pipelines[0];
  EXPECT_EQ(pipeline.nodes, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(pipeline.driving_cardinality, 20.0);
  EXPECT_FALSE(pipeline.builds_hash_table);
}

TEST(PipelineTest, AggregateBreaksIntoTwoPipelines) {
  const Catalog catalog = MakeCatalog();
  PlanBuilder builder(&catalog);
  const int scan = *builder.Scan("orders");
  const int agg = *builder.HashAggregate(
      scan, {1}, {{AggFunc::kCountStar, -1}});
  const double agg_card = builder.node(agg).cardinality;
  const PhysicalPlan plan = *builder.Output(agg);

  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  ASSERT_TRUE(decomposition.ok());
  ASSERT_EQ(decomposition->pipelines.size(), 2u);
  // Build stage: scan streams into the aggregate.
  EXPECT_EQ(decomposition->pipelines[0].nodes, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(decomposition->pipelines[0].driving_cardinality, 20.0);
  // Scan stage: the aggregate's materialized output feeds the root, driven
  // by the aggregate's own output cardinality.
  EXPECT_EQ(decomposition->pipelines[1].nodes, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(decomposition->pipelines[1].driving_cardinality, agg_card);
  // Stage tag of the breaker is the pipeline that streams through it.
  EXPECT_EQ(decomposition->node_pipeline, (std::vector<int>{0, 0, 1}));
}

TEST(PipelineTest, JoinBreaksBuildSideOnly) {
  const Catalog catalog = MakeCatalog();
  PlanBuilder builder(&catalog);
  const int probe = *builder.Scan("orders");
  const int build = *builder.Scan("customers", {0});
  const int join = *builder.HashJoin(probe, build, {1}, {0});
  const PhysicalPlan plan = *builder.Output(join);

  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  ASSERT_TRUE(decomposition.ok());
  ASSERT_EQ(decomposition->pipelines.size(), 2u);
  // The build side closes first (topological order) and is marked.
  EXPECT_EQ(decomposition->pipelines[0].nodes, (std::vector<int>{1, 2}));
  EXPECT_TRUE(decomposition->pipelines[0].builds_hash_table);
  EXPECT_DOUBLE_EQ(decomposition->pipelines[0].driving_cardinality, 5.0);
  // The probe side streams through the join to the root.
  EXPECT_EQ(decomposition->pipelines[1].nodes, (std::vector<int>{0, 2, 3}));
  EXPECT_FALSE(decomposition->pipelines[1].builds_hash_table);
  EXPECT_DOUBLE_EQ(decomposition->pipelines[1].driving_cardinality, 20.0);
  // The join's stage is the probe pipeline.
  EXPECT_EQ(decomposition->node_pipeline, (std::vector<int>{1, 0, 1, 1}));

  const std::string rendered = DecompositionToString(plan, *decomposition);
  EXPECT_NE(rendered.find("builds hash table"), std::string::npos);
}

TEST(PipelineTest, FullQueryDecomposesInTopologicalOrder) {
  // orders -> filter -> join(customers) -> aggregate -> sort -> output:
  // four pipelines, every breaker in two of them.
  const Catalog catalog = MakeCatalog();
  PlanBuilder builder(&catalog);
  const int probe_scan = *builder.Scan("orders");
  const int filter = *builder.Filter(probe_scan, {{2, CompareOp::kGe, 3.0}});
  const int build_scan = *builder.Scan("customers", {0});
  const int join = *builder.HashJoin(filter, build_scan, {1}, {0});
  const int agg = *builder.HashAggregate(
      join, {1}, {{AggFunc::kCountStar, -1}});
  const int sort = *builder.Sort(agg, {{1, false}});
  const PhysicalPlan plan = *builder.Output(sort);

  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  ASSERT_TRUE(decomposition.ok());
  ASSERT_EQ(decomposition->pipelines.size(), 4u);
  EXPECT_EQ(decomposition->pipelines[0].nodes,
            (std::vector<int>{build_scan, join}));
  EXPECT_TRUE(decomposition->pipelines[0].builds_hash_table);
  EXPECT_EQ(decomposition->pipelines[1].nodes,
            (std::vector<int>{probe_scan, filter, join, agg}));
  EXPECT_EQ(decomposition->pipelines[2].nodes,
            (std::vector<int>{agg, sort}));
  EXPECT_EQ(decomposition->pipelines[3].nodes,
            (std::vector<int>{sort, plan.root()}));
  // Streaming-stage tags: probe chain owns the join, the aggregate belongs
  // to its input pipeline, the sort to its own input pipeline.
  EXPECT_EQ(decomposition->node_pipeline[static_cast<size_t>(build_scan)], 0);
  EXPECT_EQ(decomposition->node_pipeline[static_cast<size_t>(join)], 1);
  EXPECT_EQ(decomposition->node_pipeline[static_cast<size_t>(agg)], 1);
  EXPECT_EQ(decomposition->node_pipeline[static_cast<size_t>(sort)], 2);
  EXPECT_EQ(decomposition->node_pipeline[plan.nodes.size() - 1], 3);
}

}  // namespace
}  // namespace t3
