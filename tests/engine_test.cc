// Cross-checks the vectorized executor against scalar reference
// computations: NULL semantics on a hand-built table, filter/aggregate and
// join/sort queries over generated datagen instances, and the
// ExplainAnalyze invariants (per-pipeline times sum to ~total, operator
// tuple counts match the data).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/spec.h"
#include "engine/executor.h"
#include "plan/pipeline.h"
#include "plan/plan.h"
#include "storage/catalog.h"

namespace t3 {
namespace {

Catalog GenerateSmall(const std::string& instance) {
  Result<const InstanceSpec*> spec = FindInstance(instance);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  DatagenOptions options;
  options.seed = 42;
  options.scale_override = 0.05;
  Result<Catalog> catalog = GenerateInstance(**spec, options);
  EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();
  return *std::move(catalog);
}

const Table& LargestTable(const Catalog& catalog) {
  size_t best = 0;
  for (size_t t = 1; t < catalog.num_tables(); ++t) {
    if (catalog.table(t).num_rows() > catalog.table(best).num_rows()) {
      best = t;
    }
  }
  return catalog.table(best);
}

/// First column of an integer-backed / float64 type, or -1.
int FindColumnOfType(const Table& table, bool want_float) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const ColumnType type = table.column(c).type();
    if (want_float ? type == ColumnType::kFloat64 : IsIntegerBacked(type)) {
      return static_cast<int>(c);
    }
  }
  return -1;
}

double NumericValueAt(const Column& column, size_t row) {
  return column.type() == ColumnType::kFloat64
             ? column.Float64At(row)
             : static_cast<double>(column.Int64At(row));
}

/// Group key for the scalar reference: NULL is its own group.
using RefKey = std::optional<int64_t>;

TEST(EngineTest, NullSemanticsOnHandBuiltTable) {
  // Each column is filled before the next AddColumn call: AddColumn returns
  // a reference that a later AddColumn may invalidate.
  Catalog catalog;
  Table& t = catalog.AddTable("t");
  Column& k = t.AddColumn("k", ColumnType::kInt64);
  k.AppendInt64(1);
  k.AppendNull();
  k.AppendInt64(1);
  k.AppendInt64(2);
  k.AppendNull();
  Column& v = t.AddColumn("v", ColumnType::kFloat64);
  v.AppendFloat64(1.5);
  v.AppendFloat64(2.5);
  v.AppendNull();
  v.AppendFloat64(4.0);
  v.AppendFloat64(5.0);

  PlanBuilder builder(&catalog);
  const int scan = *builder.Scan("t");
  const int agg = *builder.HashAggregate(
      scan, {0},
      {{AggFunc::kCountStar, -1}, {AggFunc::kCount, 1}, {AggFunc::kSum, 1}});
  const PhysicalPlan plan = *builder.Output(agg);

  const Executor executor(catalog);
  Result<ExplainAnalyze> run = executor.Execute(plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const DataChunk& result = run->result;
  ASSERT_EQ(result.num_rows, 3u);  // Groups 1, 2, and NULL.

  std::map<RefKey, std::pair<int64_t, std::pair<int64_t, double>>> got;
  for (size_t r = 0; r < result.num_rows; ++r) {
    RefKey key;
    if (!result.columns[0].IsNull(r)) key = result.columns[0].i64[r];
    got[key] = {result.columns[1].i64[r],
                {result.columns[2].i64[r], result.columns[3].f64[r]}};
  }
  // count(*) counts rows; count(v) and sum(v) skip NULL inputs.
  EXPECT_EQ(got[RefKey{1}].first, 2);
  EXPECT_EQ(got[RefKey{1}].second.first, 1);
  EXPECT_DOUBLE_EQ(got[RefKey{1}].second.second, 1.5);
  EXPECT_EQ(got[RefKey{2}].first, 1);
  EXPECT_DOUBLE_EQ(got[RefKey{2}].second.second, 4.0);
  EXPECT_EQ(got[RefKey{}].first, 2);
  EXPECT_EQ(got[RefKey{}].second.first, 2);
  EXPECT_DOUBLE_EQ(got[RefKey{}].second.second, 7.5);
}

TEST(EngineTest, JoinSkipsNullKeysOnBothSides) {
  Catalog catalog;
  Table& dim = catalog.AddTable("dim");
  Column& d_k = dim.AddColumn("k", ColumnType::kInt64);
  d_k.AppendInt64(1);
  d_k.AppendInt64(2);
  d_k.AppendNull();
  Table& fact = catalog.AddTable("fact");
  Column& f_k = fact.AddColumn("k", ColumnType::kInt64);
  f_k.AppendInt64(1);
  f_k.AppendNull();
  f_k.AppendInt64(2);
  f_k.AppendInt64(1);

  PlanBuilder builder(&catalog);
  const int probe = *builder.Scan("fact");
  const int build = *builder.Scan("dim");
  const int join = *builder.HashJoin(probe, build, {0}, {0});
  const PhysicalPlan plan = *builder.Output(join);

  const Executor executor(catalog);
  Result<ExplainAnalyze> run = executor.Execute(plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // NULL keys never match: rows 0, 2, 3 of fact match, NULLs drop out.
  EXPECT_EQ(run->result_rows(), 3u);
  EXPECT_EQ(run->operators[static_cast<size_t>(join)].rows_out, 3u);
}

TEST(EngineTest, EmptyInputGlobalAggregateEmitsOneRow) {
  Catalog catalog;
  Table& t = catalog.AddTable("t");
  t.AddColumn("v", ColumnType::kFloat64);  // Zero rows.

  PlanBuilder builder(&catalog);
  const int scan = *builder.Scan("t");
  const int agg = *builder.HashAggregate(
      scan, {}, {{AggFunc::kCountStar, -1}, {AggFunc::kSum, 0}});
  const PhysicalPlan plan = *builder.Output(agg);

  const Executor executor(catalog);
  Result<ExplainAnalyze> run = executor.Execute(plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->result_rows(), 1u);
  EXPECT_EQ(run->result.columns[0].i64[0], 0);       // count(*) = 0.
  EXPECT_TRUE(run->result.columns[1].IsNull(0));     // sum of nothing = NULL.
}

TEST(EngineTest, FilterAggregateMatchesScalarReference) {
  // The same filter + grouped aggregation computed two ways — vectorized
  // morsels vs a plain scalar loop over the storage columns — on three
  // generated instances from different schema families.
  for (const std::string instance :
       {"tpch_sf0", "tpcds_sf0", "airline_small"}) {
    SCOPED_TRACE(instance);
    const Catalog catalog = GenerateSmall(instance);
    const Table& table = LargestTable(catalog);
    const int group_col = FindColumnOfType(table, /*want_float=*/false);
    const int value_col = FindColumnOfType(table, /*want_float=*/true);
    ASSERT_GE(group_col, 0);
    ASSERT_GE(value_col, 0);
    const Column& group = table.column(static_cast<size_t>(group_col));
    const Column& value = table.column(static_cast<size_t>(value_col));

    // Threshold at the mean so the filter keeps a nontrivial fraction.
    double sum = 0.0;
    size_t n = 0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (value.IsNull(r)) continue;
      sum += NumericValueAt(value, r);
      ++n;
    }
    ASSERT_GT(n, 0u);
    const double threshold = sum / static_cast<double>(n);

    // Scalar reference, in row order (so float accumulation order matches).
    std::map<RefKey, std::pair<int64_t, double>> expected;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (value.IsNull(r) || !(NumericValueAt(value, r) < threshold)) {
        continue;  // NULL never passes a predicate.
      }
      RefKey key;
      if (!group.IsNull(r)) key = group.Int64At(r);
      auto& acc = expected[key];
      ++acc.first;
      acc.second += NumericValueAt(value, r);
    }

    PlanBuilder builder(&catalog);
    const int scan = *builder.Scan(table.name());
    const int filter =
        *builder.Filter(scan, {{value_col, CompareOp::kLt, threshold}});
    const int agg = *builder.HashAggregate(
        filter, {group_col},
        {{AggFunc::kCountStar, -1}, {AggFunc::kSum, value_col}});
    const PhysicalPlan plan = *builder.Output(agg);

    const Executor executor(catalog);
    Result<ExplainAnalyze> run = executor.Execute(plan);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const DataChunk& result = run->result;
    ASSERT_EQ(result.num_rows, expected.size());
    for (size_t r = 0; r < result.num_rows; ++r) {
      RefKey key;
      if (!result.columns[0].IsNull(r)) key = result.columns[0].i64[r];
      auto it = expected.find(key);
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(result.columns[1].i64[r], it->second.first);
      EXPECT_NEAR(result.columns[2].f64[r], it->second.second,
                  1e-9 * std::max(1.0, std::fabs(it->second.second)));
    }
  }
}

/// First (fact table, fk column, dim table, key column) relationship of an
/// instance spec, resolved to catalog column indices.
struct FkJoin {
  std::string fact;
  std::string dim;
  int fk_col = -1;
  int key_col = -1;
};

std::optional<FkJoin> FindFkJoin(const InstanceSpec& spec) {
  for (const TableSpec& table : spec.tables) {
    for (size_t c = 0; c < table.columns.size(); ++c) {
      if (table.columns[c].dist != DistKind::kForeignKey) continue;
      for (const TableSpec& target : spec.tables) {
        if (target.name != table.columns[c].fk_table) continue;
        for (size_t k = 0; k < target.columns.size(); ++k) {
          if (target.columns[k].dist == DistKind::kSequential) {
            return FkJoin{table.name, target.name, static_cast<int>(c),
                          static_cast<int>(k)};
          }
        }
      }
    }
  }
  return std::nullopt;
}

TEST(EngineTest, JoinCountMatchesScalarReference) {
  for (const std::string instance : {"tpch_sf0", "tpcds_sf0"}) {
    SCOPED_TRACE(instance);
    Result<const InstanceSpec*> spec = FindInstance(instance);
    ASSERT_TRUE(spec.ok());
    const std::optional<FkJoin> fk = FindFkJoin(**spec);
    ASSERT_TRUE(fk.has_value()) << "no FK relationship in " << instance;
    const Catalog catalog = GenerateSmall(instance);
    const Table& fact = **catalog.FindTable(fk->fact);
    const Table& dim = **catalog.FindTable(fk->dim);

    // Scalar reference: count matches through a multiplicity map.
    std::map<int64_t, uint64_t> dim_count;
    const Column& key = dim.column(static_cast<size_t>(fk->key_col));
    for (size_t r = 0; r < dim.num_rows(); ++r) {
      if (!key.IsNull(r)) ++dim_count[key.Int64At(r)];
    }
    uint64_t expected_matches = 0;
    const Column& fk_col = fact.column(static_cast<size_t>(fk->fk_col));
    for (size_t r = 0; r < fact.num_rows(); ++r) {
      if (fk_col.IsNull(r)) continue;
      auto it = dim_count.find(fk_col.Int64At(r));
      if (it != dim_count.end()) expected_matches += it->second;
    }

    PlanBuilder builder(&catalog);
    const int probe = *builder.Scan(fk->fact);
    const int build = *builder.Scan(fk->dim, {fk->key_col});
    const int join = *builder.HashJoin(probe, build, {fk->fk_col}, {0});
    const int agg =
        *builder.HashAggregate(join, {}, {{AggFunc::kCountStar, -1}});
    const PhysicalPlan plan = *builder.Output(agg);

    const Executor executor(catalog);
    Result<ExplainAnalyze> run = executor.Execute(plan);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run->result_rows(), 1u);
    EXPECT_EQ(static_cast<uint64_t>(run->result.columns[0].i64[0]),
              expected_matches);
    EXPECT_EQ(run->operators[static_cast<size_t>(join)].rows_out,
              expected_matches);
    EXPECT_GT(expected_matches, 0u);
  }
}

TEST(EngineTest, SortLimitMatchesScalarReference) {
  const Catalog catalog = GenerateSmall("airline_small");
  const Table& table = LargestTable(catalog);
  const int sort_col = FindColumnOfType(table, /*want_float=*/true);
  ASSERT_GE(sort_col, 0);
  const Column& column = table.column(static_cast<size_t>(sort_col));
  constexpr int64_t kLimit = 25;

  // Scalar reference: ascending, NULLs last, ties in input order.
  std::vector<size_t> order(table.num_rows());
  for (size_t r = 0; r < order.size(); ++r) order[r] = r;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const bool null_a = column.IsNull(a);
    const bool null_b = column.IsNull(b);
    if (null_a != null_b) return null_b;
    if (null_a) return false;
    return NumericValueAt(column, a) < NumericValueAt(column, b);
  });
  order.resize(static_cast<size_t>(
      std::min<int64_t>(kLimit, static_cast<int64_t>(order.size()))));

  PlanBuilder builder(&catalog);
  const int scan = *builder.Scan(table.name());
  const int sort = *builder.Sort(scan, {{sort_col, true}});
  const int limit = *builder.Limit(sort, kLimit);
  const PhysicalPlan plan = *builder.Output(limit);

  const Executor executor(catalog);
  Result<ExplainAnalyze> run = executor.Execute(plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const DataChunk& result = run->result;
  ASSERT_EQ(result.num_rows, order.size());
  const ColumnVector& got = result.columns[static_cast<size_t>(sort_col)];
  for (size_t r = 0; r < order.size(); ++r) {
    ASSERT_EQ(got.IsNull(r), column.IsNull(order[r])) << r;
    if (!got.IsNull(r)) {
      EXPECT_DOUBLE_EQ(got.f64[r], column.Float64At(order[r])) << r;
    }
  }
}

TEST(EngineTest, LimitStopsReadingTheSource) {
  const Catalog catalog = GenerateSmall("tpch_sf0");
  const Table& table = LargestTable(catalog);
  ASSERT_GT(table.num_rows(), kMorselRows);

  PlanBuilder builder(&catalog);
  const int scan = *builder.Scan(table.name());
  const int limit = *builder.Limit(scan, 5);
  const PhysicalPlan plan = *builder.Output(limit);

  const Executor executor(catalog);
  Result<ExplainAnalyze> run = executor.Execute(plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->result_rows(), 5u);
  // Early stop: one morsel read, not the whole table.
  ASSERT_EQ(run->pipelines.size(), 1u);
  EXPECT_EQ(run->pipelines[0].source_rows, kMorselRows);
  EXPECT_EQ(run->pipelines[0].morsels, 1u);
}

TEST(EngineTest, ExplainAnalyzeInvariantsHold) {
  const Catalog catalog = GenerateSmall("tpch_sf0");
  Result<const InstanceSpec*> spec = FindInstance("tpch_sf0");
  ASSERT_TRUE(spec.ok());
  const std::optional<FkJoin> fk = FindFkJoin(**spec);
  ASSERT_TRUE(fk.has_value());
  const Table& fact = **catalog.FindTable(fk->fact);

  PlanBuilder builder(&catalog);
  const int probe = *builder.Scan(fk->fact);
  const int build = *builder.Scan(fk->dim, {fk->key_col});
  const int join = *builder.HashJoin(probe, build, {fk->fk_col}, {0});
  const int agg = *builder.HashAggregate(
      join, {fk->fk_col}, {{AggFunc::kCountStar, -1}});
  const int sort = *builder.Sort(agg, {{1, false}});
  PhysicalPlan plan = *builder.Output(sort);

  const Executor executor(catalog);
  Result<ExplainAnalyze> run = executor.Execute(plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // The pipeline set matches the static decomposition.
  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  ASSERT_TRUE(decomposition.ok());
  ASSERT_EQ(run->pipelines.size(), decomposition->pipelines.size());
  for (size_t p = 0; p < run->pipelines.size(); ++p) {
    EXPECT_EQ(run->pipelines[p].nodes, decomposition->pipelines[p].nodes);
    EXPECT_DOUBLE_EQ(run->pipelines[p].driving_cardinality,
                     decomposition->pipelines[p].driving_cardinality);
  }

  // Per-pipeline wall times: non-negative, and they sum to ~total (the
  // remainder is orchestration overhead outside any pipeline).
  double pipeline_sum = 0.0;
  for (const PipelineStats& stats : run->pipelines) {
    EXPECT_GE(stats.seconds, 0.0);
    pipeline_sum += stats.seconds;
  }
  EXPECT_LE(pipeline_sum, run->total_seconds + 1e-6);
  EXPECT_LE(run->total_seconds - pipeline_sum,
            std::max(0.5 * run->total_seconds, 0.01));

  // Tuple-count invariants against the data.
  EXPECT_EQ(run->operators[static_cast<size_t>(probe)].rows_out,
            fact.num_rows());
  EXPECT_EQ(run->operators[static_cast<size_t>(join)].rows_in,
            fact.num_rows() + (**catalog.FindTable(fk->dim)).num_rows());
  EXPECT_EQ(run->operators[static_cast<size_t>(agg)].rows_in,
            run->operators[static_cast<size_t>(join)].rows_out);
  EXPECT_EQ(run->operators[static_cast<size_t>(agg)].rows_out,
            run->operators[static_cast<size_t>(sort)].rows_in);
  EXPECT_EQ(run->operators[static_cast<size_t>(sort)].rows_out,
            run->result_rows());

  // Rendering includes the pipeline table and per-operator counts.
  const std::string rendered = run->ToString(plan);
  EXPECT_NE(rendered.find("pipeline 0"), std::string::npos);
  EXPECT_NE(rendered.find("hash_join"), std::string::npos);
}

TEST(EngineTest, InvalidPlansAreErrorsNotCrashes) {
  const Catalog catalog = GenerateSmall("tpch_sf0");
  const Executor executor(catalog);
  // Unknown table.
  PhysicalPlan plan;
  PlanNode scan;
  scan.op = PlanOp::kScan;
  scan.table = "nonexistent";
  plan.nodes.push_back(scan);
  PlanNode output;
  output.op = PlanOp::kOutput;
  output.left = 0;
  plan.nodes.push_back(output);
  EXPECT_FALSE(executor.Execute(plan).ok());
  // Structurally broken plan (no output root).
  PhysicalPlan broken;
  broken.nodes.push_back(scan);
  Result<ExplainAnalyze> run = executor.Execute(broken);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace t3
