#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace t3 {
namespace {

TEST(StatsTest, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Stddev({2, 2, 2}), 0.0);
  EXPECT_NEAR(Stddev({1, 2, 3, 4}), 1.2909944487358056, 1e-12);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({42}), 42.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> values = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.9), 46.0);  // Between 40 and 50.
}

TEST(StatsTest, EmptyInputYieldsNaNNotAbort) {
  // Stats run over untrusted, possibly-empty data (parsed corpora, filtered
  // run lists); empty input is a data condition reported as NaN, never a
  // crash.
  EXPECT_TRUE(std::isnan(Mean({})));
  EXPECT_TRUE(std::isnan(Median({})));
  EXPECT_TRUE(std::isnan(Quantile({}, 0.5)));
  EXPECT_TRUE(std::isnan(Quantile({}, 0.0)));
  EXPECT_DOUBLE_EQ(Stddev({}), 0.0);
}

TEST(StringUtilTest, ParseDoubleStrict) {
  double value = -1.0;
  EXPECT_TRUE(ParseDouble("3.25", &value));
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &value));
  EXPECT_DOUBLE_EQ(value, -1e-3);
  EXPECT_TRUE(ParseDouble("0", &value));
  EXPECT_DOUBLE_EQ(value, 0.0);

  value = 7.0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5x", &value));  // Trailing characters.
  EXPECT_FALSE(ParseDouble("1.5 ", &value));
  EXPECT_FALSE(ParseDouble("inf", &value));
  EXPECT_FALSE(ParseDouble("-inf", &value));
  EXPECT_FALSE(ParseDouble("nan", &value));
  EXPECT_FALSE(ParseDouble("1e999", &value));  // Overflows to infinity.
  EXPECT_DOUBLE_EQ(value, 7.0);  // Failures never touch the output.
}

TEST(StringUtilTest, ParseInt64Strict) {
  int64_t value = -1;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &value));
  EXPECT_EQ(value, INT64_MAX);

  value = 5;
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("12.5", &value));
  EXPECT_FALSE(ParseInt64("12abc", &value));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &value));  // Overflow.
  EXPECT_EQ(value, 5);
}

TEST(StringUtilTest, ParseUint64Strict) {
  uint64_t value = 1;
  EXPECT_TRUE(ParseUint64("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &value));
  EXPECT_EQ(value, UINT64_MAX);

  value = 5;
  EXPECT_FALSE(ParseUint64("", &value));
  EXPECT_FALSE(ParseUint64("-1", &value));  // No wrapping to huge values.
  EXPECT_FALSE(ParseUint64("18446744073709551616", &value));  // Overflow.
  EXPECT_FALSE(ParseUint64("1.0", &value));
  EXPECT_EQ(value, 5u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, KnownFirstValueIsStable) {
  // Pins the PRNG stream: any change to seeding or the generator would
  // silently re-randomize every experiment in the repo.
  Rng rng(42);
  const uint64_t first = rng.Next();
  Rng again(42);
  EXPECT_EQ(again.Next(), first);
  EXPECT_NE(first, 0u);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All of 3..7 hit within 1000 draws.
}

TEST(RngTest, UniformDoubleStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(-2, 5);
    ASSERT_GE(v, -2.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Gaussian(10, 2));
  EXPECT_NEAR(Mean(samples), 10.0, 0.1);
  EXPECT_NEAR(Stddev(samples), 2.0, 0.1);
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::OK().ok());
  const Status error = InvalidArgumentError("bad");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(error.ToString(), "INVALID_ARGUMENT: bad");
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);

  Result<int> error = NotFoundError("nope");
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, Split) {
  const std::vector<std::string> pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("\r\n"), "");
}

TEST(StringUtilTest, FormatDurationUnits) {
  EXPECT_EQ(FormatDuration(812), "812ns");
  EXPECT_EQ(FormatDuration(4200), "4.20us");
  EXPECT_EQ(FormatDuration(1.35e6), "1.35ms");
  EXPECT_EQ(FormatDuration(2.1e9), "2.10s");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  (void)sink;
  EXPECT_GT(timer.ElapsedNanos(), 0);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, AsyncReturnsValues) {
  ThreadPool pool(2);
  auto a = pool.Async([] { return 21; });
  auto b = pool.Async([] { return 2.0; });
  EXPECT_EQ(a.get() * static_cast<int>(b.get()), 42);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(1);
  pool.Wait();  // Must not deadlock.
}

}  // namespace
}  // namespace t3
