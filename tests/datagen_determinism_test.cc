// The datagen determinism contract: for a fixed (instance, seed, scale), the
// generated bits are identical across runs and across thread-pool sizes
// 1/4/8 (and no pool at all). Checksums cover every value buffer and every
// null-bitmap word (see ColumnChecksum).

#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/generator.h"
#include "datagen/spec.h"
#include "gtest/gtest.h"
#include "storage/checksum.h"

namespace t3 {
namespace {

// Instances that cover every distribution kind, both fk shapes, messy
// strings, and chunk counts > 1 at the test scale.
const char* const kProbeInstances[] = {"tpch_sf1", "tpcds_sf0", "sensor_small"};

std::map<std::string, uint64_t> TableChecksums(const Catalog& catalog) {
  std::map<std::string, uint64_t> sums;
  for (size_t t = 0; t < catalog.num_tables(); ++t) {
    sums[catalog.table(t).name()] = TableChecksum(catalog.table(t));
  }
  return sums;
}

Catalog Generate(const std::string& instance, uint64_t seed, double scale,
                 ThreadPool* pool) {
  Result<const InstanceSpec*> spec = FindInstance(instance);
  T3_CHECK_OK(spec);
  DatagenOptions options;
  options.seed = seed;
  options.scale_override = scale;
  options.pool = pool;
  Result<Catalog> catalog = GenerateInstance(**spec, options);
  T3_CHECK_OK(catalog);
  return *std::move(catalog);
}

TEST(DatagenDeterminismTest, SameSeedSameBitsAcrossRuns) {
  for (const char* instance : kProbeInstances) {
    const Catalog first = Generate(instance, 7, 0.5, nullptr);
    const Catalog second = Generate(instance, 7, 0.5, nullptr);
    EXPECT_EQ(CatalogChecksum(first), CatalogChecksum(second)) << instance;
    EXPECT_EQ(TableChecksums(first), TableChecksums(second)) << instance;
  }
}

TEST(DatagenDeterminismTest, DifferentSeedsDifferentBits) {
  const Catalog a = Generate("tpch_sf0", 1, 0.5, nullptr);
  const Catalog b = Generate("tpch_sf0", 2, 0.5, nullptr);
  EXPECT_NE(CatalogChecksum(a), CatalogChecksum(b));
}

TEST(DatagenDeterminismTest, ScaleChangesRowCountsNotDeterminism) {
  const Catalog small = Generate("web_small", 3, 0.2, nullptr);
  const Catalog small_again = Generate("web_small", 3, 0.2, nullptr);
  const Catalog larger = Generate("web_small", 3, 0.6, nullptr);
  EXPECT_EQ(CatalogChecksum(small), CatalogChecksum(small_again));
  EXPECT_NE(CatalogChecksum(small), CatalogChecksum(larger));
}

TEST(DatagenDeterminismTest, BitIdenticalAcrossThreadPoolSizes) {
  // Scale 1.0 on tpch_sf1 makes lineitem 24000 rows = 3 chunks, so the pools
  // genuinely interleave chunk tasks.
  for (const char* instance : kProbeInstances) {
    const Catalog reference = Generate(instance, 42, 1.0, nullptr);
    const auto reference_sums = TableChecksums(reference);
    for (const size_t pool_size : {1u, 4u, 8u}) {
      ThreadPool pool(pool_size);
      const Catalog parallel = Generate(instance, 42, 1.0, &pool);
      EXPECT_EQ(TableChecksums(parallel), reference_sums)
          << instance << " with " << pool_size << " threads";
      EXPECT_EQ(CatalogChecksum(parallel), CatalogChecksum(reference))
          << instance << " with " << pool_size << " threads";
    }
  }
}

TEST(DatagenDeterminismTest, StatsAreDeterministicToo) {
  ThreadPool pool(4);
  const Catalog a = Generate("financial_small", 11, 1.0, &pool);
  const Catalog b = Generate("financial_small", 11, 1.0, nullptr);
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (size_t t = 0; t < a.num_tables(); ++t) {
    EXPECT_EQ(a.table(t).stats(), b.table(t).stats()) << a.table(t).name();
  }
}

}  // namespace
}  // namespace t3
