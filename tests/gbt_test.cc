#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "gbt/forest.h"
#include "gbt/trainer.h"
#include "model/t3_model.h"

namespace t3 {
namespace {

// Training rows for y = f(x) + noise over uniform features.
struct Problem {
  std::vector<double> rows;
  std::vector<double> targets;
  size_t num_features;
};

Problem MakeMonotoneProblem(size_t num_rows, uint64_t seed) {
  Problem problem;
  problem.num_features = 4;
  Rng rng(seed);
  for (size_t i = 0; i < num_rows; ++i) {
    double x0 = rng.UniformDouble(0, 1);
    problem.rows.push_back(x0);
    for (size_t f = 1; f < problem.num_features; ++f) {
      problem.rows.push_back(rng.UniformDouble(0, 1));
    }
    // Strictly increasing in x0; the other features are noise.
    problem.targets.push_back(5.0 * x0 + rng.Gaussian(0, 0.02));
  }
  return problem;
}

TEST(TrainerTest, FitsMonotoneFunctionWithDecreasingValidationLoss) {
  const Problem problem = MakeMonotoneProblem(2000, 3);
  TrainParams params;
  params.num_trees = 60;
  params.max_leaves = 15;
  params.early_stopping_rounds = 60;  // Keep all trees for this test.
  TrainStats stats;
  Result<Forest> forest = TrainForest(problem.rows, problem.targets,
                                      problem.num_features, params, &stats);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();

  // Validation loss decreases substantially from the first boosting rounds
  // to the last ones.
  ASSERT_GE(stats.valid_loss_history.size(), 10u);
  const double early = stats.valid_loss_history[0];
  const double late = stats.valid_loss_history.back();
  EXPECT_LT(late, early * 0.2);
  EXPECT_LT(stats.final_train_loss, 0.05);

  // The learned function is monotone along x0 at a few probe points.
  std::vector<double> row(problem.num_features, 0.5);
  double previous = -1e300;
  for (double x0 : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    row[0] = x0;
    const double pred = forest->Predict(row.data());
    EXPECT_GT(pred, previous) << "not monotone at x0=" << x0;
    previous = pred;
    // And close to the ground truth 5 * x0.
    EXPECT_NEAR(pred, 5.0 * x0, 0.5);
  }
}

TEST(TrainerTest, EarlyStoppingTriggersOnNoise) {
  // Targets independent of the features: after a couple of trees the
  // validation loss cannot improve, so early stopping must fire long before
  // the 400-tree budget.
  Rng rng(17);
  const size_t num_rows = 600, num_features = 3;
  std::vector<double> rows(num_rows * num_features);
  for (double& v : rows) v = rng.UniformDouble(0, 1);
  std::vector<double> targets(num_rows);
  for (double& v : targets) v = rng.Gaussian(0, 1);

  TrainParams params;
  params.num_trees = 400;
  params.max_leaves = 31;
  params.early_stopping_rounds = 10;
  params.validation_fraction = 0.2;
  TrainStats stats;
  Result<Forest> forest =
      TrainForest(rows, targets, num_features, params, &stats);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  EXPECT_TRUE(stats.early_stopped);
  EXPECT_LT(stats.num_trees, 400);
  EXPECT_EQ(forest->trees.size(), static_cast<size_t>(stats.num_trees));
}

TEST(TrainerTest, MapeObjectiveTrains) {
  const Problem problem = MakeMonotoneProblem(1500, 5);
  // Shift targets positive; MAPE is scale-sensitive around zero.
  std::vector<double> targets = problem.targets;
  for (double& v : targets) v += 10.0;

  TrainParams params;
  params.objective = Objective::kMape;
  params.num_trees = 80;
  TrainStats stats;
  Result<Forest> forest = TrainForest(problem.rows, targets,
                                      problem.num_features, params, &stats);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  // Relative error well under 2% on a probe point.
  std::vector<double> row(problem.num_features, 0.5);
  const double pred = forest->Predict(row.data());
  EXPECT_NEAR(pred, 12.5, 0.25);
}

TEST(TrainerTest, RejectsNonFiniteInputs) {
  const std::vector<double> rows = {1.0, std::nan(""), 2.0, 3.0};
  const std::vector<double> targets = {1.0, 2.0};
  Result<Forest> forest = TrainForest(rows, targets, 2, TrainParams{});
  EXPECT_FALSE(forest.ok());
  EXPECT_EQ(forest.status().code(), StatusCode::kInvalidArgument);
}

TEST(ForestIoTest, TextRoundTripIsBitExact) {
  const Problem problem = MakeMonotoneProblem(800, 11);
  TrainParams params;
  params.num_trees = 20;
  Result<Forest> forest = TrainForest(problem.rows, problem.targets,
                                      problem.num_features, params);
  ASSERT_TRUE(forest.ok());

  const std::string text = forest->ToText();
  Result<Forest> reloaded = Forest::FromText(text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  // Bit-exact: serializing again yields the identical string, and
  // predictions agree exactly.
  EXPECT_EQ(reloaded->ToText(), text);
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> row(problem.num_features);
    for (double& v : row) v = rng.UniformDouble(-1, 2);
    const double a = forest->Predict(row.data());
    const double b = reloaded->Predict(row.data());
    ASSERT_EQ(a, b);
  }
}

TEST(ForestIoTest, RejectsMalformedText) {
  EXPECT_FALSE(Forest::FromText("garbage").ok());
  EXPECT_FALSE(Forest::FromText("t3gbt v2\n").ok());
  // Tree with an out-of-range child index fails validation.
  EXPECT_FALSE(Forest::FromText("t3gbt v1\nnum_features 2\nbase_score 0\n"
                                "num_trees 1\ntree 1\n0 0 0.5 3 4 0\n")
                   .ok());
}

TEST(ForestIoTest, EveryCheckedInFixtureRoundTripsBitExact) {
  // Load(Save(f)) must reproduce every checked-in model bit-exactly: the
  // harness caches trained models through this serializer, and the
  // translation validator proves equivalence against the *loaded* forest —
  // any save/load drift would silently undermine both.
  for (const char* name :
       {"model_ablation_per_pipeline.txt", "model_ablation_per_query.txt",
        "model_autowlm_per_query.txt", "model_loo_airline.txt",
        "cache_model_main.txt"}) {
    const std::string path = std::string(T3_SOURCE_DIR) + "/data/" + name;
    Result<Forest> forest = Forest::LoadFromFile(path);
    // cache_* files are generated by the workbench, not checked in; they
    // are validated when present (local runs) but a fresh checkout lacks
    // them.
    if (!forest.ok() && std::string(name).rfind("cache_", 0) == 0) continue;
    ASSERT_TRUE(forest.ok()) << name << ": " << forest.status().ToString();

    Result<Forest> reloaded = Forest::FromText(forest->ToText());
    ASSERT_TRUE(reloaded.ok()) << name << ": "
                               << reloaded.status().ToString();
    // Text equality is the bit-exactness proof: every number is printed
    // with %.17g, which is injective on doubles (distinguishes -0.0, and
    // all values are finite past Validate).
    EXPECT_EQ(reloaded->ToText(), forest->ToText()) << name;

    // Belt and braces: structural field-by-field equality.
    ASSERT_EQ(reloaded->num_features, forest->num_features) << name;
    ASSERT_EQ(reloaded->base_score, forest->base_score) << name;
    ASSERT_EQ(reloaded->trees.size(), forest->trees.size()) << name;
    for (size_t t = 0; t < forest->trees.size(); ++t) {
      const std::vector<TreeNode>& original = forest->trees[t].nodes;
      const std::vector<TreeNode>& copy = reloaded->trees[t].nodes;
      ASSERT_EQ(copy.size(), original.size()) << name << " tree " << t;
      for (size_t n = 0; n < original.size(); ++n) {
        ASSERT_EQ(copy[n].is_leaf, original[n].is_leaf);
        ASSERT_EQ(copy[n].feature, original[n].feature);
        ASSERT_EQ(copy[n].threshold, original[n].threshold);
        ASSERT_EQ(copy[n].left, original[n].left);
        ASSERT_EQ(copy[n].right, original[n].right);
        ASSERT_EQ(copy[n].value, original[n].value);
        ASSERT_EQ(copy[n].default_left, original[n].default_left);
      }
    }
  }
}

TEST(ForestIoTest, LoadsCheckedInModelFixture) {
  const std::string path =
      std::string(T3_SOURCE_DIR) + "/data/model_autowlm_per_query.txt";
  Result<Forest> forest = Forest::LoadFromFile(path);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();

  // The fixture is the paper configuration: 200 trees, 48 features.
  EXPECT_EQ(forest->num_features, 48);
  EXPECT_EQ(forest->trees.size(), 200u);
  EXPECT_DOUBLE_EQ(forest->base_score, 7.7257788436153465);
  EXPECT_EQ(forest->trees[0].nodes.size(), 61u);
  // Root of the first tree as checked in.
  const TreeNode& root = forest->trees[0].nodes[0];
  EXPECT_FALSE(root.is_leaf);
  EXPECT_EQ(root.feature, 1);
  EXPECT_DOUBLE_EQ(root.threshold, 20000.0);

  // Round-trips exactly through our writer (modulo the t3model header).
  Result<Forest> reloaded = Forest::FromText(forest->ToText());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->ToText(), forest->ToText());

  // And predicts something finite on a plausible feature row.
  std::vector<double> row(48, 1.0);
  EXPECT_TRUE(std::isfinite(forest->Predict(row.data())));
}

TEST(T3ModelTest, LoadsTargetFromModelHeader) {
  const std::string base = std::string(T3_SOURCE_DIR) + "/data/";
  Result<T3Model> per_query =
      T3Model::LoadFromFile(base + "model_autowlm_per_query.txt");
  ASSERT_TRUE(per_query.ok()) << per_query.status().ToString();
  EXPECT_EQ(per_query->target(), PredictionTarget::kPerQuery);

  Result<T3Model> per_tuple =
      T3Model::LoadFromFile(base + "model_loo_airline.txt");
  ASSERT_TRUE(per_tuple.ok());
  EXPECT_EQ(per_tuple->target(), PredictionTarget::kPerTuple);

  Result<T3Model> per_pipeline =
      T3Model::LoadFromFile(base + "model_ablation_per_pipeline.txt");
  ASSERT_TRUE(per_pipeline.ok());
  EXPECT_EQ(per_pipeline->target(), PredictionTarget::kPerPipeline);
}

TEST(T3ModelTest, SaveLoadPreservesTargetAndForest) {
  const Problem problem = MakeMonotoneProblem(500, 31);
  TrainParams params;
  params.num_trees = 5;
  Result<Forest> forest = TrainForest(problem.rows, problem.targets,
                                      problem.num_features, params);
  ASSERT_TRUE(forest.ok());
  const T3Model model(*std::move(forest), PredictionTarget::kPerPipeline);

  const std::string path = testing::TempDir() + "/t3_model_roundtrip.txt";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  Result<T3Model> reloaded = T3Model::LoadFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->target(), PredictionTarget::kPerPipeline);
  EXPECT_EQ(reloaded->forest().ToText(), model.forest().ToText());
}

TEST(T3ModelTest, RejectsMalformedTargetHeader) {
  // Regression: the header value was parsed with std::atoi, which silently
  // truncates "2x" to the valid target 2 and reads "" as 0. The strict
  // parser must reject the whole file instead.
  const std::string fixture =
      std::string(T3_SOURCE_DIR) + "/tests/data/model_bad_target.txt";
  Result<T3Model> bad = T3Model::LoadFromFile(fixture);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  Result<T3Model> good_fixture_body = T3Model::LoadFromFile(
      std::string(T3_SOURCE_DIR) + "/tests/data/model_corrupt.txt");
  // The same forest body with target "0" gets past the header (it fails
  // later, in the forest validator) — proof the fixture above fails on the
  // header, not the body.
  if (!good_fixture_body.ok()) {
    EXPECT_EQ(good_fixture_body.status().code(),
              StatusCode::kInvalidArgument);
  }

  for (const char* header : {"t3model target 2x\n", "t3model target \n",
                             "t3model target -0x1\n",
                             "t3model target 99999999999999999999\n"}) {
    const std::string path = testing::TempDir() + "/t3_model_bad_header.txt";
    ASSERT_TRUE(WriteStringToFile(path, std::string(header) +
                                            "t3gbt v1\nnum_features 1\n"
                                            "base_score 0\nnum_trees 0\n")
                    .ok());
    Result<T3Model> loaded = T3Model::LoadFromFile(path);
    EXPECT_FALSE(loaded.ok()) << "header accepted: " << header;
  }
}

TEST(T3ModelTest, TargetTransformRoundTrips) {
  for (double seconds : {1e-9, 4.2e-6, 0.37, 12.0}) {
    EXPECT_NEAR(InverseTransformTarget(TransformTarget(seconds)), seconds,
                seconds * 1e-12);
  }
  // Times below the floor clamp instead of producing infinities.
  EXPECT_TRUE(std::isfinite(TransformTarget(0.0)));
}

}  // namespace
}  // namespace t3
