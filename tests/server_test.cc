// Prediction-server battery: wire-protocol goldens and strict rejection,
// end-to-end bit-exactness against the direct model call, client
// misbehavior (disconnects, malformed frames), and the hot-swap contract
// (zero dropped requests, per-version bit-matching) under concurrent load.

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/net.h"
#include "common/random.h"
#include "common/string_util.h"
#include "gbt/forest.h"
#include "model/t3_model.h"
#include "server/client.h"
#include "server/plan_features.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/serving_model.h"

namespace t3 {
namespace {

// --- Shared fixtures: small hand-built random forests (the treejit-test
// idiom) wrapped as serving models. ---

int BuildRandomSubtree(Tree* tree, Rng* rng, int num_features, int depth) {
  const int index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  const bool leaf = depth <= 0 || rng->Bernoulli(0.3);
  if (leaf) {
    TreeNode& node = tree->nodes[index];
    node.is_leaf = true;
    node.value = rng->UniformDouble(-10, 10);
    return index;
  }
  const int feature = static_cast<int>(rng->UniformInt(0, num_features - 1));
  const double threshold = 0.25 * rng->UniformInt(-8, 8);
  const bool default_left = rng->Bernoulli(0.5);
  const int left = BuildRandomSubtree(tree, rng, num_features, depth - 1);
  const int right = BuildRandomSubtree(tree, rng, num_features, depth - 1);
  TreeNode& node = tree->nodes[index];
  node.is_leaf = false;
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  node.default_left = default_left;
  return index;
}

Forest MakeRandomForest(uint64_t seed, int num_features, int num_trees) {
  Rng rng(seed);
  Forest forest;
  forest.num_features = num_features;
  forest.base_score = rng.UniformDouble(-5, 5);
  for (int t = 0; t < num_trees; ++t) {
    Tree tree;
    BuildRandomSubtree(&tree, &rng, num_features, 5);
    forest.trees.push_back(std::move(tree));
  }
  return forest;
}

T3Model MakeRandomModel(uint64_t seed, int num_features, int num_trees) {
  return T3Model(MakeRandomForest(seed, num_features, num_trees),
                 PredictionTarget::kPerTuple);
}

std::shared_ptr<const ServingModel> MakeTestServingModel(uint64_t seed,
                                                         int num_features,
                                                         int num_trees) {
  Result<std::shared_ptr<const ServingModel>> serving = MakeServingModel(
      MakeRandomModel(seed, num_features, num_trees), 1,
      StrFormat("test:%llu", static_cast<unsigned long long>(seed)));
  T3_CHECK_OK(serving);
  return *std::move(serving);
}

PredictRowsRequest MakeRandomRequest(uint64_t seed, size_t num_rows,
                                     int num_features) {
  Rng rng(seed);
  PredictRowsRequest request;
  request.num_features = static_cast<uint32_t>(num_features);
  request.rows.resize(num_rows * static_cast<size_t>(num_features));
  for (double& value : request.rows) {
    value = 0.25 * static_cast<double>(rng.UniformInt(-8, 8));
  }
  request.input_cardinalities.resize(num_rows);
  for (double& card : request.input_cardinalities) {
    card = static_cast<double>(rng.UniformInt(0, 100000));
  }
  return request;
}

ServerOptions TestServerOptions() {
  ServerOptions options;
  options.port = 0;  // Ephemeral: tests never race over a fixed port.
  options.num_workers = 2;
  return options;
}

// --- Wire-protocol goldens ---

TEST(ProtocolTest, FrameHeaderGolden) {
  Frame frame;
  frame.type = MessageType::kStats;
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
  const uint8_t golden[kFrameHeaderBytes] = {'t', '3', 'p', '1',  // magic
                                             4,   0,              // type/flags
                                             0,   0,              // reserved
                                             0,   0,   0,   0};   // length LE
  EXPECT_EQ(std::memcmp(bytes.data(), golden, kFrameHeaderBytes), 0);

  Result<Frame> decoded = DecodeFrame(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, MessageType::kStats);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(ProtocolTest, PredictRowsRoundTripsBitExact) {
  const PredictRowsRequest request = MakeRandomRequest(7, 5, 48);
  const std::vector<uint8_t> bytes = EncodeFrame(EncodePredictRows(request));
  Result<Frame> frame = DecodeFrame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  Result<PredictRowsRequest> decoded = DecodePredictRows(*frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_features, request.num_features);
  // Doubles travel as IEEE-754 bit patterns: the round trip is bit-exact,
  // not approximately equal.
  ASSERT_EQ(decoded->rows.size(), request.rows.size());
  EXPECT_EQ(std::memcmp(decoded->rows.data(), request.rows.data(),
                        request.rows.size() * sizeof(double)),
            0);
  ASSERT_EQ(decoded->input_cardinalities.size(),
            request.input_cardinalities.size());
  EXPECT_EQ(std::memcmp(decoded->input_cardinalities.data(),
                        request.input_cardinalities.data(),
                        request.input_cardinalities.size() * sizeof(double)),
            0);
}

TEST(ProtocolTest, PredictResponseRoundTripsBitExact) {
  PredictResponse response;
  response.model_version = 42;
  response.predictions = {1.5e-6, 0.25, 3.0e4, -0.0};
  const std::vector<uint8_t> bytes =
      EncodeFrame(EncodePredictResponse(response));
  Result<Frame> frame = DecodeFrame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame.ok());
  Result<PredictResponse> decoded = DecodePredictResponse(*frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->model_version, 42u);
  ASSERT_EQ(decoded->predictions.size(), response.predictions.size());
  EXPECT_EQ(std::memcmp(decoded->predictions.data(),
                        response.predictions.data(),
                        response.predictions.size() * sizeof(double)),
            0);
}

TEST(ProtocolTest, ErrorResponseRoundTrips) {
  const Frame frame =
      EncodeErrorResponse(FailedPreconditionError("swap rejected"));
  Result<ErrorResponse> decoded = DecodeErrorResponse(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(decoded->message, "swap rejected");
}

TEST(ProtocolTest, RejectsBadHeaders) {
  const std::vector<uint8_t> good = EncodeFrame(Frame{
      MessageType::kStats, {}});

  {
    std::vector<uint8_t> bad = good;
    bad[0] = 'x';  // Bad magic.
    EXPECT_FALSE(DecodeFrameHeader(bad.data()).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[4] = 99;  // Unknown message type.
    EXPECT_FALSE(DecodeFrameHeader(bad.data()).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[5] = 1;  // Nonzero flags.
    EXPECT_FALSE(DecodeFrameHeader(bad.data()).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[6] = 1;  // Nonzero reserved.
    EXPECT_FALSE(DecodeFrameHeader(bad.data()).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    // Payload length over the cap.
    const uint32_t huge = kMaxPayloadBytes + 1;
    std::memcpy(bad.data() + 8, &huge, sizeof(huge));
    EXPECT_FALSE(DecodeFrameHeader(bad.data()).ok());
  }
  EXPECT_TRUE(DecodeFrameHeader(good.data()).ok());
}

TEST(ProtocolTest, RejectsTruncatedAndTrailingBytes) {
  const std::vector<uint8_t> bytes =
      EncodeFrame(EncodePredictRows(MakeRandomRequest(11, 2, 4)));
  // Truncated: every strict prefix fails.
  EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size() - 1).ok());
  EXPECT_FALSE(DecodeFrame(bytes.data(), kFrameHeaderBytes).ok());
  // Trailing: extra bytes after the declared payload fail.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(DecodeFrame(padded.data(), padded.size()).ok());
}

TEST(ProtocolTest, RejectsOversizedRowCounts) {
  PredictRowsRequest request = MakeRandomRequest(13, 1, 4);
  Frame frame = EncodePredictRows(request);
  // Corrupt the row count beyond the cap; the decoder must reject before
  // allocating.
  const uint32_t huge_rows = kMaxRowsPerRequest + 1;
  std::memcpy(frame.payload.data(), &huge_rows, sizeof(huge_rows));
  EXPECT_FALSE(DecodePredictRows(frame).ok());

  // A payload shorter than its own row count promises is rejected too.
  Frame truncated = EncodePredictRows(request);
  truncated.payload.resize(truncated.payload.size() - 8);
  EXPECT_FALSE(DecodePredictRows(truncated).ok());
}

// --- End-to-end: the served prediction bit-matches the direct model call ---

TEST(PredictionServerTest, PredictRowsBitMatchesDirectModel) {
  const int kFeatures = 16;
  const T3Model reference = MakeRandomModel(101, kFeatures, 20);
  Result<std::unique_ptr<PredictionServer>> server = PredictionServer::Start(
      MakeTestServingModel(101, kFeatures, 20), TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Result<PredictionClient> client =
      PredictionClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  for (uint64_t seed = 0; seed < 5; ++seed) {
    const PredictRowsRequest request =
        MakeRandomRequest(200 + seed, 17, kFeatures);
    Result<PredictResponse> response = client->PredictRows(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->model_version, 1u);
    ASSERT_EQ(response->predictions.size(), request.num_rows());
    for (size_t i = 0; i < request.num_rows(); ++i) {
      const double expected = reference.PredictPipelineSeconds(
          request.rows.data() + i * kFeatures,
          request.input_cardinalities[i]);
      // Bit-exact, not approximately: the whole serving path (batcher,
      // SIMD evaluators, wire encoding) must not perturb a single ULP.
      EXPECT_EQ(response->predictions[i], expected) << "row " << i;
    }
  }
  (*server)->Stop();
}

TEST(PredictionServerTest, PredictPlanMatchesPipelineSum) {
  const T3Model reference = MakeRandomModel(303, 48, 12);
  Result<std::unique_ptr<PredictionServer>> server = PredictionServer::Start(
      MakeTestServingModel(303, 48, 12), TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Result<std::string> plan_text = ReadFileToString(
      std::string(T3_SOURCE_DIR) + "/data/plan_agg_golden.txt");
  ASSERT_TRUE(plan_text.ok()) << plan_text.status().ToString();

  // The expected value through the library path: featurize the skeleton,
  // then sum the per-pipeline predictions in pipeline order (the
  // PredictQuerySeconds convention).
  Result<PlanPredictionInput> input = BuildPlanPredictionInput(*plan_text);
  ASSERT_TRUE(input.ok()) << input.status().ToString();
  ASSERT_GT(input->num_rows(), 0u);
  ASSERT_EQ(input->num_features, 48u);
  double expected = 0.0;
  for (size_t i = 0; i < input->num_rows(); ++i) {
    expected += reference.PredictPipelineSeconds(
        input->rows.data() + i * input->num_features,
        input->input_cardinalities[i]);
  }

  Result<PredictionClient> client =
      PredictionClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Result<PredictResponse> response = client->PredictPlan(*plan_text);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->predictions.size(), 1u);
  EXPECT_EQ(response->predictions[0], expected);

  // Malformed plan text: a kError reply, and the connection stays usable.
  EXPECT_FALSE(client->PredictPlan("not a plan").ok());
  Result<PredictResponse> again = client->PredictPlan(*plan_text);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->predictions[0], expected);
  (*server)->Stop();
}

// --- Client misbehavior ---

TEST(PredictionServerTest, MalformedFrameGetsErrorAndClose) {
  Result<std::unique_ptr<PredictionServer>> server = PredictionServer::Start(
      MakeTestServingModel(55, 8, 4), TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Result<PredictionClient> client =
      PredictionClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  const char garbage[kFrameHeaderBytes] = {'n', 'o', 'n', 's', 'e', 'n',
                                           's', 'e', '.', '.', '.', '.'};
  ASSERT_TRUE(client->RawSend(garbage, sizeof(garbage)).ok());
  Result<Frame> reply = client->RawReceive();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MessageType::kError);
  // The server closes after flushing the error: the next read sees EOF.
  EXPECT_FALSE(client->RawReceive().ok());

  // The server itself is unharmed: a fresh connection predicts fine.
  Result<PredictionClient> fresh =
      PredictionClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->PredictRows(MakeRandomRequest(1, 3, 8)).ok());
  EXPECT_GE((*server)->stats().protocol_errors, 1u);
  (*server)->Stop();
}

TEST(PredictionServerTest, WrongFeatureWidthIsAnErrorNotACrash) {
  Result<std::unique_ptr<PredictionServer>> server = PredictionServer::Start(
      MakeTestServingModel(56, 8, 4), TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Result<PredictionClient> client =
      PredictionClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  // 5 features against an 8-feature model: rejected per-request, and the
  // same connection keeps working afterwards.
  Result<PredictResponse> bad =
      client->PredictRows(MakeRandomRequest(2, 3, 5));
  EXPECT_FALSE(bad.ok());
  Result<PredictResponse> good =
      client->PredictRows(MakeRandomRequest(3, 3, 8));
  EXPECT_TRUE(good.ok()) << good.status().ToString();
  (*server)->Stop();
}

TEST(PredictionServerTest, SurvivesAbruptDisconnects) {
  Result<std::unique_ptr<PredictionServer>> server = PredictionServer::Start(
      MakeTestServingModel(57, 8, 4), TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  // Half-written frames, requests abandoned before the response is read,
  // and immediate closes: none of it may take down the server (SIGPIPE is
  // ignored; EPIPE/ECONNRESET reap just that connection).
  for (int round = 0; round < 10; ++round) {
    Result<PredictionClient> client =
        PredictionClient::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    const std::vector<uint8_t> bytes = EncodeFrame(
        EncodePredictRows(MakeRandomRequest(round, 64, 8)));
    switch (round % 3) {
      case 0:  // Half a frame, then vanish.
        ASSERT_TRUE(client->RawSend(bytes.data(), bytes.size() / 2).ok());
        break;
      case 1:  // Full request, vanish without reading the response.
        ASSERT_TRUE(client->RawSend(bytes.data(), bytes.size()).ok());
        break;
      default:  // Connect and vanish.
        break;
    }
    // Client destructor closes the socket abruptly.
  }

  Result<PredictionClient> survivor =
      PredictionClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(survivor.ok());
  Result<PredictResponse> response =
      survivor->PredictRows(MakeRandomRequest(99, 4, 8));
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  (*server)->Stop();
}

// --- Hot swap under load: zero drops, per-version bit-matching ---

TEST(PredictionServerTest, HotSwapUnderLoadDropsNothingAndBitMatches) {
  const int kFeatures = 12;
  const T3Model model_v1 = MakeRandomModel(1001, kFeatures, 10);
  const T3Model model_v2 = MakeRandomModel(2002, kFeatures, 10);
  const std::string swap_path =
      testing::TempDir() + "/t3_server_swap_model.txt";
  ASSERT_TRUE(model_v2.SaveToFile(swap_path).ok());

  ServerOptions options = TestServerOptions();
  Result<std::unique_ptr<PredictionServer>> server = PredictionServer::Start(
      MakeTestServingModel(1001, kFeatures, 10), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  constexpr int kClientThreads = 4;
  constexpr int kRequestsPerThread = 50;
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<bool> failed{false};

  auto worker = [&](int thread_index) {
    Result<PredictionClient> client =
        PredictionClient::Connect("127.0.0.1", port);
    if (!client.ok()) {
      failed.store(true);
      return;
    }
    for (int r = 0; r < kRequestsPerThread; ++r) {
      const PredictRowsRequest request = MakeRandomRequest(
          static_cast<uint64_t>(thread_index) * 1000 + r, 8, kFeatures);
      Result<PredictResponse> response = client->PredictRows(request);
      if (!response.ok()) {
        failed.store(true);
        return;
      }
      // Whichever version answered, it must bit-match that version's
      // model on every row — never a torn batch across the swap.
      const T3Model& version_model =
          response->model_version == 1 ? model_v1 : model_v2;
      for (size_t i = 0; i < request.num_rows(); ++i) {
        const double expected = version_model.PredictPipelineSeconds(
            request.rows.data() + i * kFeatures,
            request.input_cardinalities[i]);
        if (response->predictions[i] != expected) {
          mismatches.fetch_add(1);
        }
      }
      answered.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kClientThreads; ++t) threads.emplace_back(worker, t);

  // Swap mid-run on a dedicated admin connection.
  Result<PredictionClient> admin =
      PredictionClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(admin.ok());
  Result<uint32_t> swapped = admin->Swap(swap_path);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(*swapped, 2u);

  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  // Zero drops: every single request was answered.
  EXPECT_EQ(answered.load(),
            static_cast<uint64_t>(kClientThreads) * kRequestsPerThread);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ((*server)->registry().num_swaps(), 1u);

  // After the swap, new requests are served by version 2 and bit-match
  // the swapped-in model.
  Result<PredictionClient> after =
      PredictionClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(after.ok());
  const PredictRowsRequest request = MakeRandomRequest(7777, 6, kFeatures);
  Result<PredictResponse> response = after->PredictRows(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->model_version, 2u);
  for (size_t i = 0; i < request.num_rows(); ++i) {
    EXPECT_EQ(response->predictions[i],
              model_v2.PredictPipelineSeconds(
                  request.rows.data() + i * kFeatures,
                  request.input_cardinalities[i]));
  }
  (*server)->Stop();
}

TEST(PredictionServerTest, SwapRejectsFeatureCountMismatch) {
  const T3Model narrow = MakeRandomModel(31, 4, 3);
  const std::string narrow_path =
      testing::TempDir() + "/t3_server_narrow_model.txt";
  ASSERT_TRUE(narrow.SaveToFile(narrow_path).ok());

  Result<std::unique_ptr<PredictionServer>> server = PredictionServer::Start(
      MakeTestServingModel(32, 8, 3), TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Result<PredictionClient> client =
      PredictionClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Result<uint32_t> swapped = client->Swap(narrow_path);
  ASSERT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.status().code(), StatusCode::kFailedPrecondition);
  // Still serving version 1.
  EXPECT_EQ((*server)->registry().Current()->version, 1u);
  (*server)->Stop();
}

// --- Shutdown and stats ---

TEST(PredictionServerTest, ProtocolShutdownStopsWait) {
  Result<std::unique_ptr<PredictionServer>> server = PredictionServer::Start(
      MakeTestServingModel(77, 8, 4), TestServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Result<PredictionClient> client =
      PredictionClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->PredictRows(MakeRandomRequest(5, 2, 8)).ok());
  Result<std::string> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("model_version 1"), std::string::npos);
  EXPECT_NE(stats->find("model_features 8"), std::string::npos);

  ASSERT_TRUE(client->Shutdown().ok());
  (*server)->Wait();  // Returns because the kShutdown frame stopped it.

  const ServerStats final_stats = (*server)->stats();
  EXPECT_GE(final_stats.predict_requests, 1u);
  EXPECT_GE(final_stats.rows_predicted, 2u);
  EXPECT_EQ(final_stats.batcher.jobs, final_stats.predict_requests);
}

TEST(PredictionServerTest, RemoteShutdownCanBeDisabled) {
  ServerOptions options = TestServerOptions();
  options.allow_remote_shutdown = false;
  Result<std::unique_ptr<PredictionServer>> server =
      PredictionServer::Start(MakeTestServingModel(78, 8, 4), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Result<PredictionClient> client =
      PredictionClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client->Shutdown().ok());
  // Still serving.
  EXPECT_TRUE(client->PredictRows(MakeRandomRequest(6, 2, 8)).ok());
  (*server)->Stop();
}

}  // namespace
}  // namespace t3
