#ifndef T3_MODEL_T3_MODEL_H_
#define T3_MODEL_T3_MODEL_H_

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "gbt/forest.h"

namespace t3 {

/// What one model prediction stands for. The integer values are the wire
/// format of the "t3model target <n>" file header (data/model_*.txt).
enum class PredictionTarget {
  kPerTuple = 0,    ///< Main T3 model: time to push one tuple through a
                    ///  pipeline; multiply by input cardinality.
  kPerPipeline = 1, ///< Ablation: total pipeline time directly.
  kPerQuery = 2,    ///< Ablation / AutoWLM-like: whole-query time from one
                    ///  per-query feature vector.
};

/// Floor for measured times entering the log transform.
inline constexpr double kMinSeconds = 1e-12;

/// T3 trains on negated log time: targets are positive and MAPE-friendly
/// (a measured 1us pipeline maps to ~13.8).
inline double TransformTarget(double seconds) {
  return -std::log(std::max(seconds, kMinSeconds));
}

/// Inverse of TransformTarget: model output back to seconds.
inline double InverseTransformTarget(double y) { return std::exp(-y); }

/// A trained T3 predictor: a GBDT forest plus the semantics of its output.
/// Serialized as the forest's text format behind a one-line header:
///
///   t3model target 0
///   t3gbt v1
///   ...
class T3Model {
 public:
  T3Model() = default;
  T3Model(Forest forest, PredictionTarget target)
      : forest_(std::move(forest)), target_(target) {}

  const Forest& forest() const { return forest_; }
  PredictionTarget target() const { return target_; }

  /// Raw model output (transformed domain) for one feature row.
  double PredictRaw(const double* row) const { return forest_.Predict(row); }

  /// Predicted pipeline seconds for one pipeline feature row. For
  /// kPerTuple models the per-tuple time is scaled by the pipeline's input
  /// cardinality; other targets ignore it.
  double PredictPipelineSeconds(const double* row,
                                double input_cardinality) const {
    const double seconds = InverseTransformTarget(PredictRaw(row));
    if (target_ == PredictionTarget::kPerTuple) {
      return seconds * std::max(input_cardinality, 1.0);
    }
    return seconds;
  }

  Status SaveToFile(const std::string& path) const;
  static Result<T3Model> LoadFromFile(const std::string& path);

 private:
  Forest forest_;
  PredictionTarget target_ = PredictionTarget::kPerTuple;
};

}  // namespace t3

#endif  // T3_MODEL_T3_MODEL_H_
