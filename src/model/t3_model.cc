#include "model/t3_model.h"

#include "common/string_util.h"

namespace t3 {

Status T3Model::SaveToFile(const std::string& path) const {
  std::string out = StrFormat("t3model target %d\n", static_cast<int>(target_));
  out += forest_.ToText();
  return WriteStringToFile(path, out);
}

Result<T3Model> T3Model::LoadFromFile(const std::string& path) {
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  std::string_view text = *content;

  PredictionTarget target = PredictionTarget::kPerTuple;
  const std::string_view header = "t3model target ";
  if (text.substr(0, header.size()) == header) {
    const size_t value_pos = header.size();
    const size_t line_end = text.find('\n', value_pos);
    if (line_end == std::string_view::npos) {
      return InvalidArgumentError("truncated t3model header");
    }
    const std::string_view value =
        text.substr(value_pos, line_end - value_pos);
    int64_t id = 0;
    // Strict whole-string parse: "2x" or "" must be rejected, not silently
    // truncated to a valid target id (std::atoi did exactly that).
    if (!ParseInt64(value, &id)) {
      return InvalidArgumentError(
          StrFormat("malformed t3model target '%.*s'",
                    static_cast<int>(value.size()), value.data()));
    }
    if (id < 0 || id > 2) {
      return InvalidArgumentError(StrFormat(
          "unknown model target %lld", static_cast<long long>(id)));
    }
    target = static_cast<PredictionTarget>(id);
    text.remove_prefix(line_end + 1);
  }

  Result<Forest> forest = Forest::FromText(text);
  if (!forest.ok()) return forest.status();
  return T3Model(*std::move(forest), target);
}

}  // namespace t3
