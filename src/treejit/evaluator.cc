#include "treejit/evaluator.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <utility>

#include "common/thread_pool.h"

namespace t3 {
namespace {

/// Longest root-to-leaf path in edges; 0 for a leaf-only tree.
int32_t MaxDepth(const Tree& tree) {
  int32_t max_depth = 0;
  std::vector<std::pair<int, int32_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const TreeNode& node = tree.nodes[static_cast<size_t>(index)];
    if (node.is_leaf) {
      max_depth = std::max(max_depth, depth);
      continue;
    }
    stack.push_back({node.left, depth + 1});
    stack.push_back({node.right, depth + 1});
  }
  return max_depth;
}

}  // namespace

void ForestEvaluator::PredictBatch(const double* rows, size_t num_rows,
                                   size_t num_features, double* out) const {
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] = Predict(rows + i * num_features);
  }
}

void ForestEvaluator::PredictBatchSoA(const double* soa, size_t num_rows,
                                      size_t num_features, double* out) const {
  std::vector<double> row(num_features);
  for (size_t i = 0; i < num_rows; ++i) {
    for (size_t f = 0; f < num_features; ++f) row[f] = soa[f * num_rows + i];
    out[i] = Predict(row.data());
  }
}

FlatEvaluator::FlatEvaluator(const Forest& forest)
    : base_score_(forest.base_score) {
  const size_t num_nodes = forest.NumNodes();
  threshold_or_value_.reserve(num_nodes);
  feature_.reserve(num_nodes);
  left_.reserve(num_nodes);
  right_.reserve(num_nodes);
  default_left_.reserve(num_nodes);
  roots_.reserve(forest.trees.size());
  tree_depth_.reserve(forest.trees.size());
  for (const Tree& tree : forest.trees) {
    const int32_t offset = static_cast<int32_t>(threshold_or_value_.size());
    roots_.push_back(offset);
    tree_depth_.push_back(MaxDepth(tree));
    for (const TreeNode& node : tree.nodes) {
      const int32_t self = static_cast<int32_t>(threshold_or_value_.size());
      if (node.is_leaf) {
        threshold_or_value_.push_back(node.value);
        feature_.push_back(-1);
        // Self-loops let the lockstep block walk run a fixed number of
        // steps per tree: lanes already at a leaf just stay put.
        left_.push_back(self);
        right_.push_back(self);
        default_left_.push_back(0);
      } else {
        threshold_or_value_.push_back(node.threshold);
        feature_.push_back(node.feature);
        left_.push_back(offset + node.left);
        right_.push_back(offset + node.right);
        default_left_.push_back(node.default_left ? 1 : 0);
      }
    }
  }
}

double FlatEvaluator::Predict(const double* row) const {
  double sum = base_score_;
  for (const int32_t root : roots_) {
    size_t node = static_cast<size_t>(root);
    while (feature_[node] >= 0) {
      const double x = row[feature_[node]];
      // Same predicate as GoesLeft(): strict less-than, NaN routes by flag.
      const bool left =
          std::isnan(x) ? default_left_[node] != 0 : x < threshold_or_value_[node];
      node = static_cast<size_t>(left ? left_[node] : right_[node]);
    }
    sum += threshold_or_value_[node];
  }
  return sum;
}

template <typename GetFeature>
void FlatEvaluator::PredictBlock(size_t num_lanes, const GetFeature& get,
                                 double* out) const {
  double sum[kBlockLanes];
  size_t cursor[kBlockLanes];
  for (size_t lane = 0; lane < num_lanes; ++lane) sum[lane] = base_score_;
  for (size_t t = 0; t < roots_.size(); ++t) {
    for (size_t lane = 0; lane < num_lanes; ++lane) {
      cursor[lane] = static_cast<size_t>(roots_[t]);
    }
    for (int32_t step = 0; step < tree_depth_[t]; ++step) {
      for (size_t lane = 0; lane < num_lanes; ++lane) {
        const size_t node = cursor[lane];
        const int32_t f = feature_[node];
        // Leaves (f == -1) read feature 0 and discard the comparison:
        // their children both self-loop, so the lane is unaffected. The
        // clamp keeps the load in bounds (Forest::Validate guarantees
        // num_features >= 1).
        const double x = get(lane, f < 0 ? 0 : f);
        const bool left =
            std::isnan(x) ? default_left_[node] != 0
                          : x < threshold_or_value_[node];
        cursor[lane] = static_cast<size_t>(left ? left_[node] : right_[node]);
      }
    }
    for (size_t lane = 0; lane < num_lanes; ++lane) {
      sum[lane] += threshold_or_value_[cursor[lane]];
    }
  }
  for (size_t lane = 0; lane < num_lanes; ++lane) out[lane] = sum[lane];
}

void FlatEvaluator::PredictBatch(const double* rows, size_t num_rows,
                                 size_t num_features, double* out) const {
  for (size_t i = 0; i < num_rows; i += kBlockLanes) {
    const size_t lanes = std::min(kBlockLanes, num_rows - i);
    const double* base = rows + i * num_features;
    PredictBlock(
        lanes,
        [base, num_features](size_t lane, int32_t f) {
          return base[lane * num_features + static_cast<size_t>(f)];
        },
        out + i);
  }
}

void FlatEvaluator::PredictBatchSoA(const double* soa, size_t num_rows,
                                    size_t num_features, double* out) const {
  (void)num_features;
  for (size_t i = 0; i < num_rows; i += kBlockLanes) {
    const size_t lanes = std::min(kBlockLanes, num_rows - i);
    PredictBlock(
        lanes,
        [soa, num_rows, i](size_t lane, int32_t f) {
          return soa[static_cast<size_t>(f) * num_rows + i + lane];
        },
        out + i);
  }
}

double PredictSumParallel(const ForestEvaluator& evaluator, ThreadPool* pool,
                          const double* rows, size_t num_rows,
                          size_t num_features) {
  if (num_rows == 0) return 0.0;
  const size_t num_chunks =
      std::min(pool->num_threads(), num_rows);
  std::vector<std::future<double>> partials;
  partials.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = num_rows * c / num_chunks;
    const size_t end = num_rows * (c + 1) / num_chunks;
    partials.push_back(pool->Async([&evaluator, rows, num_features, begin,
                                    end] {
      double sum = 0.0;
      for (size_t i = begin; i < end; ++i) {
        sum += evaluator.Predict(rows + i * num_features);
      }
      return sum;
    }));
  }
  double total = 0.0;
  for (std::future<double>& partial : partials) total += partial.get();
  return total;
}

}  // namespace t3
