#include "treejit/evaluator.h"

#include <cmath>
#include <future>

#include "common/thread_pool.h"

namespace t3 {

void ForestEvaluator::PredictBatch(const double* rows, size_t num_rows,
                                   size_t num_features, double* out) const {
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] = Predict(rows + i * num_features);
  }
}

FlatEvaluator::FlatEvaluator(const Forest& forest)
    : base_score_(forest.base_score) {
  nodes_.reserve(forest.NumNodes());
  roots_.reserve(forest.trees.size());
  for (const Tree& tree : forest.trees) {
    const int32_t offset = static_cast<int32_t>(nodes_.size());
    roots_.push_back(offset);
    for (const TreeNode& node : tree.nodes) {
      FlatNode flat;
      if (node.is_leaf) {
        flat.threshold_or_value = node.value;
        flat.feature = -1;
        flat.left = -1;
        flat.right = -1;
        flat.default_left = 0;
      } else {
        flat.threshold_or_value = node.threshold;
        flat.feature = node.feature;
        flat.left = offset + node.left;
        flat.right = offset + node.right;
        flat.default_left = node.default_left ? 1 : 0;
      }
      nodes_.push_back(flat);
    }
  }
}

double FlatEvaluator::Predict(const double* row) const {
  double sum = base_score_;
  for (const int32_t root : roots_) {
    const FlatNode* node = &nodes_[static_cast<size_t>(root)];
    while (node->feature >= 0) {
      const double x = row[node->feature];
      // Same predicate as GoesLeft(): strict less-than, NaN routes by flag.
      const bool left =
          std::isnan(x) ? node->default_left != 0 : x < node->threshold_or_value;
      node = &nodes_[static_cast<size_t>(left ? node->left : node->right)];
    }
    sum += node->threshold_or_value;
  }
  return sum;
}

double PredictSumParallel(const ForestEvaluator& evaluator, ThreadPool* pool,
                          const double* rows, size_t num_rows,
                          size_t num_features) {
  if (num_rows == 0) return 0.0;
  const size_t num_chunks =
      std::min(pool->num_threads(), num_rows);
  std::vector<std::future<double>> partials;
  partials.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = num_rows * c / num_chunks;
    const size_t end = num_rows * (c + 1) / num_chunks;
    partials.push_back(pool->Async([&evaluator, rows, num_features, begin,
                                    end] {
      double sum = 0.0;
      for (size_t i = begin; i < end; ++i) {
        sum += evaluator.Predict(rows + i * num_features);
      }
      return sum;
    }));
  }
  double total = 0.0;
  for (std::future<double>& partial : partials) total += partial.get();
  return total;
}

}  // namespace t3
