#ifndef T3_TREEJIT_EVALUATOR_H_
#define T3_TREEJIT_EVALUATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gbt/forest.h"

namespace t3 {

class ThreadPool;

/// Common interface of the three forest evaluators (node-pointer
/// interpretation, flattened-array interpretation, JIT-compiled native
/// code). All implementations produce bit-identical predictions: same split
/// predicate (see GoesLeft), same NaN routing, same summation order
/// (base_score first, then trees in order).
class ForestEvaluator {
 public:
  virtual ~ForestEvaluator() = default;

  /// Predicts one row of Forest::num_features doubles.
  virtual double Predict(const double* row) const = 0;

  /// Predicts `num_rows` rows stored row-major with stride `num_features`.
  /// The default implementation loops over Predict.
  virtual void PredictBatch(const double* rows, size_t num_rows,
                            size_t num_features, double* out) const;

  /// Predicts `num_rows` rows stored column-major (structure-of-arrays):
  /// feature f of row i at `soa[f * num_rows + i]` — the layout batched
  /// kernels consume without a transpose. The default implementation
  /// gathers each row and loops over Predict. Implementations must stay
  /// bit-identical to per-row Predict.
  virtual void PredictBatchSoA(const double* soa, size_t num_rows,
                               size_t num_features, double* out) const;
};

/// Node-pointer interpreter: walks Tree::nodes child indices directly.
/// This is the paper's "interpreted" baseline (Tables 1-2, Figure 5).
/// Does not own the forest; the forest must outlive the evaluator.
class InterpretedEvaluator : public ForestEvaluator {
 public:
  explicit InterpretedEvaluator(const Forest& forest) : forest_(&forest) {}

  double Predict(const double* row) const override {
    return forest_->Predict(row);
  }

 private:
  const Forest* forest_;
};

/// Flattened-array interpreter: all trees contiguously in
/// structure-of-arrays node storage with absolute child indices — better
/// locality than pointer chasing, still interpreted. Owns its flattened
/// copy; independent of the source forest's lifetime.
///
/// The batched entry points walk up to 8 rows in lockstep through each
/// tree: leaves self-loop (left == right == self), so every lane can take
/// the tree's full max depth in fixed steps while the per-lane dependent
/// loads interleave. Predictions stay bit-identical to per-row Predict —
/// same predicate, same NaN routing, same summation order.
class FlatEvaluator : public ForestEvaluator {
 public:
  explicit FlatEvaluator(const Forest& forest);

  double Predict(const double* row) const override;
  void PredictBatch(const double* rows, size_t num_rows, size_t num_features,
                    double* out) const override;
  void PredictBatchSoA(const double* soa, size_t num_rows,
                       size_t num_features, double* out) const override;

 private:
  /// Rows walked in lockstep per block; matches the JIT kernels' width.
  static constexpr size_t kBlockLanes = 8;

  /// Walks `num_lanes` (<= kBlockLanes) rows through every tree.
  /// `get(lane, feature)` reads one feature value — the only difference
  /// between the row-major and column-major entry points.
  template <typename GetFeature>
  void PredictBlock(size_t num_lanes, const GetFeature& get,
                    double* out) const;

  // One entry per node, parallel arrays (structure-of-arrays).
  std::vector<double> threshold_or_value_;  // Inner: threshold. Leaf: value.
  std::vector<int32_t> feature_;            // -1 marks a leaf.
  std::vector<int32_t> left_;               // Leaf: self.
  std::vector<int32_t> right_;              // Leaf: self.
  std::vector<uint8_t> default_left_;
  std::vector<int32_t> roots_;
  std::vector<int32_t> tree_depth_;  // Max root-to-leaf edges per tree.
  double base_score_;
};

/// Sum of Predict over `num_rows` rows, fanned out over `pool`. Partial
/// sums are combined in chunk order, so the result is deterministic for a
/// fixed pool size (though the grouping differs from a serial left-to-right
/// sum). Used by Figure 5's multi-threaded interpretation curve.
double PredictSumParallel(const ForestEvaluator& evaluator, ThreadPool* pool,
                          const double* rows, size_t num_rows,
                          size_t num_features);

}  // namespace t3

#endif  // T3_TREEJIT_EVALUATOR_H_
