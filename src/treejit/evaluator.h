#ifndef T3_TREEJIT_EVALUATOR_H_
#define T3_TREEJIT_EVALUATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gbt/forest.h"

namespace t3 {

class ThreadPool;

/// Common interface of the three forest evaluators (node-pointer
/// interpretation, flattened-array interpretation, JIT-compiled native
/// code). All implementations produce bit-identical predictions: same split
/// predicate (see GoesLeft), same NaN routing, same summation order
/// (base_score first, then trees in order).
class ForestEvaluator {
 public:
  virtual ~ForestEvaluator() = default;

  /// Predicts one row of Forest::num_features doubles.
  virtual double Predict(const double* row) const = 0;

  /// Predicts `num_rows` rows stored row-major with stride `num_features`.
  /// The default implementation loops over Predict.
  virtual void PredictBatch(const double* rows, size_t num_rows,
                            size_t num_features, double* out) const;
};

/// Node-pointer interpreter: walks Tree::nodes child indices directly.
/// This is the paper's "interpreted" baseline (Tables 1-2, Figure 5).
/// Does not own the forest; the forest must outlive the evaluator.
class InterpretedEvaluator : public ForestEvaluator {
 public:
  explicit InterpretedEvaluator(const Forest& forest) : forest_(&forest) {}

  double Predict(const double* row) const override {
    return forest_->Predict(row);
  }

 private:
  const Forest* forest_;
};

/// Flattened-array interpreter: all trees contiguously in one node array
/// with absolute child indices — better locality than pointer chasing, still
/// interpreted. Owns its flattened copy; independent of the source forest's
/// lifetime.
class FlatEvaluator : public ForestEvaluator {
 public:
  explicit FlatEvaluator(const Forest& forest);

  double Predict(const double* row) const override;

 private:
  struct FlatNode {
    double threshold_or_value;  // Inner: threshold. Leaf: leaf value.
    int32_t feature;            // -1 marks a leaf.
    int32_t left;
    int32_t right;
    int32_t default_left;
  };

  std::vector<FlatNode> nodes_;
  std::vector<int32_t> roots_;
  double base_score_;
};

/// Sum of Predict over `num_rows` rows, fanned out over `pool`. Partial
/// sums are combined in chunk order, so the result is deterministic for a
/// fixed pool size (though the grouping differs from a serial left-to-right
/// sum). Used by Figure 5's multi-threaded interpretation curve.
double PredictSumParallel(const ForestEvaluator& evaluator, ThreadPool* pool,
                          const double* rows, size_t num_rows,
                          size_t num_features);

}  // namespace t3

#endif  // T3_TREEJIT_EVALUATOR_H_
