#ifndef T3_TREEJIT_JIT_H_
#define T3_TREEJIT_JIT_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "treejit/evaluator.h"

namespace t3 {

/// Machine code emitted for a forest, before it is mapped executable: the
/// raw bytes plus each tree function's entry offset. Exposed separately
/// from Compile so the JitCodeAuditor (src/analysis) and tests can inspect
/// the exact bytes that would run.
struct JitArtifact {
  std::vector<uint8_t> code;
  std::vector<size_t> entries;  ///< One per tree, ascending, [0] == 0.
  int num_features = 0;
};

/// Emits (but does not map or run) x86-64 code for `forest`. Fails on a
/// structurally invalid forest and on non-x86-64 builds.
Result<JitArtifact> EmitForestCode(const Forest& forest);

/// Machine code of the batched AVX tree kernels, in its own buffer separate
/// from the scalar artifact. One function per tree,
///
///   void f(const double* block /* rdi */, double* acc /* rsi */)
///
/// evaluating 8 rows per call over a feature-major 8-lane block
/// (`block[64*f + 8*lane]` bytes, i.e. feature f of lane `lane`) as two
/// 4-lane ymm halves, accumulating `acc[lane] += leaf_value(lane)` — the
/// same per-tree addend, in the same order, as the scalar path. The code is
/// straight-line (branch-free) masked evaluation; see EmitForestBatchCode
/// in jit.cc for the exact instruction grammar, which the analysis passes
/// (JitCodeAuditor::AuditBatch, BatchEquivalenceValidator) re-check.
///
/// `pool_begin` is the first byte past the last kernel's ret; the
/// vbroadcastsd constant pool starts at the next 8-byte boundary and runs
/// to code.size(). Only [0, pool_begin) is instructions.
struct BatchJitArtifact {
  std::vector<uint8_t> code;
  std::vector<size_t> entries;  ///< One per tree, ascending, [0] == 0.
  size_t pool_begin = 0;
  int num_features = 0;
};

/// Emits (but does not map or run) the AVX batch kernels for `forest`.
/// Fails on a structurally invalid forest; Unavailable when
/// BatchJitSupported() is false.
Result<BatchJitArtifact> EmitForestBatchCode(const Forest& forest);

/// True when this build emits AVX batch kernels (x86-64 with mmap, built
/// without -DT3_DISABLE_AVX2=ON). Whether emitted kernels are *dispatched*
/// additionally depends on the runtime probe (BatchKernelsEnabled in
/// common/cpu_features.h).
bool BatchJitSupported();

/// Knobs for CompiledForest::Compile.
struct JitCompileOptions {
  /// Run the JitCodeAuditor over the emitted bytes before mapping them
  /// executable; Compile fails with InternalError when the audit finds an
  /// Error. On by default in debug builds; release callers opt in (the
  /// audit is a few linear passes over the code — cheap, but not free on
  /// the model-reload path).
#ifdef NDEBUG
  bool audit = false;
#else
  bool audit = true;
#endif
  /// Run the TranslationValidator over the emitted bytes: lift them back
  /// into decision trees and prove structural + semantic equivalence to the
  /// source forest (see analysis/translation_validator.h). Compile fails
  /// with InternalError on any inequivalence. On by default in debug
  /// builds; release callers opt in (cost is roughly one interval walk per
  /// leaf — heavier than the audit, still well under a model load).
#ifdef NDEBUG
  bool validate_translation = false;
#else
  bool validate_translation = true;
#endif
  /// Also compile the AVX batch kernels (a no-op when BatchJitSupported()
  /// is false). Off pins PredictBatch to the portable per-row path — the
  /// scalar reference the dispatch tests compare against.
  bool enable_batch = true;
  /// Run the batch-kernel analysis stack over the emitted batch code before
  /// mapping it: JitCodeAuditor::AuditBatch (lane-load bounds, frame
  /// discipline, straight-line control flow) and BatchEquivalenceValidator
  /// (lift the kernel back to a tree, prove it equals the forest per cell),
  /// plus an exhaustive per-cell differential check of the mapped kernels
  /// against the scalar path. Same debug-on contract as
  /// validate_translation.
#ifdef NDEBUG
  bool validate_batch = false;
#else
  bool validate_batch = true;
#endif
};

/// A forest compiled to native x86-64 machine code, the paper's core
/// latency optimization (Tables 1-2, Figure 5): each inner node becomes a
/// compare + conditional branch, each leaf a return — the same scheme as
/// lleaves, without the LLVM dependency.
///
/// Each tree is emitted as one function `double (*)(const double* row)`
/// (System V AMD64: row in rdi, result in xmm0); Predict sums the tree
/// results after base_score in tree order, so predictions are bit-identical
/// to the interpreted evaluators.
///
/// Code lives in mmap'd memory managed W^X: pages are writable during
/// emission, then flipped to read+execute — never both.
///
/// Compile returns an error (and callers fall back to the interpreters) on:
///  - non-x86-64 hosts,
///  - mmap/mprotect failure,
///  - a structurally invalid forest.
class CompiledForest : public ForestEvaluator {
 public:
  static Result<std::unique_ptr<CompiledForest>> Compile(
      const Forest& forest, const JitCompileOptions& options = {});

  ~CompiledForest() override;
  CompiledForest(const CompiledForest&) = delete;
  CompiledForest& operator=(const CompiledForest&) = delete;

  double Predict(const double* row) const override;
  void PredictBatch(const double* rows, size_t num_rows, size_t num_features,
                    double* out) const override;
  void PredictBatchSoA(const double* soa, size_t num_rows,
                       size_t num_features, double* out) const override;

  /// Bytes of emitted machine code (before page rounding).
  size_t code_size() const { return code_size_; }

  /// True when AVX batch kernels were compiled in. They are dispatched only
  /// when the runtime probe (BatchKernelsEnabled) also passes; otherwise
  /// PredictBatch falls back to the bit-identical per-row path.
  bool has_batch_kernels() const { return !batch_fns_.empty(); }

  /// Bytes of emitted batch-kernel code + constant pool (0 when none).
  size_t batch_code_size() const { return batch_code_size_; }

 private:
  using TreeFn = double (*)(const double*);
  using BatchFn = void (*)(const double*, double*);

  CompiledForest() = default;

  double base_score_ = 0.0;
  std::vector<TreeFn> tree_fns_;
  void* code_ = nullptr;       // mmap'd region, PROT_READ | PROT_EXEC.
  size_t mapped_size_ = 0;
  size_t code_size_ = 0;
  std::vector<BatchFn> batch_fns_;
  void* batch_code_ = nullptr;  // Second W^X region for the batch kernels.
  size_t batch_mapped_size_ = 0;
  size_t batch_code_size_ = 0;
  int num_features_ = 0;
};

/// True when this build can JIT-compile forests (x86-64 with mmap).
bool JitSupported();

}  // namespace t3

#endif  // T3_TREEJIT_JIT_H_
