#include "treejit/jit.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "analysis/jit_auditor.h"
#include "analysis/translation_validator.h"
#include "common/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define T3_HAVE_MMAP 1
#else
#define T3_HAVE_MMAP 0
#endif

#if defined(__x86_64__) && T3_HAVE_MMAP
#define T3_JIT_X86_64 1
#else
#define T3_JIT_X86_64 0
#endif

namespace t3 {

bool JitSupported() { return T3_JIT_X86_64 != 0; }

#if T3_JIT_X86_64

namespace {

/// Append-only machine-code buffer with rel32 patching.
class CodeBuffer {
 public:
  void Emit8(uint8_t byte) { bytes_.push_back(byte); }

  void Emit32(uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }

  void Emit64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }

  void Patch32(size_t offset, uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes_[offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(value >> (8 * i));
    }
  }

  size_t size() const { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Emits one tree as a function `double f(const double* row)`.
///
/// Inner node (default_left == false, NaN goes right):
///   mov     rax, <threshold bits>     ; 48 B8 imm64
///   movq    xmm1, rax                 ; 66 48 0F 6E C8
///   movsd   xmm0, [rdi + 8*feature]   ; F2 0F 10 {47 disp8 | 87 disp32}
///   ucomisd xmm1, xmm0                ; 66 0F 2E C8   (threshold ? x)
///   ja      <left>                    ; 0F 87 rel32   (thr > x, ordered)
///   <right subtree, fallthrough> ... <left subtree>
///
/// ja is taken iff CF=0 and ZF=0: threshold strictly greater than x and the
/// comparison ordered — exactly GoesLeft's `x < threshold`, with NaN
/// (unordered sets ZF=PF=CF=1) falling through to the right child.
///
/// Inner node (default_left == true, NaN goes left) swaps the comparison:
///   ucomisd xmm0, xmm1                ; 66 0F 2E C1   (x ? threshold)
///   jb      <left>                    ; 0F 82 rel32   (x < thr, or NaN)
///
/// Leaf:
///   mov     rax, <value bits>         ; 48 B8 imm64
///   movq    xmm0, rax                 ; 66 48 0F 6E C0
///   ret                               ; C3
class TreeEmitter {
 public:
  TreeEmitter(CodeBuffer* code, const Tree& tree) : code_(code), tree_(tree) {}

  /// Returns the entry offset of the emitted tree function.
  size_t Emit() {
    const size_t entry = code_->size();
    EmitNode(0);
    for (const Fixup& fixup : fixups_) {
      const size_t target = node_offsets_[static_cast<size_t>(fixup.node)];
      const int64_t rel =
          static_cast<int64_t>(target) - static_cast<int64_t>(fixup.offset + 4);
      code_->Patch32(fixup.offset, static_cast<uint32_t>(rel));
    }
    return entry;
  }

 private:
  struct Fixup {
    size_t offset;  // Position of the rel32 immediate.
    int node;       // Jump target node.
  };

  void EmitNode(int index) {
    if (node_offsets_.size() < tree_.nodes.size()) {
      node_offsets_.resize(tree_.nodes.size(), 0);
    }
    node_offsets_[static_cast<size_t>(index)] = code_->size();
    const TreeNode& node = tree_.nodes[static_cast<size_t>(index)];
    if (node.is_leaf) {
      code_->Emit8(0x48);  // mov rax, imm64
      code_->Emit8(0xB8);
      code_->Emit64(DoubleBits(node.value));
      code_->Emit8(0x66);  // movq xmm0, rax
      code_->Emit8(0x48);
      code_->Emit8(0x0F);
      code_->Emit8(0x6E);
      code_->Emit8(0xC0);
      code_->Emit8(0xC3);  // ret
      return;
    }

    code_->Emit8(0x48);  // mov rax, <threshold bits>
    code_->Emit8(0xB8);
    code_->Emit64(DoubleBits(node.threshold));
    code_->Emit8(0x66);  // movq xmm1, rax
    code_->Emit8(0x48);
    code_->Emit8(0x0F);
    code_->Emit8(0x6E);
    code_->Emit8(0xC8);

    const uint32_t disp = static_cast<uint32_t>(node.feature) * 8;
    code_->Emit8(0xF2);  // movsd xmm0, [rdi + disp]
    code_->Emit8(0x0F);
    code_->Emit8(0x10);
    if (disp <= 127) {
      code_->Emit8(0x47);  // modrm: mod=01 (disp8), reg=xmm0, rm=rdi
      code_->Emit8(static_cast<uint8_t>(disp));
    } else {
      code_->Emit8(0x87);  // modrm: mod=10 (disp32), reg=xmm0, rm=rdi
      code_->Emit32(disp);
    }

    code_->Emit8(0x66);  // ucomisd
    code_->Emit8(0x0F);
    code_->Emit8(0x2E);
    if (node.default_left) {
      code_->Emit8(0xC1);  // ucomisd xmm0, xmm1  (x ? threshold)
      code_->Emit8(0x0F);  // jb left
      code_->Emit8(0x82);
    } else {
      code_->Emit8(0xC8);  // ucomisd xmm1, xmm0  (threshold ? x)
      code_->Emit8(0x0F);  // ja left
      code_->Emit8(0x87);
    }
    fixups_.push_back(Fixup{code_->size(), node.left});
    code_->Emit32(0);  // rel32 patched later

    EmitNode(node.right);  // Fallthrough.
    EmitNode(node.left);
  }

  CodeBuffer* code_;
  const Tree& tree_;
  std::vector<size_t> node_offsets_;
  std::vector<Fixup> fixups_;
};

}  // namespace

Result<JitArtifact> EmitForestCode(const Forest& forest) {
  Status valid = forest.Validate();
  if (!valid.ok()) return valid;

  CodeBuffer code;
  JitArtifact artifact;
  artifact.num_features = forest.num_features;
  artifact.entries.reserve(forest.trees.size());
  for (const Tree& tree : forest.trees) {
    TreeEmitter emitter(&code, tree);
    artifact.entries.push_back(emitter.Emit());
  }
  artifact.code = code.TakeBytes();
  return artifact;
}

Result<std::unique_ptr<CompiledForest>> CompiledForest::Compile(
    const Forest& forest, const JitCompileOptions& options) {
  Result<JitArtifact> artifact = EmitForestCode(forest);
  if (!artifact.ok()) return artifact.status();

  if (options.audit) {
    // Static proof over the exact bytes about to be mapped executable: only
    // whitelisted instructions, branch targets on instruction boundaries
    // inside the tree's own code, feature loads inside the row. An audit
    // failure is an emitter bug, never a property of the (already
    // validated) forest.
    const AnalysisReport report = JitCodeAuditor().Audit(
        artifact->code.data(), artifact->code.size(), artifact->entries,
        artifact->num_features);
    if (report.HasErrors()) {
      return InternalError(
          StrFormat("JIT audit rejected emitted code: %s",
                    report.ToStatus().message().c_str()));
    }
  }

  if (options.validate_translation) {
    // Static equivalence proof over the same bytes: lift the emitted code
    // back into decision trees and show they compute exactly `forest`
    // (bit-equal thresholds/leaves, identical NaN routing, pointwise-equal
    // outputs over every threshold-induced cell). A failure is an emitter
    // bug — the forest itself was already validated.
    const AnalysisReport equivalence = TranslationValidator().Validate(
        forest, artifact->code.data(), artifact->code.size(),
        artifact->entries);
    if (equivalence.HasErrors()) {
      return InternalError(
          StrFormat("translation validation rejected emitted code: %s",
                    equivalence.ToStatus().message().c_str()));
    }
  }

  // W^X: write the code into a PROT_READ|PROT_WRITE mapping, then flip the
  // pages to PROT_READ|PROT_EXEC. The region is never writable + executable
  // at the same time.
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t mapped_size =
      (std::max<size_t>(artifact->code.size(), 1) + page - 1) / page * page;
  void* memory = mmap(nullptr, mapped_size, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (memory == MAP_FAILED) {
    return UnavailableError(
        StrFormat("mmap of %zu bytes failed: %s", mapped_size,
                  std::strerror(errno)));
  }
  std::memcpy(memory, artifact->code.data(), artifact->code.size());
  if (mprotect(memory, mapped_size, PROT_READ | PROT_EXEC) != 0) {
    const Status status = UnavailableError(
        StrFormat("mprotect(PROT_EXEC) failed: %s", std::strerror(errno)));
    munmap(memory, mapped_size);
    return status;
  }

  std::unique_ptr<CompiledForest> compiled(new CompiledForest());
  compiled->base_score_ = forest.base_score;
  compiled->code_ = memory;
  compiled->mapped_size_ = mapped_size;
  compiled->code_size_ = artifact->code.size();
  compiled->tree_fns_.reserve(artifact->entries.size());
  for (const size_t entry : artifact->entries) {
    compiled->tree_fns_.push_back(reinterpret_cast<TreeFn>(
        static_cast<uint8_t*>(memory) + entry));
  }
  return compiled;
}

CompiledForest::~CompiledForest() {
  if (code_ != nullptr) munmap(code_, mapped_size_);
}

double CompiledForest::Predict(const double* row) const {
  double sum = base_score_;
  for (const TreeFn fn : tree_fns_) sum += fn(row);
  return sum;
}

void CompiledForest::PredictBatch(const double* rows, size_t num_rows,
                                  size_t num_features, double* out) const {
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] = Predict(rows + i * num_features);
  }
}

#else  // !T3_JIT_X86_64

// Portability guard: on non-x86-64 hosts (or without mmap) compilation
// reports Unavailable and callers fall back to FlatEvaluator /
// InterpretedEvaluator. (The JitCodeAuditor itself is pure byte
// inspection and still works on serialized buffers everywhere.)

Result<JitArtifact> EmitForestCode(const Forest& forest) {
  Status valid = forest.Validate();
  if (!valid.ok()) return valid;
  return UnavailableError(
      "tree JIT requires an x86-64 host with mmap; use FlatEvaluator");
}

Result<std::unique_ptr<CompiledForest>> CompiledForest::Compile(
    const Forest& forest, const JitCompileOptions&) {
  Result<JitArtifact> artifact = EmitForestCode(forest);
  return artifact.status();
}

CompiledForest::~CompiledForest() = default;

double CompiledForest::Predict(const double*) const { return base_score_; }

void CompiledForest::PredictBatch(const double*, size_t, size_t,
                                  double* out) const {
  *out = base_score_;
}

#endif  // T3_JIT_X86_64

}  // namespace t3
