#include "treejit/jit.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "analysis/batch_equivalence_validator.h"
#include "analysis/jit_auditor.h"
#include "analysis/translation_validator.h"
#include "common/cpu_features.h"
#include "common/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define T3_HAVE_MMAP 1
#else
#define T3_HAVE_MMAP 0
#endif

#if defined(__x86_64__) && T3_HAVE_MMAP
#define T3_JIT_X86_64 1
#else
#define T3_JIT_X86_64 0
#endif

// Batch kernels are plain AVX encodings, but the dispatch contract is
// AVX2-gated (the issue of record for non-AVX2 x86-64) and the CMake option
// T3_DISABLE_AVX2 turns emission off entirely to prove the portable
// fallback stays bit-identical.
#if T3_JIT_X86_64 && !defined(T3_DISABLE_AVX2)
#define T3_BATCH_JIT 1
#else
#define T3_BATCH_JIT 0
#endif

namespace t3 {

bool JitSupported() { return T3_JIT_X86_64 != 0; }

bool BatchJitSupported() { return T3_BATCH_JIT != 0; }

#if T3_JIT_X86_64

namespace {

/// Append-only machine-code buffer with rel32 patching.
class CodeBuffer {
 public:
  void Emit8(uint8_t byte) { bytes_.push_back(byte); }

  void Emit32(uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }

  void Emit64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }

  void Patch32(size_t offset, uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes_[offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(value >> (8 * i));
    }
  }

  size_t size() const { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Emits one tree as a function `double f(const double* row)`.
///
/// Inner node (default_left == false, NaN goes right):
///   mov     rax, <threshold bits>     ; 48 B8 imm64
///   movq    xmm1, rax                 ; 66 48 0F 6E C8
///   movsd   xmm0, [rdi + 8*feature]   ; F2 0F 10 {47 disp8 | 87 disp32}
///   ucomisd xmm1, xmm0                ; 66 0F 2E C8   (threshold ? x)
///   ja      <left>                    ; 0F 87 rel32   (thr > x, ordered)
///   <right subtree, fallthrough> ... <left subtree>
///
/// ja is taken iff CF=0 and ZF=0: threshold strictly greater than x and the
/// comparison ordered — exactly GoesLeft's `x < threshold`, with NaN
/// (unordered sets ZF=PF=CF=1) falling through to the right child.
///
/// Inner node (default_left == true, NaN goes left) swaps the comparison:
///   ucomisd xmm0, xmm1                ; 66 0F 2E C1   (x ? threshold)
///   jb      <left>                    ; 0F 82 rel32   (x < thr, or NaN)
///
/// Leaf:
///   mov     rax, <value bits>         ; 48 B8 imm64
///   movq    xmm0, rax                 ; 66 48 0F 6E C0
///   ret                               ; C3
class TreeEmitter {
 public:
  TreeEmitter(CodeBuffer* code, const Tree& tree) : code_(code), tree_(tree) {}

  /// Returns the entry offset of the emitted tree function.
  size_t Emit() {
    const size_t entry = code_->size();
    EmitNode(0);
    for (const Fixup& fixup : fixups_) {
      const size_t target = node_offsets_[static_cast<size_t>(fixup.node)];
      const int64_t rel =
          static_cast<int64_t>(target) - static_cast<int64_t>(fixup.offset + 4);
      code_->Patch32(fixup.offset, static_cast<uint32_t>(rel));
    }
    return entry;
  }

 private:
  struct Fixup {
    size_t offset;  // Position of the rel32 immediate.
    int node;       // Jump target node.
  };

  void EmitNode(int index) {
    if (node_offsets_.size() < tree_.nodes.size()) {
      node_offsets_.resize(tree_.nodes.size(), 0);
    }
    node_offsets_[static_cast<size_t>(index)] = code_->size();
    const TreeNode& node = tree_.nodes[static_cast<size_t>(index)];
    if (node.is_leaf) {
      code_->Emit8(0x48);  // mov rax, imm64
      code_->Emit8(0xB8);
      code_->Emit64(DoubleBits(node.value));
      code_->Emit8(0x66);  // movq xmm0, rax
      code_->Emit8(0x48);
      code_->Emit8(0x0F);
      code_->Emit8(0x6E);
      code_->Emit8(0xC0);
      code_->Emit8(0xC3);  // ret
      return;
    }

    code_->Emit8(0x48);  // mov rax, <threshold bits>
    code_->Emit8(0xB8);
    code_->Emit64(DoubleBits(node.threshold));
    code_->Emit8(0x66);  // movq xmm1, rax
    code_->Emit8(0x48);
    code_->Emit8(0x0F);
    code_->Emit8(0x6E);
    code_->Emit8(0xC8);

    const uint32_t disp = static_cast<uint32_t>(node.feature) * 8;
    code_->Emit8(0xF2);  // movsd xmm0, [rdi + disp]
    code_->Emit8(0x0F);
    code_->Emit8(0x10);
    if (disp <= 127) {
      code_->Emit8(0x47);  // modrm: mod=01 (disp8), reg=xmm0, rm=rdi
      code_->Emit8(static_cast<uint8_t>(disp));
    } else {
      code_->Emit8(0x87);  // modrm: mod=10 (disp32), reg=xmm0, rm=rdi
      code_->Emit32(disp);
    }

    code_->Emit8(0x66);  // ucomisd
    code_->Emit8(0x0F);
    code_->Emit8(0x2E);
    if (node.default_left) {
      code_->Emit8(0xC1);  // ucomisd xmm0, xmm1  (x ? threshold)
      code_->Emit8(0x0F);  // jb left
      code_->Emit8(0x82);
    } else {
      code_->Emit8(0xC8);  // ucomisd xmm1, xmm0  (threshold ? x)
      code_->Emit8(0x0F);  // ja left
      code_->Emit8(0x87);
    }
    fixups_.push_back(Fixup{code_->size(), node.left});
    code_->Emit32(0);  // rel32 patched later

    EmitNode(node.right);  // Fallthrough.
    EmitNode(node.left);
  }

  CodeBuffer* code_;
  const Tree& tree_;
  std::vector<size_t> node_offsets_;
  std::vector<Fixup> fixups_;
};

#if T3_BATCH_JIT

/// Emits the whole forest's batch kernels: one straight-line (branch-free)
/// masked-evaluation function per tree,
///
///   void f(const double* block /* rdi */, double* acc /* rsi */)
///
/// over 8 rows laid out feature-major ([rdi + 64*f] holds feature f of
/// lanes 0-3, [rdi + 64*f + 32] lanes 4-7). Register roles: ymm0/ymm1
/// accumulate the masked leaf value per half, ymm2 broadcasts the current
/// pool constant, ymm3/ymm4 hold split-compare masks, ymm5/ymm6 the live
/// path masks, ymm7 is scratch. Exact grammar (what the analysis passes
/// re-parse):
///
///   [sub rsp, 64*(max_inner_depth+1)]     ; only when the tree has splits
///   vxorpd  ymm0, ymm0, ymm0              ; leaf-value accumulators = 0
///   vxorpd  ymm1, ymm1, ymm1
///   vcmppd  ymm5, ymm5, ymm5, 0x0F        ; TRUE_UQ: all-ones path masks
///   vcmppd  ymm6, ymm6, ymm6, 0x0F
///   <node 0 at depth 0>
///   vaddpd  ymm0, ymm0, [rsi]             ; acc += selected leaf values
///   vmovupd [rsi], ymm0
///   vaddpd  ymm1, ymm1, [rsi + 32]
///   vmovupd [rsi + 32], ymm1
///   [add rsp, 64*(max_inner_depth+1)]
///   vzeroupper
///   ret
///
/// Split at depth d (predicate computed reversed, threshold ? x, so GT_OQ
/// is exactly GoesLeft's `x < t` with NaN unordered->false->right, and
/// NLE_UQ is `!(t <= x)` with NaN->true->left):
///
///   vbroadcastsd ymm2, [rip -> threshold bits]
///   vcmppd  ymm3, ymm2, [rdi + 64*f], P       ; P = 0x1E or 0x16
///   vcmppd  ymm4, ymm2, [rdi + 64*f + 32], P
///   vandnpd ymm7, ymm3, ymm5                  ; save right-path masks
///   vmovupd [rsp + 64*d], ymm7
///   vandnpd ymm7, ymm4, ymm6
///   vmovupd [rsp + 64*d + 32], ymm7
///   vandpd  ymm5, ymm5, ymm3                  ; narrow to left paths
///   vandpd  ymm6, ymm6, ymm4
///   <left child at depth d+1>
///   vmovupd ymm5, [rsp + 64*d]                ; resume right paths
///   vmovupd ymm6, [rsp + 64*d + 32]
///   <right child at depth d+1>
///
/// Leaf (the path masks of a tree's leaves are disjoint and cover all-ones,
/// so OR-ing the masked broadcast accumulates each lane's unique leaf value
/// bit-exactly — no FP arithmetic is involved in the selection):
///
///   vbroadcastsd ymm2, [rip -> leaf value bits]
///   vandpd  ymm7, ymm5, ymm2
///   vorpd   ymm0, ymm0, ymm7
///   vandpd  ymm7, ymm6, ymm2
///   vorpd   ymm1, ymm1, ymm7
///
/// Every kernel ends with the single add of the 8 accumulators into acc, so
/// Predict-batch = base_score + sum of tree values in tree order — the same
/// summation, and bit-identical, to the scalar evaluators. Constants live
/// in one deduplicated 8-byte-aligned pool after the last kernel.
class BatchForestEmitter {
 public:
  explicit BatchForestEmitter(const Forest& forest) : forest_(forest) {}

  BatchJitArtifact Emit() {
    BatchJitArtifact artifact;
    artifact.num_features = forest_.num_features;
    artifact.entries.reserve(forest_.trees.size());
    for (const Tree& tree : forest_.trees) {
      artifact.entries.push_back(code_.size());
      EmitTree(tree);
    }
    artifact.pool_begin = code_.size();
    while (code_.size() % 8 != 0) code_.Emit8(0x00);
    const size_t pool_base = code_.size();
    for (const uint64_t bits : constants_) code_.Emit64(bits);
    for (const Fixup& fixup : fixups_) {
      const size_t target = pool_base + 8 * fixup.constant;
      const int64_t rel = static_cast<int64_t>(target) -
                          static_cast<int64_t>(fixup.offset + 4);
      code_.Patch32(fixup.offset, static_cast<uint32_t>(rel));
    }
    artifact.code = code_.TakeBytes();
    return artifact;
  }

 private:
  struct Fixup {
    size_t offset;    // Position of the rip-relative disp32.
    size_t constant;  // Index into constants_.
  };

  // Register roles (see the grammar above).
  static constexpr uint8_t kAcc0 = 0, kAcc1 = 1, kConst = 2, kCmp0 = 3,
                           kCmp1 = 4, kMask0 = 5, kMask1 = 6, kScratch = 7;
  // vcmppd predicates: TRUE_UQ (all-ones), GT_OQ (t > x, NaN false -> NaN
  // goes right), NLE_UQ (!(t <= x), NaN true -> NaN goes left).
  static constexpr uint8_t kPredTrue = 0x0F, kPredNanRight = 0x1E,
                           kPredNanLeft = 0x16;

  /// 2-byte VEX byte 1: R=0 inverted (reg <= 7), vvvv inverted, L=1
  /// (256-bit), pp=01 (66 class). vvvv=0 doubles as "unused" (field 1111).
  static uint8_t VexByte1(uint8_t vvvv) {
    return static_cast<uint8_t>(0x85 | ((~vvvv & 0x0F) << 3));
  }

  void EmitRR(uint8_t opcode, uint8_t dst, uint8_t src1, uint8_t src2) {
    code_.Emit8(0xC5);
    code_.Emit8(VexByte1(src1));
    code_.Emit8(opcode);
    code_.Emit8(static_cast<uint8_t>(0xC0 | dst << 3 | src2));
  }

  /// Memory form with disp32: rm 4 = [rsp] (needs a SIB byte), 6 = [rsi],
  /// 7 = [rdi].
  void EmitMem(uint8_t opcode, uint8_t reg, uint8_t vvvv, uint8_t rm,
               uint32_t disp) {
    code_.Emit8(0xC5);
    code_.Emit8(VexByte1(vvvv));
    code_.Emit8(opcode);
    code_.Emit8(static_cast<uint8_t>(0x80 | reg << 3 | rm));
    if (rm == 4) code_.Emit8(0x24);
    code_.Emit32(disp);
  }

  void EmitBroadcast(uint8_t dst, uint64_t bits) {
    code_.Emit8(0xC4);  // vbroadcastsd ymm, [rip + disp32]
    code_.Emit8(0xE2);
    code_.Emit8(0x7D);
    code_.Emit8(0x19);
    code_.Emit8(static_cast<uint8_t>(0x05 | dst << 3));
    fixups_.push_back(Fixup{code_.size(), Intern(bits)});
    code_.Emit32(0);  // Patched against the pool in Emit().
  }

  size_t Intern(uint64_t bits) {
    const auto [it, inserted] =
        constant_index_.try_emplace(bits, constants_.size());
    if (inserted) constants_.push_back(bits);
    return it->second;
  }

  static int MaxInnerDepth(const Tree& tree) {
    int max_depth = -1;
    std::vector<std::pair<int, int>> stack = {{0, 0}};
    while (!stack.empty()) {
      const auto [index, depth] = stack.back();
      stack.pop_back();
      const TreeNode& node = tree.nodes[static_cast<size_t>(index)];
      if (node.is_leaf) continue;
      max_depth = std::max(max_depth, depth);
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
    return max_depth;
  }

  void EmitTree(const Tree& tree) {
    const int max_inner_depth = MaxInnerDepth(tree);
    const uint32_t frame =
        max_inner_depth < 0 ? 0 : 64u * (static_cast<uint32_t>(max_inner_depth) + 1);
    if (frame != 0) {
      code_.Emit8(0x48);  // sub rsp, imm32
      code_.Emit8(0x81);
      code_.Emit8(0xEC);
      code_.Emit32(frame);
    }
    EmitRR(0x57, kAcc0, kAcc0, kAcc0);  // vxorpd: accumulators = 0
    EmitRR(0x57, kAcc1, kAcc1, kAcc1);
    EmitRR(0xC2, kMask0, kMask0, kMask0);  // vcmppd TRUE_UQ: all-ones
    code_.Emit8(kPredTrue);
    EmitRR(0xC2, kMask1, kMask1, kMask1);
    code_.Emit8(kPredTrue);
    EmitNode(tree, 0, 0);
    EmitMem(0x58, kAcc0, kAcc0, 6, 0);  // vaddpd ymm0, ymm0, [rsi]
    EmitMem(0x11, kAcc0, 0, 6, 0);      // vmovupd [rsi], ymm0
    EmitMem(0x58, kAcc1, kAcc1, 6, 32);
    EmitMem(0x11, kAcc1, 0, 6, 32);
    if (frame != 0) {
      code_.Emit8(0x48);  // add rsp, imm32
      code_.Emit8(0x81);
      code_.Emit8(0xC4);
      code_.Emit32(frame);
    }
    code_.Emit8(0xC5);  // vzeroupper
    code_.Emit8(0xF8);
    code_.Emit8(0x77);
    code_.Emit8(0xC3);  // ret
  }

  void EmitNode(const Tree& tree, int index, int depth) {
    const TreeNode& node = tree.nodes[static_cast<size_t>(index)];
    if (node.is_leaf) {
      EmitBroadcast(kConst, DoubleBits(node.value));
      EmitRR(0x54, kScratch, kMask0, kConst);  // vandpd
      EmitRR(0x56, kAcc0, kAcc0, kScratch);    // vorpd
      EmitRR(0x54, kScratch, kMask1, kConst);
      EmitRR(0x56, kAcc1, kAcc1, kScratch);
      return;
    }
    EmitBroadcast(kConst, DoubleBits(node.threshold));
    const uint8_t pred = node.default_left ? kPredNanLeft : kPredNanRight;
    const uint32_t base = static_cast<uint32_t>(node.feature) * 64;
    EmitMem(0xC2, kCmp0, kConst, 7, base);  // vcmppd ymm3, ymm2, [rdi+..], P
    code_.Emit8(pred);
    EmitMem(0xC2, kCmp1, kConst, 7, base + 32);
    code_.Emit8(pred);
    const uint32_t spill = 64u * static_cast<uint32_t>(depth);
    EmitRR(0x55, kScratch, kCmp0, kMask0);  // vandnpd: right-path masks
    EmitMem(0x11, kScratch, 0, 4, spill);
    EmitRR(0x55, kScratch, kCmp1, kMask1);
    EmitMem(0x11, kScratch, 0, 4, spill + 32);
    EmitRR(0x54, kMask0, kMask0, kCmp0);  // vandpd: narrow to left paths
    EmitRR(0x54, kMask1, kMask1, kCmp1);
    EmitNode(tree, node.left, depth + 1);
    EmitMem(0x10, kMask0, 0, 4, spill);  // vmovupd: resume right paths
    EmitMem(0x10, kMask1, 0, 4, spill + 32);
    EmitNode(tree, node.right, depth + 1);
  }

  const Forest& forest_;
  CodeBuffer code_;
  std::vector<uint64_t> constants_;
  std::map<uint64_t, size_t> constant_index_;
  std::vector<Fixup> fixups_;
};

#endif  // T3_BATCH_JIT

/// W^X mapping: copy `code` into a PROT_READ|PROT_WRITE region, then flip
/// the pages to PROT_READ|PROT_EXEC — never both at once.
Status MapExecutable(const std::vector<uint8_t>& code, void** memory_out,
                     size_t* mapped_size_out) {
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t mapped_size =
      (std::max<size_t>(code.size(), 1) + page - 1) / page * page;
  void* memory = mmap(nullptr, mapped_size, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (memory == MAP_FAILED) {
    return UnavailableError(StrFormat("mmap of %zu bytes failed: %s",
                                      mapped_size, std::strerror(errno)));
  }
  std::memcpy(memory, code.data(), code.size());
  if (mprotect(memory, mapped_size, PROT_READ | PROT_EXEC) != 0) {
    const Status status = UnavailableError(
        StrFormat("mprotect(PROT_EXEC) failed: %s", std::strerror(errno)));
    munmap(memory, mapped_size);
    return status;
  }
  *memory_out = memory;
  *mapped_size_out = mapped_size;
  return Status::OK();
}

}  // namespace

Result<JitArtifact> EmitForestCode(const Forest& forest) {
  Status valid = forest.Validate();
  if (!valid.ok()) return valid;

  CodeBuffer code;
  JitArtifact artifact;
  artifact.num_features = forest.num_features;
  artifact.entries.reserve(forest.trees.size());
  for (const Tree& tree : forest.trees) {
    TreeEmitter emitter(&code, tree);
    artifact.entries.push_back(emitter.Emit());
  }
  artifact.code = code.TakeBytes();
  return artifact;
}

#if T3_BATCH_JIT

Result<BatchJitArtifact> EmitForestBatchCode(const Forest& forest) {
  Status valid = forest.Validate();
  if (!valid.ok()) return valid;
  return BatchForestEmitter(forest).Emit();
}

#endif  // T3_BATCH_JIT

Result<std::unique_ptr<CompiledForest>> CompiledForest::Compile(
    const Forest& forest, const JitCompileOptions& options) {
  Result<JitArtifact> artifact = EmitForestCode(forest);
  if (!artifact.ok()) return artifact.status();

  if (options.audit) {
    // Static proof over the exact bytes about to be mapped executable: only
    // whitelisted instructions, branch targets on instruction boundaries
    // inside the tree's own code, feature loads inside the row. An audit
    // failure is an emitter bug, never a property of the (already
    // validated) forest.
    const AnalysisReport report = JitCodeAuditor().Audit(
        artifact->code.data(), artifact->code.size(), artifact->entries,
        artifact->num_features);
    if (report.HasErrors()) {
      return InternalError(
          StrFormat("JIT audit rejected emitted code: %s",
                    report.ToStatus().message().c_str()));
    }
  }

  if (options.validate_translation) {
    // Static equivalence proof over the same bytes: lift the emitted code
    // back into decision trees and show they compute exactly `forest`
    // (bit-equal thresholds/leaves, identical NaN routing, pointwise-equal
    // outputs over every threshold-induced cell). A failure is an emitter
    // bug — the forest itself was already validated.
    const AnalysisReport equivalence = TranslationValidator().Validate(
        forest, artifact->code.data(), artifact->code.size(),
        artifact->entries);
    if (equivalence.HasErrors()) {
      return InternalError(
          StrFormat("translation validation rejected emitted code: %s",
                    equivalence.ToStatus().message().c_str()));
    }
  }

  std::unique_ptr<CompiledForest> compiled(new CompiledForest());
  compiled->base_score_ = forest.base_score;
  Status mapped = MapExecutable(artifact->code, &compiled->code_,
                                &compiled->mapped_size_);
  if (!mapped.ok()) return mapped;
  compiled->code_size_ = artifact->code.size();
  compiled->tree_fns_.reserve(artifact->entries.size());
  for (const size_t entry : artifact->entries) {
    compiled->tree_fns_.push_back(reinterpret_cast<TreeFn>(
        static_cast<uint8_t*>(compiled->code_) + entry));
  }

#if T3_BATCH_JIT
  if (options.enable_batch) {
    Result<BatchJitArtifact> batch = EmitForestBatchCode(forest);
    if (!batch.ok()) return batch.status();

    if (options.audit) {
      // Same pre-mapping discipline as the scalar code: prove every lane
      // load, spill slot and pool reference in bounds and the control flow
      // straight-line before any byte becomes executable.
      const AnalysisReport report = JitCodeAuditor().AuditBatch(
          batch->code.data(), batch->code.size(), batch->entries,
          batch->pool_begin, batch->num_features);
      if (report.HasErrors()) {
        return InternalError(
            StrFormat("batch JIT audit rejected emitted code: %s",
                      report.ToStatus().message().c_str()));
      }
    }

    if (options.validate_batch) {
      // Lift each vector kernel back into a decision tree and prove it
      // computes the source forest (structure + per-cell semantics), per
      // lane — the batch analogue of validate_translation.
      const AnalysisReport equivalence = BatchEquivalenceValidator().Validate(
          forest, batch->code.data(), batch->code.size(), batch->entries,
          batch->pool_begin);
      if (equivalence.HasErrors()) {
        return InternalError(
            StrFormat("batch equivalence validation rejected emitted code: %s",
                      equivalence.ToStatus().message().c_str()));
      }
    }

    Status batch_mapped = MapExecutable(batch->code, &compiled->batch_code_,
                                        &compiled->batch_mapped_size_);
    if (!batch_mapped.ok()) return batch_mapped;
    compiled->batch_code_size_ = batch->code.size();
    compiled->num_features_ = batch->num_features;
    compiled->batch_fns_.reserve(batch->entries.size());
    for (const size_t entry : batch->entries) {
      compiled->batch_fns_.push_back(reinterpret_cast<BatchFn>(
          static_cast<uint8_t*>(compiled->batch_code_) + entry));
    }

    if (options.validate_batch) {
      // Belt and braces after mapping: run the mapped kernels themselves
      // over one witness row per leaf cell and bit-compare against the
      // scalar path. (Exercises the real dispatch only where the runtime
      // probe allows it; otherwise both sides take the scalar path.)
      const CompiledForest* self = compiled.get();
      const AnalysisReport differential = BatchDifferentialCheck(
          forest, [self](const double* rows, size_t num_rows,
                         size_t num_features, double* out) {
            self->PredictBatch(rows, num_rows, num_features, out);
          });
      if (differential.HasErrors()) {
        return InternalError(
            StrFormat("batch differential check rejected mapped kernels: %s",
                      differential.ToStatus().message().c_str()));
      }
    }
  }
#endif  // T3_BATCH_JIT

  return compiled;
}

CompiledForest::~CompiledForest() {
  if (code_ != nullptr) munmap(code_, mapped_size_);
  if (batch_code_ != nullptr) munmap(batch_code_, batch_mapped_size_);
}

double CompiledForest::Predict(const double* row) const {
  double sum = base_score_;
  for (const TreeFn fn : tree_fns_) sum += fn(row);
  return sum;
}

void CompiledForest::PredictBatch(const double* rows, size_t num_rows,
                                  size_t num_features, double* out) const {
  if (batch_fns_.empty() || !BatchKernelsEnabled() ||
      num_features != static_cast<size_t>(num_features_) || num_rows < 8) {
    ForestEvaluator::PredictBatch(rows, num_rows, num_features, out);
    return;
  }
  // Transpose 8 rows at a time into the kernels' feature-major block and
  // run every tree function over it; the (< 8)-row tail takes the per-row
  // path, which is bit-identical.
  std::vector<double> block(num_features * 8);
  size_t i = 0;
  for (; i + 8 <= num_rows; i += 8) {
    for (size_t r = 0; r < 8; ++r) {
      const double* row = rows + (i + r) * num_features;
      for (size_t f = 0; f < num_features; ++f) block[f * 8 + r] = row[f];
    }
    double* acc = out + i;
    for (size_t r = 0; r < 8; ++r) acc[r] = base_score_;
    for (const BatchFn fn : batch_fns_) fn(block.data(), acc);
  }
  for (; i < num_rows; ++i) out[i] = Predict(rows + i * num_features);
}

void CompiledForest::PredictBatchSoA(const double* soa, size_t num_rows,
                                     size_t num_features, double* out) const {
  if (batch_fns_.empty() || !BatchKernelsEnabled() ||
      num_features != static_cast<size_t>(num_features_) || num_rows < 8) {
    ForestEvaluator::PredictBatchSoA(soa, num_rows, num_features, out);
    return;
  }
  // Column-major input matches the block layout directly: each feature's 8
  // lanes are one contiguous copy instead of an 8-row transpose.
  std::vector<double> block(num_features * 8);
  size_t i = 0;
  for (; i + 8 <= num_rows; i += 8) {
    for (size_t f = 0; f < num_features; ++f) {
      std::memcpy(&block[f * 8], soa + f * num_rows + i, 8 * sizeof(double));
    }
    double* acc = out + i;
    for (size_t r = 0; r < 8; ++r) acc[r] = base_score_;
    for (const BatchFn fn : batch_fns_) fn(block.data(), acc);
  }
  if (i < num_rows) {
    std::vector<double> row(num_features);
    for (; i < num_rows; ++i) {
      for (size_t f = 0; f < num_features; ++f) row[f] = soa[f * num_rows + i];
      out[i] = Predict(row.data());
    }
  }
}

#else  // !T3_JIT_X86_64

// Portability guard: on non-x86-64 hosts (or without mmap) compilation
// reports Unavailable and callers fall back to FlatEvaluator /
// InterpretedEvaluator. (The JitCodeAuditor itself is pure byte
// inspection and still works on serialized buffers everywhere.)

Result<JitArtifact> EmitForestCode(const Forest& forest) {
  Status valid = forest.Validate();
  if (!valid.ok()) return valid;
  return UnavailableError(
      "tree JIT requires an x86-64 host with mmap; use FlatEvaluator");
}

Result<std::unique_ptr<CompiledForest>> CompiledForest::Compile(
    const Forest& forest, const JitCompileOptions&) {
  Result<JitArtifact> artifact = EmitForestCode(forest);
  return artifact.status();
}

CompiledForest::~CompiledForest() = default;

double CompiledForest::Predict(const double*) const { return base_score_; }

void CompiledForest::PredictBatch(const double*, size_t, size_t,
                                  double* out) const {
  *out = base_score_;
}

void CompiledForest::PredictBatchSoA(const double* soa, size_t num_rows,
                                     size_t num_features, double* out) const {
  ForestEvaluator::PredictBatchSoA(soa, num_rows, num_features, out);
}

#endif  // T3_JIT_X86_64

#if !T3_BATCH_JIT

// Batch emission is compiled out (non-x86-64 host, or -DT3_DISABLE_AVX2=ON).
// CompiledForest::Compile never populates batch_fns_, so PredictBatch stays
// pinned to the portable per-row path.
Result<BatchJitArtifact> EmitForestBatchCode(const Forest& forest) {
  Status valid = forest.Validate();
  if (!valid.ok()) return valid;
  return UnavailableError(
      "AVX batch kernels require an x86-64 host and a build without "
      "T3_DISABLE_AVX2; PredictBatch falls back to the per-row path");
}

#endif  // !T3_BATCH_JIT

}  // namespace t3
