#include "plan/pipeline.h"

#include "common/check.h"
#include "common/string_util.h"

namespace t3 {
namespace {

/// Recursive splitter. Chains are built child-first; a chain is "open" while
/// streaming operators keep extending it and is closed (assigned its final
/// pipeline id) when it reaches a sink. Closing order yields the
/// topological pipeline order for free: a join's build side closes before
/// the probe chain continues, a breaker's input closes before the consumer
/// chain above it starts.
struct Splitter {
  const PhysicalPlan& plan;
  PipelineDecomposition* out;

  const PlanNode& Node(int id) const {
    return plan.nodes[static_cast<size_t>(id)];
  }

  void Assign(int node, int role) { out->node_pipeline[static_cast<size_t>(node)] = role; }

  /// Closes `chain` as the next pipeline; returns its id.
  int Close(std::vector<int> chain, double driving, bool builds_hash_table) {
    Pipeline pipeline;
    pipeline.id = static_cast<int>(out->pipelines.size());
    pipeline.nodes = std::move(chain);
    pipeline.driving_cardinality = driving;
    pipeline.builds_hash_table = builds_hash_table;
    out->pipelines.push_back(std::move(pipeline));
    return out->pipelines.back().id;
  }

  /// Builds the open chain ending at `id`, streaming upward from its
  /// source. `driving` receives the chain's driving cardinality.
  std::vector<int> OpenChain(int id, double* driving) {
    const PlanNode& node = Node(id);
    switch (node.op) {
      case PlanOp::kScan: {
        *driving = node.cardinality;
        return {id};
      }
      case PlanOp::kFilter:
      case PlanOp::kProject:
      case PlanOp::kLimit: {
        std::vector<int> chain = OpenChain(node.left, driving);
        chain.push_back(id);
        return chain;
      }
      case PlanOp::kHashJoin: {
        // Build side: its chain closes at this join.
        double build_driving = 0.0;
        std::vector<int> build = OpenChain(node.right, &build_driving);
        build.push_back(id);
        Close(std::move(build), build_driving, /*builds_hash_table=*/true);
        // Probe side streams through the join.
        std::vector<int> chain = OpenChain(node.left, driving);
        chain.push_back(id);
        return chain;
      }
      case PlanOp::kHashAggregate:
      case PlanOp::kSort: {
        // Input chain closes here (build stage)...
        double input_driving = 0.0;
        std::vector<int> input = OpenChain(node.left, &input_driving);
        input.push_back(id);
        const int input_pipeline =
            Close(std::move(input), input_driving, false);
        // ...and the node's streamed work belongs to that pipeline.
        Assign(id, input_pipeline);
        // The consumer chain scans the materialized output (scan stage).
        *driving = node.cardinality;
        return {id};
      }
      case PlanOp::kOutput:
        break;
    }
    T3_CHECK(false);  // kOutput never appears below the root.
    return {};
  }

  void Run() {
    const int root = plan.root();
    double driving = 0.0;
    std::vector<int> chain = OpenChain(Node(root).left, &driving);
    chain.push_back(root);
    Close(std::move(chain), driving, false);

    // Stage tags for streaming nodes: the pipeline whose chain contains
    // them. Breakers were assigned at Close time (aggregate/sort) or get the
    // probe pipeline below (join: the later chain containing it wins).
    for (const Pipeline& pipeline : out->pipelines) {
      for (int id : pipeline.nodes) {
        const PlanNode& node = Node(id);
        const bool breaker_source =
            (node.op == PlanOp::kHashAggregate || node.op == PlanOp::kSort) &&
            id == pipeline.nodes.front();
        if (breaker_source) continue;  // Scan stage; keep the build tag.
        Assign(id, pipeline.id);
      }
    }
  }
};

}  // namespace

Result<PipelineDecomposition> DecomposePipelines(const PhysicalPlan& plan) {
  Status status = ValidatePlan(plan);
  if (!status.ok()) return status;
  PipelineDecomposition decomposition;
  decomposition.node_pipeline.assign(plan.nodes.size(), -1);
  Splitter{plan, &decomposition}.Run();
  return decomposition;
}

void AnnotatePipelineStages(PhysicalPlan* plan,
                            const PipelineDecomposition& decomposition) {
  T3_CHECK(plan->nodes.size() == decomposition.node_pipeline.size());
  for (size_t i = 0; i < plan->nodes.size(); ++i) {
    plan->nodes[i].stage = decomposition.node_pipeline[i];
  }
}

std::string DecompositionToString(const PhysicalPlan& plan,
                                  const PipelineDecomposition& decomposition) {
  std::string out;
  for (const Pipeline& pipeline : decomposition.pipelines) {
    out += StrFormat("pipeline %d (driving=%.0f%s):", pipeline.id,
                     pipeline.driving_cardinality,
                     pipeline.builds_hash_table ? ", builds hash table" : "");
    for (int id : pipeline.nodes) {
      out += StrFormat(" %s#%d",
                       PlanOpName(plan.nodes[static_cast<size_t>(id)].op), id);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace t3
