#include "plan/plan_file.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace t3 {
namespace {

/// Same pointer-walking reader as the corpus parser (harness/corpus.cc),
/// reduced to what plan files need. The backing string is NUL-terminated.
struct Cursor {
  const char* pos;
  const char* end;
  int line = 1;

  explicit Cursor(std::string_view text)
      : pos(text.data()), end(text.data() + text.size()) {}

  static bool IsSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  void SkipSpace() {
    while (pos != end && IsSpace(*pos)) {
      if (*pos == '\n') ++line;
      ++pos;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos == end;
  }
  std::string_view Token() {
    SkipSpace();
    const char* start = pos;
    while (pos != end && !IsSpace(*pos)) ++pos;
    return std::string_view(start, static_cast<size_t>(pos - start));
  }
  bool Double(double* out) {
    SkipSpace();
    char* after = nullptr;
    *out = std::strtod(pos, &after);
    if (after == pos || !std::isfinite(*out)) return false;
    pos = after;
    return true;
  }
  bool Int(int64_t* out) {
    SkipSpace();
    char* after = nullptr;
    *out = std::strtoll(pos, &after, 10);
    if (after == pos) return false;
    pos = after;
    return true;
  }
};

Status ParseError(const Cursor& cursor, const char* what) {
  return InvalidArgumentError(
      StrFormat("plan line %d: %s", cursor.line, what));
}

void AppendDouble(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

}  // namespace

Result<std::vector<PlanNodeRecord>> ParsePlanText(std::string_view text) {
  Cursor cursor(text);
  if (cursor.Token() != "t3plan" || cursor.Token() != "v1") {
    return InvalidArgumentError("not a t3plan v1 file");
  }
  int64_t num_nodes = 0;
  if (cursor.Token() != "nodes" || !cursor.Int(&num_nodes) || num_nodes < 0) {
    return ParseError(cursor, "bad node count");
  }
  std::vector<PlanNodeRecord> records;
  records.reserve(static_cast<size_t>(num_nodes));
  for (int64_t i = 0; i < num_nodes; ++i) {
    PlanNodeRecord record;
    int64_t op = 0, left = 0, right = 0, stage = 0;
    if (cursor.Token() != "N" || !cursor.Int(&op) || !cursor.Int(&left) ||
        !cursor.Int(&right) || !cursor.Double(&record.cardinality) ||
        !cursor.Double(&record.extra) || !cursor.Double(&record.width) ||
        !cursor.Int(&stage)) {
      return ParseError(cursor, "malformed N line");
    }
    record.op = static_cast<int>(op);
    record.left = static_cast<int>(left);
    record.right = static_cast<int>(right);
    record.stage = static_cast<int>(stage);
    records.push_back(record);
  }
  if (!cursor.AtEnd()) {
    return ParseError(cursor, "trailing data after last node");
  }
  return records;
}

std::string PlanRecordsToText(const std::vector<PlanNodeRecord>& records) {
  std::string out = "t3plan v1\n";
  out += StrFormat("nodes %zu\n", records.size());
  for (const PlanNodeRecord& record : records) {
    out += StrFormat("N %d %d %d ", record.op, record.left, record.right);
    AppendDouble(&out, record.cardinality);
    out.push_back(' ');
    AppendDouble(&out, record.extra);
    out.push_back(' ');
    AppendDouble(&out, record.width);
    out += StrFormat(" %d\n", record.stage);
  }
  return out;
}

}  // namespace t3
