#ifndef T3_PLAN_PIPELINE_H_
#define T3_PLAN_PIPELINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan.h"

namespace t3 {

/// One pipeline: a maximal operator chain tuples stream through without
/// materialization, from a source (table scan, or the materialized output of
/// a breaker) to a sink (a pipeline breaker, or the plan's output).
///
/// Breaker rules (T3 §3 / Figure 4):
///  - kHashAggregate and kSort are full breakers: their input pipeline ends
///    at them (the node's build stage), and they start the consumer pipeline
///    as its source (the node's scan stage).
///  - kHashJoin breaks its build (right) side only: the build pipeline ends
///    at the join; the probe (left) side streams through it.
///  - kFilter, kProject, kLimit stream; kScan is always a source; kOutput is
///    always the final sink.
///
/// A breaker node therefore appears in two pipelines (its two stages). The
/// single `stage` tag written back into PlanNode is the pipeline that
/// *streams tuples through* the node: the probe pipeline for joins, the
/// input pipeline for aggregate/sort.
struct Pipeline {
  int id = 0;
  /// Node ids source..sink in execution order. For a source that is a
  /// breaker's output, the breaker node id leads the list.
  std::vector<int> nodes;
  /// Estimated tuples entering the pipeline: the scan's table cardinality,
  /// or the source breaker's output cardinality.
  double driving_cardinality = 0.0;
  /// True when the sink is the build side of a hash join.
  bool builds_hash_table = false;

  int source() const { return nodes.front(); }
  int sink() const { return nodes.back(); }
};

struct PipelineDecomposition {
  /// Topologically ordered: every pipeline appears after the pipelines that
  /// materialize its inputs (join build sides, breaker outputs).
  std::vector<Pipeline> pipelines;
  /// node id -> id of the pipeline that streams tuples through the node.
  std::vector<int> node_pipeline;
};

/// Splits a validated plan at its pipeline breakers. Fails (structurally)
/// only when the plan itself is invalid.
Result<PipelineDecomposition> DecomposePipelines(const PhysicalPlan& plan);

/// Writes each node's pipeline id into PlanNode::stage, making the
/// decomposition part of the plan's serialized annotations.
void AnnotatePipelineStages(PhysicalPlan* plan,
                            const PipelineDecomposition& decomposition);

/// Human-readable pipeline listing for logs and tests.
std::string DecompositionToString(const PhysicalPlan& plan,
                                  const PipelineDecomposition& decomposition);

}  // namespace t3

#endif  // T3_PLAN_PIPELINE_H_
