#ifndef T3_PLAN_PLAN_FILE_H_
#define T3_PLAN_PLAN_FILE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "plan/plan_record.h"

namespace t3 {

/// Standalone plan files ("t3plan v1"): a plan skeleton serialized outside a
/// corpus, using the exact corpus "N" row schema. Golden plan fixtures under
/// data/ use this format and t3_lint runs PlanVerifier over them.
///
///   t3plan v1
///   nodes <n>
///   N <op> <left> <right> <cardinality> <extra> <width> <stage>   (x n)
///
/// Parsing is purely syntactic — structural validation is PlanVerifier's
/// job, so a file with a cycle or a bad op code still parses and every
/// invariant violation gets reported, not just the first.
Result<std::vector<PlanNodeRecord>> ParsePlanText(std::string_view text);

/// Serializes records back to "t3plan v1" text. Round-trips with
/// ParsePlanText bit-exactly (the same %.17g convention as the corpus).
std::string PlanRecordsToText(const std::vector<PlanNodeRecord>& records);

}  // namespace t3

#endif  // T3_PLAN_PLAN_FILE_H_
