#ifndef T3_PLAN_PLAN_RECORD_H_
#define T3_PLAN_PLAN_RECORD_H_

namespace t3 {

/// One physical plan node as serialized on a corpus "N" line:
///
///   N <op> <left> <right> <cardinality> <extra> <width> <stage>
///
/// This is the *shared schema* between live plans (src/plan) and benchmarked
/// corpora (src/harness): PlanToRecords / PlanFromRecords convert a
/// PhysicalPlan to and from this row form, and the corpus reader/writer
/// moves the rows to and from disk verbatim. Operator payloads (key columns,
/// predicates, aggregate lists) are not part of the N schema — the corpus
/// stores plan *shape* and annotations, features live on FT/FE lines.
///
/// `op` is a PlanOp code (see plan/plan.h). `left`/`right` are indices of
/// earlier nodes in the same record, -1 for none. `extra` is the op-specific
/// scalar documented at PlanToRecords. `stage` is the pipeline id assigned
/// by DecomposePipelines, or -1 when the plan was never decomposed.
struct PlanNodeRecord {
  int op = 0;
  int left = -1;
  int right = -1;
  double cardinality = 0.0;
  double extra = 0.0;
  double width = 0.0;
  int stage = 0;
};

}  // namespace t3

#endif  // T3_PLAN_PLAN_RECORD_H_
