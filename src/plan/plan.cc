#include "plan/plan.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace t3 {

double PlanNodeExtra(const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kScan:
    case PlanOp::kProject:
      return static_cast<double>(node.columns.size());
    case PlanOp::kFilter:
      return static_cast<double>(node.predicates.size());
    case PlanOp::kHashJoin:
      return static_cast<double>(node.left_keys.size());
    case PlanOp::kHashAggregate:
      return static_cast<double>(node.group_by.size());
    case PlanOp::kSort:
      return static_cast<double>(node.sort_keys.size());
    case PlanOp::kLimit:
      return static_cast<double>(node.limit);
    case PlanOp::kOutput:
      return 0.0;
  }
  return 0.0;
}

namespace {

double SchemaWidthBytes(const std::vector<ColumnType>& schema) {
  double width = 0.0;
  for (ColumnType type : schema) width += ColumnTypeWidthBytes(type);
  return width;
}

bool IsNumeric(ColumnType type) {
  return type != ColumnType::kString;
}

/// Output schema of one node given its children's schemas; also the type
/// checker for the node's payload. `table_rows` is filled for kScan.
Result<std::vector<ColumnType>> NodeOutputSchema(
    const Catalog& catalog, const PlanNode& node, int id,
    const std::vector<ColumnType>* left_schema,
    const std::vector<ColumnType>* right_schema, uint64_t* table_rows) {
  auto err = [&](const std::string& message) {
    return InvalidArgumentError(
        StrFormat("plan node %d (%s): %s", id, PlanOpName(node.op),
                  message.c_str()));
  };
  auto in_range = [](int column, const std::vector<ColumnType>& schema) {
    return column >= 0 && static_cast<size_t>(column) < schema.size();
  };

  switch (node.op) {
    case PlanOp::kScan: {
      Result<const Table*> table = catalog.FindTable(node.table);
      if (!table.ok()) return table.status();
      if (table_rows != nullptr) *table_rows = (*table)->num_rows();
      std::vector<ColumnType> schema;
      for (int column : node.columns) {
        if (column < 0 ||
            static_cast<size_t>(column) >= (*table)->num_columns()) {
          return err(StrFormat("column %d out of range for table %s", column,
                               node.table.c_str()));
        }
        schema.push_back(
            (*table)->column(static_cast<size_t>(column)).type());
      }
      return schema;
    }
    case PlanOp::kFilter: {
      for (const FilterPredicate& predicate : node.predicates) {
        if (!in_range(predicate.column, *left_schema)) {
          return err(StrFormat("predicate column %d out of range",
                               predicate.column));
        }
        if (!IsNumeric((*left_schema)[static_cast<size_t>(
                predicate.column)])) {
          return err(StrFormat("predicate column %d is not numeric",
                               predicate.column));
        }
      }
      return *left_schema;
    }
    case PlanOp::kProject: {
      std::vector<ColumnType> schema;
      for (int column : node.columns) {
        if (!in_range(column, *left_schema)) {
          return err(StrFormat("projected column %d out of range", column));
        }
        schema.push_back((*left_schema)[static_cast<size_t>(column)]);
      }
      return schema;
    }
    case PlanOp::kHashJoin: {
      for (size_t k = 0; k < node.left_keys.size(); ++k) {
        const int probe_key = node.left_keys[k];
        const int build_key = node.right_keys[k];
        if (!in_range(probe_key, *left_schema) ||
            !in_range(build_key, *right_schema)) {
          return err("join key column out of range");
        }
        const ColumnType probe_type =
            (*left_schema)[static_cast<size_t>(probe_key)];
        const ColumnType build_type =
            (*right_schema)[static_cast<size_t>(build_key)];
        if (!IsIntegerBacked(probe_type) || !IsIntegerBacked(build_type)) {
          return err("join keys must be integer-backed (int64/date)");
        }
      }
      std::vector<ColumnType> schema = *left_schema;
      schema.insert(schema.end(), right_schema->begin(), right_schema->end());
      return schema;
    }
    case PlanOp::kHashAggregate: {
      std::vector<ColumnType> schema;
      for (int column : node.group_by) {
        if (!in_range(column, *left_schema)) {
          return err(StrFormat("group column %d out of range", column));
        }
        const ColumnType type = (*left_schema)[static_cast<size_t>(column)];
        if (!IsIntegerBacked(type)) {
          return err("group keys must be integer-backed (int64/date)");
        }
        schema.push_back(type);
      }
      for (const AggregateSpec& spec : node.aggregates) {
        if (spec.fn == AggFunc::kCountStar) {
          schema.push_back(ColumnType::kInt64);
          continue;
        }
        if (!in_range(spec.column, *left_schema)) {
          return err(StrFormat("aggregate column %d out of range",
                               spec.column));
        }
        const ColumnType type = (*left_schema)[static_cast<size_t>(
            spec.column)];
        switch (spec.fn) {
          case AggFunc::kCount:
            schema.push_back(ColumnType::kInt64);
            break;
          case AggFunc::kSum:
            if (!IsNumeric(type)) return err("sum over non-numeric column");
            schema.push_back(ColumnType::kFloat64);
            break;
          case AggFunc::kMin:
          case AggFunc::kMax:
            schema.push_back(type);
            break;
          case AggFunc::kCountStar:
            break;
        }
      }
      return schema;
    }
    case PlanOp::kSort: {
      for (const SortKey& key : node.sort_keys) {
        if (!in_range(key.column, *left_schema)) {
          return err(StrFormat("sort column %d out of range", key.column));
        }
      }
      return *left_schema;
    }
    case PlanOp::kLimit:
    case PlanOp::kOutput:
      return *left_schema;
  }
  return err("unknown operator");
}

}  // namespace

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "scan";
    case PlanOp::kFilter:
      return "filter";
    case PlanOp::kProject:
      return "project";
    case PlanOp::kHashJoin:
      return "hash_join";
    case PlanOp::kHashAggregate:
      return "hash_aggregate";
    case PlanOp::kSort:
      return "sort";
    case PlanOp::kLimit:
      return "limit";
    case PlanOp::kOutput:
      return "output";
  }
  return "?";
}

bool IsPlanOpCode(int code) {
  return (code >= 0 && code <= 6) || code == 8;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

const char* AggFuncName(AggFunc fn) {
  switch (fn) {
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

double ColumnTypeWidthBytes(ColumnType type) {
  return type == ColumnType::kString ? 16.0 : 8.0;
}

Status ValidatePlan(const PhysicalPlan& plan) {
  if (plan.nodes.empty()) return InvalidArgumentError("plan: no nodes");
  const int n = static_cast<int>(plan.nodes.size());
  std::vector<int> consumers(plan.nodes.size(), 0);
  for (int i = 0; i < n; ++i) {
    const PlanNode& node = plan.nodes[static_cast<size_t>(i)];
    auto err = [&](const std::string& message) {
      return InvalidArgumentError(StrFormat("plan node %d (%s): %s", i,
                                            PlanOpName(node.op),
                                            message.c_str()));
    };
    if (!IsPlanOpCode(static_cast<int>(node.op))) {
      return InvalidArgumentError(
          StrFormat("plan node %d: unknown op code %d", i,
                    static_cast<int>(node.op)));
    }
    // Arity + children strictly before parents.
    const bool is_leaf = node.op == PlanOp::kScan;
    const bool is_binary = node.op == PlanOp::kHashJoin;
    if (is_leaf) {
      if (node.left != -1 || node.right != -1) return err("scan has inputs");
    } else if (is_binary) {
      if (node.left < 0 || node.left >= i || node.right < 0 ||
          node.right >= i || node.left == node.right) {
        return err("bad join children");
      }
    } else {
      if (node.left < 0 || node.left >= i || node.right != -1) {
        return err("bad unary input");
      }
    }
    if (node.left >= 0) ++consumers[static_cast<size_t>(node.left)];
    if (node.right >= 0) ++consumers[static_cast<size_t>(node.right)];

    if (!std::isfinite(node.cardinality) || node.cardinality < 0.0) {
      return err("cardinality must be finite and non-negative");
    }
    if (!std::isfinite(node.width) || node.width < 0.0) {
      return err("width must be finite and non-negative");
    }
    if (!std::isfinite(node.extra)) return err("extra must be finite");

    // Payload shape (type checks happen against the catalog at execution).
    switch (node.op) {
      case PlanOp::kFilter:
        if (node.predicates.empty()) return err("filter with no predicates");
        for (const FilterPredicate& predicate : node.predicates) {
          if (!std::isfinite(predicate.constant)) {
            return err("predicate constant must be finite");
          }
        }
        break;
      case PlanOp::kHashJoin:
        if (node.left_keys.empty() ||
            node.left_keys.size() != node.right_keys.size()) {
          return err("join keys must pair up and be non-empty");
        }
        break;
      case PlanOp::kHashAggregate:
        if (node.group_by.empty() && node.aggregates.empty()) {
          return err("aggregate with no groups and no aggregates");
        }
        break;
      case PlanOp::kSort:
        if (node.sort_keys.empty()) return err("sort with no keys");
        break;
      case PlanOp::kLimit:
        if (node.limit < 0) return err("negative limit");
        break;
      case PlanOp::kOutput:
        if (i != n - 1) return err("output below the root");
        break;
      case PlanOp::kScan:
      case PlanOp::kProject:
        break;
    }
  }
  if (plan.nodes.back().op != PlanOp::kOutput) {
    return InvalidArgumentError("plan: root must be the output node");
  }
  for (int i = 0; i < n - 1; ++i) {
    if (consumers[static_cast<size_t>(i)] != 1) {
      return InvalidArgumentError(StrFormat(
          "plan node %d: consumed %d times (plans are trees)", i,
          consumers[static_cast<size_t>(i)]));
    }
  }
  return Status::OK();
}

std::vector<PlanNodeRecord> PlanToRecords(const PhysicalPlan& plan) {
  std::vector<PlanNodeRecord> records;
  records.reserve(plan.nodes.size());
  for (const PlanNode& node : plan.nodes) {
    PlanNodeRecord record;
    record.op = static_cast<int>(node.op);
    record.left = node.left;
    record.right = node.right;
    record.cardinality = node.cardinality;
    record.extra = PlanNodeExtra(node);
    record.width = node.width;
    record.stage = node.stage < 0 ? 0 : node.stage;
    records.push_back(record);
  }
  return records;
}

Result<PhysicalPlan> PlanFromRecords(
    const std::vector<PlanNodeRecord>& records) {
  PhysicalPlan plan;
  plan.nodes.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const PlanNodeRecord& record = records[i];
    if (!IsPlanOpCode(record.op)) {
      return InvalidArgumentError(StrFormat(
          "plan record %zu: unknown op code %d", i, record.op));
    }
    PlanNode node;
    node.op = static_cast<PlanOp>(record.op);
    node.left = record.left;
    node.right = record.right;
    node.cardinality = record.cardinality;
    node.extra = record.extra;
    node.width = record.width;
    node.stage = record.stage;
    // Rehydrate the payload shape ValidatePlan checks from `extra` so a
    // skeleton passes structural validation (contents stay unknown).
    switch (node.op) {
      case PlanOp::kFilter:
        node.predicates.resize(
            record.extra >= 1.0 ? static_cast<size_t>(record.extra) : 1);
        break;
      case PlanOp::kHashJoin: {
        const size_t keys =
            record.extra >= 1.0 ? static_cast<size_t>(record.extra) : 1;
        node.left_keys.resize(keys);
        node.right_keys.resize(keys);
        break;
      }
      case PlanOp::kHashAggregate:
        if (record.extra >= 1.0) {
          node.group_by.resize(static_cast<size_t>(record.extra));
        } else {
          node.aggregates.resize(1);
        }
        break;
      case PlanOp::kSort:
        node.sort_keys.resize(
            record.extra >= 1.0 ? static_cast<size_t>(record.extra) : 1);
        break;
      case PlanOp::kLimit:
        node.limit = static_cast<int64_t>(record.extra);
        break;
      case PlanOp::kScan:
      case PlanOp::kProject:
        node.columns.resize(static_cast<size_t>(
            record.extra >= 0.0 ? record.extra : 0.0));
        break;
      case PlanOp::kOutput:
        break;
    }
    plan.nodes.push_back(std::move(node));
  }
  Status status = ValidatePlan(plan);
  if (!status.ok()) return status;
  return plan;
}

std::string PlanToString(const PhysicalPlan& plan) {
  std::string out;
  // Render the tree root-first with indentation; children-before-parents
  // order means recursing from the back.
  struct Renderer {
    const PhysicalPlan& plan;
    std::string* out;
    void Render(int id, int depth) {
      const PlanNode& node = plan.nodes[static_cast<size_t>(id)];
      out->append(static_cast<size_t>(depth) * 2, ' ');
      out->append(StrFormat("#%d %s", id, PlanOpName(node.op)));
      if (node.op == PlanOp::kScan) {
        out->append(StrFormat(" %s", node.table.c_str()));
      }
      if (node.op == PlanOp::kLimit) {
        out->append(StrFormat(" %lld", static_cast<long long>(node.limit)));
      }
      out->append(StrFormat(" (card=%.0f width=%.0f", node.cardinality,
                            node.width));
      if (node.stage >= 0) out->append(StrFormat(" pipeline=%d", node.stage));
      out->append(")\n");
      if (node.left >= 0) Render(node.left, depth + 1);
      if (node.right >= 0) Render(node.right, depth + 1);
    }
  };
  if (!plan.nodes.empty()) Renderer{plan, &out}.Render(plan.root(), 0);
  return out;
}

Result<std::vector<std::vector<ColumnType>>> ResolvePlanSchemas(
    const Catalog& catalog, const PhysicalPlan& plan) {
  Status status = ValidatePlan(plan);
  if (!status.ok()) return status;
  std::vector<std::vector<ColumnType>> schemas(plan.nodes.size());
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    const std::vector<ColumnType>* left =
        node.left >= 0 ? &schemas[static_cast<size_t>(node.left)] : nullptr;
    const std::vector<ColumnType>* right =
        node.right >= 0 ? &schemas[static_cast<size_t>(node.right)] : nullptr;
    Result<std::vector<ColumnType>> schema = NodeOutputSchema(
        catalog, node, static_cast<int>(i), left, right, nullptr);
    if (!schema.ok()) return schema.status();
    schemas[i] = *std::move(schema);
  }
  return schemas;
}

Status PlanBuilder::CheckInput(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= plan_.nodes.size()) {
    return InvalidArgumentError(StrFormat("plan builder: bad input node %d",
                                          id));
  }
  return Status::OK();
}

Result<int> PlanBuilder::Append(PlanNode node,
                                std::vector<ColumnType> schema) {
  node.width = SchemaWidthBytes(schema);
  node.extra = PlanNodeExtra(node);
  plan_.nodes.push_back(std::move(node));
  schemas_.push_back(std::move(schema));
  return static_cast<int>(plan_.nodes.size()) - 1;
}

Result<int> PlanBuilder::Scan(const std::string& table,
                              std::vector<int> columns) {
  PlanNode node;
  node.op = PlanOp::kScan;
  node.table = table;
  if (columns.empty()) {
    Result<const Table*> found = catalog_->FindTable(table);
    if (!found.ok()) return found.status();
    for (size_t c = 0; c < (*found)->num_columns(); ++c) {
      columns.push_back(static_cast<int>(c));
    }
  }
  node.columns = std::move(columns);
  uint64_t rows = 0;
  Result<std::vector<ColumnType>> schema = NodeOutputSchema(
      *catalog_, node, static_cast<int>(plan_.nodes.size()), nullptr, nullptr,
      &rows);
  if (!schema.ok()) return schema.status();
  node.cardinality = static_cast<double>(rows);
  return Append(std::move(node), *std::move(schema));
}

Result<int> PlanBuilder::Filter(int input,
                                std::vector<FilterPredicate> predicates) {
  Status status = CheckInput(input);
  if (!status.ok()) return status;
  PlanNode node;
  node.op = PlanOp::kFilter;
  node.left = input;
  node.predicates = std::move(predicates);
  const double input_card =
      plan_.nodes[static_cast<size_t>(input)].cardinality;
  node.cardinality =
      input_card *
      std::pow(1.0 / 3.0, static_cast<double>(node.predicates.size()));
  Result<std::vector<ColumnType>> schema = NodeOutputSchema(
      *catalog_, node, static_cast<int>(plan_.nodes.size()),
      &schemas_[static_cast<size_t>(input)], nullptr, nullptr);
  if (!schema.ok()) return schema.status();
  return Append(std::move(node), *std::move(schema));
}

Result<int> PlanBuilder::Project(int input, std::vector<int> columns) {
  Status status = CheckInput(input);
  if (!status.ok()) return status;
  PlanNode node;
  node.op = PlanOp::kProject;
  node.left = input;
  node.columns = std::move(columns);
  node.cardinality = plan_.nodes[static_cast<size_t>(input)].cardinality;
  Result<std::vector<ColumnType>> schema = NodeOutputSchema(
      *catalog_, node, static_cast<int>(plan_.nodes.size()),
      &schemas_[static_cast<size_t>(input)], nullptr, nullptr);
  if (!schema.ok()) return schema.status();
  return Append(std::move(node), *std::move(schema));
}

Result<int> PlanBuilder::HashJoin(int probe, int build,
                                  std::vector<int> probe_keys,
                                  std::vector<int> build_keys) {
  Status status = CheckInput(probe);
  if (status.ok()) status = CheckInput(build);
  if (!status.ok()) return status;
  if (probe == build) {
    return InvalidArgumentError("plan builder: join sides must differ");
  }
  PlanNode node;
  node.op = PlanOp::kHashJoin;
  node.left = probe;
  node.right = build;
  node.left_keys = std::move(probe_keys);
  node.right_keys = std::move(build_keys);
  if (node.left_keys.empty() ||
      node.left_keys.size() != node.right_keys.size()) {
    return InvalidArgumentError(
        "plan builder: join keys must pair up and be non-empty");
  }
  node.cardinality = plan_.nodes[static_cast<size_t>(probe)].cardinality;
  Result<std::vector<ColumnType>> schema = NodeOutputSchema(
      *catalog_, node, static_cast<int>(plan_.nodes.size()),
      &schemas_[static_cast<size_t>(probe)],
      &schemas_[static_cast<size_t>(build)], nullptr);
  if (!schema.ok()) return schema.status();
  return Append(std::move(node), *std::move(schema));
}

Result<int> PlanBuilder::HashAggregate(int input, std::vector<int> group_by,
                                       std::vector<AggregateSpec> aggregates) {
  Status status = CheckInput(input);
  if (!status.ok()) return status;
  PlanNode node;
  node.op = PlanOp::kHashAggregate;
  node.left = input;
  node.group_by = std::move(group_by);
  node.aggregates = std::move(aggregates);
  const double input_card =
      plan_.nodes[static_cast<size_t>(input)].cardinality;
  node.cardinality =
      node.group_by.empty() ? 1.0 : std::max(1.0, input_card / 10.0);
  Result<std::vector<ColumnType>> schema = NodeOutputSchema(
      *catalog_, node, static_cast<int>(plan_.nodes.size()),
      &schemas_[static_cast<size_t>(input)], nullptr, nullptr);
  if (!schema.ok()) return schema.status();
  return Append(std::move(node), *std::move(schema));
}

Result<int> PlanBuilder::Sort(int input, std::vector<SortKey> keys) {
  Status status = CheckInput(input);
  if (!status.ok()) return status;
  PlanNode node;
  node.op = PlanOp::kSort;
  node.left = input;
  node.sort_keys = std::move(keys);
  node.cardinality = plan_.nodes[static_cast<size_t>(input)].cardinality;
  Result<std::vector<ColumnType>> schema = NodeOutputSchema(
      *catalog_, node, static_cast<int>(plan_.nodes.size()),
      &schemas_[static_cast<size_t>(input)], nullptr, nullptr);
  if (!schema.ok()) return schema.status();
  return Append(std::move(node), *std::move(schema));
}

Result<int> PlanBuilder::Limit(int input, int64_t n) {
  Status status = CheckInput(input);
  if (!status.ok()) return status;
  if (n < 0) return InvalidArgumentError("plan builder: negative limit");
  PlanNode node;
  node.op = PlanOp::kLimit;
  node.left = input;
  node.limit = n;
  node.cardinality = std::min(
      plan_.nodes[static_cast<size_t>(input)].cardinality,
      static_cast<double>(n));
  return Append(std::move(node), schemas_[static_cast<size_t>(input)]);
}

Result<PhysicalPlan> PlanBuilder::Output(int input) {
  Status status = CheckInput(input);
  if (!status.ok()) return status;
  PlanNode node;
  node.op = PlanOp::kOutput;
  node.left = input;
  node.cardinality = plan_.nodes[static_cast<size_t>(input)].cardinality;
  Result<int> appended =
      Append(std::move(node), schemas_[static_cast<size_t>(input)]);
  if (!appended.ok()) return appended.status();
  PhysicalPlan plan = std::move(plan_);
  plan_ = PhysicalPlan();
  schemas_.clear();
  status = ValidatePlan(plan);
  if (!status.ok()) return status;
  return plan;
}

}  // namespace t3
