#ifndef T3_PLAN_PLAN_H_
#define T3_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan_record.h"
#include "storage/catalog.h"
#include "storage/types.h"

namespace t3 {

/// Physical operator kind. The numeric codes are the on-disk `op` values of
/// corpus "N" lines and must never be renumbered. Code 7 is reserved for the
/// window operator (pending reconstruction); code 8 being the root output is
/// a format convention the checked-in corpus fixture already follows.
enum class PlanOp : int {
  kScan = 0,           // leaf: read a base table
  kFilter = 1,         // streaming: conjunctive predicates
  kProject = 2,        // streaming: reorder / drop columns
  kHashJoin = 3,       // left child = probe side, right child = build side
  kHashAggregate = 4,  // breaker: hash group-by + aggregates
  kSort = 5,           // breaker: full sort
  kLimit = 6,          // streaming: first-n with early stop
  kOutput = 8,         // root sink: materialize the query result
};

/// "scan", "filter", ... (stable, used in ExplainAnalyze output).
const char* PlanOpName(PlanOp op);

/// True when `code` is a valid PlanOp numeric code.
bool IsPlanOpCode(int code);

/// Comparison operator of a filter predicate.
enum class CompareOp { kLt = 0, kLe, kGt, kGe, kEq, kNe };

const char* CompareOpName(CompareOp op);

/// One conjunct `column <cmp> constant` over a numeric (int64/float64/date)
/// input column; integer values compare through a double cast. Rows whose
/// column value is NULL never pass.
struct FilterPredicate {
  int column = 0;
  CompareOp cmp = CompareOp::kLt;
  double constant = 0.0;
};

/// Aggregate function. kCountStar counts rows; the others skip NULL inputs,
/// and produce NULL for a group with no non-NULL input.
enum class AggFunc { kCountStar = 0, kCount, kSum, kMin, kMax };

const char* AggFuncName(AggFunc fn);

struct AggregateSpec {
  AggFunc fn = AggFunc::kCountStar;
  int column = -1;  ///< Input column; ignored (-1) for kCountStar.
};

/// Sort key: NULLs order after every value ascending, before it descending.
struct SortKey {
  int column = 0;
  bool ascending = true;
};

/// One node of a physical plan. `left`/`right` index earlier nodes in
/// PhysicalPlan::nodes (-1 = none); unary operators use `left`. The
/// annotation block (cardinality/extra/width/stage) is what serializes to
/// corpus "N" lines; the payload block parameterizes execution.
struct PlanNode {
  PlanOp op = PlanOp::kScan;
  int left = -1;
  int right = -1;

  // --- Annotations (serialized). ---
  double cardinality = 0.0;  ///< Estimated output rows.
  double extra = 0.0;        ///< Op-specific scalar; see PlanToRecords.
  double width = 0.0;        ///< Output tuple width in bytes.
  int stage = -1;            ///< Pipeline id from DecomposePipelines, or -1.

  // --- Payloads (not serialized; corpus stores plan shape only). ---
  std::string table;                       ///< kScan: table name.
  std::vector<int> columns;                ///< kScan/kProject: column indices.
  std::vector<FilterPredicate> predicates; ///< kFilter.
  std::vector<int> left_keys;              ///< kHashJoin: probe key columns.
  std::vector<int> right_keys;             ///< kHashJoin: build key columns.
  std::vector<int> group_by;               ///< kHashAggregate.
  std::vector<AggregateSpec> aggregates;   ///< kHashAggregate.
  std::vector<SortKey> sort_keys;          ///< kSort.
  int64_t limit = 0;                       ///< kLimit.
};

/// A physical plan: operator tree stored as a vector with children before
/// parents; the root is the last node and is always kOutput. The layout
/// matches the corpus record order, so serialization is a plain copy.
struct PhysicalPlan {
  std::vector<PlanNode> nodes;

  size_t num_nodes() const { return nodes.size(); }
  int root() const { return static_cast<int>(nodes.size()) - 1; }
};

/// Structural validation: children-before-parents indices, per-op arity,
/// exactly one kOutput at the root, every non-root node consumed exactly
/// once, finite non-negative annotations, well-formed payloads. Execution
/// additionally type-checks payloads against the catalog.
Status ValidatePlan(const PhysicalPlan& plan);

/// The `extra` annotation a node's payload implies: kScan/kProject = output
/// column count, kFilter = predicate count, kHashJoin = key pair count,
/// kHashAggregate = group column count, kSort = sort key count, kLimit = the
/// limit, kOutput = 0. PlanBuilder and PlanToRecords keep node.extra equal
/// to this; PlanVerifier flags divergence.
double PlanNodeExtra(const PlanNode& node);

/// The plan's shape + annotations as corpus "N" rows (one per node, same
/// order). `extra` per op follows PlanNodeExtra.
std::vector<PlanNodeRecord> PlanToRecords(const PhysicalPlan& plan);

/// Rebuilds a *skeleton* plan (ops, structure, annotations — no payloads)
/// from corpus rows, validating structure. Round-trips with PlanToRecords:
/// PlanToRecords(*PlanFromRecords(r)) == r for any r it accepts.
Result<PhysicalPlan> PlanFromRecords(const std::vector<PlanNodeRecord>& records);

/// Indented one-node-per-line rendering for logs and tests.
std::string PlanToString(const PhysicalPlan& plan);

/// Incremental plan construction against a catalog. Each method appends a
/// node, computes its output schema (for index/type validation), and fills
/// the annotation block with deterministic defaults: scan cardinality =
/// table rows, filter = input / 3 per conjunct, join = probe cardinality
/// (FK assumption), aggregate = input / 10 (>= 1), limit = min(input, n).
/// Callers may overwrite node annotations before Output() finalizes.
///
///   PlanBuilder b(&catalog);
///   int scan = *b.Scan("lineitem");
///   int agg = *b.HashAggregate(scan, {0}, {{AggFunc::kCountStar, -1}});
///   PhysicalPlan plan = *b.Output(agg);
class PlanBuilder {
 public:
  explicit PlanBuilder(const Catalog* catalog) : catalog_(catalog) {}

  /// Scans `columns` (empty = all columns) of a base table.
  Result<int> Scan(const std::string& table, std::vector<int> columns = {});
  Result<int> Filter(int input, std::vector<FilterPredicate> predicates);
  Result<int> Project(int input, std::vector<int> columns);
  /// Output schema = probe columns then build columns. Keys must be
  /// integer-backed (int64/date) and pair up positionally.
  Result<int> HashJoin(int probe, int build, std::vector<int> probe_keys,
                       std::vector<int> build_keys);
  /// Output schema = group columns then one column per aggregate
  /// (count -> int64, sum -> float64, min/max -> input type).
  Result<int> HashAggregate(int input, std::vector<int> group_by,
                            std::vector<AggregateSpec> aggregates);
  Result<int> Sort(int input, std::vector<SortKey> keys);
  Result<int> Limit(int input, int64_t n);

  /// Appends the kOutput root over `input` and returns the finished,
  /// validated plan. The builder is left empty, ready for the next plan.
  Result<PhysicalPlan> Output(int input);

  /// Direct annotation access for callers adjusting estimates.
  PlanNode& node(int id) { return plan_.nodes[static_cast<size_t>(id)]; }

  /// Output column types of a built node.
  const std::vector<ColumnType>& schema(int id) const {
    return schemas_[static_cast<size_t>(id)];
  }

 private:
  Result<int> Append(PlanNode node, std::vector<ColumnType> schema);
  Status CheckInput(int id) const;

  const Catalog* catalog_;
  PhysicalPlan plan_;
  std::vector<std::vector<ColumnType>> schemas_;
};

/// Output column types of every node of a full (payload-carrying) plan,
/// resolved against the catalog. Fails where execution would: unknown
/// table/column, non-integer join or group keys, predicates or sort keys on
/// unsupported types. This is the executor's type-checking pass.
Result<std::vector<std::vector<ColumnType>>> ResolvePlanSchemas(
    const Catalog& catalog, const PhysicalPlan& plan);

/// Bytes per materialized value of a column type (strings count their
/// representation header only; contents are out-of-line).
double ColumnTypeWidthBytes(ColumnType type);

}  // namespace t3

#endif  // T3_PLAN_PLAN_H_
