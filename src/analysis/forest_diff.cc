#include "analysis/forest_diff.h"

#include <limits>

#include "analysis/interval_domain.h"
#include "common/string_util.h"

namespace t3 {
namespace {

/// Exact range of treeA(x) - treeB(x) over all rows x: every feasible
/// (A-cell, B-cell) intersection contributes its leaf-value difference.
ForestDiffBounds TreePairRange(const Tree& a, const Tree& b,
                               int num_features) {
  ForestDiffBounds range{std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()};
  ForEachLeafCell(a, FeatureBox::Full(num_features),
                  [&](int a_leaf, const FeatureBox& a_cell) {
                    const double a_value =
                        a.nodes[static_cast<size_t>(a_leaf)].value;
                    ForEachLeafCell(
                        b, a_cell, [&](int b_leaf, const FeatureBox&) {
                          const double d =
                              a_value -
                              b.nodes[static_cast<size_t>(b_leaf)].value;
                          range.min = std::min(range.min, d);
                          range.max = std::max(range.max, d);
                        });
                  });
  return range;
}

/// Range of a single tree's output over all reachable leaves.
ForestDiffBounds TreeRange(const Tree& tree, int num_features) {
  ForestDiffBounds range{std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()};
  ForEachLeafCell(tree, FeatureBox::Full(num_features),
                  [&](int leaf, const FeatureBox&) {
                    const double v =
                        tree.nodes[static_cast<size_t>(leaf)].value;
                    range.min = std::min(range.min, v);
                    range.max = std::max(range.max, v);
                  });
  return range;
}

}  // namespace

Result<ForestDiffBounds> ForestDiff(const Forest& a, const Forest& b) {
  for (const Forest* forest : {&a, &b}) {
    const Status valid = forest->Validate();
    if (!valid.ok()) {
      return InvalidArgumentError(StrFormat(
          "ForestDiff input invalid: %s", valid.message().c_str()));
    }
  }
  if (a.num_features != b.num_features) {
    return InvalidArgumentError(
        StrFormat("ForestDiff feature spaces differ: %d vs %d",
                  a.num_features, b.num_features));
  }

  ForestDiffBounds bounds{a.base_score - b.base_score,
                          a.base_score - b.base_score};
  const size_t paired = std::min(a.trees.size(), b.trees.size());
  for (size_t t = 0; t < paired; ++t) {
    const ForestDiffBounds pair =
        TreePairRange(a.trees[t], b.trees[t], a.num_features);
    bounds.min += pair.min;
    bounds.max += pair.max;
  }
  for (size_t t = paired; t < a.trees.size(); ++t) {
    const ForestDiffBounds extra = TreeRange(a.trees[t], a.num_features);
    bounds.min += extra.min;
    bounds.max += extra.max;
  }
  for (size_t t = paired; t < b.trees.size(); ++t) {
    const ForestDiffBounds extra = TreeRange(b.trees[t], b.num_features);
    bounds.min -= extra.max;
    bounds.max -= extra.min;
  }
  return bounds;
}

}  // namespace t3
