#include "analysis/plan_verifier.h"

#include <cmath>
#include <string>

#include "common/string_util.h"
#include "plan/pipeline.h"

namespace t3 {
namespace {

/// Shared annotation checks of a live node / serialized record.
void CheckAnnotations(AnalysisReport* report, int id, double cardinality,
                      double extra, double width) {
  if (!std::isfinite(cardinality) || cardinality < 0.0) {
    report->Add(Severity::kError, "plan-annotation", -1, id,
                StrFormat("cardinality %g must be finite and non-negative",
                          cardinality));
  }
  if (!std::isfinite(width) || width < 0.0) {
    report->Add(Severity::kError, "plan-annotation", -1, id,
                StrFormat("width %g must be finite and non-negative", width));
  }
  if (!std::isfinite(extra)) {
    report->Add(Severity::kError, "plan-annotation", -1, id,
                StrFormat("extra %g must be finite", extra));
  }
}

/// Child-reference check under children-before-parents order. Returns true
/// when `child` is a usable back reference.
bool CheckChildRef(AnalysisReport* report, int id, int child,
                   const char* which, int num_nodes) {
  if (child < 0 || child >= num_nodes) {
    report->Add(Severity::kError, "plan-topology", -1, id,
                StrFormat("%s child %d out of range [0, %d)", which, child,
                          num_nodes));
    return false;
  }
  if (child >= id) {
    report->Add(
        Severity::kError, "plan-topology", -1, id,
        StrFormat("%s child %d does not precede the node (a cycle under "
                  "children-before-parents order)",
                  which, child));
    return false;
  }
  return true;
}

/// Arity + topology of one node; increments consumer counts for usable
/// child references.
void CheckShape(AnalysisReport* report, int id, PlanOp op, int left,
                int right, int num_nodes, std::vector<int>* consumers) {
  const bool is_leaf = op == PlanOp::kScan;
  const bool is_binary = op == PlanOp::kHashJoin;
  if (is_leaf) {
    if (left != -1 || right != -1) {
      report->Add(Severity::kError, "plan-arity", -1, id,
                  "scan must not have inputs");
    }
    return;
  }
  if (is_binary) {
    const bool left_ok = CheckChildRef(report, id, left, "probe", num_nodes);
    const bool right_ok = CheckChildRef(report, id, right, "build", num_nodes);
    if (left_ok && right_ok && left == right) {
      report->Add(Severity::kError, "plan-arity", -1, id,
                  "join sides must differ");
    }
    if (left_ok) ++(*consumers)[static_cast<size_t>(left)];
    if (right_ok && left != right) {
      ++(*consumers)[static_cast<size_t>(right)];
    }
    return;
  }
  if (CheckChildRef(report, id, left, "unary", num_nodes)) {
    ++(*consumers)[static_cast<size_t>(left)];
  }
  if (right != -1) {
    report->Add(Severity::kError, "plan-arity", -1, id,
                StrFormat("unary operator with a right child %d", right));
  }
}

/// Payload-shape legality (the keep-going version of ValidatePlan's payload
/// block). Rehydrated skeletons satisfy these by construction.
void CheckPayload(AnalysisReport* report, int id, const PlanNode& node,
                  bool is_root) {
  switch (node.op) {
    case PlanOp::kFilter:
      if (node.predicates.empty()) {
        report->Add(Severity::kError, "plan-payload", -1, id,
                    "filter with no predicates");
      }
      for (const FilterPredicate& predicate : node.predicates) {
        if (!std::isfinite(predicate.constant)) {
          report->Add(Severity::kError, "plan-payload", -1, id,
                      "predicate constant must be finite");
        }
      }
      break;
    case PlanOp::kHashJoin:
      if (node.left_keys.empty() ||
          node.left_keys.size() != node.right_keys.size()) {
        report->Add(Severity::kError, "plan-payload", -1, id,
                    "join keys must pair up and be non-empty");
      }
      break;
    case PlanOp::kHashAggregate:
      if (node.group_by.empty() && node.aggregates.empty()) {
        report->Add(Severity::kError, "plan-payload", -1, id,
                    "aggregate with no groups and no aggregates");
      }
      break;
    case PlanOp::kSort:
      if (node.sort_keys.empty()) {
        report->Add(Severity::kError, "plan-payload", -1, id,
                    "sort with no keys");
      }
      break;
    case PlanOp::kLimit:
      if (node.limit < 0) {
        report->Add(Severity::kError, "plan-payload", -1, id,
                    "negative limit");
      }
      break;
    case PlanOp::kOutput:
      if (!is_root) {
        report->Add(Severity::kError, "plan-root", -1, id,
                    "output below the root");
      }
      break;
    case PlanOp::kScan:
    case PlanOp::kProject:
      break;
  }
}

bool IsStreaming(PlanOp op) {
  return op == PlanOp::kFilter || op == PlanOp::kProject ||
         op == PlanOp::kLimit;
}

bool IsFullBreaker(PlanOp op) {
  return op == PlanOp::kHashAggregate || op == PlanOp::kSort;
}

/// Pipeline-decomposition invariants: stage-tag coverage, breaker placement,
/// and driving-cardinality sanity against a fresh decomposition. Only runs
/// on structurally sound plans (DecomposePipelines revalidates).
void CheckDecomposition(AnalysisReport* report, const PhysicalPlan& plan) {
  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  if (!decomposition.ok()) {
    report->Add(Severity::kError, "plan-breaker", -1, -1,
                StrFormat("pipeline decomposition failed: %s",
                          decomposition.status().message().c_str()));
    return;
  }

  // Stage tags must match the recomputed decomposition. All -1 means the
  // plan was never annotated (a builder output) and is left alone; anything
  // else — including all-zero tags on a multi-pipeline plan, the signature
  // of dropped breaker annotations — must agree node for node.
  bool annotated = false;
  for (const PlanNode& node : plan.nodes) annotated |= node.stage != -1;
  if (annotated) {
    for (size_t i = 0; i < plan.nodes.size(); ++i) {
      const int expected = decomposition->node_pipeline[i];
      if (plan.nodes[i].stage != expected) {
        report->Add(Severity::kError, "plan-stage", -1, static_cast<int>(i),
                    StrFormat("stage tag %d does not match recomputed "
                              "pipeline %d",
                              plan.nodes[i].stage, expected));
      }
    }
  }

  for (const Pipeline& pipeline : decomposition->pipelines) {
    auto bad = [&](int node, const char* message) {
      report->Add(Severity::kError, "plan-breaker", -1, node,
                  StrFormat("pipeline %d: %s", pipeline.id, message));
    };
    if (pipeline.nodes.size() < 2) {
      bad(pipeline.nodes.empty() ? -1 : pipeline.nodes.front(),
          "fewer than two nodes (a source streaming into a sink is the "
          "minimum)");
      continue;
    }
    const PlanOp source = plan.nodes[static_cast<size_t>(
        pipeline.source())].op;
    if (source != PlanOp::kScan && !IsFullBreaker(source)) {
      bad(pipeline.source(),
          "source must be a table scan or a breaker's materialized output");
    }
    const PlanOp sink = plan.nodes[static_cast<size_t>(pipeline.sink())].op;
    if (pipeline.builds_hash_table) {
      if (sink != PlanOp::kHashJoin) {
        bad(pipeline.sink(),
            "a hash-table-building pipeline must end at a hash join");
      }
    } else if (sink != PlanOp::kOutput && !IsFullBreaker(sink)) {
      bad(pipeline.sink(),
          "sink must be the output, a full breaker, or a join build side");
    }
    for (size_t p = 1; p + 1 < pipeline.nodes.size(); ++p) {
      const int id = pipeline.nodes[p];
      const PlanOp op = plan.nodes[static_cast<size_t>(id)].op;
      if (!IsStreaming(op) && op != PlanOp::kHashJoin) {
        bad(id, "interior operators must stream (or probe a hash join)");
      }
    }
    const double driving = pipeline.driving_cardinality;
    if (!std::isfinite(driving) || driving < 0.0) {
      bad(pipeline.source(), "driving cardinality must be finite and "
                             "non-negative");
    } else if (driving !=
               plan.nodes[static_cast<size_t>(pipeline.source())]
                   .cardinality) {
      bad(pipeline.source(),
          "driving cardinality diverges from the source's cardinality");
    }
  }
}

}  // namespace

AnalysisReport PlanVerifier::Verify(const PhysicalPlan& plan,
                                    const Catalog* catalog) const {
  AnalysisReport report;
  if (plan.nodes.empty()) {
    report.Add(Severity::kError, "plan-empty", -1, -1, "plan has no nodes");
    return report;
  }
  const int n = static_cast<int>(plan.nodes.size());
  std::vector<int> consumers(plan.nodes.size(), 0);
  for (int i = 0; i < n; ++i) {
    const PlanNode& node = plan.nodes[static_cast<size_t>(i)];
    if (!IsPlanOpCode(static_cast<int>(node.op))) {
      report.Add(Severity::kError, "plan-op", -1, i,
                 StrFormat("unknown op code %d", static_cast<int>(node.op)));
      continue;
    }
    CheckShape(&report, i, node.op, node.left, node.right, n, &consumers);
    CheckAnnotations(&report, i, node.cardinality, node.extra, node.width);
    CheckPayload(&report, i, node, /*is_root=*/i == n - 1);
    const double expected_extra = PlanNodeExtra(node);
    if (std::isfinite(node.extra) && node.extra != expected_extra) {
      report.Add(Severity::kError, "plan-extra", -1, i,
                 StrFormat("extra %g diverges from the payload-implied "
                           "value %g",
                           node.extra, expected_extra));
    }
  }
  if (plan.nodes.back().op != PlanOp::kOutput) {
    report.Add(Severity::kError, "plan-root", -1, n - 1,
               "root must be the output node");
  }
  for (int i = 0; i < n - 1; ++i) {
    if (consumers[static_cast<size_t>(i)] != 1) {
      report.Add(Severity::kError, "plan-consumer", -1, i,
                 StrFormat("consumed %d times (plans are trees)",
                           consumers[static_cast<size_t>(i)]));
    }
  }

  if (!report.HasErrors()) CheckDecomposition(&report, plan);

  if (catalog != nullptr && !report.HasErrors()) {
    Result<std::vector<std::vector<ColumnType>>> schemas =
        ResolvePlanSchemas(*catalog, plan);
    if (!schemas.ok()) {
      report.Add(Severity::kError, "plan-schema", -1, -1,
                 std::string(schemas.status().message()));
    } else {
      for (int i = 0; i < n; ++i) {
        double width = 0.0;
        for (ColumnType type : (*schemas)[static_cast<size_t>(i)]) {
          width += ColumnTypeWidthBytes(type);
        }
        if (plan.nodes[static_cast<size_t>(i)].width != width) {
          report.Add(Severity::kWarning, "plan-width", -1, i,
                     StrFormat("width annotation %g diverges from the "
                               "schema width %g",
                               plan.nodes[static_cast<size_t>(i)].width,
                               width));
        }
      }
    }
  }
  return report;
}

AnalysisReport PlanVerifier::VerifyRecords(
    const std::vector<PlanNodeRecord>& records) const {
  AnalysisReport report;
  if (records.empty()) {
    report.Add(Severity::kError, "plan-empty", -1, -1, "plan has no nodes");
    return report;
  }
  const int n = static_cast<int>(records.size());
  std::vector<int> consumers(records.size(), 0);
  for (int i = 0; i < n; ++i) {
    const PlanNodeRecord& record = records[static_cast<size_t>(i)];
    if (!IsPlanOpCode(record.op)) {
      report.Add(Severity::kError, "plan-op", -1, i,
                 StrFormat("unknown op code %d", record.op));
      continue;
    }
    CheckShape(&report, i, static_cast<PlanOp>(record.op), record.left,
               record.right, n, &consumers);
    CheckAnnotations(&report, i, record.cardinality, record.extra,
                     record.width);
    if (record.stage < 0) {
      report.Add(Severity::kError, "plan-stage", -1, i,
                 StrFormat("serialized stage tag %d must be non-negative",
                           record.stage));
    }
    if (static_cast<PlanOp>(record.op) == PlanOp::kOutput && i != n - 1) {
      report.Add(Severity::kError, "plan-root", -1, i,
                 "output below the root");
    }
  }
  if (records.back().op != static_cast<int>(PlanOp::kOutput)) {
    report.Add(Severity::kError, "plan-root", -1, n - 1,
               "root must be the output node");
  }
  for (int i = 0; i < n - 1; ++i) {
    if (consumers[static_cast<size_t>(i)] != 1) {
      report.Add(Severity::kError, "plan-consumer", -1, i,
                 StrFormat("consumed %d times (plans are trees)",
                           consumers[static_cast<size_t>(i)]));
    }
  }
  if (report.HasErrors()) return report;

  // Rehydrate and run the full plan checks (extra consistency, pipeline
  // invariants) over the skeleton.
  Result<PhysicalPlan> plan = PlanFromRecords(records);
  if (!plan.ok()) {
    report.Add(Severity::kError, "plan-payload", -1, -1,
               std::string(plan.status().message()));
    return report;
  }
  report.Merge(Verify(*plan, /*catalog=*/nullptr));
  return report;
}

}  // namespace t3
