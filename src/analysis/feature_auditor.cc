#include "analysis/feature_auditor.h"

#include <cmath>
#include <map>

#include "common/string_util.h"
#include "features/feature_registry.h"
#include "features/stage_catalog.h"

namespace t3 {
namespace {

const char* OpStageName(OpStage stage) {
  switch (stage) {
    case OpStage::kScan:
      return "scan";
    case OpStage::kBuild:
      return "build";
    case OpStage::kProbe:
      return "probe";
    case OpStage::kPassThrough:
      return "pass-through";
    case OpStage::kSink:
      return "sink";
  }
  return "?";
}

bool IsPercentageKind(FeatureKind kind) {
  return kind == FeatureKind::kInPercentage ||
         kind == FeatureKind::kOutPercentage ||
         kind == FeatureKind::kRightPercentage ||
         kind == FeatureKind::kPredicatePercentage;
}

/// Every executor op class and the operator-stages it must map to; the
/// featurizer fails at runtime on any pipeline role missing from the
/// catalog, so lint must fail first.
struct RequiredStages {
  PlanOp op;
  std::vector<OpStage> stages;
};

const std::vector<RequiredStages>& RequiredStageCoverage() {
  static const std::vector<RequiredStages>* required =
      new std::vector<RequiredStages>{
          {PlanOp::kScan, {OpStage::kScan}},
          {PlanOp::kFilter, {OpStage::kPassThrough}},
          {PlanOp::kProject, {OpStage::kPassThrough}},
          {PlanOp::kHashJoin, {OpStage::kProbe, OpStage::kBuild}},
          {PlanOp::kHashAggregate, {OpStage::kBuild, OpStage::kScan}},
          {PlanOp::kSort, {OpStage::kBuild, OpStage::kScan}},
          {PlanOp::kLimit, {OpStage::kPassThrough}},
          {PlanOp::kOutput, {OpStage::kSink}},
      };
  return *required;
}

}  // namespace

AnalysisReport FeatureAuditor::AuditRegistry() const {
  AnalysisReport report;
  const FeatureRegistry& registry = FeatureRegistry::Get();
  const std::vector<StageDef>& catalog = StageCatalog();

  if (registry.num_features() != kFeatureDim) {
    report.Add(Severity::kError, "registry-dim", -1, -1,
               StrFormat("registry has %d features, expected %d",
                         registry.num_features(), kFeatureDim));
  }

  std::map<std::string, int> by_name;
  for (int i = 0; i < registry.num_features(); ++i) {
    const FeatureDef& def = registry.def(i);
    auto inserted = by_name.emplace(def.name, i);
    if (!inserted.second) {
      report.Add(Severity::kError, "registry-name", -1, i,
                 StrFormat("name \"%s\" duplicates feature %d",
                           def.name.c_str(), inserted.first->second));
    }
  }

  // Every (stage, kind) of the catalog plus every predicate slot must claim
  // exactly one in-bounds index, and together they must cover the space.
  std::vector<int> claimed(static_cast<size_t>(registry.num_features()), 0);
  auto claim = [&](int index, const std::string& what) {
    if (index < 0 || index >= registry.num_features()) {
      report.Add(Severity::kError, "registry-coverage", -1, index,
                 StrFormat("%s resolves to out-of-bounds index %d",
                           what.c_str(), index));
      return;
    }
    ++claimed[static_cast<size_t>(index)];
  };
  for (size_t s = 0; s < catalog.size(); ++s) {
    for (FeatureKind kind : catalog[s].kinds) {
      claim(registry.StageFeature(static_cast<int>(s), kind),
            StrFormat("%s_%s", catalog[s].name, FeatureKindName(kind)));
    }
  }
  const int num_pred = kNumPredClasses * kNumPredColumnTypes;
  for (int slot = 0; slot < num_pred; ++slot) {
    claim(registry.PredFeature(slot),
          StrFormat("predicate slot %s", PredClassSlotName(slot)));
  }
  for (int i = 0; i < registry.num_features(); ++i) {
    if (claimed[static_cast<size_t>(i)] != 1) {
      report.Add(Severity::kError, "registry-coverage", -1, i,
                 StrFormat("index %d claimed %d times (must be exactly "
                           "once)",
                           i, claimed[static_cast<size_t>(i)]));
    }
  }

  for (const RequiredStages& required : RequiredStageCoverage()) {
    for (OpStage stage : required.stages) {
      const int index = StageIndexOf(required.op, stage);
      if (index < 0) {
        report.Add(Severity::kError, "registry-stage", -1, -1,
                   StrFormat("operator %s has no %s stage catalog entry",
                             PlanOpName(required.op), OpStageName(stage)));
      }
    }
  }
  for (size_t s = 0; s < catalog.size(); ++s) {
    if (registry.StageFeature(static_cast<int>(s), FeatureKind::kCount) < 0) {
      report.Add(Severity::kError, "registry-count", -1, -1,
                 StrFormat("stage %s carries no count feature",
                           catalog[s].name));
    }
  }

  // Predicate classes must be exhaustive over every comparison x numeric
  // column type, reject string columns, and carry distinct names.
  static const CompareOp kAllCompareOps[] = {CompareOp::kLt, CompareOp::kLe,
                                             CompareOp::kGt, CompareOp::kGe,
                                             CompareOp::kEq, CompareOp::kNe};
  static const ColumnType kNumericTypes[] = {
      ColumnType::kInt64, ColumnType::kFloat64, ColumnType::kDate};
  for (CompareOp cmp : kAllCompareOps) {
    for (ColumnType type : kNumericTypes) {
      const int slot = PredClassSlot(cmp, type);
      if (slot < 0 || slot >= num_pred) {
        report.Add(Severity::kError, "registry-pred", -1, -1,
                   StrFormat("comparison %s has no predicate-class slot",
                             CompareOpName(cmp)));
      }
    }
    if (PredClassSlot(cmp, ColumnType::kString) != -1) {
      report.Add(Severity::kError, "registry-pred", -1, -1,
                 StrFormat("comparison %s maps string columns to a slot",
                           CompareOpName(cmp)));
    }
  }
  std::map<std::string, int> slot_names;
  for (int slot = 0; slot < num_pred; ++slot) {
    auto inserted = slot_names.emplace(PredClassSlotName(slot), slot);
    if (!inserted.second) {
      report.Add(Severity::kError, "registry-pred", -1, -1,
                 StrFormat("slot name \"%s\" duplicates slot %d",
                           PredClassSlotName(slot),
                           inserted.first->second));
    }
  }
  return report;
}

AnalysisReport FeatureAuditor::AuditVector(const std::vector<double>& values,
                                           const std::string& context) const {
  AnalysisReport report;
  if (static_cast<int>(values.size()) != kFeatureDim) {
    report.Add(Severity::kError, "feature-dim", -1, -1,
               StrFormat("%s: %zu values, expected %d", context.c_str(),
                         values.size(), kFeatureDim));
    return report;  // Indices below would misalign with the registry.
  }
  const FeatureRegistry& registry = FeatureRegistry::Get();
  for (int i = 0; i < kFeatureDim; ++i) {
    const FeatureDef& def = registry.def(i);
    const double value = values[static_cast<size_t>(i)];
    if (!std::isfinite(value)) {
      report.Add(Severity::kError, "feature-finite", -1, i,
                 StrFormat("%s: %s = %g must be finite", context.c_str(),
                           def.name.c_str(), value));
      continue;
    }
    if (def.kind == FeatureKind::kCount) {
      if (value < 0.0 || value != std::floor(value)) {
        report.Add(Severity::kError, "feature-count", -1, i,
                   StrFormat("%s: %s = %g must be a non-negative integer",
                             context.c_str(), def.name.c_str(), value));
      }
    } else if (IsPercentageKind(def.kind)) {
      if (value < 0.0 || value > 100.0) {
        report.Add(Severity::kError, "feature-range", -1, i,
                   StrFormat("%s: %s = %g outside [0, 100]",
                             context.c_str(), def.name.c_str(), value));
      }
    } else if (value < 0.0) {
      report.Add(Severity::kError, "feature-range", -1, i,
                 StrFormat("%s: %s = %g must be non-negative",
                           context.c_str(), def.name.c_str(), value));
    }
  }
  return report;
}

AnalysisReport FeatureAuditor::AuditVectorPair(
    const std::vector<double>& feat_true, const std::vector<double>& feat_est,
    const std::string& context) const {
  AnalysisReport report;
  if (feat_true.size() != feat_est.size()) {
    report.Add(Severity::kError, "feature-dim", -1, -1,
               StrFormat("%s: true dim %zu != estimated dim %zu",
                         context.c_str(), feat_true.size(),
                         feat_est.size()));
    return report;
  }
  if (static_cast<int>(feat_true.size()) != kFeatureDim) return report;
  const FeatureRegistry& registry = FeatureRegistry::Get();
  for (int i = 0; i < kFeatureDim; ++i) {
    if (registry.def(i).kind != FeatureKind::kCount) continue;
    if (feat_true[static_cast<size_t>(i)] !=
        feat_est[static_cast<size_t>(i)]) {
      report.Add(Severity::kError, "feature-mode", -1, i,
                 StrFormat("%s: %s differs between modes (%g true vs %g "
                           "estimated); cardinality mode must never change "
                           "plan structure",
                           context.c_str(), registry.def(i).name.c_str(),
                           feat_true[static_cast<size_t>(i)],
                           feat_est[static_cast<size_t>(i)]));
    }
  }
  return report;
}

std::vector<std::string> FeatureAuditor::DeadFeatures(
    const Forest& forest) const {
  if (forest.num_features != kFeatureDim) return {};
  const std::vector<int> splits = FeatureSplitCounts(forest);
  const FeatureRegistry& registry = FeatureRegistry::Get();
  std::vector<std::string> dead;
  for (int i = 0; i < kFeatureDim && i < static_cast<int>(splits.size());
       ++i) {
    if (splits[static_cast<size_t>(i)] == 0) {
      dead.push_back(registry.def(i).name);
    }
  }
  return dead;
}

}  // namespace t3
