#include "analysis/tree_lifter.h"

#include "common/string_util.h"

namespace t3 {
namespace {

/// The instruction starting exactly at `offset`, or nullptr when `offset`
/// is past `end` or not an instruction boundary.
const JitInstruction* At(const std::map<size_t, JitInstruction>& instructions,
                         size_t offset, size_t end) {
  if (offset >= end) return nullptr;
  const auto it = instructions.find(offset);
  return it == instructions.end() ? nullptr : &it->second;
}

}  // namespace

bool TreeLifter::LiftTree(
    const std::map<size_t, JitInstruction>& instructions, size_t begin,
    size_t end, int tree_index, LiftedTree* out,
    AnalysisReport* report) const {
  out->nodes.clear();
  const auto fail = [&](size_t offset, const std::string& message) {
    report->Add(Severity::kError, "unliftable-code", tree_index,
                static_cast<int>(offset), message);
    return false;
  };

  // Pass 1: group the region's instructions into node shapes, front to
  // back. Every node starts with `mov rax, imm64`; the following
  // instruction discriminates leaf from inner node.
  std::map<size_t, int> node_at;     // Group start offset -> node index.
  std::vector<size_t> jump_targets;  // Per inner node.
  std::vector<size_t> fall_offsets;  // Per inner node.
  size_t at = begin;
  while (at < end) {
    const JitInstruction* head = At(instructions, at, end);
    if (head == nullptr) {
      return fail(at, "node start is not an instruction boundary");
    }
    if (head->op != JitOp::kMovRaxImm64) {
      return fail(at, "node does not start with mov rax, imm64");
    }
    LiftedNode node;
    node.offset = at;
    const JitInstruction* select = At(instructions, at + head->length, end);
    if (select == nullptr) {
      return fail(at, "truncated node after mov rax, imm64");
    }
    if (select->op == JitOp::kMovqXmm0Rax) {
      // Leaf: mov rax, value; movq xmm0, rax; ret.
      const JitInstruction* ret =
          At(instructions, select->offset + select->length, end);
      if (ret == nullptr || ret->op != JitOp::kRet) {
        return fail(at, "leaf shape not closed by ret");
      }
      node.is_leaf = true;
      node.value_bits = head->imm;
      at = ret->offset + ret->length;
    } else if (select->op == JitOp::kMovqXmm1Rax) {
      // Inner: mov rax, threshold; movq xmm1, rax; movsd xmm0, [rdi+8k];
      // ucomisd; jcc.
      const JitInstruction* load =
          At(instructions, select->offset + select->length, end);
      if (load == nullptr || (load->op != JitOp::kLoadFeature8 &&
                              load->op != JitOp::kLoadFeature32)) {
        return fail(at, "inner node missing its feature load");
      }
      if (load->disp % 8 != 0) {
        return fail(load->offset,
                    StrFormat("feature load displacement %u not 8-byte "
                              "aligned",
                              load->disp));
      }
      const JitInstruction* compare =
          At(instructions, load->offset + load->length, end);
      if (compare == nullptr || (compare->op != JitOp::kUcomisdXmm1Xmm0 &&
                                 compare->op != JitOp::kUcomisdXmm0Xmm1)) {
        return fail(at, "inner node missing its ucomisd");
      }
      const JitInstruction* branch =
          At(instructions, compare->offset + compare->length, end);
      if (branch == nullptr ||
          (branch->op != JitOp::kJa && branch->op != JitOp::kJb)) {
        return fail(at, "inner node missing its conditional branch");
      }
      // The four ucomisd/jcc combinations, lifted to exact semantics (see
      // LiftedNode). ucomisd a, b + ja is taken iff a > b ordered;
      // + jb iff a < b *or* unordered (unordered sets ZF = PF = CF = 1).
      const bool threshold_first = compare->op == JitOp::kUcomisdXmm1Xmm0;
      const bool jump_above = branch->op == JitOp::kJa;
      node.is_leaf = false;
      node.threshold_bits = head->imm;
      node.feature = static_cast<int>(load->disp / 8);
      node.cmp = threshold_first == jump_above ? LiftedNode::Cmp::kLt
                                               : LiftedNode::Cmp::kGt;
      node.nan_jumps = !jump_above;
      jump_targets.push_back(branch->target);
      fall_offsets.push_back(branch->offset + branch->length);
      at = branch->offset + branch->length;
    } else {
      return fail(at, "mov rax, imm64 followed by neither movq form");
    }
    node_at[node.offset] = static_cast<int>(out->nodes.size());
    out->nodes.push_back(node);
  }
  if (out->nodes.empty()) {
    return fail(begin, "empty tree region");
  }

  // Pass 2: link children. Fallthroughs point at the next group by
  // construction unless the region's last node is an inner node; jump
  // targets must land on a lifted node boundary (an instruction boundary is
  // not enough — jumping into the middle of a node's compare sequence has
  // no tree meaning).
  size_t inner = 0;
  for (LiftedNode& node : out->nodes) {
    if (node.is_leaf) continue;
    const size_t target = jump_targets[inner];
    const size_t fall = fall_offsets[inner];
    ++inner;
    const auto jump_it = node_at.find(target);
    if (jump_it == node_at.end()) {
      return fail(node.offset,
                  StrFormat("branch to offset %zu, which is not a lifted "
                            "node boundary",
                            target));
    }
    node.jump_child = jump_it->second;
    const auto fall_it = node_at.find(fall);
    if (fall_it == node_at.end()) {
      return fail(node.offset,
                  "inner node falls through past the end of its region");
    }
    node.fall_child = fall_it->second;
  }

  // Pass 3: the lifted graph must be acyclic — cyclic machine code can
  // loop forever, which no decision tree does. Iterative DFS, colors:
  // 0 = unvisited, 1 = on the current path, 2 = done.
  std::vector<char> color(out->nodes.size(), 0);
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const int index = stack.back();
    const LiftedNode& node = out->nodes[static_cast<size_t>(index)];
    if (color[static_cast<size_t>(index)] == 0) {
      color[static_cast<size_t>(index)] = 1;
      if (!node.is_leaf) {
        for (const int child : {node.jump_child, node.fall_child}) {
          if (color[static_cast<size_t>(child)] == 1) {
            report->Add(Severity::kError, "lifted-cycle", tree_index,
                        static_cast<int>(node.offset),
                        "branch creates a control-flow cycle");
            return false;
          }
          if (color[static_cast<size_t>(child)] == 0) stack.push_back(child);
        }
      }
    } else {
      if (color[static_cast<size_t>(index)] == 1) {
        color[static_cast<size_t>(index)] = 2;
      }
      stack.pop_back();
    }
  }
  return true;
}

void TreeLifter::LiftForest(const uint8_t* code, size_t size,
                            const std::vector<size_t>& entries,
                            std::vector<LiftedTree>* out,
                            AnalysisReport* report) const {
  out->clear();
  const DecodedCode decoded = DecodeLinear(code, size);
  if (!decoded.ok) {
    report->Add(Severity::kError, "undecodable-code", -1,
                static_cast<int>(decoded.error_offset),
                StrFormat("byte 0x%02X at offset %zu is not in the emitter "
                          "whitelist",
                          code[decoded.error_offset], decoded.error_offset));
    return;
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    const size_t begin = entries[i];
    const size_t end = i + 1 < entries.size() ? entries[i + 1] : size;
    if (begin >= end || end > size) {
      report->Add(Severity::kError, "unliftable-code", static_cast<int>(i),
                  static_cast<int>(begin),
                  StrFormat("region [%zu, %zu) is empty or out of bounds",
                            begin, end));
      return;
    }
    LiftedTree tree;
    if (!LiftTree(decoded.instructions, begin, end, static_cast<int>(i),
                  &tree, report)) {
      return;
    }
    out->push_back(std::move(tree));
  }
}

}  // namespace t3
