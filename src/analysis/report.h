#ifndef T3_ANALYSIS_REPORT_H_
#define T3_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace t3 {

/// How bad a finding is. Errors make a model unusable (the loader and the
/// JIT reject it); warnings flag suspicious-but-runnable structure (dead
/// branches, duplicate splits) worth fixing in the trainer or the fixture.
enum class Severity {
  kWarning = 0,
  kError = 1,
};

const char* SeverityName(Severity severity);

/// One finding of a static-analysis pass, anchored to a location:
///  - ForestVerifier: `tree` / `node` index into the Forest IR (-1 when the
///    finding is forest-global, e.g. a bad feature count).
///  - JitCodeAuditor: `tree` is the function region, `node` the byte offset
///    of the offending instruction inside the code buffer.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check;    ///< Stable kebab-case check id, e.g. "dead-branch".
  int tree = -1;
  int node = -1;
  std::string message;

  /// "error[bad-feature-index] tree 3 node 7: feature 52 out of range".
  std::string ToString() const;
};

/// The collected findings of one pass (or several passes appended into one
/// report). Unlike Status-returning validation, a report keeps going after
/// the first problem so a linter can show everything at once.
class AnalysisReport {
 public:
  void Add(Severity severity, std::string check, int tree, int node,
           std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t NumErrors() const;
  size_t NumWarnings() const;
  bool HasErrors() const { return NumErrors() > 0; }

  /// Appends another pass's findings (e.g. verifier + auditor into one
  /// lint report).
  void Merge(const AnalysisReport& other);

  /// One diagnostic per line, errors first within stable order.
  std::string ToString() const;

  /// OK when error-free; otherwise an InvalidArgument Status carrying the
  /// first error's text and the total error count — the bridge from the
  /// diagnostic world to Status-returning loaders.
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace t3

#endif  // T3_ANALYSIS_REPORT_H_
