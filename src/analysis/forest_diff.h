#ifndef T3_ANALYSIS_FOREST_DIFF_H_
#define T3_ANALYSIS_FOREST_DIFF_H_

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "gbt/forest.h"

namespace t3 {

/// Static bounds on a(x) - b(x) over the entire feature space (NaN inputs
/// included): a(x) - b(x) is in [min, max] for every row x.
struct ForestDiffBounds {
  double min = 0.0;
  double max = 0.0;

  /// Bound on max |a(x) - b(x)|. Zero iff the two forests are proven to
  /// agree everywhere.
  double MaxAbs() const { return std::max(std::abs(min), std::abs(max)); }
};

/// Statically bounds the output divergence between two forests on the same
/// feature space — the retraining-drift check for the harness's model
/// cache: how far can predictions move if a cached model is replaced by a
/// retrained one, over *every* possible input, not a sample.
///
/// Built on the interval machinery of the translation validator
/// (analysis/interval_domain.h). Trees are paired by index; for each pair
/// the divergence range is computed *exactly* by intersecting every leaf
/// cell of a's tree with the cells of b's tree (axis-aligned splits make
/// every intersection an exact box, including NaN routing). Unpaired
/// trailing trees contribute their reachable-leaf value range. The per-pair
/// ranges are summed, so the overall bound is sound (max of a sum never
/// exceeds the sum of maxima) and tight exactly when per-tree worst cases
/// can co-occur; bit-identical forests yield exactly [0, 0].
///
/// Fails with InvalidArgument when either forest fails Forest::Validate or
/// the feature counts differ.
Result<ForestDiffBounds> ForestDiff(const Forest& a, const Forest& b);

}  // namespace t3

#endif  // T3_ANALYSIS_FOREST_DIFF_H_
