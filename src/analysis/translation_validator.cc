#include "analysis/translation_validator.h"

#include <cmath>
#include <utility>

#include "analysis/interval_domain.h"
#include "analysis/tree_lifter.h"
#include "common/string_util.h"

namespace t3 {
namespace {

/// Compact witness text: the constrained features of a box, as one concrete
/// row ("x[3]=0.5, x[7]=nan"), capped so a wide model cannot flood a
/// diagnostic line.
std::string WitnessText(const FeatureBox& box) {
  std::string out;
  int listed = 0;
  const std::vector<double> row = box.Witness();
  for (size_t f = 0; f < box.ranges.size(); ++f) {
    const FeatureRange& range = box.ranges[f];
    const bool constrained =
        range.lo != kMinKey || range.hi != kMaxKey || !range.nan;
    if (!constrained) continue;
    if (listed == 8) {
      out += ", ...";
      break;
    }
    if (listed > 0) out += ", ";
    out += StrFormat("x[%zu]=%.17g", f, row[f]);
    ++listed;
  }
  return out.empty() ? "any row" : out;
}

}  // namespace

/// Reports every mismatch; descent stops below a shape or polarity mismatch
/// where the correspondence is no longer defined.
void CheckLiftedTreeStructure(const Tree& tree, const LiftedTree& lifted,
                              int tree_index, AnalysisReport* report) {
  struct Frame {
    int ir;
    int code;
  };
  std::vector<Frame> stack = {{0, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const TreeNode& ir = tree.nodes[static_cast<size_t>(frame.ir)];
    const LiftedNode& code = lifted.nodes[static_cast<size_t>(frame.code)];
    const int at = static_cast<int>(code.offset);
    if (ir.is_leaf != code.is_leaf) {
      report->Add(Severity::kError, "shape-mismatch", tree_index, at,
                  StrFormat("IR node %d is a %s but the compiled node is a "
                            "%s",
                            frame.ir, ir.is_leaf ? "leaf" : "split",
                            code.is_leaf ? "leaf" : "split"));
      continue;
    }
    if (ir.is_leaf) {
      if (DoubleBits(ir.value) != code.value_bits) {
        report->Add(Severity::kError, "leaf-value-mismatch", tree_index, at,
                    StrFormat("IR leaf %d returns %.17g but the compiled "
                              "leaf returns bits 0x%016llX",
                              frame.ir, ir.value,
                              static_cast<unsigned long long>(
                                  code.value_bits)));
      }
      continue;
    }
    if (code.cmp != LiftedNode::Cmp::kLt) {
      // The emitter only produces jump-on-(x < t); a kGt lift means a
      // swapped ja/jb byte. The semantic pass pins down the exact cells
      // where the swap changes the output.
      report->Add(Severity::kError, "branch-polarity-mismatch", tree_index,
                  at,
                  StrFormat("compiled node branches on x[%d] > threshold; "
                            "the emitter only produces x < threshold",
                            code.feature));
      continue;
    }
    if (ir.feature != code.feature) {
      report->Add(Severity::kError, "feature-mismatch", tree_index, at,
                  StrFormat("IR node %d splits on feature %d but the "
                            "compiled node loads feature %d",
                            frame.ir, ir.feature, code.feature));
    }
    if (DoubleBits(ir.threshold) != code.threshold_bits) {
      report->Add(Severity::kError, "threshold-mismatch", tree_index, at,
                  StrFormat("IR node %d threshold %.17g differs from "
                            "compiled threshold bits 0x%016llX",
                            frame.ir, ir.threshold,
                            static_cast<unsigned long long>(
                                code.threshold_bits)));
    }
    if (ir.default_left != code.nan_jumps) {
      report->Add(Severity::kError, "nan-routing-mismatch", tree_index, at,
                  StrFormat("IR node %d routes NaN %s but the compiled node "
                            "routes NaN %s",
                            frame.ir, ir.default_left ? "left" : "right",
                            code.nan_jumps ? "left" : "right"));
    }
    stack.push_back(Frame{ir.right, code.fall_child});
    stack.push_back(Frame{ir.left, code.jump_child});
  }
}

namespace {

/// Refines `box` by a lifted node's predicate and pushes the feasible
/// successor boxes onto `stack`. A NaN threshold (possible only in corrupt
/// code) makes ucomisd unconditionally unordered, so every input — NaN or
/// not — takes the jump iff the branch triggers on unordered.
struct LiftedFrame {
  int node;
  FeatureBox box;
};

void PushLiftedChildren(const LiftedNode& node, const FeatureBox& box,
                        std::vector<LiftedFrame>* stack) {
  const double threshold = DoubleFromBits(node.threshold_bits);
  if (std::isnan(threshold)) {
    stack->push_back(
        LiftedFrame{node.nan_jumps ? node.jump_child : node.fall_child, box});
    return;
  }
  FeatureBox jump_box =
      node.cmp == LiftedNode::Cmp::kLt
          ? box.Below(node.feature, threshold, node.nan_jumps)
          : box.Above(node.feature, threshold, node.nan_jumps);
  FeatureBox fall_box =
      node.cmp == LiftedNode::Cmp::kLt
          ? box.AtOrAbove(node.feature, threshold, !node.nan_jumps)
          : box.AtOrBelow(node.feature, threshold, !node.nan_jumps);
  if (jump_box.Feasible()) {
    stack->push_back(LiftedFrame{node.jump_child, std::move(jump_box)});
  }
  if (fall_box.Feasible()) {
    stack->push_back(LiftedFrame{node.fall_child, std::move(fall_box)});
  }
}

}  // namespace

/// Reports the first offending cell with a concrete witness row, then stops
/// (one flipped threshold byte shifts many cells; one witness per tree is
/// the useful signal).
void CheckLiftedTreeSemantics(const Tree& tree, const LiftedTree& lifted,
                              int num_features, int tree_index,
                              AnalysisReport* report) {
  bool mismatch_reported = false;
  ForEachLeafCell(
      tree, FeatureBox::Full(num_features),
      [&](int ir_leaf, const FeatureBox& cell) {
        if (mismatch_reported) return;
        const uint64_t want_bits = DoubleBits(
            tree.nodes[static_cast<size_t>(ir_leaf)].value);
        std::vector<LiftedFrame> stack = {{0, cell}};
        while (!stack.empty() && !mismatch_reported) {
          LiftedFrame frame = std::move(stack.back());
          stack.pop_back();
          const LiftedNode& node =
              lifted.nodes[static_cast<size_t>(frame.node)];
          if (!node.is_leaf) {
            PushLiftedChildren(node, frame.box, &stack);
            continue;
          }
          if (node.value_bits == want_bits) continue;
          mismatch_reported = true;
          report->Add(
              Severity::kError, "semantic-mismatch", tree_index,
              static_cast<int>(node.offset),
              StrFormat("compiled tree returns %.17g where IR leaf %d "
                        "returns %.17g, e.g. on %s",
                        DoubleFromBits(node.value_bits), ir_leaf,
                        tree.nodes[static_cast<size_t>(ir_leaf)].value,
                        WitnessText(frame.box).c_str()));
        }
      });
}

AnalysisReport TranslationValidator::Validate(
    const Forest& forest, const uint8_t* code, size_t size,
    const std::vector<size_t>& entries) const {
  AnalysisReport report;
  const Status valid = forest.Validate();
  if (!valid.ok()) {
    report.Add(Severity::kError, "invalid-forest", -1, -1,
               StrFormat("IR side of the equivalence check is invalid: %s",
                         valid.message().c_str()));
    return report;
  }
  if (entries.size() != forest.trees.size()) {
    report.Add(Severity::kError, "tree-count-mismatch", -1, -1,
               StrFormat("%zu code regions for %zu IR trees",
                         entries.size(), forest.trees.size()));
    return report;
  }

  std::vector<LiftedTree> lifted;
  TreeLifter().LiftForest(code, size, entries, &lifted, &report);
  if (report.HasErrors()) return report;

  for (size_t t = 0; t < forest.trees.size(); ++t) {
    const int tree_index = static_cast<int>(t);
    // A lifted feature outside the row makes the box arithmetic (and the
    // compiled load itself) meaningless; the auditor reports the same
    // condition as oob-feature-load on its own pass.
    bool features_ok = true;
    for (const LiftedNode& node : lifted[t].nodes) {
      if (node.is_leaf) continue;
      if (node.feature < 0 || node.feature >= forest.num_features) {
        report.Add(Severity::kError, "lifted-feature-oob", tree_index,
                   static_cast<int>(node.offset),
                   StrFormat("compiled node loads feature %d of a "
                             "%d-feature row",
                             node.feature, forest.num_features));
        features_ok = false;
      }
    }
    CheckLiftedTreeStructure(forest.trees[t], lifted[t], tree_index, &report);
    if (features_ok) {
      CheckLiftedTreeSemantics(forest.trees[t], lifted[t],
                               forest.num_features, tree_index, &report);
    }
  }
  return report;
}

}  // namespace t3
