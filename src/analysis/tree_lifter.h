#ifndef T3_ANALYSIS_TREE_LIFTER_H_
#define T3_ANALYSIS_TREE_LIFTER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "analysis/report.h"
#include "analysis/x86_decoder.h"

namespace t3 {

/// One node of a decision tree lifted back out of emitted machine code.
///
/// An inner node is a branch: control transfers to `jump_child` when the
/// lifted predicate holds and falls through to `fall_child` otherwise. The
/// predicate is `x[feature] <cmp> threshold`, with NaN (any unordered
/// ucomisd) taking the jump iff `nan_jumps`. All four ucomisd/jcc
/// combinations the decoder can see are liftable:
///
///   ucomisd xmm1, xmm0 ; ja   ->  jump iff x < t,  NaN falls through
///   ucomisd xmm0, xmm1 ; jb   ->  jump iff x < t,  NaN jumps
///   ucomisd xmm1, xmm0 ; jb   ->  jump iff x > t,  NaN jumps
///   ucomisd xmm0, xmm1 ; ja   ->  jump iff x > t,  NaN falls through
///
/// The emitter only ever produces the first two (jump = left child), but the
/// lifter models the full semantics so a corrupted buffer (e.g. a swapped
/// branch-polarity byte) lifts to *what the bytes actually compute* and is
/// then caught as an equivalence error, not hidden behind a parse failure.
struct LiftedNode {
  enum class Cmp { kLt, kGt };

  bool is_leaf = false;
  size_t offset = 0;        ///< Byte offset of the node's first instruction.
  uint64_t value_bits = 0;  ///< Leaf: returned double, as raw bits.
  int feature = -1;
  uint64_t threshold_bits = 0;  ///< Raw bits — may be NaN in corrupt code.
  Cmp cmp = Cmp::kLt;
  bool nan_jumps = false;
  int jump_child = -1;
  int fall_child = -1;
};

/// One tree function lifted from its code region. Node 0 is the entry.
/// The node graph is guaranteed acyclic (the lifter rejects cycles), but it
/// may be a DAG in corrupt code — consumers must not assume a tree.
struct LiftedTree {
  std::vector<LiftedNode> nodes;
};

/// Lifts every tree region of an emitted buffer back into decision trees.
///
/// Consumes the shared decoder's instruction stream (the same one
/// JitCodeAuditor audits) and pattern-matches the emitter's two node
/// shapes — leaf: `mov rax, bits; movq xmm0, rax; ret`; inner: `mov rax,
/// bits; movq xmm1, rax; movsd xmm0, [rdi+8k]; ucomisd; jcc` — grouping the
/// region's instructions into nodes and linking jump targets and
/// fallthroughs. Diagnostics (all Error severity):
///
///  - `undecodable-code`: the buffer does not linearly decode.
///  - `unliftable-code`: a region's instructions do not group into the two
///    node shapes (e.g. a stray compare, a branch into the middle of a
///    node, or a region not starting with `mov rax`).
///  - `lifted-cycle`: a branch creates a control-flow cycle — the machine
///    code can loop forever, which no decision tree does.
///
/// Lifting is pure byte inspection and runs on any host.
class TreeLifter {
 public:
  /// Lifts all regions ([entries[i], entries[i+1]), last closed by `size`).
  /// On success `out` has one LiftedTree per entry. Any diagnostic means
  /// the corresponding tree (and possibly later ones) is missing from
  /// `out`; callers must check `report->HasErrors()` first.
  void LiftForest(const uint8_t* code, size_t size,
                  const std::vector<size_t>& entries,
                  std::vector<LiftedTree>* out, AnalysisReport* report) const;

  /// Lifts one region [begin, end) of an already-decoded buffer. Returns
  /// false (with diagnostics appended, `tree_index` as location) on any
  /// lift failure.
  bool LiftTree(const std::map<size_t, JitInstruction>& instructions,
                size_t begin, size_t end, int tree_index, LiftedTree* out,
                AnalysisReport* report) const;
};

}  // namespace t3

#endif  // T3_ANALYSIS_TREE_LIFTER_H_
