#include "analysis/forest_verifier.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/string_util.h"

namespace t3 {
namespace {

/// Structural + semantic error checks for one tree. Returns true when the
/// tree is clean enough (single-reach, in-range children and features,
/// finite thresholds) for the interval-analysis warning passes to walk it.
bool CheckTreeStructure(const Forest& forest, int tree_index,
                        AnalysisReport* report) {
  const Tree& tree = forest.trees[static_cast<size_t>(tree_index)];
  const int n = static_cast<int>(tree.nodes.size());
  if (n == 0) {
    report->Add(Severity::kError, "empty-tree", tree_index, -1,
                "tree has no nodes");
    return false;
  }

  bool walkable = true;
  size_t leaves = 0;
  for (int i = 0; i < n; ++i) {
    const TreeNode& node = tree.nodes[static_cast<size_t>(i)];
    if (node.is_leaf) {
      ++leaves;
      if (!std::isfinite(node.value)) {
        report->Add(Severity::kError, "nonfinite-leaf-value", tree_index, i,
                    "leaf value is NaN or infinite");
      }
      continue;
    }
    if (node.feature < 0 || node.feature >= forest.num_features) {
      report->Add(
          Severity::kError, "bad-feature-index", tree_index, i,
          StrFormat("split feature %d outside [0, %d)", node.feature,
                    forest.num_features));
      walkable = false;  // The walker indexes per-feature bound arrays.
    }
    if (!std::isfinite(node.threshold)) {
      report->Add(Severity::kError, "nonfinite-threshold", tree_index, i,
                  "split threshold is NaN or infinite");
      walkable = false;  // Interval bounds are meaningless with NaN splits.
    }
    for (const int child : {node.left, node.right}) {
      if (child < 0 || child >= n) {
        report->Add(Severity::kError, "missing-child", tree_index, i,
                    StrFormat("child index %d outside the %d-node tree",
                              child, n));
        walkable = false;
      }
    }
  }
  if (leaves != static_cast<size_t>(n) - leaves + 1) {
    report->Add(Severity::kError, "leaf-count-mismatch", tree_index, -1,
                StrFormat("%zu leaves but %zu inner nodes (want inner + 1)",
                          leaves, static_cast<size_t>(n) - leaves));
  }
  if (!walkable) return false;

  // Reachability: every node must be reached from the root exactly once.
  std::vector<char> seen(static_cast<size_t>(n), 0);
  std::vector<int> stack = {0};
  seen[0] = 1;
  int visited = 1;
  bool shared = false;
  while (!stack.empty()) {
    const TreeNode& node = tree.nodes[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (node.is_leaf) continue;
    for (const int child : {node.left, node.right}) {
      if (seen[static_cast<size_t>(child)]) {
        report->Add(Severity::kError, "node-shared", tree_index, child,
                    "node reachable twice from the root (cycle or diamond)");
        shared = true;
        continue;  // Do not re-walk: a cycle would never terminate.
      }
      seen[static_cast<size_t>(child)] = 1;
      ++visited;
      stack.push_back(child);
    }
  }
  for (int i = 0; i < n && visited < n; ++i) {
    if (!seen[static_cast<size_t>(i)]) {
      report->Add(Severity::kError, "orphan-node", tree_index, i,
                  "node unreachable from the root");
    }
  }
  return !shared && visited == n;
}

/// Interval-analysis warning passes over one structurally clean tree.
/// Walks root-to-leaf carrying, per feature, the half-open interval
/// [lo, hi) that ancestor splits allow a (non-NaN) value to lie in, plus
/// whether a NaN can still flow here (each split on f routes NaN to exactly
/// one side). Iterative DFS with explicit restore frames — corrupt input
/// must not be able to overflow the call stack.
class IntervalWalker {
 public:
  IntervalWalker(const Forest& forest, int tree_index,
                 const VerifyOptions& options, AnalysisReport* report)
      : tree_(forest.trees[static_cast<size_t>(tree_index)]),
        tree_index_(tree_index),
        options_(options),
        report_(report),
        lo_(static_cast<size_t>(forest.num_features),
            -std::numeric_limits<double>::infinity()),
        hi_(static_cast<size_t>(forest.num_features),
            std::numeric_limits<double>::infinity()),
        nan_possible_(static_cast<size_t>(forest.num_features), 1) {}

  void Walk() {
    stack_.push_back(Event{Event::kVisit, 0, {}, false});
    while (!stack_.empty()) {
      const Event event = stack_.back();
      stack_.pop_back();
      const size_t f = static_cast<size_t>(event.state.feature);
      if (event.kind == Event::kRestore) {
        lo_[f] = event.state.lo;
        hi_[f] = event.state.hi;
        nan_possible_[f] = event.state.nan_possible;
        continue;
      }
      if (event.has_state) {
        lo_[f] = event.state.lo;
        hi_[f] = event.state.hi;
        nan_possible_[f] = event.state.nan_possible;
      }
      VisitNode(event.node);
    }
  }

 private:
  /// The interval state of one feature: lo <= x < hi for every non-NaN x
  /// that reaches the current node, and whether NaN can still reach it.
  struct FeatureState {
    int feature = 0;
    double lo = 0.0;
    double hi = 0.0;
    char nan_possible = 0;
  };
  struct Event {
    enum Kind { kVisit, kRestore };
    Kind kind;
    int node;            // kVisit only.
    FeatureState state;  // kVisit: bounds to install first; kRestore: undo.
    bool has_state;
  };

  void VisitNode(int index) {
    const TreeNode& node = tree_.nodes[static_cast<size_t>(index)];
    if (node.is_leaf) return;
    const size_t f = static_cast<size_t>(node.feature);
    const double t = node.threshold;

    if (options_.warn_duplicate_thresholds && (t == lo_[f] || t == hi_[f])) {
      // Interval bounds on f only ever come from ancestor splits on f, so
      // hitting one exactly means an identical (feature, threshold) pair.
      report_->Add(Severity::kWarning, "duplicate-threshold", tree_index_,
                   index,
                   StrFormat("repeats an ancestor split on feature %d",
                             node.feature));
    }
    if (options_.warn_dead_branches) {
      const bool nan_goes_left = nan_possible_[f] != 0 && node.default_left;
      const bool nan_goes_right = nan_possible_[f] != 0 && !node.default_left;
      if (t <= lo_[f] && !nan_goes_left) {
        report_->Add(Severity::kWarning, "dead-branch", tree_index_, index,
                     StrFormat("left child unreachable: x[%d] >= %.17g here "
                               "but split needs x < %.17g",
                               node.feature, lo_[f], t));
      }
      if (t >= hi_[f] && !nan_goes_right) {
        report_->Add(Severity::kWarning, "dead-branch", tree_index_, index,
                     StrFormat("right child unreachable: x[%d] < %.17g here "
                               "but split needs x >= %.17g",
                               node.feature, hi_[f], t));
      }
    }

    const FeatureState saved{node.feature, lo_[f], hi_[f], nan_possible_[f]};
    const FeatureState left{
        node.feature, saved.lo, std::min(saved.hi, t),
        static_cast<char>(saved.nan_possible != 0 && node.default_left)};
    const FeatureState right{
        node.feature, std::max(saved.lo, t), saved.hi,
        static_cast<char>(saved.nan_possible != 0 && !node.default_left)};
    // LIFO: right subtree runs first, its restore rewinds f, then the left
    // subtree, then the final restore rewinds for our own siblings.
    stack_.push_back(Event{Event::kRestore, 0, saved, true});
    stack_.push_back(Event{Event::kVisit, node.left, left, true});
    stack_.push_back(Event{Event::kRestore, 0, saved, true});
    stack_.push_back(Event{Event::kVisit, node.right, right, true});
  }

  const Tree& tree_;
  const int tree_index_;
  const VerifyOptions& options_;
  AnalysisReport* report_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<char> nan_possible_;
  std::vector<Event> stack_;
};

}  // namespace

AnalysisReport ForestVerifier::Verify(const Forest& forest) const {
  AnalysisReport report;
  if (forest.num_features <= 0) {
    report.Add(Severity::kError, "bad-num-features", -1, -1,
               StrFormat("num_features is %d, need > 0", forest.num_features));
  }
  if (!std::isfinite(forest.base_score)) {
    report.Add(Severity::kError, "nonfinite-base-score", -1, -1,
               "base_score is NaN or infinite");
  }

  // default_left values seen per feature across the forest, for the
  // NaN-routing consistency warning: bit 0 = false seen, bit 1 = true seen.
  std::vector<char> routing(
      forest.num_features > 0 ? static_cast<size_t>(forest.num_features) : 0,
      0);

  for (size_t t = 0; t < forest.trees.size(); ++t) {
    const int tree_index = static_cast<int>(t);
    const bool walkable = CheckTreeStructure(forest, tree_index, &report);
    if (!walkable) continue;
    for (size_t n = 0; n < forest.trees[t].nodes.size(); ++n) {
      const TreeNode& node = forest.trees[t].nodes[n];
      if (node.is_leaf || node.feature < 0 ||
          node.feature >= forest.num_features) {
        continue;
      }
      routing[static_cast<size_t>(node.feature)] |=
          node.default_left ? 2 : 1;
    }
    if (forest.num_features > 0 &&
        (options_.warn_dead_branches || options_.warn_duplicate_thresholds)) {
      IntervalWalker walker(forest, tree_index, options_, &report);
      walker.Walk();
    }
  }

  if (options_.warn_inconsistent_nan_routing) {
    for (size_t f = 0; f < routing.size(); ++f) {
      if (routing[f] == 3) {
        report.Add(Severity::kWarning, "inconsistent-nan-routing", -1, -1,
                   StrFormat("feature %zu splits route NaN both left and "
                             "right across the forest",
                             f));
      }
    }
  }
  return report;
}

}  // namespace t3
