#include "analysis/batch_equivalence_validator.h"

#include <map>
#include <string>
#include <utility>

#include "analysis/interval_domain.h"
#include "analysis/translation_validator.h"
#include "analysis/tree_lifter.h"
#include "analysis/x86_decoder.h"
#include "common/string_util.h"

namespace t3 {
namespace {

// Register roles and vcmppd predicates of the batch emitter's grammar; must
// stay in lockstep with treejit's BatchForestEmitter.
constexpr uint8_t kAcc0 = 0;     // leaf-value accumulator, lanes 0-3
constexpr uint8_t kAcc1 = 1;     // leaf-value accumulator, lanes 4-7
constexpr uint8_t kConst = 2;    // broadcast pool constant
constexpr uint8_t kCmp0 = 3;     // split compare result, lanes 0-3
constexpr uint8_t kCmp1 = 4;     // split compare result, lanes 4-7
constexpr uint8_t kMask0 = 5;    // live path mask, lanes 0-3
constexpr uint8_t kMask1 = 6;    // live path mask, lanes 4-7
constexpr uint8_t kScratch = 7;
constexpr uint8_t kPredTrue = 0x0F;      // TRUE_UQ: all-ones mask init
constexpr uint8_t kPredNanRight = 0x1E;  // GT_OQ: t > x, NaN -> fall/right
constexpr uint8_t kPredNanLeft = 0x16;   // NLE_UQ: !(t <= x), NaN -> jump/left
constexpr uint32_t kHalfBytes = 32;      // one ymm half: 4 lanes of 8 bytes
constexpr uint32_t kFeatureStrideBytes = 64;  // 8 lanes per feature

/// Parses one kernel region against the batch emitter's closed grammar and
/// lifts it into a LiftedTree (jump_child = mask-true/left, fall_child =
/// mask-false/right, cmp always `x < threshold`). Every deviation — a
/// register out of role, a spill at the wrong depth, a missing resume load,
/// a foreign predicate — fails the parse with the offending byte offset.
class KernelParser {
 public:
  KernelParser(const std::map<size_t, JitInstruction>& instructions,
               const uint8_t* code, size_t size, size_t pool_begin,
               size_t begin, size_t end, int tree_index,
               AnalysisReport* report)
      : instructions_(instructions),
        code_(code),
        size_(size),
        pool_begin_(pool_begin),
        begin_(begin),
        end_(end),
        tree_index_(tree_index),
        report_(report) {}

  bool Parse(LiftedTree* out) {
    at_ = begin_;
    const JitInstruction* instr = Peek();
    if (instr == nullptr) return Fail("empty kernel region");
    bool has_frame = false;
    uint32_t frame = 0;
    if (instr->op == JitOp::kSubRspImm32) {
      has_frame = true;
      frame = instr->disp;
      Take();
    }
    if (!ExpectRR(JitOp::kVxorpd, kAcc0, kAcc0, kAcc0,
                  "expected vxorpd zeroing accumulator ymm0") ||
        !ExpectRR(JitOp::kVxorpd, kAcc1, kAcc1, kAcc1,
                  "expected vxorpd zeroing accumulator ymm1") ||
        !ExpectMaskInit(kMask0) || !ExpectMaskInit(kMask1)) {
      return false;
    }
    if (!ParseBody(has_frame, out)) return false;
    if (!ExpectAccAdd(kAcc0, 0) ||
        !ExpectMem(JitOp::kVmovupdStoreRsi, kAcc0, 0,
                   "expected vmovupd storing accumulator ymm0") ||
        !ExpectAccAdd(kAcc1, kHalfBytes) ||
        !ExpectMem(JitOp::kVmovupdStoreRsi, kAcc1, kHalfBytes,
                   "expected vmovupd storing accumulator ymm1")) {
      return false;
    }
    if (has_frame) {
      const JitInstruction* add = Peek();
      if (add == nullptr || add->op != JitOp::kAddRspImm32 ||
          add->disp != frame) {
        return Fail("expected add rsp matching the kernel's sub rsp");
      }
      Take();
    }
    const JitInstruction* vz = Peek();
    if (vz == nullptr || vz->op != JitOp::kVzeroupper) {
      return Fail("expected vzeroupper before ret");
    }
    Take();
    const JitInstruction* ret = Peek();
    if (ret == nullptr || ret->op != JitOp::kRet) return Fail("expected ret");
    Take();
    if (at_ != end_) return Fail("instructions after the kernel's ret");
    return true;
  }

 private:
  struct Pending {
    int node;
    int depth;
    bool parsed_left;
  };

  const JitInstruction* Peek() {
    if (at_ >= end_) return nullptr;
    const auto it = instructions_.find(at_);
    return it == instructions_.end() ? nullptr : &it->second;
  }

  void Take() {
    const JitInstruction* instr = Peek();
    if (instr != nullptr) at_ += instr->length;
  }

  bool Fail(const char* what) {
    report_->Add(Severity::kError, "unliftable-batch-code", tree_index_,
                 static_cast<int>(at_),
                 StrFormat("batch kernel diverges from the emitter grammar "
                           "at byte offset %zu: %s",
                           at_, what));
    return false;
  }

  bool ExpectRR(JitOp op, uint8_t dst, uint8_t src1, uint8_t src2,
                const char* what) {
    const JitInstruction* instr = Peek();
    if (instr == nullptr || instr->op != op || instr->dst != dst ||
        instr->src1 != src1 || instr->src2 != src2) {
      return Fail(what);
    }
    Take();
    return true;
  }

  bool ExpectMem(JitOp op, uint8_t reg, uint32_t disp, const char* what) {
    const JitInstruction* instr = Peek();
    if (instr == nullptr || instr->op != op || instr->dst != reg ||
        instr->disp != disp) {
      return Fail(what);
    }
    Take();
    return true;
  }

  bool ExpectMaskInit(uint8_t mask) {
    const JitInstruction* instr = Peek();
    if (instr == nullptr || instr->op != JitOp::kVcmppdRR ||
        instr->dst != mask || instr->src1 != mask || instr->src2 != mask ||
        instr->pred != kPredTrue) {
      return Fail("expected vcmppd TRUE_UQ all-ones path-mask init");
    }
    Take();
    return true;
  }

  bool ExpectAccAdd(uint8_t acc, uint32_t disp) {
    const JitInstruction* instr = Peek();
    if (instr == nullptr || instr->op != JitOp::kVaddpdRsiMem ||
        instr->dst != acc || instr->src1 != acc || instr->disp != disp) {
      return Fail("expected vaddpd accumulating into [rsi]");
    }
    Take();
    return true;
  }

  bool ReadPoolConstant(const JitInstruction& broadcast, uint64_t* bits) {
    const size_t target = broadcast.target;
    if (target < pool_begin_ || target % 8 != 0 || target + 8 > size_) {
      report_->Add(
          Severity::kError, "bad-pool-ref", tree_index_,
          static_cast<int>(broadcast.offset),
          StrFormat("vbroadcastsd at byte offset %zu reads buffer offset "
                    "%zu, outside the 8-byte-aligned constant pool in "
                    "[%zu, %zu)",
                    broadcast.offset, target, pool_begin_, size_));
      return false;
    }
    uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
      value = value << 8 | code_[target + static_cast<size_t>(i)];
    }
    *bits = value;
    return true;
  }

  /// Parses the node blocks. The pending stack mirrors the emitter's
  /// recursion: a new node always belongs to the top pending split — its
  /// left child before that split's resume loads were seen, its right child
  /// after. Returns once the root's subtree is complete.
  bool ParseBody(bool has_frame, LiftedTree* out) {
    std::vector<Pending> pending;
    for (;;) {
      const JitInstruction* broadcast = Peek();
      if (broadcast == nullptr || broadcast->op != JitOp::kVbroadcastsd ||
          broadcast->dst != kConst) {
        return Fail("expected vbroadcastsd of a pool constant into ymm2");
      }
      const size_t node_offset = broadcast->offset;
      uint64_t bits = 0;
      if (!ReadPoolConstant(*broadcast, &bits)) return false;
      Take();
      const int index = static_cast<int>(out->nodes.size());
      out->nodes.emplace_back();
      if (!pending.empty()) {
        const Pending& parent = pending.back();
        LiftedNode& parent_node =
            out->nodes[static_cast<size_t>(parent.node)];
        if (parent.parsed_left) {
          parent_node.fall_child = index;
        } else {
          parent_node.jump_child = index;
        }
      }
      const JitInstruction* next = Peek();
      if (next == nullptr) return Fail("kernel region ends inside a node");
      if (next->op == JitOp::kVcmppdRdiMem) {
        // Split block.
        if (!has_frame) {
          return Fail("split node in a kernel without an rsp spill frame");
        }
        const JitInstruction cmp0 = *next;
        if (cmp0.dst != kCmp0 || cmp0.src1 != kConst) {
          return Fail("first-half split compare out of register role");
        }
        if (cmp0.pred != kPredNanRight && cmp0.pred != kPredNanLeft) {
          return Fail("split compare uses a predicate other than "
                      "GT_OQ/NLE_UQ");
        }
        if (cmp0.disp % kFeatureStrideBytes != 0) {
          return Fail("split feature load not on a feature-column boundary");
        }
        Take();
        next = Peek();
        if (next == nullptr || next->op != JitOp::kVcmppdRdiMem ||
            next->dst != kCmp1 || next->src1 != kConst ||
            next->disp != cmp0.disp + kHalfBytes ||
            next->pred != cmp0.pred) {
          return Fail("second-half split compare does not mirror the first");
        }
        Take();
        const int depth = static_cast<int>(pending.size());
        const uint32_t spill =
            kFeatureStrideBytes * static_cast<uint32_t>(depth);
        if (!ExpectRR(JitOp::kVandnpd, kScratch, kCmp0, kMask0,
                      "expected vandnpd computing right-path mask (lo)") ||
            !ExpectMem(JitOp::kVmovupdStoreRsp, kScratch, spill,
                       "expected right-path mask spill at 64*depth") ||
            !ExpectRR(JitOp::kVandnpd, kScratch, kCmp1, kMask1,
                      "expected vandnpd computing right-path mask (hi)") ||
            !ExpectMem(JitOp::kVmovupdStoreRsp, kScratch, spill + kHalfBytes,
                       "expected right-path mask spill at 64*depth+32") ||
            !ExpectRR(JitOp::kVandpd, kMask0, kMask0, kCmp0,
                      "expected vandpd narrowing path mask (lo)") ||
            !ExpectRR(JitOp::kVandpd, kMask1, kMask1, kCmp1,
                      "expected vandpd narrowing path mask (hi)")) {
          return false;
        }
        LiftedNode& node = out->nodes[static_cast<size_t>(index)];
        node.is_leaf = false;
        node.offset = node_offset;
        node.feature = static_cast<int>(cmp0.disp / kFeatureStrideBytes);
        node.threshold_bits = bits;
        node.cmp = LiftedNode::Cmp::kLt;
        node.nan_jumps = cmp0.pred == kPredNanLeft;
        pending.push_back(Pending{index, depth, false});
        continue;  // The next node is this split's left child.
      }
      // Leaf block.
      if (!ExpectRR(JitOp::kVandpd, kScratch, kMask0, kConst,
                    "expected vandpd masking leaf value (lo)") ||
          !ExpectRR(JitOp::kVorpd, kAcc0, kAcc0, kScratch,
                    "expected vorpd accumulating leaf value (lo)") ||
          !ExpectRR(JitOp::kVandpd, kScratch, kMask1, kConst,
                    "expected vandpd masking leaf value (hi)") ||
          !ExpectRR(JitOp::kVorpd, kAcc1, kAcc1, kScratch,
                    "expected vorpd accumulating leaf value (hi)")) {
        return false;
      }
      LiftedNode& leaf = out->nodes[static_cast<size_t>(index)];
      leaf.is_leaf = true;
      leaf.offset = node_offset;
      leaf.value_bits = bits;
      // Unwind splits whose right subtree just completed; the innermost
      // split still missing its right child must resume its spilled masks.
      while (!pending.empty() && pending.back().parsed_left) {
        pending.pop_back();
      }
      if (pending.empty()) return true;
      Pending& parent = pending.back();
      const uint32_t spill =
          kFeatureStrideBytes * static_cast<uint32_t>(parent.depth);
      if (!ExpectMem(JitOp::kVmovupdLoadRsp, kMask0, spill,
                     "expected path-mask resume load (lo)") ||
          !ExpectMem(JitOp::kVmovupdLoadRsp, kMask1, spill + kHalfBytes,
                     "expected path-mask resume load (hi)")) {
        return false;
      }
      parent.parsed_left = true;
      // The next node is that split's right child.
    }
  }

  const std::map<size_t, JitInstruction>& instructions_;
  const uint8_t* code_;
  size_t size_;
  size_t pool_begin_;
  size_t begin_;
  size_t end_;
  int tree_index_;
  AnalysisReport* report_;
  size_t at_ = 0;
};

}  // namespace

AnalysisReport BatchEquivalenceValidator::Validate(
    const Forest& forest, const uint8_t* code, size_t size,
    const std::vector<size_t>& entries, size_t pool_begin) const {
  AnalysisReport report;
  const Status valid = forest.Validate();
  if (!valid.ok()) {
    report.Add(Severity::kError, "invalid-forest", -1, -1,
               StrFormat("IR side of the equivalence check is invalid: %s",
                         valid.message().c_str()));
    return report;
  }
  if (entries.size() != forest.trees.size()) {
    report.Add(Severity::kError, "tree-count-mismatch", -1, -1,
               StrFormat("%zu kernel regions for %zu IR trees",
                         entries.size(), forest.trees.size()));
    return report;
  }
  if (pool_begin > size) {
    report.Add(Severity::kError, "bad-pool-ref", -1, -1,
               StrFormat("constant pool begins at %zu, past the %zu-byte "
                         "buffer",
                         pool_begin, size));
    return report;
  }

  // Only [0, pool_begin) is instructions; the pool is data and decoding
  // into it would desynchronize on constant bytes.
  const DecodedCode decoded = DecodeLinear(code, pool_begin);
  if (!decoded.ok) {
    report.Add(Severity::kError, "undecodable-batch-code", -1,
               static_cast<int>(decoded.error_offset),
               StrFormat("batch code is not whitelisted-decodable at byte "
                         "offset %zu",
                         decoded.error_offset));
    return report;
  }

  for (size_t t = 0; t < forest.trees.size(); ++t) {
    const int tree_index = static_cast<int>(t);
    const size_t begin = entries[t];
    const size_t end = t + 1 < entries.size() ? entries[t + 1] : pool_begin;
    LiftedTree lifted;
    KernelParser parser(decoded.instructions, code, size, pool_begin, begin,
                        end, tree_index, &report);
    if (!parser.Parse(&lifted)) continue;
    bool features_ok = true;
    for (const LiftedNode& node : lifted.nodes) {
      if (node.is_leaf) continue;
      if (node.feature < 0 || node.feature >= forest.num_features) {
        report.Add(Severity::kError, "lifted-feature-oob", tree_index,
                   static_cast<int>(node.offset),
                   StrFormat("batch kernel loads feature column %d of a "
                             "%d-feature block",
                             node.feature, forest.num_features));
        features_ok = false;
      }
    }
    CheckLiftedTreeStructure(forest.trees[t], lifted, tree_index, &report);
    if (features_ok) {
      CheckLiftedTreeSemantics(forest.trees[t], lifted, forest.num_features,
                               tree_index, &report);
    }
  }
  return report;
}

AnalysisReport BatchDifferentialCheck(const Forest& forest,
                                      const BatchPredictFn& predict_batch) {
  AnalysisReport report;
  const Status valid = forest.Validate();
  if (!valid.ok()) {
    report.Add(Severity::kError, "invalid-forest", -1, -1,
               StrFormat("differential check needs a valid forest: %s",
                         valid.message().c_str()));
    return report;
  }
  const size_t num_features = static_cast<size_t>(forest.num_features);
  std::vector<double> rows;
  for (const Tree& tree : forest.trees) {
    ForEachLeafCell(tree, FeatureBox::Full(forest.num_features),
                    [&rows](int, const FeatureBox& cell) {
                      const std::vector<double> row = cell.Witness();
                      rows.insert(rows.end(), row.begin(), row.end());
                    });
  }
  const size_t num_witness = rows.size() / num_features;
  if (num_witness == 0) return report;
  // Pad to the kernels' 8-row width with copies of the first witness so no
  // witness lands in an implementation's scalar tail.
  const std::vector<double> pad(rows.begin(),
                                rows.begin() + static_cast<long>(num_features));
  size_t num_rows = num_witness;
  while (num_rows % 8 != 0) {
    rows.insert(rows.end(), pad.begin(), pad.end());
    ++num_rows;
  }
  std::vector<double> got(num_rows, 0.0);
  predict_batch(rows.data(), num_rows, num_features, got.data());
  for (size_t i = 0; i < num_witness; ++i) {
    const double want = forest.Predict(rows.data() + i * num_features);
    if (DoubleBits(want) == DoubleBits(got[i])) continue;
    report.Add(
        Severity::kError, "batch-differential-mismatch", -1,
        static_cast<int>(i),
        StrFormat("witness row %zu: batch path returns %.17g (bits "
                  "0x%016llX) but the scalar forest returns %.17g (bits "
                  "0x%016llX)",
                  i, got[i],
                  static_cast<unsigned long long>(DoubleBits(got[i])), want,
                  static_cast<unsigned long long>(DoubleBits(want))));
    break;
  }
  return report;
}

}  // namespace t3
