#ifndef T3_ANALYSIS_BATCH_EQUIVALENCE_VALIDATOR_H_
#define T3_ANALYSIS_BATCH_EQUIVALENCE_VALIDATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/report.h"
#include "gbt/forest.h"

namespace t3 {

/// Batch-kernel equivalence validator: the static proof that the AVX batch
/// kernels (treejit EmitForestBatchCode) compute exactly the scalar forest,
/// per lane. The JitCodeAuditor's AuditBatch proves the kernels are *safe*
/// (straight-line, in-bounds lane loads / spills / pool reads); this pass
/// proves they are *correct*.
///
/// Pipeline, per kernel region [entries[i], entries[i+1]):
///  1. Decode the instruction stream ([0, pool_begin) only — the constant
///     pool is data) with the shared x86 decoder
///     (`undecodable-batch-code`).
///  2. Parse the region against the batch emitter's closed grammar —
///     prologue, masked split / leaf blocks with their exact register
///     roles, spill discipline and epilogue — and lift it back into a
///     decision tree (`unliftable-batch-code`): each vcmppd pair is a
///     split with `x[disp/64] < threshold` semantics (predicate GT_OQ
///     routes NaN to the fall/right side, NLE_UQ to the jump/left side),
///     each broadcast-and-or block a leaf returning the pool constant's
///     exact bits (`bad-pool-ref` when a broadcast reads outside the
///     pool). Because the grammar fixes how masks are narrowed, spilled
///     and resumed, any per-lane divergence from tree evaluation fails the
///     parse.
///  3. Prove the lifted tree equals IR tree i with the passes shared with
///     the scalar TranslationValidator: bit-exact structural descent
///     (CheckLiftedTreeStructure) and the per-cell interval-domain
///     semantic proof (CheckLiftedTreeSemantics) — pointwise equality over
///     every threshold-induced cell of the feature space, NaN included.
///
/// Per-tree equivalence plus the kernels' fixed `acc += leaf` epilogue (one
/// add per tree, in tree order, after the caller seeds base_score) gives
/// bit-identical batch predictions. Pure byte inspection; runs on any host.
class BatchEquivalenceValidator {
 public:
  /// Validates emitted batch code (`code`/`size`, kernels at `entries`,
  /// constant pool from `pool_begin` rounded up to 8 bytes) against
  /// `forest`. `invalid-forest` / `tree-count-mismatch` mirror the scalar
  /// validator's preconditions.
  AnalysisReport Validate(const Forest& forest, const uint8_t* code,
                          size_t size, const std::vector<size_t>& entries,
                          size_t pool_begin) const;
};

/// A batched prediction entry point under test: fills `out[0..num_rows)`
/// from `num_rows` row-major rows. Taking a std::function keeps the
/// dependency direction intact — treejit hands its mapped kernels down to
/// the analysis layer, which never links treejit.
using BatchPredictFn = std::function<void(
    const double* rows, size_t num_rows, size_t num_features, double* out)>;

/// Dynamic fallback to the static proof: exhaustive per-cell differential
/// check. Enumerates every leaf cell of every tree (the same cell
/// decomposition the semantic proof walks), takes one concrete witness row
/// per cell, runs all witnesses through `predict_batch` in one call (padded
/// to the kernels' 8-row width so no witness falls into a scalar tail), and
/// bit-compares each against Forest::Predict. Reports the first mismatch as
/// `batch-differential-mismatch` (Error) with the witness row index and
/// both values. `invalid-forest` when the forest does not validate.
AnalysisReport BatchDifferentialCheck(const Forest& forest,
                                      const BatchPredictFn& predict_batch);

}  // namespace t3

#endif  // T3_ANALYSIS_BATCH_EQUIVALENCE_VALIDATOR_H_
