#include "analysis/report.h"

#include <utility>

#include "common/string_util.h"

namespace t3 {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = StrFormat("%s[%s]", SeverityName(severity), check.c_str());
  if (tree >= 0) out += StrFormat(" tree %d", tree);
  if (node >= 0) out += StrFormat(" node %d", node);
  out += ": ";
  out += message;
  return out;
}

void AnalysisReport::Add(Severity severity, std::string check, int tree,
                         int node, std::string message) {
  Diagnostic diagnostic;
  diagnostic.severity = severity;
  diagnostic.check = std::move(check);
  diagnostic.tree = tree;
  diagnostic.node = node;
  diagnostic.message = std::move(message);
  diagnostics_.push_back(std::move(diagnostic));
}

size_t AnalysisReport::NumErrors() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    n += d.severity == Severity::kError ? 1 : 0;
  }
  return n;
}

size_t AnalysisReport::NumWarnings() const {
  return diagnostics_.size() - NumErrors();
}

void AnalysisReport::Merge(const AnalysisReport& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::string AnalysisReport::ToString() const {
  std::string out;
  for (const Severity severity : {Severity::kError, Severity::kWarning}) {
    for (const Diagnostic& d : diagnostics_) {
      if (d.severity != severity) continue;
      out += d.ToString();
      out.push_back('\n');
    }
  }
  return out;
}

Status AnalysisReport::ToStatus() const {
  const size_t errors = NumErrors();
  if (errors == 0) return Status::OK();
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != Severity::kError) continue;
    if (errors == 1) return InvalidArgumentError(d.ToString());
    return InvalidArgumentError(StrFormat(
        "%s (+%zu more errors)", d.ToString().c_str(), errors - 1));
  }
  return Status::OK();  // Unreachable; errors > 0 guarantees a return above.
}

}  // namespace t3
