#include "analysis/jit_auditor.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace t3 {
namespace {

/// The scalar tree emitter's vocabulary (TreeEmitter in treejit/jit.cc).
bool IsScalarOp(JitOp op) {
  switch (op) {
    case JitOp::kMovRaxImm64:
    case JitOp::kMovqXmm0Rax:
    case JitOp::kMovqXmm1Rax:
    case JitOp::kLoadFeature8:
    case JitOp::kLoadFeature32:
    case JitOp::kUcomisdXmm1Xmm0:
    case JitOp::kUcomisdXmm0Xmm1:
      return true;
    default:
      return false;
  }
}

/// The batch kernel emitter's vocabulary (BatchForestEmitter), excluding
/// ret, which both emitters share.
bool IsBatchOp(JitOp op) {
  switch (op) {
    case JitOp::kSubRspImm32:
    case JitOp::kAddRspImm32:
    case JitOp::kVzeroupper:
    case JitOp::kVbroadcastsd:
    case JitOp::kVcmppdRR:
    case JitOp::kVcmppdRdiMem:
    case JitOp::kVandpd:
    case JitOp::kVandnpd:
    case JitOp::kVorpd:
    case JitOp::kVxorpd:
    case JitOp::kVaddpdRsiMem:
    case JitOp::kVmovupdLoadRsp:
    case JitOp::kVmovupdStoreRsp:
    case JitOp::kVmovupdStoreRsi:
      return true;
    default:
      return false;
  }
}

}  // namespace

AnalysisReport JitCodeAuditor::Audit(const uint8_t* code, size_t size,
                                     const std::vector<size_t>& entries,
                                     int num_features) const {
  AnalysisReport report;

  // Region lookup: region(i) = [entries[i], entries[i+1]) with the last
  // region closed by the buffer end.
  for (size_t i = 0; i < entries.size(); ++i) {
    const bool ascending = i == 0 || entries[i] > entries[i - 1];
    if (entries[i] >= size || !ascending) {
      report.Add(Severity::kError, "bad-entry", static_cast<int>(i),
                 static_cast<int>(entries[i]),
                 StrFormat("entry offset %zu not an ascending offset inside "
                           "the %zu-byte buffer",
                           entries[i], size));
      return report;
    }
  }
  if (entries.empty() || entries[0] != 0) {
    report.Add(Severity::kError, "bad-entry", -1, -1,
               "first tree entry must be at offset 0");
    return report;
  }

  const auto region_of = [&entries](size_t offset) -> size_t {
    // Last entry <= offset.
    const auto it =
        std::upper_bound(entries.begin(), entries.end(), offset);
    return static_cast<size_t>(it - entries.begin()) - 1;
  };
  const auto region_end = [&entries, size](size_t region) -> size_t {
    return region + 1 < entries.size() ? entries[region + 1] : size;
  };

  // Pass 1: linear decode (shared decoder). Instruction boundaries double
  // as the branch target whitelist.
  const DecodedCode decoded = DecodeLinear(code, size);
  if (!decoded.ok) {
    const size_t at = decoded.error_offset;
    report.Add(Severity::kError,
               size - at < 10 ? "truncated-instruction" : "unknown-opcode",
               static_cast<int>(region_of(at)), static_cast<int>(at),
               StrFormat("byte 0x%02X is not in the emitter whitelist",
                         code[at]));
    return report;  // Byte stream is desynchronized; nothing more to say.
  }
  const std::map<size_t, JitInstruction>& instructions = decoded.instructions;

  // Every entry must land on an instruction boundary (pass 1 started at
  // entries[0] == 0, so interior entries could still fall mid-instruction
  // if the emitter miscounted).
  for (size_t i = 0; i < entries.size(); ++i) {
    if (instructions.find(entries[i]) == instructions.end()) {
      report.Add(Severity::kError, "bad-entry", static_cast<int>(i),
                 static_cast<int>(entries[i]),
                 "tree entry is not an instruction boundary");
    }
  }
  if (report.HasErrors()) return report;

  // Pass 2: per-instruction operand checks.
  for (const auto& [at, instruction] : instructions) {
    const size_t region = region_of(at);
    const int tree = static_cast<int>(region);
    const int node = static_cast<int>(at);
    if (IsBatchOp(instruction.op)) {
      report.Add(Severity::kError, "bad-scalar-layout", tree, node,
                 StrFormat("batch/vector instruction at byte offset %zu in "
                           "scalar tree code, whose only memory accesses "
                           "are %u-byte feature loads off %s",
                           at, kScalarFeatureLoadBytes,
                           kScalarFeatureBaseRegister));
    }
    if (instruction.op == JitOp::kLoadFeature8 ||
        instruction.op == JitOp::kLoadFeature32) {
      const uint32_t disp = instruction.disp;
      if (disp % kScalarFeatureLoadBytes != 0 ||
          disp / kScalarFeatureLoadBytes >=
              static_cast<uint32_t>(std::max(num_features, 0))) {
        report.Add(Severity::kError, "oob-feature-load", tree, node,
                   StrFormat("movsd xmm0, [%s + %u] at byte offset %zu "
                             "reads outside the %d-feature row of %u-byte "
                             "features",
                             kScalarFeatureBaseRegister, disp, at,
                             num_features, kScalarFeatureLoadBytes));
      }
    }
    if (instruction.op == JitOp::kJa || instruction.op == JitOp::kJb) {
      const size_t target = instruction.target;
      const bool in_region =
          target >= entries[region] && target < region_end(region);
      if (!in_region || instructions.find(target) == instructions.end()) {
        report.Add(Severity::kError, "bad-branch-target", tree, node,
                   StrFormat("branch to offset %zu, outside region "
                             "[%zu, %zu) or mid-instruction",
                             target, entries[region], region_end(region)));
      }
    }
  }
  if (report.HasErrors()) return report;

  // Pass 3: control-flow reachability per region. Successors: ret has
  // none; ja/jb fall through and jump; everything else falls through.
  std::map<size_t, char> reachable;
  for (size_t region = 0; region < entries.size(); ++region) {
    const size_t end = region_end(region);
    std::vector<size_t> work = {entries[region]};
    while (!work.empty()) {
      const size_t at = work.back();
      work.pop_back();
      if (reachable[at]) continue;
      reachable[at] = 1;
      const JitInstruction& instruction = instructions.at(at);
      if (instruction.op == JitOp::kRet) continue;
      if (instruction.op == JitOp::kJa || instruction.op == JitOp::kJb) {
        work.push_back(instruction.target);
      }
      const size_t next = at + instruction.length;
      if (next >= end) {
        report.Add(Severity::kError, "fallthrough-out-of-region",
                   static_cast<int>(region), static_cast<int>(at),
                   "execution can fall through past the end of this tree's "
                   "code");
        continue;
      }
      work.push_back(next);
    }
  }
  for (const auto& [at, instruction] : instructions) {
    if (reachable[at]) continue;
    const bool is_ret = instruction.op == JitOp::kRet;
    report.Add(is_ret ? Severity::kError : Severity::kWarning,
               is_ret ? "unreachable-ret" : "unreachable-code",
               static_cast<int>(region_of(at)), static_cast<int>(at),
               is_ret ? "ret instruction unreachable from its tree entry"
                      : "instruction unreachable from its tree entry");
  }
  return report;
}

AnalysisReport JitCodeAuditor::AuditBatch(const uint8_t* code, size_t size,
                                          const std::vector<size_t>& entries,
                                          size_t pool_begin,
                                          int num_features) const {
  AnalysisReport report;
  if (pool_begin > size) {
    report.Add(Severity::kError, "bad-pool-ref", -1, -1,
               StrFormat("constant pool begins at byte offset %zu, past the "
                         "%zu-byte buffer",
                         pool_begin, size));
    return report;
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    const bool ascending = i == 0 || entries[i] > entries[i - 1];
    if (entries[i] >= pool_begin || !ascending) {
      report.Add(Severity::kError, "bad-entry", static_cast<int>(i),
                 static_cast<int>(entries[i]),
                 StrFormat("kernel entry offset %zu not an ascending offset "
                           "inside the %zu instruction bytes",
                           entries[i], pool_begin));
      return report;
    }
  }
  if (entries.empty() || entries[0] != 0) {
    report.Add(Severity::kError, "bad-entry", -1, -1,
               "first kernel entry must be at offset 0");
    return report;
  }

  // Only [0, pool_begin) is instructions; the constant pool is data.
  const DecodedCode decoded = DecodeLinear(code, pool_begin);
  if (!decoded.ok) {
    const size_t at = decoded.error_offset;
    report.Add(Severity::kError,
               pool_begin - at < 9 ? "truncated-instruction"
                                   : "unknown-opcode",
               -1, static_cast<int>(at),
               StrFormat("byte 0x%02X at offset %zu is not in the emitter "
                         "whitelist",
                         code[at], at));
    return report;
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    if (decoded.instructions.find(entries[i]) ==
        decoded.instructions.end()) {
      report.Add(Severity::kError, "bad-entry", static_cast<int>(i),
                 static_cast<int>(entries[i]),
                 "kernel entry is not an instruction boundary");
    }
  }
  if (report.HasErrors()) return report;

  const uint64_t block_bytes =
      static_cast<uint64_t>(kBatchFeatureStrideBytes) *
      static_cast<uint64_t>(std::max(num_features, 0));
  for (size_t region = 0; region < entries.size(); ++region) {
    const size_t begin = entries[region];
    const size_t end =
        region + 1 < entries.size() ? entries[region + 1] : pool_begin;
    const int tree = static_cast<int>(region);
    std::vector<const JitInstruction*> seq;
    for (auto it = decoded.instructions.lower_bound(begin);
         it != decoded.instructions.end() && it->first < end; ++it) {
      seq.push_back(&it->second);
    }
    const size_t n = seq.size();
    // Frame discipline: an optional leading `sub rsp, S` balanced by
    // exactly one `add rsp, S` right before the `vzeroupper; ret` tail.
    // With branches forbidden below, a well-formed tail also proves every
    // instruction is reachable and execution cannot leave the region.
    const bool has_frame = n > 0 && seq[0]->op == JitOp::kSubRspImm32;
    const uint32_t frame = has_frame ? seq[0]->disp : 0;
    if (has_frame && (frame == 0 || frame % kBatchLaneGroupBytes != 0)) {
      report.Add(Severity::kError, "bad-frame", tree,
                 static_cast<int>(seq[0]->offset),
                 StrFormat("sub rsp, %u at byte offset %zu is not a "
                           "positive multiple of %u",
                           frame, seq[0]->offset, kBatchLaneGroupBytes));
    }
    const size_t tail = has_frame ? 3 : 2;
    if (n < tail + 1 || seq[n - 1]->op != JitOp::kRet ||
        seq[n - 2]->op != JitOp::kVzeroupper ||
        (has_frame && seq[n - 3]->op != JitOp::kAddRspImm32)) {
      report.Add(Severity::kError, "bad-batch-layout", tree,
                 static_cast<int>(n == 0 ? begin : seq[n - 1]->offset),
                 has_frame
                     ? "kernel region does not end with add rsp; "
                       "vzeroupper; ret"
                     : "kernel region does not end with vzeroupper; ret");
      continue;
    }
    if (has_frame && seq[n - 3]->disp != frame) {
      report.Add(Severity::kError, "bad-frame", tree,
                 static_cast<int>(seq[n - 3]->offset),
                 StrFormat("add rsp, %u at byte offset %zu does not match "
                           "sub rsp, %u",
                           seq[n - 3]->disp, seq[n - 3]->offset, frame));
    }
    for (size_t i = 0; i < n; ++i) {
      const JitInstruction& ins = *seq[i];
      const size_t at = ins.offset;
      const int node = static_cast<int>(at);
      if (ins.op == JitOp::kJa || ins.op == JitOp::kJb) {
        report.Add(Severity::kError, "branch-in-batch-kernel", tree, node,
                   StrFormat("branch at byte offset %zu in a straight-line "
                             "masked kernel",
                             at));
        continue;
      }
      if (IsScalarOp(ins.op)) {
        report.Add(Severity::kError, "bad-batch-layout", tree, node,
                   StrFormat("scalar tree instruction at byte offset %zu "
                             "inside a batch kernel",
                             at));
        continue;
      }
      switch (ins.op) {
        case JitOp::kRet:
          if (i != n - 1) {
            report.Add(Severity::kError, "bad-batch-layout", tree, node,
                       StrFormat("early ret at byte offset %zu strands the "
                                 "rest of the kernel",
                                 at));
          }
          break;
        case JitOp::kVzeroupper:
          if (i != n - 2) {
            report.Add(Severity::kError, "bad-batch-layout", tree, node,
                       StrFormat("vzeroupper at byte offset %zu, not "
                                 "immediately before ret",
                                 at));
          }
          break;
        case JitOp::kSubRspImm32:
          if (i != 0) {
            report.Add(Severity::kError, "bad-frame", tree, node,
                       StrFormat("sub rsp at byte offset %zu, not at the "
                                 "kernel entry",
                                 at));
          }
          break;
        case JitOp::kAddRspImm32:
          if (!has_frame || i != n - 3) {
            report.Add(Severity::kError, "bad-frame", tree, node,
                       StrFormat("add rsp at byte offset %zu outside the "
                                 "frame epilogue",
                                 at));
          }
          break;
        case JitOp::kVcmppdRdiMem:
          if (ins.disp % kBatchLaneGroupBytes != 0 ||
              static_cast<uint64_t>(ins.disp) + kBatchLaneGroupBytes >
                  block_bytes) {
            report.Add(
                Severity::kError, "oob-feature-load", tree, node,
                StrFormat("vcmppd lane load [%s + %u] at byte offset %zu "
                          "reads outside the %d-feature block (%u bytes "
                          "per feature column)",
                          kBatchBlockBaseRegister, ins.disp, at,
                          num_features, kBatchFeatureStrideBytes));
          }
          break;
        case JitOp::kVmovupdLoadRsp:
        case JitOp::kVmovupdStoreRsp:
          if (!has_frame || ins.disp % kBatchLaneGroupBytes != 0 ||
              static_cast<uint64_t>(ins.disp) + kBatchLaneGroupBytes >
                  frame) {
            report.Add(Severity::kError, "bad-spill", tree, node,
                       StrFormat("mask spill [rsp + %u] at byte offset %zu "
                                 "outside the %u-byte frame",
                                 ins.disp, at, frame));
          }
          break;
        case JitOp::kVaddpdRsiMem:
        case JitOp::kVmovupdStoreRsi:
          if (ins.disp % kBatchLaneGroupBytes != 0 ||
              ins.disp + kBatchLaneGroupBytes > kBatchAccumulatorBytes) {
            report.Add(
                Severity::kError, "oob-acc-access", tree, node,
                StrFormat("accumulator access [%s + %u] at byte offset %zu "
                          "outside the %u-byte output block",
                          kBatchAccumulatorBaseRegister, ins.disp, at,
                          kBatchAccumulatorBytes));
          }
          break;
        case JitOp::kVbroadcastsd:
          if (ins.target % 8 != 0 || ins.target < pool_begin ||
              ins.target + 8 > size) {
            report.Add(
                Severity::kError, "bad-pool-ref", tree, node,
                StrFormat("vbroadcastsd at byte offset %zu reads buffer "
                          "offset %zu, outside the aligned constant pool "
                          "in [%zu, %zu)",
                          at, ins.target, pool_begin, size));
          }
          break;
        default:
          break;  // Reg-reg vector ops touch no memory.
      }
    }
  }
  return report;
}

}  // namespace t3
