#include "analysis/jit_auditor.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace t3 {

AnalysisReport JitCodeAuditor::Audit(const uint8_t* code, size_t size,
                                     const std::vector<size_t>& entries,
                                     int num_features) const {
  AnalysisReport report;

  // Region lookup: region(i) = [entries[i], entries[i+1]) with the last
  // region closed by the buffer end.
  for (size_t i = 0; i < entries.size(); ++i) {
    const bool ascending = i == 0 || entries[i] > entries[i - 1];
    if (entries[i] >= size || !ascending) {
      report.Add(Severity::kError, "bad-entry", static_cast<int>(i),
                 static_cast<int>(entries[i]),
                 StrFormat("entry offset %zu not an ascending offset inside "
                           "the %zu-byte buffer",
                           entries[i], size));
      return report;
    }
  }
  if (entries.empty() || entries[0] != 0) {
    report.Add(Severity::kError, "bad-entry", -1, -1,
               "first tree entry must be at offset 0");
    return report;
  }

  const auto region_of = [&entries](size_t offset) -> size_t {
    // Last entry <= offset.
    const auto it =
        std::upper_bound(entries.begin(), entries.end(), offset);
    return static_cast<size_t>(it - entries.begin()) - 1;
  };
  const auto region_end = [&entries, size](size_t region) -> size_t {
    return region + 1 < entries.size() ? entries[region + 1] : size;
  };

  // Pass 1: linear decode (shared decoder). Instruction boundaries double
  // as the branch target whitelist.
  const DecodedCode decoded = DecodeLinear(code, size);
  if (!decoded.ok) {
    const size_t at = decoded.error_offset;
    report.Add(Severity::kError,
               size - at < 10 ? "truncated-instruction" : "unknown-opcode",
               static_cast<int>(region_of(at)), static_cast<int>(at),
               StrFormat("byte 0x%02X is not in the emitter whitelist",
                         code[at]));
    return report;  // Byte stream is desynchronized; nothing more to say.
  }
  const std::map<size_t, JitInstruction>& instructions = decoded.instructions;

  // Every entry must land on an instruction boundary (pass 1 started at
  // entries[0] == 0, so interior entries could still fall mid-instruction
  // if the emitter miscounted).
  for (size_t i = 0; i < entries.size(); ++i) {
    if (instructions.find(entries[i]) == instructions.end()) {
      report.Add(Severity::kError, "bad-entry", static_cast<int>(i),
                 static_cast<int>(entries[i]),
                 "tree entry is not an instruction boundary");
    }
  }
  if (report.HasErrors()) return report;

  // Pass 2: per-instruction operand checks.
  for (const auto& [at, instruction] : instructions) {
    const size_t region = region_of(at);
    const int tree = static_cast<int>(region);
    const int node = static_cast<int>(at);
    if (instruction.op == JitOp::kLoadFeature8 ||
        instruction.op == JitOp::kLoadFeature32) {
      const uint32_t disp = instruction.disp;
      if (disp % 8 != 0 ||
          disp / 8 >= static_cast<uint32_t>(std::max(num_features, 0))) {
        report.Add(Severity::kError, "oob-feature-load", tree, node,
                   StrFormat("movsd xmm0, [rdi + %u] reads outside the "
                             "%d-feature row",
                             disp, num_features));
      }
    }
    if (instruction.op == JitOp::kJa || instruction.op == JitOp::kJb) {
      const size_t target = instruction.target;
      const bool in_region =
          target >= entries[region] && target < region_end(region);
      if (!in_region || instructions.find(target) == instructions.end()) {
        report.Add(Severity::kError, "bad-branch-target", tree, node,
                   StrFormat("branch to offset %zu, outside region "
                             "[%zu, %zu) or mid-instruction",
                             target, entries[region], region_end(region)));
      }
    }
  }
  if (report.HasErrors()) return report;

  // Pass 3: control-flow reachability per region. Successors: ret has
  // none; ja/jb fall through and jump; everything else falls through.
  std::map<size_t, char> reachable;
  for (size_t region = 0; region < entries.size(); ++region) {
    const size_t end = region_end(region);
    std::vector<size_t> work = {entries[region]};
    while (!work.empty()) {
      const size_t at = work.back();
      work.pop_back();
      if (reachable[at]) continue;
      reachable[at] = 1;
      const JitInstruction& instruction = instructions.at(at);
      if (instruction.op == JitOp::kRet) continue;
      if (instruction.op == JitOp::kJa || instruction.op == JitOp::kJb) {
        work.push_back(instruction.target);
      }
      const size_t next = at + instruction.length;
      if (next >= end) {
        report.Add(Severity::kError, "fallthrough-out-of-region",
                   static_cast<int>(region), static_cast<int>(at),
                   "execution can fall through past the end of this tree's "
                   "code");
        continue;
      }
      work.push_back(next);
    }
  }
  for (const auto& [at, instruction] : instructions) {
    if (reachable[at]) continue;
    const bool is_ret = instruction.op == JitOp::kRet;
    report.Add(is_ret ? Severity::kError : Severity::kWarning,
               is_ret ? "unreachable-ret" : "unreachable-code",
               static_cast<int>(region_of(at)), static_cast<int>(at),
               is_ret ? "ret instruction unreachable from its tree entry"
                      : "instruction unreachable from its tree entry");
  }
  return report;
}

}  // namespace t3
