#ifndef T3_ANALYSIS_INTERVAL_DOMAIN_H_
#define T3_ANALYSIS_INTERVAL_DOMAIN_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "gbt/forest.h"

namespace t3 {

/// Exact interval domain over doubles, shared by the translation validator
/// and ForestDiff.
///
/// Every non-NaN double is mapped to an unsigned 64-bit *ordered key* such
/// that `a < b` (as doubles) iff `Key(a) < Key(b)`: positive doubles get
/// their bit pattern with the sign bit set, negative doubles get their bits
/// inverted. -0.0 is canonicalized to +0.0 first (they compare equal, so
/// they must share a key). The key space is a total order in which the set
/// `{x : x < t}` is exactly the integer range `[Key(-inf), Key(t) - 1]` —
/// strict-vs-nonstrict comparisons, ±inf, and denormals all become exact
/// integer interval arithmetic, which is what makes the cell analysis a
/// proof rather than an approximation.
///
/// One key slot is a phantom: the raw key of -0.0 (kMinusZeroRawKey) names
/// no canonical value. PredKey/SuccKey skip it so an interval is empty iff
/// it contains no real double.
inline uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

inline double DoubleFromBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

inline constexpr uint64_t kMinusZeroRawKey = 0x7FFFFFFFFFFFFFFFULL;

/// Ordered key of a non-NaN double (callers must exclude NaN).
inline uint64_t OrderedKey(double value) {
  if (value == 0.0) value = 0.0;  // Collapse -0.0 onto +0.0.
  const uint64_t bits = DoubleBits(value);
  return (bits >> 63) != 0 ? ~bits : bits | 0x8000000000000000ULL;
}

/// The double a key names (never called on the phantom -0.0 slot).
inline double DoubleFromKey(uint64_t key) {
  const uint64_t bits =
      (key & 0x8000000000000000ULL) != 0 ? key & 0x7FFFFFFFFFFFFFFFULL : ~key;
  return DoubleFromBits(bits);
}

inline const uint64_t kMinKey = OrderedKey(
    -std::numeric_limits<double>::infinity());
inline const uint64_t kMaxKey = OrderedKey(
    std::numeric_limits<double>::infinity());

/// Largest key strictly below `key`, skipping the phantom -0.0 slot.
inline uint64_t PredKey(uint64_t key) {
  return key - (key == kMinusZeroRawKey + 1 ? 2 : 1);
}

/// Smallest key strictly above `key`, skipping the phantom -0.0 slot.
inline uint64_t SuccKey(uint64_t key) {
  return key + (key == kMinusZeroRawKey - 1 ? 2 : 1);
}

/// The set of values one feature can take at a point of a tree walk: the
/// doubles with ordered key in [lo, hi] (empty when lo > hi), plus NaN when
/// `nan` is set.
struct FeatureRange {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool nan = false;

  bool IntervalEmpty() const { return lo > hi; }
  bool Empty() const { return IntervalEmpty() && !nan; }
};

/// A feature-space box: one FeatureRange per feature. The box is feasible
/// iff every feature still has at least one admissible value.
struct FeatureBox {
  std::vector<FeatureRange> ranges;

  static FeatureBox Full(int num_features) {
    FeatureBox box;
    box.ranges.assign(static_cast<size_t>(num_features),
                      FeatureRange{kMinKey, kMaxKey, true});
    return box;
  }

  bool Feasible() const {
    for (const FeatureRange& range : ranges) {
      if (range.Empty()) return false;
    }
    return true;
  }

  /// The sub-box where x[feature] < threshold (NaN kept iff nan_side).
  FeatureBox Below(int feature, double threshold, bool nan_side) const {
    FeatureBox out = *this;
    FeatureRange& range = out.ranges[static_cast<size_t>(feature)];
    const uint64_t bound = PredKey(OrderedKey(threshold));
    if (bound < range.hi) range.hi = bound;
    range.nan = range.nan && nan_side;
    return out;
  }

  /// The sub-box where x[feature] >= threshold (NaN kept iff nan_side).
  FeatureBox AtOrAbove(int feature, double threshold, bool nan_side) const {
    FeatureBox out = *this;
    FeatureRange& range = out.ranges[static_cast<size_t>(feature)];
    const uint64_t bound = OrderedKey(threshold);
    if (bound > range.lo) range.lo = bound;
    range.nan = range.nan && nan_side;
    return out;
  }

  /// The sub-box where x[feature] > threshold (NaN kept iff nan_side).
  FeatureBox Above(int feature, double threshold, bool nan_side) const {
    FeatureBox out = *this;
    FeatureRange& range = out.ranges[static_cast<size_t>(feature)];
    const uint64_t bound = SuccKey(OrderedKey(threshold));
    if (bound > range.lo) range.lo = bound;
    range.nan = range.nan && nan_side;
    return out;
  }

  /// The sub-box where x[feature] <= threshold (NaN kept iff nan_side).
  FeatureBox AtOrBelow(int feature, double threshold, bool nan_side) const {
    FeatureBox out = *this;
    FeatureRange& range = out.ranges[static_cast<size_t>(feature)];
    const uint64_t bound = OrderedKey(threshold);
    if (bound < range.hi) range.hi = bound;
    range.nan = range.nan && nan_side;
    return out;
  }

  /// One concrete row inside the box — a witness for diagnostics. Features
  /// whose interval is empty (NaN-only) get NaN; others get their lower
  /// bound.
  std::vector<double> Witness() const {
    std::vector<double> row;
    row.reserve(ranges.size());
    for (const FeatureRange& range : ranges) {
      row.push_back(range.IntervalEmpty()
                        ? std::numeric_limits<double>::quiet_NaN()
                        : DoubleFromKey(range.lo));
    }
    return row;
  }
};

/// Walks an IR tree root to leaf, refining `box` by each split's predicate
/// (GoesLeft semantics: strict `<`, NaN routed by default_left), and calls
/// `fn(node_index, box)` for every leaf whose cell is feasible. The cells
/// passed to `fn` partition the feasible part of the initial box exactly —
/// the foundation of both the equivalence proof and ForestDiff. Iterative
/// (explicit stack): adversarial tree depth must not overflow the call
/// stack. The tree must already be structurally valid (Forest::Validate).
template <typename LeafFn>
void ForEachLeafCell(const Tree& tree, const FeatureBox& box, LeafFn&& fn) {
  struct Frame {
    int node;
    FeatureBox box;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, box});
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (!frame.box.Feasible()) continue;
    const TreeNode& node = tree.nodes[static_cast<size_t>(frame.node)];
    if (node.is_leaf) {
      fn(frame.node, frame.box);
      continue;
    }
    stack.push_back(Frame{
        node.right,
        frame.box.AtOrAbove(node.feature, node.threshold,
                            /*nan_side=*/!node.default_left)});
    stack.push_back(Frame{
        node.left, frame.box.Below(node.feature, node.threshold,
                                   /*nan_side=*/node.default_left)});
  }
}

}  // namespace t3

#endif  // T3_ANALYSIS_INTERVAL_DOMAIN_H_
