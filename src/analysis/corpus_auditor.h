#ifndef T3_ANALYSIS_CORPUS_AUDITOR_H_
#define T3_ANALYSIS_CORPUS_AUDITOR_H_

#include <string>

#include "analysis/report.h"
#include "harness/corpus.h"

namespace t3 {

/// Static auditor of parsed corpora — the last stop of the plan -> features
/// -> corpus data path. The corpus parser only checks syntax; this pass
/// checks that the parsed records are *internally consistent*: every plan
/// skeleton passes PlanVerifier, every feature vector passes FeatureAuditor,
/// medians really are the medians of their runs, pipeline blocks line up
/// with a recomputed decomposition, and the per-pipeline stage counts in
/// FT/FE match what the featurizer would emit for that plan shape.
///
/// Messages carry the same "<path> line N: " prefix as corpus parse errors
/// (CorpusMessagePrefix); diagnostics anchor `tree` to the record index and
/// `node` to a plan-node, pipeline, or feature index depending on the
/// check. Check ids (beyond merged plan-*/feature-* findings):
///   corpus-label         — non-finite or non-positive training label.
///   corpus-runs          — run-count mismatch between R/T/P lines.
///   corpus-median        — stored median is not the median of its runs.
///   corpus-time          — negative or non-finite measured seconds.
///   corpus-pipeline      — pipeline ids out of order or block sizes
///                          inconsistent.
///   corpus-decomposition — pipeline count diverges from the recomputed
///                          decomposition of the plan skeleton.
///   corpus-count         — FT/FE stage-count features diverge from the
///                          recomputed decomposition's stage multiset.
///   corpus-card          — estimated input cardinality diverges from the
///                          pipeline source's plan cardinality.
///   corpus-duplicate     — identical (instance, plan, features) record
///                          seen earlier (warning: double-counted row).
///
/// Header-only over harness structs (plain data members), so it lives in
/// t3_analysis without a harness link and BuildLiveCorpus can self-audit.
class CorpusAuditor {
 public:
  /// Audits every record plus cross-record duplicate detection. `path`
  /// prefixes messages (empty = parsed from memory).
  AnalysisReport Audit(const Corpus& corpus, const std::string& path) const;

  /// Audits one record in isolation.
  AnalysisReport AuditRecord(const QueryRecord& record, int record_index,
                             const std::string& path) const;
};

}  // namespace t3

#endif  // T3_ANALYSIS_CORPUS_AUDITOR_H_
