#ifndef T3_ANALYSIS_TRANSLATION_VALIDATOR_H_
#define T3_ANALYSIS_TRANSLATION_VALIDATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/report.h"
#include "analysis/tree_lifter.h"
#include "gbt/forest.h"

namespace t3 {

/// Structural pass shared by the scalar and batch validators: simultaneous
/// descent of IR tree `tree` and lifted tree `lifted` under the emitters'
/// common correspondence (IR left child = jump/mask-true child, IR right
/// child = fallthrough/mask-false child). Bit-equal thresholds and leaf
/// values, matching split feature and NaN routing. Checks:
/// `shape-mismatch`, `feature-mismatch`, `threshold-mismatch`,
/// `leaf-value-mismatch`, `nan-routing-mismatch`,
/// `branch-polarity-mismatch` (all Error).
void CheckLiftedTreeStructure(const Tree& tree, const LiftedTree& lifted,
                              int tree_index, AnalysisReport* report);

/// Semantic pass shared by the scalar and batch validators: an
/// interval-analysis proof (`semantic-mismatch`, Error) that `lifted` and
/// `tree` agree as functions — for every leaf cell of the IR tree, every
/// lifted leaf reachable under that cell returns the IR leaf's exact bits.
/// Requires every lifted split feature in [0, num_features).
void CheckLiftedTreeSemantics(const Tree& tree, const LiftedTree& lifted,
                              int num_features, int tree_index,
                              AnalysisReport* report);

/// Translation validator: a static proof that the machine code TreeJit
/// emitted computes exactly the forest it was emitted from. This closes the
/// gap the JitCodeAuditor leaves open — the auditor proves the bytes are
/// *safe* (contained control flow, in-bounds loads); this pass proves they
/// are *correct*.
///
/// Pipeline, per tree region [entries[i], entries[i+1]):
///  1. Decode the bytes with the shared x86 decoder and lift them back into
///     a decision tree (analysis/tree_lifter.h) — feature index, threshold
///     bits, NaN-routing polarity, and leaf bits per path.
///  2. Structural pass against gbt::Forest tree i: same shape under the
///     emitter's node correspondence (IR left child = branch target, right
///     child = fallthrough), bit-equal thresholds and leaf values, matching
///     split feature and NaN routing. Checks: `shape-mismatch`,
///     `feature-mismatch`, `threshold-mismatch`, `leaf-value-mismatch`,
///     `nan-routing-mismatch`, `branch-polarity-mismatch` (all Error).
///  3. Semantic pass (`semantic-mismatch`, Error): an interval-analysis
///     proof that the lifted tree and the IR tree agree as *functions*.
///     Descending the IR tree partitions the feature space into its leaf
///     cells — axis-aligned boxes over the exact ordered-key domain
///     (analysis/interval_domain.h), where every split threshold, ±inf, and
///     denormal boundary is an integer bound and NaN is tracked per
///     feature. For each cell, every lifted leaf reachable under that cell
///     must return the IR leaf's exact bits. Because the cells cover the
///     whole domain and the arithmetic is exact, agreement on every cell is
///     a proof of pointwise equality, not a sample test.
///
/// Both passes always run (a structurally different buffer still gets a
/// semantic verdict with a concrete witness row). Per-tree equivalence
/// plus identical summation order in CompiledForest::Predict gives forest
/// equivalence. The pass is pure byte inspection and runs on any host.
class TranslationValidator {
 public:
  /// Validates emitted code (`code`/`size`, tree functions at `entries`)
  /// against `forest`. The forest must pass Forest::Validate — a
  /// `invalid-forest` error is reported otherwise. `tree-count-mismatch`
  /// is reported when the region and tree counts differ.
  AnalysisReport Validate(const Forest& forest, const uint8_t* code,
                          size_t size,
                          const std::vector<size_t>& entries) const;
};

}  // namespace t3

#endif  // T3_ANALYSIS_TRANSLATION_VALIDATOR_H_
