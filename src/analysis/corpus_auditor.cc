#include "analysis/corpus_auditor.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "analysis/feature_auditor.h"
#include "analysis/plan_verifier.h"
#include "common/hash.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "features/feature_registry.h"
#include "features/stage_catalog.h"
#include "plan/pipeline.h"
#include "plan/plan.h"

namespace t3 {
namespace {

/// Structural fingerprint of a record — everything except measured timings,
/// so two benchmark repetitions of the same generated query collide. A
/// duplicate double-counts one plan shape in training.
uint64_t RecordFingerprint(const QueryRecord& record) {
  Fnv1a hasher;
  hasher.LengthPrefixedString(record.instance);
  hasher.U64(record.is_test ? 1 : 0);
  hasher.U64(static_cast<uint64_t>(record.scale_index));
  hasher.U64(static_cast<uint64_t>(record.structure_group));
  hasher.U64(record.fixed_suite ? 1 : 0);
  hasher.U64(record.plan_nodes.size());
  for (const PlanNodeRecord& node : record.plan_nodes) {
    hasher.U64(static_cast<uint64_t>(node.op));
    hasher.U64(static_cast<uint64_t>(node.left));
    hasher.U64(static_cast<uint64_t>(node.right));
    hasher.F64(node.cardinality);
    hasher.F64(node.extra);
    hasher.F64(node.width);
    hasher.U64(static_cast<uint64_t>(node.stage));
  }
  auto fold_features = [&](const std::vector<PipelineFeatures>& features) {
    hasher.U64(features.size());
    for (const PipelineFeatures& f : features) {
      hasher.U64(static_cast<uint64_t>(f.pipeline));
      hasher.F64(f.input_cardinality);
      hasher.U64(f.values.size());
      for (double v : f.values) hasher.F64(v);
    }
  };
  fold_features(record.feat_true);
  fold_features(record.feat_est);
  return hasher.hash();
}

/// Re-adds `from`'s diagnostics into `report` anchored at this record
/// (tree = record index) with the corpus file/line prefix, so a plan or
/// feature finding inside record 17 names the record's source line.
void MergeNested(AnalysisReport* report, const AnalysisReport& from,
                 int record_index, const std::string& prefix) {
  for (const Diagnostic& diag : from.diagnostics()) {
    report->Add(diag.severity, diag.check, record_index, diag.node,
                prefix + diag.message);
  }
}

}  // namespace

AnalysisReport CorpusAuditor::AuditRecord(const QueryRecord& record,
                                          int record_index,
                                          const std::string& path) const {
  AnalysisReport report;
  const std::string prefix = CorpusMessagePrefix(path, record.source_line);

  // --- Labels and timings. ---
  if (!std::isfinite(record.median_seconds) || record.median_seconds <= 0.0) {
    report.Add(Severity::kError, "corpus-label", record_index, -1,
               prefix + StrFormat("record %d: median %g must be finite and "
                                  "positive (it is the training label)",
                                  record_index, record.median_seconds));
  }
  if (record.runs <= 0) {
    report.Add(Severity::kError, "corpus-runs", record_index, -1,
               prefix + StrFormat("record %d: run count %d must be positive",
                                  record_index, record.runs));
  }
  if (record.total_run_seconds.size() != static_cast<size_t>(record.runs)) {
    report.Add(
        Severity::kError, "corpus-runs", record_index, -1,
        prefix + StrFormat("record %d: T line has %zu values for %d runs",
                           record_index, record.total_run_seconds.size(),
                           record.runs));
  }
  bool runs_clean = true;
  for (size_t r = 0; r < record.total_run_seconds.size(); ++r) {
    const double v = record.total_run_seconds[r];
    if (!std::isfinite(v) || v < 0.0) {
      runs_clean = false;
      report.Add(Severity::kError, "corpus-time", record_index,
                 static_cast<int>(r),
                 prefix + StrFormat("record %d: run %zu seconds %g must be "
                                    "finite and non-negative",
                                    record_index, r, v));
    }
  }
  // %.17g serialization round-trips doubles bit-exactly, so the stored
  // median must equal the median recomputed from the stored runs.
  if (runs_clean && !record.total_run_seconds.empty() &&
      std::isfinite(record.median_seconds) &&
      Median(record.total_run_seconds) != record.median_seconds) {
    report.Add(Severity::kError, "corpus-median", record_index, -1,
               prefix + StrFormat("record %d: stored median %.17g is not "
                                  "the median of its %zu runs (%.17g)",
                                  record_index, record.median_seconds,
                                  record.total_run_seconds.size(),
                                  Median(record.total_run_seconds)));
  }

  // --- Pipeline block shape: P / FT / FE must line up. ---
  const size_t num_pipelines = record.feat_true.size();
  if (record.pipeline_times.size() != num_pipelines ||
      record.feat_est.size() != num_pipelines) {
    report.Add(Severity::kError, "corpus-pipeline", record_index, -1,
               prefix + StrFormat("record %d: %zu P / %zu FT / %zu FE blocks "
                                  "must match",
                                  record_index, record.pipeline_times.size(),
                                  record.feat_true.size(),
                                  record.feat_est.size()));
  }
  for (size_t p = 0; p < record.pipeline_times.size(); ++p) {
    const PipelineTiming& timing = record.pipeline_times[p];
    if (timing.pipeline != static_cast<int>(p)) {
      report.Add(Severity::kError, "corpus-pipeline", record_index,
                 static_cast<int>(p),
                 prefix + StrFormat("record %d: P block %zu carries pipeline "
                                    "id %d",
                                    record_index, p, timing.pipeline));
    }
    if (timing.run_seconds.size() != static_cast<size_t>(record.runs)) {
      report.Add(Severity::kError, "corpus-runs", record_index,
                 static_cast<int>(p),
                 prefix + StrFormat("record %d: pipeline %zu has %zu run "
                                    "values for %d runs",
                                    record_index, p, timing.run_seconds.size(),
                                    record.runs));
      continue;
    }
    bool pipeline_runs_clean = true;
    for (size_t r = 0; r < timing.run_seconds.size(); ++r) {
      const double v = timing.run_seconds[r];
      if (!std::isfinite(v) || v < 0.0) {
        pipeline_runs_clean = false;
        report.Add(Severity::kError, "corpus-time", record_index,
                   static_cast<int>(p),
                   prefix + StrFormat("record %d: pipeline %zu run %zu "
                                      "seconds %g must be finite and "
                                      "non-negative",
                                      record_index, p, r, v));
      }
    }
    if (pipeline_runs_clean && !timing.run_seconds.empty() &&
        Median(timing.run_seconds) != timing.median_seconds) {
      report.Add(Severity::kError, "corpus-median", record_index,
                 static_cast<int>(p),
                 prefix + StrFormat("record %d: pipeline %zu stored median "
                                    "%.17g is not the median of its runs "
                                    "(%.17g)",
                                    record_index, p, timing.median_seconds,
                                    Median(timing.run_seconds)));
    }
  }

  // --- Feature vectors (FeatureAuditor per vector + true/est pairing). ---
  const FeatureAuditor feature_auditor;
  for (size_t p = 0; p < record.feat_true.size(); ++p) {
    const PipelineFeatures& ft = record.feat_true[p];
    if (ft.pipeline != static_cast<int>(p)) {
      report.Add(Severity::kError, "corpus-pipeline", record_index,
                 static_cast<int>(p),
                 prefix + StrFormat("record %d: FT block %zu carries "
                                    "pipeline id %d",
                                    record_index, p, ft.pipeline));
    }
    MergeNested(&report,
                feature_auditor.AuditVector(
                    ft.values, StrFormat("record %d FT pipeline %zu",
                                         record_index, p)),
                record_index, prefix);
  }
  for (size_t p = 0; p < record.feat_est.size(); ++p) {
    const PipelineFeatures& fe = record.feat_est[p];
    if (fe.pipeline != static_cast<int>(p)) {
      report.Add(Severity::kError, "corpus-pipeline", record_index,
                 static_cast<int>(p),
                 prefix + StrFormat("record %d: FE block %zu carries "
                                    "pipeline id %d",
                                    record_index, p, fe.pipeline));
    }
    if (!std::isfinite(fe.input_cardinality) || fe.input_cardinality < 0.0) {
      report.Add(Severity::kError, "corpus-card", record_index,
                 static_cast<int>(p),
                 prefix + StrFormat("record %d: FE pipeline %zu input "
                                    "cardinality %g must be finite and "
                                    "non-negative",
                                    record_index, p, fe.input_cardinality));
    }
    MergeNested(&report,
                feature_auditor.AuditVector(
                    fe.values, StrFormat("record %d FE pipeline %zu",
                                         record_index, p)),
                record_index, prefix);
    if (p < record.feat_true.size()) {
      MergeNested(&report,
                  feature_auditor.AuditVectorPair(
                      record.feat_true[p].values, fe.values,
                      StrFormat("record %d pipeline %zu", record_index, p)),
                  record_index, prefix);
    }
  }

  // --- Plan skeleton (PlanVerifier over the N rows). ---
  const AnalysisReport plan_report =
      PlanVerifier().VerifyRecords(record.plan_nodes);
  MergeNested(&report, plan_report, record_index, prefix);
  // Decomposition cross-checks need a sound plan skeleton; feature-level
  // findings above do not block them (check_counts guards dimensions).
  if (plan_report.HasErrors()) return report;

  // --- Cross-checks against the recomputed decomposition. The skeleton is
  // structurally sound here, so rehydration and decomposition succeed. ---
  Result<PhysicalPlan> plan = PlanFromRecords(record.plan_nodes);
  if (!plan.ok()) return report;  // Already diagnosed above if reachable.
  Result<PipelineDecomposition> decomposition = DecomposePipelines(*plan);
  if (!decomposition.ok()) return report;
  const std::vector<Pipeline>& pipelines = decomposition->pipelines;
  if (pipelines.size() != num_pipelines) {
    report.Add(Severity::kError, "corpus-decomposition", record_index, -1,
               prefix + StrFormat("record %d: %zu feature blocks but the "
                                  "plan decomposes into %zu pipelines",
                                  record_index, num_pipelines,
                                  pipelines.size()));
    return report;
  }

  const FeatureRegistry& registry = FeatureRegistry::Get();
  const size_t catalog_size = StageCatalog().size();
  for (size_t p = 0; p < pipelines.size(); ++p) {
    const Pipeline& pipeline = pipelines[p];
    // Expected per-stage occurrence counts from the decomposition: the
    // featurizer derives count features purely from pipeline shape, so they
    // must match in both cardinality modes.
    std::vector<double> expected_counts(catalog_size, 0.0);
    bool stages_known = true;
    for (size_t i = 0; i < pipeline.nodes.size(); ++i) {
      const OpStage stage = PipelineStageAt(*plan, pipeline.nodes, i,
                                            pipeline.builds_hash_table);
      const int stage_index =
          StageIndexOf((*plan).nodes[static_cast<size_t>(pipeline.nodes[i])].op,
                       stage);
      if (stage_index < 0 ||
          static_cast<size_t>(stage_index) >= catalog_size) {
        stages_known = false;
        continue;
      }
      expected_counts[static_cast<size_t>(stage_index)] += 1.0;
    }
    auto check_counts = [&](const PipelineFeatures& features,
                            const char* tag) {
      if (static_cast<int>(features.values.size()) != kFeatureDim) return;
      for (size_t s = 0; s < catalog_size; ++s) {
        const int index =
            registry.StageFeature(static_cast<int>(s), FeatureKind::kCount);
        if (index < 0) continue;
        const double actual = features.values[static_cast<size_t>(index)];
        if (actual != expected_counts[s]) {
          report.Add(Severity::kError, "corpus-count", record_index, index,
                     prefix + StrFormat("record %d: %s pipeline %zu %s = %g "
                                        "but the plan's decomposition has %g",
                                        record_index, tag, p,
                                        registry.def(index).name.c_str(),
                                        actual, expected_counts[s]));
        }
      }
    };
    if (stages_known) {
      check_counts(record.feat_true[p], "FT");
      if (p < record.feat_est.size()) check_counts(record.feat_est[p], "FE");
    }
    // The featurizer sets the estimated input cardinality to the source
    // node's plan cardinality annotation, bit-exactly.
    if (p < record.feat_est.size()) {
      const double source_card =
          (*plan).nodes[static_cast<size_t>(pipeline.source())].cardinality;
      if (record.feat_est[p].input_cardinality != source_card) {
        report.Add(Severity::kError, "corpus-card", record_index,
                   static_cast<int>(p),
                   prefix + StrFormat("record %d: FE pipeline %zu input "
                                      "cardinality %.17g differs from source "
                                      "node %d's annotation %.17g",
                                      record_index, p,
                                      record.feat_est[p].input_cardinality,
                                      pipeline.source(), source_card));
      }
    }
  }
  return report;
}

AnalysisReport CorpusAuditor::Audit(const Corpus& corpus,
                                    const std::string& path) const {
  AnalysisReport report;
  std::map<uint64_t, int> fingerprints;
  for (size_t i = 0; i < corpus.records.size(); ++i) {
    const QueryRecord& record = corpus.records[i];
    report.Merge(AuditRecord(record, static_cast<int>(i), path));
    auto inserted = fingerprints.emplace(RecordFingerprint(record),
                                         static_cast<int>(i));
    if (!inserted.second) {
      report.Add(Severity::kWarning, "corpus-duplicate", static_cast<int>(i),
                 -1,
                 CorpusMessagePrefix(path, record.source_line) +
                     StrFormat("record %zu duplicates record %d (same "
                               "instance, plan, and features; timings "
                               "ignored)",
                               i, inserted.first->second));
    }
  }
  return report;
}

}  // namespace t3
