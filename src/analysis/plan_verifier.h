#ifndef T3_ANALYSIS_PLAN_VERIFIER_H_
#define T3_ANALYSIS_PLAN_VERIFIER_H_

#include <vector>

#include "analysis/report.h"
#include "plan/plan.h"
#include "plan/plan_record.h"

namespace t3 {

/// Static verifier for physical plans — the data-path counterpart of
/// ForestVerifier. ValidatePlan stops at the first problem (it gates
/// execution); this pass keeps going and reports every invariant violation
/// of a loaded plan, independent of how it was built, so t3_lint can show a
/// corrupted fixture's full damage at once.
///
/// Diagnostics anchor `node` to the plan node index (`tree` stays -1; plans
/// have no tree axis). Check ids:
///   plan-empty      — the plan has no nodes.
///   plan-op         — unknown operator code.
///   plan-arity      — wrong child count for the operator.
///   plan-topology   — child reference at or above the node (a cycle under
///                     children-before-parents order) or out of range.
///   plan-consumer   — a non-root node consumed != exactly once.
///   plan-root       — the root is not kOutput, or kOutput appears below it.
///   plan-annotation — non-finite or negative cardinality/width, or
///                     non-finite extra.
///   plan-payload    — payload shape invalid for the op (empty predicate
///                     list, unpaired join keys, negative limit, ...).
///   plan-extra      — node.extra diverges from PlanNodeExtra(node).
///   plan-stage      — stage tags diverge from a recomputed pipeline
///                     decomposition (e.g. a zeroed breaker tag).
///   plan-breaker    — a pipeline's source/sink/interior operator violates
///                     breaker placement (T3 §3 pipeline rules), or its
///                     driving cardinality is insane.
///   plan-schema     — catalog type-checking failed (only with a catalog).
///   plan-width      — width annotation diverges from the schema width
///                     (warning; callers may overwrite annotations).
class PlanVerifier {
 public:
  /// Verifies a payload-carrying plan. With a catalog, additionally resolves
  /// every operator edge's schema (the executor's type checks) and
  /// cross-checks width annotations.
  AnalysisReport Verify(const PhysicalPlan& plan,
                        const Catalog* catalog = nullptr) const;

  /// Verifies serialized plan rows (corpus "N" lines / "t3plan v1" files):
  /// record-level structure first, then — when structurally sound — the full
  /// plan checks over the rehydrated skeleton. Skeletons carry no payloads,
  /// so catalog checks do not apply.
  AnalysisReport VerifyRecords(
      const std::vector<PlanNodeRecord>& records) const;
};

}  // namespace t3

#endif  // T3_ANALYSIS_PLAN_VERIFIER_H_
