#ifndef T3_ANALYSIS_FOREST_VERIFIER_H_
#define T3_ANALYSIS_FOREST_VERIFIER_H_

#include "analysis/report.h"
#include "gbt/forest.h"

namespace t3 {

/// Which ForestVerifier passes run. Structural and semantic *error* checks
/// always run; the interval-analysis warnings can be switched off for
/// latency-sensitive callers (the loader skips them; `t3_lint` runs all).
struct VerifyOptions {
  bool warn_dead_branches = true;
  bool warn_duplicate_thresholds = true;
  bool warn_inconsistent_nan_routing = true;
};

/// Static verifier over the loaded gbt::Forest IR — the front half of the
/// compiled-tree trust chain (the JitCodeAuditor is the back half: it checks
/// the machine code emitted *from* a forest this pass accepted).
///
/// Error-severity checks (a model failing any of these is rejected by
/// Forest::FromText and by CompiledForest::Compile):
///  - `bad-num-features` / `nonfinite-base-score`: forest header sanity.
///  - `empty-tree`: a tree with no nodes.
///  - `bad-feature-index`: split feature outside [0, num_features).
///  - `nonfinite-threshold` / `nonfinite-leaf-value`: NaN or infinity where
///    a finite double is required.
///  - `missing-child`: inner node whose left/right index is outside the
///    node array (includes the -1 "no child" encoding).
///  - `node-shared`: a node reachable twice from the root — a cycle or a
///    diamond; trees must be trees.
///  - `orphan-node`: a node the root cannot reach.
///  - `leaf-count-mismatch`: leaves != inner nodes + 1, the binary-tree
///    arithmetic every well-formed tree satisfies.
///
/// Warning-severity checks (model still loads; the trainer should never
/// produce these, so they flag a corrupt or hand-edited file):
///  - `dead-branch`: a child no input can reach, proven by propagating the
///    per-feature interval each ancestor split implies (NaN routing
///    included: a numerically empty side is only dead if NaN cannot be
///    routed there either).
///  - `duplicate-threshold`: a split repeating an ancestor's exact
///    (feature, threshold) pair — one side is necessarily dead.
///  - `inconsistent-nan-routing`: a feature split with default_left=true in
///    one place and false in another; legal, but our trainer emits a single
///    routing policy, so mixed flags mean the file was not produced by it.
class ForestVerifier {
 public:
  explicit ForestVerifier(const VerifyOptions& options = {})
      : options_(options) {}

  /// Runs every enabled pass; never mutates the forest, never gives up
  /// early — the report lists all findings.
  AnalysisReport Verify(const Forest& forest) const;

 private:
  VerifyOptions options_;
};

}  // namespace t3

#endif  // T3_ANALYSIS_FOREST_VERIFIER_H_
