#ifndef T3_ANALYSIS_X86_DECODER_H_
#define T3_ANALYSIS_X86_DECODER_H_

#include <cstddef>
#include <cstdint>
#include <map>

namespace t3 {

/// The instruction vocabulary TreeJit emits — nothing else may appear in an
/// audited buffer. Shared by every machine-code analysis pass
/// (JitCodeAuditor, TreeLifter) and by their tests.
enum class JitOp {
  kMovRaxImm64,     ///< 48 B8 imm64            mov rax, <bits>
  kMovqXmm0Rax,     ///< 66 48 0F 6E C0         movq xmm0, rax
  kMovqXmm1Rax,     ///< 66 48 0F 6E C8         movq xmm1, rax
  kLoadFeature8,    ///< F2 0F 10 47 disp8      movsd xmm0, [rdi + disp8]
  kLoadFeature32,   ///< F2 0F 10 87 disp32     movsd xmm0, [rdi + disp32]
  kUcomisdXmm1Xmm0, ///< 66 0F 2E C8            ucomisd xmm1, xmm0
  kUcomisdXmm0Xmm1, ///< 66 0F 2E C1            ucomisd xmm0, xmm1
  kJa,              ///< 0F 87 rel32            ja <target>
  kJb,              ///< 0F 82 rel32            jb <target>
  kRet,             ///< C3                     ret
};

/// One decoded instruction of an emitted code buffer.
struct JitInstruction {
  JitOp op;
  size_t offset = 0;  ///< Byte offset in the code buffer.
  size_t length = 0;  ///< Encoded length in bytes.
  size_t target = 0;  ///< Branch destination (kJa / kJb only).
  uint32_t disp = 0;  ///< Feature-load displacement (kLoadFeature*).
  uint64_t imm = 0;   ///< Immediate bits (kMovRaxImm64 only).
};

/// Decodes one instruction at `offset` against the emitter whitelist; false
/// when the bytes match nothing in it. Pure byte inspection — works on any
/// host, including non-x86-64 builds auditing serialized buffers.
bool DecodeInstruction(const uint8_t* code, size_t size, size_t offset,
                       JitInstruction* out);

/// A whole buffer decoded front to back. On failure `instructions` holds
/// everything decoded before the stream desynchronized at `error_offset`.
struct DecodedCode {
  /// Instructions keyed by byte offset; the key set doubles as the set of
  /// valid instruction boundaries (branch targets, tree entries).
  std::map<size_t, JitInstruction> instructions;
  bool ok = false;
  size_t error_offset = 0;  ///< First undecodable offset (when !ok).
};

/// Linearly decodes `size` bytes starting at offset 0. Every byte must
/// belong to exactly one whitelisted instruction for `ok` to hold.
DecodedCode DecodeLinear(const uint8_t* code, size_t size);

}  // namespace t3

#endif  // T3_ANALYSIS_X86_DECODER_H_
