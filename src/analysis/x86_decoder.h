#ifndef T3_ANALYSIS_X86_DECODER_H_
#define T3_ANALYSIS_X86_DECODER_H_

#include <cstddef>
#include <cstdint>
#include <map>

namespace t3 {

/// The instruction vocabulary TreeJit emits — nothing else may appear in an
/// audited buffer. Shared by every machine-code analysis pass
/// (JitCodeAuditor, TreeLifter) and by their tests.
enum class JitOp {
  kMovRaxImm64,     ///< 48 B8 imm64            mov rax, <bits>
  kMovqXmm0Rax,     ///< 66 48 0F 6E C0         movq xmm0, rax
  kMovqXmm1Rax,     ///< 66 48 0F 6E C8         movq xmm1, rax
  kLoadFeature8,    ///< F2 0F 10 47 disp8      movsd xmm0, [rdi + disp8]
  kLoadFeature32,   ///< F2 0F 10 87 disp32     movsd xmm0, [rdi + disp32]
  kUcomisdXmm1Xmm0, ///< 66 0F 2E C8            ucomisd xmm1, xmm0
  kUcomisdXmm0Xmm1, ///< 66 0F 2E C1            ucomisd xmm0, xmm1
  kJa,              ///< 0F 87 rel32            ja <target>
  kJb,              ///< 0F 82 rel32            jb <target>
  kRet,             ///< C3                     ret
  // --- AVX vocabulary of the batch kernels (EmitForestBatchCode). Every
  // VEX-encoded op the batch emitter produces uses ymm0-ymm7 with the
  // 2-byte VEX prefix, L=1 (256-bit) and pp=01 (0x66); each memory form is
  // pinned to the single base register the emitter uses for it, always
  // with a disp32 — any other encoding of the same mnemonic is rejected.
  kSubRspImm32,     ///< 48 81 EC imm32         sub rsp, imm32
  kAddRspImm32,     ///< 48 81 C4 imm32         add rsp, imm32
  kVzeroupper,      ///< C5 F8 77               vzeroupper
  kVbroadcastsd,    ///< C4 E2 7D 19 /r         vbroadcastsd ymm, [rip+disp32]
  kVcmppdRR,        ///< C5 .. C2 /r ib         vcmppd ymm, ymm, ymm, imm8
  kVcmppdRdiMem,    ///< C5 .. C2 /r ib         vcmppd ymm, ymm, [rdi+disp32], imm8
  kVandpd,          ///< C5 .. 54 /r            vandpd ymm, ymm, ymm
  kVandnpd,         ///< C5 .. 55 /r            vandnpd ymm, ymm, ymm
  kVorpd,           ///< C5 .. 56 /r            vorpd ymm, ymm, ymm
  kVxorpd,          ///< C5 .. 57 /r            vxorpd ymm, ymm, ymm
  kVaddpdRsiMem,    ///< C5 .. 58 /r            vaddpd ymm, ymm, [rsi+disp32]
  kVmovupdLoadRsp,  ///< C5 FD 10 /r            vmovupd ymm, [rsp+disp32]
  kVmovupdStoreRsp, ///< C5 FD 11 /r            vmovupd [rsp+disp32], ymm
  kVmovupdStoreRsi, ///< C5 FD 11 /r            vmovupd [rsi+disp32], ymm
};

/// One decoded instruction of an emitted code buffer.
struct JitInstruction {
  JitOp op;
  size_t offset = 0;  ///< Byte offset in the code buffer.
  size_t length = 0;  ///< Encoded length in bytes.
  size_t target = 0;  ///< Branch destination (kJa / kJb) or the absolute
                      ///  buffer offset a kVbroadcastsd rip operand reads.
  uint32_t disp = 0;  ///< Memory displacement (feature loads, vector memory
                      ///  forms) or the imm32 of kSubRspImm32/kAddRspImm32.
  uint64_t imm = 0;   ///< Immediate bits (kMovRaxImm64 only).
  uint8_t dst = 0;    ///< Vector ops: modrm.reg ymm register — the
                      ///  destination, or the stored source for stores.
  uint8_t src1 = 0;   ///< Vector ops: first-source (VEX.vvvv) ymm register;
                      ///  0 for ops whose vvvv slot is unused.
  uint8_t src2 = 0;   ///< Vector reg-reg ops: second-source ymm register.
  uint8_t pred = 0;   ///< kVcmppd*: comparison predicate immediate.
};

/// Decodes one instruction at `offset` against the emitter whitelist; false
/// when the bytes match nothing in it. Pure byte inspection — works on any
/// host, including non-x86-64 builds auditing serialized buffers.
bool DecodeInstruction(const uint8_t* code, size_t size, size_t offset,
                       JitInstruction* out);

/// A whole buffer decoded front to back. On failure `instructions` holds
/// everything decoded before the stream desynchronized at `error_offset`.
struct DecodedCode {
  /// Instructions keyed by byte offset; the key set doubles as the set of
  /// valid instruction boundaries (branch targets, tree entries).
  std::map<size_t, JitInstruction> instructions;
  bool ok = false;
  size_t error_offset = 0;  ///< First undecodable offset (when !ok).
};

/// Linearly decodes `size` bytes starting at offset 0. Every byte must
/// belong to exactly one whitelisted instruction for `ok` to hold.
DecodedCode DecodeLinear(const uint8_t* code, size_t size);

}  // namespace t3

#endif  // T3_ANALYSIS_X86_DECODER_H_
