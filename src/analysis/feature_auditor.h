#ifndef T3_ANALYSIS_FEATURE_AUDITOR_H_
#define T3_ANALYSIS_FEATURE_AUDITOR_H_

#include <string>
#include <vector>

#include "analysis/report.h"
#include "gbt/forest.h"

namespace t3 {

/// Static auditor of the feature contract: the stage catalog x feature
/// registry x featurizer agreement that every corpus vector and every
/// trained model depend on. Two halves:
///
///  - AuditRegistry checks the registry itself (t3_lint runs it once per
///    invocation): a catalog or registry edit that breaks index stability
///    fails lint before it silently poisons saved corpora and models.
///  - AuditVector / AuditVectorPair check concrete feature vectors (corpus
///    "FT"/"FE" lines, live featurizer output).
///
/// Diagnostics anchor `node` to the feature index (`tree` stays -1). Check
/// ids: registry-dim, registry-name, registry-coverage, registry-stage,
/// registry-count, registry-pred; feature-dim, feature-finite,
/// feature-count, feature-range, feature-mode.
class FeatureAuditor {
 public:
  /// Registry/catalog cross-checks: exactly kFeatureDim indices assigned
  /// once each and in-bounds, unique names, every executor op class mapped
  /// to its required operator-stages, every stage carrying a count feature,
  /// and the 9 predicate-class slots exhaustive over eq/neq/range x
  /// int/float/date.
  AnalysisReport AuditRegistry() const;

  /// One feature vector: dimension == kFeatureDim, every value finite,
  /// count features non-negative integers, percentage features in [0, 100],
  /// cardinalities and sizes non-negative. `context` prefixes messages
  /// (e.g. "FT pipeline 2").
  AnalysisReport AuditVector(const std::vector<double>& values,
                             const std::string& context) const;

  /// True-vs-estimated structural identity: equal dimensions and bit-equal
  /// count features (cardinality mode changes magnitudes, never structure).
  AnalysisReport AuditVectorPair(const std::vector<double>& feat_true,
                                 const std::vector<double>& feat_est,
                                 const std::string& context) const;

  /// Names of registry features never split on by `forest` — the dead-
  /// feature report (informational; t3_lint emits it outside the exit-code
  /// contract). Empty when the forest's feature space is not the registry's.
  std::vector<std::string> DeadFeatures(const Forest& forest) const;
};

}  // namespace t3

#endif  // T3_ANALYSIS_FEATURE_AUDITOR_H_
