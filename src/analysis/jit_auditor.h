#ifndef T3_ANALYSIS_JIT_AUDITOR_H_
#define T3_ANALYSIS_JIT_AUDITOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/report.h"

namespace t3 {

/// The instruction vocabulary TreeJit emits — nothing else may appear in an
/// audited buffer. Exposed for tests and for the disassembly listing.
enum class JitOp {
  kMovRaxImm64,     ///< 48 B8 imm64            mov rax, <bits>
  kMovqXmm0Rax,     ///< 66 48 0F 6E C0         movq xmm0, rax
  kMovqXmm1Rax,     ///< 66 48 0F 6E C8         movq xmm1, rax
  kLoadFeature8,    ///< F2 0F 10 47 disp8      movsd xmm0, [rdi + disp8]
  kLoadFeature32,   ///< F2 0F 10 87 disp32     movsd xmm0, [rdi + disp32]
  kUcomisdXmm1Xmm0, ///< 66 0F 2E C8            ucomisd xmm1, xmm0
  kUcomisdXmm0Xmm1, ///< 66 0F 2E C1            ucomisd xmm0, xmm1
  kJa,              ///< 0F 87 rel32            ja <target>
  kJb,              ///< 0F 82 rel32            jb <target>
  kRet,             ///< C3                     ret
};

/// One decoded instruction of an audited buffer.
struct JitInstruction {
  JitOp op;
  size_t offset = 0;      ///< Byte offset in the code buffer.
  size_t length = 0;      ///< Encoded length in bytes.
  size_t target = 0;      ///< Branch destination (kJa / kJb only).
  uint32_t disp = 0;      ///< Feature-load displacement (kLoadFeature*).
};

/// Static auditor over the raw bytes TreeJit emitted — the machine-code
/// half of the compiled-tree trust story. The forest IR was already
/// verified (ForestVerifier); this pass proves the *emission* did not break
/// anything, by linearly decoding the buffer with a whitelist-only x86-64
/// decoder and checking, per tree function region [entries[i], entries[i+1]):
///
///  - `unknown-opcode` / `truncated-instruction` (Error): every byte of the
///    buffer belongs to exactly one whitelisted instruction.
///  - `bad-entry` (Error): every entry offset is an instruction boundary
///    inside the buffer, in ascending order.
///  - `bad-branch-target` (Error): every ja/jb lands on an instruction
///    boundary inside its own function region — control flow can never
///    leave the buffer or jump mid-instruction.
///  - `oob-feature-load` (Error): every memory operand is [rdi + 8*k] with
///    k < num_features — a static proof the compiled tree cannot read
///    outside the caller's feature vector.
///  - `fallthrough-out-of-region` (Error): no reachable instruction can
///    fall through past its region's end into the next tree's code.
///  - `unreachable-ret` (Error): every emitted ret is reachable from its
///    region entry — a dead ret means the emitter's layout logic broke.
///  - `unreachable-code` (Warning): any other unreachable instruction.
///
/// The auditor is pure byte inspection: it runs on any host (including
/// non-x86-64 builds, where it still audits serialized buffers in tests).
class JitCodeAuditor {
 public:
  /// Audits `size` bytes of emitted code with tree functions starting at
  /// `entries` (ascending), for a forest with `num_features` features.
  AnalysisReport Audit(const uint8_t* code, size_t size,
                       const std::vector<size_t>& entries,
                       int num_features) const;

  /// Decodes one instruction at `offset`; false (and a diagnostic appended
  /// by Audit) when the bytes match nothing in the whitelist. Exposed for
  /// the auditor's own tests.
  static bool DecodeOne(const uint8_t* code, size_t size, size_t offset,
                        JitInstruction* out);
};

}  // namespace t3

#endif  // T3_ANALYSIS_JIT_AUDITOR_H_
