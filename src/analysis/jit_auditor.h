#ifndef T3_ANALYSIS_JIT_AUDITOR_H_
#define T3_ANALYSIS_JIT_AUDITOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/report.h"
#include "analysis/x86_decoder.h"

namespace t3 {

/// Static auditor over the raw bytes TreeJit emitted — the machine-code
/// half of the compiled-tree trust story. The forest IR was already
/// verified (ForestVerifier); this pass proves the *emission* did not break
/// anything, by linearly decoding the buffer with the shared whitelist-only
/// x86-64 decoder (analysis/x86_decoder.h) and checking, per tree function
/// region [entries[i], entries[i+1]):
///
///  - `unknown-opcode` / `truncated-instruction` (Error): every byte of the
///    buffer belongs to exactly one whitelisted instruction.
///  - `bad-entry` (Error): every entry offset is an instruction boundary
///    inside the buffer, in ascending order.
///  - `bad-branch-target` (Error): every ja/jb lands on an instruction
///    boundary inside its own function region — control flow can never
///    leave the buffer or jump mid-instruction.
///  - `oob-feature-load` (Error): every memory operand is [rdi + 8*k] with
///    k < num_features — a static proof the compiled tree cannot read
///    outside the caller's feature vector.
///  - `fallthrough-out-of-region` (Error): no reachable instruction can
///    fall through past its region's end into the next tree's code.
///  - `unreachable-ret` (Error): every emitted ret is reachable from its
///    region entry — a dead ret means the emitter's layout logic broke.
///  - `unreachable-code` (Warning): any other unreachable instruction.
///
/// The auditor proves memory safety and control-flow containment; it says
/// nothing about *what* the code computes. That is the TranslationValidator's
/// job (analysis/translation_validator.h), which lifts the same decoded
/// stream back into decision trees and proves them equivalent to the IR.
///
/// The auditor is pure byte inspection: it runs on any host (including
/// non-x86-64 builds, where it still audits serialized buffers in tests).
class JitCodeAuditor {
 public:
  /// Audits `size` bytes of emitted code with tree functions starting at
  /// `entries` (ascending), for a forest with `num_features` features.
  AnalysisReport Audit(const uint8_t* code, size_t size,
                       const std::vector<size_t>& entries,
                       int num_features) const;
};

}  // namespace t3

#endif  // T3_ANALYSIS_JIT_AUDITOR_H_
