#ifndef T3_ANALYSIS_JIT_AUDITOR_H_
#define T3_ANALYSIS_JIT_AUDITOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/report.h"
#include "analysis/x86_decoder.h"

namespace t3 {

/// Operand-shape assumptions the auditor checks against, spelled out as
/// constants instead of bare literals so a mismatch reads as "the emitter
/// contract changed", not "a magic number is wrong". Scalar tree code loads
/// one feature as an 8-byte movsd off the row base register; batch kernels
/// address a feature-major 8-lane block as two 32-byte ymm halves per
/// 64-byte feature column, and accumulate into a 64-byte (8-double) output.
inline constexpr uint32_t kScalarFeatureLoadBytes = 8;
inline constexpr const char* kScalarFeatureBaseRegister = "rdi";
inline constexpr const char* kBatchBlockBaseRegister = "rdi";
inline constexpr const char* kBatchAccumulatorBaseRegister = "rsi";
inline constexpr uint32_t kBatchLaneGroupBytes = 32;
inline constexpr uint32_t kBatchFeatureStrideBytes = 64;
inline constexpr uint32_t kBatchAccumulatorBytes = 64;

/// Static auditor over the raw bytes TreeJit emitted — the machine-code
/// half of the compiled-tree trust story. The forest IR was already
/// verified (ForestVerifier); this pass proves the *emission* did not break
/// anything, by linearly decoding the buffer with the shared whitelist-only
/// x86-64 decoder (analysis/x86_decoder.h) and checking, per tree function
/// region [entries[i], entries[i+1]):
///
///  - `unknown-opcode` / `truncated-instruction` (Error): every byte of the
///    buffer belongs to exactly one whitelisted instruction.
///  - `bad-entry` (Error): every entry offset is an instruction boundary
///    inside the buffer, in ascending order.
///  - `bad-branch-target` (Error): every ja/jb lands on an instruction
///    boundary inside its own function region — control flow can never
///    leave the buffer or jump mid-instruction.
///  - `oob-feature-load` (Error): every memory operand is
///    [kScalarFeatureBaseRegister + kScalarFeatureLoadBytes*k] with
///    k < num_features — a static proof the compiled tree cannot read
///    outside the caller's feature vector.
///  - `bad-scalar-layout` (Error): a batch-vocabulary (VEX/vector)
///    instruction inside scalar tree code — the shared decoder accepts
///    both vocabularies, so each audit pins its region to its own
///    emitter's subset.
///  - `fallthrough-out-of-region` (Error): no reachable instruction can
///    fall through past its region's end into the next tree's code.
///  - `unreachable-ret` (Error): every emitted ret is reachable from its
///    region entry — a dead ret means the emitter's layout logic broke.
///  - `unreachable-code` (Warning): any other unreachable instruction.
///
/// The auditor proves memory safety and control-flow containment; it says
/// nothing about *what* the code computes. That is the TranslationValidator's
/// job (analysis/translation_validator.h), which lifts the same decoded
/// stream back into decision trees and proves them equivalent to the IR.
///
/// The auditor is pure byte inspection: it runs on any host (including
/// non-x86-64 builds, where it still audits serialized buffers in tests).
class JitCodeAuditor {
 public:
  /// Audits `size` bytes of emitted code with tree functions starting at
  /// `entries` (ascending), for a forest with `num_features` features.
  AnalysisReport Audit(const uint8_t* code, size_t size,
                       const std::vector<size_t>& entries,
                       int num_features) const;

  /// Audits emitted AVX batch-kernel code (treejit EmitForestBatchCode):
  /// kernels at `entries`, constant pool from `pool_begin` (8-byte aligned
  /// within [pool_begin, size)) — only [0, pool_begin) is decoded. Checks,
  /// beyond the decode/entry checks shared with Audit:
  ///
  ///  - `branch-in-batch-kernel` (Error): kernels are straight-line; any
  ///    ja/jb breaks the masked-evaluation model.
  ///  - `bad-batch-layout` (Error): a scalar-emitter instruction (mov rax /
  ///    movq / movsd / ucomisd) inside a batch region, or a region that
  ///    does not end sub-frame-balanced with `[add rsp] vzeroupper ret` —
  ///    including an early ret, which would strand unreachable code.
  ///  - `bad-frame` (Error): sub rsp anywhere but first, add rsp anywhere
  ///    but third-from-last, mismatched or non-32-byte-aligned frame sizes.
  ///  - `oob-feature-load` (Error): every vcmppd lane load is a 32-byte ymm
  ///    half on a half boundary with disp + 32 <= 64 * num_features — the
  ///    batch analogue of the scalar row-bounds proof.
  ///  - `bad-spill` (Error): every [rsp + d] mask spill/reload has d
  ///    32-byte aligned and d + 32 <= the region's frame size.
  ///  - `oob-acc-access` (Error): every [rsi + d] accumulator access stays
  ///    inside the 64-byte (8-double) output block.
  ///  - `bad-pool-ref` (Error): every vbroadcastsd reads an aligned 8-byte
  ///    constant inside [pool_begin, size).
  ///
  /// Like Audit this proves safety and containment only; the
  /// BatchEquivalenceValidator proves the kernels compute the forest.
  AnalysisReport AuditBatch(const uint8_t* code, size_t size,
                            const std::vector<size_t>& entries,
                            size_t pool_begin, int num_features) const;
};

}  // namespace t3

#endif  // T3_ANALYSIS_JIT_AUDITOR_H_
