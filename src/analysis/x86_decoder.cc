#include "analysis/x86_decoder.h"

#include <initializer_list>

namespace t3 {
namespace {

bool Match(const uint8_t* code, size_t size, size_t offset,
           std::initializer_list<uint8_t> bytes) {
  if (size - offset < bytes.size()) return false;
  size_t i = offset;
  for (const uint8_t b : bytes) {
    if (code[i++] != b) return false;
  }
  return true;
}

uint32_t Read32(const uint8_t* code, size_t offset) {
  return static_cast<uint32_t>(code[offset]) |
         static_cast<uint32_t>(code[offset + 1]) << 8 |
         static_cast<uint32_t>(code[offset + 2]) << 16 |
         static_cast<uint32_t>(code[offset + 3]) << 24;
}

uint64_t Read64(const uint8_t* code, size_t offset) {
  return static_cast<uint64_t>(Read32(code, offset)) |
         static_cast<uint64_t>(Read32(code, offset + 4)) << 32;
}

}  // namespace

bool DecodeInstruction(const uint8_t* code, size_t size, size_t offset,
                       JitInstruction* out) {
  out->offset = offset;
  out->target = 0;
  out->disp = 0;
  out->imm = 0;
  if (Match(code, size, offset, {0xC3})) {
    out->op = JitOp::kRet;
    out->length = 1;
    return true;
  }
  if (Match(code, size, offset, {0x48, 0xB8})) {
    if (size - offset < 10) return false;
    out->op = JitOp::kMovRaxImm64;
    out->length = 10;
    out->imm = Read64(code, offset + 2);
    return true;
  }
  if (Match(code, size, offset, {0x66, 0x48, 0x0F, 0x6E, 0xC0})) {
    out->op = JitOp::kMovqXmm0Rax;
    out->length = 5;
    return true;
  }
  if (Match(code, size, offset, {0x66, 0x48, 0x0F, 0x6E, 0xC8})) {
    out->op = JitOp::kMovqXmm1Rax;
    out->length = 5;
    return true;
  }
  if (Match(code, size, offset, {0xF2, 0x0F, 0x10, 0x47})) {
    if (size - offset < 5) return false;
    out->op = JitOp::kLoadFeature8;
    out->length = 5;
    out->disp = code[offset + 4];
    return true;
  }
  if (Match(code, size, offset, {0xF2, 0x0F, 0x10, 0x87})) {
    if (size - offset < 8) return false;
    out->op = JitOp::kLoadFeature32;
    out->length = 8;
    out->disp = Read32(code, offset + 4);
    return true;
  }
  if (Match(code, size, offset, {0x66, 0x0F, 0x2E, 0xC8})) {
    out->op = JitOp::kUcomisdXmm1Xmm0;
    out->length = 4;
    return true;
  }
  if (Match(code, size, offset, {0x66, 0x0F, 0x2E, 0xC1})) {
    out->op = JitOp::kUcomisdXmm0Xmm1;
    out->length = 4;
    return true;
  }
  if (Match(code, size, offset, {0x0F, 0x87}) ||
      Match(code, size, offset, {0x0F, 0x82})) {
    if (size - offset < 6) return false;
    out->op = code[offset + 1] == 0x87 ? JitOp::kJa : JitOp::kJb;
    out->length = 6;
    const int32_t rel = static_cast<int32_t>(Read32(code, offset + 2));
    // Target relative to the end of the instruction; computed in signed
    // 64-bit so a wild rel32 cannot wrap back into the buffer.
    const int64_t target = static_cast<int64_t>(offset) + 6 + rel;
    // A negative target is clamped past the buffer so every later
    // range check fails it.
    out->target = target < 0 ? size + 1 : static_cast<size_t>(target);
    return true;
  }
  return false;
}

DecodedCode DecodeLinear(const uint8_t* code, size_t size) {
  DecodedCode decoded;
  size_t offset = 0;
  while (offset < size) {
    JitInstruction instruction;
    if (!DecodeInstruction(code, size, offset, &instruction)) {
      decoded.ok = false;
      decoded.error_offset = offset;
      return decoded;
    }
    decoded.instructions[offset] = instruction;
    offset += instruction.length;
  }
  decoded.ok = true;
  return decoded;
}

}  // namespace t3
