#include "analysis/x86_decoder.h"

#include <initializer_list>

namespace t3 {
namespace {

bool Match(const uint8_t* code, size_t size, size_t offset,
           std::initializer_list<uint8_t> bytes) {
  if (size - offset < bytes.size()) return false;
  size_t i = offset;
  for (const uint8_t b : bytes) {
    if (code[i++] != b) return false;
  }
  return true;
}

uint32_t Read32(const uint8_t* code, size_t offset) {
  return static_cast<uint32_t>(code[offset]) |
         static_cast<uint32_t>(code[offset + 1]) << 8 |
         static_cast<uint32_t>(code[offset + 2]) << 16 |
         static_cast<uint32_t>(code[offset + 3]) << 24;
}

uint64_t Read64(const uint8_t* code, size_t offset) {
  return static_cast<uint64_t>(Read32(code, offset)) |
         static_cast<uint64_t>(Read32(code, offset + 4)) << 32;
}

}  // namespace

namespace {

/// Decodes the VEX-encoded batch-kernel vocabulary: 2-byte-VEX ymm ops with
/// pp=01 plus the one 3-byte-VEX op (vbroadcastsd) and the rsp frame
/// bookkeeping around them. Kept separate from the scalar whitelist so the
/// scalar emitter's tight matching above stays byte-for-byte unchanged.
bool DecodeBatchInstruction(const uint8_t* code, size_t size, size_t offset,
                            JitInstruction* out) {
  const auto read32 = [code](size_t at) { return Read32(code, at); };
  if (size - offset >= 3 && code[offset] == 0x48 && code[offset + 1] == 0x81 &&
      (code[offset + 2] == 0xEC || code[offset + 2] == 0xC4)) {
    if (size - offset < 7) return false;
    out->op = code[offset + 2] == 0xEC ? JitOp::kSubRspImm32
                                       : JitOp::kAddRspImm32;
    out->length = 7;
    out->disp = read32(offset + 3);
    return true;
  }
  if (size - offset >= 3 && code[offset] == 0xC5 && code[offset + 1] == 0xF8 &&
      code[offset + 2] == 0x77) {
    out->op = JitOp::kVzeroupper;
    out->length = 3;
    return true;
  }
  if (size - offset >= 5 && code[offset] == 0xC4 && code[offset + 1] == 0xE2 &&
      code[offset + 2] == 0x7D && code[offset + 3] == 0x19) {
    // vbroadcastsd ymm, m64 — rip-relative only (mod=00, rm=101).
    const uint8_t modrm = code[offset + 4];
    if ((modrm & 0xC7) != 0x05) return false;
    if (size - offset < 9) return false;
    out->op = JitOp::kVbroadcastsd;
    out->length = 9;
    out->dst = (modrm >> 3) & 7;
    out->disp = read32(offset + 5);
    // Same signed-math clamp as the jcc targets: rip points past the
    // instruction, and a wild disp32 must not wrap back into the buffer.
    const int64_t target = static_cast<int64_t>(offset) + 9 +
                           static_cast<int32_t>(out->disp);
    out->target = target < 0 ? size + 1 : static_cast<size_t>(target);
    return true;
  }
  if (size - offset < 4 || code[offset] != 0xC5) return false;
  // 2-byte VEX: require R=0 (modrm.reg stays ymm0-7), L=1 (256-bit),
  // pp=01 (the 66 class every batch op belongs to). VEX.vvvv is stored
  // inverted; recover the register number.
  const uint8_t vex = code[offset + 1];
  if ((vex & 0x87) != 0x85) return false;
  const uint8_t vvvv = static_cast<uint8_t>(~(vex >> 3) & 0x0F);
  if (vvvv > 7) return false;
  const uint8_t opcode = code[offset + 2];
  const uint8_t modrm = code[offset + 3];
  const uint8_t mod = modrm >> 6;
  const uint8_t reg = (modrm >> 3) & 7;
  const uint8_t rm = modrm & 7;
  out->dst = reg;
  out->src1 = vvvv;
  switch (opcode) {
    case 0xC2:  // vcmppd
      if (mod == 3) {
        if (size - offset < 5) return false;
        out->op = JitOp::kVcmppdRR;
        out->length = 5;
        out->src2 = rm;
        out->pred = code[offset + 4];
        return true;
      }
      if (mod == 2 && rm == 7) {  // [rdi + disp32]
        if (size - offset < 9) return false;
        out->op = JitOp::kVcmppdRdiMem;
        out->length = 9;
        out->disp = read32(offset + 4);
        out->pred = code[offset + 8];
        return true;
      }
      return false;
    case 0x54:  // vandpd
    case 0x55:  // vandnpd
    case 0x56:  // vorpd
    case 0x57:  // vxorpd
      if (mod != 3) return false;
      out->op = opcode == 0x54   ? JitOp::kVandpd
                : opcode == 0x55 ? JitOp::kVandnpd
                : opcode == 0x56 ? JitOp::kVorpd
                                 : JitOp::kVxorpd;
      out->length = 4;
      out->src2 = rm;
      return true;
    case 0x58:  // vaddpd — memory second source off rsi only
      if (mod != 2 || rm != 6) return false;
      if (size - offset < 8) return false;
      out->op = JitOp::kVaddpdRsiMem;
      out->length = 8;
      out->disp = read32(offset + 4);
      return true;
    case 0x10:  // vmovupd load — [rsp + disp32] only, vvvv unused
      if (vvvv != 0 || mod != 2 || rm != 4) return false;
      if (size - offset < 9 || code[offset + 4] != 0x24) return false;
      out->op = JitOp::kVmovupdLoadRsp;
      out->length = 9;
      out->disp = read32(offset + 5);
      return true;
    case 0x11:  // vmovupd store — [rsp + disp32] or [rsi + disp32]
      if (vvvv != 0 || mod != 2) return false;
      if (rm == 4) {
        if (size - offset < 9 || code[offset + 4] != 0x24) return false;
        out->op = JitOp::kVmovupdStoreRsp;
        out->length = 9;
        out->disp = read32(offset + 5);
        return true;
      }
      if (rm == 6) {
        if (size - offset < 8) return false;
        out->op = JitOp::kVmovupdStoreRsi;
        out->length = 8;
        out->disp = read32(offset + 4);
        return true;
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

bool DecodeInstruction(const uint8_t* code, size_t size, size_t offset,
                       JitInstruction* out) {
  out->offset = offset;
  out->target = 0;
  out->disp = 0;
  out->imm = 0;
  out->dst = 0;
  out->src1 = 0;
  out->src2 = 0;
  out->pred = 0;
  if (Match(code, size, offset, {0xC3})) {
    out->op = JitOp::kRet;
    out->length = 1;
    return true;
  }
  if (Match(code, size, offset, {0x48, 0xB8})) {
    if (size - offset < 10) return false;
    out->op = JitOp::kMovRaxImm64;
    out->length = 10;
    out->imm = Read64(code, offset + 2);
    return true;
  }
  if (Match(code, size, offset, {0x66, 0x48, 0x0F, 0x6E, 0xC0})) {
    out->op = JitOp::kMovqXmm0Rax;
    out->length = 5;
    return true;
  }
  if (Match(code, size, offset, {0x66, 0x48, 0x0F, 0x6E, 0xC8})) {
    out->op = JitOp::kMovqXmm1Rax;
    out->length = 5;
    return true;
  }
  if (Match(code, size, offset, {0xF2, 0x0F, 0x10, 0x47})) {
    if (size - offset < 5) return false;
    out->op = JitOp::kLoadFeature8;
    out->length = 5;
    out->disp = code[offset + 4];
    return true;
  }
  if (Match(code, size, offset, {0xF2, 0x0F, 0x10, 0x87})) {
    if (size - offset < 8) return false;
    out->op = JitOp::kLoadFeature32;
    out->length = 8;
    out->disp = Read32(code, offset + 4);
    return true;
  }
  if (Match(code, size, offset, {0x66, 0x0F, 0x2E, 0xC8})) {
    out->op = JitOp::kUcomisdXmm1Xmm0;
    out->length = 4;
    return true;
  }
  if (Match(code, size, offset, {0x66, 0x0F, 0x2E, 0xC1})) {
    out->op = JitOp::kUcomisdXmm0Xmm1;
    out->length = 4;
    return true;
  }
  if (Match(code, size, offset, {0x0F, 0x87}) ||
      Match(code, size, offset, {0x0F, 0x82})) {
    if (size - offset < 6) return false;
    out->op = code[offset + 1] == 0x87 ? JitOp::kJa : JitOp::kJb;
    out->length = 6;
    const int32_t rel = static_cast<int32_t>(Read32(code, offset + 2));
    // Target relative to the end of the instruction; computed in signed
    // 64-bit so a wild rel32 cannot wrap back into the buffer.
    const int64_t target = static_cast<int64_t>(offset) + 6 + rel;
    // A negative target is clamped past the buffer so every later
    // range check fails it.
    out->target = target < 0 ? size + 1 : static_cast<size_t>(target);
    return true;
  }
  return DecodeBatchInstruction(code, size, offset, out);
}

DecodedCode DecodeLinear(const uint8_t* code, size_t size) {
  DecodedCode decoded;
  size_t offset = 0;
  while (offset < size) {
    JitInstruction instruction;
    if (!DecodeInstruction(code, size, offset, &instruction)) {
      decoded.ok = false;
      decoded.error_offset = offset;
      return decoded;
    }
    decoded.instructions[offset] = instruction;
    offset += instruction.length;
  }
  decoded.ok = true;
  return decoded;
}

}  // namespace t3
