#ifndef T3_COMMON_RANDOM_H_
#define T3_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace t3 {

/// Deterministic PRNG: xoshiro256** seeded through SplitMix64.
///
/// Every random choice in the system (data generation, query sampling,
/// train/validation splits, synthetic forests in benches) goes through Rng so
/// that runs are reproducible bit-for-bit across platforms and compilers —
/// unlike std::mt19937 + std::uniform_*_distribution, whose distribution
/// implementations are library-defined.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit xoshiro state; this
    // is the seeding procedure recommended by the xoshiro authors.
    uint64_t x = seed;
    for (uint64_t& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64 random bits (xoshiro256**).
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1), 53 bits of precision.
  double Unit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) { return lo + (hi - lo) * Unit(); }

  /// Uniform integer in the inclusive range [lo, hi]. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
    const uint64_t reject_above = UINT64_MAX - UINT64_MAX % range - 1;
    uint64_t r = Next();
    while (r > reject_above) r = Next();
    return lo + static_cast<int64_t>(r % range);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Unit() < p; }

  /// Standard normal via Box–Muller (one value per call; no cached spare so
  /// the stream position stays simple to reason about).
  double Gaussian(double mean, double stddev) {
    double u = Unit();
    while (u <= 0.0) u = Unit();
    const double v = Unit();
    const double r = std::sqrt(-2.0 * std::log(u));
    return mean + stddev * r * std::cos(6.283185307179586477 * v);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace t3

#endif  // T3_COMMON_RANDOM_H_
