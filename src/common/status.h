#ifndef T3_COMMON_STATUS_H_
#define T3_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace t3 {

/// Error category of a Status. Library code never throws; fallible
/// operations return Status (or Result<T> when they produce a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kUnavailable = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
};

const char* StatusCodeName(StatusCode code);

/// Success-or-error of an operation that produces no value.
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

/// Either a value of type T or a non-OK Status explaining why there is none.
///
///   Result<Forest> forest = Forest::LoadFromFile(path);
///   if (!forest.ok()) return forest.status();
///   Use(*forest);
template <typename T>
class Result {
 public:
  // Implicit conversions from both sides keep call sites terse, mirroring
  // absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    T3_CHECK(!status_.ok());  // An OK status must carry a value.
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(value()); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T& value() & {
    T3_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    T3_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    T3_CHECK(ok());
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace t3

#endif  // T3_COMMON_STATUS_H_
