#include "common/cpu_features.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <cpuid.h>
#endif

namespace t3 {

CpuFeatures DetectCpuFeatures() {
  CpuFeatures features;
  const char* force = std::getenv("T3_FORCE_SCALAR");
  features.force_scalar = force != nullptr && std::strcmp(force, "1") == 0;
#if defined(__x86_64__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx_isa = (ecx & (1u << 28)) != 0;
    bool ymm_enabled = false;
    if (osxsave) {
      // xgetbv(0): the OS must have enabled both SSE (bit 1) and AVX
      // (bit 2) state before ymm registers are usable — AVX in cpuid alone
      // is not enough (e.g. a hypervisor masking xsave).
      uint32_t xcr0_lo = 0;
      uint32_t xcr0_hi = 0;
      __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
      ymm_enabled = (xcr0_lo & 0x6) == 0x6;
    }
    features.avx = avx_isa && ymm_enabled;
  }
  if (features.avx) {
    unsigned eax7 = 0;
    unsigned ebx7 = 0;
    unsigned ecx7 = 0;
    unsigned edx7 = 0;
    if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) != 0) {
      features.avx2 = (ebx7 & (1u << 5)) != 0;
    }
  }
#endif
  return features;
}

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = DetectCpuFeatures();
  return features;
}

bool BatchKernelsEnabled() {
  const CpuFeatures& features = GetCpuFeatures();
  return features.avx && features.avx2 && !features.force_scalar;
}

}  // namespace t3
