#ifndef T3_COMMON_CPU_FEATURES_H_
#define T3_COMMON_CPU_FEATURES_H_

namespace t3 {

/// Runtime CPU capability probe backing the treejit batch-kernel dispatch
/// (treejit/jit.h). Compile-time support (x86-64 build, T3_DISABLE_AVX2 off)
/// decides whether kernels are *emitted*; this probe decides whether they
/// are *dispatched* on the running machine.
struct CpuFeatures {
  bool avx = false;   ///< AVX ISA present and OS ymm state enabled (xgetbv).
  bool avx2 = false;  ///< AVX2 ISA present (reported only when avx holds).
  bool force_scalar = false;  ///< T3_FORCE_SCALAR=1 was set in the env.
};

/// Probes cpuid/xgetbv and the T3_FORCE_SCALAR environment variable on
/// every call (not cached). Tests use this to observe env changes; the
/// production dispatch goes through GetCpuFeatures().
CpuFeatures DetectCpuFeatures();

/// The cached process-wide probe: one DetectCpuFeatures() on first use,
/// then the same answer forever (the env override is read once, so set it
/// before the first prediction).
const CpuFeatures& GetCpuFeatures();

/// True when batched AVX tree kernels may be dispatched: AVX + AVX2
/// present, OS ymm state enabled, and not overridden by T3_FORCE_SCALAR=1.
/// Non-x86-64 hosts always return false.
bool BatchKernelsEnabled();

}  // namespace t3

#endif  // T3_COMMON_CPU_FEATURES_H_
