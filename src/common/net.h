#ifndef T3_COMMON_NET_H_
#define T3_COMMON_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace t3 {

/// Owning file descriptor: closes on destruction, move-only. The building
/// block of the prediction server's socket handling (src/server) and the
/// blocking client side (t3_loadgen, tests).
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool ok() const { return fd_ >= 0; }

  /// Transfers ownership to the caller.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes the descriptor (EINTR-safe) and becomes empty.
  void Reset();

 private:
  int fd_ = -1;
};

/// Makes SIGPIPE a no-op process-wide. A prediction server must survive
/// clients that disconnect mid-response: a write to a half-closed socket
/// then fails with EPIPE (handled per connection) instead of killing the
/// process. Idempotent; called by PredictionServer::Start and the client
/// tools.
Status IgnoreSigPipe();

/// Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

/// Opens a TCP listener bound to `host:port` (port 0 picks an ephemeral
/// port; see LocalPort) with SO_REUSEADDR, in non-blocking mode.
Result<ScopedFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog = 128);

/// Blocking TCP connect to `host:port` with TCP_NODELAY (the
/// request/response framing is latency-bound, not bandwidth-bound).
Result<ScopedFd> ConnectTcp(const std::string& host, uint16_t port);

/// The locally bound port of a socket — how callers learn the ephemeral
/// port of a `ListenTcp(host, 0)` listener.
Result<uint16_t> LocalPort(int fd);

/// Blocking exact-count read. Retries EINTR and short reads; a clean peer
/// close before `size` bytes yields Unavailable ("connection closed").
Status ReadFull(int fd, void* data, size_t size);

/// Blocking exact-count write (send with MSG_NOSIGNAL). Retries EINTR and
/// short writes; EPIPE/ECONNRESET yield Unavailable.
Status WriteFull(int fd, const void* data, size_t size);

}  // namespace t3

#endif  // T3_COMMON_NET_H_
