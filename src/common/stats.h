#ifndef T3_COMMON_STATS_H_
#define T3_COMMON_STATS_H_

#include <vector>

namespace t3 {

/// Arithmetic mean; quiet NaN for an empty input. These functions take
/// untrusted, possibly-empty data (parsed corpora, filtered run lists), so
/// an empty input is a data condition, not a programming error: callers
/// check std::isnan (or guard emptiness themselves) instead of aborting.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double Stddev(const std::vector<double>& values);

/// Quantile q in [0, 1] with linear interpolation between order statistics
/// (the same convention as numpy's default). Takes its argument by value
/// because it sorts a copy. Quiet NaN for an empty input; q outside [0, 1]
/// is a programming error and still T3_CHECKs.
double Quantile(std::vector<double> values, double q);

/// Median == Quantile(values, 0.5): mean of the two middle order statistics
/// for even-sized inputs. Quiet NaN for an empty input.
double Median(std::vector<double> values);

}  // namespace t3

#endif  // T3_COMMON_STATS_H_
