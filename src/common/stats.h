#ifndef T3_COMMON_STATS_H_
#define T3_COMMON_STATS_H_

#include <vector>

namespace t3 {

/// Arithmetic mean. Requires a non-empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double Stddev(const std::vector<double>& values);

/// Quantile q in [0, 1] with linear interpolation between order statistics
/// (the same convention as numpy's default). Takes its argument by value
/// because it sorts a copy. Requires a non-empty input.
double Quantile(std::vector<double> values, double q);

/// Median == Quantile(values, 0.5): mean of the two middle order statistics
/// for even-sized inputs.
double Median(std::vector<double> values);

}  // namespace t3

#endif  // T3_COMMON_STATS_H_
