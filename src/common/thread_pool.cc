#include "common/thread_pool.h"

#include <utility>

namespace t3 {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace t3
