#ifndef T3_COMMON_THREAD_POOL_H_
#define T3_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace t3 {

/// Fixed-size worker pool with a FIFO task queue. Used for multi-threaded
/// forest interpretation (Figure 5 "Interpreted MT") and, later, parallel
/// corpus benchmarking.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn`; it runs on some worker thread.
  void Submit(std::function<void()> fn);

  /// Enqueues a callable and returns a future for its result.
  template <typename F>
  auto Async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    Submit([task] { (*task)(); });
    return task->get_future();
  }

  /// Blocks until every submitted task has finished running.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
};

}  // namespace t3

#endif  // T3_COMMON_THREAD_POOL_H_
