#ifndef T3_COMMON_STRING_UTIL_H_
#define T3_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace t3 {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits on a single character delimiter; keeps empty pieces.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// Human-readable duration from nanoseconds: "812ns", "4.20us", "1.35ms",
/// "2.10s". The unit is chosen so the mantissa is < 1000.
std::string FormatDuration(double nanos);

}  // namespace t3

#endif  // T3_COMMON_STRING_UTIL_H_
