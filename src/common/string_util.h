#ifndef T3_COMMON_STRING_UTIL_H_
#define T3_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace t3 {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits on a single character delimiter; keeps empty pieces.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// Human-readable duration from nanoseconds: "812ns", "4.20us", "1.35ms",
/// "2.10s". The unit is chosen so the mantissa is < 1000.
std::string FormatDuration(double nanos);

/// Strict whole-string numeric parsing for untrusted text (CLI arguments,
/// corpus files). The entire text must be consumed — empty strings, trailing
/// characters, and out-of-range values fail — and ParseDouble additionally
/// rejects non-finite results ("inf", "nan", overflow). On failure, returns
/// false and leaves *out untouched.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt64(std::string_view text, int64_t* out);
/// Rejects negative input outright ("-1" fails rather than wrapping).
bool ParseUint64(std::string_view text, uint64_t* out);

}  // namespace t3

#endif  // T3_COMMON_STRING_UTIL_H_
