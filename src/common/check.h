#ifndef T3_COMMON_CHECK_H_
#define T3_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// T3_CHECK(cond) aborts with a source location when `cond` is false.
///
/// Used for invariants whose violation means a programming error (tests,
/// benches, internal consistency). Recoverable conditions — bad input files,
/// unsupported platforms, resource exhaustion — use Status/Result instead
/// (see common/status.h).
#define T3_CHECK(cond)                                                        \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "T3_CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// T3_CHECK_OK(expr) aborts when a Status or Result<T> expression is not ok.
#define T3_CHECK_OK(expr) T3_CHECK((expr).ok())

#endif  // T3_COMMON_CHECK_H_
