#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "common/check.h"

namespace t3 {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Quantile(std::vector<double> values, double q) {
  T3_CHECK(q >= 0.0 && q <= 1.0);
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

}  // namespace t3
