#include "common/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/string_util.h"

namespace t3 {
namespace {

Status ErrnoStatus(const char* what, int err) {
  return UnavailableError(StrFormat("%s: %s", what, std::strerror(err)));
}

}  // namespace

void ScopedFd::Reset() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
  }
}

Status IgnoreSigPipe() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SIG_IGN;
  if (::sigaction(SIGPIPE, &action, nullptr) != 0) {
    return ErrnoStatus("sigaction(SIGPIPE)", errno);
  }
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)", errno);
  }
  return Status::OK();
}

Result<ScopedFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.ok()) return ErrnoStatus("socket", errno);

  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError(StrFormat("bad listen address %s",
                                          host.c_str()));
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoStatus("listen", errno);
  Status status = SetNonBlocking(fd.get());
  if (!status.ok()) return status;
  return fd;
}

Result<ScopedFd> ConnectTcp(const std::string& host, uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.ok()) return ErrnoStatus("socket", errno);

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError(StrFormat("bad connect address %s",
                                          host.c_str()));
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("connect", errno);

  const int one = 1;
  // Best-effort: prediction frames are small and latency-bound.
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status ReadFull(int fd, void* data, size_t size) {
  uint8_t* cursor = static_cast<uint8_t*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::read(fd, cursor, remaining);
    if (n > 0) {
      cursor += n;
      remaining -= static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return UnavailableError("connection closed");
    if (errno == EINTR) continue;
    return ErrnoStatus("read", errno);
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* data, size_t size) {
  const uint8_t* cursor = static_cast<const uint8_t*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::send(fd, cursor, remaining, MSG_NOSIGNAL);
    if (n >= 0) {
      cursor += n;
      remaining -= static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

}  // namespace t3
