#ifndef T3_COMMON_HASH_H_
#define T3_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace t3 {

/// Deterministic, platform-independent hashing used wherever hashes feed
/// reproducible results: datagen stream seeding, content checksums, the NDV
/// sketch. Not seeded and not DoS-hardened on purpose — stability across
/// runs, platforms, and compilers is the point.

inline constexpr uint64_t kFnv64Offset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv64Prime = 0x100000001b3ULL;

/// Streaming FNV-1a 64. Start from kFnv64Offset and fold in bytes/values;
/// order-sensitive.
class Fnv1a {
 public:
  void Bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= kFnv64Prime;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  /// Length-prefixed, so ("a,", "b") and ("a", ",b") hash differently.
  void LengthPrefixedString(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  /// NUL-terminated (cheap separator for fixed component sequences).
  void CString(const std::string& s) { Bytes(s.data(), s.size() + 1); }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = kFnv64Offset;
};

/// SplitMix64 finalizer: a strong 64->64 bit mixer (also the seeding
/// expansion of Rng). Use to whiten structured integers before comparing
/// hash magnitudes (e.g. the KMV NDV sketch).
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace t3

#endif  // T3_COMMON_HASH_H_
