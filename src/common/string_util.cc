#include "common/string_util.h"

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace t3 {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    // size + 1: vsnprintf writes the terminating NUL into &out[size], which
    // is valid to overwrite with '\0' since C++11.
    std::vsnprintf(out.data(), static_cast<size_t>(size) + 1, format,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  while (!text.empty() &&
         (text.front() == ' ' || text.front() == '\t' || text.front() == '\n' ||
          text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\n' ||
          text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  // strto* needs NUL termination; CLI args and corpus tokens are short, so
  // the copy is cheap.
  const std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  const std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.front() == '-') return false;
  const std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

std::string FormatDuration(double nanos) {
  const double abs = std::fabs(nanos);
  if (abs < 1e3) return StrFormat("%.0fns", nanos);
  if (abs < 1e6) return StrFormat("%.2fus", nanos / 1e3);
  if (abs < 1e9) return StrFormat("%.2fms", nanos / 1e6);
  return StrFormat("%.2fs", nanos / 1e9);
}

}  // namespace t3
