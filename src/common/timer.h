#ifndef T3_COMMON_TIMER_H_
#define T3_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace t3 {

/// Wall-clock stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace t3

#endif  // T3_COMMON_TIMER_H_
