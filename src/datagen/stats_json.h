#ifndef T3_DATAGEN_STATS_JSON_H_
#define T3_DATAGEN_STATS_JSON_H_

#include <cstdint>
#include <string>

#include "common/thread_pool.h"
#include "datagen/spec.h"
#include "storage/catalog.h"

namespace t3 {

/// JSON string literal (quotes and escapes `s`).
std::string JsonQuote(const std::string& s);

/// Canonical JSON object for one generated catalog: content checksum plus
/// per-table row counts and per-column {name, type, nulls, ndv, min, max}.
/// Byte-stable for bit-identical catalogs, so string equality is a
/// fingerprint comparison. `indent` is the prefix of the opening brace's
/// lines (two-space steps inside).
std::string CatalogStatsJson(const Catalog& catalog, const std::string& indent);

/// The golden-fixture document: every instance in AllInstances() generated at
/// (seed, scale) and rendered with CatalogStatsJson. The checked-in
/// data/instance_stats_golden.json is exactly this string for seed 42,
/// scale 0.05 (regenerate with `t3_datagen golden`).
std::string GoldenStatsJson(uint64_t seed, double scale, ThreadPool* pool);

inline constexpr uint64_t kGoldenSeed = 42;
inline constexpr double kGoldenScale = 0.05;

}  // namespace t3

#endif  // T3_DATAGEN_STATS_JSON_H_
