#ifndef T3_DATAGEN_SPEC_H_
#define T3_DATAGEN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/types.h"

namespace t3 {

/// Value distribution of a generated column.
enum class DistKind {
  kSequential,    // 0, 1, 2, ... (primary keys)
  kUniformInt,    // uniform int64 in [lo, hi]
  kUniformDouble, // uniform double in [dlo, dhi)
  kNormal,        // Gaussian(mean, stddev)
  kZipf,          // rank r in [1, domain] with P(r) proportional to 1/r^zipf_skew
  kForeignKey,    // row id of fk_table; uniform, or zipfian when zipf_skew > 0
  kString,        // draw from a seeded pool of `domain` distinct strings
  kDate,          // uniform days-since-epoch in [lo, hi]
};

struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  DistKind dist = DistKind::kUniformInt;
  double null_fraction = 0.0;

  int64_t lo = 0, hi = 0;        // kUniformInt, kDate (inclusive)
  double dlo = 0.0, dhi = 1.0;   // kUniformDouble
  double mean = 0.0, stddev = 1.0;  // kNormal
  double zipf_skew = 0.0;        // kZipf; kForeignKey/kString skew when > 0
  int64_t domain = 0;            // kZipf ranks, kString pool size
  std::string fk_table;          // kForeignKey target
  bool messy_strings = false;    // kString: embed separators/quotes/spaces

  /// When >= 0 the column is float64 `corr_slope * base + N(0, corr_noise)`,
  /// computed from the already generated numeric column at this index in the
  /// same table (NULL where the base is NULL). `dist` is ignored.
  int corr_base = -1;
  double corr_slope = 1.0;
  double corr_noise = 1.0;
};

struct TableSpec {
  std::string name;
  uint64_t base_rows = 0;  // Row count at scale 1.0.
  std::vector<ColumnSpec> columns;
};

/// One named database instance: a schema family plus its scale.
struct InstanceSpec {
  std::string name;    // e.g. "tpch_sf1"
  std::string family;  // e.g. "tpch"
  double scale = 1.0;
  std::vector<TableSpec> tables;
};

/// Effective row count of a table at a scale factor (at least 1).
uint64_t ScaledRows(uint64_t base_rows, double scale);

/// The 21 named synthetic instances of the generalization experiments
/// (Figure 9, Tables 3/4): tpch_sf{0,1,2}, tpcds_sf{0,1,2}, imdb_sf1, and
/// {airline,financial,health,retail,sensor,social,web}_{small,large}.
/// Ordered by name; the order is part of the golden-fixture contract.
const std::vector<InstanceSpec>& AllInstances();

/// Instance by name, or kNotFound listing the valid names.
Result<const InstanceSpec*> FindInstance(const std::string& name);

}  // namespace t3

#endif  // T3_DATAGEN_SPEC_H_
