#ifndef T3_DATAGEN_GENERATOR_H_
#define T3_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/spec.h"
#include "storage/catalog.h"

namespace t3 {

/// Rows per generation chunk. A multiple of 64 so parallel chunk writers
/// never share a null-bitmap word; also the granularity of the per-chunk
/// seeding scheme, so it is part of the determinism contract — changing it
/// changes every generated instance (and the golden fixture).
inline constexpr size_t kDatagenChunkRows = 8192;

struct DatagenOptions {
  uint64_t seed = 42;
  /// When > 0, replaces the instance's own scale (golden tests generate every
  /// instance at one small scale this way).
  double scale_override = 0.0;
  /// Optional worker pool. Output is bit-identical with any pool size and
  /// with no pool at all: every (column, chunk) gets its own PRNG stream
  /// seeded from (seed, instance, table, column, chunk) only.
  ThreadPool* pool = nullptr;
};

/// Generates the instance into a fresh catalog (tables in spec order, stats
/// precomputed). Returns kInvalidArgument for malformed specs (unknown FK
/// target, bad correlation base, empty domains).
Result<Catalog> GenerateInstance(const InstanceSpec& spec,
                                 const DatagenOptions& options);

}  // namespace t3

#endif  // T3_DATAGEN_GENERATOR_H_
