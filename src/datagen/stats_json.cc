#include "datagen/stats_json.h"

#include "common/check.h"
#include "common/string_util.h"
#include "datagen/generator.h"
#include "storage/checksum.h"
#include "storage/column_stats.h"
#include "storage/types.h"

namespace t3 {
namespace {

/// Shortest-round-trip double rendering: %.17g is exact for IEEE doubles, so
/// the JSON is a faithful bit-level fingerprint of the stats.
std::string JsonDouble(double v) { return StrFormat("%.17g", v); }

std::string MinMaxJson(const ColumnStats& stats) {
  if (!stats.has_range) return "\"min\": null, \"max\": null";
  switch (stats.type) {
    case ColumnType::kInt64:
      return StrFormat("\"min\": %lld, \"max\": %lld",
                       static_cast<long long>(stats.min_i64),
                       static_cast<long long>(stats.max_i64));
    case ColumnType::kFloat64:
      return "\"min\": " + JsonDouble(stats.min_f64) +
             ", \"max\": " + JsonDouble(stats.max_f64);
    case ColumnType::kDate:
      return "\"min\": " + JsonQuote(FormatDate(stats.min_i64)) +
             ", \"max\": " + JsonQuote(FormatDate(stats.max_i64));
    case ColumnType::kString:
      return "\"min\": " + JsonQuote(stats.min_str) +
             ", \"max\": " + JsonQuote(stats.max_str);
  }
  T3_CHECK(false);
  return "";
}

}  // namespace

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string CatalogStatsJson(const Catalog& catalog, const std::string& indent) {
  const std::string i1 = indent + "  ";
  const std::string i2 = i1 + "  ";
  const std::string i3 = i2 + "  ";
  std::string out = "{\n";
  out += i1 + StrFormat("\"checksum\": \"%016llx\",\n",
                        static_cast<unsigned long long>(CatalogChecksum(catalog)));
  out += i1 + "\"tables\": [\n";
  for (size_t t = 0; t < catalog.num_tables(); ++t) {
    const Table& table = catalog.table(t);
    T3_CHECK(table.stats().size() == table.num_columns());  // ComputeStats ran.
    out += i2 + "{\n";
    out += i3 + "\"name\": " + JsonQuote(table.name()) + ",\n";
    out += i3 + StrFormat("\"rows\": %llu,\n",
                          static_cast<unsigned long long>(table.num_rows()));
    out += i3 + "\"columns\": [\n";
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& column = table.column(c);
      const ColumnStats& stats = table.stats()[c];
      out += i3 + "  {\"name\": " + JsonQuote(column.name()) +
             ", \"type\": " + JsonQuote(ColumnTypeName(column.type())) +
             StrFormat(", \"nulls\": %llu, \"ndv\": %llu, ",
                       static_cast<unsigned long long>(stats.null_count),
                       static_cast<unsigned long long>(stats.ndv)) +
             MinMaxJson(stats) + "}";
      out += c + 1 < table.num_columns() ? ",\n" : "\n";
    }
    out += i3 + "]\n";
    out += i2 + (t + 1 < catalog.num_tables() ? "},\n" : "}\n");
  }
  out += i1 + "]\n";
  out += indent + "}";
  return out;
}

std::string GoldenStatsJson(uint64_t seed, double scale, ThreadPool* pool) {
  std::string out = "{\n";
  out += StrFormat("  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  out += "  \"scale\": " + StrFormat("%.17g", scale) + ",\n";
  out += "  \"instances\": {\n";
  const std::vector<InstanceSpec>& instances = AllInstances();
  for (size_t i = 0; i < instances.size(); ++i) {
    DatagenOptions options;
    options.seed = seed;
    options.scale_override = scale;
    options.pool = pool;
    Result<Catalog> catalog = GenerateInstance(instances[i], options);
    T3_CHECK_OK(catalog);
    out += "    " + JsonQuote(instances[i].name) + ": " +
           CatalogStatsJson(*catalog, "    ");
    out += i + 1 < instances.size() ? ",\n" : "\n";
  }
  out += "  }\n";
  out += "}\n";
  return out;
}

}  // namespace t3
