#include <algorithm>

#include "common/string_util.h"
#include "datagen/spec.h"

namespace t3 {
namespace {

// Column-spec builders. Each returns a fully parameterized ColumnSpec so the
// schema tables below read like DDL.

ColumnSpec Pk(const char* name) {
  ColumnSpec c;
  c.name = name;
  c.type = ColumnType::kInt64;
  c.dist = DistKind::kSequential;
  return c;
}

ColumnSpec Fk(const char* name, const char* table, double skew = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.type = ColumnType::kInt64;
  c.dist = DistKind::kForeignKey;
  c.fk_table = table;
  c.zipf_skew = skew;
  return c;
}

ColumnSpec UniformIntCol(const char* name, int64_t lo, int64_t hi,
                         double nulls = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.type = ColumnType::kInt64;
  c.dist = DistKind::kUniformInt;
  c.lo = lo;
  c.hi = hi;
  c.null_fraction = nulls;
  return c;
}

ColumnSpec UniformDoubleCol(const char* name, double lo, double hi,
                            double nulls = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.type = ColumnType::kFloat64;
  c.dist = DistKind::kUniformDouble;
  c.dlo = lo;
  c.dhi = hi;
  c.null_fraction = nulls;
  return c;
}

ColumnSpec NormalCol(const char* name, double mean, double stddev,
                     double nulls = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.type = ColumnType::kFloat64;
  c.dist = DistKind::kNormal;
  c.mean = mean;
  c.stddev = stddev;
  c.null_fraction = nulls;
  return c;
}

ColumnSpec ZipfCol(const char* name, int64_t domain, double skew,
                   double nulls = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.type = ColumnType::kInt64;
  c.dist = DistKind::kZipf;
  c.domain = domain;
  c.zipf_skew = skew;
  c.null_fraction = nulls;
  return c;
}

ColumnSpec StrCol(const char* name, int64_t domain, double skew = 0.0,
                  double nulls = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.type = ColumnType::kString;
  c.dist = DistKind::kString;
  c.domain = domain;
  c.zipf_skew = skew;
  c.null_fraction = nulls;
  return c;
}

ColumnSpec MessyStrCol(const char* name, int64_t domain, double nulls = 0.0) {
  ColumnSpec c = StrCol(name, domain, 0.0, nulls);
  c.messy_strings = true;
  return c;
}

ColumnSpec DateCol(const char* name, int year_lo, int year_hi,
                   double nulls = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.type = ColumnType::kDate;
  c.dist = DistKind::kDate;
  c.lo = DaysFromCivil(year_lo, 1, 1);
  c.hi = DaysFromCivil(year_hi, 12, 31);
  c.null_fraction = nulls;
  return c;
}

ColumnSpec CorrCol(const char* name, int base_index, double slope,
                   double noise, double nulls = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.type = ColumnType::kFloat64;
  c.corr_base = base_index;
  c.corr_slope = slope;
  c.corr_noise = noise;
  c.null_fraction = nulls;
  return c;
}

TableSpec T(const char* name, uint64_t base_rows,
            std::vector<ColumnSpec> columns) {
  TableSpec t;
  t.name = name;
  t.base_rows = base_rows;
  t.columns = std::move(columns);
  return t;
}

// Schema families. Row counts are at scale 1.0; the container-scale note in
// DESIGN.md applies (thousands, not millions, of rows).

std::vector<TableSpec> TpchTables() {
  return {
      T("region", 5, {Pk("r_id"), StrCol("r_name", 5), MessyStrCol("r_comment", 5)}),
      T("nation", 25,
        {Pk("n_id"), Fk("n_region", "region"), StrCol("n_name", 25)}),
      T("supplier", 1000,
        {Pk("s_id"), Fk("s_nation", "nation"), NormalCol("s_acctbal", 4500, 2000),
         MessyStrCol("s_comment", 800, 0.02)}),
      T("customer", 3000,
        {Pk("c_id"), Fk("c_nation", "nation"), NormalCol("c_acctbal", 4500, 2200),
         StrCol("c_mktsegment", 5, 0.8), DateCol("c_since", 1992, 1998)}),
      T("part", 2000,
        {Pk("p_id"), UniformIntCol("p_size", 1, 50), NormalCol("p_retail", 1500, 400),
         StrCol("p_type", 150), StrCol("p_container", 40, 0.0, 0.01)}),
      T("partsupp", 8000,
        {Fk("ps_part", "part"), Fk("ps_supp", "supplier"),
         UniformIntCol("ps_availqty", 1, 9999),
         UniformDoubleCol("ps_supplycost", 1, 1000)}),
      T("orders", 6000,
        {Pk("o_id"), Fk("o_cust", "customer", 0.8), DateCol("o_date", 1992, 1998),
         NormalCol("o_totalprice", 150000, 40000), StrCol("o_priority", 5, 1.0)}),
      T("lineitem", 24000,
        {Fk("l_order", "orders"), Fk("l_part", "part"), Fk("l_supp", "supplier"),
         UniformIntCol("l_qty", 1, 50), CorrCol("l_price", 3, 1500, 300),
         UniformDoubleCol("l_discount", 0, 0.1), DateCol("l_ship", 1992, 1998),
         MessyStrCol("l_comment", 5000, 0.03)}),
  };
}

std::vector<TableSpec> TpcdsTables() {
  return {
      T("date_dim", 2000,
        {Pk("d_id"), DateCol("d_date", 1998, 2003), UniformIntCol("d_year", 1998, 2003),
         UniformIntCol("d_moy", 1, 12)}),
      T("item", 3000,
        {Pk("i_id"), StrCol("i_category", 10, 1.1), StrCol("i_brand", 100, 0.9),
         NormalCol("i_price", 50, 25, 0.01)}),
      T("customer_address", 4000,
        {Pk("ca_id"), StrCol("ca_state", 50, 1.2), StrCol("ca_zip", 1000),
         UniformIntCol("ca_gmt", -10, -5)}),
      T("customer", 5000,
        {Pk("cu_id"), Fk("cu_addr", "customer_address"),
         DateCol("cu_birth", 1930, 2000, 0.05)}),
      T("store", 60,
        {Pk("st_id"), NormalCol("st_sqft", 60000, 15000), StrCol("st_state", 20)}),
      T("store_sales", 30000,
        {Fk("ss_item", "item", 1.05), Fk("ss_cust", "customer"),
         Fk("ss_store", "store"), Fk("ss_date", "date_dim"),
         UniformIntCol("ss_qty", 1, 100), NormalCol("ss_price", 40, 18),
         CorrCol("ss_net", 4, 40, 60)}),
      T("store_returns", 3000,
        {Fk("sr_item", "item"), Fk("sr_cust", "customer"), Fk("sr_date", "date_dim"),
         NormalCol("sr_amount", 35, 20, 0.1)}),
  };
}

std::vector<TableSpec> ImdbTables() {
  return {
      T("title", 10000,
        {Pk("t_id"), StrCol("t_kind", 7, 1.3), UniformIntCol("t_year", 1900, 2020, 0.08),
         MessyStrCol("t_title", 9000)}),
      T("name", 8000,
        {Pk("n_id"), StrCol("n_name", 7500), StrCol("n_gender", 3, 0.7, 0.3)}),
      T("company", 2000,
        {Pk("co_id"), StrCol("co_country", 80, 1.4), MessyStrCol("co_name", 1900)}),
      T("cast_info", 40000,
        {Fk("ci_title", "title", 1.0), Fk("ci_person", "name", 0.9),
         StrCol("ci_role", 12, 1.1)}),
      T("movie_companies", 15000,
        {Fk("mc_title", "title"), Fk("mc_company", "company", 1.2),
         StrCol("mc_type", 4)}),
      T("movie_info", 25000,
        {Fk("mi_title", "title", 0.8), StrCol("mi_type", 110, 1.3),
         MessyStrCol("mi_note", 5000, 0.5)}),
  };
}

std::vector<TableSpec> AirlineTables() {
  return {
      T("airports", 400,
        {Pk("ap_id"), StrCol("ap_state", 50, 1.1), NormalCol("ap_elev", 300, 400, 0.02)}),
      T("carriers", 30, {Pk("cr_id"), StrCol("cr_name", 30)}),
      T("aircraft", 800,
        {Pk("ac_id"), Fk("ac_carrier", "carriers"), UniformIntCol("ac_seats", 50, 400)}),
      T("flights", 30000,
        {Pk("f_id"), Fk("f_orig", "airports", 1.2), Fk("f_dest", "airports", 1.2),
         Fk("f_carrier", "carriers", 0.8), DateCol("f_date", 2015, 2020),
         UniformDoubleCol("f_dist", 100, 5000), CorrCol("f_minutes", 5, 0.12, 15),
         NormalCol("f_delay", 5, 30, 0.04)}),
  };
}

std::vector<TableSpec> FinancialTables() {
  return {
      T("clients", 2000,
        {Pk("cl_id"), UniformIntCol("cl_district", 1, 77), DateCol("cl_birth", 1930, 2000)}),
      T("accounts", 2500,
        {Pk("a_id"), Fk("a_client", "clients"), StrCol("a_freq", 3, 0.6),
         DateCol("a_open", 1993, 1998)}),
      T("loans", 600,
        {Pk("l_id"), Fk("l_acct", "accounts"), NormalCol("l_amount", 150000, 70000),
         StrCol("l_status", 4, 1.0)}),
      T("transactions", 40000,
        {Pk("tr_id"), Fk("tr_acct", "accounts", 0.9), DateCol("tr_date", 1993, 1999),
         ZipfCol("tr_amount", 5000, 1.05), CorrCol("tr_balance", 3, 1.0, 500),
         StrCol("tr_type", 6, 0.9), MessyStrCol("tr_note", 300, 0.35)}),
  };
}

std::vector<TableSpec> HealthTables() {
  return {
      T("patients", 3000,
        {Pk("pa_id"), DateCol("pa_birth", 1920, 2015), StrCol("pa_state", 50, 1.0),
         NormalCol("pa_risk", 50, 15, 0.02)}),
      T("providers", 500,
        {Pk("pr_id"), StrCol("pr_specialty", 40, 1.2), UniformIntCol("pr_years", 0, 40)}),
      T("visits", 20000,
        {Pk("v_id"), Fk("v_patient", "patients", 0.8), Fk("v_provider", "providers", 1.0),
         DateCol("v_date", 2010, 2020), NormalCol("v_cost", 240, 120),
         CorrCol("v_minutes", 4, 0.1, 6)}),
      T("prescriptions", 15000,
        {Fk("rx_visit", "visits"), ZipfCol("rx_drug", 900, 1.15),
         UniformIntCol("rx_days", 1, 90), UniformIntCol("rx_refills", 0, 5, 0.15)}),
  };
}

std::vector<TableSpec> RetailTables() {
  return {
      T("products", 2500,
        {Pk("p_id"), StrCol("p_cat", 25, 1.1), NormalCol("p_price", 30, 18),
         UniformDoubleCol("p_weight", 0.05, 40, 0.03)}),
      T("stores", 120,
        {Pk("s_id"), StrCol("s_region", 8), NormalCol("s_sqm", 1800, 600)}),
      T("customers", 4000,
        {Pk("c_id"), StrCol("c_segment", 4, 0.7), DateCol("c_since", 2005, 2020),
         ZipfCol("c_points", 2000, 0.95, 0.1)}),
      T("sales", 35000,
        {Pk("sa_id"), Fk("sa_product", "products", 1.1), Fk("sa_store", "stores", 0.9),
         Fk("sa_customer", "customers"), DateCol("sa_date", 2015, 2021),
         UniformIntCol("sa_qty", 1, 12), CorrCol("sa_total", 5, 30, 25)}),
  };
}

std::vector<TableSpec> SensorTables() {
  return {
      T("locations", 200,
        {Pk("lo_id"), StrCol("lo_zone", 12, 0.8), UniformDoubleCol("lo_lat", -90, 90),
         UniformDoubleCol("lo_lon", -180, 180)}),
      T("sensors", 1500,
        {Pk("se_id"), Fk("se_loc", "locations"), StrCol("se_kind", 9, 1.0),
         DateCol("se_installed", 2012, 2020)}),
      T("readings", 60000,
        {Fk("r_sensor", "sensors", 0.7), DateCol("r_time", 2018, 2021),
         NormalCol("r_value", 20, 8, 0.01), UniformDoubleCol("r_battery", 0, 100),
         CorrCol("r_adjusted", 2, 1.02, 0.5)}),
      T("alerts", 2000,
        {Fk("al_sensor", "sensors", 1.3), StrCol("al_level", 4, 1.2),
         DateCol("al_date", 2018, 2021), UniformIntCol("al_ack", 0, 1, 0.2)}),
  };
}

std::vector<TableSpec> SocialTables() {
  return {
      T("users", 5000,
        {Pk("u_id"), StrCol("u_country", 120, 1.3), DateCol("u_joined", 2008, 2021),
         ZipfCol("u_karma", 10000, 1.1)}),
      T("posts", 25000,
        {Pk("po_id"), Fk("po_user", "users", 1.1), DateCol("po_date", 2008, 2021),
         NormalCol("po_score", 10, 40), MessyStrCol("po_body", 20000, 0.02)}),
      T("follows", 30000,
        {Fk("fo_src", "users", 1.2), Fk("fo_dst", "users", 1.0),
         DateCol("fo_date", 2008, 2021)}),
      T("likes", 40000,
        {Fk("li_post", "posts", 1.15), Fk("li_user", "users", 0.9),
         DateCol("li_date", 2008, 2021)}),
  };
}

std::vector<TableSpec> WebTables() {
  return {
      T("pages", 3000,
        {Pk("pg_id"), MessyStrCol("pg_path", 2800), UniformIntCol("pg_depth", 0, 8)}),
      T("referrers", 300, {Pk("rf_id"), StrCol("rf_domain", 280, 1.2)}),
      T("sessions", 8000,
        {Pk("ss_id"), Fk("ss_ref", "referrers", 1.25), DateCol("ss_start", 2019, 2022),
         NormalCol("ss_dur", 300, 200, 0.05)}),
      T("pageviews", 50000,
        {Fk("pv_session", "sessions", 0.8), Fk("pv_page", "pages", 1.2),
         DateCol("pv_date", 2019, 2022), UniformDoubleCol("pv_scroll", 0, 1),
         CorrCol("pv_ms", 3, 8000, 900)}),
  };
}

InstanceSpec Instance(const std::string& family, const std::string& suffix,
                      double scale, std::vector<TableSpec> tables) {
  InstanceSpec spec;
  spec.name = family + "_" + suffix;
  spec.family = family;
  spec.scale = scale;
  spec.tables = std::move(tables);
  return spec;
}

std::vector<InstanceSpec> BuildAllInstances() {
  std::vector<InstanceSpec> all;
  // sf families at 0.2 / 1 / 5 (relative scales within the family, per the
  // container-scale note in DESIGN.md); small/large families at 0.3 / 2.
  all.push_back(Instance("tpch", "sf0", 0.2, TpchTables()));
  all.push_back(Instance("tpch", "sf1", 1.0, TpchTables()));
  all.push_back(Instance("tpch", "sf2", 5.0, TpchTables()));
  all.push_back(Instance("tpcds", "sf0", 0.2, TpcdsTables()));
  all.push_back(Instance("tpcds", "sf1", 1.0, TpcdsTables()));
  all.push_back(Instance("tpcds", "sf2", 5.0, TpcdsTables()));
  all.push_back(Instance("imdb", "sf1", 1.0, ImdbTables()));
  all.push_back(Instance("airline", "small", 0.3, AirlineTables()));
  all.push_back(Instance("airline", "large", 2.0, AirlineTables()));
  all.push_back(Instance("financial", "small", 0.3, FinancialTables()));
  all.push_back(Instance("financial", "large", 2.0, FinancialTables()));
  all.push_back(Instance("health", "small", 0.3, HealthTables()));
  all.push_back(Instance("health", "large", 2.0, HealthTables()));
  all.push_back(Instance("retail", "small", 0.3, RetailTables()));
  all.push_back(Instance("retail", "large", 2.0, RetailTables()));
  all.push_back(Instance("sensor", "small", 0.3, SensorTables()));
  all.push_back(Instance("sensor", "large", 2.0, SensorTables()));
  all.push_back(Instance("social", "small", 0.3, SocialTables()));
  all.push_back(Instance("social", "large", 2.0, SocialTables()));
  all.push_back(Instance("web", "small", 0.3, WebTables()));
  all.push_back(Instance("web", "large", 2.0, WebTables()));
  std::sort(all.begin(), all.end(),
            [](const InstanceSpec& a, const InstanceSpec& b) {
              return a.name < b.name;
            });
  return all;
}

}  // namespace

uint64_t ScaledRows(uint64_t base_rows, double scale) {
  const auto rows = static_cast<uint64_t>(
      static_cast<double>(base_rows) * scale + 0.5);
  return rows == 0 ? 1 : rows;
}

const std::vector<InstanceSpec>& AllInstances() {
  static const std::vector<InstanceSpec>* const kInstances =
      new std::vector<InstanceSpec>(BuildAllInstances());
  return *kInstances;
}

Result<const InstanceSpec*> FindInstance(const std::string& name) {
  for (const InstanceSpec& spec : AllInstances()) {
    if (spec.name == name) return &spec;
  }
  std::string names;
  for (const InstanceSpec& spec : AllInstances()) {
    if (!names.empty()) names += ", ";
    names += spec.name;
  }
  return NotFoundError(StrFormat("no instance '%s' (valid: %s)", name.c_str(),
                                 names.c_str()));
}

}  // namespace t3
