#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"

namespace t3 {
namespace {

/// Stream seed for one (column, chunk): a pure function of the generation
/// seed and the column's coordinates, NOT of which thread runs the chunk.
/// This is what makes generation bit-deterministic across pool sizes.
uint64_t StreamSeed(uint64_t seed, const std::string& instance,
                    const std::string& table, const std::string& column,
                    uint64_t chunk) {
  Fnv1a h;
  h.U64(seed);
  h.CString(instance);
  h.CString(table);
  h.CString(column);
  h.U64(chunk);
  return h.hash();
}

/// Inverse-CDF table for a zipfian distribution over ranks [1, n] with
/// P(r) proportional to r^-skew. Built once per column and shared read-only
/// by every chunk task.
class ZipfTable {
 public:
  ZipfTable(int64_t n, double skew) : cum_(static_cast<size_t>(n)) {
    double total = 0.0;
    for (int64_t r = 1; r <= n; ++r) {
      total += std::exp(-skew * std::log(static_cast<double>(r)));
      cum_[static_cast<size_t>(r - 1)] = total;
    }
    for (double& c : cum_) c /= total;
  }

  /// Rank in [1, size()] for a uniform draw u in [0, 1).
  int64_t Rank(double u) const {
    const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
    const auto idx = it == cum_.end() ? cum_.size() - 1
                                      : static_cast<size_t>(it - cum_.begin());
    return static_cast<int64_t>(idx) + 1;
  }

  int64_t size() const { return static_cast<int64_t>(cum_.size()); }

 private:
  std::vector<double> cum_;
};

/// Deterministic value pool for a string column, built from a dedicated
/// stream before any chunk task runs. Messy pools embed the separators the
/// storage layer must survive: commas, pipes, quotes, spaces, tabs, newlines.
std::vector<std::string> BuildStringPool(const ColumnSpec& spec, Rng* rng) {
  std::vector<std::string> pool;
  pool.reserve(static_cast<size_t>(spec.domain));
  for (int64_t i = 0; i < spec.domain; ++i) {
    std::string value =
        StrFormat("%s_%05lld", spec.name.c_str(), static_cast<long long>(i));
    const int64_t extra = rng->UniformInt(0, 7);
    for (int64_t k = 0; k < extra; ++k) {
      value += static_cast<char>('a' + rng->UniformInt(0, 25));
    }
    if (spec.messy_strings) {
      if (rng->Bernoulli(0.5)) {
        value += StrFormat(",f%lld|g",
                           static_cast<long long>(rng->UniformInt(0, 99)));
      }
      if (rng->Bernoulli(0.3)) value += " \"quoted\"";
      if (rng->Bernoulli(0.2)) value += "\tt";
      if (rng->Bernoulli(0.1)) value += "\nn";
    }
    pool.push_back(std::move(value));
  }
  return pool;
}

/// Read-only per-column state shared by that column's chunk tasks.
struct ColumnPlan {
  const ColumnSpec* spec = nullptr;
  const std::string* table_name = nullptr;  // For the per-chunk stream seed.
  Column* column = nullptr;
  const Column* base = nullptr;           // kCorrelated source
  std::shared_ptr<ZipfTable> zipf;        // skewed draws
  std::shared_ptr<std::vector<std::string>> pool;  // kString values
  int64_t fk_rows = 0;                    // kForeignKey domain
};

double NumericAt(const Column& column, size_t row) {
  return column.type() == ColumnType::kFloat64
             ? column.Float64At(row)
             : static_cast<double>(column.Int64At(row));
}

void GenerateChunk(const ColumnPlan& plan, size_t begin, size_t end, Rng rng) {
  const ColumnSpec& spec = *plan.spec;
  Column& column = *plan.column;
  for (size_t row = begin; row < end; ++row) {
    if (spec.null_fraction > 0.0 && rng.Bernoulli(spec.null_fraction)) {
      column.SetNull(row);
      continue;
    }
    if (spec.corr_base >= 0) {
      if (plan.base->IsNull(row)) {
        column.SetNull(row);
        continue;
      }
      column.SetFloat64(row, spec.corr_slope * NumericAt(*plan.base, row) +
                                 rng.Gaussian(0.0, spec.corr_noise));
      continue;
    }
    switch (spec.dist) {
      case DistKind::kSequential:
        column.SetInt64(row, static_cast<int64_t>(row));
        break;
      case DistKind::kUniformInt:
        column.SetInt64(row, rng.UniformInt(spec.lo, spec.hi));
        break;
      case DistKind::kUniformDouble:
        column.SetFloat64(row, rng.UniformDouble(spec.dlo, spec.dhi));
        break;
      case DistKind::kNormal:
        column.SetFloat64(row, rng.Gaussian(spec.mean, spec.stddev));
        break;
      case DistKind::kZipf:
        column.SetInt64(row, plan.zipf->Rank(rng.Unit()));
        break;
      case DistKind::kForeignKey:
        column.SetInt64(row, plan.zipf ? plan.zipf->Rank(rng.Unit()) - 1
                                       : rng.UniformInt(0, plan.fk_rows - 1));
        break;
      case DistKind::kString:
        column.SetString(
            row, (*plan.pool)[static_cast<size_t>(
                     plan.zipf ? plan.zipf->Rank(rng.Unit()) - 1
                               : rng.UniformInt(0, spec.domain - 1))]);
        break;
      case DistKind::kDate:
        column.SetInt64(row, rng.UniformInt(spec.lo, spec.hi));
        break;
    }
  }
}

Status ValidateSpec(const InstanceSpec& spec) {
  for (const TableSpec& table : spec.tables) {
    for (size_t i = 0; i < table.columns.size(); ++i) {
      const ColumnSpec& col = table.columns[i];
      const std::string where = StrFormat("%s.%s.%s", spec.name.c_str(),
                                          table.name.c_str(), col.name.c_str());
      if (col.null_fraction < 0.0 || col.null_fraction >= 1.0) {
        return InvalidArgumentError(where + ": null_fraction out of [0, 1)");
      }
      if (col.corr_base >= 0) {
        if (static_cast<size_t>(col.corr_base) >= i) {
          return InvalidArgumentError(
              where + ": corr_base must index an earlier column");
        }
        const ColumnSpec& base = table.columns[static_cast<size_t>(col.corr_base)];
        if (base.type == ColumnType::kString || base.corr_base >= 0) {
          return InvalidArgumentError(
              where + ": corr_base must be a non-correlated numeric column");
        }
        continue;
      }
      switch (col.dist) {
        case DistKind::kZipf:
        case DistKind::kString:
          if (col.domain <= 0) {
            return InvalidArgumentError(where + ": domain must be positive");
          }
          break;
        case DistKind::kForeignKey: {
          bool found = false;
          for (const TableSpec& t : spec.tables) found |= t.name == col.fk_table;
          if (!found) {
            return InvalidArgumentError(where + ": unknown fk_table '" +
                                        col.fk_table + "'");
          }
          break;
        }
        case DistKind::kUniformInt:
        case DistKind::kDate:
          if (col.lo > col.hi) {
            return InvalidArgumentError(where + ": lo > hi");
          }
          break;
        default:
          break;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<Catalog> GenerateInstance(const InstanceSpec& spec,
                                 const DatagenOptions& options) {
  Status valid = ValidateSpec(spec);
  if (!valid.ok()) return valid;
  const double scale =
      options.scale_override > 0.0 ? options.scale_override : spec.scale;

  Catalog catalog;
  for (const TableSpec& table_spec : spec.tables) {
    Table& table = catalog.AddTable(table_spec.name);
    const uint64_t rows = ScaledRows(table_spec.base_rows, scale);
    for (const ColumnSpec& col_spec : table_spec.columns) {
      table.AddColumn(col_spec.name, col_spec.type).Resize(rows);
    }
  }

  // Plans are built only after every column exists: AddColumn may reallocate
  // a table's column vector, so Column pointers are stable only now.
  std::vector<ColumnPlan> wave0;
  std::vector<ColumnPlan> wave1;  // Correlated columns: need wave0 results.
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    const TableSpec& table_spec = spec.tables[t];
    Table& table = catalog.table(t);
    for (size_t c = 0; c < table_spec.columns.size(); ++c) {
      const ColumnSpec& col_spec = table_spec.columns[c];
      ColumnPlan plan;
      plan.spec = &col_spec;
      plan.table_name = &table_spec.name;
      plan.column = &table.column(c);
      if (col_spec.corr_base >= 0) {
        plan.base = &table.column(static_cast<size_t>(col_spec.corr_base));
        wave1.push_back(plan);
        continue;
      }
      if (col_spec.dist == DistKind::kForeignKey) {
        for (const TableSpec& target : spec.tables) {
          if (target.name == col_spec.fk_table) {
            plan.fk_rows =
                static_cast<int64_t>(ScaledRows(target.base_rows, scale));
          }
        }
        if (col_spec.zipf_skew > 0.0) {
          plan.zipf = std::make_shared<ZipfTable>(plan.fk_rows, col_spec.zipf_skew);
        }
      } else if (col_spec.dist == DistKind::kZipf ||
                 (col_spec.dist == DistKind::kString && col_spec.zipf_skew > 0.0)) {
        plan.zipf = std::make_shared<ZipfTable>(col_spec.domain, col_spec.zipf_skew);
      }
      if (col_spec.dist == DistKind::kString) {
        Rng pool_rng(StreamSeed(options.seed, spec.name, table_spec.name,
                                col_spec.name, ~uint64_t{0}));
        plan.pool = std::make_shared<std::vector<std::string>>(
            BuildStringPool(col_spec, &pool_rng));
      }
      wave0.push_back(plan);
    }
  }

  // Wave 0 (independent columns), then wave 1 (correlated columns, which read
  // their finished base columns). Within a wave every (column, chunk) task is
  // independent and owns a disjoint row range.
  for (const std::vector<ColumnPlan>* wave : {&wave0, &wave1}) {
    for (const ColumnPlan& plan : *wave) {
      const size_t rows = plan.column->size();
      for (size_t begin = 0; begin < rows; begin += kDatagenChunkRows) {
        const size_t end = std::min(rows, begin + kDatagenChunkRows);
        const uint64_t chunk = begin / kDatagenChunkRows;
        Rng rng(StreamSeed(options.seed, spec.name, *plan.table_name,
                           plan.spec->name, chunk));
        if (options.pool != nullptr) {
          options.pool->Submit(
              [plan, begin, end, rng] { GenerateChunk(plan, begin, end, rng); });
        } else {
          GenerateChunk(plan, begin, end, rng);
        }
      }
    }
    if (options.pool != nullptr) options.pool->Wait();
  }

  for (size_t t = 0; t < catalog.num_tables(); ++t) {
    catalog.table(t).ComputeStats();
  }
  return catalog;
}

}  // namespace t3
