#ifndef T3_GBT_TRAINER_H_
#define T3_GBT_TRAINER_H_

#include <cstdint>
#include <vector>

#include "gbt/forest.h"

namespace t3 {

/// Training objective of the GBDT trainer.
/// - kL2:   squared error; gradient = pred - y, hessian = 1.
/// - kMape: mean absolute percentage error, the paper's LightGBM objective
///          (T3 trains on log-transformed per-tuple times with MAPE);
///          gradient = sign(pred - y) / |y|, hessian = 1 / |y|.
enum class Objective { kL2, kMape };

struct TrainParams {
  int num_trees = 200;        ///< Paper: 200 trees.
  int max_leaves = 31;        ///< Paper: ~30 leaves per tree.
  double learning_rate = 0.1; ///< Shrinkage, folded into leaf values.
  int max_bins = 255;         ///< Histogram bins per feature.
  int min_data_in_leaf = 20;
  double l2_reg = 1.0;        ///< Lambda in the leaf-value / gain formulas.
  double min_split_gain = 1e-12;
  Objective objective = Objective::kL2;
  /// Fraction of rows held out for validation-based early stopping. 0
  /// disables the split (and early stopping with it).
  double validation_fraction = 0.1;
  /// Stop when the validation loss has not improved for this many trees;
  /// the forest is truncated to the best iteration. 0 disables.
  int early_stopping_rounds = 20;
  uint64_t seed = 42;         ///< Drives the train/validation shuffle.
};

struct TrainStats {
  int num_trees = 0;          ///< Trees kept in the returned forest.
  bool early_stopped = false;
  double final_train_loss = 0.0;
  double best_valid_loss = 0.0;        ///< Meaningless without validation.
  std::vector<double> valid_loss_history;  ///< One entry per trained tree.
};

/// Trains a histogram-binned, leaf-wise (best-first) gradient-boosted forest
/// on `num_rows` x `num_features` row-major `rows` against `targets`.
///
/// All inputs must be finite (NaN/inf rows are rejected as
/// InvalidArgument); NaN routing in the produced trees defaults right.
/// Deterministic for fixed inputs and params.
Result<Forest> TrainForest(const double* rows, size_t num_rows,
                           size_t num_features, const double* targets,
                           const TrainParams& params,
                           TrainStats* stats = nullptr);

/// Convenience overload over vectors; `rows.size()` must equal
/// `targets.size() * num_features`.
Result<Forest> TrainForest(const std::vector<double>& rows,
                           const std::vector<double>& targets,
                           size_t num_features, const TrainParams& params,
                           TrainStats* stats = nullptr);

}  // namespace t3

#endif  // T3_GBT_TRAINER_H_
