#include "gbt/forest.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace t3 {

double PredictTree(const Tree& tree, const double* row) {
  int index = 0;
  while (true) {
    const TreeNode& node = tree.nodes[static_cast<size_t>(index)];
    if (node.is_leaf) return node.value;
    index = GoesLeft(node, row[node.feature]) ? node.left : node.right;
  }
}

double Forest::Predict(const double* row) const {
  double sum = base_score;
  for (const Tree& tree : trees) sum += PredictTree(tree, row);
  return sum;
}

size_t Forest::NumNodes() const {
  size_t n = 0;
  for (const Tree& tree : trees) n += tree.nodes.size();
  return n;
}

size_t Forest::NumLeaves() const {
  size_t n = 0;
  for (const Tree& tree : trees) {
    for (const TreeNode& node : tree.nodes) n += node.is_leaf ? 1 : 0;
  }
  return n;
}

std::vector<int> FeatureSplitCounts(const Forest& forest) {
  std::vector<int> counts(static_cast<size_t>(forest.num_features), 0);
  for (const Tree& tree : forest.trees) {
    for (const TreeNode& node : tree.nodes) {
      if (node.is_leaf) continue;
      if (node.feature >= 0 && node.feature < static_cast<int>(counts.size())) {
        ++counts[static_cast<size_t>(node.feature)];
      }
    }
  }
  return counts;
}

namespace {

void AppendDouble(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

/// Whitespace-separated token reader over the raw file contents. Faster and
/// less allocation-happy than istringstream on the ~12k-line model files and
/// the ~200k-line corpus.
class TokenCursor {
 public:
  explicit TokenCursor(std::string_view text) : pos_(text.data()), end_(text.data() + text.size()) {}

  bool AtEnd() {
    SkipSpace();
    return pos_ == end_;
  }

  /// Next whitespace-delimited token; empty at end of input.
  std::string_view NextToken() {
    SkipSpace();
    const char* start = pos_;
    while (pos_ != end_ && !IsSpace(*pos_)) ++pos_;
    return std::string_view(start, static_cast<size_t>(pos_ - start));
  }

  bool NextDouble(double* out) {
    SkipSpace();
    if (pos_ == end_) return false;
    char* after = nullptr;
    errno = 0;
    *out = std::strtod(pos_, &after);
    if (after == pos_) return false;
    pos_ = after;
    return true;
  }

  bool NextInt(int64_t* out) {
    SkipSpace();
    if (pos_ == end_) return false;
    char* after = nullptr;
    errno = 0;
    *out = std::strtoll(pos_, &after, 10);
    if (after == pos_) return false;
    pos_ = after;
    return true;
  }

 private:
  static bool IsSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  void SkipSpace() {
    while (pos_ != end_ && IsSpace(*pos_)) ++pos_;
  }

  // strtod/strtoll need NUL-terminated input; callers keep the backing
  // string alive and it is always NUL-terminated (std::string::data()).
  const char* pos_;
  const char* end_;
};

}  // namespace

std::string Forest::ToText() const {
  std::string out;
  out.reserve(64 + NumNodes() * 48);
  out += "t3gbt v1\n";
  out += StrFormat("num_features %d\n", num_features);
  out += "base_score ";
  AppendDouble(&out, base_score);
  out += "\n";
  out += StrFormat("num_trees %zu\n", trees.size());
  for (const Tree& tree : trees) {
    out += StrFormat("tree %zu\n", tree.nodes.size());
    for (const TreeNode& node : tree.nodes) {
      if (node.is_leaf) {
        out += "1 -1 0 -1 -1 ";
        AppendDouble(&out, node.value);
      } else {
        out += "0 ";
        out += StrFormat("%d ", node.feature);
        AppendDouble(&out, node.threshold);
        out += StrFormat(" %d %d %d", node.left, node.right,
                         node.default_left ? 1 : 0);
      }
      out += "\n";
    }
  }
  return out;
}

Result<Forest> Forest::FromText(std::string_view text) {
  Result<Forest> forest = ParseTextUnvalidated(text);
  if (!forest.ok()) return forest.status();
  Status valid = forest->Validate();
  if (!valid.ok()) return valid;
  return forest;
}

Result<Forest> Forest::ParseTextUnvalidated(std::string_view text) {
  TokenCursor cursor(text);
  std::string_view token = cursor.NextToken();
  // Model files wrap the forest with a one-line T3 model header; skip it so
  // Forest::LoadFromFile works on data/model_*.txt directly.
  if (token == "t3model") {
    if (cursor.NextToken() != "target") {
      return InvalidArgumentError("t3model header: expected 'target'");
    }
    int64_t ignored = 0;
    if (!cursor.NextInt(&ignored)) {
      return InvalidArgumentError("t3model header: missing target id");
    }
    token = cursor.NextToken();
  }
  if (token != "t3gbt" || cursor.NextToken() != "v1") {
    return InvalidArgumentError("not a t3gbt v1 forest file");
  }

  Forest forest;
  int64_t num_trees = 0;
  if (cursor.NextToken() != "num_features") {
    return InvalidArgumentError("expected num_features");
  }
  int64_t num_features = 0;
  if (!cursor.NextInt(&num_features) || num_features <= 0) {
    return InvalidArgumentError("bad num_features");
  }
  forest.num_features = static_cast<int>(num_features);
  if (cursor.NextToken() != "base_score" ||
      !cursor.NextDouble(&forest.base_score)) {
    return InvalidArgumentError("bad base_score");
  }
  if (cursor.NextToken() != "num_trees" || !cursor.NextInt(&num_trees) ||
      num_trees < 0) {
    return InvalidArgumentError("bad num_trees");
  }

  forest.trees.reserve(static_cast<size_t>(num_trees));
  for (int64_t t = 0; t < num_trees; ++t) {
    if (cursor.NextToken() != "tree") {
      return InvalidArgumentError(StrFormat("tree %lld: missing header",
                                            static_cast<long long>(t)));
    }
    int64_t num_nodes = 0;
    if (!cursor.NextInt(&num_nodes) || num_nodes <= 0) {
      return InvalidArgumentError(StrFormat("tree %lld: bad node count",
                                            static_cast<long long>(t)));
    }
    Tree tree;
    tree.nodes.resize(static_cast<size_t>(num_nodes));
    for (int64_t n = 0; n < num_nodes; ++n) {
      TreeNode& node = tree.nodes[static_cast<size_t>(n)];
      int64_t is_leaf = 0, feature = 0, left = 0, right = 0;
      double threshold = 0;
      if (!cursor.NextInt(&is_leaf) || !cursor.NextInt(&feature) ||
          !cursor.NextDouble(&threshold) || !cursor.NextInt(&left) ||
          !cursor.NextInt(&right)) {
        return InvalidArgumentError(
            StrFormat("tree %lld node %lld: malformed",
                      static_cast<long long>(t), static_cast<long long>(n)));
      }
      node.is_leaf = is_leaf != 0;
      node.feature = static_cast<int>(feature);
      node.threshold = threshold;
      node.left = static_cast<int>(left);
      node.right = static_cast<int>(right);
      if (node.is_leaf) {
        if (!cursor.NextDouble(&node.value)) {
          return InvalidArgumentError("leaf: missing value");
        }
      } else {
        int64_t default_left = 0;
        if (!cursor.NextInt(&default_left)) {
          return InvalidArgumentError("inner node: missing default_left");
        }
        node.default_left = default_left != 0;
      }
    }
    forest.trees.push_back(std::move(tree));
  }
  if (!cursor.AtEnd()) {
    return InvalidArgumentError("trailing data after the last tree");
  }
  return forest;
}

Status Forest::Validate() const {
  if (num_features <= 0) return InvalidArgumentError("num_features <= 0");
  if (!std::isfinite(base_score)) {
    return InvalidArgumentError("base_score not finite");
  }
  for (size_t t = 0; t < trees.size(); ++t) {
    const Tree& tree = trees[t];
    const int n = static_cast<int>(tree.nodes.size());
    if (n == 0) {
      return InvalidArgumentError(StrFormat("tree %zu: empty", t));
    }
    size_t leaves = 0;
    for (int i = 0; i < n; ++i) {
      const TreeNode& node = tree.nodes[static_cast<size_t>(i)];
      if (node.is_leaf) {
        ++leaves;
        if (!std::isfinite(node.value)) {
          return InvalidArgumentError(
              StrFormat("tree %zu node %d: leaf value not finite", t, i));
        }
      } else if (!std::isfinite(node.threshold)) {
        return InvalidArgumentError(
            StrFormat("tree %zu node %d: threshold not finite", t, i));
      }
    }
    if (leaves != static_cast<size_t>(n) - leaves + 1) {
      return InvalidArgumentError(
          StrFormat("tree %zu: %zu leaves for %zu inner nodes "
                    "(want inner + 1)",
                    t, leaves, static_cast<size_t>(n) - leaves));
    }
    std::vector<char> seen(static_cast<size_t>(n), 0);
    // Iterative DFS from the root; every node must be visited exactly once.
    std::vector<int> stack = {0};
    int visited = 0;
    while (!stack.empty()) {
      const int index = stack.back();
      stack.pop_back();
      if (index < 0 || index >= n) {
        return InvalidArgumentError(
            StrFormat("tree %zu: child index %d out of range", t, index));
      }
      if (seen[static_cast<size_t>(index)]) {
        return InvalidArgumentError(
            StrFormat("tree %zu: node %d reached twice", t, index));
      }
      seen[static_cast<size_t>(index)] = 1;
      ++visited;
      const TreeNode& node = tree.nodes[static_cast<size_t>(index)];
      if (node.is_leaf) continue;
      if (node.feature < 0 || node.feature >= num_features) {
        return InvalidArgumentError(
            StrFormat("tree %zu node %d: feature %d out of range", t, index,
                      node.feature));
      }
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
    if (visited != n) {
      return InvalidArgumentError(
          StrFormat("tree %zu: %d of %d nodes unreachable", t, n - visited, n));
    }
  }
  return Status::OK();
}

Status Forest::SaveToFile(const std::string& path) const {
  return WriteStringToFile(path, ToText());
}

Result<Forest> Forest::LoadFromFile(const std::string& path) {
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return FromText(*content);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError(StrFormat("cannot open %s: %s", path.c_str(),
                                   std::strerror(errno)));
  }
  std::string content;
  char buffer[1 << 16];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return UnavailableError(StrFormat("read error on %s", path.c_str()));
  }
  return content;
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return UnavailableError(StrFormat("cannot create %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool failed = std::fclose(file) != 0 || written != content.size();
  if (failed) {
    return UnavailableError(StrFormat("write error on %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace t3
