#ifndef T3_GBT_FOREST_H_
#define T3_GBT_FOREST_H_

#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace t3 {

/// One node of a regression tree, stored by index inside Tree::nodes.
/// Node 0 is the root; `left`/`right` index into the same vector.
struct TreeNode {
  bool is_leaf = false;
  int feature = -1;       ///< Split feature (inner nodes), -1 for leaves.
  double threshold = 0.0; ///< Go left iff x[feature] < threshold.
  int left = -1;
  int right = -1;
  double value = 0.0;     ///< Leaf prediction (includes shrinkage).
  /// Where NaN feature values go. LightGBM's default_left; our trainer
  /// always produces false (NaN routes right), but evaluators and the JIT
  /// honor the flag either way.
  bool default_left = false;
};

struct Tree {
  std::vector<TreeNode> nodes;
};

/// Split decision shared by every evaluator (interpreted, flattened, JIT):
/// strictly-less comparison; equality and +/-inf follow from `<`; NaN routes
/// by `default_left`. All evaluators must agree bit-exactly, so any change
/// here must be mirrored in src/treejit.
inline bool GoesLeft(const TreeNode& node, double x) {
  if (std::isnan(x)) return node.default_left;
  return x < node.threshold;
}

/// Walks one tree from the root; returns the reached leaf's value.
double PredictTree(const Tree& tree, const double* row);

/// A gradient-boosted forest of regression trees.
/// Prediction = base_score + sum of per-tree leaf values, in tree order.
struct Forest {
  int num_features = 0;
  double base_score = 0.0;
  std::vector<Tree> trees;

  /// Reference (node-pointer) prediction; the baseline every other
  /// evaluator is tested against.
  double Predict(const double* row) const;

  size_t NumNodes() const;
  size_t NumLeaves() const;

  /// Text serialization ("t3gbt v1"). Numbers are printed with %.17g, so
  /// save -> load round-trips are bit-exact.
  ///
  ///   t3gbt v1
  ///   num_features 48
  ///   base_score 7.7257788436153465
  ///   num_trees 200
  ///   tree 61
  ///   <is_leaf> <feature> <threshold> <left> <right> <value|default_left>
  ///   ...
  ///
  /// Inner nodes carry `default_left` in the last column; leaves carry the
  /// leaf value (feature/left/right are -1).
  std::string ToText() const;

  /// Parses ToText output and rejects invalid forests (see Validate).
  /// Tolerates a leading "t3model target <n>" line so the forest inside a
  /// T3 model file (data/model_*.txt) loads directly.
  static Result<Forest> FromText(std::string_view text);

  /// FromText without the Validate gate: syntactic parse only. For tools
  /// that want to *report* on a corrupt model (t3_lint runs the full
  /// analysis::ForestVerifier over the result) instead of stopping at the
  /// first invariant violation. Never feed an unvalidated forest to an
  /// evaluator.
  static Result<Forest> ParseTextUnvalidated(std::string_view text);

  Status SaveToFile(const std::string& path) const;
  static Result<Forest> LoadFromFile(const std::string& path);

  /// Structural and semantic validation, the loader's reject gate: node
  /// indices in range, every node reachable exactly once (no cycles, no
  /// sharing, no orphans), leaf count = inner count + 1, features within
  /// num_features, thresholds / leaf values / base_score finite. Mirrors
  /// the Error-severity checks of analysis::ForestVerifier (which reports
  /// every finding instead of stopping at the first, and adds
  /// warning-level lints on top); the two are kept in lockstep by
  /// tests/analysis_test.cc.
  Status Validate() const;
};

/// How often each feature index appears as a split across the forest, a
/// size-num_features histogram. The feature-importance proxy the ablation
/// bench ranks features by (LightGBM's "split" importance).
std::vector<int> FeatureSplitCounts(const Forest& forest);

/// Reads a whole file; NotFound/Unavailable on error. Shared by forest,
/// model, and corpus loaders.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (truncates) a whole file.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace t3

#endif  // T3_GBT_FOREST_H_
