#include "gbt/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "common/random.h"
#include "common/string_util.h"

namespace t3 {
namespace {

constexpr double kMapeEps = 1e-9;

/// Per-feature histogram binning. Bin edges are strict upper bounds: row
/// value x falls into the first bin whose edge is > x, i.e.
/// bin(x) = #edges <= x. A split "left = bins 0..b" therefore corresponds
/// exactly to the real-valued test x < edges[b], which is what TreeNode
/// stores — binned training decisions and raw-row evaluation agree
/// bit-exactly.
struct FeatureBins {
  std::vector<double> edges;  // ascending; bins = edges.size() + 1
};

FeatureBins BuildBins(const double* rows, size_t num_features, size_t feature,
                      const std::vector<uint32_t>& row_indices, int max_bins) {
  std::vector<double> values;
  values.reserve(row_indices.size());
  for (uint32_t r : row_indices) {
    values.push_back(rows[r * num_features + feature]);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  FeatureBins bins;
  if (values.size() <= 1) return bins;  // Constant feature: never splittable.
  if (values.size() <= static_cast<size_t>(max_bins)) {
    // One bin per distinct value; edges at midpoints so thresholds are
    // robust round numbers between observed values.
    bins.edges.reserve(values.size() - 1);
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      bins.edges.push_back(values[i] + (values[i + 1] - values[i]) / 2);
    }
  } else {
    // Equi-depth cut points over the distinct values.
    bins.edges.reserve(static_cast<size_t>(max_bins) - 1);
    for (int b = 1; b < max_bins; ++b) {
      const size_t index = values.size() * static_cast<size_t>(b) /
                           static_cast<size_t>(max_bins);
      const double edge = values[index];
      if (bins.edges.empty() || edge > bins.edges.back()) {
        bins.edges.push_back(edge);
      }
    }
  }
  return bins;
}

/// Per-bin gradient statistics of one leaf, flattened over all features.
struct Histogram {
  std::vector<double> grad;
  std::vector<double> hess;
  std::vector<int32_t> count;

  explicit Histogram(size_t total_bins)
      : grad(total_bins, 0.0), hess(total_bins, 0.0), count(total_bins, 0) {}

  void SubtractFrom(const Histogram& parent) {
    for (size_t i = 0; i < grad.size(); ++i) {
      grad[i] = parent.grad[i] - grad[i];
      hess[i] = parent.hess[i] - hess[i];
      count[i] = parent.count[i] - count[i];
    }
  }
};

struct SplitChoice {
  double gain = -1.0;
  int feature = -1;
  int bin = -1;  // left = bins 0..bin  <=>  x < edges[bin]
};

/// One growable leaf during leaf-wise tree construction.
struct LeafCand {
  int node_index = -1;  // Index into Tree::nodes.
  std::vector<uint32_t> rows;
  double sum_grad = 0.0;
  double sum_hess = 0.0;
  Histogram hist;
  SplitChoice best;

  LeafCand(int node, size_t total_bins) : node_index(node), hist(total_bins) {}
};

class Trainer {
 public:
  Trainer(const double* rows, size_t num_rows, size_t num_features,
          const double* targets, const TrainParams& params)
      : rows_(rows),
        num_rows_(num_rows),
        num_features_(num_features),
        targets_(targets),
        params_(params) {}

  Result<Forest> Train(TrainStats* stats);

 private:
  void SplitTrainValidation();
  void BuildBinnedMatrix();
  void ComputeGradients();
  Tree GrowTree();
  void FillHistogram(LeafCand* leaf) const;
  void FindBestSplit(LeafCand* leaf) const;
  double LeafValue(double sum_grad, double sum_hess) const;
  double Loss(const std::vector<uint32_t>& indices,
              const std::vector<double>& preds) const;

  const double* rows_;
  size_t num_rows_;
  size_t num_features_;
  const double* targets_;
  const TrainParams& params_;

  std::vector<uint32_t> train_rows_;
  std::vector<uint32_t> valid_rows_;

  std::vector<FeatureBins> bins_;        // Per feature.
  std::vector<size_t> bin_offsets_;      // Flattened histogram offsets.
  size_t total_bins_ = 0;
  std::vector<uint16_t> binned_;         // num_rows x num_features, row-major.

  // Indexed by raw row id; only train/valid rows are maintained.
  std::vector<double> preds_;
  std::vector<double> grad_;
  std::vector<double> hess_;
};

void Trainer::SplitTrainValidation() {
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0u);
  const bool use_valid =
      params_.validation_fraction > 0.0 && params_.early_stopping_rounds > 0;
  if (!use_valid) {
    train_rows_ = std::move(order);
    return;
  }
  Rng rng(params_.seed);
  rng.Shuffle(&order);
  size_t num_valid =
      static_cast<size_t>(params_.validation_fraction *
                          static_cast<double>(num_rows_));
  // Keep at least one row on each side whenever there are >= 2 rows.
  num_valid = std::min(num_valid, num_rows_ - 1);
  if (num_valid == 0 && num_rows_ >= 10) num_valid = 1;
  valid_rows_.assign(order.begin(), order.begin() + num_valid);
  train_rows_.assign(order.begin() + num_valid, order.end());
  // Deterministic histogram fill order (and better locality).
  std::sort(train_rows_.begin(), train_rows_.end());
  std::sort(valid_rows_.begin(), valid_rows_.end());
}

void Trainer::BuildBinnedMatrix() {
  bins_.resize(num_features_);
  bin_offsets_.resize(num_features_ + 1);
  for (size_t f = 0; f < num_features_; ++f) {
    bins_[f] = BuildBins(rows_, num_features_, f, train_rows_,
                         params_.max_bins);
    bin_offsets_[f] = total_bins_;
    total_bins_ += bins_[f].edges.size() + 1;
  }
  bin_offsets_[num_features_] = total_bins_;

  binned_.resize(num_rows_ * num_features_);
  for (size_t r = 0; r < num_rows_; ++r) {
    for (size_t f = 0; f < num_features_; ++f) {
      const double x = rows_[r * num_features_ + f];
      const std::vector<double>& edges = bins_[f].edges;
      // bin = number of edges <= x  (see FeatureBins contract).
      const size_t bin = static_cast<size_t>(
          std::upper_bound(edges.begin(), edges.end(), x) - edges.begin());
      binned_[r * num_features_ + f] = static_cast<uint16_t>(bin);
    }
  }
}

void Trainer::ComputeGradients() {
  auto each = [&](const std::vector<uint32_t>& indices) {
    for (uint32_t r : indices) {
      const double diff = preds_[r] - targets_[r];
      switch (params_.objective) {
        case Objective::kL2:
          grad_[r] = diff;
          hess_[r] = 1.0;
          break;
        case Objective::kMape: {
          const double w = 1.0 / std::max(std::fabs(targets_[r]), kMapeEps);
          grad_[r] = (diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0)) * w;
          hess_[r] = w;
          break;
        }
      }
    }
  };
  each(train_rows_);
}

double Trainer::LeafValue(double sum_grad, double sum_hess) const {
  return -sum_grad / (sum_hess + params_.l2_reg) * params_.learning_rate;
}

void Trainer::FillHistogram(LeafCand* leaf) const {
  for (uint32_t r : leaf->rows) {
    const uint16_t* row_bins = &binned_[r * num_features_];
    const double g = grad_[r];
    const double h = hess_[r];
    for (size_t f = 0; f < num_features_; ++f) {
      const size_t slot = bin_offsets_[f] + row_bins[f];
      leaf->hist.grad[slot] += g;
      leaf->hist.hess[slot] += h;
      leaf->hist.count[slot] += 1;
    }
    leaf->sum_grad += g;
    leaf->sum_hess += h;
  }
}

void Trainer::FindBestSplit(LeafCand* leaf) const {
  leaf->best = SplitChoice{};
  const double lambda = params_.l2_reg;
  const double total_score =
      leaf->sum_grad * leaf->sum_grad / (leaf->sum_hess + lambda);
  const int total_count = static_cast<int>(leaf->rows.size());
  for (size_t f = 0; f < num_features_; ++f) {
    const size_t num_edges = bins_[f].edges.size();
    if (num_edges == 0) continue;
    const size_t base = bin_offsets_[f];
    double left_grad = 0.0, left_hess = 0.0;
    int left_count = 0;
    // Candidate split after bin b: left = bins 0..b (x < edges[b]).
    for (size_t b = 0; b < num_edges; ++b) {
      left_grad += leaf->hist.grad[base + b];
      left_hess += leaf->hist.hess[base + b];
      left_count += leaf->hist.count[base + b];
      const int right_count = total_count - left_count;
      if (left_count < params_.min_data_in_leaf) continue;
      if (right_count < params_.min_data_in_leaf) break;
      const double right_grad = leaf->sum_grad - left_grad;
      const double right_hess = leaf->sum_hess - left_hess;
      const double gain = left_grad * left_grad / (left_hess + lambda) +
                          right_grad * right_grad / (right_hess + lambda) -
                          total_score;
      if (gain > leaf->best.gain) {
        leaf->best.gain = gain;
        leaf->best.feature = static_cast<int>(f);
        leaf->best.bin = static_cast<int>(b);
      }
    }
  }
}

Tree Trainer::GrowTree() {
  Tree tree;
  tree.nodes.push_back(TreeNode{});  // Root, leaf for now.

  std::vector<LeafCand> leaves;
  leaves.emplace_back(0, total_bins_);
  leaves.back().rows = train_rows_;
  FillHistogram(&leaves.back());
  FindBestSplit(&leaves.back());

  int num_leaves = 1;
  while (num_leaves < params_.max_leaves) {
    // Leaf-wise (best-first) growth: split the leaf with the highest gain.
    int best_index = -1;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (leaves[i].best.gain > params_.min_split_gain &&
          (best_index < 0 ||
           leaves[i].best.gain > leaves[static_cast<size_t>(best_index)]
                                     .best.gain)) {
        best_index = static_cast<int>(i);
      }
    }
    if (best_index < 0) break;

    LeafCand parent = std::move(leaves[static_cast<size_t>(best_index)]);
    leaves.erase(leaves.begin() + best_index);

    const size_t f = static_cast<size_t>(parent.best.feature);
    const uint16_t split_bin = static_cast<uint16_t>(parent.best.bin);
    const double threshold =
        bins_[f].edges[static_cast<size_t>(parent.best.bin)];

    const int left_node = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(TreeNode{});
    const int right_node = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(TreeNode{});
    TreeNode& inner = tree.nodes[static_cast<size_t>(parent.node_index)];
    inner.is_leaf = false;
    inner.feature = parent.best.feature;
    inner.threshold = threshold;
    inner.left = left_node;
    inner.right = right_node;
    inner.default_left = false;

    LeafCand left(left_node, total_bins_);
    LeafCand right(right_node, total_bins_);
    for (uint32_t r : parent.rows) {
      if (binned_[r * num_features_ + f] <= split_bin) {
        left.rows.push_back(r);
      } else {
        right.rows.push_back(r);
      }
    }
    // Histogram-subtraction trick: scan only the smaller child, derive the
    // larger one from the parent.
    LeafCand* scan = left.rows.size() <= right.rows.size() ? &left : &right;
    LeafCand* derive = scan == &left ? &right : &left;
    FillHistogram(scan);
    derive->hist = std::move(parent.hist);
    {
      // derive = parent - scan, in place on the parent's buffers.
      Histogram& h = derive->hist;
      for (size_t i = 0; i < h.grad.size(); ++i) {
        h.grad[i] -= scan->hist.grad[i];
        h.hess[i] -= scan->hist.hess[i];
        h.count[i] -= scan->hist.count[i];
      }
      derive->sum_grad = parent.sum_grad - scan->sum_grad;
      derive->sum_hess = parent.sum_hess - scan->sum_hess;
    }
    FindBestSplit(&left);
    FindBestSplit(&right);
    leaves.push_back(std::move(left));
    leaves.push_back(std::move(right));
    ++num_leaves;
  }

  // Finalize leaf values and update train predictions in place.
  for (LeafCand& leaf : leaves) {
    const double value = LeafValue(leaf.sum_grad, leaf.sum_hess);
    tree.nodes[static_cast<size_t>(leaf.node_index)].is_leaf = true;
    tree.nodes[static_cast<size_t>(leaf.node_index)].value = value;
    for (uint32_t r : leaf.rows) preds_[r] += value;
  }
  return tree;
}

double Trainer::Loss(const std::vector<uint32_t>& indices,
                     const std::vector<double>& preds) const {
  double sum = 0.0;
  for (uint32_t r : indices) {
    const double diff = preds[r] - targets_[r];
    switch (params_.objective) {
      case Objective::kL2:
        sum += diff * diff;
        break;
      case Objective::kMape:
        sum += std::fabs(diff) / std::max(std::fabs(targets_[r]), kMapeEps);
        break;
    }
  }
  return sum / static_cast<double>(indices.size());
}

Result<Forest> Trainer::Train(TrainStats* stats) {
  if (num_rows_ == 0 || num_features_ == 0) {
    return InvalidArgumentError("empty training set");
  }
  for (size_t i = 0; i < num_rows_ * num_features_; ++i) {
    if (!std::isfinite(rows_[i])) {
      return InvalidArgumentError("training rows must be finite");
    }
  }
  for (size_t i = 0; i < num_rows_; ++i) {
    if (!std::isfinite(targets_[i])) {
      return InvalidArgumentError("training targets must be finite");
    }
  }
  if (params_.num_trees < 0 || params_.max_leaves < 2 ||
      params_.max_bins < 2 || params_.max_bins > 65535 ||
      params_.learning_rate <= 0 || params_.validation_fraction < 0 ||
      params_.validation_fraction >= 1) {
    return InvalidArgumentError("bad training parameters");
  }

  SplitTrainValidation();
  BuildBinnedMatrix();

  Forest forest;
  forest.num_features = static_cast<int>(num_features_);
  {
    // Base score: mean target for L2; median for MAPE (the weighted-L1
    // minimizer is close to the median for our positive log-time targets).
    std::vector<double> train_targets;
    train_targets.reserve(train_rows_.size());
    for (uint32_t r : train_rows_) train_targets.push_back(targets_[r]);
    std::sort(train_targets.begin(), train_targets.end());
    if (params_.objective == Objective::kMape) {
      forest.base_score = train_targets[train_targets.size() / 2];
    } else {
      double sum = 0;
      for (double v : train_targets) sum += v;
      forest.base_score = sum / static_cast<double>(train_targets.size());
    }
  }

  preds_.assign(num_rows_, forest.base_score);
  grad_.assign(num_rows_, 0.0);
  hess_.assign(num_rows_, 0.0);

  const bool use_valid = !valid_rows_.empty();
  double best_valid_loss = std::numeric_limits<double>::infinity();
  size_t best_num_trees = 0;
  int rounds_since_best = 0;
  TrainStats local_stats;
  TrainStats& out = stats != nullptr ? *stats : local_stats;
  out = TrainStats{};

  for (int iter = 0; iter < params_.num_trees; ++iter) {
    ComputeGradients();
    Tree tree = GrowTree();
    if (use_valid) {
      for (uint32_t r : valid_rows_) {
        preds_[r] += PredictTree(tree, rows_ + r * num_features_);
      }
    }
    forest.trees.push_back(std::move(tree));

    if (use_valid) {
      const double valid_loss = Loss(valid_rows_, preds_);
      out.valid_loss_history.push_back(valid_loss);
      if (valid_loss < best_valid_loss) {
        best_valid_loss = valid_loss;
        best_num_trees = forest.trees.size();
        rounds_since_best = 0;
      } else if (++rounds_since_best >= params_.early_stopping_rounds) {
        forest.trees.resize(best_num_trees);
        out.early_stopped = true;
        break;
      }
    }
  }

  out.num_trees = static_cast<int>(forest.trees.size());
  out.best_valid_loss = use_valid ? best_valid_loss : 0.0;
  // preds_ includes trees past the truncation point; recompute the final
  // train loss from the kept forest.
  {
    std::vector<double> final_preds(num_rows_, 0.0);
    for (uint32_t r : train_rows_) {
      final_preds[r] = forest.Predict(rows_ + r * num_features_);
    }
    out.final_train_loss = Loss(train_rows_, final_preds);
  }
  return forest;
}

}  // namespace

Result<Forest> TrainForest(const double* rows, size_t num_rows,
                           size_t num_features, const double* targets,
                           const TrainParams& params, TrainStats* stats) {
  Trainer trainer(rows, num_rows, num_features, targets, params);
  return trainer.Train(stats);
}

Result<Forest> TrainForest(const std::vector<double>& rows,
                           const std::vector<double>& targets,
                           size_t num_features, const TrainParams& params,
                           TrainStats* stats) {
  if (num_features == 0 || rows.size() != targets.size() * num_features) {
    return InvalidArgumentError(
        StrFormat("rows size %zu != targets %zu x features %zu", rows.size(),
                  targets.size(), num_features));
  }
  return TrainForest(rows.data(), targets.size(), num_features, targets.data(),
                     params, stats);
}

}  // namespace t3
