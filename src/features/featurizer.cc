#include "features/featurizer.h"

#include <algorithm>

#include "common/string_util.h"

namespace t3 {

std::vector<double> NodeOutputRowsFromPlan(const PhysicalPlan& plan) {
  std::vector<double> rows;
  rows.reserve(plan.nodes.size());
  for (const PlanNode& node : plan.nodes) rows.push_back(node.cardinality);
  return rows;
}

namespace {

/// Adds `value` to the feature of (stage, kind) when the stage carries it.
void Add(std::vector<double>* values, int stage, FeatureKind kind,
         double value) {
  const int index = FeatureRegistry::Get().StageFeature(stage, kind);
  if (index >= 0) (*values)[static_cast<size_t>(index)] += value;
}

}  // namespace

Result<std::vector<PipelineFeatureVector>> ComputePipelineFeatures(
    const Catalog& catalog, const PhysicalPlan& plan,
    const PipelineDecomposition& decomposition,
    const std::vector<double>& node_output_rows) {
  if (node_output_rows.size() != plan.nodes.size()) {
    return InvalidArgumentError(StrFormat(
        "node_output_rows has %zu entries for a %zu-node plan",
        node_output_rows.size(), plan.nodes.size()));
  }
  // Column schemas feed only the predicate-class features. A payload-free
  // skeleton plan (PlanFromRecords output; the server's kPredictPlan
  // requests) names no scan tables and rehydrates filters with placeholder
  // predicates, so it featurizes without consulting the catalog at all —
  // resolving schemas eagerly would reject it for its missing table
  // payloads, and placeholder predicates carry no class information.
  const bool has_scan_payloads = std::any_of(
      plan.nodes.begin(), plan.nodes.end(), [](const PlanNode& node) {
        return node.op == PlanOp::kScan && !node.table.empty();
      });
  const bool needs_schemas =
      has_scan_payloads &&
      std::any_of(plan.nodes.begin(), plan.nodes.end(),
                  [](const PlanNode& node) {
                    return node.op == PlanOp::kFilter &&
                           !node.predicates.empty();
                  });
  std::vector<std::vector<ColumnType>> schemas;
  if (needs_schemas) {
    Result<std::vector<std::vector<ColumnType>>> resolved =
        ResolvePlanSchemas(catalog, plan);
    if (!resolved.ok()) return resolved.status();
    schemas = *std::move(resolved);
  }

  const FeatureRegistry& registry = FeatureRegistry::Get();
  std::vector<PipelineFeatureVector> result;
  result.reserve(decomposition.pipelines.size());

  for (const Pipeline& pipeline : decomposition.pipelines) {
    PipelineFeatureVector features;
    features.pipeline = pipeline.id;
    features.values.assign(static_cast<size_t>(registry.num_features()), 0.0);

    const double driving =
        node_output_rows[static_cast<size_t>(pipeline.source())];
    features.input_cardinality = driving;
    const double denom = std::max(driving, 1.0);

    for (size_t position = 0; position < pipeline.nodes.size(); ++position) {
      const int id = pipeline.nodes[position];
      const PlanNode& node = plan.nodes[static_cast<size_t>(id)];
      const OpStage stage_kind = PipelineStageAt(
          plan, pipeline.nodes, position, pipeline.builds_hash_table);
      const int stage = StageIndexOf(node.op, stage_kind);
      if (stage < 0) {
        return InvalidArgumentError(
            StrFormat("operator %s has no stage catalog entry for its role "
                      "in pipeline %d",
                      PlanOpName(node.op), pipeline.id));
      }

      // Tuples entering this occurrence: the stream predecessor's output,
      // or the node's own output at the source (a source re-emits what it
      // materialized). Widths follow the same two flows.
      const int stream_pred =
          position == 0 ? id : pipeline.nodes[position - 1];
      const double in_rows =
          node_output_rows[static_cast<size_t>(stream_pred)];
      const double in_width =
          plan.nodes[static_cast<size_t>(stream_pred)].width;
      // A join's build stage consumes the build-side stream but emits
      // nothing into this pipeline; keep out = in so the shared loop below
      // stays uniform (the stage carries no out-kinds anyway).
      const double out_rows =
          stage_kind == OpStage::kBuild && node.op == PlanOp::kHashJoin
              ? in_rows
              : node_output_rows[static_cast<size_t>(id)];

      Add(&features.values, stage, FeatureKind::kCount, 1.0);
      Add(&features.values, stage, FeatureKind::kInCard, in_rows);
      Add(&features.values, stage, FeatureKind::kOutCard, out_rows);
      Add(&features.values, stage, FeatureKind::kInSize, in_width);
      Add(&features.values, stage, FeatureKind::kOutSize, node.width);
      Add(&features.values, stage, FeatureKind::kInPercentage,
          in_rows / denom);
      Add(&features.values, stage, FeatureKind::kOutPercentage,
          out_rows / denom);
      if (node.op == PlanOp::kHashJoin && stage_kind == OpStage::kProbe) {
        Add(&features.values, stage, FeatureKind::kRightPercentage,
            node_output_rows[static_cast<size_t>(node.right)] / denom);
      }

      if (needs_schemas && node.op == PlanOp::kFilter &&
          !node.predicates.empty()) {
        const std::vector<ColumnType>& input_schema =
            schemas[static_cast<size_t>(node.left)];
        for (const FilterPredicate& predicate : node.predicates) {
          if (predicate.column < 0 ||
              predicate.column >= static_cast<int>(input_schema.size())) {
            return InvalidArgumentError(StrFormat(
                "filter node %d predicate column %d out of range", id,
                predicate.column));
          }
          const int slot = PredClassSlot(
              predicate.cmp,
              input_schema[static_cast<size_t>(predicate.column)]);
          if (slot < 0) continue;  // String predicates have no class slot.
          features.values[static_cast<size_t>(registry.PredFeature(slot))] +=
              in_rows / denom;
        }
      }
    }
    result.push_back(std::move(features));
  }
  return result;
}

}  // namespace t3
