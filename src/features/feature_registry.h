#ifndef T3_FEATURES_FEATURE_REGISTRY_H_
#define T3_FEATURES_FEATURE_REGISTRY_H_

#include <string>
#include <vector>

#include "features/stage_catalog.h"

namespace t3 {

/// Dimensionality of the per-pipeline feature vector ("FT"/"FE" corpus
/// lines). The registry T3_CHECKs that automatic assignment lands exactly
/// here; tests/features_test.cc pins every index <-> name pair.
inline constexpr int kFeatureDim = 48;

/// One registered feature: its stable display name ("HashJoin_Probe_
/// out_percentage", "Pred_range_int_percentage"), its kind, and its origin —
/// either an operator-stage of StageCatalog() or a predicate class.
struct FeatureDef {
  std::string name;
  FeatureKind kind = FeatureKind::kCount;
  int stage = -1;       ///< StageCatalog() index; -1 for predicate features.
  int pred_slot = -1;   ///< PredClassSlot value; -1 for stage features.
};

/// The feature index space, assigned automatically from the stage catalog:
/// walking StageCatalog() in order, each stage's kinds claim the next
/// indices, then the 9 predicate-class percentages claim the tail. Indices
/// are therefore stable as long as the catalog is append-only.
class FeatureRegistry {
 public:
  /// The process-wide registry (construction is deterministic).
  static const FeatureRegistry& Get();

  int num_features() const { return static_cast<int>(defs_.size()); }
  const FeatureDef& def(int index) const {
    return defs_[static_cast<size_t>(index)];
  }

  /// Vector index of (stage catalog index, kind), or -1 when that stage does
  /// not carry the kind.
  int StageFeature(int stage, FeatureKind kind) const;

  /// Vector index of a predicate-class slot (PredClassSlot value).
  int PredFeature(int pred_slot) const;

  /// Index of a feature by display name, or -1.
  int FindByName(const std::string& name) const;

 private:
  FeatureRegistry();

  std::vector<FeatureDef> defs_;
  std::vector<std::vector<int>> stage_feature_;  // [stage][kind] -> index
  std::vector<int> pred_feature_;                // [pred_slot] -> index
};

}  // namespace t3

#endif  // T3_FEATURES_FEATURE_REGISTRY_H_
