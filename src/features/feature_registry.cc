#include "features/feature_registry.h"

#include <string>

#include "common/check.h"

namespace t3 {

FeatureRegistry::FeatureRegistry() {
  const std::vector<StageDef>& catalog = StageCatalog();
  stage_feature_.assign(catalog.size(),
                        std::vector<int>(kNumFeatureKinds, -1));
  for (size_t s = 0; s < catalog.size(); ++s) {
    for (FeatureKind kind : catalog[s].kinds) {
      T3_CHECK(kind != FeatureKind::kPredicatePercentage);
      FeatureDef def;
      def.name = std::string(catalog[s].name) + "_" + FeatureKindName(kind);
      def.kind = kind;
      def.stage = static_cast<int>(s);
      T3_CHECK(stage_feature_[s][static_cast<size_t>(kind)] == -1);
      stage_feature_[s][static_cast<size_t>(kind)] =
          static_cast<int>(defs_.size());
      defs_.push_back(std::move(def));
    }
  }
  const int num_pred = kNumPredClasses * kNumPredColumnTypes;
  pred_feature_.assign(static_cast<size_t>(num_pred), -1);
  for (int slot = 0; slot < num_pred; ++slot) {
    FeatureDef def;
    def.name = std::string("Pred_") + PredClassSlotName(slot) + "_percentage";
    def.kind = FeatureKind::kPredicatePercentage;
    def.pred_slot = slot;
    pred_feature_[static_cast<size_t>(slot)] = static_cast<int>(defs_.size());
    defs_.push_back(std::move(def));
  }
  T3_CHECK(static_cast<int>(defs_.size()) == kFeatureDim);
}

const FeatureRegistry& FeatureRegistry::Get() {
  static const FeatureRegistry* registry = new FeatureRegistry();
  return *registry;
}

int FeatureRegistry::StageFeature(int stage, FeatureKind kind) const {
  if (stage < 0 || stage >= static_cast<int>(stage_feature_.size())) return -1;
  return stage_feature_[static_cast<size_t>(stage)][static_cast<size_t>(kind)];
}

int FeatureRegistry::PredFeature(int pred_slot) const {
  T3_CHECK(pred_slot >= 0 &&
           pred_slot < static_cast<int>(pred_feature_.size()));
  return pred_feature_[static_cast<size_t>(pred_slot)];
}

int FeatureRegistry::FindByName(const std::string& name) const {
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace t3
