#ifndef T3_FEATURES_FEATURIZER_H_
#define T3_FEATURES_FEATURIZER_H_

#include <vector>

#include "common/status.h"
#include "features/feature_registry.h"
#include "plan/pipeline.h"
#include "plan/plan.h"
#include "storage/catalog.h"

namespace t3 {

/// Feature vector of one pipeline (the paper's getFeatureVectors, Listing 1).
/// Mirrors harness PipelineFeatures; defined here so src/features does not
/// depend on src/harness (the corpus builder copies the values over).
struct PipelineFeatureVector {
  int pipeline = 0;
  double input_cardinality = 0.0;  ///< Pipeline driving cardinality.
  std::vector<double> values;      ///< Dense, kFeatureDim entries.
};

/// Per-node output cardinalities from the plan's own annotations — the
/// "estimated cardinalities" input of ComputePipelineFeatures (corpus "FE"
/// lines). The true-cardinality variant comes from measured
/// OperatorStats::rows_out (see harness/runner.h).
std::vector<double> NodeOutputRowsFromPlan(const PhysicalPlan& plan);

/// The 48-dim per-pipeline feature vectors of a decomposed plan.
///
/// For every pipeline, each node occurrence resolves to an operator-stage
/// (features/stage_catalog.h) and adds its contributions to that stage's
/// registered features — duplicate stages *add*, so e.g. two filters in one
/// pipeline double Filter_PassThrough_count and sum their percentages:
///   - count: 1 per occurrence;
///   - in/out cardinalities: tuples entering the occurrence (the stream
///     predecessor's output; the node's own output at the source) and
///     leaving it;
///   - in/out sizes: tuple widths in bytes of the same two flows;
///   - in/out/right percentages: the cardinalities above, divided by the
///     pipeline's driving cardinality (right = the join build side);
///   - predicate-class percentages: per filter predicate, the filter's input
///     percentage added to the (compare-class x column-type) slot.
///
/// `node_output_rows` holds one output cardinality per plan node, indexed by
/// node id; pass NodeOutputRowsFromPlan(plan) for estimated features or
/// measured counts for true features. The catalog resolves input column
/// types of filter predicates only: a plan whose filters carry predicates
/// must also carry payloads (a live plan), while a predicate-free skeleton
/// — e.g. a prediction-server kPredictPlan request — featurizes fine with
/// an empty catalog (its predicate-class slots just stay zero).
Result<std::vector<PipelineFeatureVector>> ComputePipelineFeatures(
    const Catalog& catalog, const PhysicalPlan& plan,
    const PipelineDecomposition& decomposition,
    const std::vector<double>& node_output_rows);

}  // namespace t3

#endif  // T3_FEATURES_FEATURIZER_H_
