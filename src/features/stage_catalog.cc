#include "features/stage_catalog.h"

#include "common/check.h"

namespace t3 {

const char* FeatureKindName(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kCount:
      return "count";
    case FeatureKind::kInCard:
      return "in_card";
    case FeatureKind::kOutCard:
      return "out_card";
    case FeatureKind::kInSize:
      return "in_size";
    case FeatureKind::kOutSize:
      return "out_size";
    case FeatureKind::kInPercentage:
      return "in_percentage";
    case FeatureKind::kOutPercentage:
      return "out_percentage";
    case FeatureKind::kRightPercentage:
      return "right_percentage";
    case FeatureKind::kPredicatePercentage:
      return "pred_percentage";
  }
  return "?";
}

const std::vector<StageDef>& StageCatalog() {
  // Which kinds a stage carries follows what varies for it: sources and
  // breaker scans see absolute volumes (card/size) since they *define* the
  // pipeline's flow; streaming stages see percentages of the driving
  // cardinality; sinks that materialize see both their input share and the
  // absolute size of what they build.
  static const std::vector<StageDef>* catalog = new std::vector<StageDef>{
      {PlanOp::kScan,
       OpStage::kScan,
       "TableScan_Scan",
       {FeatureKind::kCount, FeatureKind::kInCard, FeatureKind::kInSize}},
      {PlanOp::kFilter,
       OpStage::kPassThrough,
       "Filter_PassThrough",
       {FeatureKind::kCount, FeatureKind::kInPercentage,
        FeatureKind::kOutPercentage}},
      {PlanOp::kProject,
       OpStage::kPassThrough,
       "Project_PassThrough",
       {FeatureKind::kCount, FeatureKind::kInPercentage}},
      {PlanOp::kHashJoin,
       OpStage::kProbe,
       "HashJoin_Probe",
       {FeatureKind::kCount, FeatureKind::kInPercentage,
        FeatureKind::kRightPercentage, FeatureKind::kOutPercentage,
        FeatureKind::kOutCard, FeatureKind::kOutSize}},
      {PlanOp::kHashJoin,
       OpStage::kBuild,
       "HashJoin_Build",
       {FeatureKind::kCount, FeatureKind::kInPercentage, FeatureKind::kInCard,
        FeatureKind::kInSize}},
      {PlanOp::kHashAggregate,
       OpStage::kBuild,
       "GroupBy_Build",
       {FeatureKind::kCount, FeatureKind::kInPercentage,
        FeatureKind::kOutPercentage, FeatureKind::kOutCard}},
      {PlanOp::kHashAggregate,
       OpStage::kScan,
       "GroupBy_Scan",
       {FeatureKind::kCount, FeatureKind::kInCard, FeatureKind::kInSize}},
      {PlanOp::kSort,
       OpStage::kBuild,
       "Sort_Build",
       {FeatureKind::kCount, FeatureKind::kInPercentage, FeatureKind::kInCard,
        FeatureKind::kInSize}},
      {PlanOp::kSort,
       OpStage::kScan,
       "Sort_Scan",
       {FeatureKind::kCount, FeatureKind::kInCard, FeatureKind::kInSize}},
      {PlanOp::kLimit,
       OpStage::kPassThrough,
       "Limit_PassThrough",
       {FeatureKind::kCount, FeatureKind::kOutPercentage,
        FeatureKind::kOutCard}},
      {PlanOp::kOutput,
       OpStage::kSink,
       "Output_Sink",
       {FeatureKind::kCount, FeatureKind::kInPercentage, FeatureKind::kOutCard,
        FeatureKind::kOutSize}},
  };
  return *catalog;
}

int StageIndexOf(PlanOp op, OpStage stage) {
  const std::vector<StageDef>& catalog = StageCatalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].op == op && catalog[i].stage == stage) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

OpStage PipelineStageAt(const PhysicalPlan& plan,
                        const std::vector<int>& pipeline_nodes,
                        size_t position, bool builds_hash_table) {
  T3_CHECK(position < pipeline_nodes.size());
  const PlanOp op = plan.nodes[static_cast<size_t>(pipeline_nodes[position])].op;
  if (position == 0) {
    // A breaker leading the node list is the source scanning its own
    // materialized output; otherwise the source is a table scan.
    return OpStage::kScan;
  }
  if (position + 1 == pipeline_nodes.size()) {
    // Sink: the output root, a join build (build-side pipelines end at the
    // join), or a breaker's build stage.
    if (op == PlanOp::kOutput) return OpStage::kSink;
    if (op == PlanOp::kHashJoin) {
      T3_CHECK(builds_hash_table);
      return OpStage::kBuild;
    }
    return OpStage::kBuild;
  }
  if (op == PlanOp::kHashJoin) return OpStage::kProbe;
  return OpStage::kPassThrough;
}

int PredClassSlot(CompareOp cmp, ColumnType type) {
  int type_index = -1;
  switch (type) {
    case ColumnType::kInt64:
      type_index = 0;
      break;
    case ColumnType::kFloat64:
      type_index = 1;
      break;
    case ColumnType::kDate:
      type_index = 2;
      break;
    case ColumnType::kString:
      return -1;
  }
  PredClass cls = PredClass::kRange;
  switch (cmp) {
    case CompareOp::kEq:
      cls = PredClass::kEq;
      break;
    case CompareOp::kNe:
      cls = PredClass::kNeq;
      break;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe:
      cls = PredClass::kRange;
      break;
  }
  return static_cast<int>(cls) * kNumPredColumnTypes + type_index;
}

const char* PredClassSlotName(int slot) {
  static const char* const kNames[] = {
      "eq_int",    "eq_float",    "eq_date",    "neq_int",  "neq_float",
      "neq_date",  "range_int",   "range_float", "range_date",
  };
  T3_CHECK(slot >= 0 && slot < kNumPredClasses * kNumPredColumnTypes);
  return kNames[slot];
}

}  // namespace t3
