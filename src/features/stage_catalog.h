#ifndef T3_FEATURES_STAGE_CATALOG_H_
#define T3_FEATURES_STAGE_CATALOG_H_

#include <vector>

#include "plan/plan.h"
#include "storage/types.h"

namespace t3 {

/// Execution stage of an operator within one pipeline. A pipeline breaker
/// appears in two pipelines under two different stages (T3 §3): a hash
/// aggregate is the Build sink of its input pipeline and the Scan source of
/// its consumer pipeline; a hash join is the Build sink of its build-side
/// pipeline and a Probe mid-pipeline operator of its probe pipeline.
enum class OpStage {
  kScan = 0,     ///< Pipeline source (table scan or breaker output scan).
  kBuild,        ///< Pipeline sink materializing state (hash table, heap).
  kProbe,        ///< Streaming lookup into previously built state.
  kPassThrough,  ///< Streaming operator with no cross-pipeline state.
  kSink,         ///< The plan's final output materialization.
};

/// Which per-stage feature values the featurizer emits. The registry
/// (features/feature_registry.h) assigns one vector index per applicable
/// (stage, kind) pair; kPredicatePercentage indexes are per predicate class
/// instead of per stage.
enum class FeatureKind {
  kCount = 0,            ///< Occurrences of the stage in the pipeline.
  kInCard,               ///< Absolute input cardinality.
  kOutCard,              ///< Absolute output cardinality.
  kInSize,               ///< Input tuple width in bytes.
  kOutSize,              ///< Output tuple width in bytes.
  kInPercentage,         ///< Input cardinality / pipeline driving cardinality.
  kOutPercentage,        ///< Output cardinality / driving cardinality.
  kRightPercentage,      ///< Build-side cardinality / driving cardinality.
  kPredicatePercentage,  ///< Per predicate class: filtered input percentage.
};

inline constexpr int kNumFeatureKinds = 9;

/// "count", "in_card", ... — the suffix of registry feature names.
const char* FeatureKindName(FeatureKind kind);

/// One operator-stage of the catalog: a (PlanOp, OpStage) pair, its stable
/// display name ("HashJoin_Probe"), and the feature kinds emitted for it in
/// registry index order.
struct StageDef {
  PlanOp op = PlanOp::kScan;
  OpStage stage = OpStage::kScan;
  const char* name = nullptr;
  std::vector<FeatureKind> kinds;
};

/// The fixed operator-stage catalog, in registry index order. Appending new
/// stages is allowed; reordering or renaming existing entries changes every
/// feature index and breaks saved corpora and models.
const std::vector<StageDef>& StageCatalog();

/// Catalog index of (op, stage), or -1 when the pair is not in the catalog.
int StageIndexOf(PlanOp op, OpStage stage);

/// Stage of the node at `position` within a pipeline's node list, following
/// the decomposition's conventions: position 0 is the source (a scan, or a
/// breaker scanning its materialized state), the last position is the sink
/// (output, join build, or breaker build), and everything between streams
/// (filters/projections/limits pass through; joins probe).
OpStage PipelineStageAt(const PhysicalPlan& plan,
                        const std::vector<int>& pipeline_nodes,
                        size_t position, bool builds_hash_table);

// --- Predicate classes. ---

/// Comparison class of a filter predicate: equality, inequality, or range.
enum class PredClass { kEq = 0, kNeq, kRange };

inline constexpr int kNumPredClasses = 3;
inline constexpr int kNumPredColumnTypes = 3;  // int64, float64, date

/// Predicate-class feature slot of (cmp, column type) in [0, 9), or -1 for
/// unsupported (string) columns. Slots are ordered class-major:
/// eq/neq/range x int/float/date.
int PredClassSlot(CompareOp cmp, ColumnType type);

/// "eq_int", "range_date", ... — the middle of predicate feature names.
const char* PredClassSlotName(int slot);

}  // namespace t3

#endif  // T3_FEATURES_STAGE_CATALOG_H_
