#include "storage/column_stats.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/check.h"
#include "common/hash.h"

namespace t3 {
namespace {

// The fixed hashes behind the KMV distinct-value sketch: FNV-1a for strings,
// bit patterns for numerics, SplitMix64-whitened so hash magnitudes are
// uniform.
uint64_t HashString(const std::string& s) {
  Fnv1a h;
  h.Bytes(s.data(), s.size());
  return SplitMix64(h.hash());
}

uint64_t HashDouble(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return SplitMix64(bits);
}

/// K-minimum-values sketch: keeps the k smallest distinct hashes. While fewer
/// than k distinct hashes were seen the count is exact; beyond that the NDV is
/// estimated from the k-th smallest hash's position in the hash space.
class KmvSketch {
 public:
  void Add(uint64_t hash) {
    if (hashes_.size() == kNdvSketchSize &&
        hash >= *hashes_.rbegin()) {
      saturated_ = true;
      return;
    }
    if (hashes_.insert(hash).second && hashes_.size() > kNdvSketchSize) {
      hashes_.erase(std::prev(hashes_.end()));
      saturated_ = true;
    }
  }

  bool exact() const { return !saturated_; }

  uint64_t Estimate() const {
    if (!saturated_) return hashes_.size();
    const double kth = static_cast<double>(*hashes_.rbegin());
    const double unit = kth / 18446744073709551616.0;  // 2^64
    return static_cast<uint64_t>(
        static_cast<double>(kNdvSketchSize - 1) / unit);
  }

 private:
  std::set<uint64_t> hashes_;
  bool saturated_ = false;
};

/// Equi-depth boundaries: numpy-style linearly interpolated quantiles
/// j / kNumHistogramBuckets over the sorted non-null values.
std::vector<double> EquiDepthBounds(std::vector<double> values) {
  std::vector<double> bounds;
  if (values.empty()) return bounds;
  std::sort(values.begin(), values.end());
  bounds.reserve(kNumHistogramBuckets + 1);
  for (size_t j = 0; j <= kNumHistogramBuckets; ++j) {
    const double pos = static_cast<double>(j) / kNumHistogramBuckets *
                       static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    bounds.push_back(values[lo] + frac * (values[hi] - values[lo]));
  }
  return bounds;
}

}  // namespace

ColumnStats ComputeColumnStats(const Column& column) {
  ColumnStats stats;
  stats.type = column.type();
  stats.row_count = column.size();

  KmvSketch sketch;
  std::vector<double> numeric;  // Non-null values for the histogram.
  bool first = true;
  for (size_t row = 0; row < column.size(); ++row) {
    if (column.IsNull(row)) {
      ++stats.null_count;
      continue;
    }
    switch (column.type()) {
      case ColumnType::kInt64:
      case ColumnType::kDate: {
        const int64_t v = column.Int64At(row);
        if (first || v < stats.min_i64) stats.min_i64 = v;
        if (first || v > stats.max_i64) stats.max_i64 = v;
        sketch.Add(SplitMix64(static_cast<uint64_t>(v)));
        numeric.push_back(static_cast<double>(v));
        break;
      }
      case ColumnType::kFloat64: {
        const double v = column.Float64At(row);
        if (first || v < stats.min_f64) stats.min_f64 = v;
        if (first || v > stats.max_f64) stats.max_f64 = v;
        sketch.Add(HashDouble(v));
        numeric.push_back(v);
        break;
      }
      case ColumnType::kString: {
        const std::string& v = column.StringAt(row);
        if (first || v < stats.min_str) stats.min_str = v;
        if (first || v > stats.max_str) stats.max_str = v;
        sketch.Add(HashString(v));
        break;
      }
    }
    first = false;
  }
  stats.has_range = !first;
  stats.ndv = sketch.Estimate();
  stats.ndv_exact = sketch.exact();
  if (column.type() != ColumnType::kString) {
    stats.histogram_bounds = EquiDepthBounds(std::move(numeric));
  }
  return stats;
}

}  // namespace t3
