#ifndef T3_STORAGE_DATABASE_H_
#define T3_STORAGE_DATABASE_H_

#include <string>
#include <utility>

#include "storage/catalog.h"

namespace t3 {

/// A generated database instance bound to its name: the unit querygen and
/// the corpus builder pass around (a corpus "R" line records the instance
/// name next to the measurements taken on its catalog).
class Database {
 public:
  Database(std::string name, Catalog catalog)
      : name_(std::move(name)), catalog_(std::move(catalog)) {}

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const std::string& name() const { return name_; }
  const Catalog& catalog() const { return catalog_; }
  Catalog& catalog() { return catalog_; }

 private:
  std::string name_;
  Catalog catalog_;
};

}  // namespace t3

#endif  // T3_STORAGE_DATABASE_H_
