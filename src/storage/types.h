#ifndef T3_STORAGE_TYPES_H_
#define T3_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

namespace t3 {

/// Logical type of a column. Dates are stored as int64 days since the Unix
/// epoch (1970-01-01) so date arithmetic and statistics reuse the integer
/// paths; they format as ISO "YYYY-MM-DD".
enum class ColumnType {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
  kDate = 3,
};

/// "int64", "float64", "string", "date".
const char* ColumnTypeName(ColumnType type);

/// True for the types whose values live in the int64 buffer.
inline bool IsIntegerBacked(ColumnType type) {
  return type == ColumnType::kInt64 || type == ColumnType::kDate;
}

/// Days since 1970-01-01 for a proleptic-Gregorian civil date. Valid for the
/// whole int32 year range; the inverse of CivilFromDays.
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// ISO date string "YYYY-MM-DD" for days-since-epoch.
std::string FormatDate(int64_t days);

}  // namespace t3

#endif  // T3_STORAGE_TYPES_H_
