#ifndef T3_STORAGE_COLUMN_H_
#define T3_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "storage/types.h"

namespace t3 {

class Int64ColumnRef;
class Float64ColumnRef;
class StringColumnRef;

/// One in-memory column: a typed value buffer plus a null bitmap (bit set =
/// NULL). Values of NULL rows are zero/empty placeholders so buffers stay
/// densely indexed by row.
///
/// Two fill paths:
///  - Append*: grow one row at a time (tests, small builders).
///  - Resize + Set*: preallocate, then writers fill disjoint row ranges. This
///    is the parallel path used by datagen; concurrent writers must partition
///    rows into ranges whose boundaries are multiples of 64 so no two threads
///    touch the same null-bitmap word.
class Column {
 public:
  Column(std::string name, ColumnType type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const { return size_; }

  void Resize(size_t n);

  void AppendInt64(int64_t value);
  void AppendFloat64(double value);
  void AppendString(std::string value);
  /// Appends a NULL row (placeholder value of the column's type).
  void AppendNull();

  void SetInt64(size_t row, int64_t value) {
    T3_CHECK(IsIntegerBacked(type_));
    data_i64_[row] = value;
  }
  void SetFloat64(size_t row, double value) {
    T3_CHECK(type_ == ColumnType::kFloat64);
    data_f64_[row] = value;
  }
  void SetString(size_t row, std::string value) {
    T3_CHECK(type_ == ColumnType::kString);
    data_str_[row] = std::move(value);
  }
  void SetNull(size_t row) { null_words_[row >> 6] |= 1ULL << (row & 63); }

  bool IsNull(size_t row) const {
    return (null_words_[row >> 6] >> (row & 63)) & 1;
  }
  int64_t Int64At(size_t row) const { return data_i64_[row]; }
  double Float64At(size_t row) const { return data_f64_[row]; }
  const std::string& StringAt(size_t row) const { return data_str_[row]; }

  /// Typed accessors; each T3_CHECKs the column's type.
  Int64ColumnRef Int64Ref() const;
  Float64ColumnRef Float64Ref() const;
  StringColumnRef StringRef() const;
  /// Dates read through the int64 interface (days since epoch).
  Int64ColumnRef DateRef() const;

  /// Null bitmap words (size() / 64 rounded up; bit set = NULL; trailing bits
  /// past size() are zero).
  const std::vector<uint64_t>& null_words() const { return null_words_; }

 private:
  friend class Int64ColumnRef;
  friend class Float64ColumnRef;
  friend class StringColumnRef;

  std::string name_;
  ColumnType type_;
  size_t size_ = 0;
  std::vector<uint64_t> null_words_;
  std::vector<int64_t> data_i64_;   // kInt64, kDate
  std::vector<double> data_f64_;    // kFloat64
  std::vector<std::string> data_str_;  // kString
};

/// Borrowed typed view of a Column. Valid only while the column is alive and
/// not resized.
class Int64ColumnRef {
 public:
  explicit Int64ColumnRef(const Column* column) : column_(column) {
    T3_CHECK(IsIntegerBacked(column->type()));
  }
  size_t size() const { return column_->size_; }
  bool IsNull(size_t row) const { return column_->IsNull(row); }
  int64_t operator[](size_t row) const { return column_->data_i64_[row]; }

 private:
  const Column* column_;
};

class Float64ColumnRef {
 public:
  explicit Float64ColumnRef(const Column* column) : column_(column) {
    T3_CHECK(column->type() == ColumnType::kFloat64);
  }
  size_t size() const { return column_->size_; }
  bool IsNull(size_t row) const { return column_->IsNull(row); }
  double operator[](size_t row) const { return column_->data_f64_[row]; }

 private:
  const Column* column_;
};

class StringColumnRef {
 public:
  explicit StringColumnRef(const Column* column) : column_(column) {
    T3_CHECK(column->type() == ColumnType::kString);
  }
  size_t size() const { return column_->size_; }
  bool IsNull(size_t row) const { return column_->IsNull(row); }
  const std::string& operator[](size_t row) const {
    return column_->data_str_[row];
  }

 private:
  const Column* column_;
};

}  // namespace t3

#endif  // T3_STORAGE_COLUMN_H_
