#include "storage/column.h"

namespace t3 {

void Column::Resize(size_t n) {
  size_ = n;
  null_words_.assign((n + 63) / 64, 0);
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kDate:
      data_i64_.assign(n, 0);
      break;
    case ColumnType::kFloat64:
      data_f64_.assign(n, 0.0);
      break;
    case ColumnType::kString:
      data_str_.assign(n, std::string());
      break;
  }
}

void Column::AppendInt64(int64_t value) {
  T3_CHECK(IsIntegerBacked(type_));
  if (size_ % 64 == 0) null_words_.push_back(0);
  data_i64_.push_back(value);
  ++size_;
}

void Column::AppendFloat64(double value) {
  T3_CHECK(type_ == ColumnType::kFloat64);
  if (size_ % 64 == 0) null_words_.push_back(0);
  data_f64_.push_back(value);
  ++size_;
}

void Column::AppendString(std::string value) {
  T3_CHECK(type_ == ColumnType::kString);
  if (size_ % 64 == 0) null_words_.push_back(0);
  data_str_.push_back(std::move(value));
  ++size_;
}

void Column::AppendNull() {
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kDate:
      AppendInt64(0);
      break;
    case ColumnType::kFloat64:
      AppendFloat64(0.0);
      break;
    case ColumnType::kString:
      AppendString(std::string());
      break;
  }
  SetNull(size_ - 1);
}

Int64ColumnRef Column::Int64Ref() const {
  T3_CHECK(type_ == ColumnType::kInt64);
  return Int64ColumnRef(this);
}

Float64ColumnRef Column::Float64Ref() const { return Float64ColumnRef(this); }

StringColumnRef Column::StringRef() const { return StringColumnRef(this); }

Int64ColumnRef Column::DateRef() const {
  T3_CHECK(type_ == ColumnType::kDate);
  return Int64ColumnRef(this);
}

}  // namespace t3
