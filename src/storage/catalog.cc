#include "storage/catalog.h"

#include "common/check.h"
#include "common/string_util.h"

namespace t3 {

Table& Catalog::AddTable(std::string name) {
  for (const auto& table : tables_) {
    T3_CHECK(table->name() != name);  // Duplicate table name.
  }
  tables_.push_back(std::make_unique<Table>(std::move(name)));
  return *tables_.back();
}

Result<const Table*> Catalog::FindTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (table->name() == name) return static_cast<const Table*>(table.get());
  }
  return NotFoundError(StrFormat("no table '%s' in catalog", name.c_str()));
}

Result<Table*> Catalog::FindTable(const std::string& name) {
  for (const auto& table : tables_) {
    if (table->name() == name) return table.get();
  }
  return NotFoundError(StrFormat("no table '%s' in catalog", name.c_str()));
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& table : tables_) names.push_back(table->name());
  return names;
}

}  // namespace t3
