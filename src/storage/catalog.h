#ifndef T3_STORAGE_CATALOG_H_
#define T3_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace t3 {

/// A database instance: named tables in insertion order. Tables are held by
/// unique_ptr so pointers handed out stay stable as tables are added.
class Catalog {
 public:
  Catalog() = default;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Creates an empty table; the name must be unused.
  Table& AddTable(std::string name);

  Result<const Table*> FindTable(const std::string& name) const;
  Result<Table*> FindTable(const std::string& name);

  size_t num_tables() const { return tables_.size(); }
  const Table& table(size_t index) const { return *tables_[index]; }
  Table& table(size_t index) { return *tables_[index]; }

  std::vector<std::string> TableNames() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace t3

#endif  // T3_STORAGE_CATALOG_H_
