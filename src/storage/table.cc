#include "storage/table.h"

#include "common/string_util.h"

namespace t3 {

Column& Table::AddColumn(std::string name, ColumnType type) {
  columns_.emplace_back(std::move(name), type);
  return columns_.back();
}

Result<const Column*> Table::FindColumn(const std::string& name) const {
  for (const Column& column : columns_) {
    if (column.name() == name) return &column;
  }
  return NotFoundError(
      StrFormat("no column '%s' in table '%s'", name.c_str(), name_.c_str()));
}

void Table::ComputeStats() {
  stats_.clear();
  stats_.reserve(columns_.size());
  for (const Column& column : columns_) {
    stats_.push_back(ComputeColumnStats(column));
  }
}

}  // namespace t3
