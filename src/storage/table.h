#ifndef T3_STORAGE_TABLE_H_
#define T3_STORAGE_TABLE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/column_stats.h"

namespace t3 {

/// A named collection of equally sized columns. Tables are built either by
/// appending whole columns (AddColumn) or by the datagen parallel path
/// (columns pre-Resized and filled in place).
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t num_columns() const { return columns_.size(); }
  /// Row count of the first column (all columns are equally sized; 0 when the
  /// table has no columns).
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  /// Adds a column; its size must match existing columns'.
  Column& AddColumn(std::string name, ColumnType type);

  const Column& column(size_t index) const { return columns_[index]; }
  Column& column(size_t index) { return columns_[index]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Column by name, or kNotFound.
  Result<const Column*> FindColumn(const std::string& name) const;

  /// Recomputes and caches ColumnStats for every column. Pure recomputation:
  /// calling it again on unchanged data yields identical stats.
  void ComputeStats();
  /// Stats from the last ComputeStats call; empty before the first call.
  const std::vector<ColumnStats>& stats() const { return stats_; }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<ColumnStats> stats_;
};

}  // namespace t3

#endif  // T3_STORAGE_TABLE_H_
