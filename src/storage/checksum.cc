#include "storage/checksum.h"

#include <string>

#include "common/hash.h"

namespace t3 {

uint64_t ColumnChecksum(const Column& column) {
  Fnv1a h;
  h.U64(static_cast<uint64_t>(column.type()));
  h.U64(column.size());
  for (const uint64_t word : column.null_words()) h.U64(word);
  for (size_t row = 0; row < column.size(); ++row) {
    switch (column.type()) {
      case ColumnType::kInt64:
      case ColumnType::kDate:
        h.U64(static_cast<uint64_t>(column.Int64At(row)));
        break;
      case ColumnType::kFloat64:
        h.F64(column.Float64At(row));
        break;
      case ColumnType::kString:
        h.LengthPrefixedString(column.StringAt(row));
        break;
    }
  }
  return h.hash();
}

uint64_t TableChecksum(const Table& table) {
  Fnv1a h;
  h.LengthPrefixedString(table.name());
  h.U64(table.num_columns());
  for (const Column& column : table.columns()) {
    h.LengthPrefixedString(column.name());
    h.U64(ColumnChecksum(column));
  }
  return h.hash();
}

uint64_t CatalogChecksum(const Catalog& catalog) {
  Fnv1a h;
  h.U64(catalog.num_tables());
  for (size_t i = 0; i < catalog.num_tables(); ++i) {
    h.U64(TableChecksum(catalog.table(i)));
  }
  return h.hash();
}

}  // namespace t3
