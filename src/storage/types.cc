#include "storage/types.h"

#include "common/check.h"
#include "common/string_util.h"

namespace t3 {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kFloat64:
      return "float64";
    case ColumnType::kString:
      return "string";
    case ColumnType::kDate:
      return "date";
  }
  T3_CHECK(false);
  return "?";
}

// Howard Hinnant's days_from_civil / civil_from_days algorithms (public
// domain), which are exact over the full proleptic Gregorian calendar.
int64_t DaysFromCivil(int year, int month, int day) {
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);  // [0, 399]
  const unsigned doy =
      (153 * (static_cast<unsigned>(month) + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;                        // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t days, int* year, int* month, int* day) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);  // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;                  // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

std::string FormatDate(int64_t days) {
  int year = 0;
  int month = 0;
  int day = 0;
  CivilFromDays(days, &year, &month, &day);
  return StrFormat("%04d-%02d-%02d", year, month, day);
}

}  // namespace t3
