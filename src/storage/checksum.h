#ifndef T3_STORAGE_CHECKSUM_H_
#define T3_STORAGE_CHECKSUM_H_

#include <cstdint>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/table.h"

namespace t3 {

/// Order-sensitive FNV-1a fingerprint of a column's full contents: type tag,
/// row count, every null-bitmap word, and every value (strings
/// length-prefixed, doubles by bit pattern). Two columns checksum equal iff
/// they are bit-identical, which is what the datagen determinism tests and
/// the golden fixture pin down.
uint64_t ColumnChecksum(const Column& column);

/// Combines the table name and each column's name + checksum.
uint64_t TableChecksum(const Table& table);

/// Combines every table's checksum in catalog order.
uint64_t CatalogChecksum(const Catalog& catalog);

}  // namespace t3

#endif  // T3_STORAGE_CHECKSUM_H_
