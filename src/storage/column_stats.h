#ifndef T3_STORAGE_COLUMN_STATS_H_
#define T3_STORAGE_COLUMN_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"

namespace t3 {

/// Per-column statistics consumed by the cardinality estimator, the query
/// generator's predicate sampler, and the datagen golden tests.
///
/// ComputeColumnStats is a pure function of the column contents, so
/// recomputation is idempotent and stats are bit-deterministic whenever the
/// data is.
struct ColumnStats {
  ColumnType type = ColumnType::kInt64;
  uint64_t row_count = 0;
  uint64_t null_count = 0;

  /// Min/max over non-null values; has_range is false when every row is NULL
  /// (or the column is empty). The pair matching `type` is meaningful.
  bool has_range = false;
  int64_t min_i64 = 0, max_i64 = 0;  // kInt64, kDate
  double min_f64 = 0.0, max_f64 = 0.0;  // kFloat64
  std::string min_str, max_str;  // kString

  /// Number of distinct non-null values. Exact (ndv_exact) up to the KMV
  /// sketch size; a k-minimum-values estimate beyond it. Deterministic either
  /// way because the hash is fixed.
  uint64_t ndv = 0;
  bool ndv_exact = true;

  /// Equi-depth histogram boundaries (ascending, kNumHistogramBuckets + 1
  /// entries) for numeric and date columns with at least one non-null value;
  /// empty for string columns. Dates are boundaries in days-since-epoch.
  std::vector<double> histogram_bounds;

  double null_fraction() const {
    return row_count == 0 ? 0.0
                          : static_cast<double>(null_count) /
                                static_cast<double>(row_count);
  }

  bool operator==(const ColumnStats&) const = default;
};

inline constexpr size_t kNumHistogramBuckets = 16;
inline constexpr size_t kNdvSketchSize = 256;

ColumnStats ComputeColumnStats(const Column& column);

}  // namespace t3

#endif  // T3_STORAGE_COLUMN_STATS_H_
