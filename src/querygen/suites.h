#ifndef T3_QUERYGEN_SUITES_H_
#define T3_QUERYGEN_SUITES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "querygen/querygen.h"
#include "storage/catalog.h"

namespace t3 {

/// Fixed benchmark suites: handcrafted plans over the three benchmark-like
/// schema families (the corpus's "fixed" queries, evaluated separately from
/// the random structure groups — Figure 8's "Fixed" row). Each suite is
/// deterministic, parameter-free, and fails with kNotFound when run against
/// a catalog of a different family.
Result<std::vector<GeneratedQuery>> TpchLikeSuite(const Catalog& catalog);
Result<std::vector<GeneratedQuery>> TpcdsLikeSuite(const Catalog& catalog);
Result<std::vector<GeneratedQuery>> JobLikeSuite(const Catalog& catalog);

/// The suite matching an instance family ("tpch", "tpcds", "imdb"); an empty
/// vector for families without a fixed suite.
Result<std::vector<GeneratedQuery>> FixedSuiteForFamily(
    const Catalog& catalog, const std::string& family);

}  // namespace t3

#endif  // T3_QUERYGEN_SUITES_H_
