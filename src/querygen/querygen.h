#ifndef T3_QUERYGEN_QUERYGEN_H_
#define T3_QUERYGEN_QUERYGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan.h"
#include "storage/catalog.h"

namespace t3 {

/// The 16 random query-structure groups of the training corpus (T3 §4 /
/// Figure 8). Group letters compose the primitives a query contains:
/// Se = selection (filter), P = projection, A = aggregation, Si = sort,
/// L = limit, J = one join, C = a chain of joins. The numeric codes are the
/// `group` values on corpus "R" lines and must never be renumbered.
///
/// The paper's window group (W) is pending with the window operator (plan op
/// code 7, reserved); its slot here is taken by the SeP projection group so
/// the corpus still spans 16 structures.
enum class QueryGroup : int {
  kSe = 0,
  kSeP = 1,
  kA = 2,
  kSeA = 3,
  kSi = 4,
  kSiL = 5,
  kSiA = 6,
  kJ = 7,
  kSeJ = 8,
  kJA = 9,
  kSeJA = 10,
  kSeJSi = 11,
  kSeJSiA = 12,
  kCSe = 13,
  kCSeJA = 14,
  kCSeJSiL = 15,
};

inline constexpr int kNumQueryGroups = 16;

/// "Se", "SeJA", ... (stable; used in reports and bench tables).
const char* QueryGroupName(QueryGroup group);

/// All 16 groups in code order.
const std::vector<QueryGroup>& AllQueryGroups();

/// Group for a corpus code, or kInvalidArgument.
Result<QueryGroup> QueryGroupFromCode(int code);

/// One generated query: a payload-carrying plan (executable by the engine)
/// plus the corpus bookkeeping the "R" line records.
struct GeneratedQuery {
  std::string name;          ///< "SeJA_3" or a fixed-suite name ("tpch_q5").
  int structure_group = 0;   ///< QueryGroup code (fixed suites reuse 0).
  bool fixed_suite = false;
  uint64_t seed = 0;         ///< Per-query PRNG seed (0 for fixed suites).
  PhysicalPlan plan;
};

/// A foreign-key join edge discovered from column statistics alone:
/// `pk_table.pk_column` looks like a sequential primary key (dense 0..n-1,
/// no NULLs) and `fk_table.fk_column`'s value range fits inside it.
struct JoinEdge {
  size_t fk_table = 0;
  size_t fk_column = 0;
  size_t pk_table = 0;
  size_t pk_column = 0;
};

/// All FK->PK edges of a catalog, discovered from stats (ComputeStats must
/// have run, as datagen always does). Deterministic: pure function of the
/// stats, ordered by (fk_table, fk_column, pk_table).
std::vector<JoinEdge> DiscoverJoinEdges(const Catalog& catalog);

/// Seeded random query generator over one catalog. Deterministic: a query is
/// a pure function of (catalog statistics, generator seed, group, index), so
/// regenerating an instance at any thread count reproduces bit-identical
/// plans. Predicate constants and selectivity estimates are sampled from the
/// catalog's ColumnStats (histogram boundaries, NDVs, null fractions);
/// estimates overwrite the PlanBuilder's defaults, so "FE" features reflect
/// the statistics-driven estimator.
class QueryGenerator {
 public:
  QueryGenerator(const Catalog* catalog, uint64_t seed);

  /// The `index`-th query of a structure group. Fails (kFailedPrecondition)
  /// only when the catalog cannot express the group at all, e.g. a chain
  /// group over a catalog with no discoverable join edge.
  Result<GeneratedQuery> Generate(QueryGroup group, int index);

  /// Generate for every group x [0, queries_per_group); groups the catalog
  /// cannot express are skipped.
  std::vector<GeneratedQuery> GenerateAll(int queries_per_group);

 private:
  const Catalog* catalog_;
  uint64_t seed_;
  std::vector<JoinEdge> edges_;
};

}  // namespace t3

#endif  // T3_QUERYGEN_QUERYGEN_H_
