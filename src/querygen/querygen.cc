#include "querygen/querygen.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"
#include "storage/column_stats.h"

namespace t3 {

const char* QueryGroupName(QueryGroup group) {
  switch (group) {
    case QueryGroup::kSe:
      return "Se";
    case QueryGroup::kSeP:
      return "SeP";
    case QueryGroup::kA:
      return "A";
    case QueryGroup::kSeA:
      return "SeA";
    case QueryGroup::kSi:
      return "Si";
    case QueryGroup::kSiL:
      return "SiL";
    case QueryGroup::kSiA:
      return "SiA";
    case QueryGroup::kJ:
      return "J";
    case QueryGroup::kSeJ:
      return "SeJ";
    case QueryGroup::kJA:
      return "JA";
    case QueryGroup::kSeJA:
      return "SeJA";
    case QueryGroup::kSeJSi:
      return "SeJSi";
    case QueryGroup::kSeJSiA:
      return "SeJSiA";
    case QueryGroup::kCSe:
      return "CSe";
    case QueryGroup::kCSeJA:
      return "CSeJA";
    case QueryGroup::kCSeJSiL:
      return "CSeJSiL";
  }
  return "?";
}

const std::vector<QueryGroup>& AllQueryGroups() {
  static const std::vector<QueryGroup>* groups = [] {
    auto* all = new std::vector<QueryGroup>;
    for (int code = 0; code < kNumQueryGroups; ++code) {
      all->push_back(static_cast<QueryGroup>(code));
    }
    return all;
  }();
  return *groups;
}

Result<QueryGroup> QueryGroupFromCode(int code) {
  if (code < 0 || code >= kNumQueryGroups) {
    return InvalidArgumentError(
        StrFormat("query group code %d out of range [0, %d)", code,
                  kNumQueryGroups));
  }
  return static_cast<QueryGroup>(code);
}

namespace {

/// True when the column's statistics look like a dense sequential primary
/// key: int64, no NULLs, exactly covering [0, rows). The NDV check tolerates
/// the KMV sketch's estimation error above kNdvSketchSize distinct values.
bool LooksLikePk(const ColumnStats& stats, uint64_t rows) {
  if (stats.type != ColumnType::kInt64 || rows == 0) return false;
  if (stats.null_count != 0 || !stats.has_range) return false;
  if (stats.min_i64 != 0 || stats.max_i64 != static_cast<int64_t>(rows) - 1) {
    return false;
  }
  return static_cast<double>(stats.ndv) >= 0.7 * static_cast<double>(rows);
}

/// SplitMix64-style mixing of (seed, group, index) into one per-query PRNG
/// seed, so every query draws from an independent deterministic stream.
uint64_t MixSeed(uint64_t seed, uint64_t group, uint64_t index) {
  uint64_t x =
      seed + 0x9e3779b97f4a7c15ULL * (group * 1315423911ULL + index + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Which primitives a structure group composes.
struct GroupShape {
  bool selection = false;
  bool projection = false;
  bool aggregation = false;
  bool sort = false;
  bool limit = false;
  int min_joins = 0;
  int max_joins = 0;
};

GroupShape ShapeOf(QueryGroup group) {
  GroupShape s;
  switch (group) {
    case QueryGroup::kSe:
      s.selection = true;
      break;
    case QueryGroup::kSeP:
      s.selection = s.projection = true;
      break;
    case QueryGroup::kA:
      s.aggregation = true;
      break;
    case QueryGroup::kSeA:
      s.selection = s.aggregation = true;
      break;
    case QueryGroup::kSi:
      s.sort = true;
      break;
    case QueryGroup::kSiL:
      s.sort = s.limit = true;
      break;
    case QueryGroup::kSiA:
      s.aggregation = s.sort = true;
      break;
    case QueryGroup::kJ:
      s.min_joins = s.max_joins = 1;
      break;
    case QueryGroup::kSeJ:
      s.selection = true;
      s.min_joins = s.max_joins = 1;
      break;
    case QueryGroup::kJA:
      s.aggregation = true;
      s.min_joins = s.max_joins = 1;
      break;
    case QueryGroup::kSeJA:
      s.selection = s.aggregation = true;
      s.min_joins = s.max_joins = 1;
      break;
    case QueryGroup::kSeJSi:
      s.selection = s.sort = true;
      s.min_joins = s.max_joins = 1;
      break;
    case QueryGroup::kSeJSiA:
      s.selection = s.aggregation = s.sort = true;
      s.min_joins = s.max_joins = 1;
      break;
    case QueryGroup::kCSe:
      s.selection = true;
      s.min_joins = 2;
      s.max_joins = 3;
      break;
    case QueryGroup::kCSeJA:
      s.selection = s.aggregation = true;
      s.min_joins = 2;
      s.max_joins = 3;
      break;
    case QueryGroup::kCSeJSiL:
      s.selection = s.sort = s.limit = true;
      s.min_joins = 2;
      s.max_joins = 3;
      break;
  }
  return s;
}

bool IsNumericStats(const ColumnStats& stats) {
  return stats.type != ColumnType::kString;
}

/// Columns a sampled predicate may reference: numeric/date with a computed
/// histogram (at least one non-null value).
std::vector<int> EligiblePredicateColumns(const Table& table) {
  std::vector<int> eligible;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const ColumnStats& stats = table.stats()[c];
    if (!IsNumericStats(stats) || !stats.has_range) continue;
    if (stats.histogram_bounds.size() != kNumHistogramBuckets + 1) continue;
    eligible.push_back(static_cast<int>(c));
  }
  return eligible;
}

struct SampledPredicate {
  FilterPredicate pred;
  double selectivity = 1.0;
};

/// Draws one predicate on `column` from its statistics: range predicates
/// take an equi-depth histogram boundary as the constant (so the estimated
/// selectivity is the boundary's depth fraction), equality/inequality draw a
/// domain value and estimate through 1/NDV. All estimates discount NULLs,
/// which never pass a predicate.
SampledPredicate SamplePredicate(Rng* rng, const ColumnStats& stats,
                                 int column) {
  SampledPredicate out;
  out.pred.column = column;
  const std::vector<double>& bounds = stats.histogram_bounds;
  const double not_null = 1.0 - stats.null_fraction();
  const double ndv = static_cast<double>(std::max<uint64_t>(stats.ndv, 1));
  const double roll = rng->Unit();
  if (roll < 0.6) {
    const int64_t bucket =
        rng->UniformInt(1, static_cast<int64_t>(kNumHistogramBuckets) - 1);
    const double fraction =
        static_cast<double>(bucket) / static_cast<double>(kNumHistogramBuckets);
    static constexpr CompareOp kDirections[] = {CompareOp::kLt, CompareOp::kLe,
                                                CompareOp::kGt, CompareOp::kGe};
    const int64_t direction = rng->UniformInt(0, 3);
    out.pred.cmp = kDirections[direction];
    out.pred.constant = bounds[static_cast<size_t>(bucket)];
    out.selectivity = (direction < 2 ? fraction : 1.0 - fraction) * not_null;
  } else {
    const bool equality = roll < 0.85;
    if (IsIntegerBacked(stats.type)) {
      out.pred.constant = static_cast<double>(
          rng->UniformInt(stats.min_i64, std::max(stats.min_i64, stats.max_i64)));
    } else {
      out.pred.constant = bounds[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(kNumHistogramBuckets)))];
    }
    out.pred.cmp = equality ? CompareOp::kEq : CompareOp::kNe;
    out.selectivity =
        equality ? not_null / ndv : not_null * (1.0 - 1.0 / ndv);
  }
  out.selectivity = std::clamp(out.selectivity, 0.0, 1.0);
  return out;
}

}  // namespace

std::vector<JoinEdge> DiscoverJoinEdges(const Catalog& catalog) {
  std::vector<JoinEdge> edges;
  // Primary-key candidates first.
  std::vector<std::pair<size_t, size_t>> pks;
  for (size_t t = 0; t < catalog.num_tables(); ++t) {
    const Table& table = catalog.table(t);
    T3_CHECK(table.stats().size() == table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (LooksLikePk(table.stats()[c], table.num_rows())) {
        pks.emplace_back(t, c);
        break;  // One key per table; the first sequential column wins.
      }
    }
  }
  for (size_t t = 0; t < catalog.num_tables(); ++t) {
    const Table& table = catalog.table(t);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const ColumnStats& stats = table.stats()[c];
      if (stats.type != ColumnType::kInt64 || !stats.has_range) continue;
      if (LooksLikePk(stats, table.num_rows())) continue;
      if (stats.min_i64 < 0) continue;
      for (const auto& [pt, pc] : pks) {
        if (pt == t) continue;
        const ColumnStats& pk = catalog.table(pt).stats()[pc];
        // The FK's observed range must fit inside the key domain and cover a
        // meaningful part of it (skewed FKs still reach well past half).
        if (stats.max_i64 > pk.max_i64) continue;
        if (4 * stats.max_i64 < pk.max_i64) continue;
        edges.push_back(JoinEdge{t, c, pt, pc});
      }
    }
  }
  return edges;
}

QueryGenerator::QueryGenerator(const Catalog* catalog, uint64_t seed)
    : catalog_(catalog), seed_(seed), edges_(DiscoverJoinEdges(*catalog)) {}

Result<GeneratedQuery> QueryGenerator::Generate(QueryGroup group, int index) {
  const GroupShape shape = ShapeOf(group);
  const uint64_t query_seed =
      MixSeed(seed_, static_cast<uint64_t>(group), static_cast<uint64_t>(index));
  Rng rng(query_seed);
  PlanBuilder builder(catalog_);

  // --- Base table (the fact of join groups). ---
  size_t fact = 0;
  if (shape.max_joins > 0) {
    if (edges_.empty()) {
      return FailedPreconditionError(StrFormat(
          "group %s needs a join but no FK edge was discovered",
          QueryGroupName(group)));
    }
    const JoinEdge& edge = edges_[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(edges_.size()) - 1))];
    fact = edge.fk_table;
  } else {
    // Any table works; selection groups need a predicate-eligible column,
    // which every instance's tables have (keys are at least eligible).
    std::vector<size_t> tables;
    for (size_t t = 0; t < catalog_->num_tables(); ++t) {
      if (!shape.selection ||
          !EligiblePredicateColumns(catalog_->table(t)).empty()) {
        tables.push_back(t);
      }
    }
    if (tables.empty()) {
      return FailedPreconditionError(
          "no table has a predicate-eligible column");
    }
    fact = tables[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(tables.size()) - 1))];
  }

  const Table& fact_table = catalog_->table(fact);
  Result<int> scan = builder.Scan(fact_table.name());
  if (!scan.ok()) return scan.status();
  int current = *scan;
  // Origin (table, column) of every current output column, for statistics
  // lookups after joins/projections; (-1, -1) once untracked (post-agg).
  std::vector<std::pair<int, int>> origins;
  for (size_t c = 0; c < fact_table.num_columns(); ++c) {
    origins.emplace_back(static_cast<int>(fact), static_cast<int>(c));
  }

  // --- Selection: 1-2 statistics-sampled predicates on the base scan. ---
  if (shape.selection) {
    std::vector<int> eligible = EligiblePredicateColumns(fact_table);
    if (eligible.empty()) {
      return FailedPreconditionError(StrFormat(
          "table %s has no predicate-eligible column",
          fact_table.name().c_str()));
    }
    rng.Shuffle(&eligible);
    const size_t num_predicates =
        std::min(eligible.size(), rng.Bernoulli(0.4) ? size_t{2} : size_t{1});
    std::vector<FilterPredicate> predicates;
    double selectivity = 1.0;
    for (size_t i = 0; i < num_predicates; ++i) {
      SampledPredicate sampled = SamplePredicate(
          &rng, fact_table.stats()[static_cast<size_t>(eligible[i])],
          eligible[i]);
      selectivity *= sampled.selectivity;
      predicates.push_back(sampled.pred);
    }
    const double input_rows = builder.node(current).cardinality;
    Result<int> filter = builder.Filter(current, std::move(predicates));
    if (!filter.ok()) return filter.status();
    builder.node(*filter).cardinality =
        std::max(1.0, input_rows * selectivity);
    current = *filter;
  }

  // --- Joins: extend the probe side along discovered FK edges. ---
  const int64_t want_joins =
      shape.max_joins == 0
          ? 0
          : rng.UniformInt(shape.min_joins, shape.max_joins);
  std::vector<size_t> joined = {fact};
  for (int64_t j = 0; j < want_joins; ++j) {
    std::vector<std::pair<int, JoinEdge>> candidates;  // probe column, edge
    for (const JoinEdge& edge : edges_) {
      if (std::find(joined.begin(), joined.end(), edge.pk_table) !=
          joined.end()) {
        continue;
      }
      for (size_t p = 0; p < origins.size(); ++p) {
        if (origins[p].first == static_cast<int>(edge.fk_table) &&
            origins[p].second == static_cast<int>(edge.fk_column)) {
          candidates.emplace_back(static_cast<int>(p), edge);
        }
      }
    }
    if (candidates.empty()) {
      if (j == 0) {
        return FailedPreconditionError(StrFormat(
            "no FK edge reachable from table %s", fact_table.name().c_str()));
      }
      break;  // Chain shorter than drawn; the group still has >= 1 join.
    }
    const auto& [probe_key, edge] = candidates[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    const Table& dim = catalog_->table(edge.pk_table);
    Result<int> dim_scan = builder.Scan(dim.name());
    if (!dim_scan.ok()) return dim_scan.status();
    Result<int> join =
        builder.HashJoin(current, *dim_scan, {probe_key},
                         {static_cast<int>(edge.pk_column)});
    if (!join.ok()) return join.status();
    current = *join;
    joined.push_back(edge.pk_table);
    for (size_t c = 0; c < dim.num_columns(); ++c) {
      origins.emplace_back(static_cast<int>(edge.pk_table),
                           static_cast<int>(c));
    }
  }

  // --- Projection: a random non-empty column subset, in schema order. ---
  if (shape.projection) {
    const size_t width = builder.schema(current).size();
    std::vector<int> all(width);
    for (size_t c = 0; c < width; ++c) all[c] = static_cast<int>(c);
    rng.Shuffle(&all);
    all.resize(static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(width))));
    std::sort(all.begin(), all.end());
    std::vector<std::pair<int, int>> kept;
    for (int c : all) kept.push_back(origins[static_cast<size_t>(c)]);
    Result<int> project = builder.Project(current, std::move(all));
    if (!project.ok()) return project.status();
    current = *project;
    origins = std::move(kept);
  }

  // --- Aggregation: group by an integer-backed column (NDV-estimated), or
  // a global aggregate. ---
  if (shape.aggregation) {
    const std::vector<ColumnType>& schema = builder.schema(current);
    std::vector<int> group_candidates;
    for (size_t c = 0; c < schema.size(); ++c) {
      if (!IsIntegerBacked(schema[c])) continue;
      const auto& [ot, oc] = origins[c];
      if (ot < 0) continue;
      if (catalog_->table(static_cast<size_t>(ot))
              .stats()[static_cast<size_t>(oc)]
              .ndv < 2) {
        continue;
      }
      group_candidates.push_back(static_cast<int>(c));
    }
    std::vector<int> group_by;
    double groups_estimate = 1.0;
    if (!group_candidates.empty() && !rng.Bernoulli(0.2)) {
      const int column = group_candidates[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(group_candidates.size()) - 1))];
      group_by.push_back(column);
      const auto& [ot, oc] = origins[static_cast<size_t>(column)];
      groups_estimate = static_cast<double>(
          catalog_->table(static_cast<size_t>(ot))
              .stats()[static_cast<size_t>(oc)]
              .ndv);
    }
    std::vector<AggregateSpec> aggregates = {{AggFunc::kCountStar, -1}};
    std::vector<int> float_columns;
    for (size_t c = 0; c < schema.size(); ++c) {
      if (schema[c] == ColumnType::kFloat64) {
        float_columns.push_back(static_cast<int>(c));
      }
    }
    if (!float_columns.empty() && rng.Bernoulli(0.7)) {
      static constexpr AggFunc kValueAggs[] = {AggFunc::kSum, AggFunc::kMin,
                                               AggFunc::kMax};
      aggregates.push_back(
          {kValueAggs[rng.UniformInt(0, 2)],
           float_columns[static_cast<size_t>(rng.UniformInt(
               0, static_cast<int64_t>(float_columns.size()) - 1))]});
    }
    const double input_rows = builder.node(current).cardinality;
    Result<int> agg = builder.HashAggregate(current, std::move(group_by),
                                            std::move(aggregates));
    if (!agg.ok()) return agg.status();
    builder.node(*agg).cardinality =
        std::max(1.0, std::min(groups_estimate, input_rows));
    current = *agg;
    origins.assign(builder.schema(current).size(), {-1, -1});
  }

  // --- Sort: 1-2 numeric keys of the current schema. ---
  if (shape.sort) {
    const std::vector<ColumnType>& schema = builder.schema(current);
    std::vector<int> numeric;
    for (size_t c = 0; c < schema.size(); ++c) {
      if (schema[c] != ColumnType::kString) {
        numeric.push_back(static_cast<int>(c));
      }
    }
    if (numeric.empty()) {
      return FailedPreconditionError("no sortable column in schema");
    }
    rng.Shuffle(&numeric);
    std::vector<SortKey> keys;
    const size_t num_keys =
        std::min(numeric.size(), rng.Bernoulli(0.3) ? size_t{2} : size_t{1});
    for (size_t k = 0; k < num_keys; ++k) {
      keys.push_back({numeric[k], rng.Bernoulli(0.5)});
    }
    Result<int> sort = builder.Sort(current, std::move(keys));
    if (!sort.ok()) return sort.status();
    current = *sort;
  }

  // --- Limit. ---
  if (shape.limit) {
    Result<int> limit = builder.Limit(current, 10 * rng.UniformInt(1, 20));
    if (!limit.ok()) return limit.status();
    current = *limit;
  }

  Result<PhysicalPlan> plan = builder.Output(current);
  if (!plan.ok()) return plan.status();

  GeneratedQuery query;
  query.name = StrFormat("%s_%d", QueryGroupName(group), index);
  query.structure_group = static_cast<int>(group);
  query.fixed_suite = false;
  query.seed = query_seed;
  query.plan = *std::move(plan);
  return query;
}

std::vector<GeneratedQuery> QueryGenerator::GenerateAll(int queries_per_group) {
  std::vector<GeneratedQuery> queries;
  for (QueryGroup group : AllQueryGroups()) {
    for (int index = 0; index < queries_per_group; ++index) {
      Result<GeneratedQuery> query = Generate(group, index);
      if (query.ok()) queries.push_back(*std::move(query));
    }
  }
  return queries;
}

}  // namespace t3
