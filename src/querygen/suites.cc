#include "querygen/suites.h"

#include <utility>

#include "common/string_util.h"
#include "storage/types.h"

namespace t3 {
namespace {

/// Index of a named column within its table, or kNotFound. The fixed suites
/// address base-table columns by name and joined schemas by base index plus
/// the probe side's width, so a schema-family mismatch fails here instead of
/// building a wrong plan.
Result<int> Col(const Catalog& catalog, const char* table_name,
                const char* column_name) {
  Result<const Table*> table = catalog.FindTable(table_name);
  if (!table.ok()) return table.status();
  for (size_t c = 0; c < (*table)->num_columns(); ++c) {
    if ((*table)->column(c).name() == column_name) return static_cast<int>(c);
  }
  return NotFoundError(StrFormat("column %s.%s not found", table_name,
                                 column_name));
}

Result<int> Width(const Catalog& catalog, const char* table_name) {
  Result<const Table*> table = catalog.FindTable(table_name);
  if (!table.ok()) return table.status();
  return static_cast<int>((*table)->num_columns());
}

double Date(int year, int month, int day) {
  return static_cast<double>(DaysFromCivil(year, month, day));
}

GeneratedQuery Fixed(const char* name, PhysicalPlan plan) {
  GeneratedQuery query;
  query.name = name;
  query.structure_group = 0;
  query.fixed_suite = true;
  query.seed = 0;
  query.plan = std::move(plan);
  return query;
}

// The suites below thread Result values manually; T3_SUITE_ASSIGN keeps the
// happy path readable (every builder step can only fail on a schema-family
// mismatch, which the caller reports).
#define T3_SUITE_ASSIGN(var, expr)         \
  auto var##_result = (expr);              \
  if (!var##_result.ok()) return var##_result.status(); \
  const auto var = *std::move(var##_result)

}  // namespace

Result<std::vector<GeneratedQuery>> TpchLikeSuite(const Catalog& catalog) {
  T3_SUITE_ASSIGN(l_order, Col(catalog, "lineitem", "l_order"));
  T3_SUITE_ASSIGN(l_supp, Col(catalog, "lineitem", "l_supp"));
  T3_SUITE_ASSIGN(l_qty, Col(catalog, "lineitem", "l_qty"));
  T3_SUITE_ASSIGN(l_price, Col(catalog, "lineitem", "l_price"));
  T3_SUITE_ASSIGN(l_discount, Col(catalog, "lineitem", "l_discount"));
  T3_SUITE_ASSIGN(l_ship, Col(catalog, "lineitem", "l_ship"));
  T3_SUITE_ASSIGN(li_width, Width(catalog, "lineitem"));
  T3_SUITE_ASSIGN(o_id, Col(catalog, "orders", "o_id"));
  T3_SUITE_ASSIGN(o_cust, Col(catalog, "orders", "o_cust"));
  T3_SUITE_ASSIGN(o_date, Col(catalog, "orders", "o_date"));
  T3_SUITE_ASSIGN(o_width, Width(catalog, "orders"));
  T3_SUITE_ASSIGN(c_id, Col(catalog, "customer", "c_id"));
  T3_SUITE_ASSIGN(c_nation, Col(catalog, "customer", "c_nation"));
  T3_SUITE_ASSIGN(s_id, Col(catalog, "supplier", "s_id"));
  T3_SUITE_ASSIGN(s_nation, Col(catalog, "supplier", "s_nation"));
  T3_SUITE_ASSIGN(s_width, Width(catalog, "supplier"));
  T3_SUITE_ASSIGN(n_id, Col(catalog, "nation", "n_id"));
  T3_SUITE_ASSIGN(n_region, Col(catalog, "nation", "n_region"));

  std::vector<GeneratedQuery> suite;
  PlanBuilder b(&catalog);

  {
    // q1-like: shipped-before summary grouped by quantity.
    T3_SUITE_ASSIGN(scan, b.Scan("lineitem"));
    T3_SUITE_ASSIGN(filter, b.Filter(scan, {{l_ship, CompareOp::kLe,
                                             Date(1998, 9, 1)}}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(filter, {l_qty},
                                         {{AggFunc::kCountStar, -1},
                                          {AggFunc::kSum, l_price}}));
    T3_SUITE_ASSIGN(plan, b.Output(agg));
    suite.push_back(Fixed("tpch_q1", plan));
  }
  {
    // q3-like: revenue of pre-cutoff orders per customer nation.
    T3_SUITE_ASSIGN(scan, b.Scan("lineitem"));
    T3_SUITE_ASSIGN(orders, b.Scan("orders"));
    T3_SUITE_ASSIGN(j1, b.HashJoin(scan, orders, {l_order}, {o_id}));
    T3_SUITE_ASSIGN(customer, b.Scan("customer"));
    T3_SUITE_ASSIGN(j2, b.HashJoin(j1, customer, {li_width + o_cust}, {c_id}));
    T3_SUITE_ASSIGN(filter, b.Filter(j2, {{li_width + o_date, CompareOp::kLt,
                                           Date(1995, 3, 15)}}));
    T3_SUITE_ASSIGN(agg,
                    b.HashAggregate(filter, {li_width + o_width + c_nation},
                                    {{AggFunc::kCountStar, -1},
                                     {AggFunc::kSum, l_price}}));
    T3_SUITE_ASSIGN(plan, b.Output(agg));
    suite.push_back(Fixed("tpch_q3", plan));
  }
  {
    // q5-like: line items per supplier region.
    T3_SUITE_ASSIGN(scan, b.Scan("lineitem"));
    T3_SUITE_ASSIGN(supplier, b.Scan("supplier"));
    T3_SUITE_ASSIGN(j1, b.HashJoin(scan, supplier, {l_supp}, {s_id}));
    T3_SUITE_ASSIGN(nation, b.Scan("nation"));
    T3_SUITE_ASSIGN(j2, b.HashJoin(j1, nation, {li_width + s_nation}, {n_id}));
    T3_SUITE_ASSIGN(agg,
                    b.HashAggregate(j2, {li_width + s_width + n_region},
                                    {{AggFunc::kCountStar, -1}}));
    T3_SUITE_ASSIGN(plan, b.Output(agg));
    suite.push_back(Fixed("tpch_q5", plan));
  }
  {
    // q6-like: revenue of a quantity/discount/date band.
    T3_SUITE_ASSIGN(scan, b.Scan("lineitem"));
    T3_SUITE_ASSIGN(filter,
                    b.Filter(scan, {{l_ship, CompareOp::kGe, Date(1994, 1, 1)},
                                    {l_discount, CompareOp::kGe, 0.05},
                                    {l_qty, CompareOp::kLt, 24.0}}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(filter, {},
                                         {{AggFunc::kSum, l_price}}));
    T3_SUITE_ASSIGN(plan, b.Output(agg));
    suite.push_back(Fixed("tpch_q6", plan));
  }
  {
    // q13-like: order counts per customer nation, busiest first.
    T3_SUITE_ASSIGN(orders, b.Scan("orders"));
    T3_SUITE_ASSIGN(customer, b.Scan("customer"));
    T3_SUITE_ASSIGN(join, b.HashJoin(orders, customer, {o_cust}, {c_id}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(join, {o_width + c_nation},
                                         {{AggFunc::kCountStar, -1}}));
    T3_SUITE_ASSIGN(sort, b.Sort(agg, {{1, false}}));
    T3_SUITE_ASSIGN(plan, b.Output(sort));
    suite.push_back(Fixed("tpch_q13", plan));
  }
  {
    // q18-like: top orders by revenue.
    T3_SUITE_ASSIGN(scan, b.Scan("lineitem"));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(scan, {l_order},
                                         {{AggFunc::kCountStar, -1},
                                          {AggFunc::kSum, l_price}}));
    T3_SUITE_ASSIGN(sort, b.Sort(agg, {{2, false}}));
    T3_SUITE_ASSIGN(limit, b.Limit(sort, 100));
    T3_SUITE_ASSIGN(plan, b.Output(limit));
    suite.push_back(Fixed("tpch_q18", plan));
  }
  return suite;
}

Result<std::vector<GeneratedQuery>> TpcdsLikeSuite(const Catalog& catalog) {
  T3_SUITE_ASSIGN(ss_cust, Col(catalog, "store_sales", "ss_cust"));
  T3_SUITE_ASSIGN(ss_store, Col(catalog, "store_sales", "ss_store"));
  T3_SUITE_ASSIGN(ss_date, Col(catalog, "store_sales", "ss_date"));
  T3_SUITE_ASSIGN(ss_qty, Col(catalog, "store_sales", "ss_qty"));
  T3_SUITE_ASSIGN(ss_price, Col(catalog, "store_sales", "ss_price"));
  T3_SUITE_ASSIGN(ss_net, Col(catalog, "store_sales", "ss_net"));
  T3_SUITE_ASSIGN(ss_width, Width(catalog, "store_sales"));
  T3_SUITE_ASSIGN(d_id, Col(catalog, "date_dim", "d_id"));
  T3_SUITE_ASSIGN(d_year, Col(catalog, "date_dim", "d_year"));
  T3_SUITE_ASSIGN(d_moy, Col(catalog, "date_dim", "d_moy"));
  T3_SUITE_ASSIGN(cu_id, Col(catalog, "customer", "cu_id"));
  T3_SUITE_ASSIGN(cu_birth, Col(catalog, "customer", "cu_birth"));
  T3_SUITE_ASSIGN(st_id, Col(catalog, "store", "st_id"));
  T3_SUITE_ASSIGN(sr_item, Col(catalog, "store_returns", "sr_item"));
  T3_SUITE_ASSIGN(sr_amount, Col(catalog, "store_returns", "sr_amount"));

  std::vector<GeneratedQuery> suite;
  PlanBuilder b(&catalog);

  {
    // q3-like: November net sales per year.
    T3_SUITE_ASSIGN(sales, b.Scan("store_sales"));
    T3_SUITE_ASSIGN(dates, b.Scan("date_dim"));
    T3_SUITE_ASSIGN(join, b.HashJoin(sales, dates, {ss_date}, {d_id}));
    T3_SUITE_ASSIGN(filter, b.Filter(join, {{ss_width + d_moy, CompareOp::kEq,
                                             11.0}}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(filter, {ss_width + d_year},
                                         {{AggFunc::kCountStar, -1},
                                          {AggFunc::kSum, ss_net}}));
    T3_SUITE_ASSIGN(plan, b.Output(agg));
    suite.push_back(Fixed("tpcds_q3", plan));
  }
  {
    // q7-like: sales to pre-1980 customers per store.
    T3_SUITE_ASSIGN(sales, b.Scan("store_sales"));
    T3_SUITE_ASSIGN(customer, b.Scan("customer"));
    T3_SUITE_ASSIGN(join, b.HashJoin(sales, customer, {ss_cust}, {cu_id}));
    T3_SUITE_ASSIGN(filter,
                    b.Filter(join, {{ss_width + cu_birth, CompareOp::kLt,
                                     Date(1980, 1, 1)}}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(filter, {ss_store},
                                         {{AggFunc::kCountStar, -1},
                                          {AggFunc::kSum, ss_price}}));
    T3_SUITE_ASSIGN(plan, b.Output(agg));
    suite.push_back(Fixed("tpcds_q7", plan));
  }
  {
    // q42-like: bulk sales net revenue per store, highest first.
    T3_SUITE_ASSIGN(sales, b.Scan("store_sales"));
    T3_SUITE_ASSIGN(filter, b.Filter(sales, {{ss_qty, CompareOp::kGt, 50.0}}));
    T3_SUITE_ASSIGN(stores, b.Scan("store"));
    T3_SUITE_ASSIGN(join, b.HashJoin(filter, stores, {ss_store}, {st_id}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(join, {ss_store},
                                         {{AggFunc::kSum, ss_net}}));
    T3_SUITE_ASSIGN(sort, b.Sort(agg, {{1, false}}));
    T3_SUITE_ASSIGN(plan, b.Output(sort));
    suite.push_back(Fixed("tpcds_q42", plan));
  }
  {
    // q98-like: recent sales per month in calendar order.
    T3_SUITE_ASSIGN(sales, b.Scan("store_sales"));
    T3_SUITE_ASSIGN(dates, b.Scan("date_dim"));
    T3_SUITE_ASSIGN(join, b.HashJoin(sales, dates, {ss_date}, {d_id}));
    T3_SUITE_ASSIGN(filter, b.Filter(join, {{ss_width + d_year, CompareOp::kGe,
                                             2000.0}}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(filter, {ss_width + d_moy},
                                         {{AggFunc::kCountStar, -1},
                                          {AggFunc::kSum, ss_price}}));
    T3_SUITE_ASSIGN(sort, b.Sort(agg, {{0, true}}));
    T3_SUITE_ASSIGN(plan, b.Output(sort));
    suite.push_back(Fixed("tpcds_q98", plan));
  }
  {
    // Returns-focused: large refunds per item.
    T3_SUITE_ASSIGN(returns, b.Scan("store_returns"));
    T3_SUITE_ASSIGN(filter, b.Filter(returns, {{sr_amount, CompareOp::kGt,
                                                50.0}}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(filter, {sr_item},
                                         {{AggFunc::kCountStar, -1}}));
    T3_SUITE_ASSIGN(plan, b.Output(agg));
    suite.push_back(Fixed("tpcds_ret", plan));
  }
  {
    // Top line items by net value.
    T3_SUITE_ASSIGN(sales, b.Scan("store_sales"));
    T3_SUITE_ASSIGN(sort, b.Sort(sales, {{ss_net, false}, {ss_price, true}}));
    T3_SUITE_ASSIGN(limit, b.Limit(sort, 100));
    T3_SUITE_ASSIGN(plan, b.Output(limit));
    suite.push_back(Fixed("tpcds_top", plan));
  }
  return suite;
}

Result<std::vector<GeneratedQuery>> JobLikeSuite(const Catalog& catalog) {
  T3_SUITE_ASSIGN(t_id, Col(catalog, "title", "t_id"));
  T3_SUITE_ASSIGN(t_year, Col(catalog, "title", "t_year"));
  T3_SUITE_ASSIGN(ci_title, Col(catalog, "cast_info", "ci_title"));
  T3_SUITE_ASSIGN(ci_person, Col(catalog, "cast_info", "ci_person"));
  T3_SUITE_ASSIGN(ci_width, Width(catalog, "cast_info"));
  T3_SUITE_ASSIGN(n_id, Col(catalog, "name", "n_id"));
  T3_SUITE_ASSIGN(co_id, Col(catalog, "company", "co_id"));
  T3_SUITE_ASSIGN(co_width, Width(catalog, "company"));
  T3_SUITE_ASSIGN(mc_title, Col(catalog, "movie_companies", "mc_title"));
  T3_SUITE_ASSIGN(mc_company, Col(catalog, "movie_companies", "mc_company"));
  T3_SUITE_ASSIGN(mc_width, Width(catalog, "movie_companies"));
  T3_SUITE_ASSIGN(mi_title, Col(catalog, "movie_info", "mi_title"));
  T3_SUITE_ASSIGN(mi_width, Width(catalog, "movie_info"));

  std::vector<GeneratedQuery> suite;
  PlanBuilder b(&catalog);

  {
    // Cast sizes of recent titles per year.
    T3_SUITE_ASSIGN(cast, b.Scan("cast_info"));
    T3_SUITE_ASSIGN(titles, b.Scan("title"));
    T3_SUITE_ASSIGN(join, b.HashJoin(cast, titles, {ci_title}, {t_id}));
    T3_SUITE_ASSIGN(filter, b.Filter(join, {{ci_width + t_year, CompareOp::kGt,
                                             2000.0}}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(filter, {ci_width + t_year},
                                         {{AggFunc::kCountStar, -1}}));
    T3_SUITE_ASSIGN(plan, b.Output(agg));
    suite.push_back(Fixed("job_q1", plan));
  }
  {
    // Production credits on post-1990 titles.
    T3_SUITE_ASSIGN(credits, b.Scan("movie_companies"));
    T3_SUITE_ASSIGN(companies, b.Scan("company"));
    T3_SUITE_ASSIGN(j1, b.HashJoin(credits, companies, {mc_company}, {co_id}));
    T3_SUITE_ASSIGN(titles, b.Scan("title"));
    T3_SUITE_ASSIGN(j2, b.HashJoin(j1, titles, {mc_title}, {t_id}));
    T3_SUITE_ASSIGN(filter,
                    b.Filter(j2, {{mc_width + co_width + t_year,
                                   CompareOp::kGe, 1990.0}}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(filter, {},
                                         {{AggFunc::kCountStar, -1}}));
    T3_SUITE_ASSIGN(plan, b.Output(agg));
    suite.push_back(Fixed("job_q2", plan));
  }
  {
    // Info records per title year in a decade band, densest first.
    T3_SUITE_ASSIGN(info, b.Scan("movie_info"));
    T3_SUITE_ASSIGN(titles, b.Scan("title"));
    T3_SUITE_ASSIGN(join, b.HashJoin(info, titles, {mi_title}, {t_id}));
    T3_SUITE_ASSIGN(filter,
                    b.Filter(join, {{mi_width + t_year, CompareOp::kGe, 2005.0},
                                    {mi_width + t_year, CompareOp::kLe,
                                     2015.0}}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(filter, {mi_width + t_year},
                                         {{AggFunc::kCountStar, -1}}));
    T3_SUITE_ASSIGN(sort, b.Sort(agg, {{1, false}}));
    T3_SUITE_ASSIGN(plan, b.Output(sort));
    suite.push_back(Fixed("job_q3", plan));
  }
  {
    // Most-credited people.
    T3_SUITE_ASSIGN(cast, b.Scan("cast_info"));
    T3_SUITE_ASSIGN(names, b.Scan("name"));
    T3_SUITE_ASSIGN(join, b.HashJoin(cast, names, {ci_person}, {n_id}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(join, {ci_person},
                                         {{AggFunc::kCountStar, -1}}));
    T3_SUITE_ASSIGN(sort, b.Sort(agg, {{1, false}}));
    T3_SUITE_ASSIGN(limit, b.Limit(sort, 50));
    T3_SUITE_ASSIGN(plan, b.Output(limit));
    suite.push_back(Fixed("job_q4", plan));
  }
  {
    // Earliest titles of a year band.
    T3_SUITE_ASSIGN(titles, b.Scan("title"));
    T3_SUITE_ASSIGN(filter, b.Filter(titles, {{t_year, CompareOp::kGe, 1950.0},
                                              {t_year, CompareOp::kLe,
                                               1990.0}}));
    T3_SUITE_ASSIGN(sort, b.Sort(filter, {{t_year, true}}));
    T3_SUITE_ASSIGN(limit, b.Limit(sort, 100));
    T3_SUITE_ASSIGN(plan, b.Output(limit));
    suite.push_back(Fixed("job_q5", plan));
  }
  {
    // Most-documented titles.
    T3_SUITE_ASSIGN(info, b.Scan("movie_info"));
    T3_SUITE_ASSIGN(titles, b.Scan("title"));
    T3_SUITE_ASSIGN(join, b.HashJoin(info, titles, {mi_title}, {t_id}));
    T3_SUITE_ASSIGN(agg, b.HashAggregate(join, {mi_width + t_id},
                                         {{AggFunc::kCountStar, -1}}));
    T3_SUITE_ASSIGN(sort, b.Sort(agg, {{1, false}}));
    T3_SUITE_ASSIGN(limit, b.Limit(sort, 25));
    T3_SUITE_ASSIGN(plan, b.Output(limit));
    suite.push_back(Fixed("job_q6", plan));
  }
  return suite;
}

Result<std::vector<GeneratedQuery>> FixedSuiteForFamily(
    const Catalog& catalog, const std::string& family) {
  if (family == "tpch") return TpchLikeSuite(catalog);
  if (family == "tpcds") return TpcdsLikeSuite(catalog);
  if (family == "imdb") return JobLikeSuite(catalog);
  return std::vector<GeneratedQuery>{};
}

}  // namespace t3
