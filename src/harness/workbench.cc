#include "harness/workbench.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "analysis/forest_diff.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "gbt/trainer.h"
#include "harness/runner.h"

namespace t3 {
namespace {

constexpr char kCorpusFile[] = "corpus_q40_r10.txt";
constexpr char kLiveCorpusCache[] = "cache_corpus_live.txt";
constexpr char kMainModelCache[] = "cache_model_main.txt";

}  // namespace

Workbench::Workbench(std::string data_dir) : data_dir_(std::move(data_dir)) {}

Workbench::~Workbench() = default;

const Corpus& Workbench::corpus() {
  if (corpus_ != nullptr) return *corpus_;

  // Preference order: the full benchmarked fixture (when present), then a
  // previously generated live corpus, then a fresh live build (datagen ->
  // querygen -> engine -> featurizer) cached for subsequent binaries.
  const std::string fixture_path = data_dir_ + "/" + kCorpusFile;
  Result<Corpus> loaded = LoadCorpusFromFile(fixture_path);
  if (!loaded.ok()) {
    const std::string cache_path = data_dir_ + "/" + kLiveCorpusCache;
    loaded = LoadCorpusFromFile(cache_path);
    if (!loaded.ok()) {
      std::fprintf(stderr,
                   "Workbench: no corpus fixture at %s; generating a live "
                   "corpus (all instances; this takes a few minutes on "
                   "first run)...\n",
                   fixture_path.c_str());
      ThreadPool pool(4);
      LiveCorpusOptions options;
      options.pool = &pool;
      Stopwatch timer;
      Result<Corpus> live = BuildLiveCorpus(options);
      if (!live.ok()) {
        std::fprintf(stderr, "Workbench: live corpus build failed: %s\n",
                     live.status().ToString().c_str());
        T3_CHECK(live.ok());
      }
      std::fprintf(stderr,
                   "Workbench: built live corpus: %zu records in %.1fs\n",
                   live->records.size(), timer.ElapsedSeconds());
      const Status saved = SaveCorpusToFile(*live, cache_path);
      if (!saved.ok()) {
        std::fprintf(stderr, "Workbench: cannot cache live corpus: %s\n",
                     saved.ToString().c_str());
      }
      loaded = *std::move(live);
    }
  }
  corpus_ = std::make_unique<Corpus>(*std::move(loaded));
  return *corpus_;
}

const T3Model& Workbench::MainModel() {
  if (main_model_ != nullptr) return *main_model_;

  const std::string cache_path = data_dir_ + "/" + kMainModelCache;
  Result<T3Model> cached = T3Model::LoadFromFile(cache_path);
  if (cached.ok()) {
    main_model_ = std::make_unique<T3Model>(*std::move(cached));
    return *main_model_;
  }

  // Train the per-tuple model on the train split: one row per pipeline
  // (true-cardinality features), target = negated log per-tuple time.
  const Corpus& data = corpus();
  size_t num_features = 0;
  for (const QueryRecord& record : data.records) {
    if (!record.feat_true.empty()) {
      num_features = record.feat_true[0].values.size();
      break;
    }
  }
  T3_CHECK(num_features > 0);

  std::vector<double> rows;
  std::vector<double> targets;
  for (const QueryRecord& record : data.records) {
    if (record.is_test) continue;
    for (size_t p = 0; p < record.feat_true.size(); ++p) {
      const PipelineFeatures& features = record.feat_true[p];
      if (features.values.size() != num_features) continue;
      const double pipeline_seconds =
          p < record.pipeline_times.size()
              ? record.pipeline_times[p].median_seconds
              : record.median_seconds;
      const double tuples = std::max(features.input_cardinality, 1.0);
      rows.insert(rows.end(), features.values.begin(), features.values.end());
      targets.push_back(TransformTarget(pipeline_seconds / tuples));
    }
  }
  T3_CHECK(!targets.empty());

  TrainParams params;
  params.num_trees = 200;
  params.max_leaves = 31;
  params.objective = Objective::kMape;
  params.validation_fraction = 0.1;
  params.early_stopping_rounds = 20;

  std::fprintf(stderr,
               "Workbench: training main model on %zu pipelines x %zu "
               "features...\n",
               targets.size(), num_features);
  Stopwatch timer;
  TrainStats stats;
  Result<Forest> forest =
      TrainForest(rows, targets, num_features, params, &stats);
  T3_CHECK_OK(forest);
  std::fprintf(stderr, "Workbench: trained %d trees in %.1fs (valid MAPE %.3f)\n",
               stats.num_trees, timer.ElapsedSeconds(), stats.best_valid_loss);

  main_model_ = std::make_unique<T3Model>(*std::move(forest),
                                          PredictionTarget::kPerTuple);
  const Status saved = main_model_->SaveToFile(cache_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "Workbench: cannot cache model: %s\n",
                 saved.ToString().c_str());
    return *main_model_;
  }

  // Drift check on the cache we just wrote: reload it and statically bound
  // max |trained(x) - cached(x)| over the whole feature space. The text
  // serializer is bit-exact, so the proven bound must be exactly zero — a
  // nonzero bound means future runs would silently benchmark a model that
  // diverges from the one just trained.
  Result<T3Model> reread = T3Model::LoadFromFile(cache_path);
  if (!reread.ok()) {
    std::fprintf(stderr, "Workbench: cannot reread cached model: %s\n",
                 reread.status().ToString().c_str());
    return *main_model_;
  }
  Result<ForestDiffBounds> drift =
      ForestDiff(main_model_->forest(), reread->forest());
  if (!drift.ok()) {
    std::fprintf(stderr, "Workbench: cache drift check failed: %s\n",
                 drift.status().ToString().c_str());
  } else if (drift->MaxAbs() != 0.0) {
    std::fprintf(stderr,
                 "Workbench: WARNING: cached model drifts from the trained "
                 "one by up to %.17g over the input space; delete %s to "
                 "retrain.\n",
                 drift->MaxAbs(), cache_path.c_str());
  }
  return *main_model_;
}

}  // namespace t3
