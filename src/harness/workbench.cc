#include "harness/workbench.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "analysis/forest_diff.h"
#include "common/check.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "features/feature_registry.h"
#include "gbt/trainer.h"
#include "harness/runner.h"

namespace t3 {
namespace {

constexpr char kCorpusFile[] = "corpus_q40_r10.txt";
constexpr char kLiveCorpusCache[] = "cache_corpus_live.txt";

const char* ModeSuffix(CardinalityMode mode) {
  return mode == CardinalityMode::kTrue ? "true" : "est";
}

/// T3_QUICK_TREES=<n> caps every training run at n trees (CI bench smoke);
/// 0 = no cap.
int QuickTreesCap() {
  const char* value = std::getenv("T3_QUICK_TREES");
  if (value == nullptr) return 0;
  int64_t parsed = 0;
  if (!ParseInt64(value, &parsed) || parsed <= 0) {
    std::fprintf(stderr, "Workbench: ignoring invalid T3_QUICK_TREES=%s\n",
                 value);
    return 0;
  }
  return static_cast<int>(parsed);
}

}  // namespace

std::vector<NamedModelConfig> NamedModelConfigs() {
  std::vector<NamedModelConfig> configs;

  NamedModelConfig main_config;
  main_config.name = "main";
  configs.push_back(main_config);

  NamedModelConfig per_pipeline;
  per_pipeline.name = "ablation_per_pipeline";
  per_pipeline.config.target = PredictionTarget::kPerPipeline;
  configs.push_back(per_pipeline);

  NamedModelConfig per_query;
  per_query.name = "ablation_per_query";
  per_query.config.target = PredictionTarget::kPerQuery;
  configs.push_back(per_query);

  NamedModelConfig on_estimates;
  on_estimates.name = "t3_trained_on_estimates";
  on_estimates.mode = CardinalityMode::kEstimated;
  configs.push_back(on_estimates);

  NamedModelConfig single_run;
  single_run.name = "runs_1";
  single_run.runs_limit = 1;
  configs.push_back(single_run);

  // Feature ablation: the predicate-class percentage slots zeroed out.
  NamedModelConfig no_predicates;
  no_predicates.name = "ablation_no_predicates";
  const FeatureRegistry& registry = FeatureRegistry::Get();
  for (int i = 0; i < registry.num_features(); ++i) {
    if (registry.def(i).pred_slot >= 0) {
      no_predicates.config.drop_features.push_back(i);
    }
  }
  configs.push_back(no_predicates);

  // Leave-one-out example (Figure 9 builds one per family on the fly).
  NamedModelConfig loo_tpch;
  loo_tpch.name = "loo_tpch";
  loo_tpch.train_filter = [](const QueryRecord& r) {
    return r.instance.rfind("tpch", 0) != 0;
  };
  configs.push_back(loo_tpch);

  return configs;
}

Workbench::Workbench(std::string data_dir)
    : Workbench(std::move(data_dir), WorkbenchOptions()) {}

Workbench::Workbench(std::string data_dir, WorkbenchOptions options)
    : data_dir_(std::move(data_dir)), options_(std::move(options)) {}

Workbench::~Workbench() = default;

ThreadPool& Workbench::PoolLocked() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(std::max<size_t>(
        options_.num_threads, 1));
  }
  return *pool_;
}

const Corpus& Workbench::corpus() {
  std::lock_guard<std::mutex> lock(mu_);
  return CorpusLocked();
}

const Corpus& Workbench::CorpusLocked() {
  if (corpus_ != nullptr) return *corpus_;

  // Preference order: an explicit override (option, then T3_CORPUS env),
  // the full benchmarked fixture (when present), then a previously
  // generated live corpus, then a fresh live build (datagen -> querygen ->
  // engine -> featurizer) cached for subsequent binaries.
  std::string override_path = options_.corpus_path;
  if (override_path.empty()) {
    const char* env = std::getenv("T3_CORPUS");
    if (env != nullptr && env[0] != '\0') override_path = env;
  }
  if (!override_path.empty()) {
    Result<Corpus> loaded = LoadCorpusFromFile(override_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "Workbench: cannot load corpus override %s: %s\n",
                   override_path.c_str(), loaded.status().ToString().c_str());
      T3_CHECK(loaded.ok());
    }
    corpus_ = std::make_unique<Corpus>(*std::move(loaded));
    return *corpus_;
  }

  const std::string fixture_path = data_dir_ + "/" + kCorpusFile;
  Result<Corpus> loaded = LoadCorpusFromFile(fixture_path);
  if (!loaded.ok()) {
    const std::string cache_path = data_dir_ + "/" + kLiveCorpusCache;
    loaded = LoadCorpusFromFile(cache_path);
    if (!loaded.ok()) {
      std::fprintf(stderr,
                   "Workbench: no corpus fixture at %s; generating a live "
                   "corpus (all instances; this takes a few minutes on "
                   "first run)...\n",
                   fixture_path.c_str());
      LiveCorpusOptions options;
      options.pool = &PoolLocked();
      Stopwatch timer;
      Result<Corpus> live = BuildLiveCorpus(options);
      if (!live.ok()) {
        std::fprintf(stderr, "Workbench: live corpus build failed: %s\n",
                     live.status().ToString().c_str());
        T3_CHECK(live.ok());
      }
      std::fprintf(stderr,
                   "Workbench: built live corpus: %zu records in %.1fs\n",
                   live->records.size(), timer.ElapsedSeconds());
      const Status saved = SaveCorpusToFile(*live, cache_path);
      if (!saved.ok()) {
        std::fprintf(stderr, "Workbench: cannot cache live corpus: %s\n",
                     saved.ToString().c_str());
      }
      loaded = *std::move(live);
    }
  }
  corpus_ = std::make_unique<Corpus>(*std::move(loaded));
  return *corpus_;
}

const T3Model& Workbench::MainModel() {
  return GetModel("main", CardinalityMode::kTrue);
}

const T3Model& Workbench::GetModel(const NamedModelConfig& named) {
  return GetModel(named.name, named.mode, named.train_filter, named.config,
                  named.runs_limit);
}

const T3Model& Workbench::GetModel(const std::string& name,
                                   CardinalityMode mode,
                                   const RecordFilter& train_filter,
                                   const T3Config& config, int runs_limit) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetModelLocked(name, mode, train_filter, config, runs_limit);
}

const T3Model& Workbench::GetModelLocked(const std::string& name,
                                         CardinalityMode mode,
                                         const RecordFilter& train_filter,
                                         const T3Config& config,
                                         int runs_limit) {
  const std::string key = name + "_" + ModeSuffix(mode);
  auto it = models_.find(key);
  if (it != models_.end()) return *it->second;

  const std::string cache_path =
      data_dir_ + "/cache_model_" + key + ".txt";
  Result<T3Model> cached = T3Model::LoadFromFile(cache_path);
  if (cached.ok() && cached->target() == config.target) {
    return *(models_[key] =
                 std::make_unique<T3Model>(*std::move(cached)));
  }
  if (cached.ok()) {
    std::fprintf(stderr,
                 "Workbench: cached model %s has target %d, config wants "
                 "%d; retraining.\n",
                 cache_path.c_str(), static_cast<int>(cached->target()),
                 static_cast<int>(config.target));
  } else if (cached.status().code() != StatusCode::kNotFound) {
    // A cache file that exists but fails the loader's validation is never
    // served: report it and retrain from the corpus.
    std::fprintf(stderr,
                 "Workbench: rejecting cached model %s (%s); retraining.\n",
                 cache_path.c_str(), cached.status().ToString().c_str());
  }

  const Corpus& data = CorpusLocked();
  Result<TrainingMatrix> matrix = BuildTrainingMatrix(
      data, train_filter, mode, config, runs_limit, &PoolLocked());
  T3_CHECK_OK(matrix);

  TrainParams params = config.train;
  const int quick_cap = QuickTreesCap();
  if (quick_cap > 0) params.num_trees = std::min(params.num_trees, quick_cap);

  std::fprintf(stderr,
               "Workbench: training model %s on %zu rows x %zu features...\n",
               key.c_str(), matrix->targets.size(), matrix->num_features);
  Stopwatch timer;
  TrainStats stats;
  Result<Forest> forest =
      TrainForest(matrix->rows, matrix->targets, matrix->num_features, params,
                  &stats);
  T3_CHECK_OK(forest);
  std::fprintf(stderr,
               "Workbench: trained %s: %d trees in %.1fs (valid MAPE %.3f)\n",
               key.c_str(), stats.num_trees, timer.ElapsedSeconds(),
               stats.best_valid_loss);

  // Dropped-feature invariant: a column zeroed during training is constant,
  // so the trainer must never have split on it — which is what makes the
  // ablation sound at evaluation time (the forest cannot read the feature).
  const std::vector<int> split_counts = FeatureSplitCounts(*forest);
  for (const int dropped : config.drop_features) {
    if (dropped >= 0 &&
        static_cast<size_t>(dropped) < split_counts.size()) {
      T3_CHECK(split_counts[static_cast<size_t>(dropped)] == 0);
    }
  }

  auto model =
      std::make_unique<T3Model>(*std::move(forest), config.target);
  const T3Model& result = *(models_[key] = std::move(model));

  const Status saved = result.SaveToFile(cache_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "Workbench: cannot cache model %s: %s\n",
                 key.c_str(), saved.ToString().c_str());
    return result;
  }

  // Bit-exactness proof for the cache we just wrote: reload it and
  // statically bound max |trained(x) - cached(x)| over the whole feature
  // space via ForestDiff. The text serializer is bit-exact, so the proven
  // bound must be exactly zero — anything else means future runs would
  // silently benchmark a model that diverges from the one just trained.
  Result<T3Model> reread = T3Model::LoadFromFile(cache_path);
  if (!reread.ok()) {
    std::fprintf(stderr, "Workbench: cannot reread cached model %s: %s\n",
                 cache_path.c_str(), reread.status().ToString().c_str());
    T3_CHECK(reread.ok());
  }
  Result<ForestDiffBounds> drift =
      ForestDiff(result.forest(), reread->forest());
  T3_CHECK_OK(drift);
  if (drift->MaxAbs() != 0.0) {
    std::fprintf(stderr,
                 "Workbench: cached model %s drifts from the trained one by "
                 "up to %.17g over the input space.\n",
                 cache_path.c_str(), drift->MaxAbs());
    T3_CHECK(drift->MaxAbs() == 0.0);
  }
  return result;
}

}  // namespace t3
