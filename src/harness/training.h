#ifndef T3_HARNESS_TRAINING_H_
#define T3_HARNESS_TRAINING_H_

#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "gbt/trainer.h"
#include "harness/corpus.h"
#include "harness/evaluate.h"
#include "model/t3_model.h"

namespace t3 {

/// Record predicate selecting a training (or evaluation) subset of the
/// corpus, e.g. leave-one-out families. A null filter means the standard
/// train split (!is_test).
using RecordFilter = std::function<bool(const QueryRecord&)>;

/// The paper's training setup: 200 trees x <= 31 leaves, MAPE objective on
/// negated log targets, 10% validation split with 20-round early stopping.
inline TrainParams DefaultT3TrainParams() {
  TrainParams params;
  params.num_trees = 200;
  params.max_leaves = 31;
  params.objective = Objective::kMape;
  params.validation_fraction = 0.1;
  params.early_stopping_rounds = 20;
  return params;
}

/// Everything besides the corpus and the train split that determines one
/// trained model's bytes: the prediction target, an optional
/// feature-ablation mask, and the trainer's hyperparameters.
struct T3Config {
  PredictionTarget target = PredictionTarget::kPerTuple;
  /// Feature indices zeroed in every training row (ablation). A zeroed
  /// column is constant, the histogram trainer never splits a constant
  /// feature, so the trained forest provably ignores those features at
  /// evaluation time too (Workbench::GetModel checks this via
  /// FeatureSplitCounts after every training run).
  std::vector<int> drop_features;
  TrainParams train = DefaultT3TrainParams();
};

/// The assembled training problem of one model configuration.
struct TrainingMatrix {
  std::vector<double> rows;     ///< Row-major, targets.size() x num_features.
  std::vector<double> targets;  ///< TransformTarget()-domain labels.
  size_t num_features = 0;
};

/// Assembles the training matrix of one model configuration over the
/// filtered corpus records:
///
/// - kPerTuple:    one row per pipeline (features under `mode`), target =
///                 -log(pipeline seconds / max(input cardinality, 1)),
/// - kPerPipeline: one row per pipeline, target = -log(pipeline seconds),
/// - kPerQuery:    one summed feature vector per query
///                 (SummedQueryFeatures), target = -log(query seconds).
///
/// `runs_limit` > 0 re-derives the target label as the median of the first
/// `runs_limit` stored benchmark runs (Figure 14's varying-run study); 0
/// uses the stored medians. Rows whose dimension disagrees with the first
/// usable record are skipped, and config.drop_features columns are zeroed.
///
/// The assembly is bit-deterministic regardless of `pool`: row slots are
/// assigned in corpus order up front and workers fill disjoint ranges, so
/// every thread count (including pool == nullptr) produces identical bytes.
/// Fails with InvalidArgument when no usable training rows survive.
Result<TrainingMatrix> BuildTrainingMatrix(const Corpus& corpus,
                                           const RecordFilter& train_filter,
                                           CardinalityMode mode,
                                           const T3Config& config,
                                           int runs_limit,
                                           ThreadPool* pool = nullptr);

}  // namespace t3

#endif  // T3_HARNESS_TRAINING_H_
