#include "harness/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace t3 {

void PrintExperimentHeader(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  T3_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const std::vector<std::string>& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    // Trim the padding after the last column.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += "\n";
  };
  append_row(headers_);
  {
    std::vector<std::string> rule;
    rule.reserve(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule.push_back(std::string(widths[c], '-'));
    }
    append_row(rule);
  }
  for (const std::vector<std::string>& row : rows_) append_row(row);
  return out;
}

void ReportTable::Print() const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

double LogHistogram::BucketLowerEdge(size_t b) const {
  const double width = (log_hi - log_lo) / static_cast<double>(buckets.size());
  return std::pow(10.0, log_lo + static_cast<double>(b) * width);
}

LogHistogram BuildLogHistogram(const std::vector<double>& values,
                               double log_lo, double log_hi,
                               size_t num_buckets) {
  T3_CHECK(num_buckets > 0);
  T3_CHECK(log_hi > log_lo);
  LogHistogram hist;
  hist.log_lo = log_lo;
  hist.log_hi = log_hi;
  hist.buckets.assign(num_buckets, 0);
  const double width = (log_hi - log_lo) / static_cast<double>(num_buckets);
  for (double value : values) {
    size_t b = 0;
    if (value > 0.0 && std::isfinite(value)) {
      const double offset = (std::log10(value) - log_lo) / width;
      if (offset >= 0.0) {
        b = std::min(static_cast<size_t>(offset), num_buckets - 1);
      }
    }
    ++hist.buckets[b];
  }
  return hist;
}

}  // namespace t3
