#ifndef T3_HARNESS_WORKBENCH_H_
#define T3_HARNESS_WORKBENCH_H_

#include <memory>
#include <string>

#include "harness/corpus.h"
#include "model/t3_model.h"

namespace t3 {

/// Shared cache of expensive experiment artifacts (DESIGN.md "Shared
/// experiment state"). Every bench binary works from the same `data_dir`:
/// the corpus is loaded from `corpus_q40_r10.txt`, and trained models are
/// cached as `cache_model_*.txt` (gitignored) so only the first binary pays
/// the training cost.
///
/// Corpus *generation* (datagen + querygen + engine) is pending
/// reconstruction; until then the checked-in corpus fixture is required.
/// Accessors T3_CHECK on missing artifacts — bench binaries have no
/// recovery path; library code should use the Status-returning loaders in
/// harness/corpus.h instead.
class Workbench {
 public:
  explicit Workbench(std::string data_dir);
  ~Workbench();

  const std::string& data_dir() const { return data_dir_; }

  /// The benchmarked query corpus; loaded lazily, then cached.
  const Corpus& corpus();

  /// The main T3 model: per-tuple target, MAPE objective, 200 trees of
  /// <= 31 leaves on the corpus train split (true-cardinality features).
  /// Trained on first use and cached under data_dir.
  const T3Model& MainModel();

 private:
  std::string data_dir_;
  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<T3Model> main_model_;
};

}  // namespace t3

#endif  // T3_HARNESS_WORKBENCH_H_
