#ifndef T3_HARNESS_WORKBENCH_H_
#define T3_HARNESS_WORKBENCH_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "harness/corpus.h"
#include "harness/evaluate.h"
#include "harness/training.h"
#include "model/t3_model.h"

namespace t3 {

struct WorkbenchOptions {
  /// Explicit corpus file to load. Empty = the standard search order: the
  /// T3_CORPUS environment override, the full benchmarked fixture
  /// (corpus_q40_r10.txt), a previously cached live corpus, then a fresh
  /// live build.
  std::string corpus_path;
  /// Worker threads for training-row assembly and live corpus generation.
  /// Training output is bit-identical for every value (see
  /// BuildTrainingMatrix).
  size_t num_threads = 4;
};

/// One entry of the named model-configuration registry: everything
/// GetModel needs to (re)produce the model byte-identically.
struct NamedModelConfig {
  std::string name;
  CardinalityMode mode = CardinalityMode::kTrue;
  RecordFilter train_filter;  ///< Null = the train split (!is_test).
  T3Config config;
  int runs_limit = 0;  ///< 0 = stored medians (see BuildTrainingMatrix).
};

/// The named model configurations of the paper's experiment grid — the
/// ablation targets (Figure 13), estimated-cardinality training
/// (Figure 11), a leave-one-out example (Figure 9), a single-run target
/// (Figure 14), and a predicate-feature ablation. The harness test battery
/// trains every entry and proves the cache round-trip bit-exact; benches
/// construct further configs (e.g. per-family leave-one-out) on the fly.
std::vector<NamedModelConfig> NamedModelConfigs();

/// Shared cache of expensive experiment artifacts (DESIGN.md "Shared
/// experiment state"). Every bench binary works from the same `data_dir`:
/// the corpus is loaded (or live-built) once, and every trained model
/// configuration is cached as `cache_model_<name>_<mode>.txt` (gitignored)
/// so only the first binary pays the training cost.
///
/// Training is bit-deterministic per configuration: the same corpus and
/// config produce byte-identical cache files regardless of thread count or
/// process. Every freshly written cache is reloaded and proven bit-exact
/// against the in-memory model via ForestDiff; a cache file the loader
/// rejects (corrupt, truncated, wrong target) is discarded and the model
/// retrained, never served.
///
/// The T3_QUICK_TREES environment variable (a positive integer) caps the
/// tree count of every training run — CI smoke-runs the paper benches this
/// way against the mini corpus.
///
/// Accessors T3_CHECK on missing artifacts — bench binaries have no
/// recovery path; library code should use the Status-returning loaders in
/// harness/corpus.h and harness/training.h instead.
///
/// Thread-safe: corpus() and GetModel() may be called concurrently (the
/// prediction-server tools train the serving model while a SIGHUP swap can
/// request another). Calls serialize on one internal mutex — concurrent
/// requests for the same configuration train it exactly once and share the
/// cached instance; returned references stay valid for the Workbench's
/// lifetime (entries are never evicted).
class Workbench {
 public:
  explicit Workbench(std::string data_dir);
  Workbench(std::string data_dir, WorkbenchOptions options);
  ~Workbench();

  const std::string& data_dir() const { return data_dir_; }

  /// The benchmarked query corpus; loaded lazily, then cached.
  const Corpus& corpus();

  /// The main T3 model: GetModel("main", kTrue) — per-tuple target, MAPE
  /// objective, 200 trees of <= 31 leaves on the corpus train split
  /// (true-cardinality features).
  const T3Model& MainModel();

  /// The model of one named configuration, trained on the `train_filter`
  /// subset (null = !is_test) with `mode` features; `config` and
  /// `runs_limit` follow BuildTrainingMatrix. Trains on first use, caches
  /// in memory and as cache_model_<name>_<mode>.txt under data_dir; later
  /// calls (and processes) reuse the cache. The name must uniquely identify
  /// the configuration — it is the cache key.
  const T3Model& GetModel(const std::string& name, CardinalityMode mode,
                          const RecordFilter& train_filter = nullptr,
                          const T3Config& config = T3Config(),
                          int runs_limit = 0);

  /// GetModel over a registry entry.
  const T3Model& GetModel(const NamedModelConfig& named);

 private:
  // The *Locked variants require mu_ to be held; the public accessors are
  // thin locking wrappers around them.
  ThreadPool& PoolLocked();
  const Corpus& CorpusLocked();
  const T3Model& GetModelLocked(const std::string& name,
                                CardinalityMode mode,
                                const RecordFilter& train_filter,
                                const T3Config& config, int runs_limit);

  std::string data_dir_;
  WorkbenchOptions options_;

  mutable std::mutex mu_;  ///< Guards everything below.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Corpus> corpus_;
  std::map<std::string, std::unique_ptr<T3Model>> models_;  // by cache key
};

}  // namespace t3

#endif  // T3_HARNESS_WORKBENCH_H_
