#include "harness/runner.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "analysis/corpus_auditor.h"
#include "common/check.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "datagen/generator.h"
#include "datagen/spec.h"
#include "engine/executor.h"
#include "features/featurizer.h"
#include "plan/pipeline.h"
#include "querygen/suites.h"

namespace t3 {
namespace {

/// Copies featurizer vectors into the corpus representation.
std::vector<PipelineFeatures> ToCorpusFeatures(
    const std::vector<PipelineFeatureVector>& vectors) {
  std::vector<PipelineFeatures> out;
  out.reserve(vectors.size());
  for (const PipelineFeatureVector& vector : vectors) {
    PipelineFeatures features;
    features.pipeline = vector.pipeline;
    features.input_cardinality = vector.input_cardinality;
    features.values = vector.values;
    out.push_back(std::move(features));
  }
  return out;
}

}  // namespace

Result<Database> GenerateDatabase(const std::string& instance, uint64_t seed,
                                  double scale_override, ThreadPool* pool) {
  Result<const InstanceSpec*> spec = FindInstance(instance);
  if (!spec.ok()) return spec.status();
  DatagenOptions options;
  options.seed = seed;
  options.scale_override = scale_override;
  options.pool = pool;
  Result<Catalog> catalog = GenerateInstance(**spec, options);
  if (!catalog.ok()) return catalog.status();
  return Database((*spec)->name, *std::move(catalog));
}

int InstanceScaleIndex(const std::string& instance) {
  Result<const InstanceSpec*> spec = FindInstance(instance);
  if (!spec.ok()) return 0;
  int index = 0;
  for (const InstanceSpec& other : AllInstances()) {
    if (other.name == instance) return index;
    if (other.family == (*spec)->family) ++index;
  }
  return 0;
}

bool InstanceIsTest(const std::string& instance) {
  Result<const InstanceSpec*> spec = FindInstance(instance);
  return spec.ok() && (*spec)->family == "tpcds";
}

Result<QueryRecord> BenchmarkQuery(const Database& db,
                                   const GeneratedQuery& query, int runs) {
  if (runs < 1) return InvalidArgumentError("runs must be >= 1");
  PhysicalPlan plan = query.plan;
  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  if (!decomposition.ok()) return decomposition.status();
  AnnotatePipelineStages(&plan, *decomposition);

  const Executor executor(db.catalog());
  std::vector<double> total_seconds;
  std::vector<std::vector<double>> pipeline_seconds(
      decomposition->pipelines.size());
  std::vector<double> true_rows;
  for (int run = 0; run < runs; ++run) {
    Result<ExplainAnalyze> executed = executor.Execute(plan);
    if (!executed.ok()) return executed.status();
    total_seconds.push_back(executed->total_seconds);
    if (executed->pipelines.size() != decomposition->pipelines.size()) {
      return InternalError("executor pipeline count mismatch");
    }
    for (const PipelineStats& stats : executed->pipelines) {
      pipeline_seconds[static_cast<size_t>(stats.pipeline)].push_back(
          stats.seconds);
    }
    if (run == 0) {
      // Execution is deterministic, so measured cardinalities are identical
      // across runs; take them from the first.
      true_rows.reserve(executed->operators.size());
      for (const OperatorStats& stats : executed->operators) {
        true_rows.push_back(static_cast<double>(stats.rows_out));
      }
    }
  }

  Result<std::vector<PipelineFeatureVector>> feat_true =
      ComputePipelineFeatures(db.catalog(), plan, *decomposition, true_rows);
  if (!feat_true.ok()) return feat_true.status();
  Result<std::vector<PipelineFeatureVector>> feat_est = ComputePipelineFeatures(
      db.catalog(), plan, *decomposition, NodeOutputRowsFromPlan(plan));
  if (!feat_est.ok()) return feat_est.status();

  QueryRecord record;
  record.instance = db.name();
  record.is_test = InstanceIsTest(db.name());
  record.scale_index = InstanceScaleIndex(db.name());
  record.structure_group = query.structure_group;
  record.fixed_suite = query.fixed_suite;
  record.runs = runs;
  record.median_seconds = Median(total_seconds);
  record.plan_nodes = PlanToRecords(plan);
  record.total_run_seconds = std::move(total_seconds);
  for (size_t p = 0; p < pipeline_seconds.size(); ++p) {
    PipelineTiming timing;
    timing.pipeline = static_cast<int>(p);
    timing.median_seconds = Median(pipeline_seconds[p]);
    timing.run_seconds = std::move(pipeline_seconds[p]);
    record.pipeline_times.push_back(std::move(timing));
  }
  record.feat_true = ToCorpusFeatures(*feat_true);
  record.feat_est = ToCorpusFeatures(*feat_est);
  return record;
}

Result<Corpus> BuildLiveCorpus(const LiveCorpusOptions& options) {
  std::vector<std::string> instances = options.instances;
  if (instances.empty()) {
    for (const InstanceSpec& spec : AllInstances()) {
      instances.push_back(spec.name);
    }
  }
  Corpus corpus;
  for (const std::string& instance : instances) {
    Result<Database> db = GenerateDatabase(instance, options.seed,
                                           options.scale_override,
                                           options.pool);
    if (!db.ok()) return db.status();

    std::vector<GeneratedQuery> queries;
    QueryGenerator generator(&db->catalog(), options.seed);
    const std::vector<QueryGroup>& groups =
        options.groups.empty() ? AllQueryGroups() : options.groups;
    for (QueryGroup group : groups) {
      for (int index = 0; index < options.queries_per_group; ++index) {
        Result<GeneratedQuery> query = generator.Generate(group, index);
        if (query.ok()) queries.push_back(*std::move(query));
      }
    }
    if (options.fixed_suites) {
      Result<const InstanceSpec*> spec = FindInstance(instance);
      if (spec.ok()) {
        Result<std::vector<GeneratedQuery>> suite =
            FixedSuiteForFamily(db->catalog(), (*spec)->family);
        if (!suite.ok()) return suite.status();
        for (GeneratedQuery& query : *suite) {
          queries.push_back(std::move(query));
        }
      }
    }

    for (const GeneratedQuery& query : queries) {
      Result<QueryRecord> record = BenchmarkQuery(*db, query, options.runs);
      if (!record.ok()) {
        std::fprintf(stderr, "BuildLiveCorpus: skipping %s on %s: %s\n",
                     query.name.c_str(), instance.c_str(),
                     record.status().ToString().c_str());
        continue;
      }
      corpus.records.push_back(*std::move(record));
    }
  }
#ifndef NDEBUG
  // Debug-build self-audit: a freshly benchmarked corpus must pass the same
  // static checks t3_lint applies to saved corpora. Catching a featurizer or
  // decomposition regression here pins it to the producing run instead of a
  // later lint of the file.
  {
    const AnalysisReport audit = CorpusAuditor().Audit(corpus, "(live)");
    if (audit.HasErrors()) {
      std::fprintf(stderr, "BuildLiveCorpus: self-audit failed:\n%s",
                   audit.ToString().c_str());
      T3_CHECK(!audit.HasErrors());
    }
  }
#endif
  return corpus;
}

}  // namespace t3
