#ifndef T3_HARNESS_CORPUS_H_
#define T3_HARNESS_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan_record.h"

namespace t3 {

// Defined in src/storage and src/querygen (pending reconstruction; see
// README "Reconstruction status"). bench_util.h's JobWorkload only needs
// the declarations.
class Database;
struct GeneratedQuery;

/// Feature vector of one pipeline of one executed query ("FT"/"FE" corpus
/// lines — features under true resp. estimated cardinalities).
struct PipelineFeatures {
  int pipeline = 0;                ///< Pipeline index within the query.
  double input_cardinality = 0.0;  ///< Tuples entering the pipeline.
  std::vector<double> values;      ///< Dense feature vector.
};

/// Measured times of one pipeline ("P" lines): per-run seconds + median.
struct PipelineTiming {
  int pipeline = 0;
  double median_seconds = 0.0;
  std::vector<double> run_seconds;
};

// PlanNodeRecord ("N" lines) now lives in plan/plan_record.h — the shared
// schema between live plans (src/plan) and serialized corpora. Values are
// preserved verbatim so save -> load round-trips.

/// One benchmarked query of the corpus ("R" line + its attached lines).
struct QueryRecord {
  std::string instance;      ///< Database instance name, e.g. "tpch_sf0".
  bool is_test = false;      ///< Held-out TPC-DS-like instances.
  int scale_index = 0;       ///< Scale factor index within the family.
  int structure_group = 0;   ///< Query-structure group (0..15).
  bool fixed_suite = false;  ///< Member of a fixed benchmark suite.
  int runs = 0;              ///< Benchmark repetitions recorded.
  double median_seconds = 0.0;  ///< Median total query time.
  /// 1-based line of the record's "R" row in the source text (parse-time
  /// bookkeeping for diagnostics; 0 for built records, never serialized).
  int source_line = 0;

  std::vector<PlanNodeRecord> plan_nodes;
  std::vector<double> total_run_seconds;      ///< "T" line, `runs` values.
  std::vector<PipelineTiming> pipeline_times; ///< One per pipeline.
  std::vector<PipelineFeatures> feat_true;    ///< Features, true cards.
  std::vector<PipelineFeatures> feat_est;     ///< Features, estimated cards.
};

/// A benchmarked query corpus (data/corpus_*.txt): the shared training and
/// evaluation substrate of every experiment. Text format, one record per
/// "R" line:
///
///   t3corpus v1
///   records <n>
///   R <instance> <is_test> <scale> <group> <fixed> <pipelines> <runs>
///     <plan_nodes> <median_seconds>
///   N <op> <left> <right> <cardinality> <extra> <width> <stage>   (x nodes)
///   T <run_seconds...>                                  (`runs` values)
///   P <pipeline> <median> <run_seconds...>              (P, FT, FE
///   FT <pipeline> <input_card> <dim> <nnz> <i>:<v>...    interleaved,
///   FE <pipeline> <input_card> <dim> <nnz> <i>:<v>...    x pipelines)
struct Corpus {
  std::vector<QueryRecord> records;

  size_t NumPipelines() const;
};

/// "data/corpus.txt line 42: " — the shared diagnostic prefix of the corpus
/// loader and CorpusAuditor, so every corpus finding names the file and the
/// line. An empty path (parsing from memory) yields "corpus line 42: ";
/// line <= 0 (a built, never-parsed record) drops the line part. Inline so
/// analysis passes share the format without linking the harness.
inline std::string CorpusMessagePrefix(const std::string& path, int line) {
  std::string prefix = path.empty() ? "corpus" : path;
  if (line > 0) prefix += " line " + std::to_string(line);
  prefix += ": ";
  return prefix;
}

Result<Corpus> LoadCorpusFromFile(const std::string& path);
/// Parses "t3corpus v1" text; `path` (when non-empty) prefixes every parse
/// diagnostic via CorpusMessagePrefix.
Result<Corpus> ParseCorpus(std::string_view text, const std::string& path);
Result<Corpus> ParseCorpus(std::string_view text);

std::string CorpusToText(const Corpus& corpus);
Status SaveCorpusToFile(const Corpus& corpus, const std::string& path);

}  // namespace t3

#endif  // T3_HARNESS_CORPUS_H_
