#include "harness/corpus.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"
#include "gbt/forest.h"  // ReadFileToString / WriteStringToFile

namespace t3 {
namespace {

/// Pointer-walking token reader; the corpus fixture is ~200k lines, so this
/// avoids per-line istringstream overhead. The backing string outlives the
/// cursor and is NUL-terminated, which strtod/strtoll rely on.
struct Cursor {
  const char* pos;
  const char* end;
  int line = 1;  ///< 1-based line of `pos`, for parse diagnostics.

  explicit Cursor(std::string_view text)
      : pos(text.data()), end(text.data() + text.size()) {}

  static bool IsSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  void SkipSpace() {
    while (pos != end && IsSpace(*pos)) {
      if (*pos == '\n') ++line;
      ++pos;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos == end;
  }
  std::string_view Token() {
    SkipSpace();
    const char* start = pos;
    while (pos != end && !IsSpace(*pos) && *pos != ':') ++pos;
    return std::string_view(start, static_cast<size_t>(pos - start));
  }
  /// Rejects non-finite values: measured seconds, cardinalities, widths and
  /// features are all finite by construction, so "inf"/"nan"/overflow in a
  /// corpus is corruption, and letting it through would poison every
  /// statistic downstream (median of {1.0, nan} is nan).
  bool Double(double* out) {
    SkipSpace();
    char* after = nullptr;
    *out = std::strtod(pos, &after);
    if (after == pos || !std::isfinite(*out)) return false;
    pos = after;
    return true;
  }
  bool Int(int64_t* out) {
    SkipSpace();
    char* after = nullptr;
    *out = std::strtoll(pos, &after, 10);
    if (after == pos) return false;
    pos = after;
    return true;
  }
  bool Literal(char c) {
    if (pos != end && *pos == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

/// "<path> line 42: <what>" — every parse failure names the source file
/// (when known) and the line it was detected on; the same prefix
/// CorpusAuditor uses for post-parse findings.
Status ParseError(const std::string& path, const Cursor& cursor,
                  const char* what) {
  return InvalidArgumentError(CorpusMessagePrefix(path, cursor.line) + what);
}

void AppendDouble(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

Status ParsePipelineFeatures(const std::string& path, Cursor* cursor,
                             PipelineFeatures* features) {
  int64_t pipeline = 0, dim = 0, nnz = 0;
  double card = 0;
  if (!cursor->Int(&pipeline) || !cursor->Double(&card) ||
      !cursor->Int(&dim) || !cursor->Int(&nnz) || dim <= 0 || nnz < 0 ||
      nnz > dim) {
    return ParseError(path, *cursor, "malformed feature line header");
  }
  features->pipeline = static_cast<int>(pipeline);
  features->input_cardinality = card;
  features->values.assign(static_cast<size_t>(dim), 0.0);
  for (int64_t i = 0; i < nnz; ++i) {
    int64_t index = 0;
    double value = 0;
    if (!cursor->Int(&index) || !cursor->Literal(':') ||
        !cursor->Double(&value) || index < 0 || index >= dim) {
      return ParseError(path, *cursor, "malformed sparse feature pair");
    }
    features->values[static_cast<size_t>(index)] = value;
  }
  return Status::OK();
}

void AppendPipelineFeatures(std::string* out, const char* tag,
                            const PipelineFeatures& features) {
  size_t nnz = 0;
  for (double v : features.values) nnz += v != 0.0 ? 1 : 0;
  out->append(StrFormat("%s %d ", tag, features.pipeline));
  AppendDouble(out, features.input_cardinality);
  out->append(StrFormat(" %zu %zu", features.values.size(), nnz));
  for (size_t i = 0; i < features.values.size(); ++i) {
    if (features.values[i] == 0.0) continue;
    out->append(StrFormat(" %zu:", i));
    AppendDouble(out, features.values[i]);
  }
  out->push_back('\n');
}

}  // namespace

size_t Corpus::NumPipelines() const {
  size_t n = 0;
  for (const QueryRecord& record : records) n += record.feat_true.size();
  return n;
}

Result<Corpus> ParseCorpus(std::string_view text, const std::string& path) {
  Cursor cursor(text);
  if (cursor.Token() != "t3corpus" || cursor.Token() != "v1") {
    return InvalidArgumentError(CorpusMessagePrefix(path, 0) +
                                "not a t3corpus v1 file");
  }
  int64_t num_records = 0;
  if (cursor.Token() != "records" || !cursor.Int(&num_records) ||
      num_records < 0) {
    return ParseError(path, cursor, "bad record count");
  }

  Corpus corpus;
  corpus.records.reserve(static_cast<size_t>(num_records));
  for (int64_t rec = 0; rec < num_records; ++rec) {
    if (cursor.Token() != "R") {
      return InvalidArgumentError(
          CorpusMessagePrefix(path, cursor.line) +
          StrFormat("record %lld: expected R line",
                    static_cast<long long>(rec)));
    }
    QueryRecord record;
    record.source_line = cursor.line;
    record.instance = std::string(cursor.Token());
    int64_t is_test = 0, scale = 0, group = 0, fixed = 0;
    int64_t num_pipelines = 0, runs = 0, num_nodes = 0;
    if (record.instance.empty() || !cursor.Int(&is_test) ||
        !cursor.Int(&scale) || !cursor.Int(&group) || !cursor.Int(&fixed) ||
        !cursor.Int(&num_pipelines) || !cursor.Int(&runs) ||
        !cursor.Int(&num_nodes) || !cursor.Double(&record.median_seconds) ||
        num_pipelines < 0 || runs < 0 || num_nodes < 0) {
      return InvalidArgumentError(
          CorpusMessagePrefix(path, cursor.line) +
          StrFormat("record %lld: malformed R line",
                    static_cast<long long>(rec)));
    }
    record.is_test = is_test != 0;
    record.scale_index = static_cast<int>(scale);
    record.structure_group = static_cast<int>(group);
    record.fixed_suite = fixed != 0;
    record.runs = static_cast<int>(runs);

    record.plan_nodes.resize(static_cast<size_t>(num_nodes));
    for (PlanNodeRecord& node : record.plan_nodes) {
      int64_t op = 0, left = 0, right = 0, stage = 0;
      if (cursor.Token() != "N" || !cursor.Int(&op) || !cursor.Int(&left) ||
          !cursor.Int(&right) || !cursor.Double(&node.cardinality) ||
          !cursor.Double(&node.extra) || !cursor.Double(&node.width) ||
          !cursor.Int(&stage)) {
        return ParseError(path, cursor, "malformed N line");
      }
      node.op = static_cast<int>(op);
      node.left = static_cast<int>(left);
      node.right = static_cast<int>(right);
      node.stage = static_cast<int>(stage);
    }

    if (cursor.Token() != "T") {
      return ParseError(path, cursor, "expected T line");
    }
    record.total_run_seconds.resize(static_cast<size_t>(runs));
    for (double& v : record.total_run_seconds) {
      if (!cursor.Double(&v)) {
        return ParseError(path, cursor, "malformed T line");
      }
    }

    // Pipelines are stored as interleaved P / FT / FE blocks.
    record.pipeline_times.resize(static_cast<size_t>(num_pipelines));
    record.feat_true.resize(static_cast<size_t>(num_pipelines));
    record.feat_est.resize(static_cast<size_t>(num_pipelines));
    for (size_t p = 0; p < static_cast<size_t>(num_pipelines); ++p) {
      PipelineTiming& timing = record.pipeline_times[p];
      int64_t pipeline = 0;
      if (cursor.Token() != "P" || !cursor.Int(&pipeline) ||
          !cursor.Double(&timing.median_seconds)) {
        return ParseError(path, cursor, "malformed P line");
      }
      timing.pipeline = static_cast<int>(pipeline);
      timing.run_seconds.resize(static_cast<size_t>(runs));
      for (double& v : timing.run_seconds) {
        if (!cursor.Double(&v)) {
          return ParseError(path, cursor, "malformed P run value");
        }
      }
      if (cursor.Token() != "FT") {
        return ParseError(path, cursor, "expected FT line");
      }
      Status status = ParsePipelineFeatures(path, &cursor, &record.feat_true[p]);
      if (!status.ok()) return status;
      if (cursor.Token() != "FE") {
        return ParseError(path, cursor, "expected FE line");
      }
      status = ParsePipelineFeatures(path, &cursor, &record.feat_est[p]);
      if (!status.ok()) return status;
    }
    corpus.records.push_back(std::move(record));
  }
  if (!cursor.AtEnd()) {
    return ParseError(path, cursor, "trailing data after last record");
  }
  return corpus;
}

std::string CorpusToText(const Corpus& corpus) {
  std::string out;
  out.reserve(corpus.records.size() * 512);
  out += "t3corpus v1\n";
  out += StrFormat("records %zu\n", corpus.records.size());
  for (const QueryRecord& record : corpus.records) {
    out += StrFormat("R %s %d %d %d %d %zu %d %zu ", record.instance.c_str(),
                     record.is_test ? 1 : 0, record.scale_index,
                     record.structure_group, record.fixed_suite ? 1 : 0,
                     record.feat_true.size(), record.runs,
                     record.plan_nodes.size());
    AppendDouble(&out, record.median_seconds);
    out.push_back('\n');
    for (const PlanNodeRecord& node : record.plan_nodes) {
      out += StrFormat("N %d %d %d ", node.op, node.left, node.right);
      AppendDouble(&out, node.cardinality);
      out.push_back(' ');
      AppendDouble(&out, node.extra);
      out.push_back(' ');
      AppendDouble(&out, node.width);
      out += StrFormat(" %d\n", node.stage);
    }
    out += "T";
    for (double v : record.total_run_seconds) {
      out.push_back(' ');
      AppendDouble(&out, v);
    }
    out.push_back('\n');
    for (size_t p = 0; p < record.pipeline_times.size(); ++p) {
      const PipelineTiming& timing = record.pipeline_times[p];
      out += StrFormat("P %d ", timing.pipeline);
      AppendDouble(&out, timing.median_seconds);
      for (double v : timing.run_seconds) {
        out.push_back(' ');
        AppendDouble(&out, v);
      }
      out.push_back('\n');
      AppendPipelineFeatures(&out, "FT", record.feat_true[p]);
      AppendPipelineFeatures(&out, "FE", record.feat_est[p]);
    }
  }
  return out;
}

Result<Corpus> ParseCorpus(std::string_view text) {
  return ParseCorpus(text, /*path=*/"");
}

Result<Corpus> LoadCorpusFromFile(const std::string& path) {
  Result<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return ParseCorpus(*content, path);
}

Status SaveCorpusToFile(const Corpus& corpus, const std::string& path) {
  return WriteStringToFile(path, CorpusToText(corpus));
}

}  // namespace t3
