#ifndef T3_HARNESS_EVALUATE_H_
#define T3_HARNESS_EVALUATE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/corpus.h"
#include "model/t3_model.h"
#include "treejit/evaluator.h"

namespace t3 {

/// The paper's accuracy metric: q-error = max(pred/actual, actual/pred),
/// with both sides floored at kMinSeconds so the ratio is finite.
double QError(double predicted_seconds, double actual_seconds);

/// p50 / p90 / mean of a set of q-errors, the triple reported by every
/// accuracy table in the paper, plus the count and worst case the deviation
/// tables break out. All zero for an empty input.
struct QErrorSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double avg = 0.0;
  double max = 0.0;
  size_t count = 0;

  /// "n=24 p50=1.234 p90=2.345 avg=1.901 max=12.345", the one-line form
  /// bench binaries print under their tables.
  std::string ToString() const;
};

/// The canonical reducer of q-errors to the paper's reported triple (both
/// the benches and the tests go through this one name).
QErrorSummary Summarize(const std::vector<double>& q_errors);

/// Records matching a predicate, e.g. bench filters IsTest / IsTrain.
std::vector<const QueryRecord*> SelectRecords(
    const Corpus& corpus,
    const std::function<bool(const QueryRecord&)>& predicate);

/// Which stored feature set predictions read: measured cardinalities ("FT"
/// lines) or the estimator's ("FE" lines, Figure 11's degraded setting).
enum class CardinalityMode { kTrue = 0, kEstimated = 1 };

/// The per-query feature vector of the kPerQuery target: the elementwise
/// left-to-right sum of the record's pipeline vectors under `mode` — the
/// "one summed vector per query" representation of the paper's Figure 13
/// ablation. Empty when the record has no feature rows or their dimensions
/// disagree.
std::vector<double> SummedQueryFeatures(const QueryRecord& record,
                                        CardinalityMode mode);

/// Predicted total seconds of one corpus query under `model`: per-pipeline
/// predictions summed over pipelines for per-tuple/per-pipeline targets;
/// one prediction over SummedQueryFeatures for per-query targets.
double PredictQuerySeconds(const T3Model& model, const QueryRecord& record,
                           CardinalityMode mode = CardinalityMode::kTrue);

/// Q-errors of `model` over `records` against measured medians.
std::vector<double> QErrors(const T3Model& model,
                            const std::vector<const QueryRecord*>& records,
                            CardinalityMode mode = CardinalityMode::kTrue);

/// One record's evaluation under a model: what the paper's accuracy tables
/// are made of before Summarize reduces them.
struct RecordEvaluation {
  const QueryRecord* record = nullptr;
  double predicted_seconds = 0.0;
  double actual_seconds = 0.0;  ///< The record's measured median.
  double q_error = 0.0;
};

/// Evaluates `model` over every record: predicted vs measured seconds plus
/// the q-error, one entry per record in input order.
std::vector<RecordEvaluation> EvaluateModel(
    const T3Model& model, const std::vector<const QueryRecord*>& records,
    CardinalityMode mode = CardinalityMode::kTrue);

/// The q-error column of a set of evaluations, in order.
std::vector<double> QErrors(const std::vector<RecordEvaluation>& evals);

/// Reduces per-record evaluations to the paper's reported summary.
QErrorSummary Summarize(const std::vector<RecordEvaluation>& evals);

/// Batched counterpart of PredictQuerySeconds over a whole record set: every
/// pipeline feature row the records contribute is flattened into one
/// row-major matrix and pushed through a single `evaluator.PredictBatch`
/// call, then reduced per record. When `evaluator` evaluates model.forest()
/// (every ForestEvaluator guarantees bit-identical Predict), the result
/// matches per-record PredictQuerySeconds bit for bit: same rows, same
/// inverse transform and cardinality scaling, same left-to-right per-record
/// summation. Returns one predicted-seconds value per record.
std::vector<double> PredictQuerySecondsBatched(
    const T3Model& model, const ForestEvaluator& evaluator,
    const std::vector<const QueryRecord*>& records,
    CardinalityMode mode = CardinalityMode::kTrue);

/// QErrors computed through PredictQuerySecondsBatched — the batched
/// inference path the throughput bench times end to end.
std::vector<double> QErrorsBatched(
    const T3Model& model, const ForestEvaluator& evaluator,
    const std::vector<const QueryRecord*>& records,
    CardinalityMode mode = CardinalityMode::kTrue);

}  // namespace t3

#endif  // T3_HARNESS_EVALUATE_H_
