#ifndef T3_HARNESS_EVALUATE_H_
#define T3_HARNESS_EVALUATE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/corpus.h"
#include "model/t3_model.h"
#include "treejit/evaluator.h"

namespace t3 {

/// The paper's accuracy metric: q-error = max(pred/actual, actual/pred),
/// with both sides floored at kMinSeconds so the ratio is finite.
double QError(double predicted_seconds, double actual_seconds);

/// p50 / p90 / mean of a set of q-errors, the triple reported by every
/// accuracy table in the paper, plus the count and worst case the deviation
/// tables break out. All zero for an empty input.
struct QErrorSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double avg = 0.0;
  double max = 0.0;
  size_t count = 0;
};

QErrorSummary SummarizeQErrors(const std::vector<double>& q_errors);

/// Records matching a predicate, e.g. bench filters IsTest / IsTrain.
std::vector<const QueryRecord*> SelectRecords(
    const Corpus& corpus,
    const std::function<bool(const QueryRecord&)>& predicate);

/// Which stored feature set predictions read: measured cardinalities ("FT"
/// lines) or the estimator's ("FE" lines, Figure 11's degraded setting).
enum class CardinalityMode { kTrue = 0, kEstimated = 1 };

/// Predicted total seconds of one corpus query under `model`: per-pipeline
/// predictions summed over pipelines for per-tuple/per-pipeline targets;
/// single per-query prediction otherwise.
double PredictQuerySeconds(const T3Model& model, const QueryRecord& record,
                           CardinalityMode mode = CardinalityMode::kTrue);

/// Q-errors of `model` over `records` against measured medians.
std::vector<double> QErrors(const T3Model& model,
                            const std::vector<const QueryRecord*>& records,
                            CardinalityMode mode = CardinalityMode::kTrue);

/// Batched counterpart of PredictQuerySeconds over a whole record set: every
/// pipeline feature row the records contribute is flattened into one
/// row-major matrix and pushed through a single `evaluator.PredictBatch`
/// call, then reduced per record. When `evaluator` evaluates model.forest()
/// (every ForestEvaluator guarantees bit-identical Predict), the result
/// matches per-record PredictQuerySeconds bit for bit: same rows, same
/// inverse transform and cardinality scaling, same left-to-right per-record
/// summation. Returns one predicted-seconds value per record.
std::vector<double> PredictQuerySecondsBatched(
    const T3Model& model, const ForestEvaluator& evaluator,
    const std::vector<const QueryRecord*>& records,
    CardinalityMode mode = CardinalityMode::kTrue);

/// QErrors computed through PredictQuerySecondsBatched — the batched
/// inference path the throughput bench times end to end.
std::vector<double> QErrorsBatched(
    const T3Model& model, const ForestEvaluator& evaluator,
    const std::vector<const QueryRecord*>& records,
    CardinalityMode mode = CardinalityMode::kTrue);

}  // namespace t3

#endif  // T3_HARNESS_EVALUATE_H_
