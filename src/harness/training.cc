#include "harness/training.h"

#include <algorithm>
#include <utility>

#include "common/stats.h"

namespace t3 {
namespace {

/// Target label in seconds: the stored median, or — for runs_limit > 0 —
/// the median of the first runs_limit recorded runs (Figure 14).
double LabelSeconds(const std::vector<double>& run_seconds,
                    double stored_median, int runs_limit) {
  if (runs_limit <= 0 || run_seconds.empty()) return stored_median;
  const size_t k = std::min(run_seconds.size(),
                            static_cast<size_t>(runs_limit));
  return Median(std::vector<double>(run_seconds.begin(),
                                    run_seconds.begin() +
                                        static_cast<ptrdiff_t>(k)));
}

/// One row slot of the matrix: a (record, pipeline) pair for per-pipeline
/// rows, or a record alone (pipeline == -1) for per-query rows. Slots are
/// assigned in corpus order before any filling happens, so the produced
/// bytes are independent of how the fill work is scheduled.
struct RowSlot {
  const QueryRecord* record = nullptr;
  int pipeline = -1;
  size_t row = 0;
};

void FillSlot(const RowSlot& slot, CardinalityMode mode,
              const T3Config& config, int runs_limit, size_t num_features,
              double* row_out, double* target_out) {
  const QueryRecord& record = *slot.record;
  if (slot.pipeline < 0) {
    const std::vector<double> summed = SummedQueryFeatures(record, mode);
    std::copy(summed.begin(), summed.end(), row_out);
    *target_out = TransformTarget(LabelSeconds(
        record.total_run_seconds, record.median_seconds, runs_limit));
  } else {
    const size_t p = static_cast<size_t>(slot.pipeline);
    const std::vector<PipelineFeatures>& features_set =
        mode == CardinalityMode::kTrue ? record.feat_true : record.feat_est;
    const PipelineFeatures& features = features_set[p];
    std::copy(features.values.begin(), features.values.end(), row_out);
    double seconds = record.median_seconds;
    if (p < record.pipeline_times.size()) {
      const PipelineTiming& timing = record.pipeline_times[p];
      seconds = LabelSeconds(timing.run_seconds, timing.median_seconds,
                             runs_limit);
    }
    if (config.target == PredictionTarget::kPerTuple) {
      seconds /= std::max(features.input_cardinality, 1.0);
    }
    *target_out = TransformTarget(seconds);
  }
  for (const int dropped : config.drop_features) {
    if (dropped >= 0 && static_cast<size_t>(dropped) < num_features) {
      row_out[dropped] = 0.0;
    }
  }
}

}  // namespace

Result<TrainingMatrix> BuildTrainingMatrix(const Corpus& corpus,
                                           const RecordFilter& train_filter,
                                           CardinalityMode mode,
                                           const T3Config& config,
                                           int runs_limit, ThreadPool* pool) {
  const bool per_query = config.target == PredictionTarget::kPerQuery;

  // Pass 1 (sequential): assign row slots in corpus order. The first usable
  // row pins the feature dimension; later rows that disagree are skipped,
  // exactly like the per-record prediction paths.
  TrainingMatrix matrix;
  std::vector<RowSlot> slots;
  for (const QueryRecord& record : corpus.records) {
    if (train_filter ? !train_filter(record) : record.is_test) continue;
    const std::vector<PipelineFeatures>& features_set =
        mode == CardinalityMode::kTrue ? record.feat_true : record.feat_est;
    if (per_query) {
      const std::vector<double> summed = SummedQueryFeatures(record, mode);
      if (summed.empty()) continue;
      if (matrix.num_features == 0) matrix.num_features = summed.size();
      if (summed.size() != matrix.num_features) continue;
      slots.push_back({&record, -1, slots.size()});
    } else {
      for (size_t p = 0; p < features_set.size(); ++p) {
        if (features_set[p].values.empty()) continue;
        if (matrix.num_features == 0) {
          matrix.num_features = features_set[p].values.size();
        }
        if (features_set[p].values.size() != matrix.num_features) continue;
        slots.push_back({&record, static_cast<int>(p), slots.size()});
      }
    }
  }
  if (slots.empty()) {
    return InvalidArgumentError(
        "no usable training rows: the record filter selected no records "
        "with feature vectors");
  }

  // Pass 2: fill the pre-sized matrix. Every slot writes a disjoint range,
  // so parallel filling is race-free and bit-identical to the inline path.
  matrix.rows.resize(slots.size() * matrix.num_features);
  matrix.targets.resize(slots.size());
  auto fill_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      FillSlot(slots[i], mode, config, runs_limit, matrix.num_features,
               matrix.rows.data() + slots[i].row * matrix.num_features,
               matrix.targets.data() + slots[i].row);
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1 || slots.size() < 2) {
    fill_range(0, slots.size());
  } else {
    const size_t chunk =
        (slots.size() + pool->num_threads() - 1) / pool->num_threads();
    for (size_t begin = 0; begin < slots.size(); begin += chunk) {
      const size_t end = std::min(begin + chunk, slots.size());
      pool->Submit([&fill_range, begin, end] { fill_range(begin, end); });
    }
    pool->Wait();
  }
  return matrix;
}

}  // namespace t3
