#ifndef T3_HARNESS_REPORT_H_
#define T3_HARNESS_REPORT_H_

#include <string>
#include <vector>

namespace t3 {

/// Prints the experiment banner every bench binary starts with: the paper
/// table/figure being reproduced plus the expectation being tested.
void PrintExperimentHeader(const std::string& title, const std::string& note);

/// Column-aligned plain-text table, the output format of all experiment
/// binaries.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Writes the table to stdout.
  void Print() const;

  /// The rendered table (for tests).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace t3

#endif  // T3_HARNESS_REPORT_H_
