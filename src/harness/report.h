#ifndef T3_HARNESS_REPORT_H_
#define T3_HARNESS_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace t3 {

/// Prints the experiment banner every bench binary starts with: the paper
/// table/figure being reproduced plus the expectation being tested.
void PrintExperimentHeader(const std::string& title, const std::string& note);

/// Column-aligned plain-text table, the output format of all experiment
/// binaries.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Writes the table to stdout.
  void Print() const;

  /// The rendered table (for tests).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Counts bucketed uniformly in log10 space over [10^log_lo, 10^log_hi],
/// the x-axis convention of the paper's runtime-distribution figures.
struct LogHistogram {
  double log_lo = 0.0;   ///< log10 of the first bucket's lower edge.
  double log_hi = 0.0;   ///< log10 of the last bucket's upper edge.
  std::vector<size_t> buckets;

  /// Lower edge of bucket `b` in linear units.
  double BucketLowerEdge(size_t b) const;
};

/// Histograms `values` into `num_buckets` log-uniform buckets. Values below
/// the range clamp into the first bucket, above it into the last;
/// non-positive and non-finite values are clamped too (log10 is undefined
/// for them), so every value is counted exactly once.
LogHistogram BuildLogHistogram(const std::vector<double>& values,
                               double log_lo, double log_hi,
                               size_t num_buckets);

}  // namespace t3

#endif  // T3_HARNESS_REPORT_H_
