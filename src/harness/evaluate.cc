#include "harness/evaluate.h"

#include <algorithm>

#include "common/stats.h"

namespace t3 {

double QError(double predicted_seconds, double actual_seconds) {
  const double p = std::max(predicted_seconds, kMinSeconds);
  const double a = std::max(actual_seconds, kMinSeconds);
  return std::max(p / a, a / p);
}

QErrorSummary SummarizeQErrors(const std::vector<double>& q_errors) {
  QErrorSummary summary;
  if (q_errors.empty()) return summary;
  summary.p50 = Quantile(q_errors, 0.5);
  summary.p90 = Quantile(q_errors, 0.9);
  summary.avg = Mean(q_errors);
  summary.max = *std::max_element(q_errors.begin(), q_errors.end());
  summary.count = q_errors.size();
  return summary;
}

std::vector<const QueryRecord*> SelectRecords(
    const Corpus& corpus,
    const std::function<bool(const QueryRecord&)>& predicate) {
  std::vector<const QueryRecord*> selected;
  for (const QueryRecord& record : corpus.records) {
    if (predicate(record)) selected.push_back(&record);
  }
  return selected;
}

double PredictQuerySeconds(const T3Model& model, const QueryRecord& record,
                           CardinalityMode mode) {
  const std::vector<PipelineFeatures>& features_set =
      mode == CardinalityMode::kTrue ? record.feat_true : record.feat_est;
  if (model.target() == PredictionTarget::kPerQuery) {
    if (features_set.empty()) return 0.0;
    // Per-query models are trained on a single per-query vector; until the
    // feature module reconstructs that exact vector we use the first
    // pipeline's features, which carry the query-level counts.
    return model.PredictPipelineSeconds(features_set[0].values.data(),
                                        features_set[0].input_cardinality);
  }
  double total = 0.0;
  for (const PipelineFeatures& features : features_set) {
    total += model.PredictPipelineSeconds(features.values.data(),
                                          features.input_cardinality);
  }
  return total;
}

std::vector<double> QErrors(const T3Model& model,
                            const std::vector<const QueryRecord*>& records,
                            CardinalityMode mode) {
  std::vector<double> q_errors;
  q_errors.reserve(records.size());
  for (const QueryRecord* record : records) {
    q_errors.push_back(QError(PredictQuerySeconds(model, *record, mode),
                              record->median_seconds));
  }
  return q_errors;
}

}  // namespace t3
