#include "harness/evaluate.h"

#include <algorithm>

#include "common/stats.h"
#include "common/string_util.h"

namespace t3 {

double QError(double predicted_seconds, double actual_seconds) {
  const double p = std::max(predicted_seconds, kMinSeconds);
  const double a = std::max(actual_seconds, kMinSeconds);
  return std::max(p / a, a / p);
}

std::string QErrorSummary::ToString() const {
  return StrFormat("n=%zu p50=%.3f p90=%.3f avg=%.3f max=%.3f", count, p50,
                   p90, avg, max);
}

QErrorSummary Summarize(const std::vector<double>& q_errors) {
  QErrorSummary summary;
  if (q_errors.empty()) return summary;
  summary.p50 = Quantile(q_errors, 0.5);
  summary.p90 = Quantile(q_errors, 0.9);
  summary.avg = Mean(q_errors);
  summary.max = *std::max_element(q_errors.begin(), q_errors.end());
  summary.count = q_errors.size();
  return summary;
}

std::vector<const QueryRecord*> SelectRecords(
    const Corpus& corpus,
    const std::function<bool(const QueryRecord&)>& predicate) {
  std::vector<const QueryRecord*> selected;
  for (const QueryRecord& record : corpus.records) {
    if (predicate(record)) selected.push_back(&record);
  }
  return selected;
}

std::vector<double> SummedQueryFeatures(const QueryRecord& record,
                                        CardinalityMode mode) {
  const std::vector<PipelineFeatures>& features_set =
      mode == CardinalityMode::kTrue ? record.feat_true : record.feat_est;
  std::vector<double> summed;
  for (const PipelineFeatures& features : features_set) {
    if (features.values.empty()) continue;
    if (summed.empty()) {
      summed = features.values;
      continue;
    }
    if (features.values.size() != summed.size()) return {};
    for (size_t i = 0; i < summed.size(); ++i) {
      summed[i] += features.values[i];
    }
  }
  return summed;
}

double PredictQuerySeconds(const T3Model& model, const QueryRecord& record,
                           CardinalityMode mode) {
  if (model.target() == PredictionTarget::kPerQuery) {
    const std::vector<double> summed = SummedQueryFeatures(record, mode);
    if (summed.empty()) return 0.0;
    return model.PredictPipelineSeconds(summed.data(), 0.0);
  }
  const std::vector<PipelineFeatures>& features_set =
      mode == CardinalityMode::kTrue ? record.feat_true : record.feat_est;
  double total = 0.0;
  for (const PipelineFeatures& features : features_set) {
    total += model.PredictPipelineSeconds(features.values.data(),
                                          features.input_cardinality);
  }
  return total;
}

std::vector<double> QErrors(const T3Model& model,
                            const std::vector<const QueryRecord*>& records,
                            CardinalityMode mode) {
  std::vector<double> q_errors;
  q_errors.reserve(records.size());
  for (const QueryRecord* record : records) {
    q_errors.push_back(QError(PredictQuerySeconds(model, *record, mode),
                              record->median_seconds));
  }
  return q_errors;
}

std::vector<double> PredictQuerySecondsBatched(
    const T3Model& model, const ForestEvaluator& evaluator,
    const std::vector<const QueryRecord*>& records, CardinalityMode mode) {
  std::vector<double> seconds(records.size(), 0.0);
  if (records.empty()) return seconds;

  // Flatten the rows every record contributes. Per-query targets contribute
  // one summed vector per record (matching PredictQuerySeconds); the other
  // targets one row per pipeline.
  const bool per_query = model.target() == PredictionTarget::kPerQuery;
  size_t num_features = 0;
  std::vector<double> flat;
  std::vector<size_t> row_record;
  std::vector<double> row_cardinality;
  // Ragged feature rows cannot share one batch; the per-record path is
  // bit-identical by the evaluator contract.
  auto predict_ragged = [&] {
    for (size_t i = 0; i < records.size(); ++i) {
      seconds[i] = PredictQuerySeconds(model, *records[i], mode);
    }
    return seconds;
  };
  for (size_t r = 0; r < records.size(); ++r) {
    if (per_query) {
      const std::vector<double> summed =
          SummedQueryFeatures(*records[r], mode);
      if (summed.empty()) continue;
      if (row_record.empty()) num_features = summed.size();
      if (summed.size() != num_features) return predict_ragged();
      flat.insert(flat.end(), summed.begin(), summed.end());
      row_record.push_back(r);
      row_cardinality.push_back(0.0);
      continue;
    }
    const std::vector<PipelineFeatures>& features_set =
        mode == CardinalityMode::kTrue ? records[r]->feat_true
                                       : records[r]->feat_est;
    for (const PipelineFeatures& features : features_set) {
      if (row_record.empty()) num_features = features.values.size();
      if (features.values.size() != num_features) return predict_ragged();
      flat.insert(flat.end(), features.values.begin(), features.values.end());
      row_record.push_back(r);
      row_cardinality.push_back(features.input_cardinality);
    }
  }
  if (row_record.empty()) return seconds;

  std::vector<double> raw(row_record.size());
  evaluator.PredictBatch(flat.data(), row_record.size(), num_features,
                         raw.data());

  // Same per-row transform and per-record left-to-right accumulation as
  // PredictQuerySeconds, so the result matches it bit for bit.
  const bool per_tuple = model.target() == PredictionTarget::kPerTuple;
  for (size_t i = 0; i < row_record.size(); ++i) {
    double s = InverseTransformTarget(raw[i]);
    if (per_tuple) s *= std::max(row_cardinality[i], 1.0);
    seconds[row_record[i]] += s;
  }
  return seconds;
}

std::vector<RecordEvaluation> EvaluateModel(
    const T3Model& model, const std::vector<const QueryRecord*>& records,
    CardinalityMode mode) {
  std::vector<RecordEvaluation> evals;
  evals.reserve(records.size());
  for (const QueryRecord* record : records) {
    RecordEvaluation eval;
    eval.record = record;
    eval.predicted_seconds = PredictQuerySeconds(model, *record, mode);
    eval.actual_seconds = record->median_seconds;
    eval.q_error = QError(eval.predicted_seconds, eval.actual_seconds);
    evals.push_back(eval);
  }
  return evals;
}

std::vector<double> QErrors(const std::vector<RecordEvaluation>& evals) {
  std::vector<double> q_errors;
  q_errors.reserve(evals.size());
  for (const RecordEvaluation& eval : evals) {
    q_errors.push_back(eval.q_error);
  }
  return q_errors;
}

QErrorSummary Summarize(const std::vector<RecordEvaluation>& evals) {
  return Summarize(QErrors(evals));
}

std::vector<double> QErrorsBatched(
    const T3Model& model, const ForestEvaluator& evaluator,
    const std::vector<const QueryRecord*>& records, CardinalityMode mode) {
  const std::vector<double> predicted =
      PredictQuerySecondsBatched(model, evaluator, records, mode);
  std::vector<double> q_errors;
  q_errors.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    q_errors.push_back(QError(predicted[i], records[i]->median_seconds));
  }
  return q_errors;
}

}  // namespace t3
