#include "harness/evaluate.h"

#include <algorithm>

#include "common/stats.h"

namespace t3 {

double QError(double predicted_seconds, double actual_seconds) {
  const double p = std::max(predicted_seconds, kMinSeconds);
  const double a = std::max(actual_seconds, kMinSeconds);
  return std::max(p / a, a / p);
}

QErrorSummary SummarizeQErrors(const std::vector<double>& q_errors) {
  QErrorSummary summary;
  if (q_errors.empty()) return summary;
  summary.p50 = Quantile(q_errors, 0.5);
  summary.p90 = Quantile(q_errors, 0.9);
  summary.avg = Mean(q_errors);
  summary.max = *std::max_element(q_errors.begin(), q_errors.end());
  summary.count = q_errors.size();
  return summary;
}

std::vector<const QueryRecord*> SelectRecords(
    const Corpus& corpus,
    const std::function<bool(const QueryRecord&)>& predicate) {
  std::vector<const QueryRecord*> selected;
  for (const QueryRecord& record : corpus.records) {
    if (predicate(record)) selected.push_back(&record);
  }
  return selected;
}

double PredictQuerySeconds(const T3Model& model, const QueryRecord& record,
                           CardinalityMode mode) {
  const std::vector<PipelineFeatures>& features_set =
      mode == CardinalityMode::kTrue ? record.feat_true : record.feat_est;
  if (model.target() == PredictionTarget::kPerQuery) {
    if (features_set.empty()) return 0.0;
    // Per-query models are trained on a single per-query vector; until the
    // feature module reconstructs that exact vector we use the first
    // pipeline's features, which carry the query-level counts.
    return model.PredictPipelineSeconds(features_set[0].values.data(),
                                        features_set[0].input_cardinality);
  }
  double total = 0.0;
  for (const PipelineFeatures& features : features_set) {
    total += model.PredictPipelineSeconds(features.values.data(),
                                          features.input_cardinality);
  }
  return total;
}

std::vector<double> QErrors(const T3Model& model,
                            const std::vector<const QueryRecord*>& records,
                            CardinalityMode mode) {
  std::vector<double> q_errors;
  q_errors.reserve(records.size());
  for (const QueryRecord* record : records) {
    q_errors.push_back(QError(PredictQuerySeconds(model, *record, mode),
                              record->median_seconds));
  }
  return q_errors;
}

std::vector<double> PredictQuerySecondsBatched(
    const T3Model& model, const ForestEvaluator& evaluator,
    const std::vector<const QueryRecord*>& records, CardinalityMode mode) {
  std::vector<double> seconds(records.size(), 0.0);
  if (records.empty()) return seconds;

  // Flatten the rows every record contributes. Per-query targets read only
  // the first pipeline's vector (matching PredictQuerySeconds); the other
  // targets sum over all pipelines.
  const bool per_query = model.target() == PredictionTarget::kPerQuery;
  size_t num_features = 0;
  std::vector<double> flat;
  std::vector<size_t> row_record;
  std::vector<double> row_cardinality;
  for (size_t r = 0; r < records.size(); ++r) {
    const std::vector<PipelineFeatures>& features_set =
        mode == CardinalityMode::kTrue ? records[r]->feat_true
                                       : records[r]->feat_est;
    const size_t used =
        per_query ? std::min<size_t>(features_set.size(), 1) : features_set.size();
    for (size_t p = 0; p < used; ++p) {
      const PipelineFeatures& features = features_set[p];
      if (row_record.empty()) num_features = features.values.size();
      if (features.values.size() != num_features) {
        // Ragged feature rows cannot share one batch; the per-record path
        // is bit-identical by the evaluator contract.
        for (size_t i = 0; i < records.size(); ++i) {
          seconds[i] = PredictQuerySeconds(model, *records[i], mode);
        }
        return seconds;
      }
      flat.insert(flat.end(), features.values.begin(), features.values.end());
      row_record.push_back(r);
      row_cardinality.push_back(features.input_cardinality);
    }
  }
  if (row_record.empty()) return seconds;

  std::vector<double> raw(row_record.size());
  evaluator.PredictBatch(flat.data(), row_record.size(), num_features,
                         raw.data());

  // Same per-row transform and per-record left-to-right accumulation as
  // PredictQuerySeconds, so the result matches it bit for bit.
  const bool per_tuple = model.target() == PredictionTarget::kPerTuple;
  for (size_t i = 0; i < row_record.size(); ++i) {
    double s = InverseTransformTarget(raw[i]);
    if (per_tuple) s *= std::max(row_cardinality[i], 1.0);
    seconds[row_record[i]] += s;
  }
  return seconds;
}

std::vector<double> QErrorsBatched(
    const T3Model& model, const ForestEvaluator& evaluator,
    const std::vector<const QueryRecord*>& records, CardinalityMode mode) {
  const std::vector<double> predicted =
      PredictQuerySecondsBatched(model, evaluator, records, mode);
  std::vector<double> q_errors;
  q_errors.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    q_errors.push_back(QError(predicted[i], records[i]->median_seconds));
  }
  return q_errors;
}

}  // namespace t3
