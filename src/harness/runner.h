#ifndef T3_HARNESS_RUNNER_H_
#define T3_HARNESS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "harness/corpus.h"
#include "querygen/querygen.h"
#include "storage/database.h"

namespace t3 {

/// The live corpus pipeline (ROADMAP item 1, now closed): querygen emits
/// plans, the engine executes them on generated instances, the featurizer
/// turns timed pipelines into the corpus rows harness/corpus.cc parses.

/// Generates a named datagen instance into a Database. `scale_override` and
/// `pool` follow DatagenOptions semantics (0 / nullptr = defaults).
Result<Database> GenerateDatabase(const std::string& instance, uint64_t seed,
                                  double scale_override, ThreadPool* pool);

/// Scale-factor index of an instance within its family (position among the
/// family's instances in AllInstances() order), e.g. tpch_sf2 -> 2.
int InstanceScaleIndex(const std::string& instance);

/// Corpus test-split convention: the TPC-DS-like instances are held out.
bool InstanceIsTest(const std::string& instance);

/// Benchmarks one generated query on a database: decomposes and stage-
/// annotates the plan, executes it `runs` times, and assembles the full
/// corpus record — medians, per-pipeline timings, and both feature-vector
/// sets (FT from measured cardinalities, FE from the plan's estimates).
/// The caller still owns the split bookkeeping (is_test, scale_index).
Result<QueryRecord> BenchmarkQuery(const Database& db,
                                   const GeneratedQuery& query, int runs);

struct LiveCorpusOptions {
  std::vector<std::string> instances;  ///< Empty = all 21 instances.
  std::vector<QueryGroup> groups;      ///< Empty = all 16 groups.
  int queries_per_group = 2;
  bool fixed_suites = true;  ///< Add the family's fixed suite when it has one.
  int runs = 3;
  uint64_t seed = 42;          ///< Datagen + querygen seed.
  double scale_override = 0.0; ///< 0 = each instance's own scale.
  ThreadPool* pool = nullptr;  ///< Datagen worker pool (generation only;
                               ///  execution stays single-threaded).
};

/// Builds a corpus by running the full live pipeline over the selected
/// instances. Queries the engine rejects are skipped (the generator only
/// emits valid plans, so this is defensive); instances that fail to
/// generate fail the whole build.
Result<Corpus> BuildLiveCorpus(const LiveCorpusOptions& options);

}  // namespace t3

#endif  // T3_HARNESS_RUNNER_H_
