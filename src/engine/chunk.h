#ifndef T3_ENGINE_CHUNK_H_
#define T3_ENGINE_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "storage/types.h"

namespace t3 {

/// Rows per morsel pushed through a pipeline. Join probes may emit more
/// rows than this per input morsel; chunks grow as needed.
inline constexpr size_t kMorselRows = 1024;

/// One column of an in-flight chunk: a typed value buffer plus a byte-per-
/// row null flag (1 = NULL; the value slot is a zero/empty placeholder).
/// Unlike storage Columns these are small, transient, and append-only.
struct ColumnVector {
  ColumnType type = ColumnType::kInt64;
  std::vector<int64_t> i64;        // kInt64, kDate
  std::vector<double> f64;         // kFloat64
  std::vector<std::string> str;    // kString
  std::vector<uint8_t> null;

  explicit ColumnVector(ColumnType t = ColumnType::kInt64) : type(t) {}

  size_t size() const { return null.size(); }

  void Clear() {
    i64.clear();
    f64.clear();
    str.clear();
    null.clear();
  }

  void AppendInt64(int64_t value) {
    T3_CHECK(IsIntegerBacked(type));
    i64.push_back(value);
    null.push_back(0);
  }
  void AppendFloat64(double value) {
    T3_CHECK(type == ColumnType::kFloat64);
    f64.push_back(value);
    null.push_back(0);
  }
  void AppendString(std::string value) {
    T3_CHECK(type == ColumnType::kString);
    str.push_back(std::move(value));
    null.push_back(0);
  }
  void AppendNull();

  /// Copies row `row` of `source` (same type) onto the end of this vector.
  void AppendFrom(const ColumnVector& source, size_t row);

  bool IsNull(size_t row) const { return null[row] != 0; }

  /// Numeric view for predicates and sort keys: int64/date values cast to
  /// double. Must not be called on string columns or NULL rows.
  double NumericAt(size_t row) const {
    return type == ColumnType::kFloat64 ? f64[row]
                                        : static_cast<double>(i64[row]);
  }
};

/// A batch of rows flowing through a pipeline: equally sized column
/// vectors. Also used (with unbounded size) to materialize breaker state
/// and the final query result.
struct DataChunk {
  std::vector<ColumnVector> columns;
  size_t num_rows = 0;

  explicit DataChunk(const std::vector<ColumnType>& schema = {}) {
    columns.reserve(schema.size());
    for (ColumnType type : schema) columns.emplace_back(type);
  }

  void Clear() {
    for (ColumnVector& column : columns) column.Clear();
    num_rows = 0;
  }

  /// Copies row `row` of `source` (same schema) onto the end of this chunk.
  void AppendRowFrom(const DataChunk& source, size_t row);
};

}  // namespace t3

#endif  // T3_ENGINE_CHUNK_H_
