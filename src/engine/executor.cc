#include "engine/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace t3 {
namespace {

/// Join/group key of one row: [null0, value0, null1, value1, ...] over the
/// integer-backed key columns. NULL slots keep a zero value so two NULL
/// keys compare equal for grouping (NULLs form their own group; joins skip
/// NULL keys before keys are ever compared).
using KeyTuple = std::vector<int64_t>;

struct KeyTupleHash {
  size_t operator()(const KeyTuple& key) const {
    Fnv1a fnv;
    for (int64_t v : key) fnv.U64(static_cast<uint64_t>(v));
    return static_cast<size_t>(fnv.hash());
  }
};

/// Fills `key` from `row` of `chunk`; false when any key column is NULL.
bool ExtractKey(const DataChunk& chunk, const std::vector<int>& key_columns,
                size_t row, KeyTuple* key) {
  key->clear();
  bool any_null = false;
  for (int column : key_columns) {
    const ColumnVector& values = chunk.columns[static_cast<size_t>(column)];
    const bool is_null = values.IsNull(row);
    any_null |= is_null;
    key->push_back(is_null ? 1 : 0);
    key->push_back(is_null ? 0 : values.i64[row]);
  }
  return !any_null;
}

uint64_t HashKey(const KeyTuple& key) {
  Fnv1a fnv;
  for (int64_t v : key) fnv.U64(static_cast<uint64_t>(v));
  return fnv.hash();
}

/// Chained hash table over the materialized build side of a join. Chains
/// are threaded so probing emits matches in ascending build-row order —
/// execution stays deterministic and matches the scalar reference.
struct JoinHashTable {
  DataChunk rows;                 // Materialized build-side output.
  std::vector<int> key_columns;   // Build key columns within `rows`.
  std::vector<uint32_t> heads;    // bucket -> row index + 1 (0 = empty).
  std::vector<uint32_t> next;     // row -> next row in bucket + 1.
  uint64_t mask = 0;

  void Finish() {
    size_t buckets = 16;
    while (buckets < rows.num_rows * 2) buckets *= 2;
    mask = buckets - 1;
    heads.assign(buckets, 0);
    next.assign(rows.num_rows, 0);
    KeyTuple key;
    // Reverse insertion + head chaining = forward emission order.
    for (size_t r = rows.num_rows; r-- > 0;) {
      if (!ExtractKey(rows, key_columns, r, &key)) continue;
      const size_t bucket = HashKey(key) & mask;
      next[r] = heads[bucket];
      heads[bucket] = static_cast<uint32_t>(r) + 1;
    }
  }
};

/// One aggregate accumulator (one group x one AggregateSpec).
struct Accumulator {
  uint64_t count = 0;
  double sum = 0.0;
  bool has_value = false;
  int64_t min_max_i64 = 0;
  double min_max_f64 = 0.0;
  std::string min_max_str;
};

struct AggregationState {
  std::unordered_map<KeyTuple, size_t, KeyTupleHash> group_index;
  std::vector<KeyTuple> group_keys;            // Insertion order.
  std::vector<std::vector<Accumulator>> accs;  // [group][aggregate].
};

struct NodeState {
  std::unique_ptr<JoinHashTable> join;
  std::unique_ptr<AggregationState> agg;
  std::unique_ptr<DataChunk> sort_buffer;
  /// Breaker output (aggregate/sort), scanned by the consumer pipeline.
  std::unique_ptr<DataChunk> materialized;
};

/// Reads morsels out of a base table or a materialized chunk.
class Source {
 public:
  Source(const Table* table, const std::vector<int>* columns,
         const DataChunk* chunk, const std::vector<ColumnType>* schema)
      : table_(table), columns_(columns), chunk_(chunk), schema_(schema) {}

  size_t total_rows() const {
    return table_ != nullptr ? table_->num_rows() : chunk_->num_rows;
  }

  /// Fills `out` with the next morsel; false at end of input.
  bool Next(DataChunk* out) {
    const size_t total = total_rows();
    if (offset_ >= total) return false;
    const size_t end = std::min(total, offset_ + kMorselRows);
    *out = DataChunk(*schema_);
    if (table_ != nullptr) {
      for (size_t c = 0; c < columns_->size(); ++c) {
        const Column& column =
            table_->column(static_cast<size_t>((*columns_)[c]));
        ColumnVector& values = out->columns[c];
        for (size_t r = offset_; r < end; ++r) {
          if (column.IsNull(r)) {
            values.AppendNull();
            continue;
          }
          switch (column.type()) {
            case ColumnType::kInt64:
            case ColumnType::kDate:
              values.AppendInt64(column.Int64At(r));
              break;
            case ColumnType::kFloat64:
              values.AppendFloat64(column.Float64At(r));
              break;
            case ColumnType::kString:
              values.AppendString(column.StringAt(r));
              break;
          }
        }
      }
    } else {
      for (size_t r = offset_; r < end; ++r) out->AppendRowFrom(*chunk_, r);
    }
    out->num_rows = end - offset_;
    offset_ = end;
    return true;
  }

 private:
  const Table* table_;
  const std::vector<int>* columns_;
  const DataChunk* chunk_;
  const std::vector<ColumnType>* schema_;
  size_t offset_ = 0;
};

bool PredicatePasses(double value, const FilterPredicate& predicate) {
  switch (predicate.cmp) {
    case CompareOp::kLt:
      return value < predicate.constant;
    case CompareOp::kLe:
      return value <= predicate.constant;
    case CompareOp::kGt:
      return value > predicate.constant;
    case CompareOp::kGe:
      return value >= predicate.constant;
    case CompareOp::kEq:
      return value == predicate.constant;
    case CompareOp::kNe:
      return value != predicate.constant;
  }
  return false;
}

/// Execution of one plan; holds all per-query state.
class Run {
 public:
  Run(const Catalog& catalog, const PhysicalPlan& plan,
      std::vector<std::vector<ColumnType>> schemas,
      PipelineDecomposition decomposition)
      : catalog_(catalog),
        plan_(plan),
        schemas_(std::move(schemas)),
        decomposition_(std::move(decomposition)),
        states_(plan.nodes.size()) {
    ea_.operators.resize(plan.nodes.size());
    for (size_t i = 0; i < plan.nodes.size(); ++i) {
      ea_.operators[i].op = plan.nodes[i].op;
    }
  }

  Result<ExplainAnalyze> Execute() {
    for (const Pipeline& pipeline : decomposition_.pipelines) {
      Status status = RunPipeline(pipeline);
      if (!status.ok()) return status;
    }
    return std::move(ea_);
  }

 private:
  const PlanNode& Node(int id) const {
    return plan_.nodes[static_cast<size_t>(id)];
  }
  const std::vector<ColumnType>& Schema(int id) const {
    return schemas_[static_cast<size_t>(id)];
  }
  NodeState& State(int id) { return states_[static_cast<size_t>(id)]; }
  OperatorStats& Stats(int id) {
    return ea_.operators[static_cast<size_t>(id)];
  }

  Status RunPipeline(const Pipeline& pipeline) {
    Stopwatch timer;
    PipelineStats stats;
    stats.pipeline = pipeline.id;
    stats.driving_cardinality = pipeline.driving_cardinality;
    stats.nodes = pipeline.nodes;

    // The source: a table scan, or a breaker's materialized output.
    const int source_id = pipeline.source();
    const PlanNode& source_node = Node(source_id);
    const Table* table = nullptr;
    const DataChunk* materialized = nullptr;
    if (source_node.op == PlanOp::kScan) {
      Result<const Table*> found = catalog_.FindTable(source_node.table);
      if (!found.ok()) return found.status();
      table = *found;
    } else {
      materialized = State(source_id).materialized.get();
      T3_CHECK(materialized != nullptr);  // Topological pipeline order.
    }
    Source source(table, &source_node.columns, materialized,
                  &Schema(source_id));

    const int sink_id = pipeline.sink();
    InitSink(pipeline, sink_id);

    // Reset per-pipeline limit counters.
    for (int id : pipeline.nodes) {
      if (Node(id).op == PlanOp::kLimit) {
        limit_remaining_[id] = Node(id).limit;
      }
    }

    DataChunk chunk;
    bool stop = false;
    while (!stop && source.Next(&chunk)) {
      ++stats.morsels;
      stats.source_rows += chunk.num_rows;
      if (source_node.op == PlanOp::kScan) {
        Stats(source_id).rows_in += chunk.num_rows;
        Stats(source_id).rows_out += chunk.num_rows;
      }
      // Stream through the chain; the last node is the sink. A limit that
      // exhausts mid-chain sets `stop` but its truncated chunk still flows
      // on to the sink before the morsel loop ends.
      for (size_t n = 1; n < pipeline.nodes.size(); ++n) {
        const int id = pipeline.nodes[n];
        const bool is_sink = n + 1 == pipeline.nodes.size();
        if (is_sink) {
          AbsorbIntoSink(pipeline, id, chunk);
          break;
        }
        Status status = Transform(id, &chunk, &stop);
        if (!status.ok()) return status;
        if (chunk.num_rows == 0) break;  // Nothing left for this morsel.
      }
    }

    Status status = FinishSink(pipeline, sink_id);
    if (!status.ok()) return status;
    stats.seconds = timer.ElapsedSeconds();
    ea_.pipelines.push_back(std::move(stats));
    return Status::OK();
  }

  void InitSink(const Pipeline& pipeline, int sink_id) {
    const PlanNode& sink = Node(sink_id);
    NodeState& state = State(sink_id);
    if (pipeline.builds_hash_table) {
      state.join = std::make_unique<JoinHashTable>();
      state.join->rows = DataChunk(Schema(sink.right));
      state.join->key_columns = sink.right_keys;
    } else if (sink.op == PlanOp::kHashAggregate) {
      state.agg = std::make_unique<AggregationState>();
    } else if (sink.op == PlanOp::kSort) {
      state.sort_buffer = std::make_unique<DataChunk>(Schema(sink_id));
    } else if (sink.op == PlanOp::kOutput &&
               ea_.result.columns.empty()) {
      ea_.result = DataChunk(Schema(sink_id));
    }
  }

  void AbsorbIntoSink(const Pipeline& pipeline, int sink_id,
                      const DataChunk& chunk) {
    const PlanNode& sink = Node(sink_id);
    OperatorStats& stats = Stats(sink_id);
    stats.rows_in += chunk.num_rows;
    if (pipeline.builds_hash_table) {
      DataChunk& rows = State(sink_id).join->rows;
      for (size_t r = 0; r < chunk.num_rows; ++r) {
        rows.AppendRowFrom(chunk, r);
      }
      return;
    }
    switch (sink.op) {
      case PlanOp::kHashAggregate:
        AccumulateGroups(sink_id, chunk);
        break;
      case PlanOp::kSort: {
        DataChunk& buffer = *State(sink_id).sort_buffer;
        for (size_t r = 0; r < chunk.num_rows; ++r) {
          buffer.AppendRowFrom(chunk, r);
        }
        break;
      }
      case PlanOp::kOutput:
        for (size_t r = 0; r < chunk.num_rows; ++r) {
          ea_.result.AppendRowFrom(chunk, r);
        }
        stats.rows_out += chunk.num_rows;
        break;
      default:
        T3_CHECK(false);  // Decomposition only ends pipelines at sinks.
    }
  }

  Status FinishSink(const Pipeline& pipeline, int sink_id) {
    const PlanNode& sink = Node(sink_id);
    if (pipeline.builds_hash_table) {
      State(sink_id).join->Finish();
      return Status::OK();
    }
    if (sink.op == PlanOp::kHashAggregate) {
      MaterializeGroups(sink_id);
      Stats(sink_id).rows_out = State(sink_id).materialized->num_rows;
      return Status::OK();
    }
    if (sink.op == PlanOp::kSort) {
      MaterializeSorted(sink_id);
      Stats(sink_id).rows_out = State(sink_id).materialized->num_rows;
      return Status::OK();
    }
    return Status::OK();
  }

  /// Applies a streaming operator in place. Sets `stop` when a limit is
  /// exhausted (the pipeline stops fetching morsels).
  Status Transform(int id, DataChunk* chunk, bool* stop) {
    const PlanNode& node = Node(id);
    OperatorStats& stats = Stats(id);
    stats.rows_in += chunk->num_rows;
    switch (node.op) {
      case PlanOp::kFilter: {
        DataChunk out(Schema(id));
        for (size_t r = 0; r < chunk->num_rows; ++r) {
          bool pass = true;
          for (const FilterPredicate& predicate : node.predicates) {
            const ColumnVector& values =
                chunk->columns[static_cast<size_t>(predicate.column)];
            if (values.IsNull(r) ||
                !PredicatePasses(values.NumericAt(r), predicate)) {
              pass = false;
              break;
            }
          }
          if (pass) out.AppendRowFrom(*chunk, r);
        }
        *chunk = std::move(out);
        break;
      }
      case PlanOp::kProject: {
        DataChunk out(Schema(id));
        for (size_t c = 0; c < node.columns.size(); ++c) {
          out.columns[c] =
              chunk->columns[static_cast<size_t>(node.columns[c])];
        }
        out.num_rows = chunk->num_rows;
        *chunk = std::move(out);
        break;
      }
      case PlanOp::kHashJoin: {
        const JoinHashTable& join = *State(id).join;
        DataChunk out(Schema(id));
        KeyTuple probe_key;
        KeyTuple build_key;
        for (size_t r = 0; r < chunk->num_rows; ++r) {
          if (!ExtractKey(*chunk, node.left_keys, r, &probe_key)) continue;
          const size_t bucket = HashKey(probe_key) & join.mask;
          for (uint32_t slot = join.heads[bucket]; slot != 0;
               slot = join.next[slot - 1]) {
            const size_t build_row = slot - 1;
            ExtractKey(join.rows, join.key_columns, build_row, &build_key);
            if (build_key != probe_key) continue;
            // Emit probe columns then build columns.
            for (size_t c = 0; c < chunk->columns.size(); ++c) {
              out.columns[c].AppendFrom(chunk->columns[c], r);
            }
            for (size_t c = 0; c < join.rows.columns.size(); ++c) {
              out.columns[chunk->columns.size() + c].AppendFrom(
                  join.rows.columns[c], build_row);
            }
            ++out.num_rows;
          }
        }
        *chunk = std::move(out);
        break;
      }
      case PlanOp::kLimit: {
        int64_t& remaining = limit_remaining_[id];
        const int64_t rows = static_cast<int64_t>(chunk->num_rows);
        if (rows >= remaining) {
          DataChunk out(Schema(id));
          for (int64_t r = 0; r < remaining; ++r) {
            out.AppendRowFrom(*chunk, static_cast<size_t>(r));
          }
          *chunk = std::move(out);
          remaining = 0;
          *stop = true;
        } else {
          remaining -= rows;
        }
        break;
      }
      default:
        return InternalError(
            StrFormat("node %d (%s) is not a streaming operator", id,
                      PlanOpName(node.op)));
    }
    stats.rows_out += chunk->num_rows;
    return Status::OK();
  }

  void AccumulateGroups(int id, const DataChunk& chunk) {
    const PlanNode& node = Node(id);
    AggregationState& agg = *State(id).agg;
    KeyTuple key;
    for (size_t r = 0; r < chunk.num_rows; ++r) {
      ExtractKey(chunk, node.group_by, r, &key);  // NULLs group together.
      auto [it, inserted] = agg.group_index.try_emplace(key,
                                                        agg.group_keys.size());
      if (inserted) {
        agg.group_keys.push_back(key);
        agg.accs.emplace_back(node.aggregates.size());
      }
      std::vector<Accumulator>& accs = agg.accs[it->second];
      for (size_t a = 0; a < node.aggregates.size(); ++a) {
        UpdateAccumulator(node.aggregates[a], chunk, r, &accs[a]);
      }
    }
  }

  static void UpdateAccumulator(const AggregateSpec& spec,
                                const DataChunk& chunk, size_t row,
                                Accumulator* acc) {
    if (spec.fn == AggFunc::kCountStar) {
      ++acc->count;
      return;
    }
    const ColumnVector& values =
        chunk.columns[static_cast<size_t>(spec.column)];
    if (values.IsNull(row)) return;  // NULL inputs are skipped.
    switch (spec.fn) {
      case AggFunc::kCount:
        ++acc->count;
        break;
      case AggFunc::kSum:
        acc->sum += values.NumericAt(row);
        acc->has_value = true;
        break;
      case AggFunc::kMin:
      case AggFunc::kMax: {
        const bool want_min = spec.fn == AggFunc::kMin;
        if (values.type == ColumnType::kString) {
          const std::string& v = values.str[row];
          if (!acc->has_value || (want_min ? v < acc->min_max_str
                                           : v > acc->min_max_str)) {
            acc->min_max_str = v;
          }
        } else if (values.type == ColumnType::kFloat64) {
          const double v = values.f64[row];
          if (!acc->has_value || (want_min ? v < acc->min_max_f64
                                           : v > acc->min_max_f64)) {
            acc->min_max_f64 = v;
          }
        } else {
          const int64_t v = values.i64[row];
          if (!acc->has_value || (want_min ? v < acc->min_max_i64
                                           : v > acc->min_max_i64)) {
            acc->min_max_i64 = v;
          }
        }
        acc->has_value = true;
        break;
      }
      case AggFunc::kCountStar:
        break;
    }
  }

  void MaterializeGroups(int id) {
    const PlanNode& node = Node(id);
    AggregationState& agg = *State(id).agg;
    // Global aggregation produces its single group even on empty input.
    if (node.group_by.empty() && agg.group_keys.empty()) {
      agg.group_keys.emplace_back();
      agg.accs.emplace_back(node.aggregates.size());
    }
    auto out = std::make_unique<DataChunk>(Schema(id));
    for (size_t g = 0; g < agg.group_keys.size(); ++g) {
      const KeyTuple& key = agg.group_keys[g];
      for (size_t k = 0; k < node.group_by.size(); ++k) {
        ColumnVector& column = out->columns[k];
        if (key[2 * k] != 0) {
          column.AppendNull();
        } else {
          column.AppendInt64(key[2 * k + 1]);
        }
      }
      for (size_t a = 0; a < node.aggregates.size(); ++a) {
        const AggregateSpec& spec = node.aggregates[a];
        const Accumulator& acc = agg.accs[g][a];
        ColumnVector& column = out->columns[node.group_by.size() + a];
        switch (spec.fn) {
          case AggFunc::kCountStar:
          case AggFunc::kCount:
            column.AppendInt64(static_cast<int64_t>(acc.count));
            break;
          case AggFunc::kSum:
            if (acc.has_value) {
              column.AppendFloat64(acc.sum);
            } else {
              column.AppendNull();
            }
            break;
          case AggFunc::kMin:
          case AggFunc::kMax:
            if (!acc.has_value) {
              column.AppendNull();
            } else if (column.type == ColumnType::kString) {
              column.AppendString(acc.min_max_str);
            } else if (column.type == ColumnType::kFloat64) {
              column.AppendFloat64(acc.min_max_f64);
            } else {
              column.AppendInt64(acc.min_max_i64);
            }
            break;
        }
      }
      ++out->num_rows;
    }
    State(id).materialized = std::move(out);
  }

  void MaterializeSorted(int id) {
    const PlanNode& node = Node(id);
    DataChunk& buffer = *State(id).sort_buffer;
    std::vector<size_t> order(buffer.num_rows);
    for (size_t r = 0; r < order.size(); ++r) order[r] = r;
    std::stable_sort(
        order.begin(), order.end(), [&](size_t a, size_t b) {
          for (const SortKey& key : node.sort_keys) {
            const ColumnVector& values =
                buffer.columns[static_cast<size_t>(key.column)];
            const int cmp = CompareRows(values, a, b);
            if (cmp != 0) return key.ascending ? cmp < 0 : cmp > 0;
          }
          return false;
        });
    auto out = std::make_unique<DataChunk>(Schema(id));
    for (size_t r : order) out->AppendRowFrom(buffer, r);
    State(id).materialized = std::move(out);
    State(id).sort_buffer.reset();
  }

  /// -1/0/1 three-way compare of two rows of one column; NULLs order after
  /// every value (so they come last ascending, first descending).
  static int CompareRows(const ColumnVector& values, size_t a, size_t b) {
    const bool null_a = values.IsNull(a);
    const bool null_b = values.IsNull(b);
    if (null_a || null_b) return (null_a ? 1 : 0) - (null_b ? 1 : 0);
    if (values.type == ColumnType::kString) {
      return values.str[a].compare(values.str[b]) < 0
                 ? -1
                 : (values.str[a] == values.str[b] ? 0 : 1);
    }
    const double va = values.NumericAt(a);
    const double vb = values.NumericAt(b);
    if (va < vb) return -1;
    return va == vb ? 0 : 1;
  }

  const Catalog& catalog_;
  const PhysicalPlan& plan_;
  std::vector<std::vector<ColumnType>> schemas_;
  PipelineDecomposition decomposition_;
  std::vector<NodeState> states_;
  std::unordered_map<int, int64_t> limit_remaining_;
  ExplainAnalyze ea_;
};

}  // namespace

Result<ExplainAnalyze> Executor::Execute(const PhysicalPlan& plan) const {
  Stopwatch total;
  Result<std::vector<std::vector<ColumnType>>> schemas =
      ResolvePlanSchemas(*catalog_, plan);
  if (!schemas.ok()) return schemas.status();
  Result<PipelineDecomposition> decomposition = DecomposePipelines(plan);
  if (!decomposition.ok()) return decomposition.status();

  Run run(*catalog_, plan, *std::move(schemas), *std::move(decomposition));
  Result<ExplainAnalyze> result = run.Execute();
  if (!result.ok()) return result;
  result->total_seconds = total.ElapsedSeconds();
  return result;
}

std::string ExplainAnalyze::ToString(const PhysicalPlan& plan) const {
  std::string out = StrFormat("query: %s, %llu result rows\n",
                              FormatDuration(total_seconds * 1e9).c_str(),
                              static_cast<unsigned long long>(result_rows()));
  for (const PipelineStats& stats : pipelines) {
    out += StrFormat(
        "pipeline %d: %s, driving=%.0f, source_rows=%llu, morsels=%llu |",
        stats.pipeline, FormatDuration(stats.seconds * 1e9).c_str(),
        stats.driving_cardinality,
        static_cast<unsigned long long>(stats.source_rows),
        static_cast<unsigned long long>(stats.morsels));
    for (int id : stats.nodes) {
      out += StrFormat(" %s#%d",
                       PlanOpName(plan.nodes[static_cast<size_t>(id)].op), id);
    }
    out.push_back('\n');
  }
  for (size_t i = 0; i < operators.size(); ++i) {
    out += StrFormat("  #%zu %-14s in=%llu out=%llu\n", i,
                     PlanOpName(operators[i].op),
                     static_cast<unsigned long long>(operators[i].rows_in),
                     static_cast<unsigned long long>(operators[i].rows_out));
  }
  return out;
}

}  // namespace t3
