#ifndef T3_ENGINE_EXECUTOR_H_
#define T3_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/chunk.h"
#include "plan/pipeline.h"
#include "plan/plan.h"
#include "storage/catalog.h"

namespace t3 {

/// Measured tuple flow through one plan node. For a hash join, `rows_in`
/// accumulates both build-side insertions and probe-side inputs; `rows_out`
/// counts probe emissions only.
struct OperatorStats {
  PlanOp op = PlanOp::kScan;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

/// Measured execution of one pipeline.
///
/// Measurement contract: `seconds` is the wall time of the pipeline's whole
/// run — source reads, streaming operators, sink insertion, and the sink's
/// finalization (a sort's sort, an aggregate's result materialization, a
/// join build's hash-table construction). It excludes plan validation,
/// pipeline setup, and every other pipeline. Pipelines run sequentially
/// inside the total-time window, so the per-pipeline times sum to slightly
/// less than `ExplainAnalyze::total_seconds`; the difference is
/// orchestration overhead.
struct PipelineStats {
  int pipeline = 0;
  double seconds = 0.0;
  /// Static estimate (Pipeline::driving_cardinality).
  double driving_cardinality = 0.0;
  /// Measured tuples the source actually produced.
  uint64_t source_rows = 0;
  uint64_t morsels = 0;
  std::vector<int> nodes;
};

/// The result of executing a plan with instrumentation: T3's measurement
/// substrate (per-pipeline wall times + per-operator true cardinalities).
struct ExplainAnalyze {
  double total_seconds = 0.0;
  std::vector<PipelineStats> pipelines;
  std::vector<OperatorStats> operators;  ///< Indexed by plan node id.
  DataChunk result;                      ///< Materialized query output.

  uint64_t result_rows() const { return result.num_rows; }

  /// Pipeline table + annotated operator tree, EXPLAIN ANALYZE style.
  std::string ToString(const PhysicalPlan& plan) const;
};

/// Vectorized push-based executor over catalog tables. Stateless between
/// queries; one executor can run many plans.
///
///   Executor executor(catalog);
///   Result<ExplainAnalyze> run = executor.Execute(plan);
///
/// Execution is single-threaded and deterministic: morsels of kMorselRows
/// rows stream through each pipeline's operator chain in row order, and
/// hash joins emit matches in build-row order.
class Executor {
 public:
  explicit Executor(const Catalog& catalog) : catalog_(&catalog) {}

  /// Runs the plan's pipelines in topological order. Returns
  /// kInvalidArgument for invalid or type-incorrect plans (the
  /// ResolvePlanSchemas checks), never T3_CHECKs on bad plans.
  Result<ExplainAnalyze> Execute(const PhysicalPlan& plan) const;

 private:
  const Catalog* catalog_;
};

}  // namespace t3

#endif  // T3_ENGINE_EXECUTOR_H_
