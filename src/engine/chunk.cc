#include "engine/chunk.h"

namespace t3 {

void ColumnVector::AppendNull() {
  switch (type) {
    case ColumnType::kInt64:
    case ColumnType::kDate:
      i64.push_back(0);
      break;
    case ColumnType::kFloat64:
      f64.push_back(0.0);
      break;
    case ColumnType::kString:
      str.emplace_back();
      break;
  }
  null.push_back(1);
}

void ColumnVector::AppendFrom(const ColumnVector& source, size_t row) {
  T3_CHECK(source.type == type);
  if (source.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type) {
    case ColumnType::kInt64:
    case ColumnType::kDate:
      AppendInt64(source.i64[row]);
      break;
    case ColumnType::kFloat64:
      AppendFloat64(source.f64[row]);
      break;
    case ColumnType::kString:
      AppendString(source.str[row]);
      break;
  }
}

void DataChunk::AppendRowFrom(const DataChunk& source, size_t row) {
  T3_CHECK(source.columns.size() == columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    columns[c].AppendFrom(source.columns[c], row);
  }
  ++num_rows;
}

}  // namespace t3
