#include "server/protocol.h"

#include <cstring>

#include "common/string_util.h"

namespace t3 {
namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>(value >> shift));
  }
}

void PutF64(std::vector<uint8_t>* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>(bits >> shift));
  }
}

uint32_t GetU32(const uint8_t* data) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) value = (value << 8) | data[i];
  return value;
}

double GetF64(const uint8_t* data) {
  uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) bits = (bits << 8) | data[i];
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Strict sequential payload reader: every decoder must consume the whole
/// payload (Finish checks), mirroring the text parsers' trailing-data
/// rejection.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  Status ReadU32(uint32_t* out) {
    if (size_ - pos_ < 4) return Truncated("uint32");
    *out = GetU32(data_ + pos_);
    pos_ += 4;
    return Status::OK();
  }

  Status ReadF64s(size_t count, std::vector<double>* out) {
    if ((size_ - pos_) / 8 < count) return Truncated("doubles");
    out->reserve(out->size() + count);
    for (size_t i = 0; i < count; ++i) {
      out->push_back(GetF64(data_ + pos_));
      pos_ += 8;
    }
    return Status::OK();
  }

  /// The rest of the payload as text.
  std::string ReadRemainingText() {
    std::string text(reinterpret_cast<const char*>(data_ + pos_),
                     size_ - pos_);
    pos_ = size_;
    return text;
  }

  Status Finish() const {
    if (pos_ != size_) {
      return InvalidArgumentError(StrFormat(
          "frame payload has %zu trailing bytes", size_ - pos_));
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return InvalidArgumentError(StrFormat(
        "frame payload truncated reading %s at offset %zu", what, pos_));
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status CheckType(const Frame& frame, MessageType expected,
                 const char* decoder) {
  if (frame.type != expected) {
    return InvalidArgumentError(StrFormat(
        "%s: unexpected message type %d", decoder,
        static_cast<int>(frame.type)));
  }
  return Status::OK();
}

}  // namespace

bool IsKnownMessageType(uint8_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kPredictRows:
    case MessageType::kPredictPlan:
    case MessageType::kSwapModel:
    case MessageType::kStats:
    case MessageType::kShutdown:
    case MessageType::kPredictOk:
    case MessageType::kError:
    case MessageType::kSwapOk:
    case MessageType::kStatsOk:
    case MessageType::kShutdownOk:
      return true;
  }
  return false;
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  const uint32_t payload_len = static_cast<uint32_t>(frame.payload.size());
  std::vector<uint8_t> out(kFrameHeaderBytes + frame.payload.size());
  std::memcpy(out.data(), kMagic, 4);
  out[4] = static_cast<uint8_t>(frame.type);
  out[5] = 0;  // flags
  out[6] = 0;  // reserved
  out[7] = 0;
  out[8] = static_cast<uint8_t>(payload_len & 0xff);
  out[9] = static_cast<uint8_t>((payload_len >> 8) & 0xff);
  out[10] = static_cast<uint8_t>((payload_len >> 16) & 0xff);
  out[11] = static_cast<uint8_t>((payload_len >> 24) & 0xff);
  if (!frame.payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  return out;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data) {
  if (std::memcmp(data, kMagic, 4) != 0) {
    return InvalidArgumentError("bad frame magic (want \"t3p1\")");
  }
  if (!IsKnownMessageType(data[4])) {
    return InvalidArgumentError(
        StrFormat("unknown message type %d", data[4]));
  }
  if (data[5] != 0 || data[6] != 0 || data[7] != 0) {
    return InvalidArgumentError("nonzero flags/reserved bytes");
  }
  FrameHeader header;
  header.type = static_cast<MessageType>(data[4]);
  header.payload_size = GetU32(data + 8);
  if (header.payload_size > kMaxPayloadBytes) {
    return InvalidArgumentError(StrFormat(
        "frame payload of %u bytes exceeds the %u-byte cap",
        header.payload_size, kMaxPayloadBytes));
  }
  return header;
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t size) {
  if (size < kFrameHeaderBytes) {
    return InvalidArgumentError(StrFormat(
        "frame of %zu bytes is shorter than the %zu-byte header", size,
        kFrameHeaderBytes));
  }
  Result<FrameHeader> header = DecodeFrameHeader(data);
  if (!header.ok()) return header.status();
  if (size != kFrameHeaderBytes + header->payload_size) {
    return InvalidArgumentError(StrFormat(
        "frame length mismatch: header declares %u payload bytes, buffer "
        "has %zu",
        header->payload_size, size - kFrameHeaderBytes));
  }
  Frame frame;
  frame.type = header->type;
  frame.payload.assign(data + kFrameHeaderBytes, data + size);
  return frame;
}

Frame EncodePredictRows(const PredictRowsRequest& request) {
  Frame frame;
  frame.type = MessageType::kPredictRows;
  const uint32_t num_rows =
      static_cast<uint32_t>(request.input_cardinalities.size());
  PutU32(&frame.payload, num_rows);
  PutU32(&frame.payload, request.num_features);
  frame.payload.reserve(frame.payload.size() +
                        8 * (request.rows.size() + num_rows));
  for (const double value : request.rows) PutF64(&frame.payload, value);
  for (const double card : request.input_cardinalities) {
    PutF64(&frame.payload, card);
  }
  return frame;
}

Result<PredictRowsRequest> DecodePredictRows(const Frame& frame) {
  Status status = CheckType(frame, MessageType::kPredictRows, "PredictRows");
  if (!status.ok()) return status;
  PayloadReader reader(frame.payload);
  uint32_t num_rows = 0;
  uint32_t num_features = 0;
  if (Status s = reader.ReadU32(&num_rows); !s.ok()) return s;
  if (Status s = reader.ReadU32(&num_features); !s.ok()) return s;
  if (num_rows == 0 || num_rows > kMaxRowsPerRequest) {
    return InvalidArgumentError(StrFormat(
        "predict request row count %u outside [1, %u]", num_rows,
        kMaxRowsPerRequest));
  }
  if (num_features == 0 || num_features > kMaxFeaturesPerRow) {
    return InvalidArgumentError(StrFormat(
        "predict request feature count %u outside [1, %u]", num_features,
        kMaxFeaturesPerRow));
  }
  PredictRowsRequest request;
  request.num_features = num_features;
  if (Status s = reader.ReadF64s(
          static_cast<size_t>(num_rows) * num_features, &request.rows);
      !s.ok()) {
    return s;
  }
  if (Status s = reader.ReadF64s(num_rows, &request.input_cardinalities);
      !s.ok()) {
    return s;
  }
  if (Status s = reader.Finish(); !s.ok()) return s;
  return request;
}

Frame EncodePredictResponse(const PredictResponse& response) {
  Frame frame;
  frame.type = MessageType::kPredictOk;
  PutU32(&frame.payload, response.model_version);
  PutU32(&frame.payload,
         static_cast<uint32_t>(response.predictions.size()));
  for (const double value : response.predictions) {
    PutF64(&frame.payload, value);
  }
  return frame;
}

Result<PredictResponse> DecodePredictResponse(const Frame& frame) {
  Status status = CheckType(frame, MessageType::kPredictOk, "PredictOk");
  if (!status.ok()) return status;
  PayloadReader reader(frame.payload);
  PredictResponse response;
  uint32_t num_rows = 0;
  if (Status s = reader.ReadU32(&response.model_version); !s.ok()) return s;
  if (Status s = reader.ReadU32(&num_rows); !s.ok()) return s;
  if (Status s = reader.ReadF64s(num_rows, &response.predictions); !s.ok()) {
    return s;
  }
  if (Status s = reader.Finish(); !s.ok()) return s;
  return response;
}

Frame EncodeErrorResponse(const ErrorResponse& response) {
  Frame frame;
  frame.type = MessageType::kError;
  frame.payload.reserve(4 + response.message.size());
  PutU32(&frame.payload, static_cast<uint32_t>(response.code));
  frame.payload.insert(frame.payload.end(), response.message.begin(),
                       response.message.end());
  return frame;
}

Frame EncodeErrorResponse(const Status& status) {
  ErrorResponse response;
  response.code = status.code();
  response.message = status.message();
  return EncodeErrorResponse(response);
}

Result<ErrorResponse> DecodeErrorResponse(const Frame& frame) {
  Status status = CheckType(frame, MessageType::kError, "Error");
  if (!status.ok()) return status;
  PayloadReader reader(frame.payload);
  uint32_t code = 0;
  if (Status s = reader.ReadU32(&code); !s.ok()) return s;
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kInternal)) {
    return InvalidArgumentError(
        StrFormat("error frame carries bad status code %u", code));
  }
  ErrorResponse response;
  response.code = static_cast<StatusCode>(code);
  response.message = reader.ReadRemainingText();
  return response;
}

Frame EncodeTextFrame(MessageType type, std::string_view text) {
  Frame frame;
  frame.type = type;
  frame.payload.assign(text.begin(), text.end());
  return frame;
}

Frame EncodeSwapResponse(uint32_t model_version) {
  Frame frame;
  frame.type = MessageType::kSwapOk;
  PutU32(&frame.payload, model_version);
  return frame;
}

Result<uint32_t> DecodeSwapResponse(const Frame& frame) {
  Status status = CheckType(frame, MessageType::kSwapOk, "SwapOk");
  if (!status.ok()) return status;
  PayloadReader reader(frame.payload);
  uint32_t version = 0;
  if (Status s = reader.ReadU32(&version); !s.ok()) return s;
  if (Status s = reader.Finish(); !s.ok()) return s;
  return version;
}

Frame EncodeEmptyFrame(MessageType type) {
  Frame frame;
  frame.type = type;
  return frame;
}

}  // namespace t3
