#ifndef T3_SERVER_SERVER_H_
#define T3_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/net.h"
#include "common/status.h"
#include "server/batcher.h"
#include "server/protocol.h"
#include "server/serving_model.h"

namespace t3 {

class ThreadPool;

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via PredictionServer::port().
  uint16_t port = 0;
  /// Accept/worker event loops (thread-per-core); 0 = hardware concurrency.
  size_t num_workers = 0;
  /// Row cap of one coalesced PredictBatch call.
  size_t max_batch_rows = 16384;
  /// Honor kShutdown frames (CI smoke and tests); off for long-lived
  /// deployments where only the operator may stop the process.
  bool allow_remote_shutdown = true;
  /// Default model file of kSwapModel frames with an empty payload and of
  /// RequestSwap() (the SIGHUP path). Empty = such swaps are rejected.
  std::string default_swap_path;
};

/// Monotonic counters across all workers.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t predict_requests = 0;
  uint64_t rows_predicted = 0;
  uint64_t protocol_errors = 0;
  BatcherStats batcher;
  uint32_t model_version = 0;
};

/// The T3 prediction service: a long-running TCP server answering "t3p1"
/// frames (server/protocol.h) with model predictions.
///
/// Architecture (DESIGN.md "Prediction service"):
///  - N worker threads on an internal ThreadPool, each running a poll()
///    event loop over non-blocking sockets; all workers poll the shared
///    listener, so accepted connections spread across loops;
///  - prediction requests are decoded on the worker and submitted to the
///    RequestBatcher, which coalesces every in-flight request into single
///    SIMD PredictBatch calls; completions re-enter the owning worker via
///    its wake pipe, so a worker keeps serving other sockets while
///    predictions are in flight;
///  - models are versioned snapshots swapped atomically through the
///    ModelRegistry (release/acquire shared_ptr publish) — swaps never
///    drop or stall in-flight requests;
///  - client misbehavior (disconnects mid-frame, oversized or malformed
///    frames) costs at most that connection: bad frames get a kError
///    response and a close, aborted sockets are reaped, SIGPIPE is ignored
///    process-wide.
class PredictionServer {
 public:
  /// Binds, spawns the workers, and starts serving `initial`.
  static Result<std::unique_ptr<PredictionServer>> Start(
      std::shared_ptr<const ServingModel> initial, ServerOptions options);

  ~PredictionServer();
  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// The bound port (resolves port 0).
  uint16_t port() const { return port_; }

  /// Blocks until Stop() is called (by any thread, or by a kShutdown
  /// frame).
  void Wait();

  /// Graceful stop: stop accepting, drain the batcher (every accepted
  /// request is answered), flush sockets, join the workers. Idempotent.
  void Stop();

  /// Hot-swaps to the model at `path`, re-proving serialization
  /// bit-exactness before the atomic publish. Thread-safe; callable while
  /// serving at full load.
  Result<uint32_t> SwapFromFile(const std::string& path);

  /// Signal-safe swap trigger: queues a swap to the options' default swap
  /// path, executed by a worker on its next loop iteration. The t3_serve
  /// SIGHUP handler calls this.
  void RequestSwap() { swap_requested_.store(true, std::memory_order_release); }

  const ModelRegistry& registry() const { return registry_; }

  ServerStats stats() const;

  /// The kStatsOk text: one "key value" pair per line.
  std::string StatsText() const;

 private:
  struct Connection;
  struct Worker;

  PredictionServer(std::shared_ptr<const ServingModel> initial,
                   ServerOptions options);

  void WorkerLoop(Worker* worker);
  void HandleFrame(Worker* worker, const std::shared_ptr<Connection>& conn,
                   MessageType type, std::vector<uint8_t> payload);
  void FinishPredict(Worker* worker,
                     const std::shared_ptr<Connection>& conn,
                     std::vector<double> cardinalities, bool sum_to_one,
                     Result<RequestBatcher::Reply> reply);
  void SendFrame(Worker* worker, const std::shared_ptr<Connection>& conn,
                 const Frame& frame);
  void ExecuteQueuedSwap();
  /// Moves completed responses from the cross-thread `ready` queue into the
  /// worker-owned write queue.
  static void DrainReady(Connection* conn);
  /// Writes as much pending output as the socket accepts; false when the
  /// connection failed (peer reset / EPIPE) and must be reaped.
  static bool FlushWrites(Connection* conn);

  ServerOptions options_;
  ModelRegistry registry_;
  RequestBatcher batcher_;
  ScopedFd listener_;
  uint16_t port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> swap_requested_{false};
  std::mutex state_mu_;
  std::condition_variable stop_requested_cv_;
  bool stop_requested_ = false;
  std::mutex teardown_mu_;
  bool workers_joined_ = false;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> predict_requests_{0};
  std::atomic<uint64_t> rows_predicted_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace t3

#endif  // T3_SERVER_SERVER_H_
