#include "server/server.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "server/plan_features.h"

namespace t3 {
namespace {

constexpr int kPollTimeoutMs = 100;
constexpr double kDrainDeadlineSeconds = 5.0;

}  // namespace

/// Per-connection state. The owning worker's loop thread is the only
/// mutator of the buffers below the fence comment; `ready`, `dead`, and
/// `in_flight` are the cross-thread handoff with the batcher's inference
/// loop (responses enqueue under `ready_mu`, then the worker moves them
/// into `out`).
struct PredictionServer::Connection {
  ScopedFd fd;

  // Worker-thread-owned.
  std::vector<uint8_t> in;   ///< Unparsed request bytes.
  size_t parse_pos = 0;
  std::deque<std::vector<uint8_t>> out;  ///< Encoded frames to write.
  size_t out_offset = 0;     ///< Bytes of out.front() already written.
  bool close_after_flush = false;

  // Shared with the inference loop.
  std::mutex ready_mu;
  std::vector<std::vector<uint8_t>> ready;  ///< Completed responses.
  std::atomic<bool> dead{false};
  std::atomic<int> in_flight{0};
};

struct PredictionServer::Worker {
  size_t index = 0;
  ScopedFd wake_read;
  ScopedFd wake_write;
  std::vector<std::shared_ptr<Connection>> conns;
};

PredictionServer::PredictionServer(
    std::shared_ptr<const ServingModel> initial, ServerOptions options)
    : options_(std::move(options)),
      registry_(std::move(initial)),
      batcher_(&registry_,
               RequestBatcher::Options{options_.max_batch_rows}) {}

PredictionServer::~PredictionServer() { Stop(); }

Result<std::unique_ptr<PredictionServer>> PredictionServer::Start(
    std::shared_ptr<const ServingModel> initial, ServerOptions options) {
  if (initial == nullptr) {
    return InvalidArgumentError("prediction server needs an initial model");
  }
  Status sigpipe = IgnoreSigPipe();
  if (!sigpipe.ok()) return sigpipe;

  std::unique_ptr<PredictionServer> server(
      new PredictionServer(std::move(initial), std::move(options)));
  Result<ScopedFd> listener =
      ListenTcp(server->options_.host, server->options_.port);
  if (!listener.ok()) return listener.status();
  server->listener_ = *std::move(listener);
  Result<uint16_t> port = LocalPort(server->listener_.get());
  if (!port.ok()) return port.status();
  server->port_ = *port;

  size_t num_workers = server->options_.num_workers;
  if (num_workers == 0) {
    num_workers = std::max<size_t>(std::thread::hardware_concurrency(), 1);
  }
  for (size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      return UnavailableError(StrFormat("pipe: %s", std::strerror(errno)));
    }
    worker->wake_read = ScopedFd(pipe_fds[0]);
    worker->wake_write = ScopedFd(pipe_fds[1]);
    Status status = SetNonBlocking(worker->wake_read.get());
    if (status.ok()) status = SetNonBlocking(worker->wake_write.get());
    if (!status.ok()) return status;
    server->workers_.push_back(std::move(worker));
  }

  // Workers + the batcher's inference loop all run on one pool.
  server->pool_ = std::make_unique<ThreadPool>(num_workers + 1);
  server->batcher_.Start(server->pool_.get());
  for (auto& worker : server->workers_) {
    Worker* raw = worker.get();
    server->pool_->Submit([server = server.get(), raw] {
      server->WorkerLoop(raw);
    });
  }
  return server;
}

void PredictionServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    stop_requested_cv_.wait(lock, [this] { return stop_requested_; });
  }
  Stop();
}

void PredictionServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stop_requested_ = true;
    stop_requested_cv_.notify_all();
  }
  std::lock_guard<std::mutex> teardown(teardown_mu_);
  if (workers_joined_) return;
  stopping_.store(true, std::memory_order_release);
  // Drain first: every accepted request gets its prediction computed and
  // its response enqueued before the workers run their final flush.
  batcher_.Stop();
  for (auto& worker : workers_) {
    const uint8_t byte = 1;
    (void)!::write(worker->wake_write.get(), &byte, 1);
  }
  pool_->Wait();
  workers_joined_ = true;
  listener_.Reset();
}

Result<uint32_t> PredictionServer::SwapFromFile(const std::string& path) {
  return registry_.SwapFromFile(path);
}

ServerStats PredictionServer::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.predict_requests = predict_requests_.load(std::memory_order_relaxed);
  stats.rows_predicted = rows_predicted_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.batcher = batcher_.stats();
  stats.model_version = registry_.Current()->version;
  return stats;
}

std::string PredictionServer::StatsText() const {
  const ServerStats stats = this->stats();
  const std::shared_ptr<const ServingModel> model = registry_.Current();
  std::string text;
  text += StrFormat("model_version %u\n", stats.model_version);
  text += StrFormat("model_source %s\n", model->source.c_str());
  text += StrFormat("model_features %d\n", model->num_features());
  text += StrFormat("model_trees %zu\n", model->model.forest().trees.size());
  text += StrFormat("simd_batch_kernels %d\n",
                    model->compiled != nullptr &&
                        model->compiled->has_batch_kernels()
                        ? 1
                        : 0);
  text += StrFormat("workers %zu\n", workers_.size());
  text += StrFormat("connections_accepted %llu\n",
                    static_cast<unsigned long long>(
                        stats.connections_accepted));
  text += StrFormat("predict_requests %llu\n",
                    static_cast<unsigned long long>(stats.predict_requests));
  text += StrFormat("rows_predicted %llu\n",
                    static_cast<unsigned long long>(stats.rows_predicted));
  text += StrFormat("protocol_errors %llu\n",
                    static_cast<unsigned long long>(stats.protocol_errors));
  text += StrFormat("batches %llu\n",
                    static_cast<unsigned long long>(stats.batcher.batches));
  text += StrFormat("rows_per_batch %.2f\n", stats.batcher.RowsPerBatch());
  text += StrFormat("max_batch_rows_seen %llu\n",
                    static_cast<unsigned long long>(
                        stats.batcher.max_batch_rows_seen));
  text += StrFormat("model_swaps %u\n", registry_.num_swaps());
  return text;
}

namespace {

void WakeWorker(int wake_write_fd) {
  const uint8_t byte = 1;
  // A full pipe already holds a pending wake; EAGAIN is success here.
  (void)!::write(wake_write_fd, &byte, 1);
}

void DrainWakePipe(int wake_read_fd) {
  uint8_t buffer[256];
  while (::read(wake_read_fd, buffer, sizeof(buffer)) > 0) {
  }
}

}  // namespace

void PredictionServer::SendFrame(Worker* worker,
                                 const std::shared_ptr<Connection>& conn,
                                 const Frame& frame) {
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  {
    std::lock_guard<std::mutex> lock(conn->ready_mu);
    if (conn->dead.load(std::memory_order_relaxed)) return;
    conn->ready.push_back(std::move(bytes));
  }
  WakeWorker(worker->wake_write.get());
}

void PredictionServer::FinishPredict(
    Worker* worker, const std::shared_ptr<Connection>& conn,
    std::vector<double> cardinalities, bool sum_to_one,
    Result<RequestBatcher::Reply> reply) {
  if (!reply.ok()) {
    SendFrame(worker, conn, EncodeErrorResponse(reply.status()));
  } else {
    const ServingModel& model = *reply->model;
    PredictResponse response;
    response.model_version = model.version;
    if (sum_to_one) {
      // Plan request: pipeline predictions summed left to right, the
      // PredictQuerySeconds convention.
      double total = 0.0;
      for (size_t i = 0; i < reply->raw.size(); ++i) {
        total += model.RowSeconds(reply->raw[i], cardinalities[i]);
      }
      response.predictions.push_back(total);
    } else {
      response.predictions.reserve(reply->raw.size());
      for (size_t i = 0; i < reply->raw.size(); ++i) {
        response.predictions.push_back(
            model.RowSeconds(reply->raw[i], cardinalities[i]));
      }
    }
    SendFrame(worker, conn, EncodePredictResponse(response));
  }
  conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  WakeWorker(worker->wake_write.get());
}

void PredictionServer::HandleFrame(Worker* worker,
                                   const std::shared_ptr<Connection>& conn,
                                   MessageType type,
                                   std::vector<uint8_t> payload) {
  Frame frame;
  frame.type = type;
  frame.payload = std::move(payload);

  switch (type) {
    case MessageType::kPredictRows: {
      Result<PredictRowsRequest> request = DecodePredictRows(frame);
      if (!request.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendFrame(worker, conn, EncodeErrorResponse(request.status()));
        return;
      }
      predict_requests_.fetch_add(1, std::memory_order_relaxed);
      rows_predicted_.fetch_add(request->num_rows(),
                                std::memory_order_relaxed);
      const size_t num_rows = request->num_rows();
      std::vector<double> cards = std::move(request->input_cardinalities);
      conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
      batcher_.Submit(
          std::move(request->rows), num_rows,
          [this, worker, conn, cards = std::move(cards)](
              Result<RequestBatcher::Reply> reply) mutable {
            FinishPredict(worker, conn, std::move(cards),
                          /*sum_to_one=*/false, std::move(reply));
          });
      return;
    }
    case MessageType::kPredictPlan: {
      const std::string_view text(
          reinterpret_cast<const char*>(frame.payload.data()),
          frame.payload.size());
      Result<PlanPredictionInput> input = BuildPlanPredictionInput(text);
      if (!input.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendFrame(worker, conn, EncodeErrorResponse(input.status()));
        return;
      }
      predict_requests_.fetch_add(1, std::memory_order_relaxed);
      rows_predicted_.fetch_add(input->num_rows(),
                                std::memory_order_relaxed);
      const size_t num_rows = input->num_rows();
      std::vector<double> cards = std::move(input->input_cardinalities);
      conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
      batcher_.Submit(
          std::move(input->rows), num_rows,
          [this, worker, conn, cards = std::move(cards)](
              Result<RequestBatcher::Reply> reply) mutable {
            FinishPredict(worker, conn, std::move(cards),
                          /*sum_to_one=*/true, std::move(reply));
          });
      return;
    }
    case MessageType::kSwapModel: {
      std::string path(reinterpret_cast<const char*>(frame.payload.data()),
                       frame.payload.size());
      if (path.empty()) path = options_.default_swap_path;
      if (path.empty()) {
        SendFrame(worker, conn,
                  EncodeErrorResponse(FailedPreconditionError(
                      "swap request without a path and no default "
                      "configured")));
        return;
      }
      Result<uint32_t> version = SwapFromFile(path);
      if (!version.ok()) {
        SendFrame(worker, conn, EncodeErrorResponse(version.status()));
        return;
      }
      std::fprintf(stderr, "t3 server: hot-swapped to %s (version %u)\n",
                   path.c_str(), *version);
      SendFrame(worker, conn, EncodeSwapResponse(*version));
      return;
    }
    case MessageType::kStats: {
      SendFrame(worker, conn,
                EncodeTextFrame(MessageType::kStatsOk, StatsText()));
      return;
    }
    case MessageType::kShutdown: {
      if (!options_.allow_remote_shutdown) {
        SendFrame(worker, conn,
                  EncodeErrorResponse(FailedPreconditionError(
                      "remote shutdown is disabled")));
        return;
      }
      SendFrame(worker, conn,
                EncodeEmptyFrame(MessageType::kShutdownOk));
      conn->close_after_flush = true;
      std::lock_guard<std::mutex> lock(state_mu_);
      stop_requested_ = true;
      stop_requested_cv_.notify_all();
      return;
    }
    default: {
      // A response type sent as a request.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendFrame(worker, conn,
                EncodeErrorResponse(InvalidArgumentError(StrFormat(
                    "message type %d is not a request",
                    static_cast<int>(type)))));
      conn->close_after_flush = true;
      return;
    }
  }
}

void PredictionServer::ExecuteQueuedSwap() {
  if (options_.default_swap_path.empty()) {
    std::fprintf(stderr,
                 "t3 server: swap requested but no default swap path is "
                 "configured; ignoring\n");
    return;
  }
  Result<uint32_t> version = SwapFromFile(options_.default_swap_path);
  if (version.ok()) {
    std::fprintf(stderr, "t3 server: hot-swapped to %s (version %u)\n",
                 options_.default_swap_path.c_str(), *version);
  } else {
    std::fprintf(stderr, "t3 server: hot swap failed: %s\n",
                 version.status().ToString().c_str());
  }
}

void PredictionServer::DrainReady(Connection* conn) {
  std::vector<std::vector<uint8_t>> batch;
  {
    std::lock_guard<std::mutex> lock(conn->ready_mu);
    batch.swap(conn->ready);
  }
  for (auto& bytes : batch) conn->out.push_back(std::move(bytes));
}

bool PredictionServer::FlushWrites(Connection* conn) {
  while (!conn->out.empty()) {
    const std::vector<uint8_t>& front = conn->out.front();
    const ssize_t n =
        ::send(conn->fd.get(), front.data() + conn->out_offset,
               front.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n >= 0) {
      conn->out_offset += static_cast<size_t>(n);
      if (conn->out_offset == front.size()) {
        conn->out.pop_front();
        conn->out_offset = 0;
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;  // EPIPE, ECONNRESET, ...: client is gone.
  }
  return true;
}

void PredictionServer::WorkerLoop(Worker* worker) {
  std::vector<pollfd> pfds;
  uint8_t read_buffer[64 * 1024];

  auto accept_all = [&] {
    for (;;) {
      const int fd = ::accept(listener_.get(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        // EAGAIN: another worker won the race for this connection.
        return;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = ScopedFd(fd);
      if (!SetNonBlocking(fd).ok()) continue;  // ScopedFd closes it.
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      worker->conns.push_back(std::move(conn));
    }
  };

  // Parses complete frames out of conn->in; returns false on a framing
  // error (error response queued, connection marked for close).
  auto parse_frames = [&](const std::shared_ptr<Connection>& conn) {
    while (!conn->close_after_flush) {
      const size_t available = conn->in.size() - conn->parse_pos;
      if (available < kFrameHeaderBytes) break;
      Result<FrameHeader> header =
          DecodeFrameHeader(conn->in.data() + conn->parse_pos);
      if (!header.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendFrame(worker, conn, EncodeErrorResponse(header.status()));
        conn->close_after_flush = true;
        break;
      }
      if (available < kFrameHeaderBytes + header->payload_size) break;
      const uint8_t* payload_begin =
          conn->in.data() + conn->parse_pos + kFrameHeaderBytes;
      std::vector<uint8_t> payload(payload_begin,
                                   payload_begin + header->payload_size);
      conn->parse_pos += kFrameHeaderBytes + header->payload_size;
      HandleFrame(worker, conn, header->type, std::move(payload));
    }
    if (conn->parse_pos > 0) {
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() +
                         static_cast<ptrdiff_t>(conn->parse_pos));
      conn->parse_pos = 0;
    }
  };

  // Reads until EAGAIN/EOF. Returns false when the socket errored hard.
  auto read_and_handle = [&](const std::shared_ptr<Connection>& conn) {
    for (;;) {
      const ssize_t n =
          ::read(conn->fd.get(), read_buffer, sizeof(read_buffer));
      if (n > 0) {
        conn->in.insert(conn->in.end(), read_buffer, read_buffer + n);
        if (static_cast<size_t>(n) < sizeof(read_buffer)) break;
        continue;
      }
      if (n == 0) {
        // Peer finished sending: answer what we have, then close.
        conn->close_after_flush = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    parse_frames(conn);
    return true;
  };

  auto reap = [&] {
    auto& conns = worker->conns;
    for (size_t i = 0; i < conns.size();) {
      Connection* conn = conns[i].get();
      // Read in_flight before ready: FinishPredict pushes the response
      // first and decrements after, so idle==true (acquire pairing with
      // the acq_rel decrement) guarantees every response is visible in
      // `ready` by the time we check it.
      const bool idle =
          conn->in_flight.load(std::memory_order_acquire) == 0;
      const bool flushed = conn->out.empty() && [&] {
        std::lock_guard<std::mutex> lock(conn->ready_mu);
        return conn->ready.empty();
      }();
      if ((conn->dead.load(std::memory_order_relaxed) && idle) ||
          (conn->close_after_flush && flushed && idle)) {
        conn->dead.store(true, std::memory_order_relaxed);
        conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
        continue;
      }
      ++i;
    }
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    for (auto& conn : worker->conns) DrainReady(conn.get());
    for (auto& conn : worker->conns) {
      if (!conn->dead.load(std::memory_order_relaxed) &&
          !FlushWrites(conn.get())) {
        conn->dead.store(true, std::memory_order_relaxed);
      }
    }
    reap();

    pfds.clear();
    pfds.push_back({worker->wake_read.get(), POLLIN, 0});
    pfds.push_back({listener_.get(), POLLIN, 0});
    for (auto& conn : worker->conns) {
      short events = 0;
      if (!conn->close_after_flush) events |= POLLIN;
      if (!conn->out.empty()) events |= POLLOUT;
      pfds.push_back({conn->fd.get(), events, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), kPollTimeoutMs);
    if (ready < 0 && errno != EINTR) break;

    DrainWakePipe(worker->wake_read.get());
    if (worker->index == 0 &&
        swap_requested_.exchange(false, std::memory_order_acq_rel)) {
      ExecuteQueuedSwap();
    }
    // Freshly accepted connections are polled next iteration; only the
    // pfds-backed prefix of `conns` has revents to inspect.
    const size_t polled_conns = pfds.size() - 2;
    if (pfds[1].revents & POLLIN) accept_all();

    for (size_t i = 0; i < polled_conns; ++i) {
      const std::shared_ptr<Connection>& conn = worker->conns[i];
      const short revents = pfds[2 + i].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        conn->dead.store(true, std::memory_order_relaxed);
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        if (!read_and_handle(conn)) {
          conn->dead.store(true, std::memory_order_relaxed);
        }
      }
    }
  }

  // Drain phase: the batcher has been (or is being) drained; flush every
  // remaining response, bounded by a deadline so a stalled client cannot
  // wedge shutdown.
  Stopwatch drain_timer;
  for (;;) {
    for (auto& conn : worker->conns) DrainReady(conn.get());
    bool pending = false;
    for (auto& conn : worker->conns) {
      if (conn->dead.load(std::memory_order_relaxed)) continue;
      if (!FlushWrites(conn.get())) {
        conn->dead.store(true, std::memory_order_relaxed);
        continue;
      }
      if (!conn->out.empty() ||
          conn->in_flight.load(std::memory_order_acquire) > 0) {
        pending = true;
      }
    }
    for (auto& conn : worker->conns) {
      std::lock_guard<std::mutex> lock(conn->ready_mu);
      if (!conn->ready.empty()) pending = true;
    }
    if (!pending || drain_timer.ElapsedSeconds() > kDrainDeadlineSeconds) {
      break;
    }
    pfds.clear();
    pfds.push_back({worker->wake_read.get(), POLLIN, 0});
    for (auto& conn : worker->conns) {
      if (!conn->out.empty() &&
          !conn->dead.load(std::memory_order_relaxed)) {
        pfds.push_back({conn->fd.get(), POLLOUT, 0});
      }
    }
    (void)::poll(pfds.data(), pfds.size(), kPollTimeoutMs);
    DrainWakePipe(worker->wake_read.get());
  }
  for (auto& conn : worker->conns) {
    conn->dead.store(true, std::memory_order_relaxed);
  }
  worker->conns.clear();
}

}  // namespace t3
