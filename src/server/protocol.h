#ifndef T3_SERVER_PROTOCOL_H_
#define T3_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace t3 {

/// The "t3p1" wire protocol of the prediction server: length-prefixed binary
/// frames over TCP, strictly little-endian, strictly validated. One frame:
///
///   offset  size  field
///   0       4     magic "t3p1"
///   4       1     message type (MessageType)
///   5       1     flags, must be 0
///   6       2     reserved, must be 0
///   8       4     payload length (uint32 LE), <= kMaxPayloadBytes
///   12      ...   payload
///
/// Doubles travel as their IEEE-754 bit pattern in little-endian uint64 —
/// predictions are bit-exact across the wire, the same contract as the text
/// formats' %.17g. Every decoder consumes the entire payload: truncated and
/// trailing bytes are protocol errors, mirroring the strict parsers of the
/// corpus/model text formats.
///
/// Request/response pairing is FIFO per connection for prediction requests
/// (they funnel through one batching queue). Admin requests (swap, stats,
/// shutdown) are answered inline by the handling worker and may overtake
/// in-flight prediction responses, so admin clients should use a dedicated
/// connection (t3_loadgen does).
inline constexpr uint8_t kMagic[4] = {'t', '3', 'p', '1'};
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;  // 16 MiB
/// Row caps of one kPredictRows frame; 8192 x 48 features is ~3 MiB.
inline constexpr uint32_t kMaxRowsPerRequest = 8192;
inline constexpr uint32_t kMaxFeaturesPerRow = 4096;

enum class MessageType : uint8_t {
  // Requests.
  kPredictRows = 1,  ///< Feature rows + input cardinalities -> predictions.
  kPredictPlan = 2,  ///< "t3plan v1" skeleton text -> one query prediction.
  kSwapModel = 3,    ///< Hot-swap: payload = model path ("" = server default).
  kStats = 4,        ///< Server counters as text.
  kShutdown = 5,     ///< Graceful stop (servers may refuse; see options).

  // Responses.
  kPredictOk = 16,  ///< Model version + predicted seconds per row.
  kError = 17,      ///< StatusCode + message; the request had no effect.
  kSwapOk = 18,     ///< Version now being served.
  kStatsOk = 19,    ///< Stats text.
  kShutdownOk = 20, ///< Acknowledged; the server drains and exits.
};

/// True for the type values the protocol defines (unknown types are rejected
/// at the header, before the payload is read).
bool IsKnownMessageType(uint8_t type);

/// A decoded frame: type plus raw payload bytes.
struct Frame {
  MessageType type = MessageType::kError;
  std::vector<uint8_t> payload;
};

/// Validated fixed-size header of an incoming frame.
struct FrameHeader {
  MessageType type = MessageType::kError;
  uint32_t payload_size = 0;
};

/// Serializes header + payload into wire bytes.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

/// Decodes `data[0..kFrameHeaderBytes)`: checks magic, known type, zero
/// flags/reserved, and the payload-length cap. InvalidArgument on any
/// violation — the server answers with kError and closes.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data);

/// Decodes exactly one whole frame occupying `size` bytes (header +
/// payload, no trailing bytes). The strict entry used by blocking clients
/// and tests; the server decodes incrementally from its read buffer.
Result<Frame> DecodeFrame(const uint8_t* data, size_t size);

// --- kPredictRows ---

/// A batch of feature rows to predict. `rows` is row-major
/// (num_rows x num_features); `input_cardinalities` has one entry per row
/// and feeds the per-tuple scaling exactly like
/// T3Model::PredictPipelineSeconds (ignored by per-pipeline/per-query
/// models).
struct PredictRowsRequest {
  uint32_t num_features = 0;
  std::vector<double> rows;
  std::vector<double> input_cardinalities;

  size_t num_rows() const { return input_cardinalities.size(); }
};

Frame EncodePredictRows(const PredictRowsRequest& request);
Result<PredictRowsRequest> DecodePredictRows(const Frame& frame);

// --- kPredictOk ---

/// Predicted seconds per requested row (one value for kPredictPlan), plus
/// the version of the model that produced every one of them — a batch is
/// always served by a single model snapshot, never half-and-half across a
/// hot swap.
struct PredictResponse {
  uint32_t model_version = 0;
  std::vector<double> predictions;
};

Frame EncodePredictResponse(const PredictResponse& response);
Result<PredictResponse> DecodePredictResponse(const Frame& frame);

// --- kError ---

struct ErrorResponse {
  StatusCode code = StatusCode::kInvalidArgument;
  std::string message;
};

Frame EncodeErrorResponse(const ErrorResponse& response);
Result<ErrorResponse> DecodeErrorResponse(const Frame& frame);

/// The kError frame for a Status (must be non-OK).
Frame EncodeErrorResponse(const Status& status);

// --- Text/empty payload helpers ---

/// kPredictPlan, kSwapModel, and kStatsOk carry UTF-8 text payloads.
Frame EncodeTextFrame(MessageType type, std::string_view text);

/// kSwapOk carries the new model version.
Frame EncodeSwapResponse(uint32_t model_version);
Result<uint32_t> DecodeSwapResponse(const Frame& frame);

/// kStats, kShutdown, kShutdownOk carry empty payloads.
Frame EncodeEmptyFrame(MessageType type);

}  // namespace t3

#endif  // T3_SERVER_PROTOCOL_H_
