#include "server/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"

namespace t3 {

Result<PredictionClient> PredictionClient::Connect(const std::string& host,
                                                   uint16_t port,
                                                   double timeout_seconds) {
  Status sigpipe = IgnoreSigPipe();
  if (!sigpipe.ok()) return sigpipe;
  Stopwatch timer;
  for (;;) {
    Result<ScopedFd> fd = ConnectTcp(host, port);
    if (fd.ok()) return PredictionClient(*std::move(fd));
    if (timer.ElapsedSeconds() >= timeout_seconds) return fd.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status PredictionClient::RawSend(const void* data, size_t size) {
  return WriteFull(fd_.get(), data, size);
}

Result<Frame> PredictionClient::RawReceive() {
  uint8_t header[kFrameHeaderBytes];
  Status status = ReadFull(fd_.get(), header, sizeof(header));
  if (!status.ok()) return status;
  Result<FrameHeader> decoded = DecodeFrameHeader(header);
  if (!decoded.ok()) return decoded.status();
  Frame frame;
  frame.type = decoded->type;
  frame.payload.resize(decoded->payload_size);
  if (decoded->payload_size > 0) {
    status = ReadFull(fd_.get(), frame.payload.data(), frame.payload.size());
    if (!status.ok()) return status;
  }
  return frame;
}

Result<Frame> PredictionClient::RoundTrip(const Frame& frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  Status status = RawSend(bytes.data(), bytes.size());
  if (!status.ok()) return status;
  return RawReceive();
}

namespace {

/// Converts a kError reply into its carried status; anything other than
/// `expected` is a protocol violation.
Status ExpectType(const Frame& frame, MessageType expected) {
  if (frame.type == expected) return Status::OK();
  if (frame.type == MessageType::kError) {
    Result<ErrorResponse> error = DecodeErrorResponse(frame);
    if (!error.ok()) return error.status();
    return Status(error->code, std::move(error->message));
  }
  return InvalidArgumentError(
      StrFormat("server replied with unexpected message type %d",
                static_cast<int>(frame.type)));
}

}  // namespace

Result<PredictResponse> PredictionClient::PredictRows(
    const PredictRowsRequest& request) {
  Result<Frame> reply = RoundTrip(EncodePredictRows(request));
  if (!reply.ok()) return reply.status();
  Status status = ExpectType(*reply, MessageType::kPredictOk);
  if (!status.ok()) return status;
  return DecodePredictResponse(*reply);
}

Result<PredictResponse> PredictionClient::PredictPlan(
    std::string_view plan_text) {
  Result<Frame> reply =
      RoundTrip(EncodeTextFrame(MessageType::kPredictPlan, plan_text));
  if (!reply.ok()) return reply.status();
  Status status = ExpectType(*reply, MessageType::kPredictOk);
  if (!status.ok()) return status;
  return DecodePredictResponse(*reply);
}

Result<uint32_t> PredictionClient::Swap(const std::string& path) {
  Result<Frame> reply =
      RoundTrip(EncodeTextFrame(MessageType::kSwapModel, path));
  if (!reply.ok()) return reply.status();
  Status status = ExpectType(*reply, MessageType::kSwapOk);
  if (!status.ok()) return status;
  return DecodeSwapResponse(*reply);
}

Result<std::string> PredictionClient::Stats() {
  Result<Frame> reply = RoundTrip(EncodeEmptyFrame(MessageType::kStats));
  if (!reply.ok()) return reply.status();
  Status status = ExpectType(*reply, MessageType::kStatsOk);
  if (!status.ok()) return status;
  return std::string(reinterpret_cast<const char*>(reply->payload.data()),
                     reply->payload.size());
}

Status PredictionClient::Shutdown() {
  Result<Frame> reply = RoundTrip(EncodeEmptyFrame(MessageType::kShutdown));
  if (!reply.ok()) return reply.status();
  return ExpectType(*reply, MessageType::kShutdownOk);
}

}  // namespace t3
