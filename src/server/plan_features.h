#ifndef T3_SERVER_PLAN_FEATURES_H_
#define T3_SERVER_PLAN_FEATURES_H_

#include <string_view>
#include <vector>

#include "common/status.h"

namespace t3 {

/// The prediction input derived from one serialized plan: per-pipeline
/// feature rows (row-major, kFeatureDim wide) plus each pipeline's driving
/// cardinality — exactly what a kPredictRows request would carry, so both
/// request kinds share the batching path and the per-row seconds
/// conversion. The query prediction is the pipeline predictions summed in
/// pipeline order (the PredictQuerySeconds convention).
struct PlanPredictionInput {
  size_t num_features = 0;
  std::vector<double> rows;
  std::vector<double> input_cardinalities;

  size_t num_rows() const { return input_cardinalities.size(); }
};

/// Parses "t3plan v1" skeleton text, validates the plan, decomposes it into
/// pipelines, and featurizes using the plan's own cardinality annotations
/// (the estimated-cardinality featurization — a fresh plan has no measured
/// counts yet). Skeleton plans carry no filter payloads, so the
/// predicate-class feature slots stay zero and no catalog is consulted.
/// InvalidArgument on malformed text or an invalid plan.
Result<PlanPredictionInput> BuildPlanPredictionInput(
    std::string_view plan_text);

}  // namespace t3

#endif  // T3_SERVER_PLAN_FEATURES_H_
