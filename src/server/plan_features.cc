#include "server/plan_features.h"

#include <utility>

#include "features/featurizer.h"
#include "plan/pipeline.h"
#include "plan/plan.h"
#include "plan/plan_file.h"
#include "storage/catalog.h"

namespace t3 {

Result<PlanPredictionInput> BuildPlanPredictionInput(
    std::string_view plan_text) {
  Result<std::vector<PlanNodeRecord>> records = ParsePlanText(plan_text);
  if (!records.ok()) return records.status();
  Result<PhysicalPlan> plan = PlanFromRecords(*records);
  if (!plan.ok()) return plan.status();
  Result<PipelineDecomposition> decomposition = DecomposePipelines(*plan);
  if (!decomposition.ok()) return decomposition.status();

  // Skeletons carry no filter payloads, so featurization never touches the
  // catalog (see ComputePipelineFeatures); an empty one satisfies the API.
  const Catalog empty_catalog;
  Result<std::vector<PipelineFeatureVector>> features =
      ComputePipelineFeatures(empty_catalog, *plan, *decomposition,
                              NodeOutputRowsFromPlan(*plan));
  if (!features.ok()) return features.status();

  PlanPredictionInput input;
  for (const PipelineFeatureVector& pipeline : *features) {
    if (input.num_features == 0) {
      input.num_features = pipeline.values.size();
      input.rows.reserve(features->size() * input.num_features);
    }
    input.rows.insert(input.rows.end(), pipeline.values.begin(),
                      pipeline.values.end());
    input.input_cardinalities.push_back(pipeline.input_cardinality);
  }
  if (input.num_rows() == 0) {
    return InvalidArgumentError("plan decomposes into zero pipelines");
  }
  return input;
}

}  // namespace t3
