#ifndef T3_SERVER_BATCHER_H_
#define T3_SERVER_BATCHER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "server/serving_model.h"

namespace t3 {

class ThreadPool;

/// Counters of the batching engine, for the kStats response and the
/// loadgen/bench reports. `max_batch_rows_seen` shows whether concurrent
/// load actually coalesces (the whole point of the batcher).
struct BatcherStats {
  uint64_t jobs = 0;
  uint64_t rows = 0;
  uint64_t batches = 0;
  uint64_t max_batch_rows_seen = 0;

  double RowsPerBatch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(rows) /
                              static_cast<double>(batches);
  }
};

/// Coalesces concurrent prediction requests into single PredictBatch calls
/// on the SIMD path. Connection workers submit jobs (feature rows + a
/// completion callback) and continue serving other sockets; one inference
/// loop drains the queue, packs every waiting job into one row-major matrix
/// (up to max_batch_rows), snapshots the current model once, runs one
/// PredictBatch, and invokes the callbacks. Coalescing therefore scales
/// with the number of requests in flight, not with worker count.
///
/// Contract:
///  - jobs are processed FIFO, callbacks invoked in submission order (the
///    per-connection response-ordering guarantee of the protocol);
///  - every job of one batch is served by the same model snapshot; a hot
///    swap between batches never splits a batch across versions;
///  - Stop() drains: every job submitted before Stop returns is completed,
///    never dropped. Jobs submitted after Stop fail with Unavailable.
///
/// Callbacks run on the inference loop and must be quick (encode + enqueue
/// bytes); anything slow would stall batching for every connection.
class RequestBatcher {
 public:
  /// A completed job: the snapshot that served it plus the raw forest
  /// outputs (transformed domain) for the job's rows, in row order.
  struct Reply {
    std::shared_ptr<const ServingModel> model;
    std::vector<double> raw;
  };
  using Callback = std::function<void(Result<Reply>)>;

  struct Options {
    /// Row cap of one coalesced PredictBatch call; jobs beyond it wait for
    /// the next batch (one job is never split).
    size_t max_batch_rows = 16384;
  };

  RequestBatcher(const ModelRegistry* registry, Options options);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Runs the inference loop on `pool` until Stop(). Call exactly once.
  void Start(ThreadPool* pool);

  /// Drains the queue (completing every submitted job), then stops the
  /// inference loop and joins it. Idempotent.
  void Stop();

  /// Enqueues `num_rows` rows (row-major, `rows.size() == num_rows * dim`
  /// where dim is the serving model's feature count — validated against
  /// the snapshot that ends up serving the batch). `done` is invoked
  /// exactly once, on the inference thread.
  void Submit(std::vector<double> rows, size_t num_rows, Callback done);

  BatcherStats stats() const;

 private:
  struct Job {
    std::vector<double> rows;
    size_t num_rows = 0;
    Callback done;
  };

  void Loop();

  const ModelRegistry* registry_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;  ///< Signals queue drained + loop parked.
  std::deque<Job> queue_;
  bool stopping_ = false;
  bool loop_running_ = false;
  BatcherStats stats_;
};

}  // namespace t3

#endif  // T3_SERVER_BATCHER_H_
