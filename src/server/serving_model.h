#ifndef T3_SERVER_SERVING_MODEL_H_
#define T3_SERVER_SERVING_MODEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "model/t3_model.h"
#include "treejit/evaluator.h"
#include "treejit/jit.h"

namespace t3 {

/// One immutable, versioned model snapshot the server predicts with: the
/// T3Model plus its compiled evaluators. Snapshots are shared read-only
/// across worker threads and batches via shared_ptr<const ServingModel>;
/// a hot swap publishes a new snapshot and in-flight batches finish on the
/// old one (the shared_ptr keeps it alive), so no request is ever dropped
/// or served by a half-swapped model.
struct ServingModel {
  T3Model model;
  /// JIT-compiled forest (with the SIMD batch kernels when available);
  /// null when compilation is unsupported on this host.
  std::unique_ptr<CompiledForest> compiled;
  /// Flattened-interpreter fallback; always present, bit-identical.
  std::unique_ptr<FlatEvaluator> flat;
  uint32_t version = 0;
  std::string source;  ///< File path or a descriptive tag, for stats.

  /// The fastest available evaluator (compiled, else flat). Every
  /// ForestEvaluator is bit-identical to Forest::Predict, so the choice
  /// never changes results.
  const ForestEvaluator& evaluator() const {
    return compiled != nullptr
               ? static_cast<const ForestEvaluator&>(*compiled)
               : *flat;
  }

  int num_features() const { return model.forest().num_features; }

  /// Raw forest output -> predicted pipeline seconds, the exact operation
  /// sequence of T3Model::PredictPipelineSeconds (inverse transform, then
  /// per-tuple cardinality scaling) so batched server predictions bit-match
  /// the direct model call.
  double RowSeconds(double raw, double input_cardinality) const {
    const double seconds = InverseTransformTarget(raw);
    if (model.target() == PredictionTarget::kPerTuple) {
      return seconds * std::max(input_cardinality, 1.0);
    }
    return seconds;
  }
};

/// Wraps `model` as a serving snapshot: re-proves text-format bit-exactness
/// (serialize -> reparse -> ForestDiff must bound divergence at exactly
/// zero — the same proof Workbench::GetModel runs on freshly written
/// caches), then compiles the JIT evaluators. InternalError when the proof
/// fails; a model that cannot be proven is never published.
Result<std::shared_ptr<const ServingModel>> MakeServingModel(
    T3Model model, uint32_t version, std::string source);

/// MakeServingModel over T3Model::LoadFromFile(path) — the hot-swap loader.
Result<std::shared_ptr<const ServingModel>> LoadServingModel(
    const std::string& path, uint32_t version);

/// The server's versioned model slot. Publish/Current form a
/// release/acquire pair through `mu_` (mutex unlock releases, the next
/// lock acquires):
///
///  - publishing under the lock makes every write that built the snapshot
///    (forest arrays, mapped JIT code, the mprotect to PROT_EXEC) visible
///    to any thread whose Current() observes the new pointer;
///  - readers copy the shared_ptr inside the critical section and hold the
///    reference outside it, so the old snapshot outlives every batch still
///    predicting with it and is freed when the last reference drops.
///
/// Current() is one uncontended lock + shared_ptr copy, taken once per
/// coalesced batch — not per row — so it is never on the per-prediction
/// hot path. (std::atomic<std::shared_ptr> would make the read lock-free,
/// but libstdc++'s lock-bit implementation is opaque to ThreadSanitizer
/// and CI runs the server tests under TSan.)
///
/// Swap versions continue strictly increasing from the initial snapshot's.
class ModelRegistry {
 public:
  /// Takes the initial snapshot (conventionally version 1).
  explicit ModelRegistry(std::shared_ptr<const ServingModel> initial);

  /// The current snapshot (never null).
  std::shared_ptr<const ServingModel> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Loads `path`, re-proves bit-exactness, rejects a model whose feature
  /// count differs from the currently served one (in-flight requests were
  /// validated against that width), assigns the next version, and
  /// publishes. Serialized internally; concurrent swaps queue.
  Result<uint32_t> SwapFromFile(const std::string& path);

  uint32_t num_swaps() const {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex swap_mu_;  ///< Serializes SwapFromFile (not the readers).
  mutable std::mutex mu_;  ///< Guards `current_`.
  std::shared_ptr<const ServingModel> current_;
  std::atomic<uint32_t> next_version_{2};
  std::atomic<uint32_t> swaps_{0};
};

}  // namespace t3

#endif  // T3_SERVER_SERVING_MODEL_H_
