#include "server/serving_model.h"

#include <utility>

#include "analysis/forest_diff.h"
#include "common/check.h"
#include "common/string_util.h"

namespace t3 {

Result<std::shared_ptr<const ServingModel>> MakeServingModel(
    T3Model model, uint32_t version, std::string source) {
  // Re-prove the text-format round trip before this model can ever be
  // published: serialize, reparse, and statically bound the divergence over
  // the whole feature space. The serializer is %.17g-bit-exact, so anything
  // but a proven zero means the artifact would not survive a cache
  // write/reload cycle — refuse to serve it.
  Result<Forest> reparsed = Forest::FromText(model.forest().ToText());
  if (!reparsed.ok()) {
    return InternalError(StrFormat(
        "model %s fails its own serialization round trip: %s",
        source.c_str(), reparsed.status().ToString().c_str()));
  }
  Result<ForestDiffBounds> drift = ForestDiff(model.forest(), *reparsed);
  if (!drift.ok()) return drift.status();
  if (drift->MaxAbs() != 0.0) {
    return InternalError(StrFormat(
        "model %s drifts from its serialized form by up to %.17g",
        source.c_str(), drift->MaxAbs()));
  }

  auto serving = std::make_shared<ServingModel>();
  serving->model = std::move(model);
  serving->version = version;
  serving->source = std::move(source);
  serving->flat = std::make_unique<FlatEvaluator>(serving->model.forest());
  Result<std::unique_ptr<CompiledForest>> compiled =
      CompiledForest::Compile(serving->model.forest());
  if (compiled.ok()) {
    serving->compiled = *std::move(compiled);
  }
  // Compile failure (non-x86-64, mmap denial) is not fatal: the flat
  // fallback is bit-identical, just slower.
  return std::shared_ptr<const ServingModel>(std::move(serving));
}

Result<std::shared_ptr<const ServingModel>> LoadServingModel(
    const std::string& path, uint32_t version) {
  Result<T3Model> model = T3Model::LoadFromFile(path);
  if (!model.ok()) return model.status();
  return MakeServingModel(*std::move(model), version, path);
}

ModelRegistry::ModelRegistry(std::shared_ptr<const ServingModel> initial) {
  T3_CHECK(initial != nullptr);
  next_version_.store(initial->version + 1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(initial);
}

Result<uint32_t> ModelRegistry::SwapFromFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  const std::shared_ptr<const ServingModel> serving = Current();
  const uint32_t version = next_version_.load(std::memory_order_relaxed);
  Result<std::shared_ptr<const ServingModel>> loaded =
      LoadServingModel(path, version);
  if (!loaded.ok()) return loaded.status();
  if ((*loaded)->num_features() != serving->num_features()) {
    return FailedPreconditionError(StrFormat(
        "hot swap rejected: %s has %d features, the served model has %d",
        path.c_str(), (*loaded)->num_features(), serving->num_features()));
  }
  next_version_.store(version + 1, std::memory_order_relaxed);
  swaps_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = *std::move(loaded);
  }
  return version;
}

}  // namespace t3
