#include "server/batcher.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace t3 {

RequestBatcher::RequestBatcher(const ModelRegistry* registry,
                               Options options)
    : registry_(registry), options_(options) {
  T3_CHECK(registry_ != nullptr);
  T3_CHECK(options_.max_batch_rows > 0);
}

RequestBatcher::~RequestBatcher() { Stop(); }

void RequestBatcher::Start(ThreadPool* pool) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    T3_CHECK(!loop_running_);
    loop_running_ = true;
  }
  pool->Submit([this] { Loop(); });
}

void RequestBatcher::Stop() {
  std::unique_lock<std::mutex> lock(mu_);
  stopping_ = true;
  work_available_.notify_all();
  idle_.wait(lock, [this] { return !loop_running_ && queue_.empty(); });
}

void RequestBatcher::Submit(std::vector<double> rows, size_t num_rows,
                            Callback done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      Job job;
      job.rows = std::move(rows);
      job.num_rows = num_rows;
      job.done = std::move(done);
      queue_.push_back(std::move(job));
      stats_.jobs++;
      work_available_.notify_one();
      return;
    }
  }
  done(UnavailableError("prediction batcher is shutting down"));
}

BatcherStats RequestBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RequestBatcher::Loop() {
  std::vector<Job> batch;
  std::vector<double> matrix;
  std::vector<double> raw;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Stopping with a drained queue: park and wake Stop().
        loop_running_ = false;
        idle_.notify_all();
        return;
      }
      // Coalesce every waiting job up to the row cap; a single oversized
      // job still forms its own batch (never split, never starved).
      size_t batch_rows = 0;
      while (!queue_.empty()) {
        Job& next = queue_.front();
        if (!batch.empty() &&
            batch_rows + next.num_rows > options_.max_batch_rows) {
          break;
        }
        batch_rows += next.num_rows;
        batch.push_back(std::move(next));
        queue_.pop_front();
      }
      stats_.batches++;
      stats_.rows += batch_rows;
      stats_.max_batch_rows_seen =
          std::max<uint64_t>(stats_.max_batch_rows_seen, batch_rows);
    }

    // One model snapshot per batch: every job in it is answered by the
    // same version, and a concurrent hot swap only affects later batches.
    const std::shared_ptr<const ServingModel> model = registry_->Current();
    const size_t dim = static_cast<size_t>(model->num_features());

    matrix.clear();
    size_t total_rows = 0;
    for (const Job& job : batch) {
      if (job.rows.size() != job.num_rows * dim) continue;
      matrix.insert(matrix.end(), job.rows.begin(), job.rows.end());
      total_rows += job.num_rows;
    }

    raw.assign(total_rows, 0.0);
    if (total_rows > 0) {
      model->evaluator().PredictBatch(matrix.data(), total_rows, dim,
                                      raw.data());
    }

    size_t cursor = 0;
    for (Job& job : batch) {
      if (job.rows.size() != job.num_rows * dim) {
        job.done(InvalidArgumentError(StrFormat(
            "request rows have %zu values for %zu rows of the served "
            "model's %zu features",
            job.rows.size(), job.num_rows, dim)));
        continue;
      }
      Reply reply;
      reply.model = model;
      reply.raw.assign(raw.begin() + static_cast<ptrdiff_t>(cursor),
                       raw.begin() +
                           static_cast<ptrdiff_t>(cursor + job.num_rows));
      cursor += job.num_rows;
      job.done(std::move(reply));
    }
    batch.clear();
  }
}

}  // namespace t3
