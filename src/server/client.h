#ifndef T3_SERVER_CLIENT_H_
#define T3_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/net.h"
#include "common/status.h"
#include "server/protocol.h"

namespace t3 {

/// Blocking request/response client for the "t3p1" protocol — the shared
/// transport of t3_loadgen, the CI smoke test, and the server tests. One
/// client per connection; a client instance is not thread-safe (open one
/// per loadgen connection instead).
class PredictionClient {
 public:
  /// Connects to `host:port`, retrying for up to `timeout_seconds` (the
  /// server may still be binding when a test or smoke script races it).
  static Result<PredictionClient> Connect(const std::string& host,
                                          uint16_t port,
                                          double timeout_seconds = 5.0);

  PredictionClient(PredictionClient&&) = default;
  PredictionClient& operator=(PredictionClient&&) = default;

  /// kPredictRows round trip. A kError reply surfaces as the carried
  /// status.
  Result<PredictResponse> PredictRows(const PredictRowsRequest& request);

  /// kPredictPlan round trip over "t3plan v1" skeleton text; the response
  /// holds one summed query prediction.
  Result<PredictResponse> PredictPlan(std::string_view plan_text);

  /// kSwapModel round trip; empty path = the server's default swap path.
  /// Returns the version now being served.
  Result<uint32_t> Swap(const std::string& path = "");

  /// kStats round trip; returns the "key value" lines.
  Result<std::string> Stats();

  /// kShutdown round trip; resolves once the server acknowledged.
  Status Shutdown();

  /// Sends `frame` and returns the server's reply — the raw layer the
  /// protocol tests drive directly (including deliberately bad frames via
  /// RawSend + RawReceive below).
  Result<Frame> RoundTrip(const Frame& frame);

  /// Writes arbitrary bytes to the socket (malformed-frame tests).
  Status RawSend(const void* data, size_t size);

  /// Reads one well-formed frame off the socket.
  Result<Frame> RawReceive();

  int fd() const { return fd_.get(); }

 private:
  explicit PredictionClient(ScopedFd fd) : fd_(std::move(fd)) {}

  ScopedFd fd_;
};

}  // namespace t3

#endif  // T3_SERVER_CLIENT_H_
