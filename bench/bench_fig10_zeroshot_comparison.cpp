// Reproduces Figure 10: accuracy comparison of T3 and the Zero-Shot-style
// NN on the JOB-like queries (join-heavy workload on the IMDB-like
// instance), both trained on other database instances, with exact
// cardinalities.

#include "baselines/zeroshot.h"
#include "bench_util.h"

namespace t3 {
namespace {

bool IsImdb(const QueryRecord& r) { return r.instance.rfind("imdb", 0) == 0; }

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();

  // Both models are trained on everything except the IMDB-like instance
  // (and except the TPC-DS-like test family, as always).
  auto train_filter = [](const QueryRecord& r) {
    return !r.is_test && !IsImdb(r);
  };
  const T3Model& t3 = workbench.GetModel("t3_no_imdb", CardinalityMode::kTrue,
                                         train_filter);
  std::unique_ptr<ZeroShotModel> zero_shot;
  {
    const std::string path =
        workbench.data_dir() + "/model_zeroshot_no_imdb.txt";
    auto cached = ReadFileToString(path);
    if (cached.ok()) {
      auto loaded = ZeroShotModel::Load(cached.value());
      if (loaded.ok()) zero_shot = std::move(loaded).value();
    }
    if (zero_shot == nullptr) {
      auto trained =
          ZeroShotModel::Train(SelectRecords(corpus, train_filter),
                               CardinalityMode::kTrue, ZeroShotConfig());
      T3_CHECK(trained.ok());
      zero_shot = std::move(trained).value();
      T3_CHECK_OK(WriteStringToFile(path, zero_shot->Serialize()));
    }
  }

  const auto job_records = SelectRecords(corpus, bench::IsJobSuite);
  T3_CHECK(!job_records.empty()) << "corpus lacks the JOB-like suite";

  const QErrorSummary t3_summary =
      Summarize(EvaluateModel(t3, job_records, CardinalityMode::kTrue));
  std::vector<double> nn_qerrors;
  for (const auto* record : job_records) {
    const double pred =
        zero_shot->PredictQuerySeconds(*record, CardinalityMode::kTrue);
    nn_qerrors.push_back(QError(pred, record->median_seconds, 1e-7));
  }
  const QErrorSummary nn_summary = Summarize(nn_qerrors);

  PrintExperimentHeader(
      "Figure 10: T3 vs Zero Shot on the Join Order Benchmark (like) "
      "queries",
      "the paper finds T3's p50 approximately equal to Zero Shot's, with "
      "better p90 and avg. Claim under test: the compiled tree matches the "
      "NN on this workload.");
  ReportTable table({"Model", "n", "p50", "p90", "Avg"});
  table.AddRow({"Zero Shot-like (NN)", StrFormat("%zu", nn_summary.count),
                bench::FormatQ(nn_summary.p50), bench::FormatQ(nn_summary.p90),
                bench::FormatQ(nn_summary.avg)});
  table.AddRow({"T3", StrFormat("%zu", t3_summary.count),
                bench::FormatQ(t3_summary.p50), bench::FormatQ(t3_summary.p90),
                bench::FormatQ(t3_summary.avg)});
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
