#ifndef T3_BENCH_BENCH_UTIL_H_
#define T3_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "harness/corpus.h"
#include "harness/evaluate.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/workbench.h"

namespace t3 {
namespace bench {

/// The shared workbench of all experiment binaries. Every bench binary run
/// from the repository root reuses the cache in ./data; T3_DATA_DIR
/// redirects the cache (CI smoke runs use a scratch directory so their
/// quick-mode models never shadow the real ones).
inline Workbench& SharedWorkbench() {
  static Workbench* workbench = [] {
    const char* dir = std::getenv("T3_DATA_DIR");
    return new Workbench(dir != nullptr && dir[0] != '\0' ? dir : "data");
  }();
  return *workbench;
}

// --- Record filters of the standard evaluation splits. ---

inline bool IsTrain(const QueryRecord& r) { return !r.is_test; }
inline bool IsTest(const QueryRecord& r) { return r.is_test; }
inline bool IsTestFixed(const QueryRecord& r) {
  return r.is_test && r.fixed_suite;
}
inline bool IsJobSuite(const QueryRecord& r) {
  return r.fixed_suite && r.instance.rfind("imdb", 0) == 0;
}

/// Median wall-clock latency (seconds) of `fn` over `iterations` calls,
/// after `warmup` unmeasured calls. Measures each call individually, which
/// is what "single query prediction latency" means in the paper.
inline double MedianLatencySeconds(const std::function<void()>& fn,
                                   int iterations = 2000, int warmup = 200) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    Stopwatch timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  return Median(samples);
}

/// Latency distribution and throughput of one batched prediction call.
struct BatchTiming {
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double preds_per_sec = 0.0;  ///< rows_per_call / p50_seconds.
};

/// Times `fn` — one batched call predicting `rows_per_call` rows — and
/// reports p50/p99 call latency plus p50-derived predictions per second,
/// the batch-matrix metric of the throughput benches.
inline BatchTiming MeasureBatchThroughput(const std::function<void()>& fn,
                                          size_t rows_per_call,
                                          int iterations = 200,
                                          int warmup = 20) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    Stopwatch timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  BatchTiming timing;
  timing.p50_seconds = Quantile(samples, 0.5);
  timing.p99_seconds = Quantile(samples, 0.99);
  if (timing.p50_seconds > 0) {
    timing.preds_per_sec =
        static_cast<double>(rows_per_call) / timing.p50_seconds;
  }
  return timing;
}

/// Throughput in calls/second of `fn` measured over a fixed wall budget.
inline double Throughput(const std::function<void()>& fn,
                         double budget_seconds = 0.5) {
  // Warm up.
  for (int i = 0; i < 100; ++i) fn();
  Stopwatch timer;
  int64_t calls = 0;
  while (timer.ElapsedSeconds() < budget_seconds) {
    for (int i = 0; i < 50; ++i) fn();
    calls += 50;
  }
  return static_cast<double>(calls) / timer.ElapsedSeconds();
}

/// The JOB-like workload rebuilt with full plans (the corpus drops plans;
/// Figures 12 and Tables 5/6 need them). Deterministic: regenerates the
/// corpus's IMDB-like instance and fixed suite.
struct JobWorkload {
  std::unique_ptr<Database> db;
  std::vector<GeneratedQuery> queries;        // plans annotated (est + true)
  std::vector<double> median_seconds;         // measured, `runs` runs
};

JobWorkload BuildJobWorkload(int runs = 3);

inline std::string FormatSeconds(double seconds) {
  return FormatDuration(seconds * 1e9);
}

inline std::string FormatQ(double q) { return StrFormat("%.2f", q); }

}  // namespace bench
}  // namespace t3

#endif  // T3_BENCH_BENCH_UTIL_H_
