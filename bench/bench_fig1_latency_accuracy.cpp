// Reproduces Figure 1: the latency/accuracy landscape of recent models.
// One row per model with single-query prediction latency and q-error
// accuracy on the held-out TPC-DS-like test queries.

#include "baselines/zeroshot.h"
#include "bench_util.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const auto test_records = SelectRecords(corpus, bench::IsTest);
  const auto train_records = SelectRecords(corpus, bench::IsTrain);
  T3_CHECK(!test_records.empty());

  // Models. AutoWLM-like = decision trees on one whole-query vector,
  // interpreted; T3 = per-tuple pipeline model, compiled.
  const T3Model& t3 = workbench.MainModel();
  T3Config per_query_config;
  per_query_config.target = PredictionTarget::kPerQuery;
  T3Model& autowlm = const_cast<T3Model&>(
      workbench.GetModel("autowlm_per_query", CardinalityMode::kTrue,
                         bench::IsTrain, per_query_config));
  autowlm.set_eval_mode(EvalMode::kInterpreted);

  std::unique_ptr<ZeroShotModel> zero_shot;
  {
    const std::string path = workbench.data_dir() + "/model_zeroshot_main.txt";
    auto cached = ReadFileToString(path);
    if (cached.ok()) {
      auto loaded = ZeroShotModel::Load(cached.value());
      if (loaded.ok()) zero_shot = std::move(loaded).value();
    }
    if (zero_shot == nullptr) {
      auto trained = ZeroShotModel::Train(train_records, CardinalityMode::kTrue,
                                          ZeroShotConfig());
      T3_CHECK(trained.ok());
      zero_shot = std::move(trained).value();
      T3_CHECK_OK(WriteStringToFile(path, zero_shot->Serialize()));
    }
  }

  // Accuracy on the test split.
  const auto t3_evals = EvaluateModel(t3, test_records, CardinalityMode::kTrue);
  const QErrorSummary t3_acc = Summarize(t3_evals);
  const auto wlm_evals =
      EvaluateModel(autowlm, test_records, CardinalityMode::kTrue);
  const QErrorSummary wlm_acc = Summarize(wlm_evals);
  std::vector<double> nn_qerrors;
  for (const auto* record : test_records) {
    const double pred =
        zero_shot->PredictQuerySeconds(*record, CardinalityMode::kTrue);
    nn_qerrors.push_back(QError(pred, record->median_seconds, 1e-7));
  }
  const QErrorSummary nn_acc = Summarize(nn_qerrors);

  // Latency on a typical test query.
  const QueryRecord* query = test_records[test_records.size() / 2];
  volatile double sink = 0;
  const double t3_latency = bench::MedianLatencySeconds(
      [&] { sink = t3.PredictQuerySeconds(query->feat_true); });
  const double wlm_latency = bench::MedianLatencySeconds(
      [&] { sink = autowlm.PredictQuerySeconds(query->feat_true); });
  const double nn_latency = bench::MedianLatencySeconds(
      [&] {
        sink = zero_shot->PredictQuerySeconds(*query, CardinalityMode::kTrue);
      },
      500, 50);

  PrintExperimentHeader(
      "Figure 1: Latency and accuracy of recent models",
      "the paper places T3 at ~4us with median q-error ~1.2, AutoWLM at ~1ms "
      "with much worse accuracy, Zero Shot at ~50ms with good accuracy. The "
      "claim under test: T3 is orders of magnitude faster at comparable or "
      "better accuracy.");
  ReportTable table(
      {"Model", "Latency", "p50 q-error", "p90 q-error", "avg q-error"});
  auto row = [&](const char* name, double latency, const QErrorSummary& acc) {
    table.AddRow({name, bench::FormatSeconds(latency), bench::FormatQ(acc.p50),
                  bench::FormatQ(acc.p90), bench::FormatQ(acc.avg)});
  };
  row("AutoWLM-like (query DT)", wlm_latency, wlm_acc);
  row("Zero Shot-like (NN)", nn_latency, nn_acc);
  row("T3 (ours)", t3_latency, t3_acc);
  table.Print();
  (void)sink;
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
