// Reproduces Table 6: total execution time of the JOB-like queries under
// join orders chosen by DPsize with C_out, DPsize with T3, and a
// "native optimizer" that only has cardinality estimates (DPsize with
// C_out over estimated cardinalities) — the analogue of the paper's Umbra
// default optimizer row.

#include "bench_util.h"
#include "engine/executor.h"
#include "optimizer/dpsize.h"
#include "optimizer/join_graph.h"

namespace t3 {
namespace {

/// Executes a forced plan `runs` times and returns the median total time.
double MedianExecutionSeconds(const Database& db, const QueryPlan& plan,
                              int runs) {
  Executor executor(db);
  std::vector<double> times;
  for (int run = 0; run < runs; ++run) {
    auto result = executor.Execute(plan);
    T3_CHECK(result.ok()) << result.status().ToString();
    times.push_back(result->total_seconds);
  }
  return Median(times);
}

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const T3Model& t3 = workbench.MainModel();

  std::fprintf(stderr, "[table6] rebuilding JOB-like workload with plans...\n");
  const bench::JobWorkload workload = bench::BuildJobWorkload(1);
  const Database& db = *workload.db;

  constexpr int kRuns = 3;
  double cout_total = 0;
  double t3_total = 0;
  double native_total = 0;
  size_t executed = 0;
  size_t t3_wins = 0;
  size_t cout_wins = 0;
  for (const GeneratedQuery& query : workload.queries) {
    auto graph = ExtractJoinGraph(query.plan);
    if (!graph.ok()) continue;

    CardinalityOracle exact_oracle(db, *graph);
    CoutJoinCostModel cout;
    auto cout_result = DpSize(*graph, &exact_oracle, &cout);
    if (!cout_result.ok()) continue;
    auto cout_plan = BuildOrderedPlan(db, *graph, cout_result->full_set,
                                      cout_result->splits, &exact_oracle);
    if (!cout_plan.ok()) continue;

    CardinalityOracle t3_oracle(db, *graph);
    T3JoinCostModel t3_cost(t3, db);
    auto t3_result = DpSize(*graph, &t3_oracle, &t3_cost);
    if (!t3_result.ok()) continue;
    auto t3_plan = BuildOrderedPlan(db, *graph, t3_result->full_set,
                                    t3_result->splits, &t3_oracle);
    if (!t3_plan.ok()) continue;

    CardinalityOracle est_oracle(db, *graph,
                                 CardinalityOracle::Mode::kEstimated);
    CoutJoinCostModel native_cost;
    auto native_result = DpSize(*graph, &est_oracle, &native_cost);
    if (!native_result.ok()) continue;
    // The native optimizer flips build/probe using its own (estimated)
    // cardinalities.
    auto native_plan = BuildOrderedPlan(db, *graph, native_result->full_set,
                                        native_result->splits, &est_oracle);
    if (!native_plan.ok()) continue;

    const double cout_seconds = MedianExecutionSeconds(db, *cout_plan, kRuns);
    const double t3_seconds = MedianExecutionSeconds(db, *t3_plan, kRuns);
    const double native_seconds =
        MedianExecutionSeconds(db, *native_plan, kRuns);
    cout_total += cout_seconds;
    t3_total += t3_seconds;
    native_total += native_seconds;
    if (t3_seconds < cout_seconds * 0.98) ++t3_wins;
    if (cout_seconds < t3_seconds * 0.98) ++cout_wins;
    ++executed;
  }

  PrintExperimentHeader(
      "Table 6: Execution time of JOB-like queries under forced join orders",
      "the paper: Cout 1.348s, T3 1.366s (~1.6% slower), native optimizer "
      "1.382s. Claims under test: T3's orders are close to Cout's near-"
      "optimal orders (both use exact cardinalities), and both beat the "
      "estimate-based native optimizer.");
  ReportTable table({"Cost model", "Execution time", "Queries"});
  table.AddRow({"Cout (exact cards)", bench::FormatSeconds(cout_total),
                StrFormat("%zu", executed)});
  table.AddRow({"T3 (exact cards)", bench::FormatSeconds(t3_total),
                StrFormat("%zu", executed)});
  table.AddRow({"Native (estimated cards)",
                bench::FormatSeconds(native_total),
                StrFormat("%zu", executed)});
  table.Print();
  std::printf(
      "\nT3 vs Cout: %+.1f%% total; T3 strictly faster on %zu queries, "
      "Cout strictly faster on %zu\n",
      (t3_total / cout_total - 1.0) * 100.0, t3_wins, cout_wins);
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
