// Reproduces Table 1: single-query prediction latencies of the model
// hierarchy. Rows: a Zero-Shot-style NN, a Stage-style hierarchy
// (cache + DT + NN with the paper's observed mix), T3 interpreted, and
// T3 compiled.

#include <unordered_map>

#include "baselines/stage.h"
#include "baselines/zeroshot.h"
#include "bench_util.h"
#include "common/random.h"

namespace t3 {
namespace {

void Run() {
  using bench::SharedWorkbench;
  Workbench& workbench = SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const T3Model& t3 = workbench.MainModel();

  // The Zero-Shot comparator (trained once, cached on disk).
  const auto train_records = SelectRecords(corpus, bench::IsTrain);
  std::unique_ptr<ZeroShotModel> zero_shot;
  {
    const std::string path = workbench.data_dir() + "/model_zeroshot_main.txt";
    auto cached = ReadFileToString(path);
    if (cached.ok()) {
      auto loaded = ZeroShotModel::Load(cached.value());
      if (loaded.ok()) zero_shot = std::move(loaded).value();
    }
    if (zero_shot == nullptr) {
      auto trained = ZeroShotModel::Train(train_records, CardinalityMode::kTrue,
                                          ZeroShotConfig());
      T3_CHECK(trained.ok()) << trained.status().ToString();
      zero_shot = std::move(trained).value();
      T3_CHECK_OK(WriteStringToFile(path, zero_shot->Serialize()));
    }
  }

  // "The average query": a test record with the corpus-median pipeline
  // count.
  const auto test_records = SelectRecords(corpus, bench::IsTest);
  T3_CHECK(!test_records.empty());
  std::vector<double> pipeline_counts;
  for (const auto* r : test_records) {
    pipeline_counts.push_back(static_cast<double>(r->num_pipelines()));
  }
  const double median_pipelines = Median(pipeline_counts);
  const QueryRecord* average_query = test_records[0];
  for (const auto* r : test_records) {
    if (static_cast<double>(r->num_pipelines()) == median_pipelines) {
      average_query = r;
      break;
    }
  }

  volatile double sink = 0;
  T3Model& model = const_cast<T3Model&>(t3);

  model.set_eval_mode(EvalMode::kCompiled);
  const double t3_compiled = bench::MedianLatencySeconds(
      [&] { sink = model.PredictQuerySeconds(average_query->feat_true); });
  model.set_eval_mode(EvalMode::kInterpreted);
  const double t3_interpreted = bench::MedianLatencySeconds(
      [&] { sink = model.PredictQuerySeconds(average_query->feat_true); });
  model.set_eval_mode(EvalMode::kCompiled);

  const double nn_latency = bench::MedianLatencySeconds(
      [&] {
        sink = zero_shot->PredictQuerySeconds(*average_query,
                                              CardinalityMode::kTrue);
      },
      500, 50);

  // Latency-only probe of a paper-scale NN architecture: the published Zero
  // Shot model uses hidden sizes in the hundreds, ours trains at hidden=64
  // for time budget reasons. Forward latency depends on the architecture,
  // not the weights, so an untrained wide network gives an honest latency
  // estimate for the paper-scale configuration (accuracy columns do NOT
  // apply to it).
  double nn_paper_scale_latency = 0;
  {
    ZeroShotConfig wide;
    wide.hidden = 384;
    wide.epochs = 0;
    wide.max_train_queries = 1;
    std::vector<const QueryRecord*> one = {average_query};
    auto wide_model = ZeroShotModel::Train(one, CardinalityMode::kTrue, wide);
    T3_CHECK(wide_model.ok());
    nn_paper_scale_latency = bench::MedianLatencySeconds(
        [&] {
          sink = (*wide_model)->PredictQuerySeconds(*average_query,
                                                    CardinalityMode::kTrue);
        },
        200, 20);
  }

  // Stage-style hierarchy: a query cache in front of a DT in front of the
  // NN. Cache latency is one hash lookup; the mix follows the paper's
  // narrative (most queries hit the cache, the NN is rare but slow).
  std::unordered_map<uint64_t, double> cache;
  for (uint64_t i = 0; i < 4096; ++i) cache[i * 2654435761ULL] = 1.0;
  uint64_t probe = 0;
  const double cache_latency = bench::MedianLatencySeconds([&] {
    auto it = cache.find((probe++ % 4096) * 2654435761ULL);
    sink = it == cache.end() ? 0.0 : it->second;
  });
  // AutoWLM-style DT on a single query vector, interpreted.
  const T3Config per_query_config = [] {
    T3Config config;
    config.target = PredictionTarget::kPerQuery;
    return config;
  }();
  T3Model& autowlm = const_cast<T3Model&>(workbench.GetModel(
      "autowlm_per_query", CardinalityMode::kTrue, bench::IsTrain,
      per_query_config));
  autowlm.set_eval_mode(EvalMode::kInterpreted);
  const double dt_latency = bench::MedianLatencySeconds(
      [&] { sink = autowlm.PredictQuerySeconds(average_query->feat_true); });
  const double kCacheShare = 0.60;
  const double kDtShare = 0.35;
  const double kNnShare = 0.05;
  const double stage_avg = kCacheShare * cache_latency +
                           kDtShare * dt_latency + kNnShare * nn_latency;

  PrintExperimentHeader(
      "Table 1: Latencies of performance prediction models",
      "Zero Shot NN ~50ms; Stage cache ~2us / DT ~1ms / NN ~30ms, avg "
      "~300us; T3 interpreted 22us; T3 compiled 4us. Absolute values differ "
      "on this substrate; the ordering and the orders-of-magnitude gaps are "
      "the claims under test.");
  ReportTable table({"Model", "Cache", "DT", "NN", "Avg"});
  table.AddRow({"Zero Shot (NN)", "-", "-", bench::FormatSeconds(nn_latency),
                bench::FormatSeconds(nn_latency)});
  table.AddRow({"Zero Shot (paper-scale arch, latency only)", "-", "-",
                bench::FormatSeconds(nn_paper_scale_latency),
                bench::FormatSeconds(nn_paper_scale_latency)});
  table.AddRow({"Stage-style hierarchy", bench::FormatSeconds(cache_latency),
                bench::FormatSeconds(dt_latency),
                bench::FormatSeconds(nn_latency),
                bench::FormatSeconds(stage_avg)});
  table.AddRow({"T3 interpreted", "-", bench::FormatSeconds(t3_interpreted),
                "-", bench::FormatSeconds(t3_interpreted)});
  table.AddRow({"T3 compiled (ours)", "-", bench::FormatSeconds(t3_compiled),
                "-", bench::FormatSeconds(t3_compiled)});
  table.Print();

  std::printf(
      "\nspeedups: compiled vs interpreted %.1fx, compiled vs NN %.0fx\n",
      t3_interpreted / t3_compiled, nn_latency / t3_compiled);

  // A live Stage hierarchy over a realistic query stream: 60% repeats of
  // already-executed queries (cache hits), the rest routed by complexity.
  {
    StagePredictor stage(&autowlm, zero_shot.get(), /*dt_max_pipelines=*/4);
    Rng rng(4242);
    std::vector<const QueryRecord*> stream;
    for (int i = 0; i < 3000; ++i) {
      const QueryRecord* record =
          test_records[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(test_records.size()) - 1))];
      stream.push_back(record);
      if (rng.Bernoulli(0.6)) stage.Observe(*record, record->median_seconds);
    }
    size_t tier_counts[3] = {0, 0, 0};
    Stopwatch timer;
    for (const QueryRecord* record : stream) {
      sink = stage.PredictQuerySeconds(*record, CardinalityMode::kTrue);
      tier_counts[static_cast<size_t>(stage.last_tier())]++;
    }
    const double avg = timer.ElapsedSeconds() /
                       static_cast<double>(stream.size());
    std::printf(
        "live Stage hierarchy over %zu-query stream: avg %s/query "
        "(cache %zu, DT %zu, NN %zu)\n",
        stream.size(), bench::FormatSeconds(avg).c_str(), tier_counts[0],
        tier_counts[1], tier_counts[2]);
  }
  (void)sink;
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
