// Reproduces Figure 12: accuracy of T3 and the Zero-Shot-style NN under
// artificially degraded cardinality estimates, from exact (factor 1) to
// 1000x distorted. Evaluated on the JOB-like workload.

#include "baselines/zeroshot.h"
#include "bench_util.h"
#include "plan/cardinality.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();

  // Models trained without the IMDB-like instance (shared with Figure 10).
  const T3Model& t3 = workbench.GetModel(
      "t3_no_imdb", CardinalityMode::kTrue, [](const QueryRecord& r) {
        return !r.is_test && r.instance.rfind("imdb", 0) != 0;
      });
  std::unique_ptr<ZeroShotModel> zero_shot;
  {
    auto cached =
        ReadFileToString(workbench.data_dir() + "/model_zeroshot_no_imdb.txt");
    if (cached.ok()) {
      auto loaded = ZeroShotModel::Load(cached.value());
      if (loaded.ok()) zero_shot = std::move(loaded).value();
    }
    if (zero_shot == nullptr) {
      auto trained = ZeroShotModel::Train(
          SelectRecords(workbench.corpus(),
                        [](const QueryRecord& r) {
                          return !r.is_test &&
                                 r.instance.rfind("imdb", 0) != 0;
                        }),
          CardinalityMode::kTrue, ZeroShotConfig());
      T3_CHECK(trained.ok());
      zero_shot = std::move(trained).value();
      T3_CHECK_OK(WriteStringToFile(
          workbench.data_dir() + "/model_zeroshot_no_imdb.txt",
          zero_shot->Serialize()));
    }
  }

  std::fprintf(stderr, "[fig12] rebuilding JOB-like workload with plans...\n");
  const bench::JobWorkload workload = bench::BuildJobWorkload(3);
  T3_CHECK(!workload.queries.empty());

  PrintExperimentHeader(
      "Figure 12: Accuracy under artificially degraded cardinality "
      "estimates (JOB-like queries)",
      "both models start at similar accuracy and degrade drastically with "
      "distortion; the paper sees T3 degrade slightly faster for small "
      "errors and the NN degrade worse beyond ~500x.");
  ReportTable table({"Distortion", "T3 p50", "T3 avg", "NN p50", "NN avg"});
  for (double factor : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                        1000.0}) {
    const CardinalityProvider cards(CardinalityMode::kTrue, factor,
                                    /*seed=*/1234);
    std::vector<double> t3_qerrors;
    std::vector<double> nn_qerrors;
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      const GeneratedQuery& query = workload.queries[q];
      const double actual = workload.median_seconds[q];
      const PipelinePlan pipelines = DecomposePipelines(query.plan);
      const double t3_pred =
          t3.PredictQuerySeconds(*workload.db, query.plan, pipelines, cards);
      t3_qerrors.push_back(QError(t3_pred, actual, 1e-7));

      // The NN sees the same distorted per-node cardinalities.
      std::vector<double> node_cards(
          static_cast<size_t>(query.plan.num_nodes), 0.0);
      std::vector<PlanNodeSummary> summary(
          static_cast<size_t>(query.plan.num_nodes));
      VisitPlan(*query.plan.root, [&](const PlanNode& node) {
        node_cards[static_cast<size_t>(node.id)] = cards.NodeCard(node);
        PlanNodeSummary& s = summary[static_cast<size_t>(node.id)];
        s.op = static_cast<int>(node.type);
        s.left = node.children.empty() ? -1 : node.children[0]->id;
        s.right = node.children.size() < 2 ? -1 : node.children[1]->id;
        s.width = static_cast<double>(node.TupleWidthBytes());
        s.num_predicates = static_cast<int>(node.predicates.size());
      });
      const double nn_pred =
          zero_shot->PredictQuerySecondsWithCards(summary, node_cards);
      nn_qerrors.push_back(QError(nn_pred, actual, 1e-7));
    }
    const QErrorSummary t3_summary = Summarize(t3_qerrors);
    const QErrorSummary nn_summary = Summarize(nn_qerrors);
    table.AddRow({StrFormat("%.0fx", factor), bench::FormatQ(t3_summary.p50),
                  bench::FormatQ(t3_summary.avg),
                  bench::FormatQ(nn_summary.p50),
                  bench::FormatQ(nn_summary.avg)});
  }
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
