// Reproduces Figure 9: generalization across database instances. For every
// instance family, T3 is trained on all other families and evaluated on the
// left-out one.

#include <set>

#include "bench_util.h"

namespace t3 {
namespace {

/// Family = instance name up to the last '_' (e.g. "tpch_sf1" -> "tpch").
std::string FamilyOf(const std::string& instance) {
  const size_t pos = instance.rfind('_');
  return pos == std::string::npos ? instance : instance.substr(0, pos);
}

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();

  std::set<std::string> families;
  for (const QueryRecord& record : corpus.records) {
    families.insert(FamilyOf(record.instance));
  }

  PrintExperimentHeader(
      "Figure 9: Q-errors per left-out database instance family",
      "train on all but one instance family, evaluate the left-out one; the "
      "paper finds p50 stable across instances with more variance in "
      "p90/avg.");
  ReportTable table({"Left-out family", "n", "p50", "p90", "Avg"});
  for (const std::string& family : families) {
    auto in_family = [&family](const QueryRecord& r) {
      return FamilyOf(r.instance) == family;
    };
    const T3Model& model = workbench.GetModel(
        "loo_" + family, CardinalityMode::kTrue,
        [&](const QueryRecord& r) { return !in_family(r); });
    const auto eval_records = SelectRecords(corpus, in_family);
    const QErrorSummary summary =
        Summarize(EvaluateModel(model, eval_records, CardinalityMode::kTrue));
    table.AddRow({family, StrFormat("%zu", summary.count),
                  bench::FormatQ(summary.p50), bench::FormatQ(summary.p90),
                  bench::FormatQ(summary.avg)});
  }
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
