// Reproduces Figure 8: q-errors of T3 broken down by query type on the
// TPC-DS-like test instances — the fixed benchmark queries ("Fixed") plus
// every generated structure group.

#include "bench_util.h"
#include "querygen/querygen.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const T3Model& t3 = workbench.MainModel();

  PrintExperimentHeader(
      "Figure 8: Q-errors by query type on TPC-DS data",
      "the paper finds join+aggregation groups (SeJSiA, CSeJA) easy and the "
      "fixed benchmark queries hardest; medians are stable across groups "
      "while p90/avg vary.");
  ReportTable table({"Query type", "n", "p50", "p90", "Avg"});

  // Fixed benchmark queries first.
  {
    const auto records = SelectRecords(corpus, bench::IsTestFixed);
    if (!records.empty()) {
      const QErrorSummary summary = Summarize(
          QErrors(t3, records, CardinalityMode::kTrue));
      table.AddRow({"Fixed", StrFormat("%zu", summary.count),
                    bench::FormatQ(summary.p50), bench::FormatQ(summary.p90),
                    bench::FormatQ(summary.avg)});
    }
  }
  for (QueryGroup group : AllQueryGroups()) {
    const auto records = SelectRecords(corpus, [group](const QueryRecord& r) {
      return r.is_test && !r.fixed_suite &&
             r.structure_group == static_cast<int>(group);
    });
    if (records.empty()) continue;
    const QErrorSummary summary =
        Summarize(QErrors(t3, records, CardinalityMode::kTrue));
    table.AddRow({QueryGroupName(group), StrFormat("%zu", summary.count),
                  bench::FormatQ(summary.p50), bench::FormatQ(summary.p90),
                  bench::FormatQ(summary.avg)});
  }
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
