// Reproduces Figure 7: the frequency distribution of q-errors of T3
// predictions on all TPC-DS-like test queries.

#include <cmath>

#include "bench_util.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const T3Model& t3 = workbench.MainModel();
  const auto records =
      SelectRecords(workbench.corpus(), bench::IsTest);
  const auto evals = EvaluateModel(t3, records, CardinalityMode::kTrue);
  const std::vector<double> qerrors = QErrors(evals);

  PrintExperimentHeader(
      "Figure 7: Frequency distribution of q-errors on TPC-DS test queries",
      "the paper shows most mass just above 1 with few but heavy outliers — "
      "which is why avg far exceeds p50 in Table 4.");
  // q-errors start at 1; log-scale buckets from 1 to the max.
  const LogHistogram hist = BuildLogHistogram(qerrors, 0.0, 2.0, 16);
  size_t max_count = 1;
  for (size_t c : hist.buckets) max_count = std::max(max_count, c);
  for (size_t b = 0; b < hist.buckets.size(); ++b) {
    const double edge = hist.BucketLowerEdge(b);
    const size_t bar = hist.buckets[b] * 50 / max_count;
    std::printf("q>=%-7.2f | %-50s %zu\n", edge,
                std::string(bar, '#').c_str(), hist.buckets[b]);
  }
  const QErrorSummary summary = Summarize(qerrors);
  std::printf("\n%s\n", summary.ToString().c_str());
  size_t within_2 = 0;
  for (double q : qerrors) within_2 += q <= 2.0 ? 1 : 0;
  std::printf("queries with q-error <= 2: %.1f%%\n",
              100.0 * static_cast<double>(within_2) /
                  static_cast<double>(qerrors.size()));
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
