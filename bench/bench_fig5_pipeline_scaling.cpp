// Reproduces Figure 5: T3's prediction latency as a function of the number
// of pipelines in a query (1 to 1000 random pipelines), for the compiled
// single-threaded model, single-threaded interpretation, and multi-threaded
// interpretation.

#include "bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "treejit/evaluator.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const T3Model& t3 = workbench.MainModel();

  // Pool of real pipeline feature vectors to draw from ("many random
  // pipelines perform equivalently to a large query for T3").
  std::vector<const PipelineFeatures*> pool;
  for (const QueryRecord& record : corpus.records) {
    for (const auto& features : record.feat_true) pool.push_back(&features);
  }
  T3_CHECK(!pool.empty());
  Rng rng(99);

  const size_t dim = pool[0]->values.size();
  auto compiled = CompiledForest::Compile(t3.forest());
  T3_CHECK(compiled.ok());
  const InterpretedEvaluator interpreted(t3.forest());
  const unsigned hardware = std::thread::hardware_concurrency();
  ThreadPool mt_pool(hardware == 0 ? 4 : hardware);

  PrintExperimentHeader(
      "Figure 5: Prediction latency by number of pipelines",
      "compiled ST scales ~1.5us -> ~700us over 1..1000 pipelines; "
      "interpreted ST is much slower; interpreted MT only wins for very "
      "large queries (note: this container has a single core, so MT shows "
      "thread overhead without parallel speedup).");
  ReportTable table({"Pipelines", "Compiled ST", "Interpreted ST",
                     "Interpreted MT"});
  for (size_t n : {1u, 3u, 10u, 30u, 100u, 300u, 1000u}) {
    // Materialize a flat row matrix of n random pipelines.
    std::vector<double> rows;
    rows.reserve(n * dim);
    std::vector<double> cards;
    for (size_t i = 0; i < n; ++i) {
      const PipelineFeatures* f =
          pool[static_cast<size_t>(rng.UniformInt(0, pool.size() - 1))];
      rows.insert(rows.end(), f->values.begin(), f->values.end());
      cards.push_back(std::max(f->input_cardinality, 1.0));
    }
    volatile double sink = 0;
    auto sum_with = [&](const ForestEvaluator& evaluator) {
      double total = 0;
      for (size_t i = 0; i < n; ++i) {
        total += InverseTransformTarget(
                     evaluator.Predict(rows.data() + i * dim)) *
                 cards[i];
      }
      sink = total;
    };
    const int iters = n >= 300 ? 200 : 1000;
    const double compiled_st = bench::MedianLatencySeconds(
        [&] { sum_with(**compiled); }, iters, iters / 10);
    const double interpreted_st = bench::MedianLatencySeconds(
        [&] { sum_with(interpreted); }, iters, iters / 10);
    const double interpreted_mt = bench::MedianLatencySeconds(
        [&] {
          sink = PredictSumParallel(interpreted, &mt_pool, rows.data(), n, dim);
        },
        iters / 2, iters / 20);
    table.AddRow({StrFormat("%zu", n), bench::FormatSeconds(compiled_st),
                  bench::FormatSeconds(interpreted_st),
                  bench::FormatSeconds(interpreted_mt)});
    (void)sink;
  }
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
