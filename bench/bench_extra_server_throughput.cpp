// Extra experiment: end-to-end throughput of the T3 prediction service
// (src/server) — the full wire-protocol path (client encode -> TCP ->
// server batcher -> SIMD PredictBatch -> decode), not just the in-process
// evaluator of Table 2. Sweeps concurrent connections {1, 8, 64}; the
// 64-connection run performs a mid-run atomic hot swap and the acceptance
// gates are:
//   - zero dropped requests (every request answered, across the swap),
//   - every response bit-matches the model version that served it,
//   - sustained throughput >= 100k predictions/sec at 64 connections.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/random.h"
#include "server/client.h"
#include "server/server.h"
#include "server/serving_model.h"

namespace t3 {
namespace {

constexpr size_t kRowsPerRequest = 256;
constexpr double kBudgetSeconds = 1.5;
constexpr double kTargetPredsPerSec = 100000.0;

struct LoadResult {
  uint64_t requests = 0;
  uint64_t rows = 0;
  std::vector<double> latency_ns;
  std::set<uint32_t> versions;
};

PredictRowsRequest MakeRequest(uint64_t seed, int num_features) {
  Rng rng(seed);
  PredictRowsRequest request;
  request.num_features = static_cast<uint32_t>(num_features);
  request.rows.resize(kRowsPerRequest * static_cast<size_t>(num_features));
  for (double& value : request.rows) {
    value = rng.UniformDouble(0.0, 1e6);
  }
  request.input_cardinalities.assign(kRowsPerRequest, 1000.0);
  return request;
}

/// Closed-loop load from `connections` client threads for the wall budget.
/// Every response's first row is verified bit-exactly against the model
/// version that claims to have served it; any mismatch or error aborts.
LoadResult DriveLoad(uint16_t port, size_t connections, int num_features,
                     const T3Model& model_v1, const T3Model& model_v2) {
  std::atomic<bool> stop{false};
  std::vector<LoadResult> results(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      Result<PredictionClient> client =
          PredictionClient::Connect("127.0.0.1", port);
      T3_CHECK_OK(client);
      const PredictRowsRequest request = MakeRequest(c + 1, num_features);
      const double expected_v1 = model_v1.PredictPipelineSeconds(
          request.rows.data(), request.input_cardinalities[0]);
      const double expected_v2 = model_v2.PredictPipelineSeconds(
          request.rows.data(), request.input_cardinalities[0]);
      LoadResult& result = results[c];
      while (!stop.load(std::memory_order_acquire)) {
        Stopwatch latency;
        Result<PredictResponse> response = client->PredictRows(request);
        T3_CHECK_OK(response);
        result.latency_ns.push_back(
            static_cast<double>(latency.ElapsedNanos()));
        T3_CHECK(response->predictions.size() == kRowsPerRequest);
        const double expected =
            response->model_version == 1 ? expected_v1 : expected_v2;
        T3_CHECK(response->predictions[0] == expected);
        result.versions.insert(response->model_version);
        result.requests++;
        result.rows += response->predictions.size();
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(kBudgetSeconds));
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();

  LoadResult total;
  for (LoadResult& result : results) {
    total.requests += result.requests;
    total.rows += result.rows;
    total.versions.insert(result.versions.begin(), result.versions.end());
    total.latency_ns.insert(total.latency_ns.end(),
                            result.latency_ns.begin(),
                            result.latency_ns.end());
  }
  return total;
}

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const T3Model& main_model = workbench.MainModel();
  const int num_features = main_model.forest().num_features;

  // The hot-swap target: the same forest with a shifted base score —
  // structurally identical (so the feature-width guard passes) but every
  // prediction differs, which makes per-version bit-matching a real check.
  Forest shifted = main_model.forest();
  shifted.base_score += 1.0;
  const T3Model swap_model(std::move(shifted), main_model.target());
  const std::string swap_path =
      workbench.data_dir() + "/cache_server_bench_swap.txt";
  T3_CHECK(swap_model.SaveToFile(swap_path).ok());

  Result<std::shared_ptr<const ServingModel>> serving = MakeServingModel(
      T3Model(main_model.forest(), main_model.target()), 1,
      "workbench:main");
  T3_CHECK_OK(serving);

  ServerOptions options;
  options.port = 0;
  Result<std::unique_ptr<PredictionServer>> server =
      PredictionServer::Start(*std::move(serving), options);
  T3_CHECK_OK(server);
  const uint16_t port = (*server)->port();

  const bool simd =
      (*server)->registry().Current()->compiled != nullptr &&
      (*server)->registry().Current()->compiled->has_batch_kernels();
  PrintExperimentHeader(
      "Extra: prediction-server throughput over the wire protocol",
      StrFormat("closed loop, %zu rows/request, %.1fs per config, %d-tree "
                "model; batch kernels: %s. The 64-connection run hot-swaps "
                "mid-flight.",
                kRowsPerRequest, kBudgetSeconds,
                static_cast<int>(main_model.forest().trees.size()),
                simd ? "SIMD" : "per-row fallback"));

  ReportTable table({"Connections", "Requests", "Preds/s", "p50", "p99",
                     "Versions", "Dropped"});
  double preds_at_64 = 0.0;
  for (const size_t connections : {size_t{1}, size_t{8}, size_t{64}}) {
    const bool swap_run = connections == 64;
    std::thread swapper;
    if (swap_run) {
      swapper = std::thread([&] {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(kBudgetSeconds / 2));
        Result<PredictionClient> admin =
            PredictionClient::Connect("127.0.0.1", port);
        T3_CHECK_OK(admin);
        Result<uint32_t> version = admin->Swap(swap_path);
        T3_CHECK_OK(version);
      });
    }
    const LoadResult result =
        DriveLoad(port, connections, num_features, main_model, swap_model);
    if (swapper.joinable()) swapper.join();

    // Zero drops: DriveLoad T3_CHECKs every response, so reaching here
    // with N requests means N answers; the column records it explicitly.
    const double preds_per_sec =
        static_cast<double>(result.rows) / kBudgetSeconds;
    if (connections == 64) preds_at_64 = preds_per_sec;
    std::string versions;
    for (const uint32_t version : result.versions) {
      if (!versions.empty()) versions += ",";
      versions += StrFormat("%u", version);
    }
    table.AddRow({StrFormat("%zu", connections),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(result.requests)),
                  StrFormat("%.0f", preds_per_sec),
                  FormatDuration(Quantile(result.latency_ns, 0.5)),
                  FormatDuration(Quantile(result.latency_ns, 0.99)),
                  versions, "0"});
  }
  table.Print();

  // Post-swap bit-match on a fresh connection: version 2 is now serving
  // and its predictions match the swapped-in model exactly.
  {
    Result<PredictionClient> client =
        PredictionClient::Connect("127.0.0.1", port);
    T3_CHECK_OK(client);
    const PredictRowsRequest request = MakeRequest(999, num_features);
    Result<PredictResponse> response = client->PredictRows(request);
    T3_CHECK_OK(response);
    T3_CHECK(response->model_version == 2);
    for (size_t i = 0; i < request.num_rows(); ++i) {
      T3_CHECK(response->predictions[i] ==
               swap_model.PredictPipelineSeconds(
                   request.rows.data() +
                       i * static_cast<size_t>(num_features),
                   request.input_cardinalities[i]));
    }
  }

  std::printf("\nThroughput at 64 connections: %.0f preds/s "
              "(target >= %.0f)%s\n",
              preds_at_64, kTargetPredsPerSec,
              preds_at_64 >= kTargetPredsPerSec ? " [ok]" : "");
  (*server)->Stop();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
