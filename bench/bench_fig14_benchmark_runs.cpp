// Reproduces Figure 14: model accuracy as a function of how many benchmark
// runs per query form the training target (median of the first k runs,
// k = 1 .. all stored runs).

#include "bench_util.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const auto test_records = SelectRecords(corpus, bench::IsTest);
  const int total_runs =
      static_cast<int>(corpus.records.front().total_run_seconds.size());

  PrintExperimentHeader(
      "Figure 14: Model accuracy for different numbers of benchmark runs",
      "the paper finds no evidence that repeated benchmark runs improve the "
      "model: accuracy is flat in the number of runs used for the training "
      "targets.");
  ReportTable table({"Runs used", "p50", "p90", "Avg"});
  for (int runs = 1; runs <= total_runs; ++runs) {
    const T3Model& model =
        workbench.GetModel(StrFormat("runs_%d", runs), CardinalityMode::kTrue,
                           bench::IsTrain, T3Config(), runs);
    const QErrorSummary summary =
        Summarize(EvaluateModel(model, test_records, CardinalityMode::kTrue));
    table.AddRow({StrFormat("%d", runs), bench::FormatQ(summary.p50),
                  bench::FormatQ(summary.p90), bench::FormatQ(summary.avg)});
  }
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
