// Extension bench (not in the paper): batched-inference scaling across
// batch sizes and memory layouts. For each batch size the same synthetic
// main-model-sized forest is evaluated through the row-major (AoS)
// PredictBatch and column-major (SoA) PredictBatchSoA entry points of the
// flat interpreter and the compiled forest, answering two questions the
// throughput table folds together: where the 8-wide kernels start paying
// off, and what the transpose costs relative to a kernel-native layout.

#include <cstddef>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/cpu_features.h"
#include "common/random.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

int BuildSubtree(Tree* tree, Rng* rng, int num_features, int depth) {
  const int index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  if (depth <= 0 || rng->Bernoulli(0.2)) {
    tree->nodes[index].is_leaf = true;
    tree->nodes[index].value = rng->UniformDouble(-1, 1);
    return index;
  }
  const int feature = static_cast<int>(rng->UniformInt(0, num_features - 1));
  const double threshold = rng->UniformDouble(-2, 2);
  const int left = BuildSubtree(tree, rng, num_features, depth - 1);
  const int right = BuildSubtree(tree, rng, num_features, depth - 1);
  TreeNode& node = tree->nodes[index];
  node.feature = feature;
  node.threshold = threshold;
  node.left = left;
  node.right = right;
  return index;
}

// Roughly the main model's shape: ~100 trees of depth <= 6 over 48 features.
Forest MakeForest(Rng* rng) {
  Forest forest;
  forest.num_features = 48;
  forest.base_score = 15.54;
  for (int t = 0; t < 102; ++t) {
    Tree tree;
    BuildSubtree(&tree, rng, forest.num_features, 6);
    forest.trees.push_back(std::move(tree));
  }
  return forest;
}

void Run() {
  Rng rng(42);
  const Forest forest = MakeForest(&rng);
  T3_CHECK(forest.Validate().ok());
  const size_t dim = static_cast<size_t>(forest.num_features);

  const FlatEvaluator flat(forest);
  auto compiled = CompiledForest::Compile(forest);
  T3_CHECK(compiled.ok());
  const CompiledForest& jit = **compiled;
  const bool simd = jit.has_batch_kernels() && BatchKernelsEnabled();

  constexpr size_t kMaxRows = 8192;
  std::vector<double> aos(kMaxRows * dim);
  for (double& v : aos) v = rng.UniformDouble(-2, 2);
  std::vector<double> soa(kMaxRows * dim);
  std::vector<double> out(kMaxRows);

  PrintExperimentHeader(
      "Extension: batched inference across batch sizes and layouts",
      StrFormat("synthetic forest (%zu trees, %zu features); AoS = row-major "
                "PredictBatch, SoA = column-major PredictBatchSoA; compiled "
                "batch kernels: %s.",
                forest.trees.size(), dim,
                simd ? "SIMD (AVX 8-wide)" : "per-row fallback"));
  ReportTable table({"Batch", "Flat AoS p/s", "Flat SoA p/s",
                     "Compiled AoS p/s", "Compiled SoA p/s"});
  for (const size_t rows : {size_t{1}, size_t{8}, size_t{64}, size_t{1024},
                            size_t{8192}}) {
    // Repack the leading `rows` rows column-major for this batch size.
    for (size_t f = 0; f < dim; ++f) {
      for (size_t i = 0; i < rows; ++i) {
        soa[f * rows + i] = aos[i * dim + f];
      }
    }
    auto tput = [&](const std::function<void()>& fn) {
      const int iters = rows >= 1024 ? 60 : 400;
      return bench::MeasureBatchThroughput(fn, rows, iters, iters / 10);
    };
    const bench::BatchTiming flat_aos = tput(
        [&] { flat.PredictBatch(aos.data(), rows, dim, out.data()); });
    const bench::BatchTiming flat_soa = tput(
        [&] { flat.PredictBatchSoA(soa.data(), rows, dim, out.data()); });
    const bench::BatchTiming jit_aos = tput(
        [&] { jit.PredictBatch(aos.data(), rows, dim, out.data()); });
    const bench::BatchTiming jit_soa = tput(
        [&] { jit.PredictBatchSoA(soa.data(), rows, dim, out.data()); });
    table.AddRow({StrFormat("%zu", rows),
                  StrFormat("%.0f", flat_aos.preds_per_sec),
                  StrFormat("%.0f", flat_soa.preds_per_sec),
                  StrFormat("%.0f", jit_aos.preds_per_sec),
                  StrFormat("%.0f", jit_soa.preds_per_sec)});
  }
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
