// Reproduces Table 4: T3 accuracy in q-error with exact cardinalities.
// Rows: train queries, all TPC-DS-like test queries, the fixed TPC-DS-like
// benchmark queries, the largest-scale test slice, and the largest-scale
// fixed benchmark queries.

#include "bench_util.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const T3Model& t3 = workbench.MainModel();

  int max_test_tier = 0;
  for (const QueryRecord& r : corpus.records) {
    if (r.is_test) max_test_tier = std::max(max_test_tier, r.scale_index);
  }

  struct Row {
    const char* label;
    std::function<bool(const QueryRecord&)> filter;
  };
  const int top_tier = max_test_tier;
  const std::vector<Row> rows = {
      {"Train queries", [](const QueryRecord& r) { return !r.is_test; }},
      {"All TPC-DS test queries",
       [](const QueryRecord& r) { return r.is_test; }},
      {"TPC-DS benchmark queries",
       [](const QueryRecord& r) { return r.is_test && r.fixed_suite; }},
      {"TPC-DS largest-sf test queries",
       [top_tier](const QueryRecord& r) {
         return r.is_test && r.scale_index == top_tier;
       }},
      {"TPC-DS largest-sf benchmark queries",
       [top_tier](const QueryRecord& r) {
         return r.is_test && r.fixed_suite && r.scale_index == top_tier;
       }},
  };

  PrintExperimentHeader(
      "Table 4: Accuracy of T3 measured in q-error (exact cardinalities)",
      "the paper reports avg ~1.3 on train queries, ~1.5 on all TPC-DS test "
      "queries, ~1.94 avg on the 100 TPC-DS benchmark queries, slightly "
      "worse on sf 100. Claims under test: train < test, generated test < "
      "fixed benchmark, largest scale slightly worse.");
  ReportTable table({"Queries", "n", "p50", "p90", "Avg"});
  for (const Row& row : rows) {
    const auto records = SelectRecords(corpus, row.filter);
    const QErrorSummary summary =
        Summarize(EvaluateModel(t3, records, CardinalityMode::kTrue));
    table.AddRow({row.label, StrFormat("%zu", summary.count),
                  bench::FormatQ(summary.p50), bench::FormatQ(summary.p90),
                  bench::FormatQ(summary.avg)});
  }
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
