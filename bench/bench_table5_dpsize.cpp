// Reproduces Table 5: optimization time of DPsize join ordering over the
// JOB-like queries, using T3 as the cost model vs the trivial C_out
// function. Cardinalities come from an exact oracle precomputed outside the
// timed region.

#include "bench_util.h"
#include "optimizer/dpsize.h"
#include "optimizer/join_graph.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const T3Model& t3 = workbench.MainModel();

  std::fprintf(stderr, "[table5] rebuilding JOB-like workload with plans...\n");
  const bench::JobWorkload workload = bench::BuildJobWorkload(1);

  double cout_seconds = 0;
  double t3_seconds = 0;
  int64_t cout_calls = 0;
  int64_t t3_calls = 0;
  size_t optimized = 0;
  for (const GeneratedQuery& query : workload.queries) {
    auto graph = ExtractJoinGraph(query.plan);
    if (!graph.ok()) continue;  // e.g. single-relation queries

    CardinalityOracle cout_oracle(*workload.db, *graph);
    CoutJoinCostModel cout;
    auto cout_result = DpSize(*graph, &cout_oracle, &cout);
    if (!cout_result.ok()) continue;

    CardinalityOracle t3_oracle(*workload.db, *graph);
    T3JoinCostModel t3_cost(t3, *workload.db);
    auto t3_result = DpSize(*graph, &t3_oracle, &t3_cost);
    if (!t3_result.ok()) continue;

    cout_seconds += cout_result->optimize_seconds;
    t3_seconds += t3_result->optimize_seconds;
    cout_calls += cout_result->model_calls;
    t3_calls += t3_result->model_calls;
    ++optimized;
  }

  PrintExperimentHeader(
      "Table 5: Join ordering with DPsize — optimization time by cost model",
      "the paper optimizes all 113 JOB queries: Cout 8.5ms / 158'320 calls "
      "/ 0.054us per call; T3 525.4ms / 316'640 calls / 1.659us per call "
      "(~60x slower overall, 2x the calls). Our JOB-like queries join fewer "
      "relations, so absolute call counts are smaller; the claims under "
      "test are the 2x call ratio and the per-call latency gap.");
  ReportTable table(
      {"Cost model", "Opt. time", "Model calls", "Time/call", "Queries"});
  auto row = [&](const char* name, double seconds, int64_t calls) {
    table.AddRow({name, bench::FormatSeconds(seconds),
                  FormatCount(calls),
                  bench::FormatSeconds(calls > 0 ? seconds /
                                                       static_cast<double>(calls)
                                                 : 0),
                  StrFormat("%zu", optimized)});
  };
  row("Cout", cout_seconds, cout_calls);
  row("T3", t3_seconds, t3_calls);
  table.Print();
  std::printf("\nT3/Cout: %.1fx slower, %.2fx the model calls\n",
              t3_seconds / std::max(cout_seconds, 1e-12),
              static_cast<double>(t3_calls) /
                  static_cast<double>(std::max<int64_t>(cout_calls, 1)));
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
