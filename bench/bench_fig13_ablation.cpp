// Reproduces Figure 13: the ablation of T3's two core representation ideas.
// Variants: (1) per-tuple prediction per pipeline (T3), (2) direct
// per-pipeline time prediction, (3) a single summed feature vector per
// query. Trained on all non-test records, evaluated on all TPC-DS-like
// test queries with exact cardinalities.

#include "bench_util.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const auto test_records =
      SelectRecords(workbench.corpus(), bench::IsTest);

  auto config_for = [](PredictionTarget target) {
    T3Config config;
    config.target = target;
    return config;
  };
  const T3Model& per_tuple = workbench.MainModel();
  const T3Model& per_pipeline = workbench.GetModel(
      "ablation_per_pipeline", CardinalityMode::kTrue, bench::IsTrain,
      config_for(PredictionTarget::kPerPipeline));
  const T3Model& per_query = workbench.GetModel(
      "ablation_per_query", CardinalityMode::kTrue, bench::IsTrain,
      config_for(PredictionTarget::kPerQuery));

  PrintExperimentHeader(
      "Figure 13: Prediction-target ablation (per tuple / per pipeline / "
      "per query)",
      "the paper finds per-tuple targets considerably better than direct "
      "per-pipeline prediction, and per-pipeline vectors much better than "
      "one summed vector per query.");
  ReportTable table({"Variant", "n", "p50", "p90", "Avg"});
  auto row = [&](const char* label, const T3Model& model) {
    const QErrorSummary summary =
        Summarize(EvaluateModel(model, test_records, CardinalityMode::kTrue));
    table.AddRow({label, StrFormat("%zu", summary.count),
                  bench::FormatQ(summary.p50), bench::FormatQ(summary.p90),
                  bench::FormatQ(summary.avg)});
  };
  row("per tuple, per pipeline (T3)", per_tuple);
  row("per pipeline time", per_pipeline);
  row("per query (summed vector)", per_query);
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
