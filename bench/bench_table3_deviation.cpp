// Reproduces Table 3: deviation of repeated benchmark measurements. For
// each query, take the most consistent 2/3 of its stored runs (those
// closest to the median) and report the q-error of the furthest one vs the
// median — the "theoretical optimum" any prediction model could reach.

#include <algorithm>
#include <cmath>

#include "bench_util.h"

namespace t3 {
namespace {

void Run() {
  const Corpus& corpus = bench::SharedWorkbench().corpus();
  std::vector<double> deviations;
  deviations.reserve(corpus.records.size());
  for (const QueryRecord& record : corpus.records) {
    if (record.total_run_seconds.size() < 3) continue;
    const double median = Median(record.total_run_seconds);
    // Sort runs by distance (in q-error) from the median; keep 2/3.
    std::vector<double> qerrors;
    for (double run : record.total_run_seconds) {
      qerrors.push_back(QError(run, median));
    }
    std::sort(qerrors.begin(), qerrors.end());
    const size_t keep = (record.total_run_seconds.size() * 2 + 2) / 3;
    deviations.push_back(qerrors[keep - 1]);
  }
  const QErrorSummary summary = Summarize(deviations);

  PrintExperimentHeader(
      "Table 3: Deviations of benchmarks as q-error",
      "most consistent 2/3 of runs vs median; the paper reports avg 1.058 "
      "(i.e. ~5.8% average deviation) and <13% deviation for 90% of "
      "queries.");
  ReportTable table({"Statistic", "Value"});
  table.AddRow({"queries", StrFormat("%zu", summary.count)});
  table.AddRow({"p50 q-error", StrFormat("%.3f", summary.p50)});
  table.AddRow({"p90 q-error", StrFormat("%.3f", summary.p90)});
  table.AddRow({"avg q-error", StrFormat("%.3f", summary.avg)});
  table.AddRow({"max q-error", StrFormat("%.3f", summary.max)});
  table.Print();
  std::printf(
      "\nexpected floor: no model can be more accurate on average than the "
      "measurement deviation (avg %.3f => ~%.1f%%).\n",
      summary.avg, (summary.avg - 1.0) * 100.0);
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
