#include "bench_util.h"

#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "querygen/suites.h"

namespace t3 {
namespace bench {

JobWorkload BuildJobWorkload(int runs) {
  JobWorkload workload;
  ThreadPool pool(4);
  Result<Database> db = GenerateDatabase("imdb_sf1", /*seed=*/42,
                                         /*scale_override=*/0.0, &pool);
  T3_CHECK_OK(db);
  workload.db = std::make_unique<Database>(*std::move(db));
  Result<std::vector<GeneratedQuery>> suite =
      JobLikeSuite(workload.db->catalog());
  T3_CHECK_OK(suite);
  for (GeneratedQuery& query : *suite) {
    Result<QueryRecord> bench_result =
        BenchmarkQuery(*workload.db, query, runs);
    if (!bench_result.ok()) continue;  // drop queries the engine rejects
    workload.median_seconds.push_back(bench_result->median_seconds);
    workload.queries.push_back(std::move(query));
  }
  return workload;
}

}  // namespace bench
}  // namespace t3
