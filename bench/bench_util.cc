#include "bench_util.h"

#include "harness/runner.h"
#include "querygen/suites.h"

namespace t3 {
namespace bench {

JobWorkload BuildJobWorkload(int runs) {
  JobWorkload workload;
  for (const InstanceSpec& spec : StandardCorpus()) {
    if (spec.family == SchemaFamily::kImdbLike) {
      workload.db = GenerateInstance(spec);
      break;
    }
  }
  T3_CHECK(workload.db != nullptr);
  std::vector<GeneratedQuery> suite = JobLikeSuite(*workload.db);
  for (auto& query : suite) {
    auto bench_result = BenchmarkQuery(*workload.db, &query.plan, runs);
    if (!bench_result.ok()) continue;  // drop queries the engine rejects
    workload.median_seconds.push_back(bench_result->median_seconds);
    workload.queries.push_back(std::move(query));
  }
  return workload;
}

}  // namespace bench
}  // namespace t3
