// Reproduces Table 2 (tree-model rows): prediction throughput in
// predictions per second, for back-to-back single-row evaluation vs one
// batched call over a >1000-row pipeline matrix, across the three forest
// evaluators. The paper's finding: batching helps even tree models; the
// compiled path dominates, and the SIMD batch kernels are the acceptance
// gate of the batch JIT — batched compiled throughput must be >= 2x the
// single-row scalar-JIT throughput on the main model.

#include <cstddef>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/cpu_features.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const T3Model& model = workbench.MainModel();
  const auto test_records = SelectRecords(corpus, bench::IsTest);
  T3_CHECK(!test_records.empty());

  // The batch: every pipeline row of 1024 test queries (records repeat if
  // the split is smaller), flattened row-major.
  constexpr size_t kBatchQueries = 1024;
  const size_t dim = test_records[0]->feat_true[0].values.size();
  std::vector<double> rows;
  for (size_t i = 0; i < kBatchQueries; ++i) {
    const QueryRecord* record = test_records[i % test_records.size()];
    for (const auto& features : record->feat_true) {
      rows.insert(rows.end(), features.values.begin(), features.values.end());
    }
  }
  const size_t num_rows = rows.size() / dim;
  std::vector<double> out(num_rows);

  const InterpretedEvaluator interpreted(model.forest());
  const FlatEvaluator flat(model.forest());
  auto compiled = CompiledForest::Compile(model.forest());
  T3_CHECK(compiled.ok());
  const CompiledForest& jit = **compiled;

  // The batched harness path must agree with the per-record path bit for
  // bit before its throughput means anything.
  T3_CHECK(QErrorsBatched(model, jit, test_records) ==
           QErrors(model, test_records));

  volatile double sink = 0;
  size_t cursor = 0;
  auto single = [&](const ForestEvaluator& evaluator) {
    cursor = 0;
    return bench::Throughput([&] {
      sink = evaluator.Predict(&rows[(cursor++ % num_rows) * dim]);
    });
  };
  auto batched = [&](const ForestEvaluator& evaluator) {
    return bench::MeasureBatchThroughput(
        [&] {
          evaluator.PredictBatch(rows.data(), num_rows, dim, out.data());
          sink = out[num_rows - 1];
        },
        num_rows);
  };

  const double interp_single = single(interpreted);
  const double flat_single = single(flat);
  const double jit_single = single(jit);
  const bench::BatchTiming interp_batch = batched(interpreted);
  const bench::BatchTiming flat_batch = batched(flat);
  const bench::BatchTiming jit_batch = batched(jit);

  const bool simd = jit.has_batch_kernels() && BatchKernelsEnabled();
  PrintExperimentHeader(
      "Table 2: Throughput of tree evaluators in predictions per second",
      StrFormat("single-row calls vs one PredictBatch over %zu pipeline rows "
                "(%zu queries); compiled batch kernels: %s.",
                num_rows, kBatchQueries,
                simd ? "SIMD (AVX 8-wide)" : "per-row fallback"));
  ReportTable table({"Evaluator", "Single preds/s", "Batched preds/s",
                     "Batch p50", "Batch p99", "Gain"});
  auto row = [&](const char* name, double single_tput,
                 const bench::BatchTiming& batch) {
    table.AddRow({name, StrFormat("%.0f", single_tput),
                  StrFormat("%.0f", batch.preds_per_sec),
                  bench::FormatSeconds(batch.p50_seconds),
                  bench::FormatSeconds(batch.p99_seconds),
                  StrFormat("%.1fx", batch.preds_per_sec / single_tput)});
  };
  row("T3 interpreted", interp_single, interp_batch);
  row("T3 flat", flat_single, flat_batch);
  row(simd ? "T3 compiled (SIMD batch)" : "T3 compiled", jit_single,
      jit_batch);
  table.Print();

  const double ratio = jit_batch.preds_per_sec / jit_single;
  std::printf("\nBatched compiled vs single-row JIT: %.2fx (target >= 2x)%s\n",
              ratio, ratio >= 2.0 ? " [ok]" : "");
  (void)sink;
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
