// Reproduces Table 2: model throughput in queries per second, for
// back-to-back single evaluations vs batched evaluation (batch > 1000).
// The paper's finding: batching improves NN throughput by >1000x, and even
// tree models gain from batching.

#include "baselines/zeroshot.h"
#include "bench_util.h"
#include "treejit/jit.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const T3Model& t3 = workbench.MainModel();
  const auto test_records = SelectRecords(corpus, bench::IsTest);
  T3_CHECK(!test_records.empty());

  // Zero-Shot model (cached by bench_table1 under this name).
  std::unique_ptr<ZeroShotModel> zero_shot;
  {
    const std::string path = workbench.data_dir() + "/model_zeroshot_main.txt";
    auto cached = ReadFileToString(path);
    if (cached.ok()) {
      auto loaded = ZeroShotModel::Load(cached.value());
      if (loaded.ok()) zero_shot = std::move(loaded).value();
    }
    if (zero_shot == nullptr) {
      auto trained =
          ZeroShotModel::Train(SelectRecords(corpus, bench::IsTrain),
                               CardinalityMode::kTrue, ZeroShotConfig());
      T3_CHECK(trained.ok());
      zero_shot = std::move(trained).value();
      T3_CHECK_OK(WriteStringToFile(path, zero_shot->Serialize()));
    }
  }

  // A batch of >1000 queries from the test corpus.
  constexpr size_t kBatch = 1024;
  std::vector<const QueryRecord*> batch;
  for (size_t i = 0; i < kBatch; ++i) {
    batch.push_back(test_records[i % test_records.size()]);
  }
  // Flattened pipeline matrix for the tree evaluators' batched API.
  const size_t dim = batch[0]->feat_true[0].values.size();
  std::vector<double> rows;
  std::vector<double> cards;
  std::vector<size_t> query_pipelines;  // pipelines per query
  for (const auto* record : batch) {
    query_pipelines.push_back(record->num_pipelines());
    for (const auto& features : record->feat_true) {
      rows.insert(rows.end(), features.values.begin(), features.values.end());
      cards.push_back(std::max(features.input_cardinality, 1.0));
    }
  }
  const size_t total_pipelines = cards.size();
  std::vector<double> raw(total_pipelines);

  T3Model& model = const_cast<T3Model&>(t3);
  volatile double sink = 0;
  size_t cursor = 0;

  auto single_tree_throughput = [&](EvalMode mode) {
    model.set_eval_mode(mode);
    return bench::Throughput([&] {
      sink = model.PredictQuerySeconds(
          batch[cursor++ % batch.size()]->feat_true);
    });
  };
  const double t3_single = single_tree_throughput(EvalMode::kCompiled);
  const double dt_single = single_tree_throughput(EvalMode::kInterpreted);
  model.set_eval_mode(EvalMode::kCompiled);

  const double nn_single = bench::Throughput(
      [&] {
        sink = zero_shot->PredictQuerySeconds(
            *batch[cursor++ % batch.size()], CardinalityMode::kTrue);
      },
      0.5);

  // Batched: evaluate all pipelines of the whole batch in one call, then
  // reduce per query. Queries/second = batch size / batch latency.
  auto batched_tree_throughput = [&](const ForestEvaluator& evaluator) {
    const double seconds = bench::MedianLatencySeconds(
        [&] {
          evaluator.PredictBatch(rows.data(), total_pipelines, dim, raw.data());
          double total = 0;
          size_t p = 0;
          for (size_t q = 0; q < batch.size(); ++q) {
            double query_total = 0;
            for (size_t k = 0; k < query_pipelines[q]; ++k, ++p) {
              query_total += InverseTransformTarget(raw[p]) * cards[p];
            }
            total += query_total;
          }
          sink = total;
        },
        50, 5);
    return static_cast<double>(kBatch) / seconds;
  };
  auto compiled = CompiledForest::Compile(model.forest());
  T3_CHECK(compiled.ok());
  const InterpretedEvaluator interpreted(model.forest());
  const double t3_batched = batched_tree_throughput(**compiled);
  const double dt_batched = batched_tree_throughput(interpreted);

  // Batched NN: amortized per-query loop (our NN has no SIMD batching; the
  // gain comes from warm caches and no per-call setup).
  const double nn_batch_seconds = bench::MedianLatencySeconds(
      [&] {
        double total = 0;
        for (const auto* record : batch) {
          total += zero_shot->PredictQuerySeconds(*record,
                                                  CardinalityMode::kTrue);
        }
        sink = total;
      },
      20, 2);
  const double nn_batched = static_cast<double>(kBatch) / nn_batch_seconds;

  PrintExperimentHeader(
      "Table 2: Throughput of models in queries per second",
      "single vs batched (>1000) evaluation; the paper reports >1000x "
      "improvement for NNs and large gains for batched tree evaluation.");
  ReportTable table({"Model", "Single q/s", "Batched q/s", "Batch gain"});
  auto row = [&](const char* name, double single, double batched) {
    table.AddRow({name, StrFormat("%.0f", single), StrFormat("%.0f", batched),
                  StrFormat("%.1fx", batched / single)});
  };
  row("Zero Shot (NN)", nn_single, nn_batched);
  row("T3 interpreted (DT)", dt_single, dt_batched);
  row("T3 compiled", t3_single, t3_batched);
  table.Print();
  (void)sink;
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
