// Reproduces Figure 6: the distribution of observed query running times in
// the benchmarked corpus, as a log-scale histogram.

#include <algorithm>
#include <cmath>

#include "bench_util.h"

namespace t3 {
namespace {

void Run() {
  const Corpus& corpus = bench::SharedWorkbench().corpus();
  std::vector<double> times;
  times.reserve(corpus.records.size());
  for (const QueryRecord& record : corpus.records) {
    times.push_back(record.median_seconds);
  }
  const double lo = *std::min_element(times.begin(), times.end());
  const double hi = *std::max_element(times.begin(), times.end());
  const double log_lo = std::floor(std::log10(std::max(lo, 1e-9)));
  const double log_hi = std::ceil(std::log10(hi));
  const size_t buckets = static_cast<size_t>((log_hi - log_lo) * 3);
  const LogHistogram hist = BuildLogHistogram(times, log_lo, log_hi, buckets);

  PrintExperimentHeader(
      "Figure 6: Observed running times of queries in our dataset",
      "the paper's running times are ~2us .. >20s with the mode around 1ms; "
      "our scaled-down instances shift everything left, but the shape — a "
      "wide multi-decade distribution with a spike of very short queries — "
      "is the claim under test.");
  size_t max_count = 1;
  for (size_t c : hist.buckets) max_count = std::max(max_count, c);
  for (size_t b = 0; b < hist.buckets.size(); ++b) {
    const double edge = hist.BucketLowerEdge(b);
    const size_t bar = hist.buckets[b] * 50 / max_count;
    std::printf("%10s | %-50s %zu\n", bench::FormatSeconds(edge).c_str(),
                std::string(bar, '#').c_str(), hist.buckets[b]);
  }
  std::printf(
      "\nqueries: %zu, min %s, median %s, max %s\n", times.size(),
      bench::FormatSeconds(lo).c_str(),
      bench::FormatSeconds(Median(times)).c_str(),
      bench::FormatSeconds(hi).c_str());
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
