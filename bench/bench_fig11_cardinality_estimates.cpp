// Reproduces Figure 11: accuracy with perfect vs estimated cardinalities,
// in three variants: (1) trained and evaluated on perfect cardinalities,
// (2) trained on perfect, evaluated on estimated, (3) trained and evaluated
// on estimated cardinalities. Evaluation on all TPC-DS-like test queries.

#include "bench_util.h"

namespace t3 {
namespace {

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();

  const T3Model& perfect_model = workbench.MainModel();
  const T3Model& estimated_model = workbench.GetModel(
      "t3_trained_on_estimates", CardinalityMode::kEstimated, bench::IsTrain);
  const auto test_records = SelectRecords(corpus, bench::IsTest);

  const QErrorSummary perfect_perfect = Summarize(
      EvaluateModel(perfect_model, test_records, CardinalityMode::kTrue));
  const QErrorSummary perfect_estimated = Summarize(
      EvaluateModel(perfect_model, test_records, CardinalityMode::kEstimated));
  const QErrorSummary estimated_estimated = Summarize(EvaluateModel(
      estimated_model, test_records, CardinalityMode::kEstimated));

  PrintExperimentHeader(
      "Figure 11: Accuracy with perfect and estimated cardinalities",
      "the paper finds: p50 degrades moderately with estimated "
      "cardinalities, p90 and avg degrade heavily; training on estimates "
      "recovers accuracy for most queries (better p50) but keeps heavy "
      "outliers (worse avg than exact training).");
  ReportTable table({"Variant (train / eval)", "n", "p50", "p90", "Avg"});
  auto row = [&](const char* label, const QErrorSummary& summary) {
    table.AddRow({label, StrFormat("%zu", summary.count),
                  bench::FormatQ(summary.p50), bench::FormatQ(summary.p90),
                  bench::FormatQ(summary.avg)});
  };
  row("perfect / perfect", perfect_perfect);
  row("perfect / estimated", perfect_estimated);
  row("estimated / estimated", estimated_estimated);
  table.Print();
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
