// Extension experiment (beyond the paper's Figure 13): which classes of
// basic features carry T3's accuracy? We retrain with individual feature
// kinds zeroed out — percentages, absolute cardinalities, tuple sizes,
// predicate-class percentages — and report the accuracy loss. Also prints
// the main model's top features by split count.

#include "bench_util.h"
#include "features/feature_registry.h"

namespace t3 {
namespace {

/// Zeroes all features of the given kinds in a copy of `examples`.
std::vector<QueryExample> MaskKinds(const std::vector<QueryExample>& examples,
                                    const std::vector<FeatureKind>& kinds) {
  const FeatureRegistry& registry = FeatureRegistry::Get();
  std::vector<size_t> masked;
  for (int i = 0; i < registry.num_features(); ++i) {
    for (FeatureKind kind : kinds) {
      if (registry.def(i).kind == kind) {
        masked.push_back(static_cast<size_t>(i));
      }
    }
  }
  std::vector<QueryExample> out;
  out.reserve(examples.size());
  for (const QueryExample& example : examples) {
    QueryExample copy;
    copy.total_seconds = example.total_seconds;
    for (const PipelineExample& pipeline : example.pipelines) {
      PipelineExample pcopy = pipeline;
      for (size_t index : masked) pcopy.features.values[index] = 0;
      copy.pipelines.push_back(std::move(pcopy));
    }
    out.push_back(std::move(copy));
  }
  return out;
}

QErrorSummary EvaluateMasked(const T3Model& model,
                             const std::vector<const QueryRecord*>& records,
                             const std::vector<FeatureKind>& kinds) {
  const FeatureRegistry& registry = FeatureRegistry::Get();
  std::vector<size_t> masked;
  for (int i = 0; i < registry.num_features(); ++i) {
    for (FeatureKind kind : kinds) {
      if (registry.def(i).kind == kind) masked.push_back(static_cast<size_t>(i));
    }
  }
  std::vector<double> qerrors;
  for (const QueryRecord* record : records) {
    std::vector<PipelineFeatures> features = record->feat_true;
    for (auto& f : features) {
      for (size_t index : masked) f.values[index] = 0;
    }
    const double pred = model.PredictQuerySeconds(features);
    qerrors.push_back(QError(pred, record->median_seconds, 1e-7));
  }
  return SummarizeQErrors(qerrors);
}

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const auto train_records = SelectRecords(corpus, bench::IsTrain);
  const auto test_records = SelectRecords(corpus, bench::IsTest);
  const auto train_examples =
      RecordsToExamples(train_records, CardinalityMode::kTrue);

  struct Variant {
    const char* label;
    std::vector<FeatureKind> masked;
  };
  const std::vector<Variant> variants = {
      {"full feature set (T3)", {}},
      {"no percentages",
       {FeatureKind::kInPercentage, FeatureKind::kRightPercentage,
        FeatureKind::kOutPercentage}},
      {"no absolute cardinalities",
       {FeatureKind::kInCard, FeatureKind::kOutCard}},
      {"no tuple sizes", {FeatureKind::kInSize, FeatureKind::kOutSize}},
      {"no predicate-class percentages",
       {FeatureKind::kPredicatePercentage}},
      {"counts only",
       {FeatureKind::kInPercentage, FeatureKind::kRightPercentage,
        FeatureKind::kOutPercentage, FeatureKind::kInCard,
        FeatureKind::kOutCard, FeatureKind::kInSize, FeatureKind::kOutSize,
        FeatureKind::kPredicatePercentage}},
  };

  PrintExperimentHeader(
      "Extension: feature-group ablation",
      "not in the paper; quantifies each basic-feature class's contribution "
      "to T3's accuracy (Section 3 motivates percentage as the most used "
      "feature).");
  ReportTable table({"Variant", "p50", "p90", "Avg"});
  for (const Variant& variant : variants) {
    const std::string name =
        std::string("feat_ablation_") +
        (variant.masked.empty() ? "full" : variant.label);
    auto model = T3Model::Train(MaskKinds(train_examples, variant.masked),
                                T3Config());
    T3_CHECK(model.ok()) << model.status().ToString();
    const QErrorSummary summary =
        EvaluateMasked(**model, test_records, variant.masked);
    table.AddRow({variant.label, bench::FormatQ(summary.p50),
                  bench::FormatQ(summary.p90), bench::FormatQ(summary.avg)});
  }
  table.Print();

  // Top features of the main model by split count.
  const T3Model& main = workbench.MainModel();
  const std::vector<int> splits = FeatureSplitCounts(main.forest());
  std::vector<std::pair<int, size_t>> ranked;
  for (size_t i = 0; i < splits.size(); ++i) ranked.emplace_back(splits[i], i);
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\ntop 12 features of the main model by split count:\n");
  for (size_t i = 0; i < 12 && i < ranked.size(); ++i) {
    std::printf("  %5d  %s\n", ranked[i].first,
                FeatureRegistry::Get()
                    .def(static_cast<int>(ranked[i].second))
                    .name.c_str());
  }
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
