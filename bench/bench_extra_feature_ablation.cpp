// Extension experiment (beyond the paper's Figure 13): which classes of
// basic features carry T3's accuracy? We retrain with individual feature
// kinds zeroed out — percentages, absolute cardinalities, tuple sizes,
// predicate-class percentages — and report the accuracy loss. Also prints
// the main model's top features by split count.

#include <algorithm>
#include <utility>

#include "bench_util.h"
#include "features/feature_registry.h"
#include "gbt/trainer.h"

namespace t3 {
namespace {

/// Registry indices of every feature of one of the given kinds.
std::vector<size_t> MaskedIndices(const std::vector<FeatureKind>& kinds) {
  const FeatureRegistry& registry = FeatureRegistry::Get();
  std::vector<size_t> masked;
  for (int i = 0; i < registry.num_features(); ++i) {
    for (FeatureKind kind : kinds) {
      if (registry.def(i).kind == kind) {
        masked.push_back(static_cast<size_t>(i));
        break;
      }
    }
  }
  return masked;
}

/// Trains a per-tuple model on the train split with the masked features
/// zeroed in every row (same recipe as Workbench::MainModel, fewer trees —
/// this binary trains one model per variant).
T3Model TrainMasked(const std::vector<const QueryRecord*>& train_records,
                    const std::vector<size_t>& masked) {
  const size_t num_features = static_cast<size_t>(kFeatureDim);
  std::vector<double> rows;
  std::vector<double> targets;
  for (const QueryRecord* record : train_records) {
    for (size_t p = 0; p < record->feat_true.size(); ++p) {
      const PipelineFeatures& features = record->feat_true[p];
      if (features.values.size() != num_features) continue;
      std::vector<double> row = features.values;
      for (size_t index : masked) row[index] = 0.0;
      const double pipeline_seconds =
          p < record->pipeline_times.size()
              ? record->pipeline_times[p].median_seconds
              : record->median_seconds;
      const double tuples = std::max(features.input_cardinality, 1.0);
      rows.insert(rows.end(), row.begin(), row.end());
      targets.push_back(TransformTarget(pipeline_seconds / tuples));
    }
  }
  T3_CHECK(!targets.empty());

  TrainParams params;
  params.num_trees = 80;
  params.max_leaves = 31;
  params.objective = Objective::kMape;
  params.validation_fraction = 0.1;
  params.early_stopping_rounds = 20;
  Result<Forest> forest = TrainForest(rows, targets, num_features, params,
                                      /*stats=*/nullptr);
  T3_CHECK_OK(forest);
  return T3Model(*std::move(forest), PredictionTarget::kPerTuple);
}

/// Q-error summary of `model` on the test split, with the same mask applied
/// to the evaluation features the model was trained without.
QErrorSummary EvaluateMasked(const T3Model& model,
                             const std::vector<const QueryRecord*>& records,
                             const std::vector<size_t>& masked) {
  std::vector<double> q_errors;
  q_errors.reserve(records.size());
  for (const QueryRecord* record : records) {
    double predicted = 0.0;
    for (const PipelineFeatures& features : record->feat_true) {
      std::vector<double> row = features.values;
      for (size_t index : masked) row[index] = 0.0;
      predicted +=
          model.PredictPipelineSeconds(row.data(), features.input_cardinality);
    }
    q_errors.push_back(QError(predicted, record->median_seconds));
  }
  return Summarize(q_errors);
}

void Run() {
  Workbench& workbench = bench::SharedWorkbench();
  const Corpus& corpus = workbench.corpus();
  const auto train_records = SelectRecords(corpus, bench::IsTrain);
  const auto test_records = SelectRecords(corpus, bench::IsTest);

  struct Variant {
    const char* label;
    std::vector<FeatureKind> masked;
  };
  const std::vector<Variant> variants = {
      {"full feature set (T3)", {}},
      {"no percentages",
       {FeatureKind::kInPercentage, FeatureKind::kRightPercentage,
        FeatureKind::kOutPercentage}},
      {"no absolute cardinalities",
       {FeatureKind::kInCard, FeatureKind::kOutCard}},
      {"no tuple sizes", {FeatureKind::kInSize, FeatureKind::kOutSize}},
      {"no predicate-class percentages",
       {FeatureKind::kPredicatePercentage}},
      {"counts only",
       {FeatureKind::kInPercentage, FeatureKind::kRightPercentage,
        FeatureKind::kOutPercentage, FeatureKind::kInCard,
        FeatureKind::kOutCard, FeatureKind::kInSize, FeatureKind::kOutSize,
        FeatureKind::kPredicatePercentage}},
  };

  PrintExperimentHeader(
      "Extension: feature-group ablation",
      "not in the paper; quantifies each basic-feature class's contribution "
      "to T3's accuracy (Section 3 motivates percentage as the most used "
      "feature).");
  ReportTable table({"Variant", "p50", "p90", "Avg"});
  for (const Variant& variant : variants) {
    const std::vector<size_t> masked = MaskedIndices(variant.masked);
    const T3Model model = TrainMasked(train_records, masked);
    const QErrorSummary summary = EvaluateMasked(model, test_records, masked);
    table.AddRow({variant.label, bench::FormatQ(summary.p50),
                  bench::FormatQ(summary.p90), bench::FormatQ(summary.avg)});
  }
  table.Print();

  // Top features of the main model by split count.
  const T3Model& main = workbench.MainModel();
  const std::vector<int> splits = FeatureSplitCounts(main.forest());
  std::vector<std::pair<int, size_t>> ranked;
  for (size_t i = 0; i < splits.size(); ++i) ranked.emplace_back(splits[i], i);
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\ntop 12 features of the main model by split count:\n");
  for (size_t i = 0; i < 12 && i < ranked.size(); ++i) {
    std::printf("  %5d  %s\n", ranked[i].first,
                FeatureRegistry::Get()
                    .def(static_cast<int>(ranked[i].second))
                    .name.c_str());
  }
}

}  // namespace
}  // namespace t3

int main() {
  t3::Run();
  return 0;
}
